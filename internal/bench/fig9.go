package bench

import (
	"fmt"
	"io"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/libdcdb"
	"dcdb/internal/sim/facility"
	"dcdb/internal/stats"
	"dcdb/internal/store"
)

// Fig9Result summarises the heat-removal case study (Figure 9): a
// 24-hour trace of system power, heat removed and inlet temperature,
// with the efficiency computed through a DCDB virtual sensor.
type Fig9Result struct {
	Samples        int
	MeanEfficiency float64
	MinEfficiency  float64
	MaxEfficiency  float64
	// TempSlope is the slope of efficiency vs inlet temperature; the
	// paper's observation is that insulation keeps it ≈ 0.
	TempSlope float64
	// Series for rendering: hour, power kW, heat kW, inlet °C.
	Hours    []float64
	PowerKW  []float64
	HeatKW   []float64
	InletC   []float64
	Topics   Fig9Topics
	Duration time.Duration
}

// Fig9Topics names the sensors the case study records.
type Fig9Topics struct {
	Power, Heat, Inlet, Efficiency string
}

// Fig9 reproduces use case 1 (§7.1): the CooLMUC-3 cooling circuit is
// monitored out-of-band, all readings land in the Storage Backend, and
// a virtual sensor computes the ratio between heat removed and power
// drawn. The ratio comes out around 90 % and stays flat across the
// inlet-temperature sweep. The trace covers simHours of simulated time
// sampled every sampleEvery (the paper: 24 h).
func Fig9(simHours int, sampleEvery time.Duration) (*Fig9Result, error) {
	if simHours <= 0 {
		simHours = 24
	}
	if sampleEvery <= 0 {
		sampleEvery = 5 * time.Minute
	}
	start := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	circuit := facility.NewCoolMUC3(start)
	conn := libdcdb.Connect(store.NewNode(0), nil)
	topics := Fig9Topics{
		Power:      "/lrz/cm3/facility/power",
		Heat:       "/lrz/cm3/facility/heat_removed",
		Inlet:      "/lrz/cm3/facility/inlet_temp",
		Efficiency: "/lrz/cm3/facility/efficiency",
	}
	for topic, unit := range map[string]string{topics.Power: "kW", topics.Heat: "kW", topics.Inlet: "C"} {
		if err := conn.PublishSensor(core.Metadata{Topic: topic, Unit: unit}); err != nil {
			return nil, err
		}
	}
	// The virtual sensor of the case study: efficiency = heat / power.
	err := conn.PublishSensor(core.Metadata{
		Topic:      topics.Efficiency,
		Virtual:    true,
		Expression: fmt.Sprintf("<%s> / <%s>", topics.Heat, topics.Power),
	})
	if err != nil {
		return nil, err
	}
	end := start.Add(time.Duration(simHours) * time.Hour)
	res := &Fig9Result{Topics: topics, Duration: end.Sub(start)}
	var power, heat, inlet []core.Reading
	for at := start; at.Before(end); at = at.Add(sampleEvery) {
		ts := at.UnixNano()
		power = append(power, core.Reading{Timestamp: ts, Value: circuit.PowerKW(at)})
		heat = append(heat, core.Reading{Timestamp: ts, Value: circuit.HeatRemovedKW(at)})
		inlet = append(inlet, core.Reading{Timestamp: ts, Value: circuit.InletTempC(at)})
	}
	if err := conn.InsertBatch(topics.Power, power); err != nil {
		return nil, err
	}
	if err := conn.InsertBatch(topics.Heat, heat); err != nil {
		return nil, err
	}
	if err := conn.InsertBatch(topics.Inlet, inlet); err != nil {
		return nil, err
	}
	eff, err := conn.Query(topics.Efficiency, start.UnixNano(), end.UnixNano())
	if err != nil {
		return nil, err
	}
	res.Samples = len(eff)
	res.MinEfficiency = eff[0].Value
	res.MaxEfficiency = eff[0].Value
	var sum float64
	var effVals, inletVals []float64
	for i, r := range eff {
		sum += r.Value
		if r.Value < res.MinEfficiency {
			res.MinEfficiency = r.Value
		}
		if r.Value > res.MaxEfficiency {
			res.MaxEfficiency = r.Value
		}
		effVals = append(effVals, r.Value)
		inletVals = append(inletVals, inlet[i].Value)
	}
	res.MeanEfficiency = sum / float64(len(eff))
	if fit, err := stats.FitLinear(inletVals, effVals); err == nil {
		res.TempSlope = fit.Slope
	}
	// Hourly series for rendering.
	for h := 0; h < simHours; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		res.Hours = append(res.Hours, float64(h))
		res.PowerKW = append(res.PowerKW, circuit.PowerKW(at))
		res.HeatKW = append(res.HeatKW, circuit.HeatRemovedKW(at))
		res.InletC = append(res.InletC, circuit.InletTempC(at))
	}
	return res, nil
}

// RenderFig9 writes the hourly trace and the summary.
func RenderFig9(w io.Writer, r *Fig9Result) {
	header := []string{"Hour", "Power[kW]", "HeatRemoved[kW]", "InletTemp[C]"}
	var body [][]string
	for i := range r.Hours {
		body = append(body, []string{
			fmt.Sprint(int(r.Hours[i])),
			fmtF(r.PowerKW[i], 1), fmtF(r.HeatKW[i], 1), fmtF(r.InletC[i], 1),
		})
	}
	writeTable(w, header, body)
	fmt.Fprintf(w, "\nHeat-removal efficiency over %v (%d samples): mean %.1f%%, range [%.1f%%, %.1f%%]\n",
		r.Duration, r.Samples, r.MeanEfficiency*100, r.MinEfficiency*100, r.MaxEfficiency*100)
	fmt.Fprintf(w, "Efficiency vs inlet temperature slope: %+.5f per degC (≈0 -> rack insulation effective)\n", r.TempSlope)
}
