package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"dcdb/internal/sim/arch"
)

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Arch] = r
		if r.Sensors <= 0 || r.OverheadPct < 0 {
			t.Errorf("row %+v malformed", r)
		}
	}
	// Ordering as in the paper: KNL worst, Haswell best.
	if !(byName["KnightsLanding"].OverheadPct > byName["Skylake"].OverheadPct &&
		byName["Skylake"].OverheadPct > byName["Haswell"].OverheadPct) {
		t.Errorf("overhead ordering broken: %+v", byName)
	}
	// Within 2x of the paper's absolute values.
	for _, r := range rows {
		ratio := r.OverheadPct / r.PaperPct
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s overhead %.2f vs paper %.2f (ratio %.2f)", r.Arch, r.OverheadPct, r.PaperPct, ratio)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "SuperMUC-NG") {
		t.Error("render missing system name")
	}
}

func TestFig4Shape(t *testing.T) {
	pts := Fig4()
	if len(pts) != 4*4*2 {
		t.Fatalf("points = %d", len(pts))
	}
	get := func(app string, nodes int, core bool) float64 {
		for _, p := range pts {
			if p.App == app && p.Nodes == nodes && p.Core == core {
				return p.OverheadPct
			}
		}
		t.Fatalf("missing point %s/%d/%v", app, nodes, core)
		return 0
	}
	// AMG grows linearly and peaks ~9 % at 1024 nodes.
	amg := get("amg", 1024, false)
	if amg < 7 || amg > 11 {
		t.Errorf("AMG@1024 = %v", amg)
	}
	if get("amg", 128, false) > amg/2 {
		t.Error("AMG not scaling with nodes")
	}
	// Others stay under 3 %.
	for _, app := range []string{"lammps", "quicksilver", "kripke"} {
		for _, n := range NodeCounts {
			if o := get(app, n, false); o > 3 {
				t.Errorf("%s@%d = %v", app, n, o)
			}
		}
	}
	// For AMG the core config carries most of the overhead.
	if get("amg", 1024, true) < 0.6*get("amg", 1024, false) {
		t.Error("AMG core fraction too small")
	}
	var buf bytes.Buffer
	RenderFig4(&buf, pts)
	if !strings.Contains(buf.String(), "amg") {
		t.Error("render missing app")
	}
}

func TestFig5Shape(t *testing.T) {
	for _, m := range []string{"Skylake", "Haswell", "KnightsLanding"} {
		_ = m
	}
	sky := Fig5(archByName(t, "Skylake"))
	knl := Fig5(archByName(t, "KnightsLanding"))
	if len(sky) != 25 || len(knl) != 25 {
		t.Fatalf("cells = %d, %d", len(sky), len(knl))
	}
	// Worst corner (100 ms × 10000 sensors) matches the paper's scale.
	worst := func(cells []Fig5Cell) float64 {
		var w float64
		for _, c := range cells {
			if c.Interval == 100*time.Millisecond && c.Sensors == 10000 {
				w = c.OverheadPct
			}
		}
		return w
	}
	if w := worst(knl); w < 2 || w > 6 {
		t.Errorf("KNL worst cell = %v (paper: 3.5)", w)
	}
	if worst(knl) <= worst(sky) {
		t.Error("KNL should exceed Skylake in the worst corner")
	}
	// Production-like configs (≤1000 sensors) stay below ~1 %.
	for _, c := range knl {
		if c.Sensors <= 1000 && c.Interval >= time.Second && c.OverheadPct > 1.2 {
			t.Errorf("production config %v/%d = %v%%", c.Interval, c.Sensors, c.OverheadPct)
		}
	}
	var buf bytes.Buffer
	RenderFig5(&buf, sky)
	if !strings.Contains(buf.String(), "Skylake") {
		t.Error("render missing arch")
	}
}

func TestFig6Shape(t *testing.T) {
	cells := Fig6()
	if len(cells) != 25 {
		t.Fatalf("cells = %d", len(cells))
	}
	var worstMem, prodMem float64
	for _, c := range cells {
		if c.Interval == 100*time.Millisecond && c.Sensors == 10000 {
			worstMem = c.MemoryMB
		}
		if c.Interval == time.Second && c.Sensors == 1000 {
			prodMem = c.MemoryMB
		}
	}
	if worstMem < 200 || worstMem > 700 {
		t.Errorf("worst-case memory = %v MB (paper ≈350)", worstMem)
	}
	if prodMem > 50 {
		t.Errorf("production memory = %v MB (paper: well below 50)", prodMem)
	}
	// CPU load peaks around 3 % (Skylake).
	var peak float64
	for _, c := range cells {
		if c.CPULoadPct > peak {
			peak = c.CPULoadPct
		}
	}
	if peak < 2 || peak > 4 {
		t.Errorf("peak CPU load = %v%%", peak)
	}
	var buf bytes.Buffer
	RenderFig6(&buf, cells)
	if !strings.Contains(buf.String(), "memory usage") {
		t.Error("render missing panel")
	}
}

func TestFig7Shape(t *testing.T) {
	series := Fig7()
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	byName := map[string]Fig7Series{}
	for _, s := range series {
		byName[s.Arch] = s
		// Distinctly linear: R² ≈ 1 and Eq.1 interpolation near-exact.
		if s.Fit.R2 < 0.999 {
			t.Errorf("%s R2 = %v", s.Arch, s.Fit.R2)
		}
		if s.EqErr > 0.01 {
			t.Errorf("%s Eq.1 error = %v", s.Arch, s.EqErr)
		}
	}
	if !(byName["KnightsLanding"].PeakAt > byName["Haswell"].PeakAt &&
		byName["Haswell"].PeakAt > byName["Skylake"].PeakAt) {
		t.Error("peak load ordering broken")
	}
	// Paper peaks: Skylake ~3 %, KNL ~8 %.
	if p := byName["Skylake"].PeakAt; p < 2 || p > 4 {
		t.Errorf("Skylake peak = %v", p)
	}
	if p := byName["KnightsLanding"].PeakAt; p < 6 || p > 10 {
		t.Errorf("KNL peak = %v", p)
	}
	var buf bytes.Buffer
	RenderFig7(&buf, series)
	if !strings.Contains(buf.String(), "Slope") {
		t.Error("render missing fit")
	}
}

func TestFig8Shape(t *testing.T) {
	cells := Fig8()
	if len(cells) != len(HostCounts)*len(SweepSensors) {
		t.Fatalf("cells = %d", len(cells))
	}
	var at50x1000, at50x10000 float64
	for _, c := range cells {
		if c.Hosts == 50 && c.Sensors == 1000 {
			at50x1000 = c.CPULoadPct
		}
		if c.Hosts == 50 && c.Sensors == 10000 {
			at50x10000 = c.CPULoadPct
		}
	}
	// Paper: one core saturated at 50×1000; ~900 % at 50×10000.
	if at50x1000 < 60 || at50x1000 > 150 {
		t.Errorf("50x1000 load = %v%%", at50x1000)
	}
	if at50x10000 < 700 || at50x10000 > 1100 {
		t.Errorf("50x10000 load = %v%%", at50x10000)
	}
	var buf bytes.Buffer
	RenderFig8(&buf, cells)
	if !strings.Contains(buf.String(), "Hosts") {
		t.Error("render missing grid")
	}
}

func TestMeasuredAgentThroughput(t *testing.T) {
	perSec, ns := MeasuredAgentThroughput(50 * time.Millisecond)
	if perSec < 10000 {
		t.Errorf("agent ingest = %.0f readings/s (suspiciously slow)", perSec)
	}
	if ns <= 0 {
		t.Error("ns per reading not positive")
	}
	// Batched ingest is faster per reading.
	_, nsBatched := MeasuredAgentThroughputBatched(50*time.Millisecond, 32)
	if nsBatched >= ns {
		t.Logf("batched %.0fns vs single %.0fns (machine-dependent, not fatal)", nsBatched, ns)
	}
	if tp := MeasuredPipelineThroughput(20*time.Millisecond, 8); tp <= 0 {
		t.Error("pipeline throughput not positive")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(24, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 200 {
		t.Errorf("samples = %d", res.Samples)
	}
	if math.Abs(res.MeanEfficiency-0.90) > 0.03 {
		t.Errorf("mean efficiency = %v (paper ≈0.90)", res.MeanEfficiency)
	}
	// Flat across inlet temperature: |slope| < 0.2 % per °C.
	if math.Abs(res.TempSlope) > 0.002 {
		t.Errorf("efficiency-temperature slope = %v", res.TempSlope)
	}
	if len(res.Hours) != 24 {
		t.Errorf("hourly series = %d", len(res.Hours))
	}
	var buf bytes.Buffer
	RenderFig9(&buf, res)
	if !strings.Contains(buf.String(), "efficiency") {
		t.Error("render missing summary")
	}
	// Defaults path.
	if _, err := Fig9(0, 0); err != nil {
		t.Error(err)
	}
}

func TestFig10Shape(t *testing.T) {
	results := Fig10(240)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]Fig10Result{}
	for _, r := range results {
		byName[r.App] = r
		if r.Samples < 1000 || len(r.PDF) == 0 {
			t.Errorf("%s: samples=%d pdf=%d", r.App, r.Samples, len(r.PDF))
		}
	}
	// Kripke and Quicksilver exhibit high means; LAMMPS and AMG lower.
	if !(byName["kripke"].Mean > byName["lammps"].Mean && byName["quicksilver"].Mean > byName["amg"].Mean) {
		t.Errorf("mean ordering broken: %+v", byName)
	}
	// AMG and LAMMPS are multi-modal, Kripke/Quicksilver unimodal.
	if len(byName["amg"].Modes) < 2 {
		t.Errorf("amg modes = %v", byName["amg"].Modes)
	}
	if len(byName["lammps"].Modes) < 2 {
		t.Errorf("lammps modes = %v", byName["lammps"].Modes)
	}
	if len(byName["kripke"].Modes) > 2 {
		t.Errorf("kripke modes = %v", byName["kripke"].Modes)
	}
	var buf bytes.Buffer
	RenderFig10(&buf, results)
	if !strings.Contains(buf.String(), "PDF") {
		t.Error("render missing PDFs")
	}
}

func TestBurstAblation(t *testing.T) {
	a := RunBurstAblation(100, 30)
	if a.BurstMessages >= a.ContinuousMessages {
		t.Error("burst should send fewer messages")
	}
	if a.BurstBytes >= a.ContinuousBytes {
		t.Error("burst should send fewer bytes")
	}
	var buf bytes.Buffer
	RenderBurstAblation(&buf, a)
	if !strings.Contains(buf.String(), "burst") {
		t.Error("render")
	}
}

func TestPartitionerAblation(t *testing.T) {
	a, err := RunPartitionerAblation(4, 12, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Hierarchical: exactly one node per subtree query.
	if a.HierNodesPerQuery != 1 {
		t.Errorf("hierarchical touches %v nodes per subtree", a.HierNodesPerQuery)
	}
	// Hash: spreads subtree queries over most nodes.
	if a.HashNodesPerQuery < 2 {
		t.Errorf("hash touches only %v nodes", a.HashNodesPerQuery)
	}
	var buf bytes.Buffer
	RenderPartitionerAblation(&buf, a)
	if !strings.Contains(buf.String(), "hierarchical") {
		t.Error("render")
	}
}

func TestGroupingAblation(t *testing.T) {
	a := RunGroupingAblation(1000, 50, 10)
	if a.GroupedReads >= a.PerSensorReads {
		t.Error("grouping should reduce reads")
	}
	if a.GroupedStamps >= a.PerSensorStamps {
		t.Error("grouping should reduce timestamps")
	}
	var buf bytes.Buffer
	RenderGroupingAblation(&buf, a)
	if !strings.Contains(buf.String(), "grouped") {
		t.Error("render")
	}
	if z := RunGroupingAblation(10, 0, 1); z.GroupSize != 1 {
		t.Error("zero group size not defaulted")
	}
}

func archByName(t *testing.T, name string) arch.Model {
	t.Helper()
	for _, a := range arch.All {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("unknown arch %q", name)
	return arch.Model{}
}
