package bench

import (
	"fmt"
	"io"
	"time"

	"dcdb/internal/sim/workload"
	"dcdb/internal/stats"
)

// Fig10Result is one application's instructions-per-Watt
// characterisation (Figure 10).
type Fig10Result struct {
	App     string
	Samples int
	// Mean and Std of the per-core instructions-per-Watt series, in
	// units of 1e5 instructions/W (the figure's x-axis scale).
	Mean, Std float64
	// Modes of the KDE-estimated PDF (multi-modality indicates the
	// dynamic, phase-changing behaviour of LAMMPS and AMG).
	Modes []float64
	// Density sampled over [0, 4.5]e5 like the figure's x-axis.
	X, PDF []float64
}

// Fig10 reproduces use case 2 (§7.2): several runs of the CORAL-2
// applications on a CooLMUC-3 node, monitored at a 100 ms sampling
// interval, characterised by the ratio of per-core retired instructions
// to node power. For each application the fitted probability density is
// computed with Gaussian KDE over simSeconds of workload execution.
func Fig10(simSeconds int) []Fig10Result {
	if simSeconds <= 0 {
		simSeconds = 240
	}
	const sampling = 100 * time.Millisecond
	const clock = 1.3e9 // KNL nominal clock, matching the profiles
	var out []Fig10Result
	for _, app := range workload.CORAL2 {
		profile := app.Profile()
		n := int(time.Duration(simSeconds) * time.Second / sampling)
		sample := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			ipc, w := profile(time.Duration(i) * sampling)
			instrPerSec := ipc * clock
			sample = append(sample, instrPerSec/w/1e5) // x-axis: 1e5 instr/W
		}
		res := Fig10Result{App: app.Name, Samples: len(sample)}
		res.Mean = stats.Mean(sample)
		res.Std = stats.StdDev(sample)
		if kde, err := stats.NewKDE(sample, 0); err == nil {
			res.Modes = kde.Modes(0, 4.5, 200)
			res.X, res.PDF = kde.Curve(0, 4.5, 90)
		}
		out = append(out, res)
	}
	return out
}

// RenderFig10 writes the per-application summaries and a coarse ASCII
// rendition of each density.
func RenderFig10(w io.Writer, results []Fig10Result) {
	header := []string{"Application", "Samples", "Mean[1e5 instr/W]", "Std", "Modes"}
	var body [][]string
	for _, r := range results {
		modes := ""
		for i, m := range r.Modes {
			if i > 0 {
				modes += " "
			}
			modes += fmtF(m, 2)
		}
		body = append(body, []string{r.App, fmt.Sprint(r.Samples), fmtF(r.Mean, 2), fmtF(r.Std, 2), modes})
	}
	writeTable(w, header, body)
	for _, r := range results {
		fmt.Fprintf(w, "\n%s PDF (x in 1e5 instructions/W):\n", r.App)
		renderSpark(w, r.X, r.PDF)
	}
}

// renderSpark draws a one-line density profile.
func renderSpark(w io.Writer, xs, ys []float64) {
	if len(ys) == 0 {
		return
	}
	marks := []rune(" .:-=+*#%@")
	var max float64
	for _, y := range ys {
		if y > max {
			max = y
		}
	}
	if max == 0 {
		max = 1
	}
	line := make([]rune, len(ys))
	for i, y := range ys {
		idx := int(y / max * float64(len(marks)-1))
		line[i] = marks[idx]
	}
	fmt.Fprintf(w, "  [%.1f..%.1f] |%s|\n", xs[0], xs[len(xs)-1], string(line))
}
