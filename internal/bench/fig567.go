package bench

import (
	"fmt"
	"io"
	"time"

	"dcdb/internal/sim/arch"
	"dcdb/internal/stats"
)

// Fig5Cell is one heatmap cell of Figure 5: overhead at a (sampling
// interval, sensor count) configuration on one architecture.
type Fig5Cell struct {
	Arch        string
	Interval    time.Duration
	Sensors     int
	OverheadPct float64
}

// Fig5 reproduces the three overhead heatmaps of Figure 5 for the given
// architecture: 5 sampling intervals × 5 sensor counts against
// single-node HPL. Values below ~1 % are measurement noise, as in the
// paper; the gradient towards high rates is what matters, and Knights
// Landing shows the steepest one.
func Fig5(m arch.Model) []Fig5Cell {
	var out []Fig5Cell
	for ii, interval := range SweepIntervals {
		for si, sensors := range SweepSensors {
			rate := arch.SensorRate(sensors, interval)
			j := arch.Jitter(int(m.Name[0]), ii, si)
			out = append(out, Fig5Cell{
				Arch:        m.Name,
				Interval:    interval,
				Sensors:     sensors,
				OverheadPct: arch.Round2(m.HPLOverhead(rate, j)),
			})
		}
	}
	return out
}

// RenderFig5 writes one heatmap in the paper's row/column layout.
func RenderFig5(w io.Writer, cells []Fig5Cell) {
	if len(cells) == 0 {
		return
	}
	fmt.Fprintf(w, "Overhead [%%] on the %s architecture (rows: sampling interval, cols: sensors)\n", cells[0].Arch)
	header := []string{"Interval[ms]"}
	for _, s := range SweepSensors {
		header = append(header, fmt.Sprint(s))
	}
	var body [][]string
	for i, interval := range SweepIntervals {
		row := []string{fmt.Sprint(interval.Milliseconds())}
		for j := range SweepSensors {
			row = append(row, fmtF(cells[i*len(SweepSensors)+j].OverheadPct, 2))
		}
		_ = interval
		body = append(body, row)
	}
	writeTable(w, header, body)
}

// Fig6Cell is one configuration of Figure 6: the Pusher's CPU load and
// memory usage on a SuperMUC-NG (Skylake) node.
type Fig6Cell struct {
	Interval    time.Duration
	Sensors     int
	CPULoadPct  float64
	MemoryMB    float64
	CacheWindow time.Duration
}

// Fig6 reproduces Figure 6: average per-core CPU load (a) and memory
// usage (b) across the 25 sweep configurations on Skylake nodes, with
// the production two-minute sensor cache. Memory peaks around 350 MB
// in the most intensive configuration and stays below 50 MB for
// production-scale setups.
func Fig6() []Fig6Cell {
	const window = 2 * time.Minute
	m := arch.Skylake
	var out []Fig6Cell
	for _, interval := range SweepIntervals {
		for _, sensors := range SweepSensors {
			rate := arch.SensorRate(sensors, interval)
			out = append(out, Fig6Cell{
				Interval:    interval,
				Sensors:     sensors,
				CPULoadPct:  arch.Round2(m.PusherCPULoad(rate)),
				MemoryMB:    arch.Round2(m.PusherMemoryMB(sensors, interval, window)),
				CacheWindow: window,
			})
		}
	}
	return out
}

// RenderFig6 writes both panels.
func RenderFig6(w io.Writer, cells []Fig6Cell) {
	fmt.Fprintln(w, "Pusher average per-core CPU load [%] (Skylake)")
	renderSweep(w, cells, func(c Fig6Cell) float64 { return c.CPULoadPct })
	fmt.Fprintln(w, "\nPusher memory usage [MB] (Skylake, 2 min sensor cache)")
	renderSweep(w, cells, func(c Fig6Cell) float64 { return c.MemoryMB })
}

func renderSweep(w io.Writer, cells []Fig6Cell, val func(Fig6Cell) float64) {
	header := []string{"Interval[ms]"}
	for _, s := range SweepSensors {
		header = append(header, fmt.Sprint(s))
	}
	var body [][]string
	for i := range SweepIntervals {
		row := []string{fmt.Sprint(SweepIntervals[i].Milliseconds())}
		for j := range SweepSensors {
			row = append(row, fmtF(val(cells[i*len(SweepSensors)+j]), 2))
		}
		body = append(body, row)
	}
	writeTable(w, header, body)
}

// Fig7Series is one architecture's CPU-load scaling curve with its
// linear fit (Equation 1's basis).
type Fig7Series struct {
	Arch   string
	Rates  []float64
	Loads  []float64
	Fit    stats.LinearFit
	EqErr  float64 // max abs error of Eq.1 interpolation vs the model
	PeakAt float64 // load at the highest rate
}

// Fig7 reproduces Figure 7: average per-core CPU load versus sensor
// rate for the three architectures, with least-squares fits. The
// distinctly linear scaling is what lets administrators size
// deployments via Equation 1; EqErr quantifies how well two reference
// measurements predict the rest of the curve.
func Fig7() []Fig7Series {
	var out []Fig7Series
	for _, m := range arch.All {
		var s Fig7Series
		s.Arch = m.Name
		for _, interval := range SweepIntervals {
			for _, sensors := range SweepSensors {
				rate := arch.SensorRate(sensors, interval)
				s.Rates = append(s.Rates, rate)
				s.Loads = append(s.Loads, m.PusherCPULoad(rate))
			}
		}
		fit, err := stats.FitLinear(s.Rates, s.Loads)
		if err == nil {
			s.Fit = fit
		}
		// Equation 1 check: interpolate every point from two
		// references (rates 1e3 and 5e4).
		la := m.PusherCPULoad(1e3)
		lb := m.PusherCPULoad(5e4)
		for i, r := range s.Rates {
			pred := arch.InterpolateCPULoad(r, 1e3, la, 5e4, lb)
			if d := abs(pred - s.Loads[i]); d > s.EqErr {
				s.EqErr = d
			}
		}
		s.PeakAt = m.PusherCPULoad(1e5)
		out = append(out, s)
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderFig7 writes the scaling summary.
func RenderFig7(w io.Writer, series []Fig7Series) {
	header := []string{"Architecture", "Slope[%/(r/s)]", "Intercept[%]", "R2", "Peak@100k[%]", "Eq1 max err[%]"}
	var body [][]string
	for _, s := range series {
		body = append(body, []string{
			s.Arch,
			fmt.Sprintf("%.3g", s.Fit.Slope),
			fmtF(s.Fit.Intercept, 3),
			fmtF(s.Fit.R2, 4),
			fmtF(s.PeakAt, 2),
			fmtF(s.EqErr, 4),
		})
	}
	writeTable(w, header, body)
}
