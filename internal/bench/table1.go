package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dcdb/internal/sim/arch"
)

// Table1Row is one production system of Table 1.
type Table1Row struct {
	System      string
	Arch        string
	Nodes       int
	CPU         string
	MemGB       int
	Interconn   string
	Plugins     []string
	Sensors     int
	OverheadPct float64 // model prediction for the production config
	PaperPct    float64 // the paper's measured value, for comparison
}

// Table1 reproduces Table 1: the per-system production Pusher
// configurations and their HPL overhead. Sensor counts and plugin sets
// are the paper's; the overhead column is the calibrated architecture
// model evaluated at the production sensor rate (1 s interval).
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, len(arch.All))
	for i, m := range arch.All {
		rate := arch.SensorRate(m.ProductionSensors, time.Second)
		rows = append(rows, Table1Row{
			System:      m.System,
			Arch:        m.Name,
			Nodes:       m.Nodes,
			CPU:         m.CPU,
			MemGB:       m.MemGB,
			Interconn:   m.Interconnect,
			Plugins:     m.Plugins,
			Sensors:     m.ProductionSensors,
			OverheadPct: arch.Round2(m.HPLOverhead(rate, 0.5) + productionBackendPct(m)),
			PaperPct:    m.PaperOverheadPct,
		})
		_ = i
	}
	return rows
}

// productionBackendPct adds the data-acquisition backends' share of
// production overhead beyond the Pusher core: production plugins read
// perf counters, /proc and /sys, which the tester-only model of
// HPLOverhead excludes. Calibrated so that Table 1's relative ordering
// holds (KNL ≫ Skylake > Haswell).
func productionBackendPct(m arch.Model) float64 {
	perSensorPct := 5e-4 / m.SingleThread
	return float64(m.ProductionSensors) * perSensorPct
}

// RenderTable1 writes the table in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	header := []string{"HPC System", "Nodes", "CPU", "Mem[GB]", "Interconnect", "Plugins", "Sensors", "Overhead[%]", "Paper[%]"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.System, fmt.Sprint(r.Nodes), r.CPU, fmt.Sprint(r.MemGB),
			r.Interconn, strings.Join(r.Plugins, ","), fmt.Sprint(r.Sensors),
			fmtF(r.OverheadPct, 2), fmtF(r.PaperPct, 2),
		})
	}
	writeTable(w, header, body)
}
