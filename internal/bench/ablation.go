package bench

import (
	"fmt"
	"io"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/store"
)

// Ablation drivers for the design choices DESIGN.md calls out. Unlike
// the figure drivers these run the real implementation and measure it.

// BurstAblation compares continuous and burst forwarding for the same
// reading stream: messages sent, payload bytes, and bytes of protocol
// overhead saved. It quantifies the §6.2.1 observation that bursty
// forwarding reduces network interference for message-sensitive
// applications like AMG.
type BurstAblation struct {
	Readings           int
	ContinuousMessages int
	BurstMessages      int
	ContinuousBytes    int // payload + fixed per-message overhead
	BurstBytes         int
	OverheadPerMsg     int
}

// RunBurstAblation models sensors × intervalsPerFlush readings per
// flush period.
func RunBurstAblation(sensors, intervalsPerFlush int) BurstAblation {
	const msgOverhead = 2 + 2 + 30 // MQTT fixed header + topic length + topic
	a := BurstAblation{
		Readings:       sensors * intervalsPerFlush,
		OverheadPerMsg: msgOverhead,
	}
	// Continuous: one message per sensor per interval.
	a.ContinuousMessages = sensors * intervalsPerFlush
	a.ContinuousBytes = a.ContinuousMessages * (msgOverhead + 16)
	// Burst: one message per sensor per flush carrying all readings.
	a.BurstMessages = sensors
	a.BurstBytes = a.BurstMessages*msgOverhead + a.Readings*16
	return a
}

// RenderBurstAblation writes the comparison.
func RenderBurstAblation(w io.Writer, a BurstAblation) {
	header := []string{"Mode", "Messages", "Bytes"}
	body := [][]string{
		{"continuous", fmt.Sprint(a.ContinuousMessages), fmt.Sprint(a.ContinuousBytes)},
		{"burst", fmt.Sprint(a.BurstMessages), fmt.Sprint(a.BurstBytes)},
	}
	writeTable(w, header, body)
	fmt.Fprintf(w, "burst sends %.1fx fewer packets for %d readings\n",
		float64(a.ContinuousMessages)/float64(a.BurstMessages), a.Readings)
}

// PartitionerAblation compares the hierarchical SID-prefix partitioner
// against plain hashing on a subtree query workload (paper §4.3): the
// hierarchical scheme keeps a subtree's sensors on one node, so
// subtree queries touch a single server instead of all of them.
type PartitionerAblation struct {
	Nodes               int
	SensorsPerSubtree   int
	Subtrees            int
	HierNodesPerQuery   float64 // nodes holding data for one subtree
	HashNodesPerQuery   float64
	HierMaxNodeFraction float64 // ingest balance: largest node's share
	HashMaxNodeFraction float64
}

// RunPartitionerAblation builds both cluster layouts with real stores
// and measures node spread per subtree and ingest balance.
func RunPartitionerAblation(nodes, subtrees, sensorsPerSubtree int) (PartitionerAblation, error) {
	res := PartitionerAblation{Nodes: nodes, SensorsPerSubtree: sensorsPerSubtree, Subtrees: subtrees}
	for _, scheme := range []string{"hier", "hash"} {
		var part store.Partitioner
		if scheme == "hier" {
			// Depth 2 = /sys/rackNN: the subtree granularity queried.
			part = store.HierarchicalPartitioner{Depth: 2}
		} else {
			part = store.HashPartitioner{}
		}
		ns := make([]*store.Node, nodes)
		for i := range ns {
			ns[i] = store.NewNode(0)
		}
		cl, err := store.NewCluster(ns, part, 1)
		if err != nil {
			return res, err
		}
		mapper := core.NewTopicMapper()
		perSubtreeIDs := make([][]core.SensorID, subtrees)
		for st := 0; st < subtrees; st++ {
			for s := 0; s < sensorsPerSubtree; s++ {
				topic := fmt.Sprintf("/sys/rack%02d/node%02d/metric%03d", st, s%16, s)
				id, err := mapper.Map(topic)
				if err != nil {
					return res, err
				}
				perSubtreeIDs[st] = append(perSubtreeIDs[st], id)
				if err := cl.Insert(id, core.Reading{Timestamp: int64(s), Value: 1}, 0); err != nil {
					return res, err
				}
			}
		}
		// Nodes touched per subtree query.
		var totalTouched int
		for st := 0; st < subtrees; st++ {
			touched := make(map[int]bool)
			for _, id := range perSubtreeIDs[st] {
				touched[part.NodeFor(id, nodes)] = true
			}
			totalTouched += len(touched)
		}
		avgTouched := float64(totalTouched) / float64(subtrees)
		// Ingest balance.
		var maxIns, totIns int64
		for _, n := range ns {
			ins, _, _ := n.Stats()
			totIns += ins
			if ins > maxIns {
				maxIns = ins
			}
		}
		frac := float64(maxIns) / float64(totIns)
		if scheme == "hier" {
			res.HierNodesPerQuery = avgTouched
			res.HierMaxNodeFraction = frac
		} else {
			res.HashNodesPerQuery = avgTouched
			res.HashMaxNodeFraction = frac
		}
	}
	return res, nil
}

// RenderPartitionerAblation writes the comparison.
func RenderPartitionerAblation(w io.Writer, a PartitionerAblation) {
	header := []string{"Partitioner", "Nodes/subtree-query", "Max node ingest share"}
	body := [][]string{
		{"hierarchical(depth=2)", fmtF(a.HierNodesPerQuery, 2), fmtF(a.HierMaxNodeFraction, 3)},
		{"hash", fmtF(a.HashNodesPerQuery, 2), fmtF(a.HashMaxNodeFraction, 3)},
	}
	writeTable(w, header, body)
	fmt.Fprintf(w, "%d nodes, %d subtrees x %d sensors: hierarchical keeps subtree queries local\n",
		a.Nodes, a.Subtrees, a.SensorsPerSubtree)
}

// GroupingAblation compares grouped sampling (one collective read and
// one timestamp per group, the DCDB design) against per-sensor
// sampling: reads performed and distinct timestamps produced for the
// same sensor population.
type GroupingAblation struct {
	Sensors          int
	GroupSize        int
	Intervals        int
	GroupedReads     int
	PerSensorReads   int
	GroupedStamps    int // distinct timestamps per interval
	PerSensorStamps  int
	CorrelationReady bool // one timestamp per group enables direct correlation
}

// RunGroupingAblation computes the structural costs.
func RunGroupingAblation(sensors, groupSize, intervals int) GroupingAblation {
	if groupSize <= 0 {
		groupSize = 1
	}
	groups := (sensors + groupSize - 1) / groupSize
	return GroupingAblation{
		Sensors:          sensors,
		GroupSize:        groupSize,
		Intervals:        intervals,
		GroupedReads:     groups * intervals,
		PerSensorReads:   sensors * intervals,
		GroupedStamps:    groups,
		PerSensorStamps:  sensors,
		CorrelationReady: true,
	}
}

// RenderGroupingAblation writes the comparison.
func RenderGroupingAblation(w io.Writer, a GroupingAblation) {
	header := []string{"Scheme", "Reads", "Timestamps/interval"}
	body := [][]string{
		{fmt.Sprintf("grouped(size=%d)", a.GroupSize), fmt.Sprint(a.GroupedReads), fmt.Sprint(a.GroupedStamps)},
		{"per-sensor", fmt.Sprint(a.PerSensorReads), fmt.Sprint(a.PerSensorStamps)},
	}
	writeTable(w, header, body)
	fmt.Fprintf(w, "%d sensors over %d intervals: grouping cuts reads %.0fx and aligns timestamps for correlation\n",
		a.Sensors, a.Intervals, float64(a.PerSensorReads)/float64(a.GroupedReads))
}

// MeasuredPipelineThroughput drives the full in-process ingest pipeline
// (encode → agent handle → store) for d and reports readings/s,
// grounding the models in real measurements of this implementation.
func MeasuredPipelineThroughput(d time.Duration, batch int) float64 {
	perSec, _ := MeasuredAgentThroughputBatched(d, batch)
	return perSec
}

// MeasuredAgentThroughputBatched is MeasuredAgentThroughput with
// configurable batch size (burst-mode payloads).
func MeasuredAgentThroughputBatched(d time.Duration, batch int) (perSec float64, nsPerReading float64) {
	if batch <= 0 {
		batch = 1
	}
	backend := store.NewNode(0)
	agentRS := make([]core.Reading, batch)
	for i := range agentRS {
		agentRS[i] = core.Reading{Timestamp: int64(i), Value: float64(i)}
	}
	payload := core.EncodeReadings(agentRS)
	a := newQuietAgent(backend)
	start := time.Now()
	var n int64
	for time.Since(start) < d {
		a.Handle("/bench/batched/sensor", payload)
		n += int64(batch)
	}
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), float64(elapsed.Nanoseconds()) / float64(n)
}
