package bench

import (
	"fmt"
	"io"

	"dcdb/internal/sim/arch"
	"dcdb/internal/sim/workload"
)

// Fig4Point is one bar of Figure 4: an application at a node count in
// either the production ("total") or tester-only ("core")
// configuration.
type Fig4Point struct {
	App         string
	Nodes       int
	Core        bool
	OverheadPct float64
}

// Fig4 reproduces Figure 4: Pusher overhead on the CORAL-2 MPI
// benchmarks under weak scaling on SuperMUC-NG, with the production
// plugin set ("total") and a tester-plugin configuration of equal
// sensor count ("core"). AMG's fine-grained communication makes its
// overhead grow with node count; the other applications stay flat.
func Fig4() []Fig4Point {
	var out []Fig4Point
	for _, app := range workload.CORAL2 {
		for _, nodes := range NodeCounts {
			for _, core := range []bool{false, true} {
				coord := 0
				if core {
					coord = 1
				}
				j := arch.Jitter(int(app.Name[0]), nodes, coord)
				out = append(out, Fig4Point{
					App:         app.Name,
					Nodes:       nodes,
					Core:        core,
					OverheadPct: arch.Round2(app.Overhead(nodes, core, j)),
				})
			}
		}
	}
	return out
}

// RenderFig4 writes the figure's data series.
func RenderFig4(w io.Writer, pts []Fig4Point) {
	header := []string{"Benchmark", "Nodes", "Config", "Overhead[%]"}
	var body [][]string
	for _, p := range pts {
		cfg := "total"
		if p.Core {
			cfg = "core"
		}
		body = append(body, []string{p.App, fmt.Sprint(p.Nodes), cfg, fmtF(p.OverheadPct, 2)})
	}
	writeTable(w, header, body)
}
