package bench

import (
	"dcdb/internal/collectagent"
	"dcdb/internal/store"
)

// newQuietAgent builds an in-process Collect Agent for measurement
// loops.
func newQuietAgent(backend store.Backend) *collectagent.Agent {
	return collectagent.New(backend, nil, collectagent.Options{Quiet: true})
}
