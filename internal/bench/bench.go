// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§6) and case studies
// (§7). Each driver returns structured results and renders a
// paper-style text table; cmd/dcdbbench exposes them on the command
// line and bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers come from the architecture and workload models
// calibrated against the paper (see DESIGN.md); what the drivers verify
// is the shape of each result — orderings, scaling trends, crossovers —
// plus real measured microbenchmarks of this Go implementation's
// components where the hardware permits.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Intervals and sensor counts of the 25-configuration sweep used by
// Figures 5–7 (paper §6.2.2).
var (
	SweepIntervals = []time.Duration{
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		1000 * time.Millisecond,
		10000 * time.Millisecond,
	}
	SweepSensors = []int{10, 100, 1000, 5000, 10000}
)

// NodeCounts is the weak-scaling sweep of Figure 4.
var NodeCounts = []int{128, 256, 512, 1024}

// HostCounts is the concurrent-Pusher sweep of Figure 8.
var HostCounts = []int{1, 2, 5, 10, 20, 50}

// writeTable renders rows with aligned columns.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
