package bench

import (
	"fmt"
	"io"
	"time"

	"dcdb/internal/collectagent"
	"dcdb/internal/core"
	"dcdb/internal/sim/arch"
	"dcdb/internal/store"
)

// Fig8Cell is one configuration of Figure 8: concurrent Pusher hosts ×
// sensors per host, at a 1-second sampling interval.
type Fig8Cell struct {
	Hosts      int
	Sensors    int
	RatePerSec float64
	CPULoadPct float64 // 100 % = one saturated core
}

// Fig8 reproduces Figure 8: the Collect Agent's aggregate CPU load as
// the total insert rate grows. The paper saturates one core at 50
// hosts × 1000 sensors and reaches ~900 % (nine cores) at the 500 000
// readings/s worst case.
func Fig8() []Fig8Cell {
	var out []Fig8Cell
	for _, hosts := range HostCounts {
		for _, sensors := range SweepSensors {
			rate := float64(hosts) * arch.SensorRate(sensors, time.Second)
			out = append(out, Fig8Cell{
				Hosts:      hosts,
				Sensors:    sensors,
				RatePerSec: rate,
				CPULoadPct: arch.Round2(arch.CollectAgentCPULoad(rate)),
			})
		}
	}
	return out
}

// RenderFig8 writes the grid.
func RenderFig8(w io.Writer, cells []Fig8Cell) {
	fmt.Fprintln(w, "Collect Agent CPU load [%] (rows: hosts, cols: sensors per host, 1 s interval)")
	header := []string{"Hosts"}
	for _, s := range SweepSensors {
		header = append(header, fmt.Sprint(s))
	}
	var body [][]string
	i := 0
	for _, hosts := range HostCounts {
		row := []string{fmt.Sprint(hosts)}
		for range SweepSensors {
			row = append(row, fmtF(cells[i].CPULoadPct, 1))
			i++
		}
		body = append(body, row)
	}
	writeTable(w, header, body)
}

// MeasuredAgentThroughput measures this implementation's real Collect
// Agent ingest path (decode → SID translation → store write → cache)
// in-process for the given duration and returns readings/s and the
// implied CPU cost per reading. It grounds the Figure 8 model in an
// actual measurement on the current machine.
func MeasuredAgentThroughput(d time.Duration) (perSec float64, nsPerReading float64) {
	backend := store.NewNode(0)
	agent := collectagent.New(backend, nil, collectagent.Options{Quiet: true})
	payload := core.EncodeReadings([]core.Reading{{Timestamp: 1, Value: 1}})
	topics := make([]string, 64)
	for i := range topics {
		topics[i] = fmt.Sprintf("/bench/h%02d/s%02d/v", i/8, i%8)
	}
	start := time.Now()
	var n int64
	for time.Since(start) < d {
		for _, tp := range topics {
			agent.Handle(tp, payload)
		}
		n += int64(len(topics))
	}
	elapsed := time.Since(start)
	perSec = float64(n) / elapsed.Seconds()
	nsPerReading = float64(elapsed.Nanoseconds()) / float64(n)
	return perSec, nsPerReading
}
