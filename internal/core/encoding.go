package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Pushers publish sensor readings as compact binary MQTT payloads: a
// sequence of 16-byte records, each an 8-byte big-endian timestamp
// (nanoseconds since the Unix epoch) followed by an 8-byte IEEE-754
// value. Batching several readings into one message is how the burst
// forwarding mode (paper §6.2.1) reduces network interference.

const readingWireSize = 16

// EncodeReadings serialises a batch of readings into an MQTT payload.
func EncodeReadings(rs []Reading) []byte {
	buf := make([]byte, len(rs)*readingWireSize)
	for i, r := range rs {
		off := i * readingWireSize
		binary.BigEndian.PutUint64(buf[off:], uint64(r.Timestamp))
		binary.BigEndian.PutUint64(buf[off+8:], math.Float64bits(r.Value))
	}
	return buf
}

// DecodeReadings parses an MQTT payload produced by EncodeReadings.
func DecodeReadings(payload []byte) ([]Reading, error) {
	if len(payload)%readingWireSize != 0 {
		return nil, fmt.Errorf("core: reading payload length %d not a multiple of %d", len(payload), readingWireSize)
	}
	rs := make([]Reading, len(payload)/readingWireSize)
	for i := range rs {
		off := i * readingWireSize
		rs[i].Timestamp = int64(binary.BigEndian.Uint64(payload[off:]))
		rs[i].Value = math.Float64frombits(binary.BigEndian.Uint64(payload[off+8:]))
	}
	return rs, nil
}
