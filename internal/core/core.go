// Package core defines the sensor data model shared by every DCDB
// component: time-series readings, sensor metadata, the 128-bit Sensor ID
// (SID) and its mapping to hierarchical MQTT topics, and the sensor
// hierarchy tree used for navigation.
//
// In DCDB every data point of a monitored entity is called a sensor: a
// physical probe (temperature, power, flow), a CPU performance-counter
// event, the bandwidth of a network link, or the energy meter of a PDU.
// Each sensor's data is a time series of (timestamp, value) pairs; this
// format is enforced across the framework so that data from the facility,
// the system and applications stays uniform and comparable.
package core

import (
	"fmt"
	"time"
)

// Reading is a single data point of a sensor's time series.
type Reading struct {
	// Timestamp is the acquisition time in nanoseconds since the Unix
	// epoch. Readings within one sensor group share the same timestamp
	// because groups are read collectively (paper §4.1).
	Timestamp int64
	// Value is the numerical sensor value. DCDB enforces numerical
	// time-series values across all data sources.
	Value float64
}

// Time returns the reading's timestamp as a time.Time.
func (r Reading) Time() time.Time { return time.Unix(0, r.Timestamp) }

// String formats the reading as "<RFC3339Nano>,<value>".
func (r Reading) String() string {
	return fmt.Sprintf("%s,%g", r.Time().UTC().Format(time.RFC3339Nano), r.Value)
}

// SensorReading couples a reading with the sensor's MQTT topic. This is
// the unit of transport between Pushers and Collect Agents.
type SensorReading struct {
	Topic   string
	Reading Reading
}

// Metadata describes the static properties of a sensor, configured via
// the dcdbconfig tool and stored alongside the time series.
type Metadata struct {
	// Topic is the unique MQTT topic of the sensor, e.g.
	// "/lrz/coolmuc3/rack01/chassis02/node03/cpu00/instructions".
	Topic string
	// PublicName is an optional human-readable alias.
	PublicName string
	// Unit is the physical unit of the readings (see package units).
	Unit string
	// Scale is a multiplicative factor applied when converting raw
	// readings to the declared unit.
	Scale float64
	// Interval is the sampling interval the sensor is configured with.
	Interval time.Duration
	// TTL is how long readings are retained in the Storage Backend;
	// zero means forever.
	TTL time.Duration
	// Integrable marks monotonically increasing counters whose rate
	// (derivative) is the quantity of interest.
	Integrable bool
	// Virtual marks sensors evaluated from an expression rather than
	// sampled (see package vsensor).
	Virtual bool
	// Expression holds the arithmetic expression of a virtual sensor.
	Expression string
}

// Validate reports whether the metadata is internally consistent.
func (m *Metadata) Validate() error {
	if m.Topic == "" {
		return fmt.Errorf("core: metadata without topic")
	}
	if _, err := ParseTopic(m.Topic); err != nil {
		return fmt.Errorf("core: metadata topic %q: %w", m.Topic, err)
	}
	if m.Virtual && m.Expression == "" {
		return fmt.Errorf("core: virtual sensor %q without expression", m.Topic)
	}
	if !m.Virtual && m.Expression != "" {
		return fmt.Errorf("core: non-virtual sensor %q with expression", m.Topic)
	}
	if m.Scale < 0 {
		return fmt.Errorf("core: sensor %q with negative scale", m.Topic)
	}
	return nil
}

// EffectiveScale returns the scale factor, defaulting to 1 when unset.
func (m *Metadata) EffectiveScale() float64 {
	if m.Scale == 0 {
		return 1
	}
	return m.Scale
}
