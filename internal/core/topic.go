package core

import (
	"fmt"
	"strings"
)

// MaxTopicLevels is the maximum depth of the sensor hierarchy. The
// 128-bit SID reserves 16 bits per level, so eight levels fit exactly
// (e.g. room / system / rack / chassis / node / cpu / core / metric).
const MaxTopicLevels = 8

// ParseTopic splits a sensor MQTT topic into its hierarchy components.
// Topics look like file-system paths: "/lrz/cm3/r01/c02/n03/power".
// A leading slash is optional; empty components are rejected.
func ParseTopic(topic string) ([]string, error) {
	t := strings.TrimPrefix(topic, "/")
	if t == "" {
		return nil, fmt.Errorf("empty topic")
	}
	parts := strings.Split(t, "/")
	if len(parts) > MaxTopicLevels {
		return nil, fmt.Errorf("topic has %d levels, maximum is %d", len(parts), MaxTopicLevels)
	}
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("topic %q contains an empty level", topic)
		}
		if strings.ContainsAny(p, "#+") {
			return nil, fmt.Errorf("topic %q contains wildcard characters", topic)
		}
	}
	return parts, nil
}

// JoinTopic assembles hierarchy components into a canonical topic with a
// leading slash.
func JoinTopic(parts []string) string {
	return "/" + strings.Join(parts, "/")
}

// CanonicalTopic normalizes a topic to the leading-slash form used as
// map key throughout DCDB.
func CanonicalTopic(topic string) (string, error) {
	parts, err := ParseTopic(topic)
	if err != nil {
		return "", err
	}
	return JoinTopic(parts), nil
}

// TopicMatches reports whether topic matches an MQTT subscription
// filter. Filters support the standard MQTT wildcards: '+' matches one
// level, a trailing '#' matches any number of remaining levels.
func TopicMatches(filter, topic string) bool {
	f := strings.Split(strings.TrimPrefix(filter, "/"), "/")
	t := strings.Split(strings.TrimPrefix(topic, "/"), "/")
	for i, fp := range f {
		if fp == "#" {
			return i == len(f)-1
		}
		if i >= len(t) {
			return false
		}
		if fp != "+" && fp != t[i] {
			return false
		}
	}
	return len(f) == len(t)
}
