package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestReadingTime(t *testing.T) {
	ts := time.Date(2019, 11, 17, 12, 0, 0, 500, time.UTC)
	r := Reading{Timestamp: ts.UnixNano(), Value: 42.5}
	if !r.Time().Equal(ts) {
		t.Fatalf("Time() = %v, want %v", r.Time(), ts)
	}
	if s := r.String(); s != "2019-11-17T12:00:00.0000005Z,42.5" {
		t.Fatalf("String() = %q", s)
	}
}

func TestMetadataValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Metadata
		ok   bool
	}{
		{"plain", Metadata{Topic: "/a/b/c"}, true},
		{"no topic", Metadata{}, false},
		{"bad topic", Metadata{Topic: "/a//c"}, false},
		{"virtual ok", Metadata{Topic: "/v/pue", Virtual: true, Expression: "a/b"}, true},
		{"virtual no expr", Metadata{Topic: "/v/pue", Virtual: true}, false},
		{"expr not virtual", Metadata{Topic: "/a", Expression: "1+1"}, false},
		{"negative scale", Metadata{Topic: "/a", Scale: -2}, false},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMetadataEffectiveScale(t *testing.T) {
	m := Metadata{Topic: "/a"}
	if m.EffectiveScale() != 1 {
		t.Fatalf("default scale = %v, want 1", m.EffectiveScale())
	}
	m.Scale = 0.001
	if m.EffectiveScale() != 0.001 {
		t.Fatalf("scale = %v, want 0.001", m.EffectiveScale())
	}
}

func TestParseTopic(t *testing.T) {
	parts, err := ParseTopic("/lrz/cm3/r01/node5/power")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 || parts[0] != "lrz" || parts[4] != "power" {
		t.Fatalf("parts = %v", parts)
	}
	if _, err := ParseTopic(""); err == nil {
		t.Error("empty topic accepted")
	}
	if _, err := ParseTopic("/a//b"); err == nil {
		t.Error("empty level accepted")
	}
	if _, err := ParseTopic("/a/+/b"); err == nil {
		t.Error("wildcard accepted")
	}
	if _, err := ParseTopic("/1/2/3/4/5/6/7/8/9"); err == nil {
		t.Error("over-deep topic accepted")
	}
	// Leading slash optional.
	p2, err := ParseTopic("a/b")
	if err != nil || len(p2) != 2 {
		t.Fatalf("ParseTopic(a/b) = %v, %v", p2, err)
	}
}

func TestCanonicalTopic(t *testing.T) {
	got, err := CanonicalTopic("a/b/c")
	if err != nil || got != "/a/b/c" {
		t.Fatalf("CanonicalTopic = %q, %v", got, err)
	}
}

func TestTopicMatches(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"/a/b/c", "/a/b/c", true},
		{"/a/b/c", "/a/b/d", false},
		{"/a/+/c", "/a/b/c", true},
		{"/a/+/c", "/a/b/c/d", false},
		{"/a/#", "/a/b/c/d", true},
		{"/a/#", "/a/b", true},
		{"/a/#", "/b/c", false},
		{"#", "/anything/below", true},
		{"/a/+", "/a/b", true},
		{"/a/+/#", "/a/b/c", true},
	}
	for _, c := range cases {
		if got := TopicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func TestSensorIDLevels(t *testing.T) {
	var id SensorID
	for i := 0; i < MaxTopicLevels; i++ {
		id = id.WithLevel(i, uint16(i+1)*100)
	}
	for i := 0; i < MaxTopicLevels; i++ {
		if got := id.Level(i); got != uint16(i+1)*100 {
			t.Errorf("Level(%d) = %d, want %d", i, got, (i+1)*100)
		}
	}
	// Out-of-range accesses are harmless.
	if id.Level(-1) != 0 || id.Level(MaxTopicLevels) != 0 {
		t.Error("out-of-range Level not zero")
	}
	if id.WithLevel(99, 5) != id {
		t.Error("out-of-range WithLevel mutated the SID")
	}
}

func TestSensorIDPrefix(t *testing.T) {
	var id SensorID
	for i := 0; i < MaxTopicLevels; i++ {
		id = id.WithLevel(i, uint16(i+1))
	}
	for n := 0; n <= MaxTopicLevels; n++ {
		p := id.Prefix(n)
		for i := 0; i < MaxTopicLevels; i++ {
			want := uint16(0)
			if i < n {
				want = uint16(i + 1)
			}
			if got := p.Level(i); got != want {
				t.Fatalf("Prefix(%d).Level(%d) = %d, want %d", n, i, got, want)
			}
		}
	}
	if id.Prefix(-1) != (SensorID{}) {
		t.Error("negative prefix not empty")
	}
	if id.Prefix(99) != id {
		t.Error("over-deep prefix changed SID")
	}
}

func TestSensorIDCompareAndString(t *testing.T) {
	a := SensorID{Hi: 1, Lo: 2}
	b := SensorID{Hi: 1, Lo: 3}
	c := SensorID{Hi: 2, Lo: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 || b.Compare(c) != -1 || c.Compare(b) != 1 {
		t.Error("Compare ordering wrong")
	}
	s := a.String()
	if len(s) != 32 {
		t.Fatalf("String() length = %d", len(s))
	}
	back, err := ParseSensorID(s)
	if err != nil || back != a {
		t.Fatalf("ParseSensorID(%q) = %v, %v", s, back, err)
	}
	if _, err := ParseSensorID("zz"); err == nil {
		t.Error("short SID accepted")
	}
	if _, err := ParseSensorID("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"); err == nil {
		t.Error("non-hex SID accepted")
	}
}

func TestSensorIDRoundtripQuick(t *testing.T) {
	f := func(hi, lo uint64) bool {
		id := SensorID{Hi: hi, Lo: lo}
		back, err := ParseSensorID(id.String())
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSensorIDLevelRoundtripQuick(t *testing.T) {
	f := func(codes [MaxTopicLevels]uint16) bool {
		var id SensorID
		for i, c := range codes {
			id = id.WithLevel(i, c)
		}
		for i, c := range codes {
			if id.Level(i) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopicMapperRoundtrip(t *testing.T) {
	m := NewTopicMapper()
	topics := []string{
		"/lrz/cm3/r01/n01/power",
		"/lrz/cm3/r01/n02/power",
		"/lrz/cm3/r01/n01/temp",
		"/lrz/sng/r01/n01/power",
	}
	ids := make(map[SensorID]string)
	for _, tp := range topics {
		id, err := m.Map(tp)
		if err != nil {
			t.Fatal(err)
		}
		if other, dup := ids[id]; dup {
			t.Fatalf("SID collision between %q and %q", tp, other)
		}
		ids[id] = tp
		back, ok := m.Reverse(id)
		if !ok || back != tp {
			t.Fatalf("Reverse(%v) = %q, %v; want %q", id, back, ok, tp)
		}
	}
	// Mapping is stable.
	id1, _ := m.Map(topics[0])
	id2, _ := m.Map(topics[0])
	if id1 != id2 {
		t.Error("Map not idempotent")
	}
}

func TestTopicMapperSharedPrefixesShareSIDPrefixes(t *testing.T) {
	m := NewTopicMapper()
	a, _ := m.Map("/lrz/cm3/r01/n01/power")
	b, _ := m.Map("/lrz/cm3/r01/n02/power")
	c, _ := m.Map("/lrz/sng/r01/n01/power")
	if a.Prefix(3) != b.Prefix(3) {
		t.Error("same subtree should share prefix")
	}
	if a.Prefix(2) == c.Prefix(2) {
		t.Error("different systems should differ at level 2")
	}
}

func TestTopicMapperLookup(t *testing.T) {
	m := NewTopicMapper()
	if _, ok := m.Lookup("/a/b"); ok {
		t.Error("Lookup invented codes")
	}
	want, _ := m.Map("/a/b")
	got, ok := m.Lookup("/a/b")
	if !ok || got != want {
		t.Fatalf("Lookup = %v, %v; want %v", got, ok, want)
	}
	if _, ok := m.Lookup("bad//topic"); ok {
		t.Error("Lookup accepted malformed topic")
	}
}

func TestTopicMapperExportImport(t *testing.T) {
	m := NewTopicMapper()
	topics := []string{"/x/y/z", "/x/q/z", "/w/space name/v"}
	want := make(map[string]SensorID)
	for _, tp := range topics {
		id, err := m.Map(tp)
		if err != nil {
			t.Fatal(err)
		}
		want[tp] = id
	}
	lines := m.Export()
	m2 := NewTopicMapper()
	if err := m2.Import(lines); err != nil {
		t.Fatal(err)
	}
	for tp, id := range want {
		got, ok := m2.Lookup(tp)
		if !ok || got != id {
			t.Errorf("after import, Lookup(%q) = %v, %v; want %v", tp, got, ok, id)
		}
	}
	// Conflicting import is rejected.
	if err := m2.Import([]string{"0/x 99"}); err == nil {
		t.Error("conflicting import accepted")
	}
	if err := m2.Import([]string{"garbage"}); err == nil {
		t.Error("garbage import accepted")
	}
	if err := m2.Import([]string{"9/x 1"}); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestTopicMapperReverseUnknown(t *testing.T) {
	m := NewTopicMapper()
	if _, ok := m.Reverse(SensorID{Hi: 0x0001_0000_0000_0000}); ok {
		t.Error("Reverse of unassigned code succeeded")
	}
	if _, ok := m.Reverse(SensorID{}); ok {
		t.Error("Reverse of empty SID succeeded")
	}
}

func TestHierarchy(t *testing.T) {
	h := NewHierarchy()
	topics := []string{
		"/lrz/cm3/r01/n01/power",
		"/lrz/cm3/r01/n01/temp",
		"/lrz/cm3/r01/n02/power",
		"/lrz/sng/r02/n01/power",
	}
	for _, tp := range topics {
		if err := h.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Add("//bad"); err == nil {
		t.Error("bad topic accepted")
	}
	if got := h.Children(""); len(got) != 1 || got[0] != "lrz" {
		t.Fatalf("Children(root) = %v", got)
	}
	if got := h.Children("/lrz"); len(got) != 2 || got[0] != "cm3" || got[1] != "sng" {
		t.Fatalf("Children(/lrz) = %v", got)
	}
	if got := h.Children("/lrz/cm3/r01/n01"); len(got) != 2 {
		t.Fatalf("leaf children = %v", got)
	}
	if h.Children("/nope") != nil {
		t.Error("Children of unknown path not nil")
	}
	if !h.IsSensor("/lrz/cm3/r01/n01/power") || h.IsSensor("/lrz/cm3") || h.IsSensor("/zz") {
		t.Error("IsSensor wrong")
	}
	sensors := h.Sensors("/lrz/cm3")
	if len(sensors) != 3 {
		t.Fatalf("Sensors(/lrz/cm3) = %v", sensors)
	}
	all := h.Sensors("")
	if len(all) != 4 {
		t.Fatalf("Sensors(root) = %v", all)
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.Sensors("/none") != nil {
		t.Error("Sensors of unknown path not nil")
	}
}

func TestTopicMapperConcurrentMap(t *testing.T) {
	// Concurrent Map calls racing on first-sight assignment and on the
	// read-mostly fast path must still produce a consistent 1:1
	// topic↔SID mapping.
	m := NewTopicMapper()
	topics := make([]string, 64)
	for i := range topics {
		topics[i] = JoinTopic([]string{"race", "sys",
			string(rune('a' + i%8)), string(rune('a' + i/8)), "power"})
	}
	const workers = 8
	got := make([][]SensorID, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			ids := make([]SensorID, len(topics))
			// Each worker walks the topic list from a different
			// offset so first-sight races actually happen.
			for i := range topics {
				tp := topics[(i+w*13)%len(topics)]
				id, err := m.Map(tp)
				if err != nil {
					t.Error(err)
				}
				ids[(i+w*13)%len(topics)] = id
			}
			got[w] = ids
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	// All workers agree on every topic's SID.
	for w := 1; w < workers; w++ {
		for i := range topics {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d mapped %q to %v, worker 0 to %v",
					w, topics[i], got[w][i], got[0][i])
			}
		}
	}
	// The mapping is injective and reversible.
	seen := make(map[SensorID]string)
	for i, tp := range topics {
		if prev, dup := seen[got[0][i]]; dup {
			t.Fatalf("topics %q and %q share SID %v", prev, tp, got[0][i])
		}
		seen[got[0][i]] = tp
		back, ok := m.Reverse(got[0][i])
		if !ok || back != tp {
			t.Fatalf("Reverse(%v) = %q, %v; want %q", got[0][i], back, ok, tp)
		}
	}
}

func TestCanonicalTopicRejectsMalformed(t *testing.T) {
	if _, err := CanonicalTopic(""); err == nil {
		t.Error("empty topic accepted")
	}
}
