package core

import (
	"sort"
	"strings"
	"sync"
)

// Hierarchy is a navigable tree over the sensor topic space. Collect
// Agents and the Grafana data source use it to let users browse levels
// (room, system, rack, chassis, node, CPU, …) and enumerate the sensors
// below any subtree (paper §5.4). It is safe for concurrent use.
type Hierarchy struct {
	mu   sync.RWMutex
	root *hnode
}

type hnode struct {
	children map[string]*hnode
	sensor   bool // a full topic terminates here
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{root: &hnode{children: make(map[string]*hnode)}}
}

// Add inserts a sensor topic into the tree. The Collect Agent calls it
// for every message, so known topics take only the shared read lock;
// the exclusive lock is reserved for a topic's first sight.
func (h *Hierarchy) Add(topic string) error {
	parts, err := ParseTopic(topic)
	if err != nil {
		return err
	}
	h.mu.RLock()
	n := h.root
	for _, p := range parts {
		c, ok := n.children[p]
		if !ok {
			n = nil
			break
		}
		n = c
	}
	known := n != nil && n.sensor
	h.mu.RUnlock()
	if known {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n = h.root
	for _, p := range parts {
		c, ok := n.children[p]
		if !ok {
			c = &hnode{children: make(map[string]*hnode)}
			n.children[p] = c
		}
		n = c
	}
	n.sensor = true
	return nil
}

// Children lists the component names directly below the given path
// ("" or "/" for the root), sorted alphabetically.
func (h *Hierarchy) Children(path string) []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := h.navigate(path)
	if n == nil {
		return nil
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsSensor reports whether a full sensor topic terminates at path.
func (h *Hierarchy) IsSensor(path string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := h.navigate(path)
	return n != nil && n.sensor
}

// Sensors returns all sensor topics below the given path (inclusive),
// sorted. An empty path returns every known sensor.
func (h *Hierarchy) Sensors(path string) []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := h.navigate(path)
	if n == nil {
		return nil
	}
	prefix := "/" + strings.Trim(strings.TrimPrefix(path, "/"), "/")
	if prefix == "/" {
		prefix = ""
	}
	var out []string
	collect(n, prefix, &out)
	sort.Strings(out)
	return out
}

// Len returns the number of sensors in the tree.
func (h *Hierarchy) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var n int
	var walk func(*hnode)
	walk = func(x *hnode) {
		if x.sensor {
			n++
		}
		for _, c := range x.children {
			walk(c)
		}
	}
	walk(h.root)
	return n
}

func collect(n *hnode, prefix string, out *[]string) {
	if n.sensor {
		*out = append(*out, prefix)
	}
	for name, c := range n.children {
		collect(c, prefix+"/"+name, out)
	}
}

func (h *Hierarchy) navigate(path string) *hnode {
	n := h.root
	p := strings.Trim(strings.TrimPrefix(path, "/"), "/")
	if p == "" {
		return n
	}
	for _, part := range strings.Split(p, "/") {
		c, ok := n.children[part]
		if !ok {
			return nil
		}
		n = c
	}
	return n
}
