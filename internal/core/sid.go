package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SensorID is the 128-bit numerical key under which a sensor's readings
// are stored in a Storage Backend. Collect Agents translate each MQTT
// topic into a unique SID (paper §4.2): the topic is split into its
// hierarchical components and each component is mapped to a numeric code
// stored in a 16-bit field of the SID, most significant field first.
// The hierarchical layout makes SID prefixes meaningful: all sensors
// below one subtree share a numeric prefix, which the Storage Backend
// exploits as partition key (paper §4.3).
type SensorID struct {
	Hi, Lo uint64
}

// Level extracts the 16-bit code of hierarchy level i (0 = root).
func (s SensorID) Level(i int) uint16 {
	switch {
	case i < 0 || i >= MaxTopicLevels:
		return 0
	case i < 4:
		return uint16(s.Hi >> (48 - 16*uint(i)))
	default:
		return uint16(s.Lo >> (48 - 16*uint(i-4)))
	}
}

// WithLevel returns a copy of the SID with hierarchy level i set to code.
func (s SensorID) WithLevel(i int, code uint16) SensorID {
	if i < 0 || i >= MaxTopicLevels {
		return s
	}
	if i < 4 {
		shift := 48 - 16*uint(i)
		s.Hi = s.Hi&^(0xffff<<shift) | uint64(code)<<shift
	} else {
		shift := 48 - 16*uint(i-4)
		s.Lo = s.Lo&^(0xffff<<shift) | uint64(code)<<shift
	}
	return s
}

// Prefix zeroes all levels at depth >= n, yielding the partition prefix
// of the sensor's subtree at depth n.
func (s SensorID) Prefix(n int) SensorID {
	switch {
	case n <= 0:
		return SensorID{}
	case n >= MaxTopicLevels:
		return s
	case n <= 4:
		shift := uint(64 - 16*n)
		if shift == 64 {
			return SensorID{Hi: s.Hi}
		}
		return SensorID{Hi: s.Hi >> shift << shift}
	default:
		shift := uint(64 - 16*(n-4))
		return SensorID{Hi: s.Hi, Lo: s.Lo >> shift << shift}
	}
}

// Compare orders SIDs lexicographically (Hi first). It returns -1, 0 or 1.
func (s SensorID) Compare(o SensorID) int {
	switch {
	case s.Hi < o.Hi:
		return -1
	case s.Hi > o.Hi:
		return 1
	case s.Lo < o.Lo:
		return -1
	case s.Lo > o.Lo:
		return 1
	}
	return 0
}

// String renders the SID as 32 hex digits.
func (s SensorID) String() string { return fmt.Sprintf("%016x%016x", s.Hi, s.Lo) }

// ParseSensorID parses the 32-hex-digit form produced by String.
func ParseSensorID(s string) (SensorID, error) {
	if len(s) != 32 {
		return SensorID{}, fmt.Errorf("core: SID %q must be 32 hex digits", s)
	}
	var id SensorID
	if _, err := fmt.Sscanf(s[:16], "%016x", &id.Hi); err != nil {
		return SensorID{}, fmt.Errorf("core: bad SID %q: %w", s, err)
	}
	if _, err := fmt.Sscanf(s[16:], "%016x", &id.Lo); err != nil {
		return SensorID{}, fmt.Errorf("core: bad SID %q: %w", s, err)
	}
	return id, nil
}

// TopicMapper maintains the 1:1 mapping between MQTT topics and SIDs.
// Each hierarchy level owns a dictionary assigning dense 16-bit codes to
// the component strings observed at that level, so the mapping is
// collision-free and reversible. Collect Agents share one mapper; its
// state can be exported/imported so that SIDs stay stable across
// restarts.
//
// The mapper is read-mostly: after a sensor's first message every
// component is already in the dictionaries, and a Collect Agent
// translates a topic on every MQTT PUBLISH. The dictionaries are
// therefore kept in an immutable copy-on-write snapshot — readers (Map
// of a known topic, Lookup, Reverse, Export) follow one atomic pointer
// and never write shared state, so translation scales linearly with
// cores. Writers (first sight of a component, Import) serialize on a
// mutex, clone the level dictionaries they modify and atomically
// publish a new snapshot.
type TopicMapper struct {
	wmu  sync.Mutex // serializes writers; readers only load snap
	snap atomic.Pointer[mapperState]
}

// mapperState is an immutable snapshot of the level dictionaries.
// Published states are never mutated.
type mapperState struct {
	levels [MaxTopicLevels]levelDict
}

type levelDict struct {
	codes map[string]uint16
	names []string // code-1 -> component (code 0 is reserved for "absent")
}

// resolve translates already-parsed components against this snapshot.
func (st *mapperState) resolve(parts []string) (SensorID, bool) {
	var id SensorID
	for i, p := range parts {
		code, ok := st.levels[i].codes[p]
		if !ok {
			return SensorID{}, false
		}
		id = id.WithLevel(i, code)
	}
	return id, true
}

// cloneLevel returns a private copy of one level dictionary with room
// for one more component.
func cloneLevel(d levelDict) levelDict {
	codes := make(map[string]uint16, len(d.codes)+1)
	for k, v := range d.codes {
		codes[k] = v
	}
	names := make([]string, len(d.names), len(d.names)+1)
	copy(names, d.names)
	return levelDict{codes: codes, names: names}
}

// NewTopicMapper returns an empty mapper.
func NewTopicMapper() *TopicMapper {
	m := &TopicMapper{}
	st := &mapperState{}
	for i := range st.levels {
		st.levels[i].codes = make(map[string]uint16)
	}
	m.snap.Store(st)
	return m
}

// Map translates a topic to its SID, assigning new level codes on first
// sight. It fails if a level dictionary is exhausted (65535 distinct
// components) or the topic is malformed. Nothing is published on
// failure.
func (m *TopicMapper) Map(topic string) (SensorID, error) {
	id, _, err := m.MapFirst(topic)
	return id, err
}

// MapFirst is Map, additionally reporting whether the call assigned any
// new level code — i.e. whether this topic was seen for the first
// time. Consumers persisting the dictionary (a durable Collect Agent)
// use it to save the map exactly when it grows.
func (m *TopicMapper) MapFirst(topic string) (SensorID, bool, error) {
	parts, err := ParseTopic(topic)
	if err != nil {
		return SensorID{}, false, err
	}
	if id, ok := m.snap.Load().resolve(parts); ok {
		return id, false, nil
	}
	// First sight of at least one component: clone, assign, publish.
	m.wmu.Lock()
	defer m.wmu.Unlock()
	st := m.snap.Load()
	if id, ok := st.resolve(parts); ok {
		// Assigned by another writer while we waited for the lock.
		return id, false, nil
	}
	ns := *st // shares unmodified level dictionaries
	var cloned [MaxTopicLevels]bool
	var id SensorID
	for i, p := range parts {
		d := &ns.levels[i]
		code, ok := d.codes[p]
		if !ok {
			if len(d.names) >= 0xffff {
				return SensorID{}, false, fmt.Errorf("core: level %d dictionary exhausted", i)
			}
			if !cloned[i] {
				*d = cloneLevel(*d)
				cloned[i] = true
			}
			d.names = append(d.names, p)
			code = uint16(len(d.names)) // codes start at 1
			d.codes[p] = code
		}
		id = id.WithLevel(i, code)
	}
	m.snap.Store(&ns)
	return id, true, nil
}

// Lookup translates a topic without assigning new codes. The boolean is
// false when any component is unknown.
func (m *TopicMapper) Lookup(topic string) (SensorID, bool) {
	parts, err := ParseTopic(topic)
	if err != nil {
		return SensorID{}, false
	}
	return m.snap.Load().resolve(parts)
}

// Reverse reconstructs the topic of a SID. The boolean is false when the
// SID contains codes the mapper never assigned.
func (m *TopicMapper) Reverse(id SensorID) (string, bool) {
	st := m.snap.Load()
	var parts []string
	for i := 0; i < MaxTopicLevels; i++ {
		code := id.Level(i)
		if code == 0 {
			break
		}
		d := &st.levels[i]
		if int(code) > len(d.names) {
			return "", false
		}
		parts = append(parts, d.names[code-1])
	}
	if len(parts) == 0 {
		return "", false
	}
	return JoinTopic(parts), true
}

// PrefixOf maps the first n components of a topic to a partition prefix
// SID, assigning codes as needed.
func (m *TopicMapper) PrefixOf(topic string, n int) (SensorID, error) {
	id, err := m.Map(topic)
	if err != nil {
		return SensorID{}, err
	}
	return id.Prefix(n), nil
}

// Export returns a stable snapshot of the dictionaries as
// "level/component code" lines, sorted for reproducibility.
func (m *TopicMapper) Export() []string {
	st := m.snap.Load()
	var out []string
	for i := range st.levels {
		for name, code := range st.levels[i].codes {
			out = append(out, fmt.Sprintf("%d/%s %d", i, name, code))
		}
	}
	sort.Strings(out)
	return out
}

// Import loads dictionary entries produced by Export. Entries must not
// conflict with codes already assigned. The import is atomic: on error
// no entry is applied.
func (m *TopicMapper) Import(lines []string) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	st := m.snap.Load()
	ns := *st
	var cloned [MaxTopicLevels]bool
	for _, ln := range lines {
		slash := strings.IndexByte(ln, '/')
		if slash < 0 {
			return fmt.Errorf("core: bad mapper line %q", ln)
		}
		var lvl int
		if _, err := fmt.Sscanf(ln[:slash], "%d", &lvl); err != nil {
			return fmt.Errorf("core: bad mapper line %q: %w", ln, err)
		}
		rest := ln[slash+1:]
		sp := strings.LastIndexByte(rest, ' ')
		if sp <= 0 {
			return fmt.Errorf("core: bad mapper line %q", ln)
		}
		name := rest[:sp]
		var code uint16
		if _, err := fmt.Sscanf(rest[sp+1:], "%d", &code); err != nil || code == 0 {
			return fmt.Errorf("core: bad code in mapper line %q", ln)
		}
		if lvl < 0 || lvl >= MaxTopicLevels {
			return fmt.Errorf("core: bad level in mapper line %q", ln)
		}
		d := &ns.levels[lvl]
		if have, ok := d.codes[name]; ok && have != code {
			return fmt.Errorf("core: conflicting code for %d/%s", lvl, name)
		}
		if !cloned[lvl] {
			*d = cloneLevel(*d)
			cloned[lvl] = true
		}
		for int(code) > len(d.names) {
			d.names = append(d.names, "")
		}
		if cur := d.names[code-1]; cur != "" && cur != name {
			return fmt.Errorf("core: code %d at level %d already bound to %q", code, lvl, cur)
		}
		d.names[code-1] = name
		d.codes[name] = code
	}
	m.snap.Store(&ns)
	return nil
}
