package core

import (
	"math"
	"testing"
)

func TestReadingsWireRoundTrip(t *testing.T) {
	rs := []Reading{
		{Timestamp: 1, Value: 1.5},
		{Timestamp: -9e15, Value: math.Inf(1)},
		{Timestamp: 1 << 60, Value: -0.0},
	}
	got, err := DecodeReadings(EncodeReadings(rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("decoded %d readings, want %d", len(got), len(rs))
	}
	for i := range rs {
		if got[i].Timestamp != rs[i].Timestamp ||
			math.Float64bits(got[i].Value) != math.Float64bits(rs[i].Value) {
			t.Fatalf("reading %d: %+v != %+v", i, got[i], rs[i])
		}
	}
	if got, err := DecodeReadings(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty payload: %v, %v", got, err)
	}
	if _, err := DecodeReadings(make([]byte, 17)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestPrefixOf(t *testing.T) {
	m := NewTopicMapper()
	full, err := m.Map("/rack1/node2/sensor3")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.PrefixOf("/rack1/node2/sensor3", 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := full.Prefix(2); p != want {
		t.Fatalf("PrefixOf = %v, want %v", p, want)
	}
	if p == full {
		t.Fatal("prefix did not zero the deeper levels")
	}
	if _, err := m.PrefixOf("//bad", 1); err == nil {
		t.Fatal("bad topic accepted")
	}
}
