// Package gpfs implements the GPFS plugin (paper §3.1): per-filesystem
// I/O metrics in the style of mmpmon — bytes read/written, read/write
// calls, opens and closes — published as per-interval deltas. The
// counters come from the fabric simulator's parallel-filesystem model.
//
// Configuration:
//
//	plugin gpfs {
//	    mqttPrefix /node07/gpfs
//	    interval   1000
//	    filesystem work  { }
//	    filesystem scratch { readBps 8e8 writeBps 6e8 }
//	}
package gpfs

import (
	"fmt"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
	"dcdb/internal/sim/fabric"
)

// Plugin samples GPFS filesystem counters.
type Plugin struct {
	pluginutil.Base
}

// New creates an unconfigured GPFS plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "gpfs"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	interval := cfg.Duration("interval", time.Second)
	prefix := cfg.String("mqttPrefix", "/gpfs")
	fss := cfg.ChildrenNamed("filesystem")
	if len(fss) == 0 {
		return fmt.Errorf("gpfs: configuration defines no filesystems")
	}
	now := time.Now()
	for _, fn := range fss {
		name := fn.Value
		if name == "" {
			return fmt.Errorf("gpfs: filesystem block without a name")
		}
		fs := fabric.NewFilesystem(now, fn.Float("readBps", 0), fn.Float("writeBps", 0))
		fp := pluginutil.JoinTopic(prefix, name)
		sensors := []*pusher.Sensor{
			{Name: "bytes_read", Topic: fp + "/bytes_read", Unit: "B", Delta: true},
			{Name: "bytes_written", Topic: fp + "/bytes_written", Unit: "B", Delta: true},
			{Name: "reads", Topic: fp + "/reads", Unit: "events", Delta: true},
			{Name: "writes", Topic: fp + "/writes", Unit: "events", Delta: true},
			{Name: "opens", Topic: fp + "/opens", Unit: "events", Delta: true},
			{Name: "closes", Topic: fp + "/closes", Unit: "events", Delta: true},
		}
		g := &pusher.Group{
			Name:     name,
			Interval: fn.Duration("interval", interval),
			Sensors:  sensors,
			Reader: pusher.GroupReaderFunc(func(now time.Time) ([]float64, error) {
				return []float64{
					float64(fs.BytesRead(now)),
					float64(fs.BytesWritten(now)),
					float64(fs.Reads(now)),
					float64(fs.Writes(now)),
					float64(fs.Opens(now)),
					float64(fs.Closes(now)),
				}, nil
			}),
		}
		if err := p.AddGroup(g); err != nil {
			return err
		}
	}
	return nil
}
