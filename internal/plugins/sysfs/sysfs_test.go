package sysfs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcdb/internal/config"
)

func TestReadNumberFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "temp1_input")
	if err := os.WriteFile(path, []byte(" 45250\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := readNumberFile(path)
	if err != nil || v != 45250 {
		t.Fatalf("readNumberFile = %v, %v", v, err)
	}
	if err := os.WriteFile(path, []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readNumberFile(path); err == nil {
		t.Error("non-numeric content accepted")
	}
	if _, err := readNumberFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGroupReaderMixesRealAndSynthetic(t *testing.T) {
	dir := t.TempDir()
	real := filepath.Join(dir, "fan1_input")
	if err := os.WriteFile(real, []byte("4200"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := &groupReader{paths: []string{real, filepath.Join(dir, "temp_missing")}, start: time.Now()}
	vals, err := r.ReadGroup(time.Now())
	if err != nil || len(vals) != 2 {
		t.Fatalf("ReadGroup = %v, %v", vals, err)
	}
	if vals[0] != 4200 {
		t.Errorf("real file value = %v", vals[0])
	}
	// Synthetic temperature: plausible hwmon millidegrees.
	if vals[1] < 30000 || vals[1] > 60000 {
		t.Errorf("synthetic temp = %v, outside hwmon range", vals[1])
	}
}

func TestSyntheticEnergyMonotonic(t *testing.T) {
	r := &groupReader{start: time.Now()}
	path := "/sys/class/powercap/intel-rapl:0/energy_uj"
	prev := -1.0
	for i := 0; i < 10; i++ {
		v := r.synthetic(path, r.start.Add(time.Duration(i)*7*time.Second))
		if v < prev {
			t.Fatalf("energy counter decreased at step %d: %v -> %v", i, prev, v)
		}
		prev = v
	}
}

func TestConfigure(t *testing.T) {
	cfg, err := config.ParseString(`
mqttPrefix /node07/sysfs
group temps {
    interval 1000ms
    sensor cpu0_temp {
        path /nonexistent/temp1_input
        unit mC
    }
    sensor pkg_energy {
        path /nonexistent/energy_uj
        unit uJ
        delta true
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	groups := p.Groups()
	if len(groups) != 1 || len(groups[0].Sensors) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	s := groups[0].Sensors[1]
	if s.Name != "pkg_energy" || !s.Delta || s.Unit != "uJ" {
		t.Errorf("sensor = %+v", s)
	}
	if s.Topic != "/node07/sysfs/temps/pkg_energy" {
		t.Errorf("topic = %q", s.Topic)
	}
	vals, err := groups[0].Reader.ReadGroup(time.Now())
	if err != nil || len(vals) != 2 {
		t.Fatalf("read = %v, %v", vals, err)
	}

	// Error paths: no groups, sensor without a path, unnamed sensor.
	if err := New().Configure(&config.Node{}); err == nil {
		t.Error("empty configuration accepted")
	}
	bad, _ := config.ParseString("group g { sensor s { } }")
	if err := New().Configure(bad); err == nil {
		t.Error("sensor without path accepted")
	}
}
