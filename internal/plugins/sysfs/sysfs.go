// Package sysfs implements the SysFS plugin (paper §3.1, §6.2.1),
// sampling single-value kernel files such as hwmon temperature and RAPL
// energy counters. Each configured sensor names one file whose entire
// content is a number. Where the file does not exist (hermetic tests,
// containers) a deterministic synthetic signal with the file's
// semantics stands in, exercising the same read/parse path.
//
// Configuration:
//
//	plugin sysfs {
//	    mqttPrefix /node07/sysfs
//	    group temps {
//	        interval 1000
//	        sensor cpu0_temp {
//	            path  /sys/class/hwmon/hwmon0/temp1_input
//	            unit  mC
//	        }
//	        sensor pkg_energy {
//	            path  /sys/class/powercap/intel-rapl:0/energy_uj
//	            unit  uJ
//	            delta true
//	        }
//	    }
//	}
package sysfs

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
)

// Plugin samples single-value sysfs files.
type Plugin struct {
	pluginutil.Base
}

// New creates an unconfigured sysfs plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "sysfs"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	defInterval := cfg.Duration("interval", time.Second)
	prefix := cfg.String("mqttPrefix", "/sysfs")
	groups := cfg.ChildrenNamed("group")
	if len(groups) == 0 {
		return fmt.Errorf("sysfs: configuration defines no groups")
	}
	for _, gn := range groups {
		gc := pluginutil.ParseGroup(gn, defInterval)
		if gc.Prefix == "" {
			gc.Prefix = pluginutil.JoinTopic(prefix, gc.Name)
		}
		var sensors []*pusher.Sensor
		var paths []string
		for _, sn := range gn.ChildrenNamed("sensor") {
			if sn.Value == "" {
				return fmt.Errorf("sysfs: group %q has a sensor without a name", gc.Name)
			}
			path, err := pluginutil.RequireValue("sysfs", sn, "path")
			if err != nil {
				return err
			}
			sensors = append(sensors, &pusher.Sensor{
				Name:  sn.Value,
				Topic: pluginutil.JoinTopic(gc.Prefix, pluginutil.SanitizeLevel(sn.Value)),
				Unit:  sn.String("unit", ""),
				Delta: sn.Bool("delta", false),
			})
			paths = append(paths, path)
		}
		if len(sensors) == 0 {
			return fmt.Errorf("sysfs: group %q has no sensors", gc.Name)
		}
		reader := &groupReader{paths: paths, start: time.Now()}
		g := &pusher.Group{Name: gc.Name, Interval: gc.Interval, Sensors: sensors, Reader: reader}
		if err := p.AddGroup(g); err != nil {
			return err
		}
	}
	return nil
}

// groupReader reads each file of a group, falling back to a synthetic
// signal per missing file.
type groupReader struct {
	paths []string
	start time.Time
}

// ReadGroup implements pusher.GroupReader.
func (r *groupReader) ReadGroup(now time.Time) ([]float64, error) {
	out := make([]float64, len(r.paths))
	for i, path := range r.paths {
		v, err := readNumberFile(path)
		if err != nil {
			v = r.synthetic(path, now)
		}
		out[i] = v
	}
	return out, nil
}

func readNumberFile(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	s := strings.TrimSpace(string(data))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("sysfs: %s does not contain a number: %w", path, err)
	}
	return v, nil
}

// synthetic derives a plausible signal from the path's semantics:
// temperatures wander around 45 °C (in millidegrees, the hwmon
// convention), energy counters accumulate, anything else is a bounded
// oscillation. Per-path phase offsets keep sensors distinguishable.
func (r *groupReader) synthetic(path string, now time.Time) float64 {
	e := now.Sub(r.start).Seconds()
	var phase float64
	for _, c := range path {
		phase += float64(c)
	}
	phase = math.Mod(phase, 7)
	switch {
	case strings.Contains(path, "temp"):
		return 45000 + 6000*math.Sin(e/31+phase)
	case strings.Contains(path, "energy"):
		watts := 210 + 40*math.Sin(e/23+phase)
		return (210*e + 40*23*(1-math.Cos(e/23+phase))) * 1e6 * (watts / watts) // µJ, monotonic
	case strings.Contains(path, "power"):
		return (210 + 40*math.Sin(e/23+phase)) * 1e6 // µW
	case strings.Contains(path, "fan"):
		return 4200 + 300*math.Sin(e/17+phase)
	default:
		return 100 + 10*math.Sin(e/11+phase)
	}
}
