// Package plugins_test exercises every built-in plugin end to end:
// configuration parsing, group/sensor construction, entity connections
// to the protocol simulators, and actual group reads.
package plugins_test

import (
	"strings"
	"testing"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/all"
	"dcdb/internal/plugins/bacnetplug"
	"dcdb/internal/plugins/gpfs"
	"dcdb/internal/plugins/ipmiplug"
	"dcdb/internal/plugins/opa"
	"dcdb/internal/plugins/perfevents"
	"dcdb/internal/plugins/procfs"
	"dcdb/internal/plugins/restplug"
	"dcdb/internal/plugins/snmpplug"
	"dcdb/internal/plugins/sysfs"
	"dcdb/internal/plugins/tester"
	"dcdb/internal/pusher"
	simbacnet "dcdb/internal/sim/bacnet"
	simipmi "dcdb/internal/sim/ipmi"
	"dcdb/internal/sim/restsrv"
	simsnmp "dcdb/internal/sim/snmp"
)

func parse(t *testing.T, text string) *config.Node {
	t.Helper()
	n, err := config.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// readAll connects entities and reads every group once.
func readAll(t *testing.T, p pusher.Plugin) map[string]float64 {
	t.Helper()
	for _, e := range p.Entities() {
		if err := e.Connect(); err != nil {
			t.Fatalf("entity %q: %v", e.Name(), err)
		}
		defer e.Close()
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	out := make(map[string]float64)
	for _, g := range p.Groups() {
		if err := g.Validate(); err != nil {
			t.Fatalf("group %q: %v", g.Name, err)
		}
		vals, err := g.Reader.ReadGroup(time.Now())
		if err != nil {
			t.Fatalf("group %q read: %v", g.Name, err)
		}
		if len(vals) != len(g.Sensors) {
			t.Fatalf("group %q returned %d values for %d sensors", g.Name, len(vals), len(g.Sensors))
		}
		for i, s := range g.Sensors {
			out[s.Topic] = vals[i]
		}
	}
	return out
}

func TestRegistryHasAllTenPlugins(t *testing.T) {
	r := all.Registry()
	names := r.Names()
	want := []string{"bacnet", "gpfs", "ipmi", "opa", "perfevents", "procfs", "rest", "snmp", "sysfs", "tester"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		p, err := r.New(n)
		if err != nil || p.Name() != n {
			t.Errorf("New(%q) = %v, %v", n, p, err)
		}
	}
}

func TestTesterPlugin(t *testing.T) {
	p := tester.New()
	cfg := parse(t, `
mqttPrefix /test
interval 100
group g0 { sensors 3 }
groups 2
sensorsEach 4
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 3 {
		t.Fatalf("groups = %d", len(p.Groups()))
	}
	total := 0
	for _, g := range p.Groups() {
		total += len(g.Sensors)
	}
	if total != 3+2*4 {
		t.Fatalf("sensors = %d", total)
	}
	vals := readAll(t, p)
	if len(vals) != total {
		t.Fatalf("read %d values", len(vals))
	}
	// Values are monotonically increasing across reads.
	g := p.Groups()[0]
	v1, _ := g.Reader.ReadGroup(time.Now())
	v2, _ := g.Reader.ReadGroup(time.Now())
	if v2[0] <= v1[0] {
		t.Error("tester values not increasing")
	}
	// Error cases.
	if err := tester.New().Configure(parse(t, "interval 100")); err == nil {
		t.Error("empty tester config accepted")
	}
	if err := tester.New().Configure(parse(t, "group g { sensors 0 }")); err == nil {
		t.Error("zero-sensor group accepted")
	}
}

func TestProcfsPlugin(t *testing.T) {
	p := procfs.New()
	cfg := parse(t, `
mqttPrefix /n1/procfs
interval 1000
file meminfo  { }
file vmstat   { }
file procstat { }
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 3 {
		t.Fatalf("groups = %d", len(p.Groups()))
	}
	vals := readAll(t, p)
	// /proc exists on this machine (Linux), so expect plenty of
	// metrics, MemTotal among them.
	found := false
	for topic := range vals {
		if strings.Contains(topic, "MemTotal") {
			found = true
		}
		if !strings.HasPrefix(topic, "/n1/procfs/") {
			t.Fatalf("topic %q outside prefix", topic)
		}
	}
	if !found {
		t.Error("MemTotal not discovered")
	}
	if err := procfs.New().Configure(parse(t, "interval 5")); err == nil {
		t.Error("fileless procfs config accepted")
	}
}

func TestProcfsSyntheticFallback(t *testing.T) {
	p := procfs.New()
	cfg := parse(t, `
file meminfo { path /nonexistent/meminfo }
file vmstat  { path /nonexistent/vmstat }
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	vals := readAll(t, p)
	if len(vals) == 0 {
		t.Fatal("synthetic fallback yielded no metrics")
	}
	var memTotal float64
	for topic, v := range vals {
		if strings.HasSuffix(topic, "/MemTotal") {
			memTotal = v
		}
	}
	if memTotal != 98304000 {
		t.Errorf("synthetic MemTotal = %v", memTotal)
	}
}

func TestSysfsPlugin(t *testing.T) {
	p := sysfs.New()
	cfg := parse(t, `
mqttPrefix /n1/sysfs
group temps {
    interval 500
    sensor cpu_temp { path /nonexistent/hwmon/temp1_input unit mC }
    sensor energy   { path /nonexistent/rapl/energy_uj unit uJ delta true }
}
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	vals := readAll(t, p)
	temp := vals["/n1/sysfs/temps/cpu_temp"]
	if temp < 30000 || temp > 60000 {
		t.Errorf("synthetic temperature = %v mC", temp)
	}
	// Error cases.
	if err := sysfs.New().Configure(parse(t, "interval 5")); err == nil {
		t.Error("groupless sysfs config accepted")
	}
	if err := sysfs.New().Configure(parse(t, "group g { sensor s { } }")); err == nil {
		t.Error("pathless sensor accepted")
	}
	if err := sysfs.New().Configure(parse(t, "group g { }")); err == nil {
		t.Error("sensorless group accepted")
	}
}

func TestPerfeventsPlugin(t *testing.T) {
	p := perfevents.New(nil)
	cfg := parse(t, `
mqttPrefix /n1/cpu
interval 100
cores 4
counters instructions,cycles
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 4 {
		t.Fatalf("groups = %d", len(p.Groups()))
	}
	for _, g := range p.Groups() {
		if len(g.Sensors) != 2 {
			t.Fatalf("group %q has %d sensors", g.Name, len(g.Sensors))
		}
		for _, s := range g.Sensors {
			if !s.Delta {
				t.Errorf("counter %q not delta", s.Topic)
			}
		}
	}
	// Counters are monotonic.
	g := p.Groups()[0]
	v1, err := g.Reader.ReadGroup(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	v2, err := g.Reader.ReadGroup(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if v2[0] <= v1[0] {
		t.Errorf("instructions not monotonic: %v -> %v", v1[0], v2[0])
	}
	if err := perfevents.New(nil).Configure(parse(t, "counters bogus")); err == nil {
		t.Error("unknown counter accepted")
	}
}

func TestIPMIPlugin(t *testing.T) {
	srv := simipmi.NewServer()
	srv.AddSensor("PSU1 Power", func(time.Time) float64 { return 420 })
	srv.AddSensor("Inlet Temp", func(time.Time) float64 { return 24.5 })
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := ipmiplug.New()
	cfg := parse(t, `
mqttPrefix /rack01
interval 1000
host node07 {
    addr `+srv.Addr()+`
    group psu {
        sensor "PSU1 Power" { unit W }
        sensor "Inlet Temp" { unit C }
    }
}
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	vals := readAll(t, p)
	if vals["/rack01/node07/psu/PSU1_Power"] != 420 {
		t.Errorf("power = %v (all: %v)", vals["/rack01/node07/psu/PSU1_Power"], vals)
	}
	if vals["/rack01/node07/psu/Inlet_Temp"] != 24.5 {
		t.Errorf("temp = %v", vals["/rack01/node07/psu/Inlet_Temp"])
	}
	// Config errors.
	if err := ipmiplug.New().Configure(parse(t, "interval 5")); err == nil {
		t.Error("hostless config accepted")
	}
	if err := ipmiplug.New().Configure(parse(t, "host h { }")); err == nil {
		t.Error("addrless host accepted")
	}
}

func TestSNMPPlugin(t *testing.T) {
	agent := simsnmp.NewAgent()
	agent.Register("1.3.6.1.4.1.9999.1.1", func(time.Time) float64 { return 31.5 })
	if err := agent.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	p := snmpplug.New()
	cfg := parse(t, `
mqttPrefix /facility
agent chiller {
    addr `+agent.Addr()+`
    group loop {
        sensor inlet_temp { oid 1.3.6.1.4.1.9999.1.1 unit C }
    }
}
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	vals := readAll(t, p)
	if vals["/facility/chiller/loop/inlet_temp"] != 31.5 {
		t.Errorf("inlet = %v", vals["/facility/chiller/loop/inlet_temp"])
	}
	if err := snmpplug.New().Configure(parse(t, "agent a { addr 1.2.3.4:1 group g { sensor s { } } }")); err == nil {
		t.Error("OID-less sensor accepted")
	}
}

func TestBACnetPlugin(t *testing.T) {
	srv := simbacnet.NewServer()
	srv.AddObject(1001, func(time.Time) float64 { return 18.0 })
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := bacnetplug.New()
	cfg := parse(t, `
mqttPrefix /building
device ahu1 {
    addr `+srv.Addr()+`
    group air {
        sensor supply_temp { object 1001 unit C }
    }
}
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	vals := readAll(t, p)
	if vals["/building/ahu1/air/supply_temp"] != 18.0 {
		t.Errorf("supply temp = %v", vals["/building/ahu1/air/supply_temp"])
	}
	if err := bacnetplug.New().Configure(parse(t, "device d { addr x group g { sensor s { } } }")); err == nil {
		t.Error("objectless sensor accepted")
	}
}

func TestRESTPlugin(t *testing.T) {
	dev := restsrv.NewDevice()
	dev.AddSensor("power_kw", func(time.Time) float64 { return 27.5 })
	dev.AddSensor("heat_kw", func(time.Time) float64 { return 24.8 })
	if err := dev.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	p := restplug.New()
	cfg := parse(t, `
mqttPrefix /facility/rack01
endpoint rack {
    url http://`+dev.Addr()+`/sensors
    group circuit {
        sensor power { key power_kw unit kW }
        sensor heat  { key heat_kw  unit kW }
    }
}
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	vals := readAll(t, p)
	if vals["/facility/rack01/rack/circuit/power"] != 27.5 {
		t.Errorf("power = %v", vals["/facility/rack01/rack/circuit/power"])
	}
	// Missing key surfaces as read error.
	p2 := restplug.New()
	cfg2 := parse(t, `
endpoint rack {
    url http://`+dev.Addr()+`/sensors
    group g { sensor nope { key missing } }
}
`)
	if err := p2.Configure(cfg2); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Groups()[0].Reader.ReadGroup(time.Now()); err == nil {
		t.Error("missing key read succeeded")
	}
}

func TestOPAPlugin(t *testing.T) {
	p := opa.New()
	if err := p.Configure(parse(t, "mqttPrefix /n1/opa\ninterval 100\nports 2")); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 2 {
		t.Fatalf("groups = %d", len(p.Groups()))
	}
	g := p.Groups()[0]
	v1, _ := g.Reader.ReadGroup(time.Now())
	time.Sleep(10 * time.Millisecond)
	v2, _ := g.Reader.ReadGroup(time.Now())
	if v2[0] <= v1[0] {
		t.Error("xmit_data not monotonic")
	}
	if err := opa.New().Configure(parse(t, "ports 0")); err == nil {
		t.Error("zero ports accepted")
	}
}

func TestGPFSPlugin(t *testing.T) {
	p := gpfs.New()
	if err := p.Configure(parse(t, "mqttPrefix /n1/gpfs\nfilesystem work { }\nfilesystem scratch { readBps 8e8 }")); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 2 {
		t.Fatalf("groups = %d", len(p.Groups()))
	}
	g := p.Groups()[0]
	if len(g.Sensors) != 6 {
		t.Fatalf("gpfs sensors = %d", len(g.Sensors))
	}
	v1, _ := g.Reader.ReadGroup(time.Now())
	time.Sleep(10 * time.Millisecond)
	v2, _ := g.Reader.ReadGroup(time.Now())
	if v2[0] <= v1[0] {
		t.Error("bytes_read not monotonic")
	}
	if err := gpfs.New().Configure(parse(t, "interval 1")); err == nil {
		t.Error("filesystem-less config accepted")
	}
}

func TestPluginsRunUnderHost(t *testing.T) {
	// The tester plugin under a real Host: an integration smoke test.
	p := tester.New()
	if err := p.Configure(parse(t, "group g { interval 10 sensors 5 }")); err != nil {
		t.Fatal(err)
	}
	h := pusher.NewHost(nil, pusher.Options{Threads: 2})
	defer h.Close()
	if err := h.StartPlugin(p); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Readings < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if h.Stats().Readings < 10 {
		t.Fatalf("readings = %d", h.Stats().Readings)
	}
}
