package tester

import (
	"testing"
	"time"

	"dcdb/internal/config"
)

func TestConfigureExplicitGroups(t *testing.T) {
	cfg, err := config.ParseString(`
mqttPrefix /test
interval 1000ms
group g0 {
    interval 250ms
    sensors 3
}
`)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	groups := p.Groups()
	if len(groups) != 1 || groups[0].Interval != 250*time.Millisecond {
		t.Fatalf("groups = %+v", groups)
	}
	if len(groups[0].Sensors) != 3 || groups[0].Sensors[2].Topic != "/test/g0/s00002" {
		t.Fatalf("sensors = %+v", groups[0].Sensors)
	}
}

func TestConfigureBulkGroups(t *testing.T) {
	cfg, err := config.ParseString("groups 4\nsensorsEach 2\n")
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 4 {
		t.Fatalf("bulk groups = %d", len(p.Groups()))
	}
	for _, g := range p.Groups() {
		if len(g.Sensors) != 2 {
			t.Fatalf("group %s has %d sensors", g.Name, len(g.Sensors))
		}
	}
}

func TestReadingsMonotonicAcrossReads(t *testing.T) {
	cfg, _ := config.ParseString("group g { sensors 5 }")
	p := New()
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	g := p.Groups()[0]
	v1, err := g.Reader.ReadGroup(time.Now())
	if err != nil || len(v1) != 5 {
		t.Fatalf("read = %v, %v", v1, err)
	}
	v2, err := g.Reader.ReadGroup(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v2[i] <= v1[i] {
			t.Fatalf("sensor %d not monotonic: %v -> %v", i, v1[i], v2[i])
		}
	}
}

func TestConfigureErrors(t *testing.T) {
	if err := New().Configure(&config.Node{}); err == nil {
		t.Error("configuration without groups accepted")
	}
	bad, _ := config.ParseString("group g { sensors 0 }")
	if err := New().Configure(bad); err == nil {
		t.Error("zero-sensor group accepted")
	}
}
