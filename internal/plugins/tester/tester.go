// Package tester implements the tester plugin of the paper's evaluation
// (§6.2.1): it generates an arbitrary number of sensors with negligible
// acquisition overhead, isolating the cost of the Pusher core (sampling
// machinery plus MQTT communication) from the cost of real monitoring
// backends. All scalability experiments (Figures 5–8) drive Pushers
// configured with this plugin.
//
// Configuration:
//
//	plugin tester {
//	    mqttPrefix  /test
//	    interval    1000         ; default interval, ms
//	    group g0 {
//	        interval    1000
//	        mqttPrefix  /test/g0
//	        sensors     100      ; sensors in this group
//	    }
//	    groups      10           ; alternative: bulk-generate groups
//	    sensorsEach 100          ; sensors per bulk group
//	}
package tester

import (
	"fmt"
	"sync/atomic"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
)

// Plugin generates synthetic monotonically increasing readings.
type Plugin struct {
	pluginutil.Base
	counter atomic.Int64
}

// New creates an unconfigured tester plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "tester"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	defInterval := cfg.Duration("interval", time.Second)
	prefix := cfg.String("mqttPrefix", "/test")

	for _, gn := range cfg.ChildrenNamed("group") {
		gc := pluginutil.ParseGroup(gn, defInterval)
		if gc.Prefix == "" {
			gc.Prefix = pluginutil.JoinTopic(prefix, gc.Name)
		}
		count := gn.Int("sensors", 1)
		if err := p.addGroup(gc, count); err != nil {
			return err
		}
	}
	if bulk := cfg.Int("groups", 0); bulk > 0 {
		each := cfg.Int("sensorsEach", 1)
		for i := 0; i < bulk; i++ {
			gc := pluginutil.CommonGroupConfig{
				Name:     fmt.Sprintf("bulk%04d", i),
				Interval: defInterval,
				Prefix:   pluginutil.JoinTopic(prefix, fmt.Sprintf("g%04d", i)),
			}
			if err := p.addGroup(gc, each); err != nil {
				return err
			}
		}
	}
	if len(p.GroupList) == 0 {
		return fmt.Errorf("tester: configuration defines no groups")
	}
	return nil
}

func (p *Plugin) addGroup(gc pluginutil.CommonGroupConfig, count int) error {
	if count <= 0 {
		return fmt.Errorf("tester: group %q has %d sensors", gc.Name, count)
	}
	sensors := make([]*pusher.Sensor, count)
	for i := range sensors {
		sensors[i] = &pusher.Sensor{
			Name:  fmt.Sprintf("s%05d", i),
			Topic: pluginutil.JoinTopic(gc.Prefix, fmt.Sprintf("s%05d", i)),
			Unit:  "events",
		}
	}
	g := &pusher.Group{
		Name:     gc.Name,
		Interval: gc.Interval,
		Sensors:  sensors,
		Reader: pusher.GroupReaderFunc(func(time.Time) ([]float64, error) {
			base := p.counter.Add(int64(count))
			vals := make([]float64, count)
			for i := range vals {
				vals[i] = float64(base) + float64(i)
			}
			return vals, nil
		}),
	}
	return p.AddGroup(g)
}
