// Package snmpplug implements the SNMP plugin (paper §3.1, §7.1):
// out-of-band sampling of PDUs, switches and cooling-loop controllers
// by OID. Each agent is an entity shared by its groups; sensors map an
// OID to a topic. The first case study gathers part of its
// infrastructure data through this plugin.
//
// Configuration:
//
//	plugin snmp {
//	    mqttPrefix /facility
//	    interval   10000
//	    agent chiller {
//	        addr 127.0.0.1:16161
//	        group loop {
//	            sensor inlet_temp  { oid 1.3.6.1.4.1.9999.1.1 unit C }
//	            sensor flow        { oid 1.3.6.1.4.1.9999.1.2 unit l/min }
//	        }
//	    }
//	}
package snmpplug

import (
	"fmt"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
	"dcdb/internal/sim/snmp"
)

// Plugin samples SNMP agents.
type Plugin struct {
	pluginutil.Base
}

// New creates an unconfigured SNMP plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "snmp"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

type agentEntity struct {
	name   string
	addr   string
	client *snmp.Client
}

// Name implements pusher.Entity.
func (a *agentEntity) Name() string { return a.name }

// Connect implements pusher.Entity.
func (a *agentEntity) Connect() error {
	c, err := snmp.Dial(a.addr)
	if err != nil {
		return err
	}
	a.client = c
	return nil
}

// Close implements pusher.Entity.
func (a *agentEntity) Close() error {
	if a.client == nil {
		return nil
	}
	err := a.client.Close()
	a.client = nil
	return err
}

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	defInterval := cfg.Duration("interval", 10*time.Second)
	prefix := cfg.String("mqttPrefix", "/snmp")
	agents := cfg.ChildrenNamed("agent")
	if len(agents) == 0 {
		return fmt.Errorf("snmp: configuration defines no agents")
	}
	for _, an := range agents {
		agentName := an.Value
		if agentName == "" {
			return fmt.Errorf("snmp: agent block without a name")
		}
		addr, err := pluginutil.RequireValue("snmp", an, "addr")
		if err != nil {
			return err
		}
		ent := &agentEntity{name: agentName, addr: addr}
		p.EntityList = append(p.EntityList, ent)
		for _, gn := range an.ChildrenNamed("group") {
			gc := pluginutil.ParseGroup(gn, defInterval)
			if gc.Prefix == "" {
				gc.Prefix = pluginutil.JoinTopic(prefix, agentName+"/"+gc.Name)
			}
			var sensors []*pusher.Sensor
			var oids []string
			for _, sn := range gn.ChildrenNamed("sensor") {
				if sn.Value == "" {
					return fmt.Errorf("snmp: agent %q group %q has a sensor without a name", agentName, gc.Name)
				}
				oid, err := pluginutil.RequireValue("snmp", sn, "oid")
				if err != nil {
					return err
				}
				sensors = append(sensors, &pusher.Sensor{
					Name:  sn.Value,
					Topic: pluginutil.JoinTopic(gc.Prefix, pluginutil.SanitizeLevel(sn.Value)),
					Unit:  sn.String("unit", ""),
					Delta: sn.Bool("delta", false),
				})
				oids = append(oids, oid)
			}
			if len(sensors) == 0 {
				return fmt.Errorf("snmp: agent %q group %q has no sensors", agentName, gc.Name)
			}
			list := oids
			g := &pusher.Group{
				Name:     agentName + "/" + gc.Name,
				Interval: gc.Interval,
				Sensors:  sensors,
				Entity:   agentName,
				Reader: pusher.GroupReaderFunc(func(time.Time) ([]float64, error) {
					if ent.client == nil {
						return nil, fmt.Errorf("snmp: agent %q not connected", ent.name)
					}
					out := make([]float64, len(list))
					for i, oid := range list {
						v, err := ent.client.Get(oid)
						if err != nil {
							return nil, err
						}
						out[i] = v
					}
					return out, nil
				}),
			}
			if err := p.AddGroup(g); err != nil {
				return err
			}
		}
	}
	if len(p.GroupList) == 0 {
		return fmt.Errorf("snmp: configuration defines no groups")
	}
	return nil
}
