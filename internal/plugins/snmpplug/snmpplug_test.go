package snmpplug

import (
	"strings"
	"testing"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/sim/snmp"
)

// In-package coverage for the SNMP plugin: entity lifecycle and the
// configuration error paths the cross-package end-to-end suite
// (internal/plugins/plugins_test.go) does not reach.

func parse(t *testing.T, text string) *config.Node {
	t.Helper()
	n, err := config.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAgentEntityLifecycle(t *testing.T) {
	agent := snmp.NewAgent()
	agent.Register("1.3.6.1.4.1.9999.1.1", func(time.Time) float64 { return 31.5 })
	agent.Register("1.3.6.1.4.1.9999.1.2", func(time.Time) float64 { return 240 })
	if err := agent.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	p := New()
	if err := p.Configure(parse(t, `
mqttPrefix /facility
interval 3000
agent chiller {
    addr `+agent.Addr()+`
    group loop {
        sensor inlet_temp { oid 1.3.6.1.4.1.9999.1.1 unit C }
        sensor flow       { oid 1.3.6.1.4.1.9999.1.2 unit l/min }
    }
}
`)); err != nil {
		t.Fatal(err)
	}
	if len(p.Entities()) != 1 || p.Entities()[0].Name() != "chiller" {
		t.Fatalf("entities = %v", p.Entities())
	}
	g := p.Groups()[0]
	if g.Entity != "chiller" || g.Interval != 3*time.Second {
		t.Fatalf("group = %+v", g)
	}
	if g.Sensors[0].Topic != "/facility/chiller/loop/inlet_temp" {
		t.Errorf("topic = %q", g.Sensors[0].Topic)
	}

	// Reading before Connect fails loudly instead of returning zeros.
	if _, err := g.Reader.ReadGroup(time.Now()); err == nil ||
		!strings.Contains(err.Error(), "not connected") {
		t.Errorf("unconnected read: %v", err)
	}
	ent := p.Entities()[0]
	if err := ent.Connect(); err != nil {
		t.Fatal(err)
	}
	vals, err := g.Reader.ReadGroup(time.Now())
	if err != nil || len(vals) != 2 || vals[0] != 31.5 || vals[1] != 240 {
		t.Fatalf("read = %v, %v", vals, err)
	}
	// An unregistered OID is a read error from the agent.
	p2 := New()
	if err := p2.Configure(parse(t, `
agent chiller {
    addr `+agent.Addr()+`
    group g { sensor bogus { oid 1.3.6.1.4.1.9999.9.9 } }
}
`)); err != nil {
		t.Fatal(err)
	}
	if err := p2.Entities()[0].Connect(); err != nil {
		t.Fatal(err)
	}
	defer p2.Entities()[0].Close()
	if _, err := p2.Groups()[0].Reader.ReadGroup(time.Now()); err == nil {
		t.Error("unregistered OID read succeeded")
	}
	// Close is idempotent: once connected, then again when already closed.
	if err := ent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ent.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestConfigureErrors(t *testing.T) {
	cases := []struct{ name, cfg, wantSub string }{
		{"no agents", `interval 5`, "no agents"},
		{"nameless agent", `agent { addr 1.2.3.4:1 group g { sensor s { oid 1.2 } } }`, "without a name"},
		{"missing addr", `agent a { group g { sensor s { oid 1.2 } } }`, "addr"},
		{"nameless sensor", `agent a { addr 1.2.3.4:1 group g { sensor { oid 1.2 } } }`, "sensor without a name"},
		{"missing oid", `agent a { addr 1.2.3.4:1 group g { sensor s { } } }`, "oid"},
		{"sensorless group", `agent a { addr 1.2.3.4:1 group g { } }`, "no sensors"},
		{"groupless agent", `agent a { addr 1.2.3.4:1 }`, "no groups"},
	}
	for _, tc := range cases {
		err := New().Configure(parse(t, tc.cfg))
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}
