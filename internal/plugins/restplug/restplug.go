// Package restplug implements the REST plugin (paper §3.1, §7.1):
// out-of-band sampling of devices exposing sensors through RESTful JSON
// APIs, one of the two sources of the heat-removal case study. A group
// performs one GET per interval and extracts the configured keys from
// the returned JSON object, so many sensors cost a single request.
//
// Configuration:
//
//	plugin rest {
//	    mqttPrefix /facility/rack01
//	    interval   10000
//	    endpoint rack {
//	        url http://127.0.0.1:8801/sensors
//	        group circuit {
//	            sensor power         { key power_kw   unit kW }
//	            sensor heat_removed  { key heat_kw    unit kW }
//	            sensor inlet_temp    { key inlet_c    unit C }
//	        }
//	    }
//	}
package restplug

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
)

// Plugin samples REST endpoints.
type Plugin struct {
	pluginutil.Base
	client *http.Client
}

// New creates an unconfigured REST plugin.
func New() *Plugin {
	p := &Plugin{client: &http.Client{Timeout: 5 * time.Second}}
	p.PluginName = "rest"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	defInterval := cfg.Duration("interval", 10*time.Second)
	prefix := cfg.String("mqttPrefix", "/rest")
	endpoints := cfg.ChildrenNamed("endpoint")
	if len(endpoints) == 0 {
		return fmt.Errorf("rest: configuration defines no endpoints")
	}
	for _, en := range endpoints {
		epName := en.Value
		if epName == "" {
			return fmt.Errorf("rest: endpoint block without a name")
		}
		url, err := pluginutil.RequireValue("rest", en, "url")
		if err != nil {
			return err
		}
		for _, gn := range en.ChildrenNamed("group") {
			gc := pluginutil.ParseGroup(gn, defInterval)
			if gc.Prefix == "" {
				gc.Prefix = pluginutil.JoinTopic(prefix, epName+"/"+gc.Name)
			}
			var sensors []*pusher.Sensor
			var keys []string
			for _, sn := range gn.ChildrenNamed("sensor") {
				if sn.Value == "" {
					return fmt.Errorf("rest: endpoint %q group %q has a sensor without a name", epName, gc.Name)
				}
				key := sn.String("key", sn.Value)
				sensors = append(sensors, &pusher.Sensor{
					Name:  sn.Value,
					Topic: pluginutil.JoinTopic(gc.Prefix, pluginutil.SanitizeLevel(sn.Value)),
					Unit:  sn.String("unit", ""),
					Delta: sn.Bool("delta", false),
				})
				keys = append(keys, key)
			}
			if len(sensors) == 0 {
				return fmt.Errorf("rest: endpoint %q group %q has no sensors", epName, gc.Name)
			}
			ks := keys
			u := url
			g := &pusher.Group{
				Name:     epName + "/" + gc.Name,
				Interval: gc.Interval,
				Sensors:  sensors,
				Reader: pusher.GroupReaderFunc(func(time.Time) ([]float64, error) {
					values, err := p.fetch(u)
					if err != nil {
						return nil, err
					}
					out := make([]float64, len(ks))
					for i, k := range ks {
						v, ok := values[k]
						if !ok {
							return nil, fmt.Errorf("rest: endpoint %s has no key %q", u, k)
						}
						out[i] = v
					}
					return out, nil
				}),
			}
			if err := p.AddGroup(g); err != nil {
				return err
			}
		}
	}
	if len(p.GroupList) == 0 {
		return fmt.Errorf("rest: configuration defines no groups")
	}
	return nil
}

func (p *Plugin) fetch(url string) (map[string]float64, error) {
	resp, err := p.client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("rest: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rest: GET %s: status %s", url, resp.Status)
	}
	var values map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&values); err != nil {
		return nil, fmt.Errorf("rest: decoding %s: %w", url, err)
	}
	return values, nil
}
