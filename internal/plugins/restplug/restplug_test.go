package restplug

import (
	"strings"
	"testing"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/sim/restsrv"
)

// In-package coverage for the REST plugin: the configuration error
// paths and HTTP failure modes the cross-package end-to-end suite
// (internal/plugins/plugins_test.go) does not reach.

func parse(t *testing.T, text string) *config.Node {
	t.Helper()
	n, err := config.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigureTopicsAndDefaults(t *testing.T) {
	p := New()
	cfg := parse(t, `
mqttPrefix /facility
interval 2000
endpoint rack {
    url http://127.0.0.1:1/sensors
    group circuit {
        sensor power { key power_kw unit kW }
        sensor heat  { unit kW delta true }
    }
    group named {
        mqttPrefix /override
        sensor x { }
    }
}
`)
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 2 {
		t.Fatalf("groups = %d", len(p.Groups()))
	}
	g := p.Groups()[0]
	if g.Interval != 2*time.Second {
		t.Errorf("interval = %v", g.Interval)
	}
	if g.Sensors[0].Topic != "/facility/rack/circuit/power" {
		t.Errorf("topic = %q", g.Sensors[0].Topic)
	}
	if g.Sensors[0].Unit != "kW" || g.Sensors[1].Delta != true {
		t.Errorf("sensor attrs: %+v %+v", g.Sensors[0], g.Sensors[1])
	}
	// A group-level mqttPrefix overrides the derived topic prefix.
	if got := p.Groups()[1].Sensors[0].Topic; got != "/override/x" {
		t.Errorf("override topic = %q", got)
	}
	// Reconfiguring resets prior groups instead of accumulating.
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups()) != 2 {
		t.Fatalf("groups after reconfigure = %d", len(p.Groups()))
	}
}

func TestConfigureErrors(t *testing.T) {
	cases := []struct{ name, cfg, wantSub string }{
		{"no endpoints", `interval 5`, "no endpoints"},
		{"nameless endpoint", `endpoint { url http://x/ group g { sensor s { } } }`, "without a name"},
		{"missing url", `endpoint e { group g { sensor s { } } }`, "url"},
		{"nameless sensor", `endpoint e { url http://x/ group g { sensor { key k } } }`, "sensor without a name"},
		{"sensorless group", `endpoint e { url http://x/ group g { } }`, "no sensors"},
		{"groupless endpoint", `endpoint e { url http://x/ }`, "no groups"},
	}
	for _, tc := range cases {
		err := New().Configure(parse(t, tc.cfg))
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestFetchFailureModes(t *testing.T) {
	dev := restsrv.NewDevice()
	dev.AddSensor("power_kw", func(time.Time) float64 { return 12.5 })
	if err := dev.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	p := New()
	if err := p.Configure(parse(t, `
endpoint rack {
    url http://`+dev.Addr()+`/sensors
    group g { sensor power { key power_kw } }
}
`)); err != nil {
		t.Fatal(err)
	}
	vals, err := p.Groups()[0].Reader.ReadGroup(time.Now())
	if err != nil || len(vals) != 1 || vals[0] != 12.5 {
		t.Fatalf("read = %v, %v", vals, err)
	}

	// A non-200 status is an error, not a zero reading.
	if _, err := p.fetch("http://" + dev.Addr() + "/nonexistent"); err == nil {
		t.Error("404 fetch succeeded")
	}
	// An unreachable endpoint surfaces the transport error.
	if _, err := p.fetch("http://127.0.0.1:1/sensors"); err == nil {
		t.Error("unreachable fetch succeeded")
	}
	// A key the device stops serving fails the whole group read.
	p2 := New()
	if err := p2.Configure(parse(t, `
endpoint rack {
    url http://`+dev.Addr()+`/sensors
    group g { sensor nope { key missing_key } }
}
`)); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Groups()[0].Reader.ReadGroup(time.Now()); err == nil ||
		!strings.Contains(err.Error(), "missing_key") {
		t.Errorf("missing key read: %v", err)
	}
}
