// Package ipmiplug implements the IPMI plugin (paper §3.1): out-of-band
// sampling of IT-component sensors (temperatures, power supplies, fans)
// from board management controllers. Each configured host becomes an
// entity — the shared BMC connection used by all of that host's groups
// (§4.1) — and sensors are read by SDR name through the IPMI simulator
// client (package sim/ipmi).
//
// Configuration:
//
//	plugin ipmi {
//	    mqttPrefix /rack01
//	    interval   10000
//	    host node07 {
//	        addr 127.0.0.1:62301
//	        group psu {
//	            sensor "PSU1 Power"  { unit W }
//	            sensor "Inlet Temp"  { unit C }
//	        }
//	    }
//	}
package ipmiplug

import (
	"fmt"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
	"dcdb/internal/sim/ipmi"
)

// Plugin samples BMC sensors over the simulated IPMI protocol.
type Plugin struct {
	pluginutil.Base
}

// New creates an unconfigured IPMI plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "ipmi"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

// hostEntity is the shared BMC connection of one host.
type hostEntity struct {
	name   string
	addr   string
	client *ipmi.Client
}

// Name implements pusher.Entity.
func (h *hostEntity) Name() string { return h.name }

// Connect implements pusher.Entity.
func (h *hostEntity) Connect() error {
	c, err := ipmi.Dial(h.addr)
	if err != nil {
		return err
	}
	h.client = c
	return nil
}

// Close implements pusher.Entity.
func (h *hostEntity) Close() error {
	if h.client == nil {
		return nil
	}
	err := h.client.Close()
	h.client = nil
	return err
}

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	defInterval := cfg.Duration("interval", 10*time.Second)
	prefix := cfg.String("mqttPrefix", "/ipmi")
	hosts := cfg.ChildrenNamed("host")
	if len(hosts) == 0 {
		return fmt.Errorf("ipmi: configuration defines no hosts")
	}
	for _, hn := range hosts {
		hostName := hn.Value
		if hostName == "" {
			return fmt.Errorf("ipmi: host block without a name")
		}
		addr, err := pluginutil.RequireValue("ipmi", hn, "addr")
		if err != nil {
			return err
		}
		ent := &hostEntity{name: hostName, addr: addr}
		p.EntityList = append(p.EntityList, ent)
		for _, gn := range hn.ChildrenNamed("group") {
			gc := pluginutil.ParseGroup(gn, defInterval)
			if gc.Prefix == "" {
				gc.Prefix = pluginutil.JoinTopic(prefix, hostName+"/"+gc.Name)
			}
			var sensors []*pusher.Sensor
			var sdrNames []string
			for _, sn := range gn.ChildrenNamed("sensor") {
				if sn.Value == "" {
					return fmt.Errorf("ipmi: host %q group %q has a sensor without a name", hostName, gc.Name)
				}
				sensors = append(sensors, &pusher.Sensor{
					Name:  sn.Value,
					Topic: pluginutil.JoinTopic(gc.Prefix, pluginutil.SanitizeLevel(sn.Value)),
					Unit:  sn.String("unit", ""),
					Delta: sn.Bool("delta", false),
				})
				sdrNames = append(sdrNames, sn.Value)
			}
			if len(sensors) == 0 {
				return fmt.Errorf("ipmi: host %q group %q has no sensors", hostName, gc.Name)
			}
			names := sdrNames
			g := &pusher.Group{
				Name:     hostName + "/" + gc.Name,
				Interval: gc.Interval,
				Sensors:  sensors,
				Entity:   hostName,
				Reader: pusher.GroupReaderFunc(func(time.Time) ([]float64, error) {
					if ent.client == nil {
						return nil, fmt.Errorf("ipmi: host %q not connected", ent.name)
					}
					out := make([]float64, len(names))
					for i, n := range names {
						v, err := ent.client.GetReading(n)
						if err != nil {
							return nil, err
						}
						out[i] = v
					}
					return out, nil
				}),
			}
			if err := p.AddGroup(g); err != nil {
				return err
			}
		}
	}
	if len(p.GroupList) == 0 {
		return fmt.Errorf("ipmi: configuration defines no groups")
	}
	return nil
}
