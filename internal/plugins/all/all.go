// Package all wires every built-in plugin into a pusher.Registry, the
// equivalent of the plugin dynamic libraries shipped with the original
// Pusher (paper §3.1 lists the same ten: Perfevents, ProcFS, SysFS,
// GPFS, Omnipath, IPMI, SNMP, REST and BACnet, plus the tester plugin
// of the evaluation).
package all

import (
	"dcdb/internal/plugins/bacnetplug"
	"dcdb/internal/plugins/gpfs"
	"dcdb/internal/plugins/ipmiplug"
	"dcdb/internal/plugins/opa"
	"dcdb/internal/plugins/perfevents"
	"dcdb/internal/plugins/procfs"
	"dcdb/internal/plugins/restplug"
	"dcdb/internal/plugins/snmpplug"
	"dcdb/internal/plugins/sysfs"
	"dcdb/internal/plugins/tester"
	"dcdb/internal/pusher"
)

// Registry returns a registry with every built-in plugin registered.
func Registry() *pusher.Registry {
	r := pusher.NewRegistry()
	r.Register("tester", tester.Factory)
	r.Register("procfs", procfs.Factory)
	r.Register("sysfs", sysfs.Factory)
	r.Register("perfevents", perfevents.Factory)
	r.Register("ipmi", ipmiplug.Factory)
	r.Register("snmp", snmpplug.Factory)
	r.Register("bacnet", bacnetplug.Factory)
	r.Register("rest", restplug.Factory)
	r.Register("opa", opa.Factory)
	r.Register("gpfs", gpfs.Factory)
	return r
}
