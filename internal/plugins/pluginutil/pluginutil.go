// Package pluginutil provides the shared scaffolding used by all Pusher
// plugins, playing the role of the code-skeleton generator scripts the
// original DCDB ships to simplify plugin development (paper §4.1):
// plugins embed Base and only implement Configure plus their reading
// logic.
package pluginutil

import (
	"fmt"
	"strings"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/pusher"
)

// Base carries the bookkeeping common to every plugin.
type Base struct {
	PluginName string
	GroupList  []*pusher.Group
	EntityList []pusher.Entity
}

// Name implements pusher.Plugin.
func (b *Base) Name() string { return b.PluginName }

// Groups implements pusher.Plugin.
func (b *Base) Groups() []*pusher.Group { return b.GroupList }

// Entities implements pusher.Plugin.
func (b *Base) Entities() []pusher.Entity { return b.EntityList }

// Start implements pusher.Plugin with a no-op.
func (b *Base) Start() error { return nil }

// Stop implements pusher.Plugin with a no-op.
func (b *Base) Stop() error { return nil }

// AddGroup appends a validated group.
func (b *Base) AddGroup(g *pusher.Group) error {
	if err := g.Validate(); err != nil {
		return err
	}
	b.GroupList = append(b.GroupList, g)
	return nil
}

// Reset clears configured state so Configure can be re-run (REST
// reload).
func (b *Base) Reset() {
	b.GroupList = nil
	b.EntityList = nil
}

// CommonGroupConfig extracts the settings every group block shares.
type CommonGroupConfig struct {
	Name     string
	Interval time.Duration
	Prefix   string // MQTT topic prefix for the group's sensors
}

// ParseGroup reads the common fields of a "group <name> { … }" block.
// defaultInterval applies when the block has no interval.
func ParseGroup(n *config.Node, defaultInterval time.Duration) CommonGroupConfig {
	g := CommonGroupConfig{
		Name:     n.Value,
		Interval: n.Duration("interval", defaultInterval),
		Prefix:   n.String("mqttPrefix", ""),
	}
	if g.Name == "" {
		g.Name = "default"
	}
	return g
}

// JoinTopic concatenates a prefix and a leaf into a clean topic.
func JoinTopic(prefix, leaf string) string {
	p := strings.TrimSuffix(prefix, "/")
	l := strings.TrimPrefix(leaf, "/")
	if p == "" {
		return "/" + l
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return p + "/" + l
}

// SanitizeLevel makes an arbitrary device-provided name usable as one
// topic hierarchy level.
func SanitizeLevel(s string) string {
	s = strings.TrimSpace(s)
	repl := strings.NewReplacer("/", "-", " ", "_", "#", "", "+", "", "\"", "")
	s = repl.Replace(s)
	if s == "" {
		return "unnamed"
	}
	return s
}

// FuncEntity adapts connect/close functions to pusher.Entity; most
// plugin entities are a connection plus a name.
type FuncEntity struct {
	EntityName string
	OnConnect  func() error
	OnClose    func() error
}

// Name implements pusher.Entity.
func (e *FuncEntity) Name() string { return e.EntityName }

// Connect implements pusher.Entity.
func (e *FuncEntity) Connect() error {
	if e.OnConnect == nil {
		return nil
	}
	return e.OnConnect()
}

// Close implements pusher.Entity.
func (e *FuncEntity) Close() error {
	if e.OnClose == nil {
		return nil
	}
	return e.OnClose()
}

// RequireValue returns a config value or an error mentioning the
// plugin, for uniform Configure diagnostics.
func RequireValue(plugin string, n *config.Node, key string) (string, error) {
	v, ok := n.Get(key)
	if !ok || v == "" {
		return "", fmt.Errorf("%s: missing required config key %q", plugin, key)
	}
	return v, nil
}
