package pluginutil

import (
	"testing"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/pusher"
)

func TestJoinTopic(t *testing.T) {
	cases := []struct{ prefix, leaf, want string }{
		{"", "power", "/power"},
		{"/node07", "power", "/node07/power"},
		{"/node07/", "/power", "/node07/power"},
		{"node07", "power", "/node07/power"},
		{"/a/b", "c/d", "/a/b/c/d"},
	}
	for _, c := range cases {
		if got := JoinTopic(c.prefix, c.leaf); got != c.want {
			t.Errorf("JoinTopic(%q, %q) = %q, want %q", c.prefix, c.leaf, got, c.want)
		}
	}
}

func TestSanitizeLevel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"CPU1 Temp", "CPU1_Temp"},
		{"a/b", "a-b"},
		{"bad#topic+chars\"", "badtopicchars"},
		{"  spaced  ", "spaced"},
		{"", "unnamed"},
		{"#+", "unnamed"},
	}
	for _, c := range cases {
		if got := SanitizeLevel(c.in); got != c.want {
			t.Errorf("SanitizeLevel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseGroup(t *testing.T) {
	root, err := config.ParseString(`
group fast {
    interval 250ms
    mqttPrefix /x/fast
}
group {
}
`)
	if err != nil {
		t.Fatal(err)
	}
	groups := root.ChildrenNamed("group")
	if len(groups) != 2 {
		t.Fatalf("parsed %d groups", len(groups))
	}
	g := ParseGroup(groups[0], time.Second)
	if g.Name != "fast" || g.Interval != 250*time.Millisecond || g.Prefix != "/x/fast" {
		t.Errorf("ParseGroup = %+v", g)
	}
	// Defaults: unnamed group, inherited interval, empty prefix.
	d := ParseGroup(groups[1], 2*time.Second)
	if d.Name != "default" || d.Interval != 2*time.Second || d.Prefix != "" {
		t.Errorf("defaulted ParseGroup = %+v", d)
	}
}

func TestBaseGroupLifecycle(t *testing.T) {
	b := &Base{PluginName: "x"}
	if b.Name() != "x" || b.Start() != nil || b.Stop() != nil {
		t.Fatal("Base plumbing broken")
	}
	ok := &pusher.Group{
		Name: "g", Interval: time.Second,
		Sensors: []*pusher.Sensor{{Name: "s", Topic: "/t/s"}},
		Reader:  pusher.GroupReaderFunc(func(time.Time) ([]float64, error) { return []float64{1}, nil }),
	}
	if err := b.AddGroup(ok); err != nil {
		t.Fatalf("valid group rejected: %v", err)
	}
	if err := b.AddGroup(&pusher.Group{Name: "bad"}); err == nil {
		t.Error("invalid group accepted")
	}
	if len(b.Groups()) != 1 {
		t.Fatalf("groups = %d", len(b.Groups()))
	}
	b.Reset()
	if len(b.Groups()) != 0 || len(b.Entities()) != 0 {
		t.Error("Reset left state behind")
	}
}

func TestRequireValue(t *testing.T) {
	root, err := config.ParseString("path /proc/stat\nempty \"\"")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := RequireValue("p", root, "path"); err != nil || v != "/proc/stat" {
		t.Errorf("RequireValue = %q, %v", v, err)
	}
	if _, err := RequireValue("p", root, "missing"); err == nil {
		t.Error("missing key accepted")
	}
}

func TestFuncEntity(t *testing.T) {
	called := 0
	e := &FuncEntity{EntityName: "bmc", OnConnect: func() error { called++; return nil }}
	if e.Name() != "bmc" {
		t.Error("name")
	}
	if err := e.Connect(); err != nil || called != 1 {
		t.Errorf("connect: %v, called=%d", err, called)
	}
	if err := e.Close(); err != nil { // nil OnClose is a no-op
		t.Errorf("close: %v", err)
	}
}
