// Package bacnetplug implements the BACnet plugin (paper §3.1), reading
// building-management sensors — room temperatures, chilled-water
// plants, air handlers — as analog-input objects from BACnet/IP
// devices. Devices are entities; sensors name an object instance whose
// Present_Value is sampled.
//
// Configuration:
//
//	plugin bacnet {
//	    mqttPrefix /building
//	    interval   30000
//	    device ahu1 {
//	        addr 127.0.0.1:47808
//	        group air {
//	            sensor supply_temp { object 1001 unit C }
//	            sensor return_temp { object 1002 unit C }
//	        }
//	    }
//	}
package bacnetplug

import (
	"fmt"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
	"dcdb/internal/sim/bacnet"
)

// Plugin samples BACnet devices.
type Plugin struct {
	pluginutil.Base
}

// New creates an unconfigured BACnet plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "bacnet"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

type deviceEntity struct {
	name   string
	addr   string
	client *bacnet.Client
}

// Name implements pusher.Entity.
func (d *deviceEntity) Name() string { return d.name }

// Connect implements pusher.Entity.
func (d *deviceEntity) Connect() error {
	c, err := bacnet.Dial(d.addr)
	if err != nil {
		return err
	}
	d.client = c
	return nil
}

// Close implements pusher.Entity.
func (d *deviceEntity) Close() error {
	if d.client == nil {
		return nil
	}
	err := d.client.Close()
	d.client = nil
	return err
}

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	defInterval := cfg.Duration("interval", 30*time.Second)
	prefix := cfg.String("mqttPrefix", "/bacnet")
	devices := cfg.ChildrenNamed("device")
	if len(devices) == 0 {
		return fmt.Errorf("bacnet: configuration defines no devices")
	}
	for _, dn := range devices {
		devName := dn.Value
		if devName == "" {
			return fmt.Errorf("bacnet: device block without a name")
		}
		addr, err := pluginutil.RequireValue("bacnet", dn, "addr")
		if err != nil {
			return err
		}
		ent := &deviceEntity{name: devName, addr: addr}
		p.EntityList = append(p.EntityList, ent)
		for _, gn := range dn.ChildrenNamed("group") {
			gc := pluginutil.ParseGroup(gn, defInterval)
			if gc.Prefix == "" {
				gc.Prefix = pluginutil.JoinTopic(prefix, devName+"/"+gc.Name)
			}
			var sensors []*pusher.Sensor
			var objects []uint32
			for _, sn := range gn.ChildrenNamed("sensor") {
				if sn.Value == "" {
					return fmt.Errorf("bacnet: device %q group %q has a sensor without a name", devName, gc.Name)
				}
				obj := sn.Int("object", -1)
				if obj < 0 {
					return fmt.Errorf("bacnet: sensor %q missing object instance", sn.Value)
				}
				sensors = append(sensors, &pusher.Sensor{
					Name:  sn.Value,
					Topic: pluginutil.JoinTopic(gc.Prefix, pluginutil.SanitizeLevel(sn.Value)),
					Unit:  sn.String("unit", ""),
				})
				objects = append(objects, uint32(obj))
			}
			if len(sensors) == 0 {
				return fmt.Errorf("bacnet: device %q group %q has no sensors", devName, gc.Name)
			}
			objs := objects
			g := &pusher.Group{
				Name:     devName + "/" + gc.Name,
				Interval: gc.Interval,
				Sensors:  sensors,
				Entity:   devName,
				Reader: pusher.GroupReaderFunc(func(time.Time) ([]float64, error) {
					if ent.client == nil {
						return nil, fmt.Errorf("bacnet: device %q not connected", ent.name)
					}
					out := make([]float64, len(objs))
					for i, obj := range objs {
						v, err := ent.client.ReadProperty(obj, bacnet.PropPresentValue)
						if err != nil {
							return nil, err
						}
						out[i] = v
					}
					return out, nil
				}),
			}
			if err := p.AddGroup(g); err != nil {
				return err
			}
		}
	}
	if len(p.GroupList) == 0 {
		return fmt.Errorf("bacnet: configuration defines no groups")
	}
	return nil
}
