// Package perfevents implements the Perfevents plugin (paper §3.1),
// DCDB's source of in-band application performance metrics: per-core
// hardware counters sampled at 1 Hz or higher. On the production
// systems the plugin uses perf_event_open; here the counters come from
// the deterministic CPU simulator in sim/cpu, preserving the plugin's
// structure — one group per core tying together that core's counters,
// published as per-interval deltas — without the syscall.
//
// Configuration:
//
//	plugin perfevents {
//	    mqttPrefix /node07/cpu
//	    interval   1000
//	    cores      48            ; simulated cores (0 = runtime cores)
//	    counters   instructions,cycles,cache-misses
//	}
package perfevents

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
	"dcdb/internal/sim/cpu"
)

// Plugin samples simulated per-core hardware counters.
type Plugin struct {
	pluginutil.Base
	machine *cpu.Machine
}

// New creates an unconfigured perfevents plugin. A nil machine makes
// Configure build one sized by the configuration.
func New(machine *cpu.Machine) *Plugin {
	p := &Plugin{machine: machine}
	p.PluginName = "perfevents"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New(nil) }

// Machine exposes the backing simulator (so workload models can swap
// profiles mid-run, as in the application-characterisation case study).
func (p *Plugin) Machine() *cpu.Machine { return p.machine }

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	interval := cfg.Duration("interval", time.Second)
	prefix := cfg.String("mqttPrefix", "/cpu")
	cores := cfg.Int("cores", 0)
	if cores <= 0 {
		cores = runtime.NumCPU()
	}
	if p.machine == nil || p.machine.Cores() < cores {
		p.machine = cpu.NewMachine(cores, 0, nil)
	}
	counters, err := parseCounters(cfg.String("counters", ""))
	if err != nil {
		return err
	}
	for c := 0; c < cores; c++ {
		core := c
		sensors := make([]*pusher.Sensor, len(counters))
		for i, ctr := range counters {
			sensors[i] = &pusher.Sensor{
				Name:  ctr.String(),
				Topic: pluginutil.JoinTopic(prefix, fmt.Sprintf("core%02d/%s", core, ctr)),
				Unit:  "events",
				Delta: true,
			}
		}
		ctrs := counters
		g := &pusher.Group{
			Name:     fmt.Sprintf("core%02d", core),
			Interval: interval,
			Sensors:  sensors,
			Reader: pusher.GroupReaderFunc(func(now time.Time) ([]float64, error) {
				out := make([]float64, len(ctrs))
				for i, ctr := range ctrs {
					v, err := p.machine.ReadCounter(core, ctr, now)
					if err != nil {
						return nil, err
					}
					out[i] = float64(v)
				}
				return out, nil
			}),
		}
		if err := p.AddGroup(g); err != nil {
			return err
		}
	}
	return nil
}

func parseCounters(list string) ([]cpu.Counter, error) {
	if list == "" {
		return cpu.Counters(), nil
	}
	byName := make(map[string]cpu.Counter)
	for _, c := range cpu.Counters() {
		byName[c.String()] = c
	}
	var out []cpu.Counter
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("perfevents: unknown counter %q (known: %v)", name, cpu.Counters())
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perfevents: empty counter list")
	}
	return out, nil
}
