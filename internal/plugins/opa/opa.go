// Package opa implements the OPA plugin (paper §3.1, §6.2.1): per-port
// Omni-Path fabric counters (transmitted/received data and packets)
// published as per-interval deltas. The production systems read the
// hfi1 counters; here the counters come from the fabric simulator.
//
// Configuration:
//
//	plugin opa {
//	    mqttPrefix /node07/opa
//	    interval   1000
//	    ports      1
//	}
package opa

import (
	"fmt"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
	"dcdb/internal/sim/fabric"
)

// Plugin samples Omni-Path port counters.
type Plugin struct {
	pluginutil.Base
	ports []*fabric.Port
}

// New creates an unconfigured OPA plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "opa"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	interval := cfg.Duration("interval", time.Second)
	prefix := cfg.String("mqttPrefix", "/opa")
	nports := cfg.Int("ports", 1)
	if nports <= 0 {
		return fmt.Errorf("opa: ports must be positive, got %d", nports)
	}
	p.ports = make([]*fabric.Port, nports)
	now := time.Now()
	for i := range p.ports {
		p.ports[i] = fabric.NewPort(now, 0)
	}
	for i := 0; i < nports; i++ {
		port := p.ports[i]
		pp := pluginutil.JoinTopic(prefix, fmt.Sprintf("port%d", i))
		sensors := []*pusher.Sensor{
			{Name: "xmit_data", Topic: pp + "/xmit_data", Unit: "B", Delta: true},
			{Name: "rcv_data", Topic: pp + "/rcv_data", Unit: "B", Delta: true},
			{Name: "xmit_pkts", Topic: pp + "/xmit_pkts", Unit: "packets", Delta: true},
			{Name: "rcv_pkts", Topic: pp + "/rcv_pkts", Unit: "packets", Delta: true},
		}
		g := &pusher.Group{
			Name:     fmt.Sprintf("port%d", i),
			Interval: interval,
			Sensors:  sensors,
			Reader: pusher.GroupReaderFunc(func(now time.Time) ([]float64, error) {
				return []float64{
					float64(port.XmitData(now)),
					float64(port.RcvData(now)),
					float64(port.XmitPkts(now)),
					float64(port.RcvPkts(now)),
				}, nil
			}),
		}
		if err := p.AddGroup(g); err != nil {
			return err
		}
	}
	return nil
}
