package procfs

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// synthState renders deterministic /proc-style file contents when the
// real files are unavailable, so the same parser code path runs in
// hermetic tests and on non-Linux hosts.
type synthState struct {
	kind  string
	start time.Time
}

func newSynthState(kind string) *synthState {
	return &synthState{kind: kind, start: time.Now()}
}

func (s *synthState) render(now time.Time) string {
	e := now.Sub(s.start).Seconds()
	if e < 0 {
		e = 0
	}
	switch s.kind {
	case "meminfo":
		used := 30e6 + 5e6*math.Sin(e/60)
		return fmt.Sprintf(
			"MemTotal:       98304000 kB\nMemFree:        %d kB\nMemAvailable:   %d kB\nBuffers:          512000 kB\nCached:          8192000 kB\nSwapTotal:             0 kB\nSwapFree:              0 kB\nDirty:             %d kB\nActive:         20480000 kB\nInactive:       10240000 kB\n",
			int(98304000-used), int(98304000-used-9e6), int(2048+1024*math.Abs(math.Sin(e/13))))
	case "procstat":
		user := 1000 + 350*e
		system := 300 + 45*e
		idle := 5000 + 9000*e
		var b strings.Builder
		fmt.Fprintf(&b, "cpu  %d 0 %d %d 120 0 35\n", int(user*48), int(system*48), int(idle*48))
		for c := 0; c < 4; c++ {
			fmt.Fprintf(&b, "cpu%d %d 0 %d %d 30 0 8\n", c, int(user*(1+0.02*float64(c))), int(system), int(idle))
		}
		fmt.Fprintf(&b, "ctxt %d\nprocesses %d\nprocs_running 3\nprocs_blocked 0\n", int(90000+12000*e), int(4000+2*e))
		return b.String()
	default: // vmstat
		return fmt.Sprintf(
			"nr_free_pages %d\nnr_anon_pages %d\nnr_mapped 81234\npgpgin %d\npgpgout %d\npgfault %d\npgmajfault %d\nnr_dirty %d\n",
			int(17e6-1e5*math.Sin(e/30)), int(6e6+2e5*math.Sin(e/45)),
			int(5e5+4000*e), int(3e5+2500*e), int(9e6+60000*e), int(120+0.3*e),
			int(900+700*math.Abs(math.Sin(e/7))))
	}
}
