// Package procfs implements the ProcFS plugin (paper §3.1, §6.2.1): it
// samples server-side metrics from the Linux /proc filesystem — the
// production configurations collect meminfo, vmstat and procstat. Each
// configured file becomes one sensor group whose members are discovered
// by parsing the file once at configuration time. On hosts where the
// files are unavailable (or in hermetic tests) an embedded synthetic
// snapshot stands in, exercising exactly the same parser.
//
// Configuration:
//
//	plugin procfs {
//	    mqttPrefix /node07/procfs
//	    interval   1000
//	    file meminfo  { path /proc/meminfo }
//	    file vmstat   { path /proc/vmstat }
//	    file procstat { path /proc/stat }
//	}
package procfs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/plugins/pluginutil"
	"dcdb/internal/pusher"
)

// Plugin samples /proc files.
type Plugin struct {
	pluginutil.Base
}

// New creates an unconfigured procfs plugin.
func New() *Plugin {
	p := &Plugin{}
	p.PluginName = "procfs"
	return p
}

// Factory adapts New to the plugin registry.
func Factory() pusher.Plugin { return New() }

// Configure implements pusher.Plugin.
func (p *Plugin) Configure(cfg *config.Node) error {
	p.Reset()
	defInterval := cfg.Duration("interval", time.Second)
	prefix := cfg.String("mqttPrefix", "/procfs")
	files := cfg.ChildrenNamed("file")
	if len(files) == 0 {
		return fmt.Errorf("procfs: configuration defines no files")
	}
	for _, fn := range files {
		kind := fn.Value
		if kind == "" {
			return fmt.Errorf("procfs: file block without a name")
		}
		path := fn.String("path", defaultPath(kind))
		gc := pluginutil.ParseGroup(fn, defInterval)
		gc.Name = kind
		if gc.Prefix == "" {
			gc.Prefix = pluginutil.JoinTopic(prefix, kind)
		}
		reader := newFileReader(kind, path)
		metrics, err := reader.metrics()
		if err != nil {
			return fmt.Errorf("procfs: probing %s: %w", path, err)
		}
		if len(metrics) == 0 {
			return fmt.Errorf("procfs: %s exposes no metrics", path)
		}
		sensors := make([]*pusher.Sensor, len(metrics))
		for i, m := range metrics {
			sensors[i] = &pusher.Sensor{
				Name:  m,
				Topic: pluginutil.JoinTopic(gc.Prefix, pluginutil.SanitizeLevel(m)),
				Unit:  unitFor(kind, m),
				Delta: kind == "vmstat" || kind == "procstat",
			}
		}
		g := &pusher.Group{
			Name:     gc.Name,
			Interval: gc.Interval,
			Sensors:  sensors,
			Reader:   reader,
		}
		if err := p.AddGroup(g); err != nil {
			return err
		}
	}
	return nil
}

func defaultPath(kind string) string {
	switch kind {
	case "meminfo":
		return "/proc/meminfo"
	case "vmstat":
		return "/proc/vmstat"
	case "procstat":
		return "/proc/stat"
	}
	return "/proc/" + kind
}

func unitFor(kind, metric string) string {
	if kind == "meminfo" {
		return "KiB"
	}
	_ = metric
	return "events"
}

// fileReader parses one /proc-style file into name→value pairs. The
// metric order is frozen at configuration time so group reads stay
// aligned with the sensor slice.
type fileReader struct {
	kind  string
	path  string
	names []string
	synth *synthState
}

func newFileReader(kind, path string) *fileReader {
	return &fileReader{kind: kind, path: path}
}

func (f *fileReader) content(now time.Time) (string, error) {
	data, err := os.ReadFile(f.path)
	if err == nil {
		return string(data), nil
	}
	// Synthetic fallback: same format, deterministic dynamics.
	if f.synth == nil {
		f.synth = newSynthState(f.kind)
	}
	return f.synth.render(now), nil
}

// metrics probes the file and freezes the metric list.
func (f *fileReader) metrics() ([]string, error) {
	text, err := f.content(time.Now())
	if err != nil {
		return nil, err
	}
	pairs, err := parseProcFile(f.kind, text)
	if err != nil {
		return nil, err
	}
	f.names = f.names[:0]
	for _, kv := range pairs {
		f.names = append(f.names, kv.name)
	}
	return f.names, nil
}

// ReadGroup implements pusher.GroupReader.
func (f *fileReader) ReadGroup(now time.Time) ([]float64, error) {
	text, err := f.content(now)
	if err != nil {
		return nil, err
	}
	pairs, err := parseProcFile(f.kind, text)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]float64, len(pairs))
	for _, kv := range pairs {
		byName[kv.name] = kv.value
	}
	out := make([]float64, len(f.names))
	for i, n := range f.names {
		out[i] = byName[n] // absent metrics read as 0
	}
	return out, nil
}

type kv struct {
	name  string
	value float64
}

// parseProcFile understands the three production formats.
func parseProcFile(kind, text string) ([]kv, error) {
	var out []kv
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch kind {
		case "meminfo":
			// "MemTotal:       97871212 kB"
			name, rest, ok := strings.Cut(line, ":")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			v, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				continue
			}
			out = append(out, kv{name: name, value: v})
		case "procstat":
			// "cpu0 123 0 456 789 …" and scalar lines like "ctxt 999".
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue
			}
			if strings.HasPrefix(fields[0], "cpu") {
				names := []string{"user", "nice", "system", "idle", "iowait", "irq", "softirq"}
				for i, n := range names {
					if i+1 >= len(fields) {
						break
					}
					v, err := strconv.ParseFloat(fields[i+1], 64)
					if err != nil {
						continue
					}
					out = append(out, kv{name: fields[0] + "." + n, value: v})
				}
				continue
			}
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				out = append(out, kv{name: fields[0], value: v})
			}
		default: // vmstat and other "name value" formats
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				continue
			}
			out = append(out, kv{name: fields[0], value: v})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("procfs: no parsable metrics in %s content", kind)
	}
	return out, nil
}
