package procfs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcdb/internal/config"
)

func TestParseProcFileFormats(t *testing.T) {
	mem, err := parseProcFile("meminfo", "MemTotal:  97871212 kB\nMemFree:  1234 kB\nBogus line\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != 2 || mem[0].name != "MemTotal" || mem[0].value != 97871212 {
		t.Fatalf("meminfo = %+v", mem)
	}

	vm, err := parseProcFile("vmstat", "pgpgin 123\npgpgout 456\nnot numeric x\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(vm) != 2 || vm[1].name != "pgpgout" || vm[1].value != 456 {
		t.Fatalf("vmstat = %+v", vm)
	}

	st, err := parseProcFile("procstat", "cpu0 10 20 30 40 50 60 70\nctxt 999\n")
	if err != nil {
		t.Fatal(err)
	}
	// cpu0 expands into seven named counters plus the scalar ctxt.
	if len(st) != 8 || st[0].name != "cpu0.user" || st[0].value != 10 || st[7].name != "ctxt" {
		t.Fatalf("procstat = %+v", st)
	}

	if _, err := parseProcFile("meminfo", "nothing parsable"); err == nil {
		t.Error("unparsable content accepted")
	}
}

func TestFileReaderRealFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meminfo")
	if err := os.WriteFile(path, []byte("MemTotal: 100 kB\nMemFree: 40 kB\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := newFileReader("meminfo", path)
	metrics, err := r.metrics()
	if err != nil || len(metrics) != 2 {
		t.Fatalf("metrics = %v, %v", metrics, err)
	}
	vals, err := r.ReadGroup(time.Now())
	if err != nil || len(vals) != 2 || vals[0] != 100 || vals[1] != 40 {
		t.Fatalf("ReadGroup = %v, %v", vals, err)
	}
	// The metric order is frozen: rewriting the file with reordered
	// lines must not reorder the output.
	if err := os.WriteFile(path, []byte("MemFree: 41 kB\nMemTotal: 101 kB\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vals, err = r.ReadGroup(time.Now())
	if err != nil || vals[0] != 101 || vals[1] != 41 {
		t.Fatalf("reordered ReadGroup = %v, %v", vals, err)
	}
}

func TestFileReaderSyntheticFallback(t *testing.T) {
	r := newFileReader("vmstat", filepath.Join(t.TempDir(), "does-not-exist"))
	metrics, err := r.metrics()
	if err != nil || len(metrics) == 0 {
		t.Fatalf("synthetic metrics = %v, %v", metrics, err)
	}
	v1, err := r.ReadGroup(time.Now())
	if err != nil || len(v1) != len(metrics) {
		t.Fatalf("synthetic read = %v, %v", v1, err)
	}
	// Cumulative event counters never go down; gauges (nr_*) may.
	v2, err := r.ReadGroup(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range metrics {
		if v2[i] < 0 {
			t.Errorf("synthetic %s went negative: %v", name, v2[i])
		}
		if (name == "pgpgin" || name == "pgfault") && v2[i] < v1[i] {
			t.Errorf("synthetic counter %s decreased: %v -> %v", name, v1[i], v2[i])
		}
	}
}

func TestConfigure(t *testing.T) {
	cfg, err := config.ParseString(`
mqttPrefix /node07/procfs
interval 500ms
file meminfo { }
file vmstat { }
`)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	groups := p.Groups()
	if len(groups) != 2 {
		t.Fatalf("configured %d groups", len(groups))
	}
	g := groups[0]
	if g.Interval != 500*time.Millisecond || len(g.Sensors) == 0 {
		t.Fatalf("group = %+v", g)
	}
	for _, s := range g.Sensors {
		if s.Topic == "" || s.Topic[0] != '/' {
			t.Errorf("sensor %q has bad topic %q", s.Name, s.Topic)
		}
	}
	// Reading the configured group produces one value per sensor.
	vals, err := g.Reader.ReadGroup(time.Now())
	if err != nil || len(vals) != len(g.Sensors) {
		t.Fatalf("group read = %d values, %v", len(vals), err)
	}

	if err := New().Configure(&config.Node{}); err == nil {
		t.Error("configuration without files accepted")
	}
}
