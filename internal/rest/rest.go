// Package rest implements the RESTful APIs of Pushers and Collect
// Agents (paper §5.3). The Pusher API retrieves the current
// configuration, starts and stops individual plugins (to avoid
// conflicts with user software accessing the same data source),
// triggers seamless configuration reloads, and reads the sensor cache.
// The Collect Agent API mirrors the cache access for all sensors of the
// connected Pushers, so other processes — legacy monitoring included —
// can read every sensor through one interface from user space.
package rest

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"dcdb/internal/cache"
	"dcdb/internal/collectagent"
	"dcdb/internal/metrics"
	"dcdb/internal/pusher"
)

// CachedReading is the JSON shape of one cache entry.
type CachedReading struct {
	Topic     string  `json:"topic"`
	Timestamp int64   `json:"timestamp"`
	Value     float64 `json:"value"`
	Average   float64 `json:"average,omitempty"`
}

// PusherAPI serves the Pusher's RESTful interface.
type PusherAPI struct {
	host *pusher.Host
	// ConfigText returns the current configuration rendering; nil
	// yields 404 on /config.
	ConfigText func() string
	// Reload re-reads the configuration and reconfigures plugins
	// without interrupting the Pusher; nil yields 501 on /reload.
	Reload func() error
	// StartPlugin restarts a previously stopped plugin by name; nil
	// yields 501.
	StartPlugin func(name string) error
	// MetricsParts extends the Prometheus exposition at /metrics beyond
	// the host's own registry (process runtime metrics are always
	// included).
	MetricsParts []metrics.Part

	srv *http.Server
	ln  net.Listener
}

// NewPusherAPI wraps a Host.
func NewPusherAPI(host *pusher.Host) *PusherAPI { return &PusherAPI{host: host} }

// Routes returns the API's handler (exported for tests).
func (p *PusherAPI) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /config", func(w http.ResponseWriter, r *http.Request) {
		if p.ConfigText == nil {
			http.Error(w, "no configuration attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, p.ConfigText())
	})
	mux.HandleFunc("GET /plugins", func(w http.ResponseWriter, r *http.Request) {
		running := p.host.Running()
		sort.Strings(running)
		writeJSON(w, map[string]any{"running": running})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.host.Stats())
	})
	mux.Handle("GET /metrics", metrics.Handler(append([]metrics.Part{
		{Reg: p.host.Metrics()},
		{Reg: metrics.Runtime()},
	}, p.MetricsParts...)...))
	mux.HandleFunc("GET /sensors", func(w http.ResponseWriter, r *http.Request) {
		serveTopics(w, p.host.Cache())
	})
	mux.HandleFunc("GET /cache/", func(w http.ResponseWriter, r *http.Request) {
		serveCache(w, r, p.host.Cache(), "/cache/")
	})
	mux.HandleFunc("POST /plugins/{name}/stop", func(w http.ResponseWriter, r *http.Request) {
		if err := p.host.StopPlugin(r.PathValue("name")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]string{"status": "stopped"})
	})
	mux.HandleFunc("POST /plugins/{name}/start", func(w http.ResponseWriter, r *http.Request) {
		if p.StartPlugin == nil {
			http.Error(w, "start not supported", http.StatusNotImplemented)
			return
		}
		if err := p.StartPlugin(r.PathValue("name")); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]string{"status": "started"})
	})
	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		if p.Reload == nil {
			http.Error(w, "reload not supported", http.StatusNotImplemented)
			return
		}
		if err := p.Reload(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]string{"status": "reloaded"})
	})
	return mux
}

// Listen starts the API server on addr.
func (p *PusherAPI) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.ln = ln
	p.srv = &http.Server{Handler: p.Routes()}
	go p.srv.Serve(ln)
	return nil
}

// Addr returns the bound address.
func (p *PusherAPI) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Close stops the server.
func (p *PusherAPI) Close() error {
	if p.srv == nil {
		return nil
	}
	return p.srv.Close()
}

// AgentAPI serves the Collect Agent's RESTful interface.
type AgentAPI struct {
	agent *collectagent.Agent
	// MetricsParts extends /metrics beyond the agent's ingest registry
	// (typically the storage cluster's and per-node registries, with
	// node labels injected).
	MetricsParts []metrics.Part

	srv *http.Server
	ln  net.Listener
}

// NewAgentAPI wraps an Agent.
func NewAgentAPI(agent *collectagent.Agent) *AgentAPI { return &AgentAPI{agent: agent} }

// Routes returns the API's handler (exported for tests).
func (a *AgentAPI) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /sensors", func(w http.ResponseWriter, r *http.Request) {
		serveTopics(w, a.agent.Cache())
	})
	mux.HandleFunc("GET /cache/", func(w http.ResponseWriter, r *http.Request) {
		serveCache(w, r, a.agent.Cache(), "/cache/")
	})
	mux.HandleFunc("GET /hierarchy", func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Query().Get("path")
		writeJSON(w, map[string]any{
			"path":     path,
			"children": a.agent.Hierarchy().Children(path),
			"sensors":  a.agent.Hierarchy().Sensors(path),
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.agent.Stats())
	})
	mux.Handle("GET /metrics", metrics.Handler(append([]metrics.Part{
		{Reg: a.agent.Metrics()},
		{Reg: metrics.Runtime()},
	}, a.MetricsParts...)...))
	return mux
}

// Listen starts the API server on addr.
func (a *AgentAPI) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	a.ln = ln
	a.srv = &http.Server{Handler: a.Routes()}
	go a.srv.Serve(ln)
	return nil
}

// Addr returns the bound address.
func (a *AgentAPI) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the server.
func (a *AgentAPI) Close() error {
	if a.srv == nil {
		return nil
	}
	return a.srv.Close()
}

func serveTopics(w http.ResponseWriter, c *cache.Cache) {
	topics := c.Topics()
	sort.Strings(topics)
	writeJSON(w, map[string]any{"sensors": topics})
}

func serveCache(w http.ResponseWriter, r *http.Request, c *cache.Cache, prefix string) {
	topic := strings.TrimPrefix(r.URL.Path, prefix)
	if !strings.HasPrefix(topic, "/") {
		topic = "/" + topic
	}
	latest, ok := c.Latest(topic)
	if !ok {
		http.Error(w, "sensor not in cache", http.StatusNotFound)
		return
	}
	out := CachedReading{Topic: topic, Timestamp: latest.Timestamp, Value: latest.Value}
	if avgStr := r.URL.Query().Get("avg"); avgStr != "" {
		if d, err := time.ParseDuration(avgStr); err == nil {
			if avg, ok := c.Average(topic, d); ok {
				out.Average = avg
			}
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
