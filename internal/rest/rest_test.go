package rest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dcdb/internal/collectagent"
	"dcdb/internal/config"
	"dcdb/internal/core"
	"dcdb/internal/plugins/tester"
	"dcdb/internal/pusher"
	"dcdb/internal/store"
)

func startHostWithTester(t *testing.T) *pusher.Host {
	t.Helper()
	h := pusher.NewHost(nil, pusher.Options{Threads: 1})
	t.Cleanup(func() { h.Close() })
	p := tester.New()
	cfg, _ := config.ParseString("mqttPrefix /api\ngroup g { interval 10 sensors 2 }")
	if err := p.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := h.StartPlugin(p); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Readings < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	return h
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func post(t *testing.T, srv *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestPusherAPI(t *testing.T) {
	h := startHostWithTester(t)
	api := NewPusherAPI(h)
	api.ConfigText = func() string { return "global { }" }
	reloaded := false
	api.Reload = func() error { reloaded = true; return nil }
	srv := httptest.NewServer(api.Routes())
	defer srv.Close()

	resp, body := get(t, srv, "/config")
	if resp.StatusCode != 200 || body != "global { }" {
		t.Errorf("/config = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv, "/plugins")
	if resp.StatusCode != 200 || !strings.Contains(body, "tester") {
		t.Errorf("/plugins = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv, "/sensors")
	if resp.StatusCode != 200 || !strings.Contains(body, "/api/g/s00000") {
		t.Errorf("/sensors = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv, "/cache/api/g/s00000?avg=1m")
	if resp.StatusCode != 200 {
		t.Fatalf("/cache = %d %q", resp.StatusCode, body)
	}
	var cr CachedReading
	if err := json.Unmarshal([]byte(body), &cr); err != nil || cr.Topic != "/api/g/s00000" {
		t.Errorf("cache reading = %+v, %v", cr, err)
	}
	resp, _ = get(t, srv, "/cache/unknown/topic")
	if resp.StatusCode != 404 {
		t.Errorf("unknown cache topic = %d", resp.StatusCode)
	}
	resp, body = get(t, srv, "/stats")
	if resp.StatusCode != 200 || !strings.Contains(body, "Readings") {
		t.Errorf("/stats = %d %q", resp.StatusCode, body)
	}
	// Reload.
	if resp := post(t, srv, "/reload"); resp.StatusCode != 200 || !reloaded {
		t.Errorf("/reload = %d, reloaded=%v", resp.StatusCode, reloaded)
	}
	// Stop the plugin via the API.
	if resp := post(t, srv, "/plugins/tester/stop"); resp.StatusCode != 200 {
		t.Errorf("stop = %d", resp.StatusCode)
	}
	if len(h.Running()) != 0 {
		t.Error("plugin still running after API stop")
	}
	if resp := post(t, srv, "/plugins/tester/stop"); resp.StatusCode != 404 {
		t.Errorf("double stop = %d", resp.StatusCode)
	}
	// Start is 501 without a hook, then works with one.
	if resp := post(t, srv, "/plugins/tester/start"); resp.StatusCode != 501 {
		t.Errorf("start without hook = %d", resp.StatusCode)
	}
	api.StartPlugin = func(name string) error {
		if name != "tester" {
			return fmt.Errorf("unknown plugin %q", name)
		}
		p := tester.New()
		cfg, _ := config.ParseString("mqttPrefix /api\ngroup g { interval 10 sensors 2 }")
		if err := p.Configure(cfg); err != nil {
			return err
		}
		return h.StartPlugin(p)
	}
	if resp := post(t, srv, "/plugins/tester/start"); resp.StatusCode != 200 {
		t.Errorf("start = %d", resp.StatusCode)
	}
	if len(h.Running()) != 1 {
		t.Error("plugin not running after API start")
	}
	if resp := post(t, srv, "/plugins/bogus/start"); resp.StatusCode != 400 {
		t.Errorf("bogus start = %d", resp.StatusCode)
	}
}

func TestPusherAPIWithoutHooks(t *testing.T) {
	h := pusher.NewHost(nil, pusher.Options{})
	defer h.Close()
	srv := httptest.NewServer(NewPusherAPI(h).Routes())
	defer srv.Close()
	if resp, _ := get(t, srv, "/config"); resp.StatusCode != 404 {
		t.Error("config without hook should 404")
	}
	if resp := post(t, srv, "/reload"); resp.StatusCode != 501 {
		t.Error("reload without hook should 501")
	}
}

func TestAgentAPI(t *testing.T) {
	a := collectagent.New(store.NewNode(0), nil, collectagent.Options{Quiet: true})
	a.Handle("/lrz/cm3/n1/power", core.EncodeReadings([]core.Reading{{Timestamp: 5, Value: 7.5}}))
	a.Handle("/lrz/cm3/n2/power", core.EncodeReadings([]core.Reading{{Timestamp: 6, Value: 8.5}}))
	srv := httptest.NewServer(NewAgentAPI(a).Routes())
	defer srv.Close()

	resp, body := get(t, srv, "/sensors")
	if resp.StatusCode != 200 || !strings.Contains(body, "/lrz/cm3/n1/power") {
		t.Errorf("/sensors = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv, "/cache/lrz/cm3/n1/power")
	if resp.StatusCode != 200 || !strings.Contains(body, "7.5") {
		t.Errorf("/cache = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv, "/hierarchy?path=/lrz/cm3")
	if resp.StatusCode != 200 || !strings.Contains(body, "n1") || !strings.Contains(body, "n2") {
		t.Errorf("/hierarchy = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv, "/stats")
	if resp.StatusCode != 200 || !strings.Contains(body, "Readings") {
		t.Errorf("/stats = %d %q", resp.StatusCode, body)
	}
}

func TestAPIListenAndClose(t *testing.T) {
	h := pusher.NewHost(nil, pusher.Options{})
	defer h.Close()
	api := NewPusherAPI(h)
	if err := api.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if api.Addr() == "" {
		t.Error("no addr after listen")
	}
	resp, err := http.Get("http://" + api.Addr() + "/plugins")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("live API: %v, %v", resp, err)
	}
	resp.Body.Close()
	if err := api.Close(); err != nil {
		t.Error(err)
	}

	a := collectagent.New(store.NewNode(0), nil, collectagent.Options{Quiet: true})
	agentAPI := NewAgentAPI(a)
	if err := agentAPI.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if agentAPI.Addr() == "" {
		t.Error("no agent addr")
	}
	resp, err = http.Get("http://" + agentAPI.Addr() + "/stats")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("live agent API: %v, %v", resp, err)
	}
	resp.Body.Close()
	if err := agentAPI.Close(); err != nil {
		t.Error(err)
	}
}

func TestAPIZeroValueAddrAndClose(t *testing.T) {
	// Before Listen, Addr is empty and Close is a no-op — the binaries
	// call both unconditionally on shutdown paths.
	h := pusher.NewHost(nil, pusher.Options{})
	defer h.Close()
	api := NewPusherAPI(h)
	if api.Addr() != "" {
		t.Error("unbound pusher API reports an addr")
	}
	if err := api.Close(); err != nil {
		t.Errorf("unbound pusher API Close: %v", err)
	}

	a := collectagent.New(store.NewNode(0), nil, collectagent.Options{Quiet: true})
	defer a.Close()
	agentAPI := NewAgentAPI(a)
	if agentAPI.Addr() != "" {
		t.Error("unbound agent API reports an addr")
	}
	if err := agentAPI.Close(); err != nil {
		t.Errorf("unbound agent API Close: %v", err)
	}
}
