package faults

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcdb/internal/fsutil"
)

func TestRuleScoping(t *testing.T) {
	in := New(1)
	boom := errors.New("boom")
	r := in.AddRule(&Rule{Ops: FSWrite, Match: "/data/node1", After: 2, Count: 2, Err: boom})

	// Wrong op class and wrong target never match.
	if err := in.apply(FSSync, "/data/node1/wal", nil); err != nil {
		t.Fatal(err)
	}
	if err := in.apply(FSWrite, "/data/node2/wal", nil); err != nil {
		t.Fatal(err)
	}
	if r.Hits() != 0 {
		t.Fatalf("non-matching ops counted as hits: %d", r.Hits())
	}
	// After skips the first 2 matches, Count caps firing at 2.
	var errs int
	for i := 0; i < 10; i++ {
		if err := in.apply(FSWrite, "/data/node1/wal-3.log", nil); err != nil {
			if !errors.Is(err, boom) {
				t.Fatal(err)
			}
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("After=2 Count=2 fired %d times over 10 ops, want 2", errs)
	}
	if r.Hits() != 10 || r.Fired() != 2 {
		t.Fatalf("hits %d fired %d, want 10/2", r.Hits(), r.Fired())
	}
	// Disable stops matching; Enable re-arms (Count already spent).
	r.Disable()
	if err := in.apply(FSWrite, "/data/node1/x", nil); err != nil {
		t.Fatal(err)
	}
	r.Enable()
	if err := in.apply(FSWrite, "/data/node1/x", nil); err != nil {
		t.Fatalf("spent Count must not fire again: %v", err)
	}
}

func TestProbSeededDeterminism(t *testing.T) {
	fire := func(seed int64) []bool {
		in := New(seed)
		in.AddRule(&Rule{Ops: Dial, Prob: 0.5, Err: ErrInjected})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.apply(Dial, "addr", nil) != nil
		}
		return out
	}
	a, b := fire(7), fire(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	some := false
	for i := range a {
		if a[i] != fire(8)[i] {
			some = true
			break
		}
	}
	if !some {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDeriveRandIndependentStreams(t *testing.T) {
	in := New(3)
	a1, a2 := in.DeriveRand("victim"), in.DeriveRand("victim")
	if a1.Int63() != a2.Int63() {
		t.Fatal("same label must derive the same stream")
	}
	if in.DeriveRand("victim").Int63() == in.DeriveRand("flap").Int63() {
		t.Fatal("labels must derive independent streams")
	}
	if in.Seed() != 3 {
		t.Fatalf("Seed() = %d", in.Seed())
	}
}

func TestClockSkew(t *testing.T) {
	in := New(1)
	in.SetSkew(2 * time.Hour)
	d := time.Until(in.Now())
	if d < 2*time.Hour-time.Minute || d > 2*time.Hour+time.Minute {
		t.Fatalf("skewed Now off by %v", d)
	}
	in.SetSkew(-time.Hour)
	if time.Until(in.Now()) > -time.Hour+time.Minute {
		t.Fatal("negative skew not applied")
	}
}

// echoServer accepts one conn and echoes bytes until EOF.
func echoServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					c.Write(buf[:n])
				}
			}(c)
		}
	}()
	return l.Addr().String()
}

func TestDialAndConnFaults(t *testing.T) {
	addr := echoServer(t)
	in := New(1)

	// Dial rule blocks connection attempts to the matched address.
	cut := in.AddRule(&Rule{Ops: Dial, Match: addr, Err: ErrInjected})
	if _, err := in.Dial(addr, time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned dial: %v", err)
	}
	cut.Disable()

	c, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello through the injector")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := c.Read(buf); err != nil || !bytes.Equal(buf, msg) {
		t.Fatalf("clean echo: %q, %v", buf, err)
	}

	// Corrupt flips exactly one byte of an arriving payload.
	corrupt := in.AddRule(&Rule{Ops: ConnRead, Match: addr, Corrupt: true})
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		if buf[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt rule changed %d bytes, want 1", diff)
	}
	corrupt.Disable()

	// An Err rule on reads severs the connection entirely.
	in.AddRule(&Rule{Ops: ConnRead, Match: addr, Err: ErrInjected})
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("severed read: %v", err)
	}
	if _, err := c.Read(buf); err == nil {
		t.Fatal("conn still readable after an injected sever")
	}
}

func TestConnWriteSever(t *testing.T) {
	addr := echoServer(t)
	in := New(1)
	c, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in.AddRule(&Rule{Ops: ConnWrite, Match: addr, Err: ErrInjected})
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("severed write: %v", err)
	}
}

func TestFSFaults(t *testing.T) {
	in := New(1)
	fs := in.FS(fsutil.OSFS{})
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")

	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("record")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	wfail := in.AddRule(&Rule{Ops: FSWrite, Match: dir, Err: ErrInjected})
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write: %v", err)
	}
	wfail.Disable()
	sfail := in.AddRule(&Rule{Ops: FSSync, Match: dir, Err: ErrInjected})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected sync: %v", err)
	}
	sfail.Disable()
	f.Close()

	// FSOpen covers Create, OpenFile, and CreateTemp (matched on dir).
	ofail := in.AddRule(&Rule{Ops: FSOpen, Match: dir, Err: ErrInjected})
	if _, err := fs.Create(filepath.Join(dir, "a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected create: %v", err)
	}
	if _, err := fs.OpenFile(path, os.O_WRONLY, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected open: %v", err)
	}
	if _, err := fs.CreateTemp(dir, "t*"); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected create-temp: %v", err)
	}
	ofail.Disable()

	// CreateTemp passes through (and wraps) when no rule matches.
	tf, err := fs.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Write([]byte("tmp")); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	os.Remove(tf.Name())

	// With every rule off the wrapped FS is transparent.
	g, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	g.Close()
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "record!" {
		t.Fatalf("file contents %q, err %v", b, err)
	}

	// Delay rules slow the op without failing it.
	in.AddRule(&Rule{Ops: FSWrite, Match: dir, Delay: 5 * time.Millisecond})
	h, err := fs.Create(filepath.Join(dir, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := h.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay rule did not slow the write")
	}
	h.Close()
}
