// Package faults is a deterministic, seed-driven fault-injection layer
// for the cluster's I/O seams. One Injector carries a seed and a set of
// rules; the seams it plugs into are the ones the production code
// already exposes:
//
//   - rpc dialing and connection traffic, via Dial / WrapConn — drop,
//     delay, stall, byte-corrupt, and asymmetric partitions (sever one
//     direction by matching only ConnWrite or only ConnRead);
//   - store disk writes, via FS wrapping fsutil.Disk — slow writes,
//     ENOSPC, torn fsync (write succeeds, sync fails);
//   - deadline clocks, via Now / SetSkew — clock skew between a
//     coordinator and its nodes.
//
// Determinism contract: every probabilistic draw comes from the
// injector's seeded generator, and scenario schedules should derive
// all their shape (timings, victims, toggles) from DeriveRand streams.
// Re-running with the same seed replays the same fault plan; goroutine
// interleaving still varies, so scenarios assert invariants (contracts
// hold, acked writes survive), not exact event orders.
package faults

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/fsutil"
)

// ErrInjected is the default error a firing rule returns. Connection
// wrappers translate it into a severed conn; everything else surfaces
// it as-is so tests can errors.Is for it.
var ErrInjected = errors.New("faults: injected fault")

// Op is the class of I/O operation a rule intercepts. Rules carry a
// bitmask, so one rule can cover e.g. Dial|ConnWrite (an asymmetric
// outbound partition: cannot reach the peer, but bytes already in
// flight from it still arrive).
type Op uint

const (
	// Dial is a new outbound connection attempt (target = address).
	Dial Op = 1 << iota
	// ConnRead is bytes arriving on a wrapped connection.
	ConnRead
	// ConnWrite is bytes leaving on a wrapped connection.
	ConnWrite
	// FSWrite is a write to a wrapped file (target = path).
	FSWrite
	// FSSync is an fsync of a wrapped file.
	FSSync
	// FSOpen is opening/creating a file through a wrapped FS.
	FSOpen
)

// Rule is one fault: which ops it matches and what it does to them.
// Fields are read-only after AddRule; toggling happens through
// Enable/Disable. A zero Prob fires on every matching op.
type Rule struct {
	// Ops is the bitmask of operation classes the rule intercepts.
	Ops Op
	// Match is a substring of the op's target — the remote address for
	// network ops, the file path for FS ops. Empty matches everything,
	// which is how a rule targets "this node's disk" (its directory) or
	// "that replica" (its port) in a multi-node in-process test.
	Match string
	// Prob fires the rule on a matching op with this probability
	// (seeded draw); 0 means always.
	Prob float64
	// After skips the first N matching ops — "the 3rd write fails".
	After int64
	// Count limits how often the rule fires; 0 is unlimited.
	Count int64
	// Delay is added latency before the op proceeds (or before Err is
	// returned): slow disks, slow links, stalls.
	Delay time.Duration
	// Corrupt flips one byte of the payload (network reads/writes
	// only); the op then proceeds, exercising checksum paths.
	Corrupt bool
	// Err aborts the op with this error; nil with Corrupt/Delay set
	// lets the op proceed after the effect. A rule with neither Err,
	// Corrupt, nor Delay counts hits only (a probe).
	Err error

	in       *Injector
	disabled atomic.Bool
	hits     atomic.Int64 // matching ops seen
	fired    atomic.Int64 // times the effect applied
}

// Enable re-arms the rule.
func (r *Rule) Enable() { r.disabled.Store(false) }

// Disable stops the rule from matching; counters are kept.
func (r *Rule) Disable() { r.disabled.Store(true) }

// Hits reports how many ops matched the rule (fired or not).
func (r *Rule) Hits() int64 { return r.hits.Load() }

// Fired reports how many times the rule's effect applied.
func (r *Rule) Fired() int64 { return r.fired.Load() }

// Injector is the root of one fault plan. Safe for concurrent use.
type Injector struct {
	seed  int64
	mu    sync.Mutex
	rng   *rand.Rand
	rmu   sync.RWMutex
	rules []*Rule
	skew  atomic.Int64 // ns added to Now
}

// New builds an injector whose probabilistic draws derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the injector's seed, for failure reports.
func (in *Injector) Seed() int64 { return in.seed }

// AddRule installs a rule and returns it for Enable/Disable toggling.
func (in *Injector) AddRule(r *Rule) *Rule {
	r.in = in
	in.rmu.Lock()
	in.rules = append(in.rules, r)
	in.rmu.Unlock()
	return r
}

// DeriveRand returns a generator seeded from the injector seed and a
// label, so independent parts of a scenario (victim choice, toggle
// timings, workload shape) draw from stable streams that do not
// perturb each other when one part adds a draw.
func (in *Injector) DeriveRand(label string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
}

// float64 draws from the shared seeded stream.
func (in *Injector) float64() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// intn draws from the shared seeded stream.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// apply runs every matching rule against one op. payload is the bytes
// in flight (nil when the op carries none); a Corrupt rule mutates it
// in place. The first rule returning an error aborts the op.
func (in *Injector) apply(op Op, target string, payload []byte) error {
	in.rmu.RLock()
	rules := in.rules
	in.rmu.RUnlock()
	for _, r := range rules {
		if r.Ops&op == 0 || r.disabled.Load() {
			continue
		}
		if r.Match != "" && !strings.Contains(target, r.Match) {
			continue
		}
		hit := r.hits.Add(1)
		if hit <= r.After {
			continue
		}
		if r.Prob > 0 && in.float64() >= r.Prob {
			continue
		}
		if r.Count > 0 {
			if f := r.fired.Add(1); f > r.Count {
				r.fired.Add(-1)
				continue
			}
		} else {
			r.fired.Add(1)
		}
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		if r.Corrupt && len(payload) > 0 {
			payload[in.intn(len(payload))] ^= 0xFF
		}
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// --- Clock skew ---

// SetSkew makes Now report wall time shifted by d — a skewed node.
func (in *Injector) SetSkew(d time.Duration) { in.skew.Store(int64(d)) }

// Now is a drop-in clock hook: wall time plus the configured skew.
func (in *Injector) Now() time.Time { return time.Now().Add(time.Duration(in.skew.Load())) }

// --- Network ---

// Dial matches the rpc client's dial hook: it applies Dial rules for
// the address, then wraps the resulting TCP connection so traffic
// rules apply for its lifetime.
func (in *Injector) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if err := in.apply(Dial, addr, nil); err != nil {
		return nil, err
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c), nil
}

// WrapConn interposes the injector on a connection's Read/Write. The
// rule target is the remote address.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, in: in, target: c.RemoteAddr().String()}
}

type faultConn struct {
	net.Conn
	in     *Injector
	target string
}

func (fc *faultConn) Read(p []byte) (int, error) {
	n, err := fc.Conn.Read(p)
	if err != nil {
		return n, err
	}
	// Applied after the read so Corrupt touches real bytes; an Err rule
	// severs the conn so the peerless bytes can't half-arrive.
	if ferr := fc.in.apply(ConnRead, fc.target, p[:n]); ferr != nil {
		fc.Conn.Close()
		return 0, ferr
	}
	return n, nil
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if err := fc.in.apply(ConnWrite, fc.target, nil); err != nil {
		fc.Conn.Close()
		return 0, err
	}
	return fc.Conn.Write(p)
}

// --- Filesystem ---

// FS wraps fsutil.Disk-compatible filesystems so FSOpen/FSWrite/FSSync
// rules apply to files whose path matches. Install with
// fsutil.Disk = injector.FS(fsutil.OSFS{}) and restore after the test.
func (in *Injector) FS(base fsutil.FS) fsutil.FS {
	return &faultFS{in: in, base: base}
}

type faultFS struct {
	in   *Injector
	base fsutil.FS
}

func (fs *faultFS) Create(name string) (fsutil.File, error) {
	if err := fs.in.apply(FSOpen, name, nil); err != nil {
		return nil, err
	}
	f, err := fs.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: fs.in, path: name}, nil
}

func (fs *faultFS) OpenFile(name string, flag int, perm os.FileMode) (fsutil.File, error) {
	if err := fs.in.apply(FSOpen, name, nil); err != nil {
		return nil, err
	}
	f, err := fs.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: fs.in, path: name}, nil
}

func (fs *faultFS) CreateTemp(dir, pattern string) (fsutil.File, error) {
	if err := fs.in.apply(FSOpen, dir, nil); err != nil {
		return nil, err
	}
	f, err := fs.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: fs.in, path: f.Name()}, nil
}

type faultFile struct {
	fsutil.File
	in   *Injector
	path string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.in.apply(FSWrite, f.path, nil); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.in.apply(FSSync, f.path, nil); err != nil {
		return err
	}
	return f.File.Sync()
}
