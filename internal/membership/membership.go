// Package membership is the gossip-based cluster membership layer: a
// SWIM-flavoured protocol in which every node maintains a full member
// table (ID, address, incarnation, heartbeat, status) and anti-entropy
// push-pull exchanges over the existing RPC framing (opGossip)
// disseminate it epidemically. Failure detection is heartbeat-based:
// a member whose heartbeat counter stops advancing is marked Suspect
// after SuspectAfter and Dead after DeadAfter — local, per-node
// judgements that the incarnation rules reconcile globally. A member
// wrongly suspected refutes by bumping its incarnation, which outranks
// every older rumour about it; a restarted member seeds its
// incarnation from the wall clock, so it always outranks its previous
// life without persisting anything.
//
// The member table is the input to placement: RingMembers (everyone
// not Dead/Left) is what coordinators feed to the consistent-hash
// ring, so any two nodes that have converged on the same table derive
// bit-identical placement with no coordination beyond the gossip
// itself.
package membership

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Status is a member's disseminated liveness state. The order is the
// merge precedence at equal incarnation: later states override earlier
// ones (Dead > Left > Suspect > Alive), so a rumour can only progress
// toward removal until the member itself refutes with a higher
// incarnation.
type Status uint8

const (
	StatusAlive Status = iota
	StatusSuspect
	StatusLeft
	StatusDead
)

func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusLeft:
		return "left"
	case StatusDead:
		return "dead"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Member is one row of the gossiped member table.
type Member struct {
	// ID is the stable identity placement keys on; by convention the
	// node's advertised address.
	ID string
	// Addr is where the member's RPC endpoint listens.
	Addr string
	// Incarnation orders rumours about this member across its
	// lifetimes: higher wins outright. Only the member itself bumps it
	// (at start, and to refute a false suspicion).
	Incarnation uint64
	// Heartbeat is bumped by the member every gossip round; observing
	// it advance is the liveness evidence failure detection feeds on.
	Heartbeat uint64
	// Status is the rumoured liveness state.
	Status Status
}

// supersedes reports whether record a beats record b for the same
// member under the merge rules: higher incarnation wins outright;
// within one incarnation a more severe status wins; within one status
// a higher heartbeat is newer.
func supersedes(a, b Member) bool {
	if a.Incarnation != b.Incarnation {
		return a.Incarnation > b.Incarnation
	}
	if a.Status != b.Status {
		return a.Status > b.Status
	}
	return a.Heartbeat > b.Heartbeat
}

// encodeState serialises a member table for an opGossip body:
// uint16 count, then per member length-prefixed ID and Addr plus the
// fixed fields, everything big endian.
func encodeState(ms []Member) []byte {
	size := 2
	for _, m := range ms {
		size += 2 + len(m.ID) + 2 + len(m.Addr) + 8 + 8 + 1
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint16(out, uint16(len(ms)))
	for _, m := range ms {
		out = binary.BigEndian.AppendUint16(out, uint16(len(m.ID)))
		out = append(out, m.ID...)
		out = binary.BigEndian.AppendUint16(out, uint16(len(m.Addr)))
		out = append(out, m.Addr...)
		out = binary.BigEndian.AppendUint64(out, m.Incarnation)
		out = binary.BigEndian.AppendUint64(out, m.Heartbeat)
		out = append(out, byte(m.Status))
	}
	return out
}

// decodeState parses an opGossip body.
func decodeState(b []byte) ([]Member, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("membership: truncated state (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	ms := make([]Member, 0, n)
	str := func() (string, error) {
		if len(b) < 2 {
			return "", fmt.Errorf("membership: truncated state")
		}
		l := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < l {
			return "", fmt.Errorf("membership: truncated state")
		}
		s := string(b[:l])
		b = b[l:]
		return s, nil
	}
	for i := 0; i < n; i++ {
		var m Member
		var err error
		if m.ID, err = str(); err != nil {
			return nil, err
		}
		if m.Addr, err = str(); err != nil {
			return nil, err
		}
		if len(b) < 17 {
			return nil, fmt.Errorf("membership: truncated state")
		}
		m.Incarnation = binary.BigEndian.Uint64(b)
		m.Heartbeat = binary.BigEndian.Uint64(b[8:])
		m.Status = Status(b[16])
		if m.Status > StatusDead {
			return nil, fmt.Errorf("membership: unknown status %d", b[16])
		}
		b = b[17:]
		if m.ID == "" {
			return nil, fmt.Errorf("membership: member with empty ID")
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// ringKey canonicalises a ring-member set for change detection.
func ringKey(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	key := ""
	for _, id := range sorted {
		key += id + "\x00"
	}
	return key
}
