package membership

import (
	"testing"
	"time"

	"dcdb/internal/rpc"
	"dcdb/internal/store"
)

// gossipNode is one storage node process in miniature: a store.Node
// served over RPC with a membership agent wired into the server's
// gossip handler — the exact shape cmd/dcdbnode assembles.
type gossipNode struct {
	node  *store.Node
	srv   *rpc.Server
	agent *Agent
}

func startGossipNode(t *testing.T, seeds ...string) *gossipNode {
	t.Helper()
	n := store.NewNode(0)
	srv := rpc.NewServer(n, true)
	g := &gossipNode{node: n, srv: srv}
	srv.SetGossip(func(peerState []byte) ([]byte, error) {
		if g.agent == nil {
			return nil, rpc.ErrGossipUnavailable
		}
		return g.agent.Handle(peerState)
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		ID:       srv.Addr(),
		Interval: 10 * time.Millisecond,
		Seeds:    seeds,
		Transport: NewRPCTransport(RPCTransportOptions{
			DialTimeout: 500 * time.Millisecond,
			CallTimeout: time.Second,
		}),
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.agent = a
	if len(seeds) > 0 {
		_ = a.Join(seeds...)
	}
	a.Start()
	t.Cleanup(func() {
		a.Stop()
		srv.Close()
		n.Close()
	})
	return g
}

// TestGossipOverRPC assembles three nodes exchanging over the real
// wire protocol (opGossip frames on the data port) and checks that
// they converge, that DiscoverRing sees the full ring through any one
// seed without joining, and that a watcher over the RPC transport
// tracks a graceful leave.
func TestGossipOverRPC(t *testing.T) {
	a := startGossipNode(t)
	b := startGossipNode(t, a.srv.Addr())
	c := startGossipNode(t, a.srv.Addr())

	agents := []*Agent{a.agent, b.agent, c.agent}
	waitFor(t, "three RPC nodes to converge", func() bool {
		return sameRing(agents, 3)
	})

	// Discovery through each seed returns the same three live members.
	for _, g := range []*gossipNode{a, b, c} {
		ms, err := DiscoverRing(g.srv.Addr())
		if err != nil {
			t.Fatalf("DiscoverRing via %s: %v", g.srv.Addr(), err)
		}
		if len(ms) != 3 {
			t.Fatalf("DiscoverRing via %s returned %d members, want 3", g.srv.Addr(), len(ms))
		}
	}
	// The probing observer never joined the ring.
	if len(ringIDs(a.agent)) != 3 {
		t.Fatalf("discovery probe changed the ring: %v", ringIDs(a.agent))
	}

	// A watcher over the default RPC transport follows the ring.
	changes := make(chan int, 16)
	w, err := NewWatcher(WatcherConfig{
		Seeds:    []string{a.srv.Addr(), b.srv.Addr()},
		Interval: 20 * time.Millisecond,
		OnChange: func(ms []Member) { changes <- len(ms) },
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	select {
	case n := <-changes:
		if n != 3 {
			t.Fatalf("watcher's first observation had %d members, want 3", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never observed the ring")
	}

	// Graceful leave: the tombstone spreads over RPC and the watcher
	// reports the shrunken ring.
	c.agent.Leave()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case n := <-changes:
			if n == 2 {
				return
			}
		case <-deadline:
			t.Fatal("watcher never observed the leave")
		}
	}
}

// TestStatusString pins the human-readable status names used in logs.
func TestStatusString(t *testing.T) {
	for want, st := range map[string]Status{
		"alive":   StatusAlive,
		"suspect": StatusSuspect,
		"left":    StatusLeft,
		"dead":    StatusDead,
	} {
		if got := st.String(); got != want {
			t.Fatalf("Status(%d).String() = %q, want %q", st, got, want)
		}
	}
	if got := Status(9).String(); got != "status(9)" {
		t.Fatalf("unknown status string: %q", got)
	}
}

// TestDiscoverRingNoLiveMembers: a seed whose table holds only
// tombstones must yield an explicit error, not an empty cluster.
func TestDiscoverRingNoLiveMembers(t *testing.T) {
	if _, err := DiscoverRing("127.0.0.1:1"); err == nil {
		t.Fatal("DiscoverRing against nothing succeeded")
	}
}

// TestNewWatcherValidation pins the watcher's required configuration.
func TestNewWatcherValidation(t *testing.T) {
	if _, err := NewWatcher(WatcherConfig{OnChange: func([]Member) {}}); err == nil {
		t.Fatal("watcher without seeds accepted")
	}
	if _, err := NewWatcher(WatcherConfig{Seeds: []string{"x"}}); err == nil {
		t.Fatal("watcher without OnChange accepted")
	}
}

// TestDiscoverSeedFailover: discovery walks the seed list until one
// answers — a dead first seed must not fail the probe.
func TestDiscoverSeedFailover(t *testing.T) {
	a := startGossipNode(t)
	b := startGossipNode(t, a.srv.Addr())
	waitFor(t, "two RPC nodes to converge", func() bool {
		return sameRing([]*Agent{a.agent, b.agent}, 2)
	})
	ms, err := DiscoverRing("127.0.0.1:1", a.srv.Addr())
	if err != nil {
		t.Fatalf("discovery with a dead first seed: %v", err)
	}
	if len(ms) != 2 {
		t.Fatalf("discovered %d members, want 2", len(ms))
	}
}
