package membership

import (
	"sync"
	"time"

	"dcdb/internal/rpc"
)

// RPCTransportOptions tune the default gossip transport.
type RPCTransportOptions struct {
	// DialTimeout and CallTimeout bound one exchange; gossip rounds are
	// frequent and small, so both default far below the data-path
	// client's (1s each) — a slow peer should fail the round, not stall
	// it.
	DialTimeout time.Duration
	CallTimeout time.Duration
	// Client overrides the remaining rpc.ClientOptions (fault-injection
	// dial seams, clocks). Timeout fields above win when set.
	Client rpc.ClientOptions
}

// rpcTransport exchanges gossip over the cluster's own RPC framing
// (opGossip), one cached pipelined client per peer address — gossip
// shares the node's single listening port and wire format with the
// data path.
type rpcTransport struct {
	o       RPCTransportOptions
	mu      sync.Mutex
	clients map[string]*rpc.Client
	closed  bool
}

// NewRPCTransport builds the default transport.
func NewRPCTransport(o RPCTransportOptions) Transport {
	if o.DialTimeout <= 0 {
		o.DialTimeout = time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = time.Second
	}
	return &rpcTransport{o: o, clients: make(map[string]*rpc.Client)}
}

func (t *rpcTransport) client(addr string) *rpc.Client {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.clients[addr]; ok {
		return c
	}
	co := t.o.Client
	co.PoolSize = 1 // one connection carries a node's whole gossip load
	co.StreamPoolSize = 1
	co.DialTimeout = t.o.DialTimeout
	co.CallTimeout = t.o.CallTimeout
	c := rpc.NewClient(addr, co)
	if !t.closed {
		t.clients[addr] = c
	}
	return c
}

// Exchange implements Transport.
func (t *rpcTransport) Exchange(addr string, state []byte) ([]byte, error) {
	return t.client(addr).Gossip(state)
}

// Close implements Transport.
func (t *rpcTransport) Close() error {
	t.mu.Lock()
	clients := t.clients
	t.clients = make(map[string]*rpc.Client)
	t.closed = true
	t.mu.Unlock()
	var firstErr error
	for _, c := range clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
