package membership

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dcdb/internal/backoff"
)

// Config tunes one node's membership agent.
type Config struct {
	// ID is this node's stable identity; by convention its advertised
	// address. Required.
	ID string
	// Addr is the RPC endpoint peers exchange gossip with. Defaults to
	// ID.
	Addr string
	// Interval is the gossip round cadence: each round the agent bumps
	// its heartbeat and push-pull exchanges state with Fanout peers.
	// Default 250ms.
	Interval time.Duration
	// SuspectAfter marks a member Suspect when its heartbeat has not
	// advanced for this long. Suspect members still serve placement
	// (reads/writes keep trying them) — suspicion is a rumour, not a
	// verdict. Default 8x Interval.
	SuspectAfter time.Duration
	// DeadAfter marks a member Dead, removing it from placement, when
	// its heartbeat has not advanced for this long. Must exceed
	// SuspectAfter. Default 4x SuspectAfter.
	DeadAfter time.Duration
	// Fanout is how many peers each round exchanges with. Default 2.
	Fanout int
	// Transport carries one exchange to a peer address. Defaults to the
	// RPC transport (opGossip). Tests inject in-memory transports.
	Transport Transport
	// Seeds are peer addresses retried by the gossip loop whenever the
	// agent knows no reachable peer — a node started before its seed
	// (or isolated long enough to forget everyone) still joins once the
	// seed appears. Join(seeds...) remains the explicit fast path.
	Seeds []string
	// OnChange, when set, fires after the ring-member set (everyone not
	// Dead/Left) changes, with the new table snapshot. Called from the
	// gossip goroutine, never under the agent's lock.
	OnChange func([]Member)
	// Seed makes peer selection deterministic for seeded chaos runs;
	// 0 derives from the wall clock.
	Seed int64
	// Logf logs membership transitions. Default log.Printf.
	Logf func(format string, args ...any)
}

// Transport carries one push-pull exchange: deliver our state to the
// peer at addr, return the peer's state.
type Transport interface {
	Exchange(addr string, state []byte) ([]byte, error)
	Close() error
}

// peerView is the agent's local bookkeeping for one remote member.
type peerView struct {
	m        Member
	lastSeen time.Time // when the heartbeat last advanced (local clock)
	fails    int       // consecutive exchange failures
	retryAt  time.Time // backoff gate for the next exchange attempt
}

// Agent runs the gossip protocol for one node.
type Agent struct {
	cfg Config
	pol backoff.Policy // paces exchanges to unresponsive peers

	mu       sync.Mutex
	self     Member
	peers    map[string]*peerView // by ID, self excluded
	lastRing string               // ringKey of the last OnChange notification
	rng      *rand.Rand

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped bool
}

// New builds an agent. The node's first incarnation is seeded from the
// wall clock, so a restarted node outranks every rumour about its
// previous life without persisting anything.
func New(cfg Config) (*Agent, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("membership: config needs an ID")
	}
	if cfg.Addr == "" {
		cfg.Addr = cfg.ID
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 8 * cfg.Interval
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 4 * cfg.SuspectAfter
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.Transport == nil {
		cfg.Transport = NewRPCTransport(RPCTransportOptions{})
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	a := &Agent{
		cfg: cfg,
		pol: backoff.Policy{Initial: cfg.Interval, Max: cfg.DeadAfter, Multiplier: 2, Jitter: 0.25},
		self: Member{
			ID: cfg.ID, Addr: cfg.Addr,
			Incarnation: uint64(time.Now().UnixNano()),
			Status:      StatusAlive,
		},
		peers: make(map[string]*peerView),
		rng:   rand.New(rand.NewSource(seed)),
		stop:  make(chan struct{}),
	}
	return a, nil
}

// Self returns this node's current self-record.
func (a *Agent) Self() Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.self
}

// Members snapshots the full member table (self included), sorted by
// ID. Dead and Left members appear as tombstones.
func (a *Agent) Members() []Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snapshotLocked()
}

// RingMembers snapshots the placement-eligible members: everyone not
// Dead or Left, sorted by ID. This is the set coordinators feed to the
// consistent-hash ring.
func (a *Agent) RingMembers() []Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ringMembersLocked()
}

func (a *Agent) snapshotLocked() []Member {
	out := make([]Member, 0, len(a.peers)+1)
	out = append(out, a.self)
	for _, pv := range a.peers {
		out = append(out, pv.m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (a *Agent) ringMembersLocked() []Member {
	out := make([]Member, 0, len(a.peers)+1)
	if a.self.Status < StatusLeft {
		out = append(out, a.self)
	}
	for _, pv := range a.peers {
		if pv.m.Status < StatusLeft {
			out = append(out, pv.m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Handle is the opGossip server callback: merge the peer's table into
// ours, return ours (the pull half of push-pull). Safe to call before
// Start — a node answers gossip as soon as its RPC server is up.
func (a *Agent) Handle(peerState []byte) ([]byte, error) {
	ms, err := decodeState(peerState)
	if err != nil {
		return nil, err
	}
	a.mergeTable(ms)
	a.mu.Lock()
	resp := encodeState(a.snapshotLocked())
	a.mu.Unlock()
	a.notify()
	return resp, nil
}

// mergeTable folds a received table into the local one under the
// supersedes rules, refuting rumours about self.
func (a *Agent) mergeTable(ms []Member) {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range ms {
		if m.ID == a.self.ID {
			// A rumour about us that outranks our own record and is not
			// Alive would evict us from placement: refute by jumping to a
			// higher incarnation — the new record outranks the rumour
			// everywhere it has already spread.
			if m.Status != StatusAlive && !supersedes(a.self, m) && a.self.Status < StatusLeft {
				a.self.Incarnation = m.Incarnation + 1
				a.self.Status = StatusAlive
				a.cfg.Logf("membership: refuting %s rumour about %s (incarnation %d)", m.Status, a.self.ID, a.self.Incarnation)
			}
			continue
		}
		pv, ok := a.peers[m.ID]
		if !ok {
			a.peers[m.ID] = &peerView{m: m, lastSeen: now}
			if m.Status < StatusLeft {
				a.cfg.Logf("membership: %s: learned of %s (%s)", a.self.ID, m.ID, m.Status)
			}
			continue
		}
		if !supersedes(m, pv.m) {
			continue
		}
		// Heartbeat or incarnation progress is liveness evidence; a pure
		// status escalation (another node's suspicion) is not.
		if m.Incarnation > pv.m.Incarnation || m.Heartbeat > pv.m.Heartbeat {
			pv.lastSeen = now
		}
		if m.Status != pv.m.Status {
			a.cfg.Logf("membership: %s: %s is now %s", a.self.ID, m.ID, m.Status)
		}
		pv.m = m
	}
}

// notify fires OnChange when the placement-eligible set changed since
// the last notification.
func (a *Agent) notify() {
	if a.cfg.OnChange == nil {
		return
	}
	a.mu.Lock()
	rm := a.ringMembersLocked()
	ids := make([]string, len(rm))
	for i, m := range rm {
		ids[i] = m.ID
	}
	key := ringKey(ids)
	changed := key != a.lastRing
	a.lastRing = key
	a.mu.Unlock()
	if changed {
		a.cfg.OnChange(rm)
	}
}

// Join seeds the member table by exchanging directly with any of the
// given peer addresses, first success wins. Call before or after
// Start.
func (a *Agent) Join(seeds ...string) error {
	var lastErr error
	for _, addr := range seeds {
		if addr == "" || addr == a.cfg.Addr {
			continue
		}
		a.mu.Lock()
		a.self.Heartbeat++
		state := encodeState(a.snapshotLocked())
		a.mu.Unlock()
		resp, err := a.cfg.Transport.Exchange(addr, state)
		if err != nil {
			lastErr = err
			continue
		}
		ms, err := decodeState(resp)
		if err != nil {
			lastErr = err
			continue
		}
		a.mergeTable(ms)
		a.notify()
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("membership: no usable seed address")
	}
	return fmt.Errorf("membership: join failed: %w", lastErr)
}

// Start launches the gossip loop. Idempotent.
func (a *Agent) Start() {
	a.mu.Lock()
	if a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	a.wg.Add(1)
	go a.loop()
}

// Stop halts the loop and closes the transport. The agent's table
// remains readable.
func (a *Agent) Stop() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	started := a.started
	a.mu.Unlock()
	close(a.stop)
	if started {
		a.wg.Wait()
	}
	_ = a.cfg.Transport.Close()
}

// Leave disseminates a graceful departure (best effort, to Fanout
// peers) and stops the agent. Peers mark us Left at our final
// incarnation — no suspicion timeout, no dead rumour to refute later.
func (a *Agent) Leave() {
	a.mu.Lock()
	if a.self.Status < StatusLeft {
		a.self.Status = StatusLeft
		a.self.Heartbeat++
	}
	state := encodeState(a.snapshotLocked())
	targets := a.pickPeersLocked(a.cfg.Fanout)
	a.mu.Unlock()
	for _, addr := range targets {
		_, _ = a.cfg.Transport.Exchange(addr, state)
	}
	a.Stop()
}

// loop is the gossip round driver.
func (a *Agent) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.round()
		}
	}
}

// round bumps our heartbeat, runs failure detection, and exchanges
// with Fanout peers.
func (a *Agent) round() {
	now := time.Now()
	a.mu.Lock()
	a.self.Heartbeat++
	for _, pv := range a.peers {
		if pv.m.Status >= StatusLeft {
			continue
		}
		idle := now.Sub(pv.lastSeen)
		switch {
		case idle >= a.cfg.DeadAfter:
			if pv.m.Status != StatusDead {
				pv.m.Status = StatusDead
				a.cfg.Logf("membership: %s: %s is now dead (no heartbeat for %v)", a.self.ID, pv.m.ID, idle.Round(time.Millisecond))
			}
		case idle >= a.cfg.SuspectAfter:
			if pv.m.Status == StatusAlive {
				pv.m.Status = StatusSuspect
				a.cfg.Logf("membership: %s: %s is now suspect", a.self.ID, pv.m.ID)
			}
		}
	}
	state := encodeState(a.snapshotLocked())
	targets := a.pickPeersLocked(a.cfg.Fanout)
	a.mu.Unlock()

	if len(targets) == 0 && len(a.cfg.Seeds) > 0 {
		// Alone, or every known peer is backed off: fall back to the
		// configured seeds so a node that started before its seed (or
		// was partitioned away long enough) still finds the cluster.
		_ = a.Join(a.cfg.Seeds...)
		return
	}

	for _, addr := range targets {
		resp, err := a.cfg.Transport.Exchange(addr, state)
		if err != nil {
			a.noteExchangeFailure(addr)
			continue
		}
		ms, derr := decodeState(resp)
		if derr != nil {
			a.cfg.Logf("membership: %s: bad gossip response from %s: %v", a.self.ID, addr, derr)
			continue
		}
		a.noteExchangeSuccess(addr)
		a.mergeTable(ms)
	}
	a.notify()
}

// pickPeersLocked selects up to n exchange targets: a random subset of
// the non-Left peers whose backoff gate is open. Dead peers stay in
// rotation (at backoff cadence) so a recovered or restarted node is
// re-learned from either side.
func (a *Agent) pickPeersLocked(n int) []string {
	now := time.Now()
	cand := make([]string, 0, len(a.peers))
	for _, pv := range a.peers {
		if pv.m.Status == StatusLeft || now.Before(pv.retryAt) {
			continue
		}
		cand = append(cand, pv.m.Addr)
	}
	sort.Strings(cand) // deterministic base order for the seeded shuffle
	a.rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if len(cand) > n {
		cand = cand[:n]
	}
	return cand
}

func (a *Agent) noteExchangeFailure(addr string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, pv := range a.peers {
		if pv.m.Addr == addr {
			pv.fails++
			pv.retryAt = time.Now().Add(a.pol.Delay(pv.fails))
			return
		}
	}
}

func (a *Agent) noteExchangeSuccess(addr string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, pv := range a.peers {
		if pv.m.Addr == addr {
			pv.fails = 0
			pv.retryAt = time.Time{}
			return
		}
	}
}
