package membership

import (
	"fmt"
	"log"
	"sync"
	"time"
)

// Discovery: how coordinators that are not themselves ring members —
// collect agents, query tools — learn the cluster from any one seed
// node. A discovery probe is a push-pull exchange carrying an empty
// table: the seed merges nothing and answers with everything it knows,
// so a single reachable node (any node — gossip makes every table
// converge) replaces a hand-maintained -nodes list.

// Discover fetches the member table from the first seed that answers,
// without joining the ring. The caller owns the transport.
func Discover(t Transport, seeds ...string) ([]Member, error) {
	probe := encodeState(nil)
	var lastErr error
	for _, s := range seeds {
		if s == "" {
			continue
		}
		resp, err := t.Exchange(s, probe)
		if err != nil {
			lastErr = err
			continue
		}
		ms, err := decodeState(resp)
		if err != nil {
			lastErr = err
			continue
		}
		return ms, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no usable seed address")
	}
	return nil, fmt.Errorf("membership: discovery failed: %w", lastErr)
}

// DiscoverRing is Discover over a one-shot RPC transport, filtered to
// the placement-eligible members (not Dead, not Left).
func DiscoverRing(seeds ...string) ([]Member, error) {
	t := NewRPCTransport(RPCTransportOptions{})
	defer t.Close()
	ms, err := Discover(t, seeds...)
	if err != nil {
		return nil, err
	}
	ring := ms[:0]
	for _, m := range ms {
		if m.Status < StatusLeft {
			ring = append(ring, m)
		}
	}
	if len(ring) == 0 {
		return nil, fmt.Errorf("membership: seed knows no live members")
	}
	return ring, nil
}

// WatcherConfig tunes a membership watcher.
type WatcherConfig struct {
	// Seeds are the addresses polled for the member table; the first
	// one that answers serves each poll.
	Seeds []string
	// Interval is the poll cadence. Default 1s.
	Interval time.Duration
	// Transport carries the polls. Default: the RPC transport, closed
	// by Stop.
	Transport Transport
	// OnChange fires with the new placement-eligible member set
	// whenever it differs from the last observation. Required.
	OnChange func([]Member)
	// Logf logs poll failures. Default log.Printf.
	Logf func(format string, args ...any)
}

// Watcher polls seed nodes for the gossip member table and surfaces
// ring changes to a coordinator that is not itself a gossip
// participant — the glue between the membership layer and a
// store.Cluster's SetMembers.
type Watcher struct {
	cfg     WatcherConfig
	stop    chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex
	lastKey string
	started bool
	stopped bool
}

// NewWatcher builds a watcher; Start begins polling.
func NewWatcher(cfg WatcherConfig) (*Watcher, error) {
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("membership: watcher needs seed addresses")
	}
	if cfg.OnChange == nil {
		return nil, fmt.Errorf("membership: watcher needs an OnChange callback")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Transport == nil {
		cfg.Transport = NewRPCTransport(RPCTransportOptions{})
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Watcher{cfg: cfg, stop: make(chan struct{})}, nil
}

// Start launches the poll loop, with one immediate poll. Idempotent.
func (w *Watcher) Start() {
	w.mu.Lock()
	if w.started || w.stopped {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.Poll()
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Poll()
			}
		}
	}()
}

// Poll makes one discovery pass, firing OnChange if the ring-member
// set differs from the last observation. Safe to call directly (tests,
// or a coordinator that wants an immediate refresh).
func (w *Watcher) Poll() {
	ms, err := Discover(w.cfg.Transport, w.cfg.Seeds...)
	if err != nil {
		w.cfg.Logf("membership: watcher poll: %v", err)
		return
	}
	ring := make([]Member, 0, len(ms))
	ids := make([]string, 0, len(ms))
	for _, m := range ms {
		if m.Status < StatusLeft {
			ring = append(ring, m)
			ids = append(ids, m.ID)
		}
	}
	if len(ring) == 0 {
		w.cfg.Logf("membership: watcher poll: seed knows no live members; keeping current set")
		return
	}
	key := ringKey(ids)
	w.mu.Lock()
	changed := key != w.lastKey
	w.lastKey = key
	w.mu.Unlock()
	if changed {
		w.cfg.OnChange(ring)
	}
}

// Stop halts polling and closes the transport.
func (w *Watcher) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	started := w.started
	w.mu.Unlock()
	close(w.stop)
	if started {
		w.wg.Wait()
	}
	_ = w.cfg.Transport.Close()
}
