package membership

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// memNet is an in-memory gossip fabric: exchanges call the target
// agent's Handle directly, and addresses can be partitioned off to
// simulate network failure without sockets.
type memNet struct {
	mu      sync.Mutex
	agents  map[string]*Agent
	blocked map[string]bool
}

func newMemNet() *memNet {
	return &memNet{agents: make(map[string]*Agent), blocked: make(map[string]bool)}
}

func (n *memNet) add(a *Agent)                   { n.mu.Lock(); n.agents[a.cfg.Addr] = a; n.mu.Unlock() }
func (n *memNet) setBlocked(addr string, b bool) { n.mu.Lock(); n.blocked[addr] = b; n.mu.Unlock() }

type memTransport struct {
	net  *memNet
	from string
}

func (t *memTransport) Exchange(addr string, state []byte) ([]byte, error) {
	t.net.mu.Lock()
	a := t.net.agents[addr]
	cut := t.net.blocked[addr] || t.net.blocked[t.from]
	t.net.mu.Unlock()
	if a == nil || cut {
		return nil, fmt.Errorf("memnet: %s unreachable from %s", addr, t.from)
	}
	return a.Handle(state)
}

func (t *memTransport) Close() error { return nil }

// newAgent builds a fast test agent on the fabric.
func newAgent(t *testing.T, net *memNet, id string, seed int64) *Agent {
	t.Helper()
	a, err := New(Config{
		ID:           id,
		Interval:     5 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    120 * time.Millisecond,
		Fanout:       2,
		Transport:    &memTransport{net: net, from: id},
		Seed:         seed,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.add(a)
	return a
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func ringIDs(a *Agent) []string {
	rm := a.RingMembers()
	ids := make([]string, len(rm))
	for i, m := range rm {
		ids[i] = m.ID
	}
	return ids
}

func sameRing(agents []*Agent, want int) bool {
	var key string
	for i, a := range agents {
		ids := ringIDs(a)
		if len(ids) != want {
			return false
		}
		k := ringKey(ids)
		if i == 0 {
			key = k
		} else if k != key {
			return false
		}
	}
	return true
}

func TestStateCodecRoundTrip(t *testing.T) {
	in := []Member{
		{ID: "a", Addr: "127.0.0.1:1", Incarnation: 42, Heartbeat: 7, Status: StatusAlive},
		{ID: "b", Addr: "127.0.0.1:2", Incarnation: 1, Heartbeat: 0, Status: StatusDead},
		{ID: "c", Addr: "", Incarnation: 9, Heartbeat: 3, Status: StatusLeft},
	}
	out, err := decodeState(encodeState(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d members, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("member %d: %+v != %+v", i, out[i], in[i])
		}
	}
	// Truncations must error, not panic.
	enc := encodeState(in)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeState(enc[:cut]); err == nil && cut > 1 {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestSupersedesRules(t *testing.T) {
	base := Member{ID: "x", Incarnation: 5, Heartbeat: 10, Status: StatusAlive}
	cases := []struct {
		name string
		a, b Member
		want bool
	}{
		{"higher incarnation wins", Member{Incarnation: 6, Status: StatusAlive}, Member{Incarnation: 5, Heartbeat: 99, Status: StatusDead}, true},
		{"dead beats alive at equal incarnation", Member{Incarnation: 5, Status: StatusDead}, base, true},
		{"suspect beats alive", Member{Incarnation: 5, Heartbeat: 1, Status: StatusSuspect}, base, true},
		{"alive does not beat suspect", base, Member{Incarnation: 5, Heartbeat: 1, Status: StatusSuspect}, false},
		{"dead beats left", Member{Incarnation: 5, Status: StatusDead}, Member{Incarnation: 5, Status: StatusLeft}, true},
		{"newer heartbeat wins within status", Member{Incarnation: 5, Heartbeat: 11, Status: StatusAlive}, base, true},
		{"equal record does not supersede", base, base, false},
	}
	for _, tc := range cases {
		if got := supersedes(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: supersedes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestThreeNodesConverge(t *testing.T) {
	net := newMemNet()
	agents := []*Agent{
		newAgent(t, net, "a", 1),
		newAgent(t, net, "b", 2),
		newAgent(t, net, "c", 3),
	}
	for _, a := range agents {
		defer a.Stop()
	}
	// A chain of joins: b knows a, c knows b. Gossip must flood the
	// full set everywhere.
	if err := agents[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := agents[2].Join("b"); err != nil {
		t.Fatal(err)
	}
	for _, a := range agents {
		a.Start()
	}
	waitFor(t, "full convergence", func() bool { return sameRing(agents, 3) })
}

func TestFailureDetectionMarksDead(t *testing.T) {
	net := newMemNet()
	agents := []*Agent{
		newAgent(t, net, "a", 1),
		newAgent(t, net, "b", 2),
		newAgent(t, net, "c", 3),
	}
	for _, a := range agents {
		defer a.Stop()
	}
	if err := agents[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := agents[2].Join("a"); err != nil {
		t.Fatal(err)
	}
	for _, a := range agents {
		a.Start()
	}
	waitFor(t, "convergence", func() bool { return sameRing(agents, 3) })

	// Cut c off: its heartbeat stops reaching a and b, so they must
	// walk it through suspect to dead and drop it from placement.
	net.setBlocked("c", true)
	agents[2].Stop()
	waitFor(t, "c dead on a and b", func() bool {
		return sameRing(agents[:2], 2)
	})
	for _, a := range agents[:2] {
		for _, m := range a.Members() {
			if m.ID == "c" && m.Status != StatusDead {
				t.Fatalf("c on %s: %s, want dead tombstone", a.cfg.ID, m.Status)
			}
		}
	}
}

func TestSuspectRefutation(t *testing.T) {
	net := newMemNet()
	a := newAgent(t, net, "a", 1)
	b := newAgent(t, net, "b", 2)
	defer a.Stop()
	defer b.Stop()
	if err := b.Join("a"); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	waitFor(t, "convergence", func() bool { return sameRing([]*Agent{a, b}, 2) })

	// Inject a false dead rumour about a (at a's own incarnation) into
	// b. a must refute with a higher incarnation, and both tables must
	// settle back on alive.
	self := a.Self()
	rumour := encodeState([]Member{{
		ID: self.ID, Addr: self.Addr,
		Incarnation: self.Incarnation, Heartbeat: self.Heartbeat + 100,
		Status: StatusDead,
	}})
	if _, err := b.Handle(rumour); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "refutation to spread", func() bool {
		for _, m := range b.Members() {
			if m.ID == "a" {
				return m.Status == StatusAlive && m.Incarnation > self.Incarnation
			}
		}
		return false
	})
	if got := a.Self(); got.Incarnation <= self.Incarnation || got.Status != StatusAlive {
		t.Fatalf("a did not refute: %+v", got)
	}
}

func TestGracefulLeave(t *testing.T) {
	net := newMemNet()
	agents := []*Agent{
		newAgent(t, net, "a", 1),
		newAgent(t, net, "b", 2),
		newAgent(t, net, "c", 3),
	}
	if err := agents[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := agents[2].Join("a"); err != nil {
		t.Fatal(err)
	}
	for _, a := range agents {
		a.Start()
	}
	defer agents[0].Stop()
	defer agents[1].Stop()
	waitFor(t, "convergence", func() bool { return sameRing(agents, 3) })

	agents[2].Leave()
	// Leave disseminates immediately: the survivors drop c from
	// placement well before any failure-detection timeout, as a Left
	// tombstone rather than a dead rumour.
	waitFor(t, "c left on a and b", func() bool { return sameRing(agents[:2], 2) })
	sawLeft := false
	for _, m := range agents[0].Members() {
		if m.ID == "c" && m.Status == StatusLeft {
			sawLeft = true
		}
	}
	if !sawLeft {
		t.Fatal("no Left tombstone for c")
	}
}

func TestRestartedNodeOutranksItsPastLife(t *testing.T) {
	net := newMemNet()
	a := newAgent(t, net, "a", 1)
	b := newAgent(t, net, "b", 2)
	defer a.Stop()
	defer b.Stop()
	if err := b.Join("a"); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	waitFor(t, "convergence", func() bool { return sameRing([]*Agent{a, b}, 2) })

	// b dies without ceremony; a detects it.
	net.setBlocked("b", true)
	b.Stop()
	waitFor(t, "b dead on a", func() bool { return len(ringIDs(a)) == 1 })

	// b restarts under the same identity: its fresh wall-clock
	// incarnation must outrank the dead tombstone everywhere.
	net.setBlocked("b", false)
	b2 := newAgent(t, net, "b", 20)
	defer b2.Stop()
	if err := b2.Join("a"); err != nil {
		t.Fatal(err)
	}
	b2.Start()
	waitFor(t, "b re-joined", func() bool { return sameRing([]*Agent{a, b2}, 2) })
}

func TestOnChangeFiresOnRingChange(t *testing.T) {
	net := newMemNet()
	var mu sync.Mutex
	var changes [][]string
	a, err := New(Config{
		ID:           "a",
		Interval:     5 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    120 * time.Millisecond,
		Transport:    &memTransport{net: net, from: "a"},
		Seed:         1,
		Logf:         func(string, ...any) {},
		OnChange: func(ms []Member) {
			ids := make([]string, len(ms))
			for i, m := range ms {
				ids[i] = m.ID
			}
			mu.Lock()
			changes = append(changes, ids)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.add(a)
	b := newAgent(t, net, "b", 2)
	defer a.Stop()
	defer b.Stop()
	if err := b.Join("a"); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	waitFor(t, "join notification", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(changes) >= 1 && len(changes[len(changes)-1]) == 2
	})

	b.Leave()
	waitFor(t, "leave notification", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(changes) >= 2 && len(changes[len(changes)-1]) == 1
	})
}

func TestPartitionFlapRecovers(t *testing.T) {
	net := newMemNet()
	agents := []*Agent{
		newAgent(t, net, "a", 1),
		newAgent(t, net, "b", 2),
		newAgent(t, net, "c", 3),
	}
	for _, a := range agents {
		defer a.Stop()
	}
	if err := agents[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := agents[2].Join("a"); err != nil {
		t.Fatal(err)
	}
	for _, a := range agents {
		a.Start()
	}
	waitFor(t, "convergence", func() bool { return sameRing(agents, 3) })

	// Flap: partition c away long enough to be suspected (not dead),
	// then heal. c keeps gossiping into the void the whole time, so on
	// heal its heartbeat progress clears the suspicion without needing
	// a refutation incarnation bump.
	net.setBlocked("c", true)
	waitFor(t, "c suspected", func() bool {
		for _, m := range agents[0].Members() {
			if m.ID == "c" {
				return m.Status == StatusSuspect
			}
		}
		return false
	})
	net.setBlocked("c", false)
	waitFor(t, "flap healed", func() bool {
		if !sameRing(agents, 3) {
			return false
		}
		for _, m := range agents[0].Members() {
			if m.ID == "c" {
				return m.Status == StatusAlive
			}
		}
		return false
	})
}

func TestDiscoverDoesNotJoin(t *testing.T) {
	net := newMemNet()
	a := newAgent(t, net, "a", 1)
	b := newAgent(t, net, "b", 2)
	defer a.Stop()
	defer b.Stop()
	if err := b.Join("a"); err != nil {
		t.Fatal(err)
	}
	tr := &memTransport{net: net, from: "observer"}
	ms, err := Discover(tr, "bogus", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("discovered %d members, want 2", len(ms))
	}
	for _, m := range a.Members() {
		if m.ID == "observer" {
			t.Fatal("discovery probe joined the ring")
		}
	}
}

func TestWatcherTracksRingChanges(t *testing.T) {
	net := newMemNet()
	a := newAgent(t, net, "a", 1)
	b := newAgent(t, net, "b", 2)
	defer a.Stop()
	if err := b.Join("a"); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	waitFor(t, "convergence", func() bool { return sameRing([]*Agent{a, b}, 2) })

	var mu sync.Mutex
	var last []string
	w, err := NewWatcher(WatcherConfig{
		Seeds:     []string{"a"},
		Interval:  5 * time.Millisecond,
		Transport: &memTransport{net: net, from: "watcher"},
		Logf:      func(string, ...any) {},
		OnChange: func(ms []Member) {
			ids := make([]string, len(ms))
			for i, m := range ms {
				ids[i] = m.ID
			}
			mu.Lock()
			last = ids
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	defer w.Stop()
	waitFor(t, "watcher sees both members", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(last) == 2
	})

	// b dies; the watcher must converge on the shrunken ring.
	net.setBlocked("b", true)
	b.Stop()
	waitFor(t, "watcher sees b gone", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(last) == 1 && last[0] == "a"
	})
}

// TestSeedRetryJoinsLateSeed starts a node whose configured seed does
// not exist yet; once the seed appears on the fabric, the gossip
// loop's seed-retry fallback must join the two without any explicit
// Join call succeeding first.
func TestSeedRetryJoinsLateSeed(t *testing.T) {
	net := newMemNet()
	late, err := New(Config{
		ID:           "late",
		Interval:     5 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    120 * time.Millisecond,
		Transport:    &memTransport{net: net, from: "late"},
		Seeds:        []string{"seed"},
		Seed:         7,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.add(late)
	if err := late.Join("seed"); err == nil {
		t.Fatal("join succeeded against a seed that does not exist yet")
	}
	late.Start()
	defer late.Stop()

	time.Sleep(25 * time.Millisecond) // a few lonely rounds pass
	seed := newAgent(t, net, "seed", 8)
	seed.Start()
	defer seed.Stop()

	waitFor(t, "late node to join via seed retry", func() bool {
		return sameRing([]*Agent{late, seed}, 2)
	})
}
