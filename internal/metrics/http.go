package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve binds addr and serves the Prometheus exposition of parts at
// /metrics. With enablePprof the standard net/http/pprof handlers are
// mounted under /debug/pprof/ on the same listener — profiling rides
// the metrics port, gated by the same flag, instead of claiming a
// second one. The caller owns the returned server and listener
// (srv.Close() tears both down); the bound address is ln.Addr().
func Serve(addr string, enablePprof bool, parts ...Part) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(parts...))
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln, nil
}
