package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dcdb_test_hits_total", "Test hits.").Add(7)

	srv, ln, err := Serve("127.0.0.1:0", true, Part{Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "dcdb_test_hits_total 7") {
		t.Errorf("/metrics missing counter series:\n%s", body)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d with pprof enabled", code)
	}
}

func TestServePprofDisabled(t *testing.T) {
	srv, ln, err := Serve("127.0.0.1:0", false, Part{Reg: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("/debug/pprof/cmdline status %d, want 404 with pprof disabled", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.0.0.1:bad", false); err == nil {
		t.Fatal("Serve on an unparseable address succeeded")
	}
}
