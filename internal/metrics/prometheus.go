package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
)

// Part names one registry's contribution to a merged exposition.
// Labels (e.g. `node="0"`) are injected into every series of the
// registry, which is how a collect agent embedding several store nodes
// exports them without name collisions.
type Part struct {
	Reg    *Registry
	Labels string // comma-separated label pairs, no braces; may be empty
}

// WritePrometheus writes the parts in Prometheus text exposition
// format (version 0.0.4). Series of one metric family are grouped
// under a single # HELP / # TYPE header, as the format requires.
func WritePrometheus(w io.Writer, parts ...Part) error {
	type labeled struct {
		Sample
		labels string
	}
	var all []labeled
	for _, p := range parts {
		if p.Reg == nil {
			continue
		}
		for _, s := range p.Reg.Gather() {
			all = append(all, labeled{s, p.Labels})
		}
	}
	// Group by family so one HELP/TYPE header covers every series of
	// the metric, across parts and inline labels.
	sort.SliceStable(all, func(i, j int) bool {
		fi, fj := familyOf(all[i].Name), familyOf(all[j].Name)
		if fi != fj {
			return fi < fj
		}
		return all[i].Name < all[j].Name
	})
	lastFamily := ""
	for _, s := range all {
		fam := familyOf(s.Name)
		if fam != lastFamily {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, s.Kind); err != nil {
				return err
			}
			lastFamily = fam
		}
		if err := writeSeries(w, s.Sample, s.labels); err != nil {
			return err
		}
	}
	return nil
}

// familyOf strips the inline label set from a series name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabels merges extra label pairs into a series name.
func withLabels(name, extra string) string {
	if extra == "" {
		return name
	}
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

// suffixed appends a family suffix (e.g. "_sum") before the label set.
func suffixed(name, suffix, extra string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return withLabels(name[:i]+suffix+name[i:], extra)
	}
	return withLabels(name+suffix, extra)
}

// histoLabeled appends an le bucket label to a (possibly labeled)
// family name.
func histoLabeled(name, extra, le string) string {
	pair := `le="` + le + `"`
	if extra != "" {
		pair = extra + "," + pair
	}
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + "_bucket" + name[i:len(name)-1] + "," + pair + "}"
	}
	return name + "_bucket{" + pair + "}"
}

func writeSeries(w io.Writer, s Sample, labels string) error {
	switch s.Kind {
	case KindHistogram:
		if s.Hist == nil {
			return nil
		}
		var cum int64
		scale := s.Hist.Scale
		if scale == 0 {
			scale = 1
		}
		for i, c := range s.Hist.Counts {
			cum += c
			// Empty tail buckets before +Inf are elided only if every
			// later bucket is empty too; emitting each bound would make
			// the page huge, so skip buckets that add nothing beyond
			// the running cumulative count, but always emit at least
			// the first and +Inf.
			if c == 0 && i != numBuckets {
				continue
			}
			le := "+Inf"
			if i < numBuckets {
				le = formatValue(bucketUpper(i) * scale)
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", histoLabeled(s.Name, labels, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixed(s.Name, "_sum", labels), formatValue(float64(s.Hist.Sum)*scale)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", suffixed(s.Name, "_count", labels), cum)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s %s\n", withLabels(s.Name, labels), formatValue(s.Value))
		return err
	}
}

// formatValue renders a float the way Prometheus expects: integers
// without a decimal point, everything else in compact scientific or
// plain notation.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving the parts as a Prometheus
// scrape endpoint.
func Handler(parts ...Part) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, parts...)
	})
}
