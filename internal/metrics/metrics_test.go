package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines —
// registration (idempotent re-registration included), counter/gauge
// updates, histogram observes and concurrent Gathers — and then checks
// the totals. Run under -race this is the registry's thread-safety
// contract.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker re-registers the same names: GetOrCreate
			// semantics must hand back the same underlying metric.
			c := r.Counter("c_total", "shared counter")
			g := r.Gauge("g", "shared gauge")
			h := r.Histogram("h", "shared histogram")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 1024))
				if i%1000 == 0 {
					_ = r.Gather()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g", "").Load(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	snap := r.Histogram("h", "").Snapshot()
	if got := snap.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestCounterFuncAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.CounterFunc("cf_total", "", func() float64 { return v })
	r.GaugeFunc("gf", "", func() float64 { return -v })
	v = 42
	samples := r.Gather()
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if byName["cf_total"].Value != 42 {
		t.Fatalf("counter func = %v, want 42 (evaluated at gather)", byName["cf_total"].Value)
	}
	if byName["gf"].Value != -42 {
		t.Fatalf("gauge func = %v", byName["gf"].Value)
	}
}

// TestHistogramBucketIndex pins the bucket layout: v lands in the
// smallest bucket whose upper bound 2^i admits it. The fixed layout is
// what makes cross-node merges exact, so it must never drift.
func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11}, {1 << 47, 47}, {1<<47 + 1, numBuckets},
		{math.MaxInt64, numBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramQuantileProperty checks the quantile estimate's bound
// property on random data: the reported quantile is an upper bound for
// the true order statistic, and no more than one power of two above
// it (the bucket's resolution guarantee).
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 100 + rng.Intn(2000)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1 << uint(5+rng.Intn(30)))
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		snap := h.Snapshot()
		if snap.Count() != int64(n) {
			t.Fatalf("count = %d, want %d", snap.Count(), n)
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q*float64(n))) - 1
			if rank < 0 {
				rank = 0
			}
			truth := vals[rank]
			got := snap.Quantile(q)
			if got < float64(truth) {
				t.Fatalf("q=%v: estimate %v below true order statistic %d", q, got, truth)
			}
			// Upper bound of the containing bucket: at most 2x the
			// true value (for truth >= 1).
			if truth >= 1 && got > 2*float64(truth) {
				t.Fatalf("q=%v: estimate %v more than 2x true value %d", q, got, truth)
			}
		}
	}
}

// TestHistogramMergeExact: merging two snapshots is identical to
// observing both value streams into one histogram.
func TestHistogramMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	sa, sb, sBoth := a.Snapshot(), b.Snapshot(), both.Snapshot()
	sa.Merge(sb)
	if sa.Counts != sBoth.Counts {
		t.Fatal("merged bucket counts differ from single-histogram counts")
	}
	if sa.Sum != sBoth.Sum {
		t.Fatalf("merged sum %d != %d", sa.Sum, sBoth.Sum)
	}
	if q1, q2 := sa.Quantile(0.9), sBoth.Quantile(0.9); q1 != q2 {
		t.Fatalf("merged q90 %v != %v", q1, q2)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if got := snap.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestLatencyHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("lat_seconds", "latency", 1)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	snap := h.Snapshot()
	if snap.Count() != 1 {
		t.Fatalf("count = %d", snap.Count())
	}
	if snap.Scale != 1e-9 {
		t.Fatalf("scale = %v, want 1e-9", snap.Scale)
	}
	if q := snap.Quantile(1) * snap.Scale; q < 1e-3 || q > 1 {
		t.Fatalf("observed latency quantile %vs implausible for a 1ms sleep", q)
	}
}

func TestMergeSamples(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("c_total", "").Add(3)
	r2.Counter("c_total", "").Add(4)
	r1.Gauge("g", "").Set(10)
	r2.Gauge("g", "").Set(5)
	r1.Histogram("h", "").Observe(2)
	r2.Histogram("h", "").Observe(100)
	r2.Counter("only2_total", "").Add(7)
	merged := MergeSamples(r1.Gather(), r2.Gather())
	byName := map[string]Sample{}
	for _, s := range merged {
		byName[s.Name] = s
	}
	if byName["c_total"].Value != 7 {
		t.Fatalf("merged counter = %v", byName["c_total"].Value)
	}
	if byName["g"].Value != 15 {
		t.Fatalf("merged gauge = %v", byName["g"].Value)
	}
	if byName["h"].Hist.Count() != 2 {
		t.Fatalf("merged histogram count = %v", byName["h"].Hist.Count())
	}
	if byName["only2_total"].Value != 7 {
		t.Fatalf("lone counter = %v", byName["only2_total"].Value)
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name }) {
		t.Fatal("merged samples not sorted")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Add(12)
	r.Gauge("b{shard=\"3\"}", "").Set(-4)
	h := r.LatencyHistogram("lat_seconds", "", 64)
	for i := int64(0); i < 1000; i++ {
		h.Observe(i * 1000)
	}
	in := r.Gather()
	out, err := DecodeSamples(EncodeSamples(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i].Name != out[i].Name || in[i].Kind != out[i].Kind {
			t.Fatalf("sample %d: %q/%v != %q/%v", i, in[i].Name, in[i].Kind, out[i].Name, out[i].Kind)
		}
		if in[i].Value != out[i].Value {
			t.Fatalf("sample %d value %v != %v", i, in[i].Value, out[i].Value)
		}
		if (in[i].Hist == nil) != (out[i].Hist == nil) {
			t.Fatalf("sample %d histogram presence mismatch", i)
		}
		if in[i].Hist != nil {
			if *in[i].Hist != *out[i].Hist {
				t.Fatalf("sample %d histogram mismatch", i)
			}
		}
	}
	// Help is intentionally not carried on the wire.
	if out[0].Help != "" {
		t.Fatalf("help leaked onto the wire: %q", out[0].Help)
	}
}

func TestSnapshotDecodeRejectsCorrupt(t *testing.T) {
	good := EncodeSamples([]Sample{{Name: "x", Kind: KindCounter, Value: 1}})
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  append([]byte{9}, good[1:]...),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0xff),
		"absurd count": {1, 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, err := DecodeSamples(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestRuntimeRegistry(t *testing.T) {
	samples := Runtime().Gather()
	found := map[string]bool{}
	for _, s := range samples {
		found[s.Name] = true
		if s.Name == "dcdb_process_goroutines" && s.Value < 1 {
			t.Fatalf("goroutines = %v", s.Value)
		}
	}
	for _, want := range []string{"dcdb_process_goroutines", "dcdb_process_heap_alloc_bytes", "dcdb_process_gc_total"} {
		if !found[want] {
			t.Errorf("runtime registry missing %s", want)
		}
	}
	if Runtime() != Runtime() {
		t.Fatal("Runtime() not a singleton")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewRegistry().Histogram("x", "x")
	h.Observe(1 << 55) // beyond the largest finite bucket
	snap := h.Snapshot()
	if snap.Counts[numBuckets] != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", snap.Counts[numBuckets])
	}
	if q := snap.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("overflow quantile = %g, want +Inf", q)
	}
	if bucketUpper(numBuckets) != math.Inf(1) {
		t.Fatal("bucketUpper past the last bucket is not +Inf")
	}
}
