package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte for byte:
// family grouping under one HELP/TYPE header, label injection, inline
// labels merged with injected ones, histogram bucket/sum/count series,
// and integer rendering without decimal points.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcdb_ops_total", "Operations.").Add(5)
	r.Counter(`dcdb_shard_ops_total{shard="1"}`, "Per-shard ops.").Add(2)
	r.Counter(`dcdb_shard_ops_total{shard="0"}`, "Per-shard ops.").Add(3)
	r.Gauge("dcdb_depth", "Queue depth.").Set(7)
	h := r.Histogram("dcdb_batch", "Batch sizes.")
	h.Observe(1) // bucket le=1
	h.Observe(2) // bucket le=2
	h.Observe(3) // bucket le=4
	h.Observe(3)

	var sb strings.Builder
	if err := WritePrometheus(&sb, Part{Reg: r, Labels: `node="0"`}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP dcdb_batch Batch sizes.
# TYPE dcdb_batch histogram
dcdb_batch_bucket{node="0",le="1"} 1
dcdb_batch_bucket{node="0",le="2"} 2
dcdb_batch_bucket{node="0",le="4"} 4
dcdb_batch_bucket{node="0",le="+Inf"} 4
dcdb_batch_sum{node="0"} 9
dcdb_batch_count{node="0"} 4
# HELP dcdb_depth Queue depth.
# TYPE dcdb_depth gauge
dcdb_depth{node="0"} 7
# HELP dcdb_ops_total Operations.
# TYPE dcdb_ops_total counter
dcdb_ops_total{node="0"} 5
# HELP dcdb_shard_ops_total Per-shard ops.
# TYPE dcdb_shard_ops_total counter
dcdb_shard_ops_total{shard="0",node="0"} 3
dcdb_shard_ops_total{shard="1",node="0"} 2
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusLatencyScale: nanosecond histograms expose bounds
// and sums in seconds.
func TestWritePrometheusLatencyScale(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("dcdb_lat_seconds", "Latency.", 1)
	h.Observe(1024) // ns; bucket upper bound 1024ns = 1.024e-06 s
	var sb strings.Builder
	if err := WritePrometheus(&sb, Part{Reg: r}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `dcdb_lat_seconds_bucket{le="1.024e-06"} 1`) {
		t.Fatalf("missing scaled bucket bound:\n%s", got)
	}
	if !strings.Contains(got, "dcdb_lat_seconds_sum 1.024e-06") {
		t.Fatalf("missing scaled sum:\n%s", got)
	}
	if strings.Contains(got, "sampled") {
		t.Fatalf("sampling note should not appear for sampling=1:\n%s", got)
	}
}

func TestHandlerServesScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcdb_x_total", "").Inc()
	srv := httptest.NewServer(Handler(Part{Reg: r}, Part{Reg: Runtime()}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "dcdb_x_total 1") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	if !strings.Contains(body, "dcdb_process_goroutines") {
		t.Fatalf("scrape missing runtime part:\n%s", body)
	}
}

// TestSamplingHelpNote: sampled latency histograms document the rate
// in HELP so dashboards do not misread _count as an ops counter.
func TestSamplingHelpNote(t *testing.T) {
	r := NewRegistry()
	r.LatencyHistogram("dcdb_s_seconds", "Insert latency.", 64)
	var sb strings.Builder
	if err := WritePrometheus(&sb, Part{Reg: r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(sampled 1 in 64)") {
		t.Fatalf("missing sampling note:\n%s", sb.String())
	}
}

// A labeled histogram family keeps its labels on every suffixed
// series: the _count/_sum/_bucket suffix goes before the brace.
func TestLabeledHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.LatencyHistogram(`dcdb_x_seconds{shard="1"}`, "x", 1)
	h.Observe(100)
	var sb strings.Builder
	if err := WritePrometheus(&sb, Part{Reg: reg, Labels: `node="0"`}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`dcdb_x_seconds_count{shard="1",node="0"} 1`,
		`dcdb_x_seconds_sum{shard="1",node="0"}`,
		`dcdb_x_seconds_bucket{shard="1",node="0",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
