package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary sample codec: the versioned body the Stats RPC op carries so
// a coordinator can pull a remote node's full metrics snapshot over
// the same wire the data takes. Version 1 layout (big endian, like the
// rest of the RPC protocol):
//
//	u8  version (1)
//	u32 sample count
//	per sample:
//	  u16 name length | name bytes
//	  u8  kind
//	  counter/gauge: f64 value
//	  histogram:     f64 sum | f64 scale | u8 bucket count | count×u64
//
// A decoder that sees a higher version than it knows rejects the body;
// the caller (rpc.Client.StatsFull) degrades to the legacy three-number
// stats rather than misreading bytes.

// snapshotVersion is the current codec version.
const snapshotVersion = 1

// maxSnapshotSamples bounds decode allocation against corrupt frames.
const maxSnapshotSamples = 1 << 16

// EncodeSamples serializes samples in the version-1 snapshot format.
func EncodeSamples(samples []Sample) []byte {
	buf := make([]byte, 0, 64+len(samples)*48)
	buf = append(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(samples)))
	for _, s := range samples {
		name := s.Name
		if len(name) > math.MaxUint16 {
			name = name[:math.MaxUint16]
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = append(buf, byte(s.Kind))
		if s.Kind == KindHistogram && s.Hist != nil {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(s.Hist.Sum)))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Hist.Scale))
			buf = append(buf, byte(numBuckets+1))
			for _, c := range s.Hist.Counts {
				buf = binary.BigEndian.AppendUint64(buf, uint64(c))
			}
		} else {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Value))
		}
	}
	return buf
}

// DecodeSamples parses a version-1 snapshot body.
func DecodeSamples(b []byte) ([]Sample, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("metrics: snapshot too short (%d bytes)", len(b))
	}
	if b[0] != snapshotVersion {
		return nil, fmt.Errorf("metrics: unknown snapshot version %d", b[0])
	}
	n := binary.BigEndian.Uint32(b[1:5])
	if n > maxSnapshotSamples {
		return nil, fmt.Errorf("metrics: snapshot claims %d samples", n)
	}
	b = b[5:]
	out := make([]Sample, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("metrics: truncated sample name length")
		}
		nl := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < nl+1 {
			return nil, fmt.Errorf("metrics: truncated sample name")
		}
		s := Sample{Name: string(b[:nl]), Kind: Kind(b[nl])}
		b = b[nl+1:]
		switch s.Kind {
		case KindHistogram:
			if len(b) < 17 {
				return nil, fmt.Errorf("metrics: truncated histogram header")
			}
			h := &HistogramSnapshot{
				Sum:   int64(math.Float64frombits(binary.BigEndian.Uint64(b))),
				Scale: math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
			}
			nb := int(b[16])
			b = b[17:]
			if len(b) < nb*8 {
				return nil, fmt.Errorf("metrics: truncated histogram buckets")
			}
			// A peer with a different (future) bucket count still
			// decodes: extra buckets fold into overflow, missing ones
			// stay zero.
			for j := 0; j < nb; j++ {
				c := int64(binary.BigEndian.Uint64(b[j*8:]))
				idx := j
				if idx > numBuckets {
					idx = numBuckets
					h.Counts[idx] += c
					continue
				}
				h.Counts[idx] = c
			}
			b = b[nb*8:]
			s.Hist = h
		case KindCounter, KindGauge:
			if len(b) < 8 {
				return nil, fmt.Errorf("metrics: truncated sample value")
			}
			s.Value = math.Float64frombits(binary.BigEndian.Uint64(b))
			b = b[8:]
		default:
			return nil, fmt.Errorf("metrics: unknown sample kind %d", s.Kind)
		}
		out = append(out, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("metrics: %d trailing bytes after snapshot", len(b))
	}
	return out, nil
}
