package metrics

import (
	"os"
	"runtime"
	"sync"
)

var (
	runtimeOnce sync.Once
	runtimeReg  *Registry
)

// Runtime returns the process-wide registry of Go runtime gauges
// (goroutines, heap, GC), built once and shared by every exporter in
// the process. The gauges are funcs: runtime.ReadMemStats runs only at
// scrape time, never on a hot path.
func Runtime() *Registry {
	runtimeOnce.Do(func() {
		r := NewRegistry()
		r.GaugeFunc("dcdb_process_goroutines", "Live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) })
		r.GaugeFunc("dcdb_process_cpus", "Usable CPUs (GOMAXPROCS).",
			func() float64 { return float64(runtime.GOMAXPROCS(0)) })
		r.GaugeFunc("dcdb_process_pid", "Process ID.",
			func() float64 { return float64(os.Getpid()) })
		r.GaugeFunc("dcdb_process_heap_alloc_bytes", "Bytes of live heap objects.",
			func() float64 { return float64(readMem().HeapAlloc) })
		r.GaugeFunc("dcdb_process_heap_sys_bytes", "Heap bytes obtained from the OS.",
			func() float64 { return float64(readMem().HeapSys) })
		r.CounterFunc("dcdb_process_gc_total", "Completed GC cycles.",
			func() float64 { return float64(readMem().NumGC) })
		r.CounterFunc("dcdb_process_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.",
			func() float64 { return float64(readMem().PauseTotalNs) / 1e9 })
		r.CounterFunc("dcdb_process_alloc_bytes_total", "Cumulative bytes allocated.",
			func() float64 { return float64(readMem().TotalAlloc) })
		runtimeReg = r
	})
	return runtimeReg
}

func readMem() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}
