// Package metrics is DCDB's self-monitoring registry: the paper's
// holistic-monitoring claim (§1, §6) is only honest if the monitor can
// watch itself with the same sub-1% footprint it promises applications.
// The package is dependency-free and allocation-free on the hot path:
//
//   - Counter and Gauge are cache-line padded atomics; incrementing one
//     is a single uncontended atomic add.
//   - Histogram buckets observations into fixed power-of-two buckets
//     (atomic adds, no locks, no allocation), so latency distributions
//     from different shards, nodes or processes merge exactly.
//   - CounterFunc / GaugeFunc adapt counters that already exist
//     elsewhere (a cache's hit atomics, a broker's publish count)
//     without migrating them; they are evaluated only at scrape time.
//
// A Registry's contents export three ways: Prometheus text exposition
// (prometheus.go), a binary snapshot carried by the Stats RPC
// (snapshot.go), and the collect agent's dog-fooded self-sensors
// (internal/collectagent), which republish the same samples as
// ordinary /dcdb/self/... topics into the store.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the sample types a registry can hold.
type Kind uint8

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing cache-line padded atomic. The
// padding keeps two counters that different goroutines hammer (e.g.
// bytes read vs bytes written on separate connections) from false
// sharing one line.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative for the exported value to remain
// a valid Prometheus counter).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable cache-line padded atomic.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative: in-flight style gauges).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// numBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations v with v <= 2^i, so the layout is identical
// everywhere and snapshots merge by adding bucket counts. 2^47 ns is
// ~39 hours — far beyond any latency this system produces — and the
// final implicit bucket catches the rest.
const numBuckets = 48

// Histogram buckets int64 observations (nanoseconds for latencies,
// plain counts for sizes) into fixed power-of-two buckets. Observe is
// lock-free and allocation-free; Snapshot/Merge give exact cross-shard
// and cross-node aggregation.
type Histogram struct {
	counts   [numBuckets + 1]atomic.Int64 // [numBuckets] = overflow (+Inf)
	sum      atomic.Int64
	scale    float64 // multiplies bucket bounds at exposition (1e-9: ns → s)
	sampling int64   // 1 = every observation; N = 1-in-N (documented in HELP)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// bucketIndex returns the smallest i with v <= 2^i, or the overflow
// bucket.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// ceil(log2(v)): the bit length of v-1.
	i := bits.Len64(uint64(v - 1))
	if i >= numBuckets {
		return numBuckets
	}
	return i
}

// HistogramSnapshot is a point-in-time copy of a histogram, mergeable
// with snapshots of identically-bucketed histograms from other shards,
// nodes or processes.
type HistogramSnapshot struct {
	Counts [numBuckets + 1]int64
	Sum    int64
	Scale  float64
}

// Snapshot copies the current counts. Buckets are read individually
// (not atomically as a set); a snapshot taken during concurrent
// observes is a valid histogram that includes each observation at most
// once.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Sum: h.sum.Load(), Scale: h.scale}
	if s.Scale == 0 {
		s.Scale = 1
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the total number of observations.
func (s *HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge adds other's counts into s. Both histograms share the fixed
// bucket layout, so the merge is exact.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	if s.Scale == 0 {
		s.Scale = other.Scale
	}
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) in
// the histogram's native unit: the upper bound of the bucket holding
// the q-th observation. Returns 0 for an empty histogram.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets)
}

// bucketUpper is the upper bound of bucket i in native units.
func bucketUpper(i int) float64 {
	if i >= numBuckets {
		return math.Inf(1)
	}
	return float64(int64(1) << uint(i))
}

// entry is one registered metric.
type entry struct {
	name string // full series name, optionally with {label="value"} pairs
	help string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64 // CounterFunc / GaugeFunc callback
}

// Registry holds named metrics. Registration takes a lock; reading and
// updating registered metrics does not. Each Node, Cluster, rpc
// Client/Server and Agent owns its own registry so embedded multi-node
// processes do not collide; exporters merge registries with injected
// labels (see WritePrometheus).
type Registry struct {
	mu      sync.RWMutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register adds e or returns the existing entry of the same name and
// kind. Same-name/different-kind registration panics: it is a
// programming error that would corrupt the exposition.
func (r *Registry) register(name, help string, kind Kind, e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[name]; ok {
		if old.kind != kind {
			panic(fmt.Sprintf("metrics: %q re-registered as %v (was %v)", name, kind, old.kind))
		}
		return old
	}
	e.name, e.help, e.kind = name, help, kind
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, KindCounter, &entry{c: &Counter{}})
	return e.c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, KindGauge, &entry{g: &Gauge{}})
	return e.g
}

// CounterFunc registers a counter whose value is computed by fn at
// scrape time — the bridge for counters that already live elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, &entry{fn: fn})
}

// GaugeFunc registers a gauge computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, &entry{fn: fn})
}

// Histogram registers (or returns the existing) count-valued histogram
// (unit 1) under name.
func (r *Registry) Histogram(name, help string) *Histogram {
	e := r.register(name, help, KindHistogram, &entry{h: &Histogram{scale: 1, sampling: 1}})
	return e.h
}

// LatencyHistogram registers a nanosecond-observing histogram exposed
// in seconds. sampling documents that only 1-in-sampling operations are
// observed (1 = all); callers on ns-scale hot paths sample so the two
// clock reads per observation stay off the common case.
func (r *Registry) LatencyHistogram(name, help string, sampling int64) *Histogram {
	if sampling > 1 {
		help = fmt.Sprintf("%s (sampled 1 in %d)", help, sampling)
	}
	e := r.register(name, help, KindHistogram, &entry{h: &Histogram{scale: 1e-9, sampling: sampling}})
	return e.h
}

// Sample is one exported series value: the unified form every exporter
// (Prometheus text, Stats RPC snapshot, self-sensors) consumes.
type Sample struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64 // counter / gauge value
	Hist  *HistogramSnapshot
}

// Gather evaluates every registered metric (including funcs) and
// returns the samples sorted by name.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.RUnlock()
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Help: e.help, Kind: e.kind}
		switch {
		case e.c != nil:
			s.Value = float64(e.c.Load())
		case e.g != nil:
			s.Value = float64(e.g.Load())
		case e.h != nil:
			snap := e.h.Snapshot()
			s.Hist = &snap
		case e.fn != nil:
			s.Value = e.fn()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergeSamples merges sample sets from several sources (e.g. every
// node of a cluster) by name: counters, histogram buckets and sums
// add; gauges add too (a cluster's memtable bytes are the sum of its
// nodes'). The result is sorted by name.
func MergeSamples(sets ...[]Sample) []Sample {
	merged := make(map[string]*Sample)
	var order []string
	for _, set := range sets {
		for i := range set {
			s := set[i]
			m, ok := merged[s.Name]
			if !ok {
				cp := s
				if s.Hist != nil {
					h := *s.Hist
					cp.Hist = &h
				}
				merged[s.Name] = &cp
				order = append(order, s.Name)
				continue
			}
			if m.Hist != nil && s.Hist != nil {
				m.Hist.Merge(*s.Hist)
			}
			m.Value += s.Value
		}
	}
	sort.Strings(order)
	out := make([]Sample, 0, len(order))
	for _, n := range order {
		out = append(out, *merged[n])
	}
	return out
}
