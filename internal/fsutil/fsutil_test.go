package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new contents"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "new contents" {
		t.Fatalf("read back %q, err %v", b, err)
	}
	left, _ := filepath.Glob(path + ".tmp*")
	if len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

func TestWriteFileAtomicFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("producer failed")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half a new file"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("expected the producer error back, got %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "old" {
		t.Fatalf("old contents not preserved: %q, err %v", b, err)
	}
	left, _ := filepath.Glob(path + ".tmp*")
	if len(left) != 0 {
		t.Fatalf("failed write left temp files: %v", left)
	}
}

func TestCleanTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	stale := path + ".tmp123"
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "other")
	if err := os.WriteFile(other, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	CleanTemps(path)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived: %v", err)
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatalf("unrelated file removed: %v", err)
	}
}

func TestOSFSSurface(t *testing.T) {
	dir := t.TempDir()
	f, err := Disk.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil || st.Size() != 1 {
		t.Fatalf("Stat: %v %v", st, err)
	}
	if !strings.HasSuffix(f.Name(), "a") {
		t.Fatalf("Name: %q", f.Name())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := Disk.OpenFile(filepath.Join(dir, "b"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	SyncDir(dir)
	SyncDir(filepath.Join(dir, "does-not-exist")) // best-effort, no panic
}
