// Package fsutil holds the small filesystem rituals the durable paths
// share, so the write-temp/fsync/rename/fsync-dir dance lives in one
// place instead of diverging across savers — and the single seam
// (Disk) every durable writer opens files through, so fault injection
// can make one node's disk slow, full, or lying without touching the
// code under test.
package fsutil

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable-file surface the durable paths use: WAL
// segments, run files, hint files, snapshots. It is the subset of
// *os.File they actually touch, which is what lets a fault injector
// interpose on writes and fsyncs.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
	Stat() (os.FileInfo, error)
}

// FS opens files for writing. The package-level Disk instance is the
// seam: production code always goes through it, tests swap it to
// inject slow writes, ENOSPC, or torn fsyncs on matching paths.
type FS interface {
	Create(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) Create(name string) (File, error) { return os.Create(name) }
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OSFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Disk is the FS every durable writer opens files through. Swap it
// (and restore it) only in tests that own the process — it is global
// state, the same trade the store's WAL sink seam already makes.
var Disk FS = OSFS{}

// WriteFileAtomic replaces path with the bytes produced by write,
// atomically and durably: the content goes to a uniquely named temp
// file in the same directory, is fsynced, renamed over path, and the
// directory is fsynced. A crash at any point leaves either the old
// file or the new one — never a torn or empty file. Unique temp names
// keep concurrent savers of the same path from interleaving; the last
// rename wins.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	f, err := Disk.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	SyncDir(filepath.Dir(path))
	return nil
}

// SyncDir fsyncs a directory so a just-renamed file survives a crash.
// Best-effort: some filesystems reject directory fsync.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// CleanTemps removes temp files a crashed WriteFileAtomic for path
// left behind. Call at startup, before concurrent savers exist — the
// glob would happily delete a temp file another writer is mid-way
// through.
func CleanTemps(path string) {
	stale, _ := filepath.Glob(path + ".tmp*")
	for _, p := range stale {
		os.Remove(p)
	}
}
