// Package fsutil holds the small filesystem rituals the durable paths
// share, so the write-temp/fsync/rename/fsync-dir dance lives in one
// place instead of diverging across savers.
package fsutil

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with the bytes produced by write,
// atomically and durably: the content goes to a uniquely named temp
// file in the same directory, is fsynced, renamed over path, and the
// directory is fsynced. A crash at any point leaves either the old
// file or the new one — never a torn or empty file. Unique temp names
// keep concurrent savers of the same path from interleaving; the last
// rename wins.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	SyncDir(filepath.Dir(path))
	return nil
}

// SyncDir fsyncs a directory so a just-renamed file survives a crash.
// Best-effort: some filesystems reject directory fsync.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// CleanTemps removes temp files a crashed WriteFileAtomic for path
// left behind. Call at startup, before concurrent savers exist — the
// glob would happily delete a temp file another writer is mid-way
// through.
func CleanTemps(path string) {
	stale, _ := filepath.Glob(path + ".tmp*")
	for _, p := range stale {
		os.Remove(p)
	}
}
