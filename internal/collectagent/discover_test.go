package collectagent

import (
	"testing"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/membership"
	"dcdb/internal/rpc"
	"dcdb/internal/store"
)

// gossipBackend runs one storage node with a membership agent on its
// RPC server — the dcdbnode shape, in-process.
type gossipBackend struct {
	srv   *rpc.Server
	agent *membership.Agent
}

func startGossipBackend(t *testing.T, seeds ...string) *gossipBackend {
	t.Helper()
	n := store.NewNode(0)
	srv := rpc.NewServer(n, true)
	g := &gossipBackend{srv: srv}
	srv.SetGossip(func(peerState []byte) ([]byte, error) {
		if g.agent == nil {
			return nil, rpc.ErrGossipUnavailable
		}
		return g.agent.Handle(peerState)
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	a, err := membership.New(membership.Config{
		ID:       srv.Addr(),
		Interval: 10 * time.Millisecond,
		Seeds:    seeds,
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.agent = a
	if len(seeds) > 0 {
		_ = a.Join(seeds...)
	}
	a.Start()
	t.Cleanup(func() {
		a.Stop()
		srv.Close()
		n.Close()
	})
	return g
}

// TestOpenDiscoveredBackendFollowsMembership covers the agent's
// seed-discovery path end to end: the cluster is built from one seed
// address, serves replicated writes, and a WatchMembership poller
// applies a node joining the gossip ring — after the rebalance, the
// cluster coordinates over three members without ever having been
// given a node list.
func TestOpenDiscoveredBackendFollowsMembership(t *testing.T) {
	b0 := startGossipBackend(t)
	b1 := startGossipBackend(t, b0.srv.Addr())
	deadline := time.Now().Add(10 * time.Second)
	for {
		ms, err := membership.DiscoverRing(b0.srv.Addr())
		if err == nil && len(ms) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed never served a 2-member ring (err %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	seeds := []string{b0.srv.Addr()}
	cluster, err := OpenDiscoveredBackend(seeds, store.ClusterOptions{
		Replication:       2,
		WriteConsistency:  store.ConsistencyQuorum,
		ReadConsistency:   store.ConsistencyQuorum,
		RebalanceThrottle: -1,
	}, rpc.ClientOptions{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if ms, _ := cluster.Members(); len(ms) != 2 {
		t.Fatalf("discovered cluster has %d members, want 2", len(ms))
	}

	id := core.SensorID{Hi: 7, Lo: 7}
	rs := []core.Reading{{Timestamp: 1, Value: 1}, {Timestamp: 2, Value: 2}}
	if err := cluster.InsertBatch(id, rs, 0); err != nil {
		t.Fatal(err)
	}

	w, err := WatchMembership(cluster, seeds, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	// A third node joins the gossip ring; the watcher must grow the
	// cluster and the rebalance must converge.
	startGossipBackend(t, b1.srv.Addr())
	deadline = time.Now().Add(10 * time.Second)
	for {
		ms, transition := cluster.Members()
		if len(ms) == 3 && !transition {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never followed the join: %d members", len(ms))
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, err := cluster.Query(id, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("QUORUM read after the watched join returned %d of %d readings", len(got), len(rs))
	}
}

// TestOpenDiscoveredBackendErrors pins the failure modes: no seeds,
// and no seed answering.
func TestOpenDiscoveredBackendErrors(t *testing.T) {
	if _, err := OpenDiscoveredBackend(nil, store.ClusterOptions{}, rpc.ClientOptions{}); err == nil {
		t.Fatal("no seeds accepted")
	}
	if _, err := OpenDiscoveredBackend([]string{"127.0.0.1:1"}, store.ClusterOptions{}, rpc.ClientOptions{}); err == nil {
		t.Fatal("unreachable seed accepted")
	}
}
