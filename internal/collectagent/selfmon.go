package collectagent

import (
	"strings"
	"sync"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/metrics"
)

// Self-monitoring as sensor data (dog-fooding, paper §6): the agent
// periodically publishes its own metrics into the very store it
// manages, under /dcdb/self/<host>/..., so the monitoring system's
// footprint is queryable, plottable and retained with exactly the same
// tools as every facility sensor. Counters and gauges publish one
// reading per tick; a histogram publishes two series, <name>_count and
// <name>_sum (the sum scaled to the histogram's unit, i.e. seconds for
// latency), from which dashboards derive rates and mean latencies.

// SelfTopicPrefix roots every self-monitoring topic.
const SelfTopicPrefix = "/dcdb/self"

// sanitizeLevel rewrites an arbitrary string (hostname, Prometheus
// metric name with labels) into one safe topic level: every run of
// characters outside [a-zA-Z0-9_-] collapses into one '_', trimmed at
// the ends. Distinct label sets stay distinct because their values
// survive ("...seconds{shard=\"3\"}" -> "...seconds_shard_3").
func sanitizeLevel(s string) string {
	var b strings.Builder
	pending := false
	for _, r := range s {
		ok := r == '-' || r == '_' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			pending = b.Len() > 0
			continue
		}
		if pending && r != '_' {
			b.WriteByte('_')
		}
		pending = false
		b.WriteRune(r)
	}
	return strings.TrimRight(strings.TrimLeft(b.String(), "_"), "_")
}

// PublishSelfMetrics gathers every part once and publishes the samples
// as readings through the agent's normal ingest path (topic mapping,
// storage write, cache, hierarchy — self-sensors are ordinary sensors).
// Parts sharing metric names are merged (summed) first. Returns the
// number of series published.
func (a *Agent) PublishSelfMetrics(host string, parts ...metrics.Part) int {
	sets := make([][]metrics.Sample, 0, len(parts))
	for _, p := range parts {
		if p.Reg != nil {
			sets = append(sets, p.Reg.Gather())
		}
	}
	samples := metrics.MergeSamples(sets...)
	prefix := SelfTopicPrefix + "/" + sanitizeLevel(host) + "/"
	ts := time.Now().UnixNano()
	n := 0
	publish := func(topic string, v float64) {
		a.Handle(topic, core.EncodeReadings([]core.Reading{{Timestamp: ts, Value: v}}))
		n++
	}
	for _, s := range samples {
		name := sanitizeLevel(s.Name)
		if name == "" {
			continue
		}
		if s.Hist != nil {
			scale := s.Hist.Scale
			if scale == 0 {
				scale = 1
			}
			publish(prefix+name+"_count", float64(s.Hist.Count()))
			publish(prefix+name+"_sum", float64(s.Hist.Sum)*scale)
			continue
		}
		publish(prefix+name, s.Value)
	}
	return n
}

// StartSelfMonitor publishes the parts' metrics every interval until
// the returned stop function is called. Stop is idempotent and waits
// for an in-flight publish to finish, so it is safe to call before
// closing the agent's backend.
func (a *Agent) StartSelfMonitor(host string, interval time.Duration, parts ...metrics.Part) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				a.PublishSelfMetrics(host, parts...)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
