package collectagent

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"dcdb/internal/config"
	"dcdb/internal/core"
	"dcdb/internal/libdcdb"
	"dcdb/internal/mqtt"
	"dcdb/internal/plugins/tester"
	"dcdb/internal/pusher"
	"dcdb/internal/rpc"
	"dcdb/internal/store"
)

func TestHandleStoresReadings(t *testing.T) {
	backend := store.NewNode(0)
	a := New(backend, nil, Options{Quiet: true})
	rs := []core.Reading{{Timestamp: 100, Value: 1}, {Timestamp: 200, Value: 2}}
	a.Handle("/s/n1/power", core.EncodeReadings(rs))
	id, ok := a.Mapper().Lookup("/s/n1/power")
	if !ok {
		t.Fatal("topic not mapped")
	}
	got, err := backend.Query(id, 0, 300)
	if err != nil || len(got) != 2 || got[1].Value != 2 {
		t.Fatalf("stored = %v, %v", got, err)
	}
	// Cache holds the latest reading.
	latest, ok := a.Cache().Latest("/s/n1/power")
	if !ok || latest.Value != 2 {
		t.Fatalf("cache = %+v, %v", latest, ok)
	}
	// Hierarchy observed the topic.
	if !a.Hierarchy().IsSensor("/s/n1/power") {
		t.Error("hierarchy missed the topic")
	}
	st := a.Stats()
	if st.Messages != 1 || st.Readings != 2 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHandleErrors(t *testing.T) {
	a := New(store.NewNode(0), nil, Options{Quiet: true})
	a.Handle("/t", []byte{1, 2, 3}) // not a multiple of 16
	a.Handle("bad//topic", core.EncodeReadings([]core.Reading{{Timestamp: 1, Value: 1}}))
	a.Handle("/empty", nil) // zero readings: ignored, not an error
	st := a.Stats()
	if st.Errors != 2 {
		t.Errorf("errors = %d", st.Errors)
	}
	if st.Readings != 0 {
		t.Errorf("readings = %d", st.Readings)
	}
	// Store failure path.
	down := store.NewNode(0)
	down.SetDown(true)
	a2 := New(down, nil, Options{Quiet: true})
	a2.Handle("/x", core.EncodeReadings([]core.Reading{{Timestamp: 1, Value: 1}}))
	if a2.Stats().Errors != 1 {
		t.Error("store failure not counted")
	}
}

func TestEndToEndOverMQTT(t *testing.T) {
	backend := store.NewNode(0)
	a := New(backend, nil, Options{Quiet: true})
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	client, err := mqtt.Dial(a.Addr(), mqtt.DialOptions{ClientID: "test-pusher"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rs := []core.Reading{{Timestamp: 1000, Value: 3.5}}
	if err := client.Publish("/lrz/cm3/n1/power", core.EncodeReadings(rs), 1); err != nil {
		t.Fatal(err)
	}
	// QoS 1: by PUBACK the broker handler has run.
	id, ok := a.Mapper().Lookup("/lrz/cm3/n1/power")
	if !ok {
		t.Fatal("topic not mapped after publish")
	}
	got, err := backend.Query(id, 0, 2000)
	if err != nil || len(got) != 1 || got[0].Value != 3.5 {
		t.Fatalf("end-to-end readings = %v, %v", got, err)
	}
}

func TestFullPipelinePusherToQuery(t *testing.T) {
	// Pusher (tester plugin) -> MQTT -> Collect Agent -> Store ->
	// libDCDB query: the complete data path of Figure 2.
	backend := store.NewNode(0)
	a := New(backend, nil, Options{Quiet: true})
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	client, err := mqtt.Dial(a.Addr(), mqtt.DialOptions{ClientID: "p1"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	plug := tester.New()
	cfg, err := config.ParseString("mqttPrefix /pipe\ngroup g { interval 10 sensors 3 }")
	if err != nil {
		t.Fatal(err)
	}
	if err := plug.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	h := pusher.NewHost(client, pusher.Options{Threads: 2, QoS: 1})
	defer h.Close()
	if err := h.StartPlugin(plug); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for a.Stats().Readings < 9 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if a.Stats().Readings < 9 {
		t.Fatalf("agent saw %d readings", a.Stats().Readings)
	}
	// Query through libDCDB with the agent's mapper.
	conn := libdcdb.Connect(backend, a.Mapper())
	rs, err := conn.Query("/pipe/g/s00000", 0, time.Now().UnixNano())
	if err != nil || len(rs) < 3 {
		t.Fatalf("query through libdcdb: %d readings, %v", len(rs), err)
	}
}

func TestBurstPipeline(t *testing.T) {
	backend := store.NewNode(0)
	a := New(backend, nil, Options{Quiet: true})
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	client, err := mqtt.Dial(a.Addr(), mqtt.DialOptions{ClientID: "pb"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	plug := tester.New()
	cfg, _ := config.ParseString("mqttPrefix /burst\ngroup g { interval 10 sensors 2 }")
	if err := plug.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	h := pusher.NewHost(client, pusher.Options{Threads: 1, QoS: 1, Mode: pusher.Burst, FlushInterval: time.Hour})
	defer h.Close()
	if err := h.StartPlugin(plug); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Readings < 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	h.Flush()
	deadline = time.Now().Add(2 * time.Second)
	for a.Stats().Readings < 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// One batched message per sensor, several readings inside.
	st := a.Stats()
	if st.Messages > 4 {
		t.Errorf("burst produced %d messages for %d readings", st.Messages, st.Readings)
	}
	if st.Readings < 6 {
		t.Fatalf("agent saw %d readings", st.Readings)
	}
}

func TestConcurrentHandle(t *testing.T) {
	// The full ingest path (decode → topic→SID → store → cache →
	// hierarchy) hammered from concurrent publishers, as under many
	// Pusher connections.
	backend := store.NewNode(0)
	a := New(backend, nil, Options{Quiet: true})
	const workers, perWorker = 8, 300
	payload := core.EncodeReadings([]core.Reading{{Timestamp: 1, Value: 1}, {Timestamp: 2, Value: 2}})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				topic := fmt.Sprintf("/conc/h%d/s%d/v", w, i%4)
				a.Handle(topic, payload)
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Messages != workers*perWorker || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Readings != int64(workers*perWorker*2) {
		t.Fatalf("readings = %d, want %d", st.Readings, workers*perWorker*2)
	}
	// Every distinct topic is mapped and queryable.
	for w := 0; w < workers; w++ {
		for s := 0; s < 4; s++ {
			topic := fmt.Sprintf("/conc/h%d/s%d/v", w, s)
			id, ok := a.Mapper().Lookup(topic)
			if !ok {
				t.Fatalf("topic %q not mapped", topic)
			}
			rs, err := backend.Query(id, 0, 10)
			if err != nil || len(rs) != 2 {
				t.Fatalf("topic %q: %d readings, %v", topic, len(rs), err)
			}
		}
	}
}

func TestAgentDurableBackendSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Cluster {
		c, err := OpenBackend(dir, 2, 2, nil, store.DiskOptions{CompactInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// First agent generation ingests over the in-process MQTT path.
	backend := open()
	a := New(backend, nil, Options{Quiet: true})
	topics := []string{"/dur/n1/power", "/dur/n1/temp", "/dur/n2/power"}
	for i, tp := range topics {
		rs := []core.Reading{
			{Timestamp: 100, Value: float64(i)},
			{Timestamp: 200, Value: float64(i) + 0.5},
		}
		a.Handle(tp, core.EncodeReadings(rs))
	}
	if err := SaveTopics(dir, a.Mapper()); err != nil {
		t.Fatal(err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	// Second generation recovers readings and the topic map.
	backend2 := open()
	defer backend2.Close()
	mapper := core.NewTopicMapper()
	if err := LoadTopics(dir, mapper); err != nil {
		t.Fatal(err)
	}
	a2 := New(backend2, mapper, Options{Quiet: true})
	for i, tp := range topics {
		id, ok := a2.Mapper().Lookup(tp)
		if !ok {
			t.Fatalf("topic %q lost across restart", tp)
		}
		rs, err := backend2.Query(id, 0, 1000)
		if err != nil || len(rs) != 2 {
			t.Fatalf("topic %q: %v, %v", tp, rs, err)
		}
		if rs[1].Value != float64(i)+0.5 {
			t.Fatalf("topic %q reading corrupted: %+v", tp, rs[1])
		}
	}
	// Ingest continues, and the recovered mapper reuses the same SIDs
	// so old and new readings merge under one sensor.
	a2.Handle(topics[0], core.EncodeReadings([]core.Reading{{Timestamp: 300, Value: 9}}))
	id, _ := a2.Mapper().Lookup(topics[0])
	rs, err := backend2.Query(id, 0, 1000)
	if err != nil || len(rs) != 3 || rs[2].Value != 9 {
		t.Fatalf("post-restart ingest: %v, %v", rs, err)
	}
}

func TestOpenBackendValidation(t *testing.T) {
	dir := t.TempDir()
	// A node count below one is clamped rather than rejected.
	c, err := OpenBackend(dir, 0, 1, nil, store.DiskOptions{CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 1 {
		t.Fatalf("clamped node count = %d", len(c.Nodes()))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening the same directory with the same shape succeeds.
	c2, err := OpenBackend(dir, 1, 1, nil, store.DiskOptions{CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
}

func TestOpenBackendRejectsHiddenNodes(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenBackend(dir, 2, 1, nil, store.DiskOptions{CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening with fewer nodes than the directory holds must fail
	// loudly instead of silently hiding node1's acknowledged data.
	if _, err := OpenBackend(dir, 1, 1, nil, store.DiskOptions{CompactInterval: -1}); err == nil {
		t.Fatal("shrunken node count over a wider directory accepted")
	}
}

func TestOnNewTopicVetoDropsMessage(t *testing.T) {
	backend := store.NewNode(0)
	vetoing := true
	a := New(backend, nil, Options{
		Quiet: true,
		OnNewTopic: func(topic string, _ core.SensorID) error {
			if vetoing && topic == "/veto/me" {
				return fmt.Errorf("injected persistence failure")
			}
			return nil
		},
	})
	a.Handle("/veto/me", core.EncodeReadings([]core.Reading{{Timestamp: 1, Value: 1}}))
	a.Handle("/keep/me", core.EncodeReadings([]core.Reading{{Timestamp: 1, Value: 2}}))
	st := a.Stats()
	if st.Errors != 1 || st.Readings != 1 {
		t.Fatalf("stats = %+v, want 1 error (vetoed) and 1 stored reading", st)
	}
	if id, ok := a.Mapper().Lookup("/veto/me"); ok {
		if rs, _ := backend.Query(id, 0, 10); len(rs) != 0 {
			t.Fatal("vetoed reading was stored anyway")
		}
	}
	// While persistence keeps failing, later readings of the topic are
	// also dropped — nothing may be stored before its name is durable.
	a.Handle("/veto/me", core.EncodeReadings([]core.Reading{{Timestamp: 2, Value: 3}}))
	if st := a.Stats(); st.Errors != 2 || st.Readings != 1 {
		t.Fatalf("stats while persistence failing = %+v", st)
	}
	// Once persistence recovers, the pending topic retries and stores.
	vetoing = false
	a.Handle("/veto/me", core.EncodeReadings([]core.Reading{{Timestamp: 3, Value: 4}}))
	if st := a.Stats(); st.Readings != 2 {
		t.Fatalf("post-recovery stats = %+v", st)
	}
}

func TestOpenBackendOptionsHintedHandoffAcrossAgentRestart(t *testing.T) {
	// A durable embedded cluster with consistency and hinted handoff
	// configured through the agent wiring: a replica that misses a
	// write while down receives it after it comes back, even across a
	// cluster close/reopen (the hints live under <dir>/hints).
	dir := t.TempDir()
	co := store.ClusterOptions{
		Partitioner: store.HashPartitioner{}, Replication: 2,
		WriteConsistency:   store.ConsistencyOne,
		HintReplayInterval: -1,
	}
	c, err := OpenBackendOptions(dir, 3, store.DiskOptions{CompactInterval: -1}, co)
	if err != nil {
		t.Fatal(err)
	}
	id := core.SensorID{Hi: 5, Lo: 5}
	primary := c.Partitioner().NodeFor(id, 3)
	backup := (primary + 1) % 3
	c.Nodes()[backup].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if queued, _, _ := c.HintStats(); queued != 1 {
		t.Fatalf("queued %d hints, want 1", queued)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenBackendOptions(dir, 3, store.DiskOptions{CompactInterval: -1}, co)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.ReplayHints(); err != nil {
		t.Fatal(err)
	}
	rs, err := c2.Nodes()[backup].Query(id, 0, 1<<60)
	if err != nil || len(rs) != 1 {
		t.Fatalf("backup replica after restart+replay: %v, %v", rs, err)
	}
}

func TestOpenBackendOptionsDisablesHints(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenBackendOptions(dir, 1, store.DiskOptions{CompactInterval: -1},
		store.ClusterOptions{HintDir: "-"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, statErr := os.Stat(HintsDir(dir)); !os.IsNotExist(statErr) {
		t.Fatal("hint directory created despite HintDir \"-\"")
	}
}

func TestOpenBackendOptionsSplitsCacheBudgetAcrossNodes(t *testing.T) {
	// -cache-bytes is a process-wide bound: opening N embedded nodes
	// must split the budget, not hand each node the full amount.
	const budget = 4 << 20
	c, err := OpenBackendOptions(t.TempDir(), 4,
		store.DiskOptions{CompactInterval: -1, CacheBytes: budget},
		store.ClusterOptions{HintDir: "-"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var total int64
	for i, n := range c.Nodes() {
		got := n.CacheBudget()
		if got != budget/4 {
			t.Fatalf("node %d cache budget %d, want %d (process budget %d / 4 nodes)", i, got, budget/4, budget)
		}
		total += got
	}
	if total > budget {
		t.Fatalf("summed node budgets %d exceed the configured process bound %d", total, budget)
	}
}

func TestOpenRemoteBackendRoundtrip(t *testing.T) {
	n := store.NewNode(0)
	srv := rpc.NewServer(n, true)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := OpenRemoteBackend([]string{srv.Addr()}, store.ClusterOptions{}, rpc.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := New(c, nil, Options{Quiet: true})
	a.Handle("/remote/n1/power", core.EncodeReadings([]core.Reading{{Timestamp: 1, Value: 2}}))
	if got := a.Stats().Readings; got != 1 {
		t.Fatalf("agent acked %d readings over RPC, want 1", got)
	}
	id, _ := a.Mapper().Lookup("/remote/n1/power")
	rs, err := n.Query(id, 0, 1<<60)
	if err != nil || len(rs) != 1 {
		t.Fatalf("storage node holds %v, %v", rs, err)
	}
	if _, err := OpenRemoteBackend(nil, store.ClusterOptions{}, rpc.ClientOptions{}); err == nil {
		t.Fatal("OpenRemoteBackend with no addresses succeeded")
	}
}
