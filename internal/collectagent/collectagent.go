// Package collectagent implements DCDB's Collect Agent (paper §3.1,
// §4.2): the data broker between Pushers and Storage Backends. The
// agent embeds the custom MQTT broker (publish path only, §4.2 — the
// Storage Backend is the one subscriber to everything, so general topic
// filtering is skipped), translates each message's topic into its
// 128-bit SID, and writes readings to the Storage Backend. A sensor
// cache holds the most recent readings of every connected Pusher and is
// exposed via the RESTful API so legacy frameworks can consume all
// sensors through one interface (§5.3).
package collectagent

import (
	"log"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/cache"
	"dcdb/internal/core"
	"dcdb/internal/metrics"
	"dcdb/internal/mqtt"
	"dcdb/internal/store"
)

// Options configure an Agent.
type Options struct {
	// CacheWindow sizes the sensor cache (default two minutes).
	CacheWindow time.Duration
	// Quiet suppresses per-message warnings (benchmarks).
	Quiet bool
	// OnNewTopic, when set, fires the first time a topic is mapped to
	// a SID, before any reading of that topic is stored. A durable
	// agent persists the topic map here, so the mapping of every
	// stored reading survives a crash alongside the reading itself;
	// returning an error drops the message instead of storing a
	// reading whose name could not be made durable. Called from the
	// message path — keep it cheap for steady state (it only fires
	// when the sensor set grows).
	OnNewTopic func(topic string, id core.SensorID) error
}

// Stats are cumulative Agent counters.
type Stats struct {
	Messages int64 // MQTT PUBLISH packets processed
	Readings int64 // sensor readings written
	Errors   int64 // undecodable messages or failed writes
}

// Agent is a running Collect Agent.
type Agent struct {
	backend store.Backend
	mapper  *core.TopicMapper
	broker  *mqtt.Broker
	cache   *cache.Cache
	hier    *core.Hierarchy
	opts    Options

	messages atomic.Int64
	readings atomic.Int64
	errors   atomic.Int64
	met      *metrics.Registry

	// pendingTopics are topics whose OnNewTopic persistence failed;
	// they retry on the topic's next message so no reading is ever
	// stored without its name having been persisted.
	pendingMu     sync.Mutex
	pendingTopics map[string]struct{}
}

// New creates an agent writing to backend. The mapper may be shared
// with libDCDB connections; nil creates a fresh one.
func New(backend store.Backend, mapper *core.TopicMapper, opts Options) *Agent {
	if mapper == nil {
		mapper = core.NewTopicMapper()
	}
	a := &Agent{
		backend: backend,
		mapper:  mapper,
		cache:   cache.New(opts.CacheWindow),
		hier:    core.NewHierarchy(),
		opts:    opts,
	}
	a.broker = mqtt.NewBroker(a.handle)
	// The ingest counters already exist as atomics (the Stats API);
	// the registry mirrors them at scrape time instead of double
	// counting on the message path.
	a.met = metrics.NewRegistry()
	a.met.CounterFunc("dcdb_agent_messages_total",
		"MQTT PUBLISH packets processed.", func() float64 {
			return float64(a.messages.Load())
		})
	a.met.CounterFunc("dcdb_agent_readings_total",
		"Sensor readings written to the storage backend.", func() float64 {
			return float64(a.readings.Load())
		})
	a.met.CounterFunc("dcdb_agent_errors_total",
		"Undecodable messages or failed storage writes.", func() float64 {
			return float64(a.errors.Load())
		})
	a.met.CounterFunc("dcdb_agent_broker_published_total",
		"PUBLISH packets accepted by the embedded MQTT broker.", func() float64 {
			p, _ := a.broker.Stats()
			return float64(p)
		})
	a.met.CounterFunc("dcdb_agent_broker_payload_bytes_total",
		"PUBLISH payload bytes accepted by the embedded MQTT broker.", func() float64 {
			_, b := a.broker.Stats()
			return float64(b)
		})
	a.met.GaugeFunc("dcdb_agent_cache_topics",
		"Topics resident in the agent's sensor cache.", func() float64 {
			return float64(len(a.cache.Topics()))
		})
	return a
}

// Metrics returns the agent's ingest metric registry.
func (a *Agent) Metrics() *metrics.Registry { return a.met }

// Listen starts the agent's MQTT broker on addr.
func (a *Agent) Listen(addr string) error { return a.broker.Listen(addr) }

// Addr returns the broker's bound address.
func (a *Agent) Addr() string { return a.broker.Addr() }

// Mapper returns the shared topic mapper.
func (a *Agent) Mapper() *core.TopicMapper { return a.mapper }

// Cache exposes the agent-side sensor cache.
func (a *Agent) Cache() *cache.Cache { return a.cache }

// Hierarchy exposes the sensor hierarchy assembled from observed
// topics.
func (a *Agent) Hierarchy() *core.Hierarchy { return a.hier }

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	return Stats{
		Messages: a.messages.Load(),
		Readings: a.readings.Load(),
		Errors:   a.errors.Load(),
	}
}

// Close stops the broker.
func (a *Agent) Close() error { return a.broker.Close() }

// Handle processes one PUBLISH message (exported for in-process
// pipelines and benchmarks that bypass TCP).
func (a *Agent) Handle(topic string, payload []byte) { a.handle(topic, payload) }

func (a *Agent) handle(topic string, payload []byte) {
	a.messages.Add(1)
	rs, err := core.DecodeReadings(payload)
	if err != nil {
		a.errors.Add(1)
		if !a.opts.Quiet {
			log.Printf("collectagent: dropping message on %q: %v", topic, err)
		}
		return
	}
	if len(rs) == 0 {
		return
	}
	// Topic -> SID translation (paper §4.2): 1:1, hierarchical.
	id, first, err := a.mapper.MapFirst(topic)
	if err != nil {
		a.errors.Add(1)
		if !a.opts.Quiet {
			log.Printf("collectagent: unmappable topic %q: %v", topic, err)
		}
		return
	}
	if a.opts.OnNewTopic != nil {
		if !first {
			// A topic whose earlier persistence attempt failed must
			// retry before any of its readings are stored.
			a.pendingMu.Lock()
			_, first = a.pendingTopics[topic]
			a.pendingMu.Unlock()
		}
		if first {
			if err := a.opts.OnNewTopic(topic, id); err != nil {
				// Storing the reading without its durable name would
				// let it resolve to the wrong sensor after a crash;
				// drop it and retry on the topic's next message.
				a.pendingMu.Lock()
				if a.pendingTopics == nil {
					a.pendingTopics = make(map[string]struct{})
				}
				a.pendingTopics[topic] = struct{}{}
				a.pendingMu.Unlock()
				a.errors.Add(1)
				if !a.opts.Quiet {
					log.Printf("collectagent: dropping reading of %q: persisting topic map: %v", topic, err)
				}
				return
			}
			a.pendingMu.Lock()
			delete(a.pendingTopics, topic)
			a.pendingMu.Unlock()
		}
	}
	if err := a.backend.InsertBatch(id, rs, 0); err != nil {
		a.errors.Add(1)
		if !a.opts.Quiet {
			log.Printf("collectagent: store write for %q failed: %v", topic, err)
		}
		return
	}
	a.readings.Add(int64(len(rs)))
	a.cache.Store(topic, rs[len(rs)-1])
	a.hier.Add(topic)
}
