package collectagent

import (
	"math"
	"testing"
	"time"

	"dcdb/internal/libdcdb"
	"dcdb/internal/metrics"
	"dcdb/internal/store"
)

func TestSanitizeLevel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"host-0", "host-0"},
		{"lrz.cm3.login01", "lrz_cm3_login01"},
		{`dcdb_store_insert_latency_seconds{shard="3"}`, "dcdb_store_insert_latency_seconds_shard_3"},
		{"///", ""},
		{"a//b", "a_b"},
		{"_x_", "x"},
	}
	for _, c := range cases {
		if got := sanitizeLevel(c.in); got != c.want {
			t.Errorf("sanitizeLevel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestSelfSensorRoundTrip closes the dog-fooding loop of paper §6: the
// agent publishes its own metrics through its normal ingest path as
// /dcdb/self/<host>/... sensors, and a libdcdb connection sharing the
// agent's topic mapper reads them back like any facility sensor.
func TestSelfSensorRoundTrip(t *testing.T) {
	node := store.NewNode(0)
	agent := New(node, nil, Options{Quiet: true})
	defer agent.Close()

	reg := metrics.NewRegistry()
	reg.Counter("dcdb_test_requests_total", "requests").Add(41)
	h := reg.LatencyHistogram("dcdb_test_latency_seconds", "latency", 1)
	h.Observe(1500) // ns
	h.Observe(2500)

	published := agent.PublishSelfMetrics("host-0", metrics.Part{Reg: reg})
	if published != 3 { // counter + histogram _count + histogram _sum
		t.Fatalf("published %d series, want 3", published)
	}

	conn := libdcdb.Connect(node, agent.Mapper())
	horizon := time.Now().UnixNano() + int64(time.Hour)
	query := func(topic string) float64 {
		t.Helper()
		rs, err := conn.Query(topic, 0, horizon)
		if err != nil {
			t.Fatalf("query %s: %v", topic, err)
		}
		if len(rs) != 1 {
			t.Fatalf("query %s: %d readings, want 1", topic, len(rs))
		}
		return rs[0].Value
	}

	prefix := SelfTopicPrefix + "/host-0/"
	if v := query(prefix + "dcdb_test_requests_total"); v != 41 {
		t.Errorf("counter read back as %g, want 41", v)
	}
	if v := query(prefix + "dcdb_test_latency_seconds_count"); v != 2 {
		t.Errorf("histogram count read back as %g, want 2", v)
	}
	// The sum publishes in the histogram's unit: 4000 ns scaled by 1e-9.
	if v := query(prefix + "dcdb_test_latency_seconds_sum"); math.Abs(v-4000e-9) > 1e-12 {
		t.Errorf("histogram sum read back as %g, want 4e-06", v)
	}

	// Self-sensors join the hierarchy and cache like ordinary sensors.
	if got := agent.Hierarchy().Sensors(SelfTopicPrefix + "/host-0"); len(got) != 3 {
		t.Errorf("hierarchy lists %d self-sensors, want 3: %v", len(got), got)
	}
	if _, ok := agent.Cache().Latest(prefix + "dcdb_test_requests_total"); !ok {
		t.Error("self-sensor missing from the agent cache")
	}

	// The agent's own ingest registry counted the three publishes; the
	// scrape-time mirrors agree with the Stats atomics.
	byName := map[string]float64{}
	for _, s := range agent.Metrics().Gather() {
		byName[s.Name] = s.Value
	}
	if got := byName["dcdb_agent_readings_total"]; got != 3 {
		t.Errorf("dcdb_agent_readings_total = %g, want 3", got)
	}
	if got := byName["dcdb_agent_messages_total"]; got != 3 {
		t.Errorf("dcdb_agent_messages_total = %g, want 3", got)
	}
	if got := byName["dcdb_agent_errors_total"]; got != 0 {
		t.Errorf("dcdb_agent_errors_total = %g, want 0", got)
	}
	if got := byName["dcdb_agent_cache_topics"]; got != 3 {
		t.Errorf("dcdb_agent_cache_topics = %g, want 3", got)
	}
}

// TestStartSelfMonitor exercises the periodic publisher and its
// idempotent stop.
func TestStartSelfMonitor(t *testing.T) {
	node := store.NewNode(0)
	agent := New(node, nil, Options{Quiet: true})
	defer agent.Close()

	reg := metrics.NewRegistry()
	reg.Counter("dcdb_test_ticks_total", "ticks").Inc()

	stop := agent.StartSelfMonitor("h", 5*time.Millisecond, metrics.Part{Reg: reg})
	deadline := time.Now().Add(2 * time.Second)
	topic := SelfTopicPrefix + "/h/dcdb_test_ticks_total"
	for {
		if _, ok := agent.Cache().Latest(topic); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("self-monitor never published")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}
