package collectagent

import (
	"os"
	"path/filepath"
	"testing"
)

func TestHealInterruptedSaveCommitsReady(t *testing.T) {
	dir := t.TempDir()
	// A completed rewrite whose final swap was interrupted: node0.ready
	// holds the new contents; the stale node0 and a higher-numbered
	// node1 it meant to remove are still present, as is an incomplete
	// node0.building from an even earlier attempt.
	mk := func(name, marker string) {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(p, marker), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("node0", "stale")
	mk("node1", "stale")
	mk(ReadyDir, "fresh")
	mk(BuildingDir, "half")

	if err := HealInterruptedSave(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(NodeDir(dir, 0), "fresh")); err != nil {
		t.Fatalf("ready contents not committed to node0: %v", err)
	}
	for _, gone := range []string{filepath.Join(dir, "node1"), filepath.Join(dir, ReadyDir), filepath.Join(dir, BuildingDir)} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("%s survived the heal: %v", gone, err)
		}
	}

	// Idempotent: healing a healthy directory changes nothing.
	if err := HealInterruptedSave(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(NodeDir(dir, 0), "fresh")); err != nil {
		t.Fatalf("second heal disturbed node0: %v", err)
	}
}

func TestHealInterruptedSaveDiscardsBuilding(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, BuildingDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(NodeDir(dir, 0)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(NodeDir(dir, 0), "keep"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := HealInterruptedSave(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, BuildingDir)); !os.IsNotExist(err) {
		t.Fatal("incomplete building dir survived")
	}
	if _, err := os.Stat(filepath.Join(NodeDir(dir, 0), "keep")); err != nil {
		t.Fatalf("original node0 disturbed with no ready dir: %v", err)
	}
}
