// Durable backend wiring: instead of periodically snapshotting every
// node into one file, a Collect Agent can own a data directory in
// which each storage node keeps per-shard run files and write-ahead
// logs (internal/store). Opening the directory replays the WALs, so an
// agent restart — clean or not — resumes with every acknowledged
// reading intact, which is what makes the paper's "continuous"
// monitoring claim (§2) hold across daemon crashes.
//
// Layout:
//
//	<dir>/node<i>/shard-<s>/run-*.sst, wal-*.log
//	<dir>/topics        — the topic↔SID map (atomic replace)
package collectagent

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/fsutil"
	"dcdb/internal/membership"
	"dcdb/internal/rpc"
	"dcdb/internal/store"
)

// NodeDir returns the data directory of cluster node i under dir.
func NodeDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("node%d", i))
}

// Staging directories of a tool-side data-directory rewrite
// (tooldb.Save). "node0.building" is an in-progress rewrite
// (incomplete, discarded); "node0.ready" is a complete rewrite whose
// final swap was interrupted (committed here). Both the agent and the
// tools heal before opening, so an interrupted rewrite can never be
// half-applied — or applied on top of data a later agent run wrote.
const (
	BuildingDir = "node0.building"
	ReadyDir    = "node0.ready"
)

// HealInterruptedSave completes or discards an interrupted tool-side
// rewrite of the data directory.
func HealInterruptedSave(dir string) error {
	os.RemoveAll(filepath.Join(dir, BuildingDir)) // never complete; inputs are intact
	ready := filepath.Join(dir, ReadyDir)
	if _, err := os.Stat(ready); err != nil {
		return nil
	}
	// The rewrite finished building: finish its swap — replace node0
	// and drop the now-stale higher-numbered nodes it meant to remove.
	if err := os.RemoveAll(NodeDir(dir, 0)); err != nil {
		return err
	}
	if err := os.Rename(ready, NodeDir(dir, 0)); err != nil {
		return err
	}
	for i := 1; ; i++ {
		nd := NodeDir(dir, i)
		if _, err := os.Stat(nd); err != nil {
			break
		}
		if err := os.RemoveAll(nd); err != nil {
			return err
		}
	}
	fsutil.SyncDir(dir)
	return nil
}

// HintsDir returns the hinted-handoff directory under a data
// directory.
func HintsDir(dir string) string { return filepath.Join(dir, "hints") }

// OpenBackend opens (creating on first use) a durable storage cluster
// rooted at dir with one subdirectory per node. Recovery of each node
// happens here; the returned cluster must be Closed to flush and
// detach cleanly.
func OpenBackend(dir string, nodes, replication int, part store.Partitioner, o store.DiskOptions) (*store.Cluster, error) {
	return OpenBackendOptions(dir, nodes, o, store.ClusterOptions{Partitioner: part, Replication: replication})
}

// OpenBackendOptions is OpenBackend with full cluster configuration
// (consistency levels, hinted handoff). A co.HintDir of "" enables
// handoff under <dir>/hints; pass "-" to disable it outright.
//
// o.CacheBytes is a PROCESS-WIDE block-cache budget: it is split
// evenly across the embedded nodes, so opening more nodes never
// multiplies the bound the caller configured. (Each node keeps its own
// cache — the split, not a shared cache, is what keeps node lifecycles
// independent.)
func OpenBackendOptions(dir string, nodes int, o store.DiskOptions, co store.ClusterOptions) (*store.Cluster, error) {
	if nodes < 1 {
		nodes = 1
	}
	if o.CacheBytes > 0 && nodes > 1 {
		o.CacheBytes /= int64(nodes)
		if o.CacheBytes < 1 {
			// Rounding to 0 would mean "unbounded" — the opposite of a
			// tiny budget. A 1-byte cache keeps nothing resident.
			o.CacheBytes = 1
		}
	}
	if err := HealInterruptedSave(dir); err != nil {
		return nil, fmt.Errorf("collectagent: healing interrupted save: %w", err)
	}
	// Opening fewer nodes than the directory holds would silently hide
	// acknowledged data; make the shrink explicit.
	if _, err := os.Stat(NodeDir(dir, nodes)); err == nil {
		return nil, fmt.Errorf("collectagent: %s exists but only %d node(s) requested — the directory holds more nodes than the configuration opens", NodeDir(dir, nodes), nodes)
	}
	switch co.HintDir {
	case "":
		co.HintDir = HintsDir(dir)
	case "-":
		co.HintDir = ""
	}
	backends := make([]store.NodeBackend, nodes)
	closeOpened := func(k int) {
		for _, b := range backends[:k] {
			b.Close()
		}
	}
	for i := range backends {
		n := store.NewNode(0)
		if err := n.OpenOptions(NodeDir(dir, i), o); err != nil {
			closeOpened(i)
			return nil, fmt.Errorf("collectagent: opening node %d: %w", i, err)
		}
		backends[i] = n
	}
	c, err := store.NewClusterOptions(backends, co)
	if err != nil {
		closeOpened(nodes)
		return nil, err
	}
	return c, nil
}

// OpenRemoteBackend builds a cluster of RPC storage nodes (one
// dcdbnode process per address). The agent keeps no node data locally;
// co.HintDir (when set) holds the durable hinted-handoff queue so
// writes a down node missed survive an agent restart too.
func OpenRemoteBackend(addrs []string, co store.ClusterOptions, ro rpc.ClientOptions) (*store.Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("collectagent: no storage node addresses")
	}
	backends := make([]store.NodeBackend, len(addrs))
	for i, addr := range addrs {
		backends[i] = rpc.NewClient(addr, ro)
	}
	c, err := store.NewClusterOptions(backends, co)
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	return c, nil
}

// OpenDiscoveredBackend builds a live-membership cluster of RPC
// storage nodes discovered from seed addresses: any one reachable
// dcdbnode answers a gossip probe with the full member table, so the
// agent needs a seed, not the complete node list. Placement is the
// consistent-hash ring keyed by member identity — every coordinator
// that discovers the same table derives the same placement. Pair with
// WatchMembership to follow joins, leaves and failures live.
func OpenDiscoveredBackend(seeds []string, co store.ClusterOptions, ro rpc.ClientOptions) (*store.Cluster, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("collectagent: no seed addresses to discover from")
	}
	members, err := membership.DiscoverRing(seeds...)
	if err != nil {
		return nil, err
	}
	ms := make([]store.MemberInfo, len(members))
	for i, m := range members {
		ms[i] = store.MemberInfo{ID: m.ID, Addr: m.Addr}
	}
	if co.Partitioner == nil {
		co.Partitioner = store.RingPartitioner{}
	}
	co.BackendFactory = func(id, addr string) store.NodeBackend {
		return rpc.NewClient(addr, ro)
	}
	return store.NewClusterMembers(ms, co)
}

// WatchMembership starts a poller that follows the gossip member table
// via the seeds and applies ring changes to the cluster (SetMembers
// triggers the streaming rebalance + cutover). Stop the returned
// watcher before closing the cluster.
func WatchMembership(c *store.Cluster, seeds []string, interval time.Duration) (*membership.Watcher, error) {
	w, err := membership.NewWatcher(membership.WatcherConfig{
		Seeds:    seeds,
		Interval: interval,
		OnChange: func(members []membership.Member) {
			ms := make([]store.MemberInfo, len(members))
			for i, m := range members {
				ms[i] = store.MemberInfo{ID: m.ID, Addr: m.Addr}
			}
			if err := c.SetMembers(ms); err != nil {
				log.Printf("collectagent: applying membership change: %v", err)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	w.Start()
	return w, nil
}

// TopicsPath returns the topic-map file under a data directory.
func TopicsPath(dir string) string { return filepath.Join(dir, "topics") }

// SaveTopics atomically replaces the data directory's topic map.
func SaveTopics(dir string, m *core.TopicMapper) error {
	return SaveTopicsFile(TopicsPath(dir), m)
}

// SaveTopicsFile writes the topic map to an arbitrary path with the
// same durability discipline as the run files (atomic replace with
// fsyncs). Without them a crash after the rename could commit an empty
// file, orphaning every stored SID.
func SaveTopicsFile(path string, m *core.TopicMapper) error {
	data := []byte(strings.Join(m.Export(), "\n") + "\n")
	return fsutil.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// LoadTopics imports a previously saved topic map; a missing file is a
// fresh database, not an error.
func LoadTopics(dir string, m *core.TopicMapper) error {
	return LoadTopicsFile(TopicsPath(dir), m)
}

// LoadTopicsFile imports the topic map at an arbitrary path (missing =
// fresh database). Temp files a crashed save left next to it are
// removed — loading happens at startup, before any saver runs.
func LoadTopicsFile(path string, m *core.TopicMapper) error {
	fsutil.CleanTemps(path)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var lines []string
	for _, ln := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	return m.Import(lines)
}
