// Package store implements DCDB's Storage Backend: a distributed
// wide-column time-series store standing in for the Apache Cassandra
// deployment of the paper (§3.1, §4.3). Monitoring data is streamed in
// bulk and retrieved for long time spans, so the design follows the
// LSM-style write path of wide-column stores: inserts land in a
// per-sensor memtable and are periodically flushed into immutable sorted
// runs (SSTables); queries merge the memtable with all runs. Data points
// are <sensor, timestamp, reading> tuples keyed by the 128-bit SID.
//
// A Cluster distributes rows across Nodes using a pluggable partitioner.
// The hierarchical partitioner maps a sub-tree of the sensor hierarchy
// (a SID prefix) to a particular node, so a sensor's readings are stored
// on the server nearest to it and queries are routed directly — exactly
// the locality argument of §4.3. Replication provides redundancy.
//
// The memtable is lock-striped into shards keyed by SID hash so that
// concurrent inserts and queries for different sensors proceed without
// contention; the paper's sub-1% overhead claim (§4.2) depends on the
// ingest path scaling with cores rather than serializing on one lock.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/core"
)

// Backend is the storage interface the Collect Agent and libDCDB write
// to and query from. Both Node and Cluster implement it, which is what
// lets the whole backend be swapped out (paper §5.1).
type Backend interface {
	// Insert stores one reading for the sensor. ttl of zero keeps the
	// reading forever.
	Insert(id core.SensorID, r core.Reading, ttl time.Duration) error
	// InsertBatch stores several readings of one sensor at once.
	InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error
	// Query returns the readings of a sensor with from <= ts <= to,
	// in timestamp order.
	Query(id core.SensorID, from, to int64) ([]core.Reading, error)
	// QueryPrefix returns readings of every sensor whose SID starts
	// with the given prefix (depth levels), keyed by SID.
	QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error)
	// DeleteBefore removes readings older than the cutoff for one
	// sensor (dcdbconfig's database-cleanup task).
	DeleteBefore(id core.SensorID, cutoff int64) error
	// Close releases resources.
	Close() error
}

// entry is one stored cell: timestamp, value, and absolute expiry
// (0 = never).
type entry struct {
	ts     int64
	val    float64
	expire int64
}

// memSeries is the in-memory write buffer of one sensor.
type memSeries struct {
	entries []entry
	sorted  bool
}

// run is one flushed sorted run of a sensor. min/max cache the run's
// timestamp bounds so a query window rejects a run by scanning the
// compact header array instead of dereferencing each run's entries.
type run struct {
	es       []entry
	min, max int64
}

// numShards is the lock-stripe count of a Node's memtable. A power of
// two so the shard selector is a mask; 16 stripes keep contention
// negligible up to typical server core counts without bloating small
// nodes.
const numShards = 16

// shard is one lock stripe of a Node: a slice of the memtable, its
// flushed runs, and a lazily maintained sorted SID index used by prefix
// queries.
type shard struct {
	mu      sync.RWMutex
	mem     map[core.SensorID]*memSeries
	memSize int

	// runs holds each sensor's flushed sorted runs (the SSTables of
	// the LSM design), oldest first. Keying runs by sensor — rather
	// than keeping per-flush tables each mapping every sensor — means
	// a query touches one map entry and then only its own sensor's
	// runs, so read cost does not degrade as flushes accumulate.
	runs        map[core.SensorID][]run
	flushedSize int

	// Lookaside for the write path: Pushers deliver readings in
	// per-sensor bursts, so consecutive inserts usually hit the same
	// series. Guarded by mu held exclusively.
	lastID core.SensorID
	last   *memSeries

	// index is the sorted list of SIDs present in mem or runs.
	// Rebuilt on demand when indexOK is false; the slice itself is
	// immutable once published, so readers may use it outside the
	// lock.
	index   []core.SensorID
	indexOK bool

	// Counters are striped per shard: a single node-wide counter
	// would put one contended cache line back into every insert.
	// The struct is exactly 128 bytes (two cache lines), so shards
	// in the array never false-share; keep it a 64-byte multiple
	// when adding fields.
	inserts int64        // guarded by mu (held exclusively on insert)
	queries atomic.Int64 // incremented under the shared read lock
}

// seriesFor returns the memtable series of id, creating it on first
// sight, via the one-entry lookaside. Caller holds mu exclusively.
func (sh *shard) seriesFor(id core.SensorID) *memSeries {
	if sh.last != nil && sh.lastID == id {
		return sh.last
	}
	s, ok := sh.mem[id]
	if !ok {
		s = &memSeries{sorted: true}
		sh.mem[id] = s
		sh.indexOK = false
	}
	sh.lastID, sh.last = id, s
	return s
}

// Node is a single storage server. It is safe for concurrent use.
type Node struct {
	shards    [numShards]shard
	flushSize int
	down      atomic.Bool

	prefixQueries atomic.Int64
}

// DefaultFlushSize is the node-wide number of memtable entries that
// triggers a flush into an SSTable.
const DefaultFlushSize = 1 << 16

// NewNode creates a storage node. flushSize <= 0 selects
// DefaultFlushSize. The budget is divided across the lock stripes so
// the node-wide memtable footprint stays what the caller configured.
func NewNode(flushSize int) *Node {
	if flushSize <= 0 {
		flushSize = DefaultFlushSize
	}
	perShard := flushSize / numShards
	if perShard < 1 {
		perShard = 1
	}
	n := &Node{flushSize: perShard}
	for i := range n.shards {
		n.shards[i].mem = make(map[core.SensorID]*memSeries)
		n.shards[i].runs = make(map[core.SensorID][]run)
		n.shards[i].indexOK = true
	}
	return n
}

// shardIndex selects the lock stripe of a SID with a cheap avalanche
// mix, so sensors spread evenly even when SIDs share a hierarchical
// prefix.
func shardIndex(id core.SensorID) int {
	h := id.Lo*0x9e3779b97f4a7c15 ^ id.Hi
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & (numShards - 1))
}

func (n *Node) shardOf(id core.SensorID) *shard { return &n.shards[shardIndex(id)] }

// SetDown marks the node unavailable; operations fail until revived.
// Used to exercise replication failover.
func (n *Node) SetDown(down bool) { n.down.Store(down) }

// ErrNodeDown is returned by operations on a node marked down.
var ErrNodeDown = fmt.Errorf("store: node is down")

// Insert implements Backend. It is the per-message hot path, so it
// avoids the slice round-trip through InsertBatch.
func (n *Node) Insert(id core.SensorID, r core.Reading, ttl time.Duration) error {
	if n.down.Load() {
		return ErrNodeDown
	}
	var expire int64
	if ttl > 0 {
		expire = time.Now().Add(ttl).UnixNano()
	}
	sh := n.shardOf(id)
	sh.mu.Lock()
	s := sh.seriesFor(id)
	if s.sorted && len(s.entries) > 0 && r.Timestamp < s.entries[len(s.entries)-1].ts {
		s.sorted = false
	}
	s.entries = append(s.entries, entry{ts: r.Timestamp, val: r.Value, expire: expire})
	sh.memSize++
	sh.inserts++
	if sh.memSize >= n.flushSize {
		sh.flushLocked()
	}
	sh.mu.Unlock()
	return nil
}

// InsertBatch implements Backend.
func (n *Node) InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error {
	if len(rs) == 0 {
		return nil
	}
	if n.down.Load() {
		return ErrNodeDown
	}
	// The TTL clock is read once per batch, outside the lock.
	var expire int64
	if ttl > 0 {
		expire = time.Now().Add(ttl).UnixNano()
	}
	sh := n.shardOf(id)
	sh.mu.Lock()
	s := sh.seriesFor(id)
	for _, r := range rs {
		if s.sorted && len(s.entries) > 0 && r.Timestamp < s.entries[len(s.entries)-1].ts {
			s.sorted = false
		}
		s.entries = append(s.entries, entry{ts: r.Timestamp, val: r.Value, expire: expire})
	}
	sh.memSize += len(rs)
	sh.inserts += int64(len(rs))
	if sh.memSize >= n.flushSize {
		sh.flushLocked()
	}
	sh.mu.Unlock()
	return nil
}

// Flush forces every shard's memtable into an SSTable.
func (n *Node) Flush() {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		sh.flushLocked()
		sh.mu.Unlock()
	}
}

func (sh *shard) flushLocked() {
	if sh.memSize == 0 {
		return
	}
	for id, s := range sh.mem {
		if len(s.entries) == 0 {
			continue
		}
		es := s.entries
		if !s.sorted {
			sort.Slice(es, func(i, j int) bool { return es[i].ts < es[j].ts })
		}
		sh.runs[id] = append(sh.runs[id], run{es: es, min: es[0].ts, max: es[len(es)-1].ts})
		// The series object stays in the memtable with a fresh
		// buffer of the same capacity: the SID set is unchanged
		// (no index invalidation) and steady-state ingest never
		// pays slice-growth copies again.
		s.entries = make([]entry, 0, cap(es))
		s.sorted = true
	}
	sh.flushedSize += sh.memSize
	sh.memSize = 0
}

// Query implements Backend.
func (n *Node) Query(id core.SensorID, from, to int64) ([]core.Reading, error) {
	if n.down.Load() {
		return nil, ErrNodeDown
	}
	now := time.Now().UnixNano()
	sh := n.shardOf(id)
	sh.queries.Add(1)
	sh.mu.RLock()
	out := sh.queryLocked(id, from, to, now)
	sh.mu.RUnlock()
	return out, nil
}

// queryLocked merges the sorted runs of one sensor. Caller holds at
// least a read lock on the shard.
func (sh *shard) queryLocked(id core.SensorID, from, to, now int64) []core.Reading {
	var mem []entry
	if s, ok := sh.mem[id]; ok && len(s.entries) > 0 {
		mem = s.entries
		if !s.sorted {
			mem = append([]entry(nil), s.entries...)
			sort.Slice(mem, func(i, j int) bool { return mem[i].ts < mem[j].ts })
		}
	}
	return mergeRuns(sh.runs[id], mem, from, to, now)
}

// mergeRuns performs a k-way heap merge over time-sorted runs, dropping
// expired entries and collapsing duplicate timestamps so the newest run
// (highest index — flushed runs are ordered oldest first, the memtable
// run is newest) wins. Each run is first narrowed to [from, to] by
// binary search; flushed is read-only and never copied, and runs whose
// cached [min, max] bounds miss the window are rejected from the
// header scan alone.
func mergeRuns(flushed []run, mem []entry, from, to, now int64) []core.Reading {
	total := 0
	var narrowed [][]entry
	narrow := func(es []entry) {
		lo := sort.Search(len(es), func(i int) bool { return es[i].ts >= from })
		hi := sort.Search(len(es), func(i int) bool { return es[i].ts > to })
		if lo < hi {
			narrowed = append(narrowed, es[lo:hi])
			total += hi - lo
		}
	}
	for _, r := range flushed {
		if r.min > to || r.max < from {
			continue
		}
		narrow(r.es)
	}
	if len(mem) > 0 && mem[0].ts <= to && mem[len(mem)-1].ts >= from {
		narrow(mem)
	}
	if len(narrowed) == 0 {
		return nil
	}
	// Sensors usually emit monotonically increasing timestamps, so
	// consecutive runs rarely overlap: when every run ends at or
	// before the next one starts, plain concatenation yields sorted
	// output and the heap is skipped entirely.
	sequential := true
	for i := 1; i < len(narrowed); i++ {
		prev := narrowed[i-1]
		if prev[len(prev)-1].ts > narrowed[i][0].ts {
			sequential = false
			break
		}
	}
	if sequential {
		out := make([]core.Reading, 0, total)
		for _, es := range narrowed {
			for _, e := range es {
				if e.expire != 0 && e.expire <= now {
					continue
				}
				if len(out) > 0 && out[len(out)-1].Timestamp == e.ts {
					out[len(out)-1] = core.Reading{Timestamp: e.ts, Value: e.val}
				} else {
					out = append(out, core.Reading{Timestamp: e.ts, Value: e.val})
				}
			}
		}
		return out
	}

	// cursor walks one run; the heap orders cursors by (next
	// timestamp, run index) so equal timestamps pop oldest-run first
	// and the overwrite below leaves the newest run's value.
	type cursor struct {
		es  []entry
		pos int
		run int
	}
	h := make([]cursor, 0, len(narrowed))
	less := func(a, b cursor) bool {
		at, bt := a.es[a.pos].ts, b.es[b.pos].ts
		return at < bt || (at == bt && a.run < b.run)
	}
	push := func(c cursor) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(h) && less(h[l], h[s]) {
				s = l
			}
			if r < len(h) && less(h[r], h[s]) {
				s = r
			}
			if s == i {
				break
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
	}
	for run, es := range narrowed {
		push(cursor{es: es, run: run})
	}
	out := make([]core.Reading, 0, total)
	for len(h) > 0 {
		c := h[0]
		e := c.es[c.pos]
		if c.pos+1 < len(c.es) {
			h[0].pos++
			siftDown()
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			siftDown()
		}
		if e.expire != 0 && e.expire <= now {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Timestamp == e.ts {
			out[len(out)-1] = core.Reading{Timestamp: e.ts, Value: e.val}
		} else {
			out = append(out, core.Reading{Timestamp: e.ts, Value: e.val})
		}
	}
	return out
}

// snapshotIndex returns the shard's sorted SID list, rebuilding it if
// stale. The returned slice is immutable.
func (sh *shard) snapshotIndex() []core.SensorID {
	sh.mu.RLock()
	if sh.indexOK {
		idx := sh.index
		sh.mu.RUnlock()
		return idx
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	if !sh.indexOK {
		set := make(map[core.SensorID]struct{}, len(sh.mem)+len(sh.runs))
		for id := range sh.mem {
			set[id] = struct{}{}
		}
		for id := range sh.runs {
			set[id] = struct{}{}
		}
		idx := make([]core.SensorID, 0, len(set))
		for id := range set {
			idx = append(idx, id)
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i].Compare(idx[j]) < 0 })
		sh.index = idx
		sh.indexOK = true
	}
	idx := sh.index
	sh.mu.Unlock()
	return idx
}

// prefixRange returns the half-open SID interval covering every sensor
// in the subtree, and whether the interval is bounded above (an
// all-ones prefix extends to the end of the keyspace).
func prefixRange(prefix core.SensorID, depth int) (lo, hi core.SensorID, bounded bool) {
	if depth >= core.MaxTopicLevels {
		depth = core.MaxTopicLevels
	}
	bits := uint(16 * (core.MaxTopicLevels - depth)) // 0..128
	var incHi, incLo uint64
	switch {
	case bits >= 128:
		return prefix, core.SensorID{}, false // whole keyspace
	case bits >= 64:
		incHi = 1 << (bits - 64)
	default:
		incLo = 1 << bits
	}
	hi.Lo = prefix.Lo + incLo
	carry := uint64(0)
	if hi.Lo < prefix.Lo {
		carry = 1
	}
	hi.Hi = prefix.Hi + incHi + carry
	// A wrapped 128-bit sum compares <= prefix: the subtree runs to
	// the end of the keyspace.
	if hi.Compare(prefix) <= 0 {
		return prefix, core.SensorID{}, false
	}
	return prefix, hi, true
}

// QueryPrefix implements Backend. Each shard is consulted once: its
// sorted SID index is range-scanned for the subtree (SIDs under one
// prefix are contiguous in SID order) and all matching sensors are read
// under a single lock acquisition.
func (n *Node) QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error) {
	if n.down.Load() {
		return nil, ErrNodeDown
	}
	if prefix.Prefix(depth) != prefix {
		// A prefix with bits set below the depth cut can match no
		// sensor.
		return map[core.SensorID][]core.Reading{}, nil
	}
	now := time.Now().UnixNano()
	lo, hi, bounded := prefixRange(prefix, depth)
	out := make(map[core.SensorID][]core.Reading)
	for i := range n.shards {
		sh := &n.shards[i]
		idx := sh.snapshotIndex()
		start := sort.Search(len(idx), func(i int) bool { return idx[i].Compare(lo) >= 0 })
		end := len(idx)
		if bounded {
			end = sort.Search(len(idx), func(i int) bool { return idx[i].Compare(hi) >= 0 })
		}
		if start >= end {
			continue
		}
		sh.mu.RLock()
		for _, id := range idx[start:end] {
			if rs := sh.queryLocked(id, from, to, now); len(rs) > 0 {
				out[id] = rs
			}
		}
		sh.mu.RUnlock()
	}
	n.prefixQueries.Add(1)
	return out, nil
}

// DeleteBefore implements Backend.
func (n *Node) DeleteBefore(id core.SensorID, cutoff int64) error {
	if n.down.Load() {
		return ErrNodeDown
	}
	sh := n.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.mem[id]; ok {
		kept := s.entries[:0]
		for _, e := range s.entries {
			if e.ts >= cutoff {
				kept = append(kept, e)
			}
		}
		sh.memSize -= len(s.entries) - len(kept)
		s.entries = kept
	}
	if rs, ok := sh.runs[id]; ok {
		kept := rs[:0]
		for _, r := range rs {
			// Runs are sorted: everything before the cutoff is a
			// prefix, dropped by reslicing without copying.
			lo := sort.Search(len(r.es), func(i int) bool { return r.es[i].ts >= cutoff })
			sh.flushedSize -= lo
			if lo < len(r.es) {
				es := r.es[lo:]
				kept = append(kept, run{es: es, min: es[0].ts, max: r.max})
			}
		}
		if len(kept) == 0 {
			delete(sh.runs, id)
			sh.indexOK = false
		} else {
			sh.runs[id] = kept
		}
	}
	return nil
}

// Compact merges each sensor's flushed runs into one and drops expired
// entries. It corresponds to the compaction task of dcdbconfig (paper
// §5.2).
func (n *Node) Compact() {
	now := time.Now().UnixNano()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		if len(sh.runs) == 0 {
			sh.mu.Unlock()
			continue
		}
		for id, rs := range sh.runs {
			total := 0
			for _, r := range rs {
				total += len(r.es)
			}
			merged := make([]entry, 0, total)
			for _, r := range rs {
				for _, e := range r.es {
					if e.expire != 0 && e.expire <= now {
						continue
					}
					merged = append(merged, e)
				}
			}
			// Stable: runs were concatenated oldest-first, so equal
			// timestamps keep the newest write last and query-time
			// dedup still prefers it.
			if !sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].ts < merged[j].ts }) {
				sort.SliceStable(merged, func(i, j int) bool { return merged[i].ts < merged[j].ts })
			}
			sh.flushedSize += len(merged) - total
			if len(merged) == 0 {
				delete(sh.runs, id)
			} else {
				sh.runs[id] = []run{{es: merged, min: merged[0].ts, max: merged[len(merged)-1].ts}}
			}
		}
		// Flush keeps series objects in the memtable to reuse their
		// buffers; compaction is where idle ones are retired, so
		// expired-only sensors really disappear and dead sensors
		// stop pinning capacity.
		for id, s := range sh.mem {
			if len(s.entries) == 0 {
				delete(sh.mem, id)
			}
		}
		sh.lastID, sh.last = core.SensorID{}, nil
		sh.indexOK = false // expired-only sensors disappear
		sh.mu.Unlock()
	}
}

// Stats reports cumulative insert/query counts and the resident entry
// count.
func (n *Node) Stats() (inserts, queries int64, entries int) {
	queries = n.prefixQueries.Load()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.RLock()
		entries += sh.memSize + sh.flushedSize
		inserts += sh.inserts
		sh.mu.RUnlock()
		queries += sh.queries.Load()
	}
	return inserts, queries, entries
}

// SensorIDs lists every SID present on the node.
func (n *Node) SensorIDs() []core.SensorID {
	var out []core.SensorID
	for i := range n.shards {
		out = append(out, n.shards[i].snapshotIndex()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Close implements Backend.
func (n *Node) Close() error { return nil }
