// Package store implements DCDB's Storage Backend: a distributed
// wide-column time-series store standing in for the Apache Cassandra
// deployment of the paper (§3.1, §4.3). Monitoring data is streamed in
// bulk and retrieved for long time spans, so the design follows the
// LSM-style write path of wide-column stores: inserts land in a
// per-sensor memtable and are periodically flushed into immutable sorted
// runs (SSTables); queries merge the memtable with all runs. Data points
// are <sensor, timestamp, reading> tuples keyed by the 128-bit SID.
//
// A Cluster distributes rows across Nodes using a pluggable partitioner.
// The hierarchical partitioner maps a sub-tree of the sensor hierarchy
// (a SID prefix) to a particular node, so a sensor's readings are stored
// on the server nearest to it and queries are routed directly — exactly
// the locality argument of §4.3. Replication provides redundancy.
//
// The memtable is lock-striped into shards keyed by SID hash so that
// concurrent inserts and queries for different sensors proceed without
// contention; the paper's sub-1% overhead claim (§4.2) depends on the
// ingest path scaling with cores rather than serializing on one lock.
package store

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/core"
)

// Backend is the storage interface the Collect Agent and libDCDB write
// to and query from. Both Node and Cluster implement it, which is what
// lets the whole backend be swapped out (paper §5.1).
type Backend interface {
	// Insert stores one reading for the sensor. ttl of zero keeps the
	// reading forever.
	Insert(id core.SensorID, r core.Reading, ttl time.Duration) error
	// InsertBatch stores several readings of one sensor at once.
	InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error
	// Query returns the readings of a sensor with from <= ts <= to,
	// in timestamp order.
	Query(id core.SensorID, from, to int64) ([]core.Reading, error)
	// QueryPrefix returns readings of every sensor whose SID starts
	// with the given prefix (depth levels), keyed by SID.
	QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error)
	// DeleteBefore removes readings older than the cutoff for one
	// sensor (dcdbconfig's database-cleanup task).
	DeleteBefore(id core.SensorID, cutoff int64) error
	// Close releases resources.
	Close() error
}

// entry is one stored cell: timestamp, value, absolute expiry
// (0 = never), and the coordinator-assigned write version (0 = legacy
// unversioned write). Query-time dedup resolves duplicate timestamps
// by highest version; equal versions fall back to newest-source-wins,
// which keeps the legacy all-zero behaviour byte-identical.
type entry struct {
	ts     int64
	val    float64
	expire int64
	ver    uint64
}

// memSeries is the in-memory write buffer of one sensor.
type memSeries struct {
	entries []entry
	sorted  bool
}

// run is one flushed sorted run of a sensor. min/max cache the run's
// timestamp bounds so a query window rejects a run by scanning the
// compact header array instead of dereferencing each run's entries.
// seq is the flush sequence that produced the run and ties it to the
// run file holding the same entries on durable nodes; per-sensor run
// lists are ordered by ascending seq (oldest first).
//
// A run is either hot (es resident, read in place) or cold (es nil,
// cold describing the v2 run-file blocks holding the entries; reads go
// through the node's block cache). Only the [min,max] bounds and the
// per-block index stay resident for a cold run — that is the
// resident-set bound. cut records a DeleteBefore applied to a cold run:
// the file still holds the deleted rows, so readers skip entries below
// it (hot runs are resliced instead and keep cut zero).
type run struct {
	es       []entry
	min, max int64
	seq      uint64
	cold     *coldRun
	cut      int64
}

// coldRun is the resident description of an evicted run: the refcounted
// file handle and this series' slice of the block index.
type coldRun struct {
	rf     *runFile
	blocks []blockMeta
	count  int
}

// numShards is the lock-stripe count of a Node's memtable. A power of
// two so the shard selector is a mask; 16 stripes keep contention
// negligible up to typical server core counts without bloating small
// nodes.
const numShards = 16

// shard is one lock stripe of a Node: a slice of the memtable, its
// flushed runs, and a lazily maintained sorted SID index used by prefix
// queries.
type shard struct {
	mu      sync.RWMutex
	mem     map[core.SensorID]*memSeries
	memSize int

	// runs holds each sensor's flushed sorted runs (the SSTables of
	// the LSM design), oldest first. Keying runs by sensor — rather
	// than keeping per-flush tables each mapping every sensor — means
	// a query touches one map entry and then only its own sensor's
	// runs, so read cost does not degrade as flushes accumulate.
	runs        map[core.SensorID][]run
	flushedSize int

	// Lookaside for the write path: Pushers deliver readings in
	// per-sensor bursts, so consecutive inserts usually hit the same
	// series. Guarded by mu held exclusively.
	lastID core.SensorID
	last   *memSeries

	// index is the sorted list of SIDs present in mem or runs.
	// Rebuilt on demand when indexOK is false; the slice itself is
	// immutable once published, so readers may use it outside the
	// lock.
	index   []core.SensorID
	indexOK bool

	// Counters are striped per shard: a single node-wide counter
	// would put one contended cache line back into every insert.
	inserts int64        // guarded by mu (held exclusively on insert)
	queries atomic.Int64 // incremented under the shared read lock

	// disk is the cold durable state, kept behind one pointer so the
	// shard struct stays a fixed, cache-line-friendly size; see the
	// padding note below.
	disk *shardDisk

	// The fields above total 136 bytes; the pad keeps the struct at
	// exactly 192 bytes (three cache lines), so shards in the array
	// never false-share their hot mu/counter lines. Keep the total a
	// 64-byte multiple when adding fields (checked by
	// TestShardSizeCacheAligned).
	_ [56]byte
}

// shardDisk is a shard's durable bookkeeping. All fields are guarded
// by the shard's mu unless noted. Allocated for every shard (durable
// or not) so flush sequence numbering is uniform.
type shardDisk struct {
	dir     string                  // shard-<i> directory
	nextSeq uint64                  // next flush/WAL sequence number
	wal     *wal                    // active WAL segment (nil once closed)
	files   []runFileMeta           // durable run files, ordered by maxSeq
	memSegs []string                // replayed segments whose data sits in the memtable
	tombs   map[core.SensorID]int64 // DeleteBefore cutoffs since the last flush
	walBuf  []byte                  // WAL record scratch, reused under mu
	delVer  uint64                  // bumped by DeleteBefore; aborts in-flight merges
	cmu     sync.Mutex              // serialises compactions of this shard
}

// seriesFor returns the memtable series of id, creating it on first
// sight, via the one-entry lookaside. Caller holds mu exclusively.
func (sh *shard) seriesFor(id core.SensorID) *memSeries {
	if sh.last != nil && sh.lastID == id {
		return sh.last
	}
	s, ok := sh.mem[id]
	if !ok {
		s = &memSeries{sorted: true}
		sh.mem[id] = s
		sh.indexOK = false
	}
	sh.lastID, sh.last = id, s
	return s
}

// Node is a single storage server. It is safe for concurrent use.
// A node is memory-only until Open points it at a data directory, after
// which every write is logged to a per-shard WAL before it is
// acknowledged, memtable flushes spill per-shard sorted run files, and
// a background goroutine compacts run files with size-tiered
// scheduling.
type Node struct {
	shards    [numShards]shard
	flushSize int
	down      atomic.Bool

	prefixQueries atomic.Int64

	// met is the node's self-monitoring registry and hot-path latency
	// samplers (metrics.go); always non-nil after NewNode.
	met *nodeMetrics

	// Durability plumbing; zero on memory-only nodes.
	dir    string
	opts   DiskOptions
	sp     *spiller
	stopBG chan struct{}
	bgWG   sync.WaitGroup
	closed atomic.Bool

	// cache is the node-wide decoded-block cache; non-nil exactly when
	// the node runs with a resident-set bound (DiskOptions.CacheBytes >
	// 0), in which case run data is evictable and cold reads decode
	// only the blocks a query touches.
	cache *blockCache
}

// durable reports whether the node is backed by a data directory.
func (n *Node) durable() bool { return n.dir != "" }

// DefaultFlushSize is the node-wide number of memtable entries that
// triggers a flush into an SSTable.
const DefaultFlushSize = 1 << 16

// NewNode creates a storage node. flushSize <= 0 selects
// DefaultFlushSize. The budget is divided across the lock stripes so
// the node-wide memtable footprint stays what the caller configured.
func NewNode(flushSize int) *Node {
	if flushSize <= 0 {
		flushSize = DefaultFlushSize
	}
	perShard := flushSize / numShards
	if perShard < 1 {
		perShard = 1
	}
	n := &Node{flushSize: perShard}
	n.met = newNodeMetrics(n)
	for i := range n.shards {
		n.shards[i].mem = make(map[core.SensorID]*memSeries)
		n.shards[i].runs = make(map[core.SensorID][]run)
		n.shards[i].indexOK = true
		n.shards[i].disk = &shardDisk{}
	}
	return n
}

// shardIndex selects the lock stripe of a SID with a cheap avalanche
// mix, so sensors spread evenly even when SIDs share a hierarchical
// prefix.
func shardIndex(id core.SensorID) int {
	h := id.Lo*0x9e3779b97f4a7c15 ^ id.Hi
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & (numShards - 1))
}

func (n *Node) shardOf(id core.SensorID) *shard { return &n.shards[shardIndex(id)] }

// SetDown marks the node unavailable; operations fail until revived.
// Used to exercise replication failover.
func (n *Node) SetDown(down bool) { n.down.Store(down) }

// ErrNodeDown is returned by operations on a node marked down.
var ErrNodeDown = fmt.Errorf("store: node is down")

// ErrNodeClosed is returned by writes to a durable node after Close.
var ErrNodeClosed = fmt.Errorf("store: node is closed")

// ErrNodeReadOnly is returned by writes to a node opened read-only.
var ErrNodeReadOnly = fmt.Errorf("store: node is read-only")

// walPend is a sync-every write's durability obligation: the WAL
// segment and record position that must be fsynced (via syncTo's group
// commit) before the write is acknowledged. Zero when no sync is owed
// (memory-only node or batched sync mode).
type walPend struct {
	w   *wal
	pos uint64
}

// logDurable appends a WAL record for the mutation. In sync-every mode
// it returns the record's durability obligation; the caller settles it
// with syncTo after releasing the shard lock, so concurrent writers
// group-commit into one fsync instead of serialising an fsync each
// under the lock. Caller holds sh.mu exclusively. No-op on memory-only
// nodes.
func (n *Node) logDurable(i int, encode func([]byte) []byte) (walPend, error) {
	sh := &n.shards[i]
	if !n.durable() {
		return walPend{}, nil
	}
	if n.opts.ReadOnly {
		return walPend{}, ErrNodeReadOnly
	}
	if sh.disk.wal == nil {
		return walPend{}, ErrNodeClosed
	}
	if sh.disk.wal.isBroken() {
		// Self-heal after a transient write/fsync failure: every
		// record applied from the broken segment is still in the
		// memtable, so parking the segment with the memtable's other
		// source segments (the next flush's run file covers them, and
		// until then recovery replays them) lets a fresh segment take
		// over instead of wedging the shard until restart.
		if err := n.rotateBrokenWALLocked(i); err != nil {
			return walPend{}, err
		}
		log.Printf("store: shard %d rotated a broken WAL segment", i)
	}
	sh.disk.walBuf = encode(sh.disk.walBuf)
	pos, err := sh.disk.wal.append(sh.disk.walBuf)
	if err != nil {
		return walPend{}, err
	}
	if n.opts.SyncInterval == 0 {
		return walPend{w: sh.disk.wal, pos: pos}, nil
	}
	return walPend{}, nil
}

// rotateBrokenWALLocked retires the active (broken) segment into the
// memtable's covered-segment set and opens a fresh one. Caller holds
// the shard's mu exclusively.
func (n *Node) rotateBrokenWALLocked(i int) error {
	sh := &n.shards[i]
	sh.disk.memSegs = append(sh.disk.memSegs, sh.disk.wal.path)
	sh.disk.wal.close() // best effort; the synced prefix is already on disk
	// The replacement gets a fresh sequence so its name cannot collide
	// with the broken file, which stays behind until a flush's run
	// file covers it; recovery replays both in sequence order.
	sh.disk.nextSeq++
	nw, err := createWAL(sh.disk.dir, sh.disk.nextSeq)
	if err != nil {
		sh.disk.wal = nil // fail closed; writes reject until reopen
		return err
	}
	nw.met = &n.met.wal
	sh.disk.wal = nw
	return nil
}

// Insert implements Backend. It is the per-message hot path, so it
// avoids the slice round-trip through InsertBatch.
//
// In sync-every mode the record is applied to the memtable before its
// fsync: the fsync happens outside the shard lock (group-committed
// across concurrent writers) and the insert returns only once it
// succeeded, so the acknowledgement guarantee is unchanged. A sync
// failure leaves the entry in the memtable unacknowledged — the same
// may-replay-after-crash status any in-flight write has.
func (n *Node) Insert(id core.SensorID, r core.Reading, ttl time.Duration) error {
	if n.down.Load() {
		return ErrNodeDown
	}
	var expire int64
	if ttl > 0 {
		expire = time.Now().Add(ttl).UnixNano()
	}
	i := shardIndex(id)
	start := n.met.insertStart(i)
	sh := &n.shards[i]
	sh.mu.Lock()
	pend, err := n.logDurable(i, func(buf []byte) []byte {
		return encodeWALInsert1(buf, id, r, expire)
	})
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	s := sh.seriesFor(id)
	if s.sorted && len(s.entries) > 0 && r.Timestamp < s.entries[len(s.entries)-1].ts {
		s.sorted = false
	}
	s.entries = append(s.entries, entry{ts: r.Timestamp, val: r.Value, expire: expire})
	sh.memSize++
	sh.inserts++
	n.met.armTick(i, sh.inserts-1, sh.inserts)
	var ferr error
	if sh.memSize >= n.flushSize {
		ferr = n.flushShardLocked(i)
	}
	sh.mu.Unlock()
	if pend.w != nil {
		if serr := pend.w.syncTo(pend.pos); serr != nil {
			return serr
		}
	}
	n.met.insertDone(i, start)
	return ferr
}

// InsertBatch implements Backend.
func (n *Node) InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error {
	if len(rs) == 0 {
		return nil
	}
	if n.down.Load() {
		return ErrNodeDown
	}
	// The TTL clock is read once per batch, outside the lock.
	var expire int64
	if ttl > 0 {
		expire = time.Now().Add(ttl).UnixNano()
	}
	i := shardIndex(id)
	start := n.met.insertStart(i)
	sh := &n.shards[i]
	sh.mu.Lock()
	// Batches are chunked so no record exceeds the replay-side bound
	// (walMaxRecord) — an oversized record would be rejected at
	// recovery and truncate every later record in the segment. All
	// chunks normally land in one segment; a mid-batch rotation of a
	// broken segment adds a second pend, and each owed segment is
	// synced below before the batch is acknowledged.
	var pends []walPend
	for off := 0; off < len(rs); off += walBatchChunk {
		chunk := rs[off:min(off+walBatchChunk, len(rs))]
		pend, err := n.logDurable(i, func(buf []byte) []byte {
			return encodeWALInsert(buf, id, chunk, expire)
		})
		if err != nil {
			// Nothing was applied to the memtable: the write is not
			// acknowledged (earlier chunks may replay after a crash,
			// like any unacknowledged write in flight).
			sh.mu.Unlock()
			return err
		}
		if pend.w != nil {
			if len(pends) > 0 && pends[len(pends)-1].w == pend.w {
				pends[len(pends)-1].pos = pend.pos
			} else {
				pends = append(pends, pend)
			}
		}
	}
	s := sh.seriesFor(id)
	for _, r := range rs {
		if s.sorted && len(s.entries) > 0 && r.Timestamp < s.entries[len(s.entries)-1].ts {
			s.sorted = false
		}
		s.entries = append(s.entries, entry{ts: r.Timestamp, val: r.Value, expire: expire})
	}
	sh.memSize += len(rs)
	sh.inserts += int64(len(rs))
	n.met.armTick(i, sh.inserts-int64(len(rs)), sh.inserts)
	var ferr error
	if sh.memSize >= n.flushSize {
		ferr = n.flushShardLocked(i)
	}
	sh.mu.Unlock()
	for _, pend := range pends {
		if serr := pend.w.syncTo(pend.pos); serr != nil {
			return serr
		}
	}
	n.met.insertDone(i, start)
	return ferr
}

// InsertVersioned stores versioned readings of one sensor. It is the
// coordinator-facing write path: Cluster assigns one monotonic version
// per logical write and fans it out here, and hint replay re-delivers
// the original version, so a replayed hint can never beat a later
// rewrite at query-time dedup. Expiry is absolute per reading (0 =
// never). Each chunk is WAL-logged as a type-3 record carrying the
// versions; plain Insert/InsertBatch writes keep their unversioned
// type-1 records and store version 0.
func (n *Node) InsertVersioned(id core.SensorID, vrs []VersionedReading) error {
	if len(vrs) == 0 {
		return nil
	}
	if n.down.Load() {
		return ErrNodeDown
	}
	i := shardIndex(id)
	start := n.met.insertStart(i)
	sh := &n.shards[i]
	sh.mu.Lock()
	var pends []walPend
	for off := 0; off < len(vrs); off += walBatchChunk {
		chunk := vrs[off:min(off+walBatchChunk, len(vrs))]
		pend, err := n.logDurable(i, func(buf []byte) []byte {
			return encodeWALInsertV(buf, id, chunk)
		})
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		if pend.w != nil {
			if len(pends) > 0 && pends[len(pends)-1].w == pend.w {
				pends[len(pends)-1].pos = pend.pos
			} else {
				pends = append(pends, pend)
			}
		}
	}
	s := sh.seriesFor(id)
	for _, r := range vrs {
		if s.sorted && len(s.entries) > 0 && r.Timestamp < s.entries[len(s.entries)-1].ts {
			s.sorted = false
		}
		s.entries = append(s.entries, entry{ts: r.Timestamp, val: r.Value, expire: r.Expire, ver: r.Version})
	}
	sh.memSize += len(vrs)
	sh.inserts += int64(len(vrs))
	n.met.armTick(i, sh.inserts-int64(len(vrs)), sh.inserts)
	var ferr error
	if sh.memSize >= n.flushSize {
		ferr = n.flushShardLocked(i)
	}
	sh.mu.Unlock()
	for _, pend := range pends {
		if serr := pend.w.syncTo(pend.pos); serr != nil {
			return serr
		}
	}
	n.met.insertDone(i, start)
	return ferr
}

// Flush forces every shard's memtable into a sorted run. On durable
// nodes the runs are additionally spilled to per-shard run files in the
// background; the error reports WAL-rotation failures.
func (n *Node) Flush() error {
	var firstErr error
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		if err := n.flushShardLocked(i); err != nil && firstErr == nil {
			firstErr = err
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// flushShardLocked moves shard i's memtable into an immutable in-memory
// run (immediately queryable) and, on durable nodes, hands the same
// entry slices to the background spiller for the run file write while
// rotating the WAL, so ingest never waits on run-file I/O. The closed
// WAL segment — together with any segments replayed into this memtable
// at Open — is deleted only once the spilled run file is durable.
// Caller holds sh.mu exclusively.
func (n *Node) flushShardLocked(i int) error {
	sh := &n.shards[i]
	if sh.memSize == 0 {
		return nil
	}
	seq := sh.disk.nextSeq
	sh.disk.nextSeq++
	var spillSeries map[core.SensorID][]entry
	if n.durable() {
		spillSeries = make(map[core.SensorID][]entry, len(sh.mem))
	}
	for id, s := range sh.mem {
		if len(s.entries) == 0 {
			continue
		}
		es := s.entries
		if !s.sorted {
			// Stable: duplicate timestamps must keep insertion order
			// so query-time dedup's last-wins picks the newest write.
			sort.SliceStable(es, func(i, j int) bool { return es[i].ts < es[j].ts })
		}
		sh.runs[id] = append(sh.runs[id], run{es: es, min: es[0].ts, max: es[len(es)-1].ts, seq: seq})
		if spillSeries != nil {
			spillSeries[id] = es
		}
		// The series object stays in the memtable with a fresh
		// buffer of the same capacity: the SID set is unchanged
		// (no index invalidation) and steady-state ingest never
		// pays slice-growth copies again.
		s.entries = make([]entry, 0, cap(es))
		s.sorted = true
	}
	sh.flushedSize += sh.memSize
	sh.memSize = 0
	if !n.durable() || sh.disk.wal == nil {
		// Memory-only, read-only, or already closed: the in-memory
		// run is all there is to do.
		return nil
	}
	// Rotate the WAL: the closed segment plus any replayed segments
	// cover exactly the data this flush spilled.
	covered := append(sh.disk.memSegs, sh.disk.wal.path)
	sh.disk.memSegs = nil
	cerr := sh.disk.wal.close()
	nw, err := createWAL(sh.disk.dir, sh.disk.nextSeq)
	if err != nil {
		// Fail the shard closed: with no segment to log to, further
		// durable writes must be rejected (logDurable checks for a
		// nil wal), not silently buffered into the closed file. No
		// spill was enqueued, so the covered segments are never
		// deleted and this flush stays recoverable from the WAL.
		sh.disk.wal = nil
		return err
	}
	nw.met = &n.met.wal
	sh.disk.wal = nw
	tombs := sh.disk.tombs
	sh.disk.tombs = nil
	n.sp.enqueue(spillJob{shard: i, seq: seq, series: spillSeries, tombs: tombs, covered: covered})
	return cerr
}

// Query implements Backend. The merge is pull-based (iter.go): the
// sensor's sources are snapshotted under the shard's read lock, then
// drained without it, so a cold run's disk reads never stall the
// shard's writers.
func (n *Node) Query(id core.SensorID, from, to int64) ([]core.Reading, error) {
	if n.down.Load() {
		return nil, ErrNodeDown
	}
	// The per-shard counter ticks once per Query call; QueryPrefix has
	// its own counter and its per-sensor queryAll calls stay silent,
	// matching the pre-streaming accounting.
	i := shardIndex(id)
	start := n.met.queryStart(n.shards[i].queries.Add(1))
	rs, err := n.queryAll(id, from, to, time.Now().UnixNano())
	n.met.queryDone(i, start)
	return rs, err
}

// snapshotIndex returns the shard's sorted SID list, rebuilding it if
// stale. The returned slice is immutable.
func (sh *shard) snapshotIndex() []core.SensorID {
	sh.mu.RLock()
	if sh.indexOK {
		idx := sh.index
		sh.mu.RUnlock()
		return idx
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	if !sh.indexOK {
		set := make(map[core.SensorID]struct{}, len(sh.mem)+len(sh.runs))
		for id := range sh.mem {
			set[id] = struct{}{}
		}
		for id := range sh.runs {
			set[id] = struct{}{}
		}
		idx := make([]core.SensorID, 0, len(set))
		for id := range set {
			idx = append(idx, id)
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i].Compare(idx[j]) < 0 })
		sh.index = idx
		sh.indexOK = true
	}
	idx := sh.index
	sh.mu.Unlock()
	return idx
}

// prefixRange returns the half-open SID interval covering every sensor
// in the subtree, and whether the interval is bounded above (an
// all-ones prefix extends to the end of the keyspace).
func prefixRange(prefix core.SensorID, depth int) (lo, hi core.SensorID, bounded bool) {
	if depth >= core.MaxTopicLevels {
		depth = core.MaxTopicLevels
	}
	bits := uint(16 * (core.MaxTopicLevels - depth)) // 0..128
	var incHi, incLo uint64
	switch {
	case bits >= 128:
		return prefix, core.SensorID{}, false // whole keyspace
	case bits >= 64:
		incHi = 1 << (bits - 64)
	default:
		incLo = 1 << bits
	}
	hi.Lo = prefix.Lo + incLo
	carry := uint64(0)
	if hi.Lo < prefix.Lo {
		carry = 1
	}
	hi.Hi = prefix.Hi + incHi + carry
	// A wrapped 128-bit sum compares <= prefix: the subtree runs to
	// the end of the keyspace.
	if hi.Compare(prefix) <= 0 {
		return prefix, core.SensorID{}, false
	}
	return prefix, hi, true
}

// QueryPrefix implements Backend. Each shard is consulted once: its
// sorted SID index is range-scanned for the subtree (SIDs under one
// prefix are contiguous in SID order) and all matching sensors are read
// under a single lock acquisition.
func (n *Node) QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error) {
	if n.down.Load() {
		return nil, ErrNodeDown
	}
	if prefix.Prefix(depth) != prefix {
		// A prefix with bits set below the depth cut can match no
		// sensor.
		return map[core.SensorID][]core.Reading{}, nil
	}
	now := time.Now().UnixNano()
	lo, hi, bounded := prefixRange(prefix, depth)
	out := make(map[core.SensorID][]core.Reading)
	for i := range n.shards {
		sh := &n.shards[i]
		idx := sh.snapshotIndex()
		start := sort.Search(len(idx), func(i int) bool { return idx[i].Compare(lo) >= 0 })
		end := len(idx)
		if bounded {
			end = sort.Search(len(idx), func(i int) bool { return idx[i].Compare(hi) >= 0 })
		}
		if start >= end {
			continue
		}
		for _, id := range idx[start:end] {
			rs, err := n.queryAll(id, from, to, now)
			if err != nil {
				return nil, err
			}
			if len(rs) > 0 {
				out[id] = rs
			}
		}
	}
	n.prefixQueries.Add(1)
	return out, nil
}

// DeleteBefore implements Backend. On durable nodes the delete is
// WAL-logged and recorded as a tombstone carried by the next run file,
// so it survives a crash even though older run files still hold the
// deleted rows (recovery re-applies tombstones to older files).
func (n *Node) DeleteBefore(id core.SensorID, cutoff int64) error {
	if n.down.Load() {
		return ErrNodeDown
	}
	i := shardIndex(id)
	sh := &n.shards[i]
	sh.mu.Lock()
	pend, err := n.logDurable(i, func(buf []byte) []byte {
		return encodeWALDelete(buf, id, cutoff)
	})
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if n.durable() {
		if sh.disk.tombs == nil {
			sh.disk.tombs = make(map[core.SensorID]int64)
		}
		if cutoff > sh.disk.tombs[id] {
			sh.disk.tombs[id] = cutoff
		}
	}
	// Invalidate in-flight copy-aside compactions: their input
	// snapshot predates this delete.
	sh.disk.delVer++
	sh.cutMemLocked(id, cutoff)
	sh.cutRunsLocked(id, cutoff, ^uint64(0))
	sh.mu.Unlock()
	if pend.w != nil {
		return pend.w.syncTo(pend.pos)
	}
	return nil
}

// cutMemLocked drops memtable entries of id older than cutoff. Caller
// holds mu exclusively.
func (sh *shard) cutMemLocked(id core.SensorID, cutoff int64) {
	s, ok := sh.mem[id]
	if !ok {
		return
	}
	kept := s.entries[:0]
	for _, e := range s.entries {
		if e.ts >= cutoff {
			kept = append(kept, e)
		}
	}
	sh.memSize -= len(s.entries) - len(kept)
	s.entries = kept
}

// cutRunsLocked drops entries of id older than cutoff from runs with
// seq < beforeSeq (recovery applies a tombstone only to runs that
// predate it; live deletes pass the maximum). Caller holds mu
// exclusively.
func (sh *shard) cutRunsLocked(id core.SensorID, cutoff int64, beforeSeq uint64) {
	rs, ok := sh.runs[id]
	if !ok {
		return
	}
	kept := rs[:0]
	for _, r := range rs {
		if r.seq >= beforeSeq {
			kept = append(kept, r)
			continue
		}
		if r.cold != nil {
			// The file keeps the deleted rows; drop wholly-covered
			// blocks from the resident index and record the cutoff so
			// readers skip the straddling block's older entries.
			bs := r.cold.blocks
			lo := sort.Search(len(bs), func(i int) bool { return bs[i].max >= cutoff })
			if lo == len(bs) {
				sh.flushedSize -= r.cold.count
				continue // every block deleted: the run disappears
			}
			if lo > 0 || cutoff > r.cut {
				dropped := 0
				for _, m := range bs[:lo] {
					dropped += int(m.count)
				}
				sh.flushedSize -= dropped
				nc := &coldRun{rf: r.cold.rf, blocks: bs[lo:], count: r.cold.count - dropped}
				min := r.min
				if cutoff > min {
					// cutoff is a valid lower bound for the surviving
					// entries, keeping window rejection safe.
					min = cutoff
				}
				cut := r.cut
				if cutoff > cut {
					cut = cutoff
				}
				r = run{min: min, max: r.max, seq: r.seq, cold: nc, cut: cut}
			}
			kept = append(kept, r)
			continue
		}
		// Hot runs are sorted: everything before the cutoff is a
		// prefix, dropped by reslicing without copying.
		lo := sort.Search(len(r.es), func(i int) bool { return r.es[i].ts >= cutoff })
		sh.flushedSize -= lo
		if lo < len(r.es) {
			es := r.es[lo:]
			kept = append(kept, run{es: es, min: es[0].ts, max: r.max, seq: r.seq})
		}
	}
	if len(kept) == 0 {
		delete(sh.runs, id)
		sh.indexOK = false
	} else {
		sh.runs[id] = kept
	}
}

// Compact merges each sensor's flushed runs into one and drops expired
// entries. It corresponds to the compaction task of dcdbconfig (paper
// §5.2). On durable nodes this is a full copy-aside merge of every run
// file (queries and ingest proceed while the merged file is written);
// incremental size-tiered merges additionally run continuously in the
// background without being asked.
func (n *Node) Compact() {
	if n.durable() && n.opts.ReadOnly {
		// A read-only node must not rewrite files — and its cold runs
		// have no resident entries to merge in memory either.
		return
	}
	if n.durable() {
		// Wait for pending spills so the full window covers every
		// flushed run; runs created by flushes racing past this point
		// keep their own files and are picked up by the next merge.
		n.sp.waitIdle()
		for i := range n.shards {
			sh := &n.shards[i]
			sh.disk.cmu.Lock()
			n.compactWindow(i, true)
			sh.disk.cmu.Unlock()
			n.retireIdleSeries(sh)
		}
		return
	}
	now := time.Now().UnixNano()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		if len(sh.runs) == 0 {
			sh.mu.Unlock()
			n.retireIdleSeries(sh)
			continue
		}
		for id, rs := range sh.runs {
			total := 0
			parts := make([][]entry, len(rs))
			for k, r := range rs {
				total += len(r.es)
				parts[k] = r.es
			}
			merged := mergeParts(parts, now)
			sh.flushedSize += len(merged) - total
			if len(merged) == 0 {
				delete(sh.runs, id)
			} else {
				sh.runs[id] = []run{{es: merged, min: merged[0].ts, max: merged[len(merged)-1].ts, seq: rs[len(rs)-1].seq}}
			}
		}
		sh.indexOK = false // expired-only sensors disappear
		sh.mu.Unlock()
		n.retireIdleSeries(sh)
	}
}

// retireIdleSeries drops memtable series with no buffered entries.
// Flush keeps series objects in the memtable to reuse their buffers;
// compaction is where idle ones are retired, so expired-only sensors
// really disappear and dead sensors stop pinning capacity.
func (n *Node) retireIdleSeries(sh *shard) {
	sh.mu.Lock()
	for id, s := range sh.mem {
		if len(s.entries) == 0 {
			delete(sh.mem, id)
			sh.indexOK = false
		}
	}
	sh.lastID, sh.last = core.SensorID{}, nil
	sh.mu.Unlock()
}

// Stats reports cumulative insert/query counts and the resident entry
// count.
func (n *Node) Stats() (inserts, queries int64, entries int) {
	queries = n.prefixQueries.Load()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.RLock()
		entries += sh.memSize + sh.flushedSize
		inserts += sh.inserts
		sh.mu.RUnlock()
		queries += sh.queries.Load()
	}
	return inserts, queries, entries
}

// SensorIDs lists every SID present on the node.
func (n *Node) SensorIDs() []core.SensorID {
	var out []core.SensorID
	for i := range n.shards {
		out = append(out, n.shards[i].snapshotIndex()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Close implements Backend. On durable nodes it stops the background
// compactor and WAL syncer, flushes the memtable, waits for every
// spill to reach disk, and closes the WAL segments; further writes
// return ErrNodeClosed. Memory-only nodes close trivially.
func (n *Node) Close() error {
	if !n.durable() {
		return nil
	}
	if n.closed.Swap(true) {
		return nil
	}
	// stopBG is nil when Open failed during shard recovery; there is
	// nothing running, but the WALs opened so far still need closing.
	if n.stopBG != nil {
		close(n.stopBG)
		n.bgWG.Wait()
	}
	if n.opts.ReadOnly {
		n.releaseRunFiles()
		return nil // nothing on disk to settle, and no WALs to close
	}
	var firstErr error
	if n.sp != nil {
		firstErr = n.Flush()
		if err := n.sp.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		w := sh.disk.wal
		sh.disk.wal = nil
		sh.mu.Unlock()
		if w != nil {
			if err := w.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	n.releaseRunFiles()
	return firstErr
}

// releaseRunFiles drops the owning reference of every cold run-file
// handle. In-flight streams holding their own references keep reading
// until they close; no new reads start — the node is closed.
func (n *Node) releaseRunFiles() {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		for fi := range sh.disk.files {
			if rf := sh.disk.files[fi].rf; rf != nil {
				sh.disk.files[fi].rf = nil
				rf.release()
			}
		}
		sh.mu.Unlock()
	}
}

// Sync forces every shard's WAL to disk, making all writes accepted so
// far durable regardless of the configured SyncInterval.
func (n *Node) Sync() error {
	if !n.durable() {
		return nil
	}
	var firstErr error
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.RLock()
		w := sh.disk.wal
		sh.mu.RUnlock()
		if w == nil {
			continue
		}
		if err := w.sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
