// Package store implements DCDB's Storage Backend: a distributed
// wide-column time-series store standing in for the Apache Cassandra
// deployment of the paper (§3.1, §4.3). Monitoring data is streamed in
// bulk and retrieved for long time spans, so the design follows the
// LSM-style write path of wide-column stores: inserts land in a
// per-sensor memtable and are periodically flushed into immutable sorted
// runs (SSTables); queries merge the memtable with all runs. Data points
// are <sensor, timestamp, reading> tuples keyed by the 128-bit SID.
//
// A Cluster distributes rows across Nodes using a pluggable partitioner.
// The hierarchical partitioner maps a sub-tree of the sensor hierarchy
// (a SID prefix) to a particular node, so a sensor's readings are stored
// on the server nearest to it and queries are routed directly — exactly
// the locality argument of §4.3. Replication provides redundancy.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dcdb/internal/core"
)

// Backend is the storage interface the Collect Agent and libDCDB write
// to and query from. Both Node and Cluster implement it, which is what
// lets the whole backend be swapped out (paper §5.1).
type Backend interface {
	// Insert stores one reading for the sensor. ttl of zero keeps the
	// reading forever.
	Insert(id core.SensorID, r core.Reading, ttl time.Duration) error
	// InsertBatch stores several readings of one sensor at once.
	InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error
	// Query returns the readings of a sensor with from <= ts <= to,
	// in timestamp order.
	Query(id core.SensorID, from, to int64) ([]core.Reading, error)
	// QueryPrefix returns readings of every sensor whose SID starts
	// with the given prefix (depth levels), keyed by SID.
	QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error)
	// DeleteBefore removes readings older than the cutoff for one
	// sensor (dcdbconfig's database-cleanup task).
	DeleteBefore(id core.SensorID, cutoff int64) error
	// Close releases resources.
	Close() error
}

// entry is one stored cell: timestamp, value, and absolute expiry
// (0 = never).
type entry struct {
	ts     int64
	val    float64
	expire int64
}

// memSeries is the in-memory write buffer of one sensor.
type memSeries struct {
	entries []entry
	sorted  bool
}

// sstable is an immutable sorted run produced by a memtable flush.
type sstable struct {
	series map[core.SensorID][]entry
	size   int
}

// Node is a single storage server. It is safe for concurrent use.
type Node struct {
	mu        sync.RWMutex
	mem       map[core.SensorID]*memSeries
	memSize   int
	tables    []*sstable
	flushSize int
	down      bool

	inserts int64
	queries int64
}

// DefaultFlushSize is the number of memtable entries that triggers a
// flush into an SSTable.
const DefaultFlushSize = 1 << 16

// NewNode creates a storage node. flushSize <= 0 selects
// DefaultFlushSize.
func NewNode(flushSize int) *Node {
	if flushSize <= 0 {
		flushSize = DefaultFlushSize
	}
	return &Node{mem: make(map[core.SensorID]*memSeries), flushSize: flushSize}
}

// SetDown marks the node unavailable; operations fail until revived.
// Used to exercise replication failover.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	n.down = down
	n.mu.Unlock()
}

// ErrNodeDown is returned by operations on a node marked down.
var ErrNodeDown = fmt.Errorf("store: node is down")

// Insert implements Backend.
func (n *Node) Insert(id core.SensorID, r core.Reading, ttl time.Duration) error {
	return n.InsertBatch(id, []core.Reading{r}, ttl)
}

// InsertBatch implements Backend.
func (n *Node) InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error {
	if len(rs) == 0 {
		return nil
	}
	var expire int64
	if ttl > 0 {
		expire = time.Now().Add(ttl).UnixNano()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	s, ok := n.mem[id]
	if !ok {
		s = &memSeries{sorted: true}
		n.mem[id] = s
	}
	for _, r := range rs {
		if s.sorted && len(s.entries) > 0 && r.Timestamp < s.entries[len(s.entries)-1].ts {
			s.sorted = false
		}
		s.entries = append(s.entries, entry{ts: r.Timestamp, val: r.Value, expire: expire})
	}
	n.inserts += int64(len(rs))
	n.memSize += len(rs)
	if n.memSize >= n.flushSize {
		n.flushLocked()
	}
	return nil
}

// Flush forces the memtable into an SSTable.
func (n *Node) Flush() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flushLocked()
}

func (n *Node) flushLocked() {
	if n.memSize == 0 {
		return
	}
	t := &sstable{series: make(map[core.SensorID][]entry, len(n.mem)), size: n.memSize}
	for id, s := range n.mem {
		es := s.entries
		if !s.sorted {
			sort.Slice(es, func(i, j int) bool { return es[i].ts < es[j].ts })
		}
		t.series[id] = es
	}
	n.tables = append(n.tables, t)
	n.mem = make(map[core.SensorID]*memSeries)
	n.memSize = 0
}

// Query implements Backend.
func (n *Node) Query(id core.SensorID, from, to int64) ([]core.Reading, error) {
	now := time.Now().UnixNano()
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down {
		return nil, ErrNodeDown
	}
	n.queries++
	var out []core.Reading
	for _, t := range n.tables {
		collectEntries(&out, t.series[id], from, to, now)
	}
	if s, ok := n.mem[id]; ok {
		if !s.sorted {
			es := append([]entry(nil), s.entries...)
			sort.Slice(es, func(i, j int) bool { return es[i].ts < es[j].ts })
			collectEntries(&out, es, from, to, now)
		} else {
			collectEntries(&out, s.entries, from, to, now)
		}
	}
	// Runs are individually sorted but may interleave; merge by sort.
	sort.Slice(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return dedup(out), nil
}

// QueryPrefix implements Backend.
func (n *Node) QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error) {
	n.mu.RLock()
	ids := make(map[core.SensorID]struct{})
	if n.down {
		n.mu.RUnlock()
		return nil, ErrNodeDown
	}
	for id := range n.mem {
		if id.Prefix(depth) == prefix {
			ids[id] = struct{}{}
		}
	}
	for _, t := range n.tables {
		for id := range t.series {
			if id.Prefix(depth) == prefix {
				ids[id] = struct{}{}
			}
		}
	}
	n.mu.RUnlock()
	out := make(map[core.SensorID][]core.Reading, len(ids))
	for id := range ids {
		rs, err := n.Query(id, from, to)
		if err != nil {
			return nil, err
		}
		if len(rs) > 0 {
			out[id] = rs
		}
	}
	return out, nil
}

// DeleteBefore implements Backend.
func (n *Node) DeleteBefore(id core.SensorID, cutoff int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	if s, ok := n.mem[id]; ok {
		kept := s.entries[:0]
		for _, e := range s.entries {
			if e.ts >= cutoff {
				kept = append(kept, e)
			}
		}
		n.memSize -= len(s.entries) - len(kept)
		s.entries = kept
	}
	for _, t := range n.tables {
		if es, ok := t.series[id]; ok {
			var kept []entry
			for _, e := range es {
				if e.ts >= cutoff {
					kept = append(kept, e)
				}
			}
			t.size -= len(es) - len(kept)
			t.series[id] = kept
		}
	}
	return nil
}

// Compact merges all SSTables into one and drops expired entries. It
// corresponds to the compaction task of dcdbconfig (paper §5.2).
func (n *Node) Compact() {
	now := time.Now().UnixNano()
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.tables) == 0 {
		return
	}
	merged := &sstable{series: make(map[core.SensorID][]entry)}
	for _, t := range n.tables {
		for id, es := range t.series {
			for _, e := range es {
				if e.expire != 0 && e.expire <= now {
					continue
				}
				merged.series[id] = append(merged.series[id], e)
			}
		}
	}
	for id, es := range merged.series {
		sort.Slice(es, func(i, j int) bool { return es[i].ts < es[j].ts })
		merged.series[id] = es
		merged.size += len(es)
	}
	n.tables = []*sstable{merged}
}

// Stats reports cumulative insert/query counts and the resident entry
// count.
func (n *Node) Stats() (inserts, queries int64, entries int) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	entries = n.memSize
	for _, t := range n.tables {
		entries += t.size
	}
	return n.inserts, n.queries, entries
}

// SensorIDs lists every SID present on the node.
func (n *Node) SensorIDs() []core.SensorID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	set := make(map[core.SensorID]struct{})
	for id := range n.mem {
		set[id] = struct{}{}
	}
	for _, t := range n.tables {
		for id := range t.series {
			set[id] = struct{}{}
		}
	}
	out := make([]core.SensorID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Close implements Backend.
func (n *Node) Close() error { return nil }

func collectEntries(out *[]core.Reading, es []entry, from, to, now int64) {
	// Binary search to the first in-range entry; runs are sorted.
	lo := sort.Search(len(es), func(i int) bool { return es[i].ts >= from })
	for _, e := range es[lo:] {
		if e.ts > to {
			break
		}
		if e.expire != 0 && e.expire <= now {
			continue
		}
		*out = append(*out, core.Reading{Timestamp: e.ts, Value: e.val})
	}
}

// dedup collapses duplicate timestamps, keeping the last write.
func dedup(rs []core.Reading) []core.Reading {
	if len(rs) < 2 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		if r.Timestamp == out[len(out)-1].Timestamp {
			out[len(out)-1] = r
		} else {
			out = append(out, r)
		}
	}
	return out
}
