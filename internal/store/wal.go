package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dcdb/internal/core"
	"dcdb/internal/fsutil"
)

// Write-ahead log: one segment file per shard memtable generation
// (`shard-<i>/wal-<seq>.log`). Every mutation is appended as a CRC32-
// framed record before it touches the memtable, so a crash can lose at
// most the writes since the last fsync (none, with SyncInterval 0).
// At a flush the segment is closed and a fresh one opened; the closed
// segment is deleted only once the run file written from that memtable
// is durable. Recovery replays every surviving segment in sequence
// order and stops at the first torn or corrupt record, truncating the
// tail so a half-written record is never served.
//
// Record framing (integers big-endian):
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// Payloads:
//
//	type 1 (insert): u8 1 | sidHi u64 | sidLo u64 | count u32
//	                 | count × (ts i64 | val f64 | expire i64)
//	type 2 (delete): u8 2 | sidHi u64 | sidLo u64 | cutoff i64
//	type 3 (versioned insert):
//	                 u8 3 | sidHi u64 | sidLo u64 | count u32
//	                 | count × (ts i64 | val f64 | expire i64 | ver u64)
//
// Type-1 records replay as version 0, so segments written before the
// version bump recover unchanged.

const (
	walRecInsert  = 1
	walRecDelete  = 2
	walRecInsertV = 3

	// walMaxRecord bounds a record's payload so a corrupt length field
	// cannot drive a huge allocation during replay.
	walMaxRecord = 1 << 26

	// walBatchChunk caps the readings per insert record, keeping every
	// record the write path can produce far below walMaxRecord
	// (100k × 32 B + header ≈ 3.2 MB).
	walBatchChunk = 100_000
)

// walSink is the sink a WAL segment writes through. It is a seam for
// fault injection: recovery tests swap openWALSink for one that fails
// or tears writes mid-record.
type walSink interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// openWALSink creates the segment file. Overridable in tests; the
// default goes through fsutil.Disk so fault injection can target WAL
// writes and fsyncs by path.
var openWALSink = func(path string) (walSink, error) {
	return fsutil.Disk.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// wal is one active segment. The shard lock serialises append/rotate;
// mu additionally guards the buffered writer against the background
// syncer, and syncMu serialises fsyncs without blocking appends.
//
// appended/synced implement group commit for sync-every mode: append
// hands each record a position, and syncTo(pos) makes everything up to
// pos durable with one fsync shared by every writer whose record was
// already buffered when the fsync's leader flushed. Writers queue on
// syncMu; by the time a follower acquires it, the leader's fsync has
// usually covered its record and it returns without touching the disk.
type wal struct {
	mu       sync.Mutex
	syncMu   sync.Mutex
	sink     walSink
	bw       *bufio.Writer
	path     string
	seq      uint64
	broken   bool   // a write failed; the segment is no longer trusted
	appended uint64 // records appended so far (under mu)
	synced   uint64 // records known durable (under mu)

	// met points at the owning node's WAL counters (nil in isolated
	// tests); segments rotate, the counters persist across them.
	met *walMetrics
}

func createWAL(dir string, seq uint64) (*wal, error) {
	path := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
	sink, err := openWALSink(path)
	if err != nil {
		return nil, fmt.Errorf("store: creating WAL segment: %w", err)
	}
	return &wal{sink: sink, bw: bufio.NewWriter(sink), path: path, seq: seq}, nil
}

func (w *wal) lock()   { w.mu.Lock() }
func (w *wal) unlock() { w.mu.Unlock() }

// isBroken reports whether a write or sync on the segment has failed.
func (w *wal) isBroken() bool {
	w.lock()
	defer w.unlock()
	return w.broken
}

// append frames and buffers one record payload, returning the record's
// position for syncTo. The write is durable only after a sync covering
// the position.
func (w *wal) append(payload []byte) (uint64, error) {
	w.lock()
	defer w.unlock()
	if w.broken {
		return 0, fmt.Errorf("store: WAL segment %s is broken", w.path)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.broken = true
		return 0, err
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.broken = true
		return 0, err
	}
	w.appended++
	if w.met != nil {
		w.met.appends.Inc()
	}
	return w.appended, nil
}

// sync makes every record appended so far durable.
func (w *wal) sync() error {
	w.lock()
	pos := w.appended
	w.unlock()
	return w.syncTo(pos)
}

// syncTo makes the record at position pos (and everything before it)
// durable, group-committing concurrent writers: the first writer
// through syncMu becomes the fsync leader; it flushes the buffer —
// capturing every record appended by then, including the followers
// queued behind it — and fsyncs once. A follower acquiring syncMu
// afterwards observes synced >= pos and returns without touching the
// disk, so N concurrent sync-every writers pay ~1 fsync, not N.
//
// The buffer flush happens under mu, but the fsync itself runs outside
// it (serialised by syncMu) so a sync never stalls the shard's appends
// — and therefore its inserts and queries — for the fsync duration.
// Syncing a segment a concurrent flush already rotated out succeeds
// trivially: close flushed and fsynced everything, so the data is
// durable and the stale handle is not an error.
func (w *wal) syncTo(pos uint64) error {
	// Records at or below synced were fsynced before any later failure,
	// so they are durable even on a segment since marked broken.
	w.lock()
	if w.synced >= pos {
		w.unlock()
		return nil
	}
	if w.broken {
		w.unlock()
		return fmt.Errorf("store: WAL segment %s is broken", w.path)
	}
	w.unlock()

	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.lock()
	if w.synced >= pos {
		w.unlock()
		return nil
	}
	if w.broken {
		w.unlock()
		return fmt.Errorf("store: WAL segment %s is broken", w.path)
	}
	if err := w.bw.Flush(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			w.unlock()
			return nil
		}
		w.broken = true
		w.unlock()
		return err
	}
	target := w.appended
	w.unlock()

	err := w.sink.Sync()
	if err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil
		}
		w.lock()
		w.broken = true
		w.unlock()
		return err
	}
	w.lock()
	if target > w.synced {
		if w.met != nil {
			// One fsync covered target-synced records: the group-commit
			// batch size concurrent writers achieved.
			w.met.fsyncs.Inc()
			w.met.batch.Observe(int64(target - w.synced))
		}
		w.synced = target
	}
	w.unlock()
	return nil
}

// close flushes, fsyncs and closes the segment file. The file stays on
// disk until the flush that consumed it is durable. On success every
// appended record is durable, which lets an in-flight syncTo on the
// rotated-out handle take its fast path.
func (w *wal) close() error {
	w.lock()
	defer w.unlock()
	ferr := w.bw.Flush()
	serr := w.sink.Sync()
	cerr := w.sink.Close()
	if ferr == nil && serr == nil {
		w.synced = w.appended
	}
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// encodeWALInsert builds a type-1 record payload, reusing buf.
func encodeWALInsert(buf []byte, id core.SensorID, rs []core.Reading, expire int64) []byte {
	need := 1 + 16 + 4 + 24*len(rs)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	buf[0] = walRecInsert
	binary.BigEndian.PutUint64(buf[1:], id.Hi)
	binary.BigEndian.PutUint64(buf[9:], id.Lo)
	binary.BigEndian.PutUint32(buf[17:], uint32(len(rs)))
	off := 21
	for _, r := range rs {
		binary.BigEndian.PutUint64(buf[off:], uint64(r.Timestamp))
		binary.BigEndian.PutUint64(buf[off+8:], math.Float64bits(r.Value))
		binary.BigEndian.PutUint64(buf[off+16:], uint64(expire))
		off += 24
	}
	return buf
}

// encodeWALInsert1 is encodeWALInsert for the single-reading hot path,
// avoiding a slice allocation per insert.
func encodeWALInsert1(buf []byte, id core.SensorID, r core.Reading, expire int64) []byte {
	const need = 1 + 16 + 4 + 24
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	buf[0] = walRecInsert
	binary.BigEndian.PutUint64(buf[1:], id.Hi)
	binary.BigEndian.PutUint64(buf[9:], id.Lo)
	binary.BigEndian.PutUint32(buf[17:], 1)
	binary.BigEndian.PutUint64(buf[21:], uint64(r.Timestamp))
	binary.BigEndian.PutUint64(buf[29:], math.Float64bits(r.Value))
	binary.BigEndian.PutUint64(buf[37:], uint64(expire))
	return buf
}

// encodeWALInsertV builds a type-3 record payload, reusing buf. Unlike
// type 1, the expiry is absolute per reading and every reading carries
// its coordinator-assigned write version.
func encodeWALInsertV(buf []byte, id core.SensorID, vrs []VersionedReading) []byte {
	need := 1 + 16 + 4 + 32*len(vrs)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	buf[0] = walRecInsertV
	binary.BigEndian.PutUint64(buf[1:], id.Hi)
	binary.BigEndian.PutUint64(buf[9:], id.Lo)
	binary.BigEndian.PutUint32(buf[17:], uint32(len(vrs)))
	off := 21
	for _, r := range vrs {
		binary.BigEndian.PutUint64(buf[off:], uint64(r.Timestamp))
		binary.BigEndian.PutUint64(buf[off+8:], math.Float64bits(r.Value))
		binary.BigEndian.PutUint64(buf[off+16:], uint64(r.Expire))
		binary.BigEndian.PutUint64(buf[off+24:], r.Version)
		off += 32
	}
	return buf
}

// encodeWALDelete builds a type-2 record payload, reusing buf.
func encodeWALDelete(buf []byte, id core.SensorID, cutoff int64) []byte {
	const need = 1 + 16 + 8
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	buf[0] = walRecDelete
	binary.BigEndian.PutUint64(buf[1:], id.Hi)
	binary.BigEndian.PutUint64(buf[9:], id.Lo)
	binary.BigEndian.PutUint64(buf[17:], uint64(cutoff))
	return buf
}

// walOp is one replayed mutation.
type walOp struct {
	del       bool
	versioned bool // type-3 insert: entries carry write versions
	id        core.SensorID
	cutoff    int64   // delete only
	entries   []entry // insert only
}

// decodeWALRecords replays a segment's byte content. It stops silently
// at the first torn, truncated or corrupt record — the tail beyond it
// was never acknowledged — and returns how many bytes formed valid
// records so callers can truncate the file there.
func decodeWALRecords(data []byte) (ops []walOp, valid int) {
	off := 0
	for {
		if len(data)-off < 8 {
			return ops, off
		}
		plen := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if plen < 1 || plen > walMaxRecord || len(data)-off-8 < plen {
			return ops, off
		}
		payload := data[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return ops, off
		}
		op, ok := decodeWALPayload(payload)
		if !ok {
			return ops, off
		}
		ops = append(ops, op)
		off += 8 + plen
	}
}

func decodeWALPayload(p []byte) (walOp, bool) {
	switch p[0] {
	case walRecInsert:
		if len(p) < 21 {
			return walOp{}, false
		}
		id := core.SensorID{Hi: binary.BigEndian.Uint64(p[1:]), Lo: binary.BigEndian.Uint64(p[9:])}
		count := int(binary.BigEndian.Uint32(p[17:]))
		if count < 0 || len(p)-21 != 24*count {
			return walOp{}, false
		}
		es := make([]entry, count)
		off := 21
		for i := range es {
			es[i] = entry{
				ts:     int64(binary.BigEndian.Uint64(p[off:])),
				val:    math.Float64frombits(binary.BigEndian.Uint64(p[off+8:])),
				expire: int64(binary.BigEndian.Uint64(p[off+16:])),
			}
			off += 24
		}
		return walOp{id: id, entries: es}, true
	case walRecInsertV:
		if len(p) < 21 {
			return walOp{}, false
		}
		id := core.SensorID{Hi: binary.BigEndian.Uint64(p[1:]), Lo: binary.BigEndian.Uint64(p[9:])}
		count := int(binary.BigEndian.Uint32(p[17:]))
		if count < 0 || len(p)-21 != 32*count {
			return walOp{}, false
		}
		es := make([]entry, count)
		off := 21
		for i := range es {
			es[i] = entry{
				ts:     int64(binary.BigEndian.Uint64(p[off:])),
				val:    math.Float64frombits(binary.BigEndian.Uint64(p[off+8:])),
				expire: int64(binary.BigEndian.Uint64(p[off+16:])),
				ver:    binary.BigEndian.Uint64(p[off+24:]),
			}
			off += 32
		}
		return walOp{id: id, entries: es, versioned: true}, true
	case walRecDelete:
		if len(p) != 25 {
			return walOp{}, false
		}
		return walOp{
			del:    true,
			id:     core.SensorID{Hi: binary.BigEndian.Uint64(p[1:]), Lo: binary.BigEndian.Uint64(p[9:])},
			cutoff: int64(binary.BigEndian.Uint64(p[17:])),
		}, true
	}
	return walOp{}, false
}

// walSegSeq extracts the sequence number from a segment file name, or
// false if the name is not a WAL segment.
func walSegSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// replaySegment reads one segment from disk. With truncate set, a torn
// tail is cut off in place so the next open does not re-parse garbage;
// read-only recovery leaves the file as the crash left it.
func replaySegment(path string, truncate bool) ([]walOp, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ops, valid := decodeWALRecords(data)
	if truncate && valid < len(data) {
		// Failure to truncate is not fatal — replay will stop at the
		// same offset next time.
		_ = os.Truncate(path, int64(valid))
	}
	return ops, nil
}

// findWALSegments lists a shard directory's segments in sequence order.
func findWALSegments(dir string) ([]walSegRef, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegRef
	for _, de := range des {
		if seq, ok := walSegSeq(de.Name()); ok {
			segs = append(segs, walSegRef{seq: seq, path: filepath.Join(dir, de.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

type walSegRef struct {
	seq  uint64
	path string
}
