package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcdb/internal/core"
)

// Fuzz targets for every on-disk decoder: the run-file reader, the WAL
// replayer and the legacy snapshot loader all consume bytes that a
// crash, a torn write or a hostile file can corrupt arbitrarily, so
// none of them may panic, over-allocate from a forged count, or accept
// a record that fails its checksum.

// validRunFileBytes builds a well-formed run file through the real
// writer, used to seed the corpus.
func validRunFileBytes(t interface{ Fatal(...any) }) []byte {
	dir, err := os.MkdirTemp("", "dcdbfuzz")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	series := map[core.SensorID][]entry{
		{Hi: 1, Lo: 2}: {{ts: 5, val: 1.5}, {ts: 9, val: -2, expire: 77}},
		{Hi: 3, Lo: 4}: {{ts: 1, val: 42}},
	}
	tombs := map[core.SensorID]int64{{Hi: 1, Lo: 2}: 3}
	meta, err := writeRunFile(dir, 2, 4, series, tombs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func FuzzRunFileDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DCDBRUN1"))
	f.Add(validRunFileBytes(f))
	// A truncated valid file exercises every partial-header path.
	valid := validRunFileBytes(f)
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		rc, err := decodeRunFile(data)
		if err != nil {
			return
		}
		// Accepted files must uphold the reader invariants.
		if rc.minSeq > rc.maxSeq {
			t.Fatalf("accepted inverted span [%d,%d]", rc.minSeq, rc.maxSeq)
		}
		for id, es := range rc.series {
			if len(es) == 0 {
				t.Fatalf("accepted empty series %v", id)
			}
			for i := 1; i < len(es); i++ {
				if es[i].ts < es[i-1].ts {
					t.Fatalf("series %v unsorted at %d", id, i)
				}
			}
		}
	})
}

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	var seg bytes.Buffer
	{
		dir, err := os.MkdirTemp("", "dcdbfuzz")
		if err != nil {
			f.Fatal(err)
		}
		defer os.RemoveAll(dir)
		w, err := createWAL(dir, 1)
		if err != nil {
			f.Fatal(err)
		}
		id := core.SensorID{Hi: 7, Lo: 8}
		w.append(encodeWALInsert(nil, id, []core.Reading{{Timestamp: 1, Value: 2}, {Timestamp: 3, Value: 4}}, 0))
		w.append(encodeWALDelete(nil, id, 2))
		w.append(encodeWALInsert1(nil, id, core.Reading{Timestamp: 9, Value: 9}, 123))
		if err := w.close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.log"))
		if err != nil {
			f.Fatal(err)
		}
		seg.Write(data)
	}
	f.Add(seg.Bytes())
	f.Add(seg.Bytes()[:seg.Len()-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, valid := decodeWALRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		// Everything decoded must be replayable without panicking.
		n := NewNode(0)
		id := core.SensorID{}
		for _, op := range ops {
			if op.del {
				if err := n.DeleteBefore(op.id, op.cutoff); err != nil {
					t.Fatal(err)
				}
				continue
			}
			rs := make([]core.Reading, len(op.entries))
			for i, e := range op.entries {
				rs[i] = core.Reading{Timestamp: e.ts, Value: e.val}
			}
			if err := n.InsertBatch(op.id, rs, 0); err != nil {
				t.Fatal(err)
			}
			id = op.id
		}
		if _, err := n.Query(id, -1<<62, 1<<62); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzSnapshotLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DCDBSNAP"))
	var snap bytes.Buffer
	{
		n := NewNode(0)
		id := core.SensorID{Hi: 1, Lo: 1}
		n.Insert(id, core.Reading{Timestamp: 1, Value: 2}, 0)
		n.Insert(id, core.Reading{Timestamp: 5, Value: 6}, time.Hour)
		if err := n.Save(&snap); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(snap.Bytes())
	f.Add(snap.Bytes()[:snap.Len()-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		n := NewNode(0)
		if err := n.Load(bytes.NewReader(data)); err != nil {
			return
		}
		// A loaded node must be fully usable.
		for _, id := range n.SensorIDs() {
			rs, err := n.Query(id, -1<<62, 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(rs); i++ {
				if rs[i].Timestamp <= rs[i-1].Timestamp {
					t.Fatalf("loaded sensor %v serves unsorted readings", id)
				}
			}
		}
	})
}
