package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcdb/internal/core"
)

// Fuzz targets for every on-disk decoder: the run-file reader, the WAL
// replayer and the legacy snapshot loader all consume bytes that a
// crash, a torn write or a hostile file can corrupt arbitrarily, so
// none of them may panic, over-allocate from a forged count, or accept
// a record that fails its checksum.

// validRunFileBytes builds a well-formed run file through the real
// writer, used to seed the corpus.
func validRunFileBytes(t interface{ Fatal(...any) }) []byte {
	dir, err := os.MkdirTemp("", "dcdbfuzz")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	series := map[core.SensorID][]entry{
		{Hi: 1, Lo: 2}: {{ts: 5, val: 1.5}, {ts: 9, val: -2, expire: 77}},
		{Hi: 3, Lo: 4}: {{ts: 1, val: 42}},
	}
	tombs := map[core.SensorID]int64{{Hi: 1, Lo: 2}: 3}
	meta, err := writeRunFile(dir, 2, 4, series, tombs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// validRunFileV2Bytes builds a well-formed v2 (block-indexed) run file
// through the real writer, seeding the v2 half of the corpus.
func validRunFileV2Bytes(t interface{ Fatal(...any) }) []byte {
	dir, err := os.MkdirTemp("", "dcdbfuzz")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	long := make([]entry, blockEntries+30) // spans two blocks
	for i := range long {
		long[i] = entry{ts: int64(i) * 10, val: float64(i % 17)}
	}
	series := map[core.SensorID][]entry{
		{Hi: 1, Lo: 2}: {{ts: 5, val: 1.5}, {ts: 9, val: -2, expire: 77}},
		{Hi: 3, Lo: 4}: long,
	}
	tombs := map[core.SensorID]int64{{Hi: 1, Lo: 2}: 3}
	meta, _, err := writeRunFileV2(dir, 2, 4, series, tombs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func FuzzRunFileDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DCDBRUN1"))
	f.Add([]byte("DCDBRUN2"))
	f.Add(validRunFileBytes(f))
	// A truncated valid file exercises every partial-header path.
	valid := validRunFileBytes(f)
	f.Add(valid[:len(valid)/2])
	v2 := validRunFileV2Bytes(f)
	f.Add(v2)
	f.Add(v2[:len(v2)/2])      // torn data/index
	f.Add(v2[:len(v2)-8])      // torn footer
	f.Add(append(v2, 0, 1, 2)) // trailing garbage shifts the footer
	f.Fuzz(func(t *testing.T, data []byte) {
		rc, err := decodeRunFile(data)
		if err != nil {
			return
		}
		// Accepted files must uphold the reader invariants.
		if rc.minSeq > rc.maxSeq {
			t.Fatalf("accepted inverted span [%d,%d]", rc.minSeq, rc.maxSeq)
		}
		for id, es := range rc.series {
			if len(es) == 0 {
				t.Fatalf("accepted empty series %v", id)
			}
			for i := 1; i < len(es); i++ {
				if es[i].ts < es[i-1].ts {
					t.Fatalf("series %v unsorted at %d", id, i)
				}
			}
		}
	})
}

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	var seg bytes.Buffer
	{
		dir, err := os.MkdirTemp("", "dcdbfuzz")
		if err != nil {
			f.Fatal(err)
		}
		defer os.RemoveAll(dir)
		w, err := createWAL(dir, 1)
		if err != nil {
			f.Fatal(err)
		}
		id := core.SensorID{Hi: 7, Lo: 8}
		w.append(encodeWALInsert(nil, id, []core.Reading{{Timestamp: 1, Value: 2}, {Timestamp: 3, Value: 4}}, 0))
		w.append(encodeWALDelete(nil, id, 2))
		w.append(encodeWALInsert1(nil, id, core.Reading{Timestamp: 9, Value: 9}, 123))
		if err := w.close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.log"))
		if err != nil {
			f.Fatal(err)
		}
		seg.Write(data)
	}
	f.Add(seg.Bytes())
	f.Add(seg.Bytes()[:seg.Len()-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, valid := decodeWALRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		// Everything decoded must be replayable without panicking.
		n := NewNode(0)
		id := core.SensorID{}
		for _, op := range ops {
			if op.del {
				if err := n.DeleteBefore(op.id, op.cutoff); err != nil {
					t.Fatal(err)
				}
				continue
			}
			rs := make([]core.Reading, len(op.entries))
			for i, e := range op.entries {
				rs[i] = core.Reading{Timestamp: e.ts, Value: e.val}
			}
			if err := n.InsertBatch(op.id, rs, 0); err != nil {
				t.Fatal(err)
			}
			id = op.id
		}
		if _, err := n.Query(id, -1<<62, 1<<62); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzBlockDecode hammers the v2 block decoder directly: torn,
// bit-flipped or hostile block bytes (which the per-block CRC would
// normally reject before decode) must error — never panic, never
// over-allocate, never return unsorted data. A round-trip seed checks
// the valid path inside the fuzzer too.
func FuzzBlockDecode(f *testing.F) {
	f.Add([]byte{}, uint16(1))
	f.Add([]byte{0}, uint16(1))
	es := []entry{{ts: 1, val: 1.5}, {ts: 1, val: -2}, {ts: 50, val: 1.5, expire: 9}}
	f.Add(encodeBlock(nil, es), uint16(len(es)))
	long := make([]entry, blockEntries)
	for i := range long {
		long[i] = entry{ts: int64(i) * 1000, val: float64(i) * 0.5}
	}
	f.Add(encodeBlock(nil, long), uint16(len(long)))
	f.Fuzz(func(t *testing.T, data []byte, count16 uint16) {
		count := int(count16)
		out := make([]entry, 0, 64)
		if err := decodeBlock(data, count, &out); err != nil {
			if len(out) != 0 {
				t.Fatalf("failed decode left %d partial entries", len(out))
			}
			return
		}
		if len(out) != count {
			t.Fatalf("decoded %d entries, promised %d", len(out), count)
		}
		for i := 1; i < len(out); i++ {
			if out[i].ts < out[i-1].ts {
				t.Fatalf("accepted unsorted block at %d", i)
			}
		}
		// Whatever decodes must re-encode and decode to the same
		// entries (the codec is deterministic and lossless).
		re := encodeBlock(nil, out)
		var out2 []entry
		if err := decodeBlock(re, count, &out2); err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		for i := range out {
			if out[i].ts != out2[i].ts || out[i].expire != out2[i].expire ||
				math.Float64bits(out[i].val) != math.Float64bits(out2[i].val) {
				t.Fatalf("re-encode round trip diverged at %d: %+v vs %+v", i, out[i], out2[i])
			}
		}
	})
}

func FuzzSnapshotLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DCDBSNAP"))
	var snap bytes.Buffer
	{
		n := NewNode(0)
		id := core.SensorID{Hi: 1, Lo: 1}
		n.Insert(id, core.Reading{Timestamp: 1, Value: 2}, 0)
		n.Insert(id, core.Reading{Timestamp: 5, Value: 6}, time.Hour)
		if err := n.Save(&snap); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(snap.Bytes())
	f.Add(snap.Bytes()[:snap.Len()-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		n := NewNode(0)
		if err := n.Load(bytes.NewReader(data)); err != nil {
			return
		}
		// A loaded node must be fully usable.
		for _, id := range n.SensorIDs() {
			rs, err := n.Query(id, -1<<62, 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(rs); i++ {
				if rs[i].Timestamp <= rs[i-1].Timestamp {
					t.Fatalf("loaded sensor %v serves unsorted readings", id)
				}
			}
		}
	})
}
