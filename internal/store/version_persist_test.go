package store

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// Persistence-format coverage for write versions: the WAL's type-3
// record, the v2 block codec's version stream, and the v2 snapshot
// record — each with its backward-compat path (legacy data loads as
// version 0 and keeps losing to any versioned rewrite).

func TestWALVersionedRecordRoundtrip(t *testing.T) {
	id := sid(90, 1)
	vrs := []VersionedReading{
		{Timestamp: 1, Value: 1.5, Version: 100, Expire: 0},
		{Timestamp: 2, Value: -2.5, Version: 101, Expire: 1 << 40},
	}
	payload := encodeWALInsertV(nil, id, vrs)
	op, ok := decodeWALPayload(payload)
	if !ok {
		t.Fatal("versioned record did not decode")
	}
	if !op.versioned || op.id != id || len(op.entries) != 2 {
		t.Fatalf("decoded op %+v", op)
	}
	for i, e := range op.entries {
		if e.ts != vrs[i].Timestamp || e.val != vrs[i].Value ||
			e.ver != vrs[i].Version || e.expire != vrs[i].Expire {
			t.Fatalf("entry %d: %+v, want %+v", i, e, vrs[i])
		}
	}
	// Truncated type-3 payloads must be rejected, not mis-framed.
	if _, ok := decodeWALPayload(payload[:len(payload)-1]); ok {
		t.Fatal("truncated versioned record decoded")
	}
}

func TestWALReplayPreservesVersions(t *testing.T) {
	dir := t.TempDir()
	id := sid(90, 2)
	n := openedNode(t, dir, 0, DiskOptions{SyncInterval: 0, CompactInterval: -1})
	// The newer version first: only version-aware replay keeps it on
	// top after a restart.
	if err := n.InsertVersioned(id, []VersionedReading{{Timestamp: 7, Value: 2, Version: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertVersioned(id, []VersionedReading{{Timestamp: 7, Value: 1, Version: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n = openedNode(t, dir, 0, DiskOptions{SyncInterval: 0, CompactInterval: -1})
	defer n.Close()
	rs, err := n.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("replayed node serves %v; the WAL dropped the write versions", rs)
	}
	vrs, err := n.QueryVersioned(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(vrs) != 1 || vrs[0].Version != 9 {
		t.Fatalf("replayed versions %+v, want the surviving version 9", vrs)
	}
}

func TestBlockCodecVersionStream(t *testing.T) {
	es := []entry{
		{ts: 1, val: 1, ver: 1 << 40},
		{ts: 2, val: 2, ver: 1<<40 + 3},
		{ts: 3, val: 3, ver: 1 << 39, expire: 99}, // version delta goes negative
	}
	enc := encodeBlock(nil, es)
	var got []entry
	if err := decodeBlock(enc, len(es), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(es) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(es))
	}
	for i := range es {
		if got[i] != es[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], es[i])
		}
	}
	// All-version-0 blocks must not pay for (or advertise) the version
	// section: their encoding is bit-compatible with pre-version files.
	legacy := []entry{{ts: 1, val: 1}, {ts: 2, val: 2}}
	lenc := encodeBlock(nil, legacy)
	if lenc[0]&blockFlagVersion != 0 {
		t.Fatal("version flag set on an all-version-0 block")
	}
	var lgot []entry
	if err := decodeBlock(lenc, len(legacy), &lgot); err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		if lgot[i] != legacy[i] {
			t.Fatalf("legacy entry %d: %+v, want %+v", i, lgot[i], legacy[i])
		}
	}
}

func TestSnapshotRoundtripPreservesVersions(t *testing.T) {
	n := NewNode(0)
	id := sid(90, 3)
	if err := n.InsertVersioned(id, []VersionedReading{
		{Timestamp: 1, Value: 10, Version: 7},
		{Timestamp: 2, Value: 20, Version: 8},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	n2 := NewNode(0)
	if err := n2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	vrs, err := n2.QueryVersioned(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(vrs) != 2 || vrs[0].Version != 7 || vrs[1].Version != 8 {
		t.Fatalf("restored versions %+v", vrs)
	}
	// A stale-versioned rewrite into the restored node must still lose.
	if err := n2.InsertVersioned(id, []VersionedReading{{Timestamp: 2, Value: 99, Version: 5}}); err != nil {
		t.Fatal(err)
	}
	rs, err := n2.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Value != 20 {
		t.Fatalf("restored version lost to an older rewrite: %v", rs)
	}
}

func TestSnapshotV1LoadsAsVersionZero(t *testing.T) {
	// Hand-build a version-1 snapshot (24-byte records, no version
	// field): one sensor, two readings.
	id := sid(90, 4)
	var buf bytes.Buffer
	buf.WriteString("DCDBSNAP")
	binary.Write(&buf, binary.BigEndian, uint32(1)) // format version 1
	binary.Write(&buf, binary.BigEndian, uint64(1)) // one series
	binary.Write(&buf, binary.BigEndian, id.Hi)
	binary.Write(&buf, binary.BigEndian, id.Lo)
	binary.Write(&buf, binary.BigEndian, uint64(2)) // two entries
	for i, v := range []float64{1.25, 2.5} {
		binary.Write(&buf, binary.BigEndian, uint64(i+1))
		binary.Write(&buf, binary.BigEndian, math.Float64bits(v))
		binary.Write(&buf, binary.BigEndian, uint64(0)) // expire
	}
	n := NewNode(0)
	if err := n.Load(&buf); err != nil {
		t.Fatal(err)
	}
	vrs, err := n.QueryVersioned(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(vrs) != 2 || vrs[0].Version != 0 || vrs[1].Version != 0 {
		t.Fatalf("v1 snapshot loaded as %+v, want two version-0 readings", vrs)
	}
	if vrs[0].Value != 1.25 || vrs[1].Value != 2.5 {
		t.Fatalf("v1 snapshot values %+v", vrs)
	}
	// Legacy data loses to any versioned write at the same timestamp.
	if err := n.InsertVersioned(id, []VersionedReading{{Timestamp: 1, Value: 9, Version: 1}}); err != nil {
		t.Fatal(err)
	}
	rs, err := n.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Value != 9 {
		t.Fatalf("version-0 legacy entry outranked a versioned write: %v", rs)
	}
}

// TestQueryVersionedMatchesQuery: the versioned read path must agree
// with the plain read path on which write survives dedup — they share
// the resolution rule, not just the data.
func TestQueryVersionedMatchesQuery(t *testing.T) {
	n := NewNode(0)
	id := sid(90, 5)
	if err := n.InsertVersioned(id, []VersionedReading{
		{Timestamp: 1, Value: 1, Version: 3},
		{Timestamp: 2, Value: 2, Version: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertVersioned(id, []VersionedReading{{Timestamp: 1, Value: 5, Version: 2}}); err != nil {
		t.Fatal(err)
	}
	rs, err := n.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	vrs, err := n.QueryVersioned(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(vrs) {
		t.Fatalf("Query %d readings, QueryVersioned %d", len(rs), len(vrs))
	}
	for i := range rs {
		if rs[i].Timestamp != vrs[i].Timestamp || rs[i].Value != vrs[i].Value {
			t.Fatalf("position %d: Query %+v, QueryVersioned %+v", i, rs[i], vrs[i])
		}
	}
	if vrs[0].Version != 3 {
		t.Fatalf("surviving version %d, want 3", vrs[0].Version)
	}
}
