package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"dcdb/internal/core"
)

// Snapshot persistence: a node can serialise its full contents into a
// compact binary file and restore from it at start-up, giving the
// in-memory backend durability across daemon restarts. The format is a
// single flushed SSTable:
//
//	magic "DCDBSNAP" | version u32 | seriesCount u64
//	repeated: sidHi u64 | sidLo u64 | entryCount u64
//	          repeated: ts i64 | value f64 | expire i64
//
// All integers are big-endian.

var snapMagic = []byte("DCDBSNAP")

const snapVersion = 1

// Save writes the node's entire contents to w.
func (n *Node) Save(w io.Writer) error {
	n.mu.Lock()
	n.flushLocked()
	// Collect a stable view under the lock.
	merged := make(map[core.SensorID][]entry)
	for _, t := range n.tables {
		for id, es := range t.series {
			merged[id] = append(merged[id], es...)
		}
	}
	n.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(snapVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint64(len(merged))); err != nil {
		return err
	}
	for id, es := range merged {
		hdr := [24]byte{}
		binary.BigEndian.PutUint64(hdr[0:], id.Hi)
		binary.BigEndian.PutUint64(hdr[8:], id.Lo)
		binary.BigEndian.PutUint64(hdr[16:], uint64(len(es)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		var rec [24]byte
		for _, e := range es {
			binary.BigEndian.PutUint64(rec[0:], uint64(e.ts))
			binary.BigEndian.PutUint64(rec[8:], math.Float64bits(e.val))
			binary.BigEndian.PutUint64(rec[16:], uint64(e.expire))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load replaces the node's contents with a snapshot previously written
// by Save.
func (n *Node) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	if string(magic) != string(snapMagic) {
		return fmt.Errorf("store: not a DCDB snapshot")
	}
	var version uint32
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return err
	}
	if version != snapVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", version)
	}
	var count uint64
	if err := binary.Read(br, binary.BigEndian, &count); err != nil {
		return err
	}
	t := &sstable{series: make(map[core.SensorID][]entry, count)}
	var hdr [24]byte
	var rec [24]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return fmt.Errorf("store: truncated snapshot: %w", err)
		}
		id := core.SensorID{Hi: binary.BigEndian.Uint64(hdr[0:]), Lo: binary.BigEndian.Uint64(hdr[8:])}
		en := binary.BigEndian.Uint64(hdr[16:])
		es := make([]entry, 0, en)
		for j := uint64(0); j < en; j++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return fmt.Errorf("store: truncated snapshot: %w", err)
			}
			es = append(es, entry{
				ts:     int64(binary.BigEndian.Uint64(rec[0:])),
				val:    math.Float64frombits(binary.BigEndian.Uint64(rec[8:])),
				expire: int64(binary.BigEndian.Uint64(rec[16:])),
			})
		}
		t.series[id] = es
		t.size += len(es)
	}
	n.mu.Lock()
	n.mem = make(map[core.SensorID]*memSeries)
	n.memSize = 0
	n.tables = []*sstable{t}
	n.mu.Unlock()
	return nil
}

// SaveFile saves a snapshot atomically (write to temp file, rename).
func (n *Node) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := n.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a snapshot from a file.
func (n *Node) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Load(f)
}
