package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"dcdb/internal/core"
)

// Snapshot persistence: a node can serialise its full contents into a
// compact binary file and restore from it at start-up, giving the
// in-memory backend durability across daemon restarts. The format is a
// single flushed SSTable:
//
//	magic "DCDBSNAP" | version u32 | seriesCount u64
//	repeated: sidHi u64 | sidLo u64 | entryCount u64
//	          repeated: ts i64 | value f64 | expire i64 | ver u64
//
// All integers are big-endian. Format version 2 added the per-entry
// write version; version-1 snapshots (24-byte records) still load,
// with every entry restored as version 0.

var snapMagic = []byte("DCDBSNAP")

const snapVersion = 2

// Save writes the node's entire contents to w. Shards are collected
// one at a time so ingest never pauses globally; the snapshot is
// therefore a fuzzy cut across shards — fine for monitoring data,
// where series are independent and no cross-sensor invariant exists.
func (n *Node) Save(w io.Writer) error {
	merged := make(map[core.SensorID][]entry)
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		if err := n.flushShardLocked(i); err != nil {
			sh.mu.Unlock()
			return err
		}
		for id, rs := range sh.runs {
			for _, r := range rs {
				merged[id] = append(merged[id], r.es...)
			}
		}
		sh.mu.Unlock()
	}
	// Concatenated runs interleave in time; persist each series as one
	// sorted run so readers can rely on run order. Stable: runs were
	// appended oldest-first, so duplicate timestamps keep the newest
	// write last.
	for id, es := range merged {
		if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].ts < es[j].ts }) {
			sort.SliceStable(es, func(i, j int) bool { return es[i].ts < es[j].ts })
			merged[id] = es
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(snapVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint64(len(merged))); err != nil {
		return err
	}
	for id, es := range merged {
		hdr := [24]byte{}
		binary.BigEndian.PutUint64(hdr[0:], id.Hi)
		binary.BigEndian.PutUint64(hdr[8:], id.Lo)
		binary.BigEndian.PutUint64(hdr[16:], uint64(len(es)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		var rec [32]byte
		for _, e := range es {
			binary.BigEndian.PutUint64(rec[0:], uint64(e.ts))
			binary.BigEndian.PutUint64(rec[8:], math.Float64bits(e.val))
			binary.BigEndian.PutUint64(rec[16:], uint64(e.expire))
			binary.BigEndian.PutUint64(rec[24:], e.ver)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load replaces the node's contents with a snapshot previously written
// by Save. It is the legacy tool-side restore path and refuses durable
// nodes, whose contents are owned by their data directory.
func (n *Node) Load(r io.Reader) error {
	if n.durable() {
		return fmt.Errorf("store: cannot Load a snapshot into a durable node (%s)", n.dir)
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	if string(magic) != string(snapMagic) {
		return fmt.Errorf("store: not a DCDB snapshot")
	}
	var version uint32
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return err
	}
	if version != 1 && version != snapVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", version)
	}
	recSize := 32
	if version == 1 {
		recSize = 24 // pre-version records; entries load as version 0
	}
	var count uint64
	if err := binary.Read(br, binary.BigEndian, &count); err != nil {
		return err
	}
	// Decode into one run map per shard so the restored node has the
	// same striped layout as a freshly written one.
	var runs [numShards]map[core.SensorID][]run
	var sizes [numShards]int
	var hdr [24]byte
	var rec [32]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return fmt.Errorf("store: truncated snapshot: %w", err)
		}
		id := core.SensorID{Hi: binary.BigEndian.Uint64(hdr[0:]), Lo: binary.BigEndian.Uint64(hdr[8:])}
		en := binary.BigEndian.Uint64(hdr[16:])
		// The on-disk count is untrusted: cap the preallocation so a
		// corrupt header errors out as a truncated snapshot instead
		// of panicking in makeslice or OOMing.
		capHint := en
		if capHint > 1<<20 {
			capHint = 1 << 20
		}
		es := make([]entry, 0, capHint)
		for j := uint64(0); j < en; j++ {
			if _, err := io.ReadFull(br, rec[:recSize]); err != nil {
				return fmt.Errorf("store: truncated snapshot: %w", err)
			}
			e := entry{
				ts:     int64(binary.BigEndian.Uint64(rec[0:])),
				val:    math.Float64frombits(binary.BigEndian.Uint64(rec[8:])),
				expire: int64(binary.BigEndian.Uint64(rec[16:])),
			}
			if recSize == 32 {
				e.ver = binary.BigEndian.Uint64(rec[24:])
			}
			es = append(es, e)
		}
		// Snapshots written by older versions (or a fuzzy concurrent
		// Save) may interleave timestamps; the read path requires
		// sorted runs. Stable preserves file order for duplicates.
		if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].ts < es[j].ts }) {
			sort.SliceStable(es, func(i, j int) bool { return es[i].ts < es[j].ts })
		}
		idx := shardIndex(id)
		if runs[idx] == nil {
			runs[idx] = make(map[core.SensorID][]run)
		}
		if len(es) > 0 {
			runs[idx][id] = []run{{es: es, min: es[0].ts, max: es[len(es)-1].ts}}
			sizes[idx] += len(es)
		}
	}
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		sh.mem = make(map[core.SensorID]*memSeries)
		sh.memSize = 0
		sh.lastID, sh.last = core.SensorID{}, nil
		if runs[i] != nil {
			sh.runs = runs[i]
		} else {
			sh.runs = make(map[core.SensorID][]run)
		}
		sh.flushedSize = sizes[i]
		sh.index = nil
		sh.indexOK = false
		sh.mu.Unlock()
	}
	return nil
}

// SaveFile saves a snapshot atomically (write to temp file, rename).
func (n *Node) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := n.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a snapshot from a file.
func (n *Node) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Load(f)
}
