package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/faults"
	"dcdb/internal/fsutil"
)

// TestV1MigrationPreservesContents opens a node over legacy v1 run
// files and requires the one-shot migration to leave byte-verified v2
// files serving exactly the original data — including multi-block
// series, duplicate timestamps, and tombstone sections — and to be
// idempotent across reopens.
func TestV1MigrationPreservesContents(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	id := sid(7, 7)
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%02d", shardIndex(id)))
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	es := make([]entry, blockEntries*3+17) // force multiple v2 blocks
	for i := range es {
		es[i] = entry{ts: int64(i * 10), val: float64(i)}
	}
	// A second series with duplicate timestamps, expiries, and messy
	// values exercises migration fidelity without query-time dedup.
	messy := randomEntries(rng, blockEntries+9)
	meta, err := writeRunFile(shardDir, 1, 2,
		map[core.SensorID][]entry{id: es, sid(8, 8): messy},
		map[core.SensorID]int64{sid(9, 9): 123})
	if err != nil {
		t.Fatal(err)
	}
	want, err := readRunFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	// A stale scratch directory from a crashed migration must not block
	// the retry.
	scratch := meta.path + ".migrate"
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(scratch, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	check := func(o DiskOptions) {
		t.Helper()
		n := openedNode(t, dir, 0, o)
		defer n.Close()
		if head, err := os.ReadFile(meta.path); err != nil || string(head[:8]) != string(runMagic2) {
			t.Fatalf("expected v2 magic after open (err=%v)", err)
		}
		if _, err := os.Stat(scratch); !os.IsNotExist(err) {
			t.Fatalf("migration scratch dir left behind: %v", err)
		}
		got, err := readRunFile(meta.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := runContentsEqual(want, got); err != nil {
			t.Fatalf("migrated contents diverge: %v", err)
		}
		rs, err := n.Query(id, -1<<62, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(es) {
			t.Fatalf("query served %d readings, want %d", len(rs), len(es))
		}
		for i, r := range rs {
			if r.Timestamp != es[i].ts || r.Value != es[i].val {
				t.Fatalf("reading %d: got %+v want %+v", i, r, es[i])
			}
		}
	}
	check(coldOptions) // migrates, then cold-loads
	check(noCompact)   // second open is a no-op, resident load
}

// TestV1MigrationFailureServesOriginal injects a disk fault into the
// migration's scratch rewrite and requires the open to degrade — the
// v1 file stays authoritative and fully served — instead of failing.
func TestV1MigrationFailureServesOriginal(t *testing.T) {
	inj := faults.New(1)
	orig := fsutil.Disk
	fsutil.Disk = inj.FS(orig)
	defer func() { fsutil.Disk = orig }()

	dir := t.TempDir()
	id := sid(5, 5)
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%02d", shardIndex(id)))
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	meta, err := writeRunFile(shardDir, 1, 1, map[core.SensorID][]entry{
		id: {{ts: 5, val: 1}, {ts: 6, val: 2}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.AddRule(&faults.Rule{Ops: faults.FSOpen | faults.FSWrite, Match: ".migrate", Err: faults.ErrInjected})
	n := openedNode(t, dir, 0, noCompact)
	defer n.Close()
	if head, err := os.ReadFile(meta.path); err != nil || string(head[:8]) != string(runMagic) {
		t.Fatalf("failed migration must leave the v1 file authoritative (err=%v)", err)
	}
	rs, err := n.Query(id, 0, 100)
	if err != nil || len(rs) != 2 {
		t.Fatalf("v1 fallback query: %v %v", rs, err)
	}
}

// TestRunContentsEqualDetectsDivergence drives the migration verifier
// through every mismatch class: a silent pass here is what would let a
// bad rewrite retire a good v1 file.
func TestRunContentsEqualDetectsDivergence(t *testing.T) {
	base := func() *runContents {
		return &runContents{
			minSeq: 1, maxSeq: 3,
			tombs:  map[core.SensorID]int64{sid(9, 9): 50},
			series: map[core.SensorID][]entry{sid(1, 1): {{ts: 1, val: 1}, {ts: 2, val: 2}}},
		}
	}
	if err := runContentsEqual(base(), base()); err != nil {
		t.Fatalf("identical contents compared unequal: %v", err)
	}
	mutations := map[string]func(*runContents){
		"span":            func(rc *runContents) { rc.maxSeq = 4 },
		"tombstone count": func(rc *runContents) { rc.tombs[sid(8, 8)] = 1 },
		"tombstone value": func(rc *runContents) { rc.tombs[sid(9, 9)] = 51 },
		"series count":    func(rc *runContents) { rc.series[sid(2, 2)] = []entry{{ts: 1}} },
		"entry count":     func(rc *runContents) { rc.series[sid(1, 1)] = rc.series[sid(1, 1)][:1] },
		"entry value":     func(rc *runContents) { rc.series[sid(1, 1)][1].val = 9 },
	}
	for name, mutate := range mutations {
		b := base()
		mutate(b)
		if err := runContentsEqual(base(), b); err == nil {
			t.Fatalf("%s divergence not detected", name)
		}
	}
}

// TestBatchedSyncLoopDurability exercises the background fsync loop
// (SyncInterval > 0): after one interval elapses, a write survives
// reopen even though the writer itself never waited on an fsync.
func TestBatchedSyncLoopDurability(t *testing.T) {
	dir := t.TempDir()
	o := noCompact
	o.SyncInterval = 2 * time.Millisecond
	n := openedNode(t, dir, 0, o)
	id := sid(3, 3)
	if err := n.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // several ticker fires
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2 := openedNode(t, dir, 0, noCompact)
	defer n2.Close()
	rs, err := n2.Query(id, 0, 10)
	if err != nil || len(rs) != 1 {
		t.Fatalf("batched-sync write lost: %v %v", rs, err)
	}
}

// TestV1MigrationSkippedReadOnly requires a read-only open to serve v1
// files as-is without rewriting anything.
func TestV1MigrationSkippedReadOnly(t *testing.T) {
	dir := t.TempDir()
	id := sid(4, 4)
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%02d", shardIndex(id)))
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	meta, err := writeRunFile(shardDir, 1, 1, map[core.SensorID][]entry{
		id: {{ts: 5, val: 1}, {ts: 6, val: 2}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := noCompact
	o.ReadOnly = true
	n := openedNode(t, dir, 0, o)
	defer n.Close()
	if head, err := os.ReadFile(meta.path); err != nil || string(head[:8]) != string(runMagic) {
		t.Fatalf("read-only open rewrote the v1 file (err=%v)", err)
	}
	rs, err := n.Query(id, 0, 100)
	if err != nil || len(rs) != 2 {
		t.Fatalf("read-only v1 query: %v %v", rs, err)
	}
}
