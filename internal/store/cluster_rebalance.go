package store

import (
	"errors"
	"fmt"
	"log"
	"time"

	"dcdb/internal/backoff"
	"dcdb/internal/core"
	"dcdb/internal/fold"
)

// Streaming rebalance: the background half of a ring transition. While
// the topology carries both rings (topology.go), every write already
// fans to the union of old and new owners — so the rebalancer only has
// to move HISTORY: for each sensor whose target replica set gained a
// member, it merges the read ring's versioned copies, streams them to
// the new owners in chunks, and proves the hand-off with a digest
// check before the cutover drops the old ring. The ordering is the
// zero-loss argument:
//
//	1. transition installed  -> new owners see every subsequent write
//	2. history streamed      -> new owners hold everything older
//	3. hand-off verified     -> digest (or exact versioned containment)
//	4. cutover               -> reads move to the target ring
//
// A write acked at any point is either in the merged history (pre-1)
// or was delivered by the union fan-out (post-1); either way the
// target owners hold it before any read is routed to them. Versioned
// inserts make the copy idempotent and resurrection-proof: a moved
// reading carries its original write version, so it can never outrank
// a rewrite that landed via the union path while the copy was in
// flight.
//
// The rebalancer is generation-guarded (Cluster.rebGen): a SetMembers
// arriving mid-stream bumps the generation, the superseded run aborts
// at its next check, and the new run re-plans against the latest
// target ring — reads keep anchoring to the ring they trusted all
// along, so chained membership changes never widen the loss window.

// rebalanceChunk bounds one InsertVersioned call while streaming a
// sensor to its new owner, keeping RPC frames and replica batch work
// small enough to interleave with live ingest.
const rebalanceChunk = 4096

// errRebalanceStale aborts a rebalance run that a newer SetMembers (or
// Close) superseded.
var errRebalanceStale = errors.New("store: rebalance superseded")

// rebalance is the background transfer goroutine, one per transition
// generation. It retries whole rounds with backoff until the transfer
// verifies (then cuts over) or a newer generation supersedes it.
func (c *Cluster) rebalance(gen uint64) {
	defer c.rebWG.Done()
	pol := backoff.Policy{Initial: 50 * time.Millisecond, Max: 5 * time.Second, Multiplier: 2, Jitter: 0.2}
	for attempt := 1; ; attempt++ {
		if c.rebGen.Load() != gen || c.closed.Load() {
			return
		}
		err := c.rebalanceRound(gen)
		if err == nil {
			c.cutover(gen)
			return
		}
		if errors.Is(err, errRebalanceStale) || c.rebGen.Load() != gen || c.closed.Load() {
			return
		}
		log.Printf("store: rebalance attempt %d failed (will retry): %v", attempt, err)
		// Sleep in short slices so Close (which bumps the generation,
		// then joins us) is never held up by a long backoff.
		deadline := time.Now().Add(pol.Delay(attempt))
		for time.Now().Before(deadline) {
			if c.rebGen.Load() != gen || c.closed.Load() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// rebalanceRound makes one full transfer pass: every sensor any member
// knows is checked against both rings and streamed to owners it gained.
// The round fails on the first sensor that cannot be moved AND verified
// — the caller retries; a clean return means every moved range is
// provably on its new owners.
func (c *Cluster) rebalanceRound(gen uint64) error {
	t := c.top()
	if t.prevRing == nil || t.ring == nil {
		return nil // raced with a concurrent cutover; nothing to move
	}
	for _, id := range c.SensorIDs() {
		if c.rebGen.Load() != gen || c.closed.Load() {
			return errRebalanceStale
		}
		if err := c.moveSensor(t, id); err != nil {
			return fmt.Errorf("moving sensor %v: %w", id, err)
		}
		if c.rebThrottle > 0 {
			time.Sleep(c.rebThrottle)
		}
	}
	return nil
}

// moveSensor streams one sensor's history to the target-ring owners the
// read ring does not already cover, then verifies the hand-off.
func (c *Cluster) moveSensor(t *topology, id core.SensorID) error {
	hash := fnvSID(id)
	readIDs := t.prevRing.ReplicasFor(hash, c.replication)
	inRead := make(map[string]struct{}, len(readIDs))
	for _, mid := range readIDs {
		inRead[mid] = struct{}{}
	}
	var newOwners []int
	for _, mid := range t.ring.ReplicasFor(hash, c.replication) {
		if _, dup := inRead[mid]; dup {
			continue
		}
		if idx, ok := t.byID[mid]; ok {
			newOwners = append(newOwners, idx)
		}
	}
	if len(newOwners) == 0 {
		return nil // replica set unchanged (or shrank); nothing to move
	}

	// Merge the read ring's versioned copies. A read quorum of the old
	// owners must answer — the same intersection argument the live read
	// path makes: any write acked before this merge is in at least one
	// of the copies we fold together.
	var srcs []int
	for _, mid := range readIDs {
		if idx, ok := t.byID[mid]; ok {
			srcs = append(srcs, idx)
		}
	}
	results := make([][]VersionedReading, len(srcs))
	errs := c.fanOut(srcs, localOnly(t, srcs), func(idx int) error {
		for i, s := range srcs {
			if s == idx {
				var err error
				results[i], err = t.members[idx].backend.QueryVersioned(id, aeFrom, aeTo)
				return err
			}
		}
		return nil
	})
	required := c.readCL.required(len(readIDs))
	reachable := 0
	var lastErr error
	var merged []VersionedReading
	first := true
	for i, err := range errs {
		if err != nil {
			lastErr = err
			continue
		}
		reachable++
		if first {
			merged = results[i]
			first = false
			continue
		}
		merged = mergeVersionedReadings(merged, results[i])
	}
	if reachable < required {
		return fmt.Errorf("read quorum of old owners unreachable (%d/%d): %w", reachable, required, lastErr)
	}

	// Stream the merged history to each new owner in chunks, throttled
	// so the copy stays below live ingest.
	for _, idx := range newOwners {
		b := t.members[idx].backend
		for off := 0; off < len(merged); off += rebalanceChunk {
			chunk := merged[off:min(off+rebalanceChunk, len(merged))]
			if err := b.InsertVersioned(id, chunk); err != nil {
				return fmt.Errorf("streaming to %s: %w", t.members[idx].id, err)
			}
			if c.rebThrottle > 0 && off+rebalanceChunk < len(merged) {
				time.Sleep(c.rebThrottle)
			}
		}
	}

	// Verify the hand-off. Fast path: the new owner's digest matches a
	// local fold of the merged history exactly — the steady-state
	// outcome when no writes raced the copy. Live ingest makes exact
	// equality unreliable (the union fan-out lands concurrent writes on
	// the target that the merge predates), so the fallback proves
	// CONTAINMENT instead: every merged reading exists on the target at
	// a version >= the one we shipped. That predicate is monotone under
	// concurrent writes — new data can never make it false — and it is
	// exactly the property the cutover needs.
	fp, count, err := digestOfVersioned(merged)
	if err != nil {
		return err
	}
	for _, idx := range newOwners {
		b := t.members[idx].backend
		tfp, tcount, err := b.Digest(id, aeFrom, aeTo)
		if err != nil {
			return fmt.Errorf("digest from %s: %w", t.members[idx].id, err)
		}
		if tfp == fp && tcount == count {
			continue
		}
		have, err := b.QueryVersioned(id, aeFrom, aeTo)
		if err != nil {
			return fmt.Errorf("verify read from %s: %w", t.members[idx].id, err)
		}
		missing := versionedMissing(merged, have)
		if len(missing) == 0 {
			continue
		}
		// One in-line repair attempt before failing the round.
		if err := b.InsertVersioned(id, missing); err != nil {
			return fmt.Errorf("re-streaming %d readings to %s: %w", len(missing), t.members[idx].id, err)
		}
		if have, err = b.QueryVersioned(id, aeFrom, aeTo); err != nil {
			return fmt.Errorf("verify read from %s: %w", t.members[idx].id, err)
		}
		if missing = versionedMissing(merged, have); len(missing) > 0 {
			return fmt.Errorf("hand-off to %s not verified: %d readings missing", t.members[idx].id, len(missing))
		}
	}
	c.met.rebSensors.Inc()
	c.met.rebReadings.Add(int64(len(merged)) * int64(len(newOwners)))
	return nil
}

// cutover completes a verified transition: reads move to the target
// ring, members no longer on it are retired. Reports whether this
// generation performed the cutover.
func (c *Cluster) cutover(gen uint64) bool {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if c.rebGen.Load() != gen || c.closed.Load() {
		return false
	}
	cur := c.top()
	if cur.prevRing == nil || cur.ring == nil {
		return false
	}
	keep := make(map[string]struct{})
	for _, id := range cur.ring.Members() {
		keep[id] = struct{}{}
	}
	members := make([]member, 0, len(cur.members))
	var dropped []NodeBackend
	for _, m := range cur.members {
		if _, ok := keep[m.id]; ok {
			members = append(members, m)
		} else {
			dropped = append(dropped, m.backend)
		}
	}
	c.topo.Store(newTopology(members, cur.ring, nil))
	c.retire(dropped)
	c.met.rebCutovers.Inc()
	return true
}

// RebalanceWait blocks until no transition is in flight (or the
// cluster closes). Tests and operators use it to sequence assertions
// after a membership change; the live paths never need it.
func (c *Cluster) RebalanceWait() {
	for c.top().prevRing != nil && !c.closed.Load() {
		time.Sleep(5 * time.Millisecond)
	}
}

// digestOfVersioned folds merged versioned readings through the exact
// pipeline Node.Digest uses, so coordinator-side expectation and
// replica-side digest are comparable bit for bit.
func digestOfVersioned(vrs []VersionedReading) (fp uint64, count int64, err error) {
	st, err := fold.New(fold.Spec{Op: fold.OpSummary, From: aeFrom, To: aeTo})
	if err != nil {
		return 0, 0, err
	}
	buf := make([]core.Reading, 0, min(len(vrs), rebalanceChunk))
	for off := 0; off < len(vrs); off += rebalanceChunk {
		chunk := vrs[off:min(off+rebalanceChunk, len(vrs))]
		buf = buf[:0]
		for _, v := range chunk {
			buf = append(buf, core.Reading{Timestamp: v.Timestamp, Value: v.Value})
		}
		st.Add(buf)
	}
	return st.Fingerprint(), st.Count() + st.Skipped(), nil
}

// versionedMissing returns the merged readings a target's response does
// not yet hold at an equal-or-newer version — the containment predicate
// the hand-off verification needs. Unlike digest equality it is
// monotone under live ingest: concurrent union-path writes add target
// entries (at newer versions) but can never un-satisfy a merged one.
func versionedMissing(merged, have []VersionedReading) []VersionedReading {
	var missing []VersionedReading
	j := 0
	for _, m := range merged {
		for j < len(have) && have[j].Timestamp < m.Timestamp {
			j++
		}
		if j < len(have) && have[j].Timestamp == m.Timestamp && have[j].Version >= m.Version {
			continue
		}
		missing = append(missing, m)
	}
	return missing
}

// coordinateVersioned writes already-versioned readings through the
// cluster's normal replica fan-out — the delivery path for forwarded
// hints (hints.go): readings keep their original write versions so the
// forward resolves exactly where the original write would have.
func (c *Cluster) coordinateVersioned(id core.SensorID, vrs []VersionedReading) error {
	if len(vrs) == 0 {
		return nil
	}
	t := c.top()
	replicas, readN := c.writeReplicas(t, id)
	errs := c.fanOut(replicas, localOnly(t, replicas), func(idx int) error {
		return t.members[idx].backend.InsertVersioned(id, vrs)
	})
	required := c.writeCL.required(readN)
	acked, ackedAll := 0, 0
	var lastErr error
	for i, err := range errs {
		if err == nil {
			ackedAll++
			if i < readN {
				acked++
			}
		} else {
			lastErr = err
		}
	}
	if acked < required {
		return fmt.Errorf("store: write consistency %s not met (%d/%d replicas): %w",
			c.writeCL, acked, required, lastErr)
	}
	if c.hints != nil && ackedAll < len(replicas) {
		for i, idx := range replicas {
			if errs[i] != nil {
				c.hintInsert(t.members[idx].id, id, vrs)
			}
		}
	}
	return nil
}
