package store

import (
	"math"
	"sync"
	"time"

	"dcdb/internal/core"
)

// Anti-entropy repair: the background convergence path for replicas
// that diverged with no read traffic to trigger read repair. Each
// round walks the union of sensors, compares one cheap digest per
// replica (fold fingerprint + count over the deduplicated series — see
// Node.Digest), and only for mismatched sensors fetches the versioned
// readings, merges a winner per timestamp (highest write version; a
// deterministic value-bits tiebreak for equal versions, so repeated
// rounds and concurrent coordinators converge to the same bytes), and
// re-inserts each replica's missing delta with the original versions.
// Steady state costs O(sensors) digests and moves no reading data.

// aeFrom/aeTo span the whole timestamp domain: a round compares each
// sensor's full retention. Sensors are the repair granularity — the
// hierarchical partitioner already maps a subtree to one replica set,
// so a sensor is a range of the keyspace in the partition sense.
const (
	aeFrom = math.MinInt64
	aeTo   = math.MaxInt64
)

// antiEntropyLoop runs RepairRound at the configured cadence until the
// cluster closes. Failures are per-round best effort: an unreachable
// replica is skipped this round and caught by a later one.
func (c *Cluster) antiEntropyLoop(interval time.Duration) {
	defer c.bgWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopBG:
			return
		case <-t.C:
			_ = c.RepairRound()
		}
	}
}

// RepairRound makes one full anti-entropy pass over every sensor any
// backend knows. The background loop calls it on a timer; tests and
// operators may call it directly. The returned error is the first
// repair failure (comparison against unreachable replicas is not an
// error — they are skipped and caught by a later round).
func (c *Cluster) RepairRound() error {
	defer c.met.aeRounds.Inc()
	if c.replication < 2 {
		return nil // a single copy has nothing to diverge from
	}
	var firstErr error
	for _, id := range c.SensorIDs() {
		if err := c.repairSensor(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// repairSensor digest-compares one sensor's replicas and converges
// them if they disagree.
func (c *Cluster) repairSensor(id core.SensorID) error {
	t := c.top()
	replicas := c.readReplicas(t, id)
	fps := make([]uint64, len(replicas))
	counts := make([]int64, len(replicas))
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, idx := range replicas {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			fps[i], counts[i], errs[i] = t.members[idx].backend.Digest(id, aeFrom, aeTo)
		}(i, idx)
	}
	wg.Wait()
	c.met.aeChecked.Inc()
	reachable, agree := 0, true
	ref := -1
	for i := range replicas {
		if errs[i] != nil {
			continue
		}
		reachable++
		if ref < 0 {
			ref = i
		} else if fps[i] != fps[ref] || counts[i] != counts[ref] {
			agree = false
		}
	}
	if reachable < 2 || agree {
		return nil // nothing to compare, or already converged
	}
	c.met.aeMismatched.Inc()

	// Mismatch: fetch the versioned readings from every reachable
	// replica and merge the winning write per timestamp.
	results := make([][]VersionedReading, len(replicas))
	for i, idx := range replicas {
		if errs[i] != nil {
			continue
		}
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			results[i], errs[i] = t.members[idx].backend.QueryVersioned(id, aeFrom, aeTo)
		}(i, idx)
	}
	wg.Wait()
	var merged []VersionedReading
	first := true
	for i := range replicas {
		if errs[i] != nil {
			continue
		}
		if first {
			merged = results[i]
			first = false
			continue
		}
		merged = mergeVersionedReadings(merged, results[i])
	}
	var firstErr error
	for i, idx := range replicas {
		if errs[i] != nil {
			continue
		}
		delta := versionedDelta(merged, results[i])
		if len(delta) == 0 {
			continue
		}
		if err := t.members[idx].backend.InsertVersioned(id, delta); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.met.aeRepaired.Add(int64(len(delta)))
	}
	return firstErr
}

// winnerVersioned resolves one timestamp's conflicting writes: highest
// version wins; equal versions (legacy unversioned conflicts, or one
// write hinted twice) break the tie on value bits so every coordinator
// — and every repair round — picks the same winner.
func winnerVersioned(a, b VersionedReading) VersionedReading {
	if a.Version != b.Version {
		if a.Version > b.Version {
			return a
		}
		return b
	}
	if math.Float64bits(a.Value) >= math.Float64bits(b.Value) {
		return a
	}
	return b
}

// mergeVersionedReadings merges two time-sorted versioned responses:
// the union of timestamps, each duplicate resolved by winnerVersioned.
func mergeVersionedReadings(a, b []VersionedReading) []VersionedReading {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]VersionedReading, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Timestamp < b[j].Timestamp:
			out = append(out, a[i])
			i++
		case a[i].Timestamp > b[j].Timestamp:
			out = append(out, b[j])
			j++
		default:
			out = append(out, winnerVersioned(a[i], b[j]))
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// versionedDelta returns the merged readings a replica's response is
// missing or resolves to a different value — what must be re-inserted
// for that replica's reads to match the merged result bit for bit.
func versionedDelta(merged, have []VersionedReading) []VersionedReading {
	var delta []VersionedReading
	j := 0
	for _, m := range merged {
		for j < len(have) && have[j].Timestamp < m.Timestamp {
			j++
		}
		if j < len(have) && have[j].Timestamp == m.Timestamp && have[j].Value == m.Value {
			continue
		}
		delta = append(delta, m)
	}
	return delta
}
