package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dcdb/internal/core"
)

// Failure-matrix tests for the tunable-consistency coordinator: writes
// and reads with replicas down at ONE and QUORUM, hinted handoff
// queueing/replay/durability, and newest-wins read repair.

// threeNodeCluster builds 3 memory nodes with the given options
// applied on top of {HashPartitioner, replication}.
func threeNodeCluster(t *testing.T, replication int, o ClusterOptions) (*Cluster, []*Node) {
	t.Helper()
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	o.Partitioner = HashPartitioner{}
	o.Replication = replication
	c, err := NewClusterOptions(backends, o)
	if err != nil {
		t.Fatal(err)
	}
	return c, nodes
}

// replicaSet mirrors the coordinator's placement for a test sensor.
func replicaSet(c *Cluster, id core.SensorID, n, rep int) []int {
	primary := c.Partitioner().NodeFor(id, n)
	out := make([]int, 0, rep)
	for i := 0; i < rep; i++ {
		out = append(out, (primary+i)%n)
	}
	return out
}

func TestWriteConsistencyOneSurvivesDownReplica(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{WriteConsistency: ConsistencyOne})
	id := sid(7, 1)
	reps := replicaSet(c, id, 3, 2)
	nodes[reps[1]].SetDown(true)
	if err := c.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatalf("ONE write with one replica down: %v", err)
	}
	// Both replicas down: even ONE must fail.
	nodes[reps[0]].SetDown(true)
	if err := c.Insert(id, rd(2, 2), 0); err == nil {
		t.Fatal("ONE write with all replicas down succeeded")
	}
}

func TestWriteConsistencyQuorumBlocksOnDownReplica(t *testing.T) {
	// Replication 2: QUORUM needs both copies, so one down replica
	// must fail the write even though the other accepted it.
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{WriteConsistency: ConsistencyQuorum})
	id := sid(7, 2)
	reps := replicaSet(c, id, 3, 2)
	nodes[reps[1]].SetDown(true)
	if err := c.Insert(id, rd(1, 1), 0); err == nil {
		t.Fatal("QUORUM write with a down replica (rf=2) succeeded")
	}
	nodes[reps[1]].SetDown(false)
	if err := c.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatalf("QUORUM write with all replicas up: %v", err)
	}
}

func TestWriteConsistencyQuorumToleratesMinorityDown(t *testing.T) {
	// Replication 3: QUORUM is 2, so one down replica is tolerated and
	// two are not.
	c, nodes := threeNodeCluster(t, 3, ClusterOptions{WriteConsistency: ConsistencyQuorum})
	id := sid(7, 3)
	nodes[0].SetDown(true)
	if err := c.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatalf("QUORUM write with 2/3 replicas up: %v", err)
	}
	nodes[1].SetDown(true)
	if err := c.Insert(id, rd(2, 2), 0); err == nil {
		t.Fatal("QUORUM write with 1/3 replicas up succeeded")
	}
}

func TestReadConsistencyMatrix(t *testing.T) {
	cOne, nodesOne := threeNodeCluster(t, 2, ClusterOptions{})
	cQ, nodesQ := threeNodeCluster(t, 2, ClusterOptions{ReadConsistency: ConsistencyQuorum})
	for _, tc := range []struct {
		name  string
		c     *Cluster
		nodes []*Node
		ok    bool
	}{
		{"one-with-down-replica", cOne, nodesOne, true},
		{"quorum-with-down-replica", cQ, nodesQ, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			id := sid(9, 9)
			if err := tc.c.Insert(id, rd(1, 1), 0); err != nil {
				t.Fatal(err)
			}
			reps := replicaSet(tc.c, id, 3, 2)
			tc.nodes[reps[0]].SetDown(true)
			rs, err := tc.c.Query(id, 0, 1<<60)
			if tc.ok {
				if err != nil || len(rs) != 1 {
					t.Fatalf("ONE read with down primary: %d readings, %v", len(rs), err)
				}
			} else if err == nil {
				t.Fatal("QUORUM read (rf=2) with a down replica succeeded")
			}
		})
	}
}

func TestHintedHandoffQueuesAndReplays(t *testing.T) {
	hintDir := t.TempDir()
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{
		HintDir:            hintDir,
		HintReplayInterval: -1, // replay manually for determinism
	})
	defer c.Close()
	id := sid(11, 4)
	reps := replicaSet(c, id, 3, 2)
	down := nodes[reps[1]]
	down.SetDown(true)

	batch := []core.Reading{rd(1, 1), rd(2, 2), rd(3, 3)}
	if err := c.InsertBatch(id, batch, 0); err != nil {
		t.Fatalf("ONE write with down replica: %v", err)
	}
	if err := c.DeleteBefore(id, 2); err != nil {
		t.Fatalf("ONE delete with down replica: %v", err)
	}
	queued, replayed, pending := c.HintStats()
	if queued != 2 || replayed != 0 || pending != 1 {
		t.Fatalf("HintStats = %d/%d/%d, want 2 queued, 0 replayed, 1 pending", queued, replayed, pending)
	}

	// Replay attempts while the node is down must keep the hints.
	if err := c.ReplayHints(); err != nil {
		t.Fatal(err)
	}
	if _, replayed, _ := c.HintStats(); replayed != 0 {
		t.Fatal("hints replayed into a down node")
	}

	down.SetDown(false)
	if err := c.ReplayHints(); err != nil {
		t.Fatal(err)
	}
	queued, replayed, pending = c.HintStats()
	if replayed != 2 || pending != 0 {
		t.Fatalf("after replay: HintStats = %d/%d/%d, want 2 replayed, 0 pending", queued, replayed, pending)
	}
	// The restarted replica must now hold exactly the surviving data:
	// ts 1 deleted by the replayed DeleteBefore, ts 2 and 3 present.
	rs, err := down.Query(id, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Timestamp != 2 || rs[1].Timestamp != 3 {
		t.Fatalf("restarted replica holds %v, want ts 2 and 3", rs)
	}
}

func TestHintsSurviveCoordinatorRestart(t *testing.T) {
	hintDir := t.TempDir()
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	opts := ClusterOptions{
		Partitioner: HashPartitioner{}, Replication: 2,
		HintDir: hintDir, HintReplayInterval: -1,
	}
	c1, err := NewClusterOptions(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := sid(13, 5)
	reps := replicaSet(c1, id, 3, 2)
	nodes[reps[1]].SetDown(true)
	if err := c1.Insert(id, rd(42, 4.2), 0); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil { // memory nodes survive Close
		t.Fatal(err)
	}

	nodes[reps[1]].SetDown(false)
	c2, err := NewClusterOptions(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.ReplayHints(); err != nil {
		t.Fatal(err)
	}
	rs, err := nodes[reps[1]].Query(id, 0, 1<<60)
	if err != nil || len(rs) != 1 || rs[0].Timestamp != 42 {
		t.Fatalf("replica after restart+replay holds %v, %v; want the hinted write", rs, err)
	}
	if des, _ := os.ReadDir(filepath.Join(hintDir, "node0")); len(des) != 0 {
		// Spot check: delivered hint files are deleted.
		for _, de := range des {
			t.Logf("leftover: %s", de.Name())
		}
	}
}

func TestHintedWriteTTLSurvivesAsExpiry(t *testing.T) {
	hintDir := t.TempDir()
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{
		HintDir: hintDir, HintReplayInterval: -1,
	})
	defer c.Close()
	id := sid(17, 6)
	reps := replicaSet(c, id, 3, 2)
	nodes[reps[1]].SetDown(true)
	// A TTL'd write hinted and replayed keeps a finite expiry.
	if err := c.Insert(id, rd(1, 1), time.Hour); err != nil {
		t.Fatal(err)
	}
	nodes[reps[1]].SetDown(false)
	if err := c.ReplayHints(); err != nil {
		t.Fatal(err)
	}
	rs, err := nodes[reps[1]].Query(id, 0, 1<<60)
	if err != nil || len(rs) != 1 {
		t.Fatalf("replayed TTL write: %v, %v", rs, err)
	}
}

func TestReadRepairConvergesReplicas(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{ReadConsistency: ConsistencyQuorum})
	id := sid(19, 7)
	reps := replicaSet(c, id, 3, 2)
	healthy, stale := nodes[reps[0]], nodes[reps[1]]
	// Diverge the replicas behind the coordinator's back: only one
	// holds the data (a write the other missed without a hint).
	for ts := int64(1); ts <= 5; ts++ {
		if err := healthy.Insert(id, rd(ts, float64(ts)), 0); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := c.Query(id, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("QUORUM read merged %d readings, want 5", len(rs))
	}
	// Repair is asynchronous; poll the stale replica for convergence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := stale.Query(id, 0, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale replica still holds %d readings after repair window", len(got))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQueryPrefixQuorumMergesDivergedReplicas(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{ReadConsistency: ConsistencyQuorum})
	id := sid(23, 8)
	reps := replicaSet(c, id, 3, 2)
	// Each replica holds a disjoint half of the series.
	for ts := int64(1); ts <= 4; ts++ {
		target := nodes[reps[ts%2]]
		if err := target.Insert(id, rd(ts, float64(ts)), 0); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c.QueryPrefix(core.SensorID{}, 0, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[id]) != 4 {
		t.Fatalf("prefix QUORUM read returned %d of 4 readings", len(out[id]))
	}
	// A down node must fail a QUORUM prefix read at rf=2...
	nodes[reps[0]].SetDown(true)
	if _, err := c.QueryPrefix(core.SensorID{}, 0, 0, 1<<60); err == nil {
		t.Fatal("QUORUM prefix read (rf=2) with a down node succeeded")
	}
	// ...but not a ONE prefix read.
	cOne, nodesOne := threeNodeCluster(t, 2, ClusterOptions{})
	if err := cOne.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatal(err)
	}
	nodesOne[0].SetDown(true)
	if _, err := cOne.QueryPrefix(core.SensorID{}, 0, 0, 1<<60); err != nil {
		t.Fatalf("ONE prefix read with a down node: %v", err)
	}
}

func TestClusterMaintenanceFansOutToAllBackends(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{})
	idA, idB := sid(31, 1), sid(37, 2)
	for _, id := range []core.SensorID{idA, idB} {
		if err := c.InsertBatch(id, []core.Reading{rd(1, 1), rd(2, 2)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	c.Compact()
	ids := c.SensorIDs()
	if len(ids) != 2 || ids[0] != min2(idA, idB) {
		t.Fatalf("SensorIDs = %v", ids)
	}
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("Nodes() returned %d of 3 local nodes", got)
	}
	if got := len(c.Backends()); got != 3 {
		t.Fatalf("Backends() returned %d of 3", got)
	}
	if c.Replication() != 2 {
		t.Fatalf("Replication() = %d", c.Replication())
	}
	if c.TotalInserts() != 8 { // 2 sensors × 2 readings × 2 replicas
		t.Fatalf("TotalInserts = %d, want 8", c.TotalInserts())
	}
	// Every replica's memtable went through Flush into runs.
	for _, n := range nodes {
		if err := n.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func min2(a, b core.SensorID) core.SensorID {
	if a.Compare(b) < 0 {
		return a
	}
	return b
}

func TestGroupCommitConcurrentSyncEveryWritersRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	n := openedNode(t, dir, 0, noCompact) // SyncInterval 0: every ack durable
	const workers, writes = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := sid(uint64(w+1), uint64(w))
			for i := 0; i < writes; i++ {
				if err := n.Insert(id, rd(int64(i), float64(w)), 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	n.crash()

	n2 := openedNode(t, dir, 0, noCompact)
	defer n2.Close()
	for w := 0; w < workers; w++ {
		id := sid(uint64(w+1), uint64(w))
		rs, err := n2.Query(id, 0, 1<<60)
		if err != nil || len(rs) != writes {
			t.Fatalf("worker %d: recovered %d of %d acked writes (%v)", w, len(rs), writes, err)
		}
	}
}

func TestParseConsistency(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Consistency
		ok   bool
	}{
		{"one", ConsistencyOne, true},
		{"ONE", ConsistencyOne, true},
		{"quorum", ConsistencyQuorum, true},
		{"QUORUM", ConsistencyQuorum, true},
		{"all", 0, false},
		{"", 0, false},
	} {
		got, ok := ParseConsistency(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseConsistency(%q) = %v, %v", tc.in, got, ok)
		}
	}
	if ConsistencyOne.String() != "one" || ConsistencyQuorum.String() != "quorum" {
		t.Error("Consistency.String round trip broken")
	}
	// Quorum sizes: floor(n/2)+1.
	for n, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3} {
		if got := ConsistencyQuorum.required(n); got != want {
			t.Errorf("quorum(%d) = %d, want %d", n, got, want)
		}
		if got := ConsistencyOne.required(n); got != 1 {
			t.Errorf("one(%d) = %d", n, got)
		}
	}
}

func TestExplicitSyncMakesWritesDurable(t *testing.T) {
	dir := t.TempDir()
	// SyncInterval < 0: nothing syncs unless Sync is called.
	n := openedNode(t, dir, 0, DiskOptions{SyncInterval: -1, CompactInterval: -1})
	id := sid(41, 3)
	for ts := int64(1); ts <= 10; ts++ {
		if err := n.Insert(id, rd(ts, float64(ts)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	n.crash()
	n2 := openedNode(t, dir, 0, noCompact)
	defer n2.Close()
	rs, err := n2.Query(id, 0, 1<<60)
	if err != nil || len(rs) != 10 {
		t.Fatalf("after explicit Sync + crash: %d readings, %v", len(rs), err)
	}
}

func TestHintBackgroundLoopDeliversWithoutManualReplay(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{
		HintDir:            t.TempDir(),
		HintReplayInterval: 5 * time.Millisecond,
	})
	defer c.Close()
	id := sid(43, 9)
	reps := replicaSet(c, id, 3, 2)
	nodes[reps[1]].SetDown(true)
	if err := c.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatal(err)
	}
	nodes[reps[1]].SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, replayed, pending := c.HintStats(); replayed == 1 && pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background hint loop never delivered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	rs, err := nodes[reps[1]].Query(id, 0, 1<<60)
	if err != nil || len(rs) != 1 {
		t.Fatalf("replica after background replay: %v, %v", rs, err)
	}
}
