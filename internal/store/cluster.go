package store

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dcdb/internal/core"
)

// parallelFanout gates goroutine-per-replica fan-out. On a single-CPU
// host the goroutine handoff costs more than the in-memory node
// operation it would parallelize, so the sequential path is kept.
var parallelFanout = runtime.NumCPU() > 1

// parallelBatchMin is the batch size below which a replicated write is
// performed sequentially even on multicore hosts: spawning goroutines
// costs more than a couple of memtable appends.
const parallelBatchMin = 16

// Partitioner decides which of n nodes owns a sensor's primary replica.
type Partitioner interface {
	NodeFor(id core.SensorID, n int) int
	Name() string
}

// HierarchicalPartitioner maps a sub-tree of the sensor hierarchy to a
// particular database server by partitioning on the SID prefix at a
// fixed depth (paper §4.3). All sensors of one rack/chassis/node land on
// the same server, so inserts and queries for a subtree touch a single
// node and avoid inter-server traffic.
type HierarchicalPartitioner struct {
	// Depth is the number of hierarchy levels forming the partition
	// key (e.g. 4 = room/system/rack/chassis).
	Depth int
}

// NodeFor implements Partitioner.
func (p HierarchicalPartitioner) NodeFor(id core.SensorID, n int) int {
	if n <= 1 {
		return 0
	}
	pre := id.Prefix(p.Depth)
	return int(fnvSID(pre) % uint64(n))
}

// Name implements Partitioner.
func (p HierarchicalPartitioner) Name() string {
	return fmt.Sprintf("hierarchical(depth=%d)", p.Depth)
}

// HashPartitioner spreads sensors uniformly by hashing the full SID.
// It is the ablation baseline for the hierarchical scheme: ingest
// balance is ideal but subtree queries fan out to every node.
type HashPartitioner struct{}

// NodeFor implements Partitioner.
func (HashPartitioner) NodeFor(id core.SensorID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnvSID(id) % uint64(n))
}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

func fnvSID(id core.SensorID) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (id.Hi >> uint(shift) & 0xff)) * prime
	}
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (id.Lo >> uint(shift) & 0xff)) * prime
	}
	// FNV's low bits disperse poorly when taken modulo small node
	// counts (byte contributions can cancel); finish with a
	// murmur-style avalanche so every input bit reaches every output
	// bit.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Cluster composes several Nodes into one logical Storage Backend with
// replication, mirroring a multi-server Cassandra cluster.
type Cluster struct {
	nodes       []*Node
	part        Partitioner
	replication int
}

// NewCluster builds a cluster of the given nodes. replication is the
// total number of copies of each row (1 = no redundancy); it is capped
// at the node count. A nil partitioner defaults to the hierarchical
// scheme at depth 4.
func NewCluster(nodes []*Node, part Partitioner, replication int) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("store: cluster needs at least one node")
	}
	if part == nil {
		part = HierarchicalPartitioner{Depth: 4}
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	return &Cluster{nodes: nodes, part: part, replication: replication}, nil
}

// Nodes exposes the member nodes (for stats and failure injection).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Partitioner returns the active partitioning scheme.
func (c *Cluster) Partitioner() Partitioner { return c.part }

// replicasFor yields the node indices holding a sensor, primary first.
func (c *Cluster) replicasFor(id core.SensorID) []int {
	primary := c.part.NodeFor(id, len(c.nodes))
	out := make([]int, 0, c.replication)
	for i := 0; i < c.replication; i++ {
		out = append(out, (primary+i)%len(c.nodes))
	}
	return out
}

// Insert implements Backend: the reading is written to every replica.
// The write succeeds if at least one replica accepts it (consistency
// level ONE, the common monitoring configuration).
func (c *Cluster) Insert(id core.SensorID, r core.Reading, ttl time.Duration) error {
	return c.InsertBatch(id, []core.Reading{r}, ttl)
}

// InsertBatch implements Backend. Large batches are written to the
// replicas concurrently; the write succeeds once any replica accepts
// it.
func (c *Cluster) InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error {
	replicas := c.replicasFor(id)
	var lastErr error
	if parallelFanout && len(replicas) > 1 && len(rs) >= parallelBatchMin {
		errs := make([]error, len(replicas))
		var wg sync.WaitGroup
		for i, idx := range replicas {
			wg.Add(1)
			go func(i, idx int) {
				defer wg.Done()
				errs[i] = c.nodes[idx].InsertBatch(id, rs, ttl)
			}(i, idx)
		}
		wg.Wait()
		for _, err := range errs {
			if err == nil {
				return nil
			}
			lastErr = err
		}
	} else {
		acked := false
		for _, idx := range replicas {
			if err := c.nodes[idx].InsertBatch(id, rs, ttl); err != nil {
				lastErr = err
			} else {
				acked = true
			}
		}
		if acked {
			return nil
		}
	}
	return fmt.Errorf("store: no replica accepted write: %w", lastErr)
}

// Query implements Backend: the primary is consulted first, then the
// remaining replicas on failure.
func (c *Cluster) Query(id core.SensorID, from, to int64) ([]core.Reading, error) {
	var lastErr error
	for _, idx := range c.replicasFor(id) {
		rs, err := c.nodes[idx].Query(id, from, to)
		if err == nil {
			return rs, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("store: all replicas failed: %w", lastErr)
}

// QueryPrefix implements Backend. With the hierarchical partitioner the
// whole subtree lives on one replica set; with the hash partitioner the
// query fans out to all nodes and results are merged.
// All nodes are queried concurrently and the per-node result maps are
// merged afterwards, keeping the first replica's copy of each sensor.
func (c *Cluster) QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error) {
	maps := make([]map[core.SensorID][]core.Reading, len(c.nodes))
	errs := make([]error, len(c.nodes))
	if !parallelFanout || len(c.nodes) == 1 {
		for i, n := range c.nodes {
			maps[i], errs[i] = n.QueryPrefix(prefix, depth, from, to)
		}
	} else {
		var wg sync.WaitGroup
		for i, n := range c.nodes {
			wg.Add(1)
			go func(i int, n *Node) {
				defer wg.Done()
				maps[i], errs[i] = n.QueryPrefix(prefix, depth, from, to)
			}(i, n)
		}
		wg.Wait()
	}
	out := make(map[core.SensorID][]core.Reading)
	var firstErr error
	reached := false
	for i := range c.nodes {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		reached = true
		for id, rs := range maps[i] {
			if _, dup := out[id]; !dup {
				out[id] = rs
			}
		}
	}
	if !reached {
		return nil, fmt.Errorf("store: all nodes failed: %w", firstErr)
	}
	return out, nil
}

// DeleteBefore implements Backend; replicas are cleaned concurrently.
func (c *Cluster) DeleteBefore(id core.SensorID, cutoff int64) error {
	replicas := c.replicasFor(id)
	errs := make([]error, len(replicas))
	if !parallelFanout || len(replicas) == 1 {
		for i, idx := range replicas {
			errs[i] = c.nodes[idx].DeleteBefore(id, cutoff)
		}
	} else {
		var wg sync.WaitGroup
		for i, idx := range replicas {
			wg.Add(1)
			go func(i, idx int) {
				defer wg.Done()
				errs[i] = c.nodes[idx].DeleteBefore(id, cutoff)
			}(i, idx)
		}
		wg.Wait()
	}
	var lastErr error
	for _, err := range errs {
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

// Compact compacts every node.
func (c *Cluster) Compact() {
	for _, n := range c.nodes {
		n.Compact()
	}
}

// Flush forces every node's memtable into sorted runs (durable nodes
// spill them to disk in the background).
func (c *Cluster) Flush() error {
	var firstErr error
	for _, n := range c.nodes {
		if err := n.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync forces every node's WAL to disk.
func (c *Cluster) Sync() error {
	var firstErr error
	for _, n := range c.nodes {
		if err := n.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Backend. Durable member nodes flush and detach from
// their data directories; the first failure is reported after every
// node has been closed.
func (c *Cluster) Close() error {
	var firstErr error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// TotalInserts sums the insert counters of all nodes (replication makes
// this larger than the number of logical writes).
func (c *Cluster) TotalInserts() int64 {
	var total int64
	for _, n := range c.nodes {
		ins, _, _ := n.Stats()
		total += ins
	}
	return total
}
