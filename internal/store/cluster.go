package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/ring"
)

// parallelBatchMin is the batch size below which a replicated write to
// purely in-process replicas is performed sequentially: spawning
// goroutines costs more than a couple of memtable appends. Remote
// replicas always fan out concurrently — a network round trip dwarfs a
// goroutine handoff.
const parallelBatchMin = 16

// Partitioner decides which of n nodes owns a sensor's primary replica.
type Partitioner interface {
	NodeFor(id core.SensorID, n int) int
	Name() string
}

// HierarchicalPartitioner maps a sub-tree of the sensor hierarchy to a
// particular database server by partitioning on the SID prefix at a
// fixed depth (paper §4.3). All sensors of one rack/chassis/node land on
// the same server, so inserts and queries for a subtree touch a single
// node and avoid inter-server traffic.
type HierarchicalPartitioner struct {
	// Depth is the number of hierarchy levels forming the partition
	// key (e.g. 4 = room/system/rack/chassis).
	Depth int
}

// NodeFor implements Partitioner.
func (p HierarchicalPartitioner) NodeFor(id core.SensorID, n int) int {
	if n <= 1 {
		return 0
	}
	pre := id.Prefix(p.Depth)
	return int(fnvSID(pre) % uint64(n))
}

// Name implements Partitioner.
func (p HierarchicalPartitioner) Name() string {
	return fmt.Sprintf("hierarchical(depth=%d)", p.Depth)
}

// HashPartitioner spreads sensors uniformly by hashing the full SID.
// It is the ablation baseline for the hierarchical scheme: ingest
// balance is ideal but subtree queries fan out to every node.
type HashPartitioner struct{}

// NodeFor implements Partitioner.
func (HashPartitioner) NodeFor(id core.SensorID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnvSID(id) % uint64(n))
}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// RingPartitioner selects consistent-hash placement: sensors hash onto
// a ring of member identities with VNodes virtual nodes per member
// (internal/ring), so membership changes move only the ranges the
// joining/leaving member owns and every coordinator holding the same
// member set derives identical placement without coordination. The
// interface's NodeFor is the degenerate static mapping (hash modulo n)
// — ring clusters resolve placement through the topology snapshot, not
// through this method.
type RingPartitioner struct {
	// VNodes is the virtual-node count per member; <= 0 selects
	// ring.DefaultVNodes.
	VNodes int
}

// NodeFor implements Partitioner (static fallback only).
func (p RingPartitioner) NodeFor(id core.SensorID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnvSID(id) % uint64(n))
}

// Name implements Partitioner.
func (p RingPartitioner) Name() string {
	v := p.VNodes
	if v <= 0 {
		v = ring.DefaultVNodes
	}
	return fmt.Sprintf("ring(vnodes=%d)", v)
}

func fnvSID(id core.SensorID) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (id.Hi >> uint(shift) & 0xff)) * prime
	}
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (id.Lo >> uint(shift) & 0xff)) * prime
	}
	// FNV's low bits disperse poorly when taken modulo small node
	// counts (byte contributions can cancel); finish with a
	// murmur-style avalanche so every input bit reaches every output
	// bit.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ClusterOptions configure a Cluster beyond its member set.
type ClusterOptions struct {
	// Partitioner routes a sensor to its primary. nil defaults to the
	// hierarchical scheme at depth 4. RingPartitioner selects live
	// consistent-hash placement (required for SetMembers).
	Partitioner Partitioner
	// Replication is the total number of copies of each row (1 = no
	// redundancy); it is capped at the backend count.
	Replication int
	// WriteConsistency is the number of replicas that must acknowledge
	// a write (zero value = ConsistencyOne).
	WriteConsistency Consistency
	// ReadConsistency is the number of replicas a read must reach
	// (zero value = ConsistencyOne). At QUORUM, reads merge the replica
	// responses newest-wins and repair divergent replicas in the
	// background.
	ReadConsistency Consistency
	// HintDir, when set, enables hinted handoff: a write a replica
	// missed (while the rest met the consistency level) is durably
	// queued under this directory and replayed once the replica
	// answers pings again. Empty disables handoff.
	HintDir string
	// HintReplayInterval is the cadence of the background replayer
	// probing down replicas. 0 selects the default (1s); < 0 disables
	// the background loop (ReplayHints still works when called).
	HintReplayInterval time.Duration
	// AntiEntropyInterval is the cadence of the background digest-
	// repair scheduler: every tick the coordinator compares per-sensor
	// replica digests and re-inserts the winning versions into replicas
	// that diverged — convergence without any read traffic. 0 disables
	// the loop (RepairRound still works when called directly).
	AntiEntropyInterval time.Duration
	// BackendFactory builds the backend for a member SetMembers adds
	// (typically an rpc.NewClient on the member's address). Required
	// for live membership; static clusters never call it.
	BackendFactory func(id, addr string) NodeBackend
	// RebalanceThrottle is the pause between sensors during a
	// background rebalance — the knob that keeps the copy stream below
	// ingest traffic. 0 selects a small default; < 0 disables
	// throttling.
	RebalanceThrottle time.Duration
}

// Cluster composes storage backends into one logical Storage Backend
// with replication, tunable consistency and hinted handoff, mirroring a
// multi-server Cassandra cluster (paper §4.3). Backends may be
// in-process (*Node) or remote (rpc.Client), mixed freely. The member
// set lives in an atomically swapped topology snapshot (topology.go),
// so ring clusters can grow and shrink live via SetMembers while
// static clusters behave exactly as before.
type Cluster struct {
	topo        atomic.Pointer[topology]
	topoMu      sync.Mutex // serialises SetMembers / cutover
	part        Partitioner
	replication int
	writeCL     Consistency
	readCL      Consistency
	factory     func(id, addr string) NodeBackend
	rebThrottle time.Duration

	hints  *hintQueue
	met    *clusterMetrics
	stopBG chan struct{}
	bgWG   sync.WaitGroup

	// Rebalance state: gen invalidates a superseded transfer, rebWG
	// joins the background goroutine at Close.
	rebGen atomic.Uint64
	rebWG  sync.WaitGroup

	// retired holds backends of departed members until Close: in-flight
	// operations may still resolve snapshots that point at them.
	retiredMu sync.Mutex
	retired   []NodeBackend

	// ver is the coordinator's write-version clock: an HLC-style
	// counter seeded from the wall clock and bumped per logical write,
	// so versions are monotonic within a coordinator and (clock skew
	// aside) ordered across coordinator restarts without persisting
	// anything. Version 0 is reserved for legacy unversioned writes.
	ver atomic.Uint64

	// repairWG tracks in-flight background read repairs so Close does
	// not yank backends out from under them.
	repairWG sync.WaitGroup
	closed   atomic.Bool
}

// NewCluster builds a cluster of in-process nodes with consistency
// level ONE and no hinted handoff — the legacy embedded configuration.
// A nil partitioner defaults to the hierarchical scheme at depth 4.
func NewCluster(nodes []*Node, part Partitioner, replication int) (*Cluster, error) {
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	return NewClusterOptions(backends, ClusterOptions{Partitioner: part, Replication: replication})
}

// NewClusterOptions builds a cluster of arbitrary backends (local
// nodes, RPC clients, or a mix) with static placement: members are
// named node0..nodeN-1 in construction order and the set never
// changes. Pass a RingPartitioner to place the same fixed members on a
// consistent-hash ring instead (useful for tests; live membership
// wants NewClusterMembers).
func NewClusterOptions(backends []NodeBackend, o ClusterOptions) (*Cluster, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("store: cluster needs at least one node")
	}
	members := make([]member, len(backends))
	for i, b := range backends {
		id := fmt.Sprintf("node%d", i)
		addr := ""
		if a, ok := b.(interface{ Addr() string }); ok {
			addr = a.Addr()
		}
		_, local := b.(*Node)
		members[i] = member{id: id, addr: addr, backend: b, local: local}
	}
	return newCluster(members, o, false)
}

// NewClusterMembers builds a live-membership cluster: members are
// keyed by identity on a consistent-hash ring, backends are built with
// o.BackendFactory, and SetMembers may change the set at runtime. The
// partitioner defaults to (and must be) a RingPartitioner.
func NewClusterMembers(ms []MemberInfo, o ClusterOptions) (*Cluster, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("store: cluster needs at least one member")
	}
	if o.BackendFactory == nil {
		return nil, fmt.Errorf("store: NewClusterMembers needs a BackendFactory")
	}
	if o.Partitioner == nil {
		o.Partitioner = RingPartitioner{}
	}
	if _, ok := o.Partitioner.(RingPartitioner); !ok {
		return nil, fmt.Errorf("store: live membership requires the ring partitioner, got %s", o.Partitioner.Name())
	}
	members := make([]member, 0, len(ms))
	seen := make(map[string]struct{}, len(ms))
	for _, m := range ms {
		if m.ID == "" {
			return nil, fmt.Errorf("store: member with empty ID")
		}
		if _, dup := seen[m.ID]; dup {
			continue
		}
		seen[m.ID] = struct{}{}
		b := o.BackendFactory(m.ID, m.Addr)
		if b == nil {
			return nil, fmt.Errorf("store: BackendFactory returned nil for member %s", m.ID)
		}
		_, local := b.(*Node)
		members = append(members, member{id: m.ID, addr: m.Addr, backend: b, local: local})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].id < members[j].id })
	return newCluster(members, o, true)
}

// newCluster finishes construction for both placement modes.
func newCluster(members []member, o ClusterOptions, ringMode bool) (*Cluster, error) {
	if o.Partitioner == nil {
		o.Partitioner = HierarchicalPartitioner{Depth: 4}
	}
	if o.Replication < 1 {
		o.Replication = 1
	}
	if !ringMode && o.Replication > len(members) {
		o.Replication = len(members)
	}
	if o.WriteConsistency == 0 {
		o.WriteConsistency = ConsistencyOne
	}
	if o.ReadConsistency == 0 {
		o.ReadConsistency = ConsistencyOne
	}
	if o.RebalanceThrottle == 0 {
		o.RebalanceThrottle = 2 * time.Millisecond
	}
	c := &Cluster{
		part:        o.Partitioner,
		replication: o.Replication,
		writeCL:     o.WriteConsistency,
		readCL:      o.ReadConsistency,
		factory:     o.BackendFactory,
		rebThrottle: o.RebalanceThrottle,
	}
	var target *ring.Ring
	if rp, ok := o.Partitioner.(RingPartitioner); ok {
		ids := make([]string, len(members))
		for i := range members {
			ids[i] = members[i].id
		}
		target = ring.New(ids, rp.VNodes)
	}
	c.topo.Store(newTopology(members, target, nil))
	c.met = newClusterMetrics(c)
	if o.HintDir != "" {
		hq, err := openHintQueue(o.HintDir)
		if err != nil {
			return nil, fmt.Errorf("store: opening hint queue: %w", err)
		}
		c.hints = hq
		if o.HintReplayInterval == 0 {
			o.HintReplayInterval = time.Second
		}
		if o.HintReplayInterval > 0 {
			c.ensureStopBG()
			c.bgWG.Add(1)
			go c.hintLoop(o.HintReplayInterval)
		}
	}
	if o.AntiEntropyInterval > 0 {
		c.ensureStopBG()
		c.bgWG.Add(1)
		go c.antiEntropyLoop(o.AntiEntropyInterval)
	}
	return c, nil
}

// ensureStopBG lazily creates the shared background-loop stop channel.
func (c *Cluster) ensureStopBG() {
	if c.stopBG == nil {
		c.stopBG = make(chan struct{})
	}
}

// nextVersion issues the next write version: strictly increasing, and
// never behind the wall clock, so a restarted coordinator resumes above
// everything it (or a reasonably synchronised peer) issued before.
func (c *Cluster) nextVersion() uint64 {
	now := uint64(time.Now().UnixNano())
	for {
		prev := c.ver.Load()
		next := prev + 1
		if now > next {
			next = now
		}
		if c.ver.CompareAndSwap(prev, next) {
			return next
		}
	}
}

// Nodes exposes the in-process member nodes (for stats, snapshots and
// failure injection); remote backends are skipped.
func (c *Cluster) Nodes() []*Node {
	var out []*Node
	for _, m := range c.top().members {
		if n, ok := m.backend.(*Node); ok {
			out = append(out, n)
		}
	}
	return out
}

// Backends exposes every member backend in snapshot order.
func (c *Cluster) Backends() []NodeBackend {
	t := c.top()
	out := make([]NodeBackend, len(t.members))
	for i := range t.members {
		out[i] = t.members[i].backend
	}
	return out
}

// Partitioner returns the active partitioning scheme.
func (c *Cluster) Partitioner() Partitioner { return c.part }

// Replication returns the configured copies per row.
func (c *Cluster) Replication() int { return c.replication }

// fanOut runs op for every listed replica, concurrently unless the
// caller asked for the cheap sequential path, and returns one error
// slot per replica.
func (c *Cluster) fanOut(replicas []int, sequential bool, op func(idx int) error) []error {
	errs := make([]error, len(replicas))
	if sequential || len(replicas) == 1 {
		for i, idx := range replicas {
			errs[i] = op(idx)
		}
		return errs
	}
	var wg sync.WaitGroup
	for i, idx := range replicas {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			errs[i] = op(idx)
		}(i, idx)
	}
	wg.Wait()
	return errs
}

// localOnly reports whether every listed replica is in-process.
func localOnly(t *topology, replicas []int) bool {
	if t.allLocal {
		return true
	}
	for _, idx := range replicas {
		if !t.members[idx].local {
			return false
		}
	}
	return true
}

// Insert implements Backend: the reading is written to every replica
// at the configured write consistency.
func (c *Cluster) Insert(id core.SensorID, r core.Reading, ttl time.Duration) error {
	return c.InsertBatch(id, []core.Reading{r}, ttl)
}

// InsertBatch implements Backend. The coordinator stamps the batch
// with one write version, then writes it to every replica; the write
// is acknowledged once WriteConsistency replicas of the READ set
// accepted it (during a rebalance the fan-out also covers the target
// ring's owners, whose acks never count — see writeReplicas). Replicas
// that missed an acknowledged write get a durable hint (when handoff
// is enabled) carrying the same version, replayed after they return —
// so a replayed hint resolves exactly where the original write would
// have, never above a later rewrite.
func (c *Cluster) InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error {
	if len(rs) == 0 {
		return nil
	}
	expire := TTLToExpire(ttl)
	ver := c.nextVersion()
	vrs := make([]VersionedReading, len(rs))
	for i, r := range rs {
		vrs[i] = VersionedReading{Timestamp: r.Timestamp, Value: r.Value, Version: ver, Expire: expire}
	}
	t := c.top()
	replicas, readN := c.writeReplicas(t, id)
	sequential := len(rs) < parallelBatchMin && localOnly(t, replicas)
	errs := c.fanOut(replicas, sequential, func(idx int) error {
		return t.members[idx].backend.InsertVersioned(id, vrs)
	})
	required := c.writeCL.required(readN)
	acked, ackedAll := 0, 0
	var lastErr error
	for i, err := range errs {
		if err == nil {
			ackedAll++
			if i < readN {
				acked++
			}
		} else {
			lastErr = err
		}
	}
	if acked < required {
		c.met.writesFailed.Inc()
		return fmt.Errorf("store: write consistency %s not met (%d/%d replicas): %w",
			c.writeCL, acked, required, lastErr)
	}
	c.met.writesOK.Inc()
	if c.hints != nil && ackedAll < len(replicas) {
		for i, idx := range replicas {
			if errs[i] != nil {
				c.hintInsert(t.members[idx].id, id, vrs)
			}
		}
	}
	return nil
}

// Query implements Backend. At consistency ONE the primary is
// consulted first, then the remaining replicas on failure. At QUORUM
// all replicas are read concurrently with their write versions, at
// least a quorum must respond, the responses are merged
// newest-version-wins, and replicas that missed writes are repaired in
// the background with the merged result under its original versions —
// so a repair write can never outrank a rewrite the replica already
// holds.
func (c *Cluster) Query(id core.SensorID, from, to int64) ([]core.Reading, error) {
	t := c.top()
	replicas := c.readReplicas(t, id)
	if c.readCL.required(len(replicas)) == 1 && len(replicas) >= 1 {
		var lastErr error
		for _, idx := range replicas {
			rs, err := t.members[idx].backend.Query(id, from, to)
			if err == nil {
				c.met.readsOK.Inc()
				return rs, nil
			}
			lastErr = err
		}
		c.met.readsFailed.Inc()
		return nil, fmt.Errorf("store: all replicas failed: %w", lastErr)
	}
	results := make([][]VersionedReading, len(replicas))
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, idx := range replicas {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			results[i], errs[i] = t.members[idx].backend.QueryVersioned(id, from, to)
		}(i, idx)
	}
	wg.Wait()
	required := c.readCL.required(len(replicas))
	ok := 0
	var lastErr error
	for _, err := range errs {
		if err == nil {
			ok++
		} else {
			lastErr = err
		}
	}
	if ok < required {
		c.met.readsFailed.Inc()
		return nil, fmt.Errorf("store: read consistency %s not met (%d/%d replicas): %w",
			c.readCL, ok, required, lastErr)
	}
	c.met.readsOK.Inc()
	var merged []VersionedReading
	first := true
	for i, err := range errs {
		if err != nil {
			continue
		}
		if first {
			merged = results[i]
			first = false
			continue
		}
		merged = mergeVersionedReadings(merged, results[i])
	}
	c.readRepair(t, id, replicas, results, errs, merged)
	out := make([]core.Reading, len(merged))
	for i, m := range merged {
		out[i] = core.Reading{Timestamp: m.Timestamp, Value: m.Value}
	}
	return out, nil
}

// mergeReplicaReadings merges two time-sorted replica responses
// newest-wins: the union of timestamps (a write one replica missed is
// newer than its absence there), with a's value winning where both hold
// the same timestamp (a accumulates from the primary outward, matching
// the single-replica read path).
func mergeReplicaReadings(a, b []core.Reading) []core.Reading {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]core.Reading, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Timestamp < b[j].Timestamp:
			out = append(out, a[i])
			i++
		case a[i].Timestamp > b[j].Timestamp:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// readRepair writes the merged result's missing readings back to every
// replica that answered with less, in the background: convergence is
// opportunistic, the caller's read latency is not taxed. Repairs carry
// the winning readings' original write versions, so a re-inserted
// duplicate resolves at the replica's query-time dedup exactly where
// the original write would have — above anything older, below any
// rewrite the replica holds that the merge did not.
func (c *Cluster) readRepair(t *topology, id core.SensorID, replicas []int, results [][]VersionedReading, errs []error, merged []VersionedReading) {
	for i, idx := range replicas {
		if errs[i] != nil {
			continue
		}
		delta := versionedDelta(merged, results[i])
		if len(delta) == 0 {
			continue
		}
		b := t.members[idx].backend
		c.met.readRepairs.Inc()
		c.repairWG.Add(1)
		go func() {
			defer c.repairWG.Done()
			_ = b.InsertVersioned(id, delta) // best effort; the next read retries
		}()
	}
}

// QueryPrefix implements Backend. With the hierarchical partitioner the
// whole subtree lives on one replica set; with the hash or ring
// partitioner the query fans out to all nodes and results are merged.
// All nodes are queried concurrently; a sensor present on several
// replicas has its copies merged newest-wins. At read consistency
// QUORUM the query fails if any replica window (any possible replica
// set) has fewer than a quorum of its members responding — a
// conservative, exact bound over every sensor the prefix could own.
func (c *Cluster) QueryPrefix(prefix core.SensorID, depth int, from, to int64) (map[core.SensorID][]core.Reading, error) {
	t := c.top()
	n := len(t.members)
	maps := make([]map[core.SensorID][]core.Reading, n)
	errs := make([]error, n)
	if n == 1 {
		maps[0], errs[0] = t.members[0].backend.QueryPrefix(prefix, depth, from, to)
	} else {
		var wg sync.WaitGroup
		for i := range t.members {
			wg.Add(1)
			go func(i int, b NodeBackend) {
				defer wg.Done()
				maps[i], errs[i] = b.QueryPrefix(prefix, depth, from, to)
			}(i, t.members[i].backend)
		}
		wg.Wait()
	}
	var firstErr error
	failed := 0
	for i := range errs {
		if errs[i] != nil {
			failed++
			if firstErr == nil {
				firstErr = errs[i]
			}
		}
	}
	if failed == n {
		return nil, fmt.Errorf("store: all nodes failed: %w", firstErr)
	}
	if failed > 0 {
		if err := c.checkPrefixQuorum(t, errs, firstErr); err != nil {
			return nil, err
		}
	}
	out := make(map[core.SensorID][]core.Reading)
	for i := range errs {
		if errs[i] != nil {
			continue
		}
		for id, rs := range maps[i] {
			if prev, dup := out[id]; dup {
				out[id] = mergeReplicaReadings(prev, rs)
			} else {
				out[id] = rs
			}
		}
	}
	return out, nil
}

// DeleteBefore implements Backend; replicas are cleaned concurrently at
// the write consistency level, with hints queued for replicas that
// missed the delete. During a rebalance the delete also reaches the
// target ring's owners, so a moved range cannot resurrect data deleted
// mid-transition.
func (c *Cluster) DeleteBefore(id core.SensorID, cutoff int64) error {
	t := c.top()
	replicas, readN := c.writeReplicas(t, id)
	errs := c.fanOut(replicas, localOnly(t, replicas), func(idx int) error {
		return t.members[idx].backend.DeleteBefore(id, cutoff)
	})
	required := c.writeCL.required(readN)
	acked, ackedAll := 0, 0
	var lastErr error
	for i, err := range errs {
		if err == nil {
			ackedAll++
			if i < readN {
				acked++
			}
		} else {
			lastErr = err
		}
	}
	if acked < required {
		c.met.writesFailed.Inc()
		return fmt.Errorf("store: write consistency %s not met (%d/%d replicas): %w",
			c.writeCL, acked, required, lastErr)
	}
	c.met.writesOK.Inc()
	if c.hints != nil && ackedAll < len(replicas) {
		for i, idx := range replicas {
			if errs[i] != nil {
				c.hintDelete(t.members[idx].id, id, cutoff)
			}
		}
	}
	return nil
}

// Compact compacts every backend.
func (c *Cluster) Compact() {
	for _, m := range c.top().members {
		m.backend.Compact()
	}
}

// Flush forces every backend's memtable into sorted runs (durable nodes
// spill them to disk in the background). Backends flush concurrently —
// with remote nodes a sequential pass would serialise network round
// trips.
func (c *Cluster) Flush() error {
	return firstError(c.eachBackend(func(b NodeBackend) error { return b.Flush() }))
}

// Sync forces every backend's WAL to disk, concurrently.
func (c *Cluster) Sync() error {
	return firstError(c.eachBackend(func(b NodeBackend) error { return b.Sync() }))
}

func (c *Cluster) eachBackend(op func(NodeBackend) error) []error {
	t := c.top()
	errs := make([]error, len(t.members))
	if len(t.members) == 1 {
		errs[0] = op(t.members[0].backend)
		return errs
	}
	var wg sync.WaitGroup
	for i := range t.members {
		wg.Add(1)
		go func(i int, b NodeBackend) {
			defer wg.Done()
			errs[i] = op(b)
		}(i, t.members[i].backend)
	}
	wg.Wait()
	return errs
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close implements Backend. The hint replayer, the rebalancer and
// in-flight read repairs are stopped first, then every backend —
// current and retired — is closed; the first failure is reported after
// every backend has been closed.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.stopBG != nil {
		close(c.stopBG)
		c.bgWG.Wait()
	}
	c.rebGen.Add(1) // invalidate any in-flight rebalance
	c.rebWG.Wait()
	c.repairWG.Wait()
	var firstErr error
	for _, m := range c.top().members {
		if err := m.backend.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.retiredMu.Lock()
	retired := c.retired
	c.retired = nil
	c.retiredMu.Unlock()
	for _, b := range retired {
		if err := b.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.hints != nil {
		if err := c.hints.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SensorIDs lists every SID present on any backend, deduplicated and
// sorted. Backends are listed concurrently — sequential round trips
// would serialize per-node latency (or a dead node's dial timeout) at
// every tool startup.
func (c *Cluster) SensorIDs() []core.SensorID {
	t := c.top()
	lists := make([][]core.SensorID, len(t.members))
	var wg sync.WaitGroup
	for i := range t.members {
		wg.Add(1)
		go func(i int, b NodeBackend) {
			defer wg.Done()
			lists[i] = b.SensorIDs()
		}(i, t.members[i].backend)
	}
	wg.Wait()
	seen := make(map[core.SensorID]struct{})
	for _, ids := range lists {
		for _, id := range ids {
			seen[id] = struct{}{}
		}
	}
	out := make([]core.SensorID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// TotalInserts sums the insert counters of all backends (replication
// makes this larger than the number of logical writes).
func (c *Cluster) TotalInserts() int64 {
	var total int64
	for _, m := range c.top().members {
		ins, _, _ := m.backend.Stats()
		total += ins
	}
	return total
}
