package store

import (
	"time"

	"dcdb/internal/core"
	"dcdb/internal/fold"
)

// NodeBackend is the full API of one storage node as the Cluster sees
// it. *Node implements it in-process; rpc.Client implements it over the
// wire, which is what lets storage nodes run as separate processes
// (paper §4.3: Collect Agents forward readings to a cluster of database
// server processes). Everything a coordinator does — writes, reads,
// maintenance, liveness probes — goes through this interface, so the
// Cluster never cares where a replica lives.
type NodeBackend interface {
	Backend

	// Flush forces the node's memtable into sorted runs (durable nodes
	// spill them to disk in the background).
	Flush() error
	// Sync forces the node's WAL to disk.
	Sync() error
	// Compact merges the node's runs and drops expired entries.
	Compact()
	// Stats reports cumulative insert/query counters and the resident
	// entry count. Advisory: remote implementations may return zeros
	// when the node is unreachable.
	Stats() (inserts, queries int64, entries int)
	// SensorIDs lists every SID present on the node, sorted. Advisory:
	// remote implementations may return nil when the node is
	// unreachable.
	SensorIDs() []core.SensorID
	// Ping probes liveness cheaply; the hinted-handoff replayer uses it
	// to decide when a replica is back.
	Ping() error

	// QueryStream is the streaming form of Query: the result arrives
	// in bounded chunks pulled on demand, so neither the node nor the
	// caller ever materializes a long retention's worth of readings.
	// The stream must be closed (closing early cancels it).
	QueryStream(id core.SensorID, from, to int64) (ReadingStream, error)
	// QueryPrefixStream is the streaming form of QueryPrefix: sensors
	// arrive in ascending SID order, each sensor's readings chunked in
	// timestamp order (a sensor may span consecutive chunks).
	QueryPrefixStream(prefix core.SensorID, depth int, from, to int64) (KeyedReadingStream, error)

	// Aggregate runs an analysis fold (internal/fold) over the
	// sensor's readings in the spec's range where the data lives and
	// returns only the finished state — the aggregation pushdown path.
	// The state is bit-identical to folding the node's QueryStream
	// client-side.
	Aggregate(id core.SensorID, spec fold.Spec) (fold.State, error)

	// InsertVersioned stores readings carrying coordinator-assigned
	// write versions (and absolute expiries). Query-time dedup resolves
	// duplicate timestamps newest-version-wins, so a replayed hint —
	// which re-delivers its original version — can never overwrite a
	// later versioned rewrite.
	InsertVersioned(id core.SensorID, vrs []VersionedReading) error
	// QueryVersioned returns the sensor's deduplicated readings in
	// [from, to] with the version and expiry each winning write carried
	// — the anti-entropy transfer format.
	QueryVersioned(id core.SensorID, from, to int64) ([]VersionedReading, error)
	// Digest fingerprints the sensor's deduplicated readings in
	// [from, to]: the order-sensitive fold fingerprint over (ts, value)
	// plus the reading count. Two replicas whose digests match hold
	// value-identical data for the range regardless of how the versions
	// that produced it differ.
	Digest(id core.SensorID, from, to int64) (fp uint64, count int64, err error)
}

// VersionedReading is one reading together with the write version and
// absolute expiry it was coordinated with (Expire 0 = never, Version 0
// = legacy unversioned write). It is the unit of versioned replication:
// hint replay and anti-entropy repair move VersionedReadings so the
// original conflict-resolution order survives re-delivery.
type VersionedReading struct {
	Timestamp int64
	Value     float64
	Version   uint64
	Expire    int64
}

// Consistency is the number-of-replicas contract of a cluster
// operation, mirroring Cassandra's tunable consistency levels for the
// two configurations that matter in monitoring deployments.
type Consistency int

const (
	// ConsistencyOne acknowledges a write (or serves a read) after one
	// replica responds — the common monitoring configuration: ingest
	// availability over freshness.
	ConsistencyOne Consistency = iota + 1
	// ConsistencyQuorum requires floor(replication/2)+1 replicas, so
	// any read quorum intersects any write quorum.
	ConsistencyQuorum
)

// required returns how many replica acknowledgements the level needs
// out of replication copies.
func (c Consistency) required(replication int) int {
	if c == ConsistencyQuorum {
		return replication/2 + 1
	}
	return 1
}

// String names the level the way the CLI flags spell it.
func (c Consistency) String() string {
	if c == ConsistencyQuorum {
		return "quorum"
	}
	return "one"
}

// ParseConsistency parses a CLI-style consistency level name.
func ParseConsistency(s string) (Consistency, bool) {
	switch s {
	case "one", "ONE", "1":
		return ConsistencyOne, true
	case "quorum", "QUORUM":
		return ConsistencyQuorum, true
	}
	return 0, false
}

// Ping implements NodeBackend for the in-process node.
func (n *Node) Ping() error {
	if n.down.Load() {
		return ErrNodeDown
	}
	if n.closed.Load() {
		return ErrNodeClosed
	}
	return nil
}

// TTLToExpire converts a relative TTL to the absolute expiry the store
// keeps (0 = never), read once so replica fan-out and hints agree.
func TTLToExpire(ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	return time.Now().Add(ttl).UnixNano()
}

// expireToTTL is the inverse, used when a hinted write is replayed: the
// absolute expiry recorded at coordination time becomes the TTL the
// node API takes. ok is false when the entry has already expired.
func expireToTTL(expire int64) (time.Duration, bool) {
	if expire == 0 {
		return 0, true
	}
	d := time.Until(time.Unix(0, expire))
	if d <= 0 {
		return 0, false
	}
	return d, true
}

var _ NodeBackend = (*Node)(nil)
