package store

import (
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"dcdb/internal/backoff"
	"dcdb/internal/core"
)

// Background machinery of a durable node: the spiller turns flushed
// memtables into run files off the ingest path, and the compactor
// merges run files copy-aside with size-tiered scheduling so neither
// queries nor ingest ever wait on a merge. Both publish their results
// under a short exclusive shard lock; all heavy I/O happens outside
// every lock, reading only immutable entry slices.

// spillJob carries one flushed memtable generation to disk.
type spillJob struct {
	shard     int
	seq       uint64
	series    map[core.SensorID][]entry
	tombs     map[core.SensorID]int64
	covered   []string // WAL segment paths deletable once the file is durable
	attempts  int
	notBefore time.Time // backoff deadline after a failed attempt
}

// Spill failures are retried a few times (transient I/O blips must not
// silently degrade the node for its lifetime) and logged every time;
// after the last attempt the job is dropped — its data stays
// recoverable from the WAL segments, which are only deleted on
// success. Retries use the shared jittered policy, growing from 500ms
// so a persistently sick disk is probed, not hammered.
const spillMaxAttempts = 5

var spillRetryPolicy = backoff.Policy{
	Initial: 500 * time.Millisecond, Max: 5 * time.Second, Multiplier: 2, Jitter: 0.25,
}

// spiller is the single background writer of run files. One goroutine
// keeps spills in per-shard sequence order (FIFO) so a shard's file
// list only ever grows at the newest end.
type spiller struct {
	n      *Node
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []spillJob
	active bool
	closed bool
	err    error // first spill failure, surfaced by close
}

func newSpiller(n *Node) *spiller {
	s := &spiller{n: n}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

func (s *spiller) enqueue(j spillJob) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runnableLocked returns the index of the next job to run: the first
// whose backoff deadline has passed and that has no earlier queued job
// for the same shard (per-shard sequence order is a recovery
// invariant; cross-shard order is not). During close, backoff is
// ignored so draining never sleeps. Returns -1 when every queued job
// is backing off.
func (s *spiller) runnableLocked(now time.Time) int {
	var blocked [numShards]bool
	for i, j := range s.queue {
		if blocked[j.shard] {
			continue
		}
		if s.closed || !j.notBefore.After(now) {
			return i
		}
		blocked[j.shard] = true
	}
	return -1
}

func (s *spiller) loop() {
	for {
		s.mu.Lock()
		var j spillJob
		for {
			if len(s.queue) == 0 {
				if s.closed {
					s.mu.Unlock()
					return
				}
				s.cond.Wait()
				continue
			}
			idx := s.runnableLocked(time.Now())
			if idx >= 0 {
				j = s.queue[idx]
				s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
				break
			}
			// Every queued job is backing off; poll rather than build
			// a timer-wakeup protocol — the window is rare and short.
			s.mu.Unlock()
			time.Sleep(10 * time.Millisecond)
			s.mu.Lock()
		}
		s.active = true
		s.mu.Unlock()

		spillStart := time.Now()
		err := s.n.spillOne(j)
		if err == nil && !instrumentationOff.Load() {
			s.n.met.spillDur.ObserveSince(spillStart)
		}

		s.mu.Lock()
		s.active = false
		if err != nil {
			j.attempts++
			log.Printf("store: spilling run %d of shard %d failed (attempt %d/%d): %v",
				j.seq, j.shard, j.attempts, spillMaxAttempts, err)
			if !s.closed && j.attempts < spillMaxAttempts {
				// Back at the front so per-shard order holds; the
				// deadline lets other shards' spills proceed in the
				// meantime.
				j.notBefore = time.Now().Add(spillRetryPolicy.Delay(j.attempts))
				s.queue = append([]spillJob{j}, s.queue...)
			} else if s.err == nil {
				s.err = err
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// waitIdle blocks until every enqueued spill has reached disk.
func (s *spiller) waitIdle() {
	s.mu.Lock()
	for len(s.queue) > 0 || s.active {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// close drains the queue, stops the loop and reports the first spill
// failure.
func (s *spiller) close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	for len(s.queue) > 0 || s.active {
		s.cond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	return err
}

// spillOne writes one flush's run file (format v2) and retires the WAL
// segments it covers. On failure the segments are kept: the data stays
// recoverable from the WAL and the in-memory run keeps serving queries.
//
// On a cache-bounded node the freshly spilled run is immediately
// swapped cold: the flushed memtable arrays are dropped under the shard
// lock and later reads decode blocks from the just-written file through
// the cache. This is the eviction half of the resident-set bound — a
// node's memory stops growing the moment data reaches disk.
func (n *Node) spillOne(j spillJob) error {
	sh := &n.shards[j.shard]
	meta, idx, err := writeRunFileV2(sh.disk.dir, j.seq, j.seq, j.series, j.tombs)
	if err != nil {
		return err
	}
	meta.tombs = j.tombs
	if n.cache != nil {
		if rf, err := openRunFileHandle(meta.path, idx.dataLen, n.cache); err != nil {
			// The file is durable; only eviction is lost. Keep the run
			// hot rather than fail the spill.
			log.Printf("store: opening %s for cold reads: %v (run stays resident)", meta.path, err)
		} else {
			meta.rf = rf
		}
	}
	sh.mu.Lock()
	sh.disk.files = append(sh.disk.files, meta)
	if meta.rf != nil {
		n.evictSpilledLocked(sh, j.seq, idx, meta.rf)
	}
	sh.mu.Unlock()
	for _, p := range j.covered {
		os.Remove(p)
	}
	return nil
}

// evictSpilledLocked swaps the hot in-memory runs of one just-spilled
// flush generation to cold block-indexed form, releasing their entry
// arrays. A DeleteBefore may have trimmed (or removed) a hot run since
// the flush snapshot was taken — the file holds the pre-delete rows, so
// the cold run inherits the hot run's surviving min as its cut and
// drops wholly-deleted blocks. Caller holds sh.mu exclusively.
func (n *Node) evictSpilledLocked(sh *shard, seq uint64, idx *runIndex, rf *runFile) {
	for _, se := range idx.series {
		rs, ok := sh.runs[se.id]
		if !ok {
			continue // the whole run was deleted while spilling
		}
		for k := range rs {
			if rs[k].seq != seq || rs[k].cold != nil {
				continue
			}
			cut := rs[k].min
			blocks := se.blocks
			count := int(se.count)
			if len(rs[k].es) != count {
				// Trimmed by a delete: skip blocks the cut covers.
				lo := sort.Search(len(blocks), func(i int) bool { return blocks[i].max >= cut })
				for _, m := range blocks[:lo] {
					count -= int(m.count)
				}
				blocks = blocks[lo:]
				// The cold run's block-granular count keeps the
				// straddling block's already-deleted entries that the
				// delete subtracted from flushedSize; re-add the
				// difference so the run's later retirement (which
				// subtracts the full cold count) balances to zero.
				sh.flushedSize += count - len(rs[k].es)
			}
			rs[k] = run{
				min: rs[k].min, max: rs[k].max, seq: seq,
				cold: &coldRun{rf: rf, blocks: blocks, count: count},
				cut:  cut,
			}
			break
		}
	}
}

// compactLoop is the background compaction scheduler: every tick it
// offers each shard one size-tiered merge.
func (n *Node) compactLoop() {
	defer n.bgWG.Done()
	t := time.NewTicker(n.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopBG:
			return
		case <-t.C:
			for i := range n.shards {
				sh := &n.shards[i]
				sh.disk.cmu.Lock()
				n.compactWindow(i, false)
				sh.disk.cmu.Unlock()
			}
		}
	}
}

// syncLoop batches WAL fsyncs at the configured interval.
func (n *Node) syncLoop() {
	defer n.bgWG.Done()
	t := time.NewTicker(n.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopBG:
			return
		case <-t.C:
			// Sync failures mark the segment broken, so the next
			// write on that shard surfaces the error to its caller.
			_ = n.Sync()
		}
	}
}

// pickWindow selects the newest contiguous window of similar-sized run
// files to merge (size-tiered): starting from the newest file, older
// neighbours join while no single file dwarfs the accumulated window
// (4× its total size), which leaves large, settled files alone until
// enough fresh flushes pile up to justify rewriting them. Merging
// triggers only once the shard holds more than maxRuns files; lo == hi
// means nothing to do.
func pickWindow(files []runFileMeta, maxRuns int) (lo, hi int) {
	if len(files) <= maxRuns {
		return 0, 0
	}
	hi = len(files)
	lo = hi
	var total int64
	for lo > 0 {
		sz := files[lo-1].size
		if total > 0 && sz > 4*total {
			break
		}
		total += sz
		lo--
	}
	if hi-lo < 2 {
		// Strictly geometric file sizes: merge the two newest so the
		// count stays bounded regardless.
		lo = hi - 2
	}
	return lo, hi
}

// mergeParts concatenates a sensor's runs (oldest first), drops entries
// expired at now, and restores timestamp order. The sort is stable so
// duplicate timestamps keep the newest write last, which is what the
// query-time dedup prefers.
func mergeParts(parts [][]entry, now int64) []entry {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	merged := make([]entry, 0, total)
	for _, p := range parts {
		for _, e := range p {
			if e.expire != 0 && e.expire <= now {
				continue
			}
			merged = append(merged, e)
		}
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].ts < merged[j].ts }) {
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].ts < merged[j].ts })
	}
	return merged
}

// windowRun is one snapshotted merge input of a compaction: either a
// hot run's immutable entry slice or a cold run's retained file handle
// plus block index.
type windowRun struct {
	es     []entry
	cold   *coldRun
	cut    int64
	minSeq uint64 // the run's seq, for diagnostics
}

// mergeWindowRuns streams one sensor's window runs (oldest first)
// through a k-way merge, dropping entries expired at now, and feeds
// each surviving entry to emit in timestamp order (duplicates kept,
// oldest first — query-time dedup stays newest-wins). Cold runs are
// read block-at-a-time with pooled scratch, bypassing the query cache
// so a background merge cannot flush the hot working set.
func mergeWindowRuns(refs []windowRun, now int64, emit func(entry) error) error {
	srcs := make([]iterSource, 0, len(refs))
	var retained []*runFile
	defer func() {
		for _, s := range srcs {
			s.it.close()
		}
		for _, rf := range retained {
			rf.release()
		}
	}()
	for _, r := range refs {
		if r.cold != nil {
			r.cold.rf.retain()
			retained = append(retained, r.cold.rf)
			from := r.cut
			ci := makeColdIter(r.cold, nil, from, 1<<62)
			it := &ci
			if len(it.blocks) == 0 {
				continue
			}
			min, max := it.blocks[0].min, it.blocks[len(it.blocks)-1].max
			if from > min {
				min = from
			}
			srcs = append(srcs, iterSource{it: it, min: min, max: max})
			continue
		}
		if len(r.es) == 0 {
			continue
		}
		srcs = append(srcs, iterSource{it: &sliceIter{es: r.es}, min: r.es[0].ts, max: r.es[len(r.es)-1].ts})
	}
	if len(srcs) == 0 {
		return nil
	}
	m := newEntryMerge(srcs)
	for {
		e, ok := m.next()
		if !ok {
			break
		}
		if e.expire != 0 && e.expire <= now {
			continue
		}
		if err := emit(e); err != nil {
			return err
		}
	}
	return m.iterErr()
}

// compactWindow merges one window of shard i's run files copy-aside:
// the inputs are snapshotted under a read lock, merged and streamed
// into a new v2 run file with no lock held, and swapped in under a
// brief write lock; the old files are deleted afterwards (write-new,
// rename, delete-old). On a cache-bounded node the merge is cold
// end-to-end — input blocks are decoded one at a time and output blocks
// stream through the v2 writer, so compaction memory is O(blocks), not
// O(window) — and the merged run is registered cold. A DeleteBefore
// racing with the merge bumps the shard's delVer and the merge aborts
// rather than resurrect deleted rows. full selects every file
// (Compact); otherwise pickWindow decides. Caller holds sh.disk.cmu.
func (n *Node) compactWindow(i int, full bool) {
	sh := &n.shards[i]
	now := time.Now().UnixNano()

	sh.mu.RLock()
	var lo, hi int
	if full {
		lo, hi = 0, len(sh.disk.files)
	} else {
		lo, hi = pickWindow(sh.disk.files, n.opts.MaxRuns)
	}
	if hi-lo == 0 || (hi-lo < 2 && !full) {
		sh.mu.RUnlock()
		return
	}
	compactStart := time.Now()
	defer func() {
		if !instrumentationOff.Load() {
			n.met.compactDur.ObserveSince(compactStart)
		}
	}()
	window := append([]runFileMeta(nil), sh.disk.files[lo:hi]...)
	minSeq, maxSeq := window[0].minSeq, window[len(window)-1].maxSeq
	inWindow := func(seq uint64) bool { return seq >= minSeq && seq <= maxSeq }
	// Snapshot the window's per-sensor merge inputs. Hot runs are
	// immutable once flushed and cold runs' files are retained inside
	// mergeWindowRuns, so both are safe to read without the lock; the
	// delVer check below catches the one mutation that re-slices them
	// (DeleteBefore).
	series := make(map[core.SensorID][]windowRun)
	for id, rs := range sh.runs {
		for _, r := range rs {
			if inWindow(r.seq) {
				series[id] = append(series[id], windowRun{es: r.es, cold: r.cold, cut: r.cut, minSeq: r.seq})
			}
		}
	}
	// Residual tombstones still apply to files older than the window;
	// a window reaching the oldest file retires them for good.
	var tombs map[core.SensorID]int64
	if lo > 0 {
		for _, m := range window {
			for id, cutoff := range m.tombs {
				if tombs == nil {
					tombs = make(map[core.SensorID]int64)
				}
				if cutoff > tombs[id] {
					tombs[id] = cutoff
				}
			}
		}
	}
	delVer0 := sh.disk.delVer
	sh.mu.RUnlock()

	ids := sortedIDs(len(series), func(yield func(core.SensorID)) {
		for id := range series {
			yield(id)
		}
	})

	cold := n.cache != nil
	// Hot mode keeps the merged entries to register resident runs; cold
	// mode registers block indexes from the writer instead and never
	// materializes a series.
	var merged map[core.SensorID][]entry
	if !cold {
		merged = make(map[core.SensorID][]entry, len(series))
	}
	w, err := newRunFileWriter(sh.disk.dir, minSeq, maxSeq)
	if err != nil {
		return // inputs untouched; retried next tick
	}
	counts := make(map[core.SensorID]int, len(series))
	for _, id := range ids {
		var buf []entry
		open := false
		err := mergeWindowRuns(series[id], now, func(e entry) error {
			if cold {
				if !open {
					if err := w.beginSeries(id); err != nil {
						return err
					}
					open = true
				}
				counts[id]++
				return w.add(e)
			}
			buf = append(buf, e)
			return nil
		})
		if err == nil && open {
			err = w.endSeries()
		}
		if err == nil && !cold && len(buf) > 0 {
			if err = w.addSeries(id, buf); err == nil {
				merged[id] = buf
				counts[id] = len(buf)
			}
		}
		if err != nil {
			w.abort()
			return
		}
	}
	var newMeta runFileMeta
	var newIdx *runIndex
	wrote := false
	if len(counts) > 0 || len(tombs) > 0 {
		newMeta, newIdx, err = w.finish(tombs)
		if err != nil {
			return // inputs untouched; retried next tick
		}
		wrote = true
	} else {
		w.abort() // everything expired and no residual tombstones
	}
	var newRF *runFile
	if wrote && cold {
		if newRF, err = openRunFileHandle(newMeta.path, newIdx.dataLen, n.cache); err != nil {
			log.Printf("store: opening %s for cold reads: %v (aborting swap)", newMeta.path, err)
			// The old files remain live and the merged file's span
			// covers theirs; recovery would retire them, but without a
			// read handle the merged data is unreachable now, so drop
			// the output and retry next tick.
			os.Remove(newMeta.path)
			return
		}
		newMeta.rf = newRF
	}
	newCold := make(map[core.SensorID]*coldRun)
	if newRF != nil {
		for _, se := range newIdx.series {
			newCold[se.id] = &coldRun{rf: newRF, blocks: se.blocks, count: int(se.count)}
		}
	}

	sh.mu.Lock()
	if sh.disk.delVer != delVer0 {
		sh.mu.Unlock()
		if newRF != nil {
			newRF.release()
		}
		if wrote {
			// A single-file window was rewritten in place (same span,
			// same path): the rename already replaced the live input,
			// which must survive. Its content predates the racing
			// delete, but the delete's WAL record (or its tombstone in
			// a later run file) re-applies at recovery, so the stale
			// rows cannot resurrect. Only a distinct merged file is
			// discarded here.
			replaced := false
			for _, m := range window {
				if m.path == newMeta.path {
					replaced = true
					break
				}
			}
			if !replaced {
				os.Remove(newMeta.path)
			}
		}
		return
	}
	adj := 0
	for id := range series {
		old := sh.runs[id]
		kept := make([]run, 0, len(old))
		for _, r := range old {
			if inWindow(r.seq) {
				if r.cold != nil {
					adj -= r.cold.count
				} else {
					adj -= len(r.es)
				}
				continue
			}
			kept = append(kept, r)
		}
		var mr run
		haveMerged := false
		if c, ok := newCold[id]; ok {
			mr = run{min: c.blocks[0].min, max: c.blocks[len(c.blocks)-1].max, seq: maxSeq, cold: c}
			adj += c.count
			haveMerged = true
		} else if es, ok := merged[id]; ok {
			mr = run{es: es, min: es[0].ts, max: es[len(es)-1].ts, seq: maxSeq}
			adj += len(es)
			haveMerged = true
		}
		if haveMerged {
			pos := sort.Search(len(kept), func(k int) bool { return kept[k].seq > maxSeq })
			kept = append(kept, run{})
			copy(kept[pos+1:], kept[pos:])
			kept[pos] = mr
		}
		if len(kept) == 0 {
			delete(sh.runs, id)
			if s, ok := sh.mem[id]; !ok || len(s.entries) == 0 {
				sh.indexOK = false // sensor fully expired away
			}
		} else {
			sh.runs[id] = kept
		}
	}
	sh.flushedSize += adj
	// The spiller only appends, so the window's position is stable.
	files := make([]runFileMeta, 0, len(sh.disk.files)-len(window)+1)
	files = append(files, sh.disk.files[:lo]...)
	if wrote {
		files = append(files, newMeta)
	}
	files = append(files, sh.disk.files[hi:]...)
	sh.disk.files = files
	sh.mu.Unlock()

	for _, m := range window {
		// A single-file window (full compaction rewriting expired
		// entries away) produces the same span and therefore the same
		// path: the rename already replaced it, so it must survive on
		// disk — but its old read handle now names a replaced inode and
		// is released like the rest.
		if m.rf != nil {
			m.rf.release()
		}
		if wrote && m.path == newMeta.path {
			continue
		}
		os.Remove(m.path)
	}
	syncDir(sh.disk.dir)
}
