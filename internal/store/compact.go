package store

import (
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"dcdb/internal/core"
)

// Background machinery of a durable node: the spiller turns flushed
// memtables into run files off the ingest path, and the compactor
// merges run files copy-aside with size-tiered scheduling so neither
// queries nor ingest ever wait on a merge. Both publish their results
// under a short exclusive shard lock; all heavy I/O happens outside
// every lock, reading only immutable entry slices.

// spillJob carries one flushed memtable generation to disk.
type spillJob struct {
	shard     int
	seq       uint64
	series    map[core.SensorID][]entry
	tombs     map[core.SensorID]int64
	covered   []string // WAL segment paths deletable once the file is durable
	attempts  int
	notBefore time.Time // backoff deadline after a failed attempt
}

// Spill failures are retried a few times (transient I/O blips must not
// silently degrade the node for its lifetime) and logged every time;
// after the last attempt the job is dropped — its data stays
// recoverable from the WAL segments, which are only deleted on
// success.
const (
	spillMaxAttempts = 5
	spillRetryDelay  = 500 * time.Millisecond
)

// spiller is the single background writer of run files. One goroutine
// keeps spills in per-shard sequence order (FIFO) so a shard's file
// list only ever grows at the newest end.
type spiller struct {
	n      *Node
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []spillJob
	active bool
	closed bool
	err    error // first spill failure, surfaced by close
}

func newSpiller(n *Node) *spiller {
	s := &spiller{n: n}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

func (s *spiller) enqueue(j spillJob) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runnableLocked returns the index of the next job to run: the first
// whose backoff deadline has passed and that has no earlier queued job
// for the same shard (per-shard sequence order is a recovery
// invariant; cross-shard order is not). During close, backoff is
// ignored so draining never sleeps. Returns -1 when every queued job
// is backing off.
func (s *spiller) runnableLocked(now time.Time) int {
	var blocked [numShards]bool
	for i, j := range s.queue {
		if blocked[j.shard] {
			continue
		}
		if s.closed || !j.notBefore.After(now) {
			return i
		}
		blocked[j.shard] = true
	}
	return -1
}

func (s *spiller) loop() {
	for {
		s.mu.Lock()
		var j spillJob
		for {
			if len(s.queue) == 0 {
				if s.closed {
					s.mu.Unlock()
					return
				}
				s.cond.Wait()
				continue
			}
			idx := s.runnableLocked(time.Now())
			if idx >= 0 {
				j = s.queue[idx]
				s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
				break
			}
			// Every queued job is backing off; poll rather than build
			// a timer-wakeup protocol — the window is rare and short.
			s.mu.Unlock()
			time.Sleep(10 * time.Millisecond)
			s.mu.Lock()
		}
		s.active = true
		s.mu.Unlock()

		err := s.n.spillOne(j)

		s.mu.Lock()
		s.active = false
		if err != nil {
			j.attempts++
			log.Printf("store: spilling run %d of shard %d failed (attempt %d/%d): %v",
				j.seq, j.shard, j.attempts, spillMaxAttempts, err)
			if !s.closed && j.attempts < spillMaxAttempts {
				// Back at the front so per-shard order holds; the
				// deadline lets other shards' spills proceed in the
				// meantime.
				j.notBefore = time.Now().Add(spillRetryDelay)
				s.queue = append([]spillJob{j}, s.queue...)
			} else if s.err == nil {
				s.err = err
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// waitIdle blocks until every enqueued spill has reached disk.
func (s *spiller) waitIdle() {
	s.mu.Lock()
	for len(s.queue) > 0 || s.active {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// close drains the queue, stops the loop and reports the first spill
// failure.
func (s *spiller) close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	for len(s.queue) > 0 || s.active {
		s.cond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	return err
}

// spillOne writes one flush's run file and retires the WAL segments it
// covers. On failure the segments are kept: the data stays recoverable
// from the WAL and the in-memory run keeps serving queries.
func (n *Node) spillOne(j spillJob) error {
	sh := &n.shards[j.shard]
	meta, err := writeRunFile(sh.disk.dir, j.seq, j.seq, j.series, j.tombs)
	if err != nil {
		return err
	}
	meta.tombs = j.tombs
	sh.mu.Lock()
	sh.disk.files = append(sh.disk.files, meta)
	sh.mu.Unlock()
	for _, p := range j.covered {
		os.Remove(p)
	}
	return nil
}

// compactLoop is the background compaction scheduler: every tick it
// offers each shard one size-tiered merge.
func (n *Node) compactLoop() {
	defer n.bgWG.Done()
	t := time.NewTicker(n.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopBG:
			return
		case <-t.C:
			for i := range n.shards {
				sh := &n.shards[i]
				sh.disk.cmu.Lock()
				n.compactWindow(i, false)
				sh.disk.cmu.Unlock()
			}
		}
	}
}

// syncLoop batches WAL fsyncs at the configured interval.
func (n *Node) syncLoop() {
	defer n.bgWG.Done()
	t := time.NewTicker(n.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopBG:
			return
		case <-t.C:
			// Sync failures mark the segment broken, so the next
			// write on that shard surfaces the error to its caller.
			_ = n.Sync()
		}
	}
}

// pickWindow selects the newest contiguous window of similar-sized run
// files to merge (size-tiered): starting from the newest file, older
// neighbours join while no single file dwarfs the accumulated window
// (4× its total size), which leaves large, settled files alone until
// enough fresh flushes pile up to justify rewriting them. Merging
// triggers only once the shard holds more than maxRuns files; lo == hi
// means nothing to do.
func pickWindow(files []runFileMeta, maxRuns int) (lo, hi int) {
	if len(files) <= maxRuns {
		return 0, 0
	}
	hi = len(files)
	lo = hi
	var total int64
	for lo > 0 {
		sz := files[lo-1].size
		if total > 0 && sz > 4*total {
			break
		}
		total += sz
		lo--
	}
	if hi-lo < 2 {
		// Strictly geometric file sizes: merge the two newest so the
		// count stays bounded regardless.
		lo = hi - 2
	}
	return lo, hi
}

// mergeParts concatenates a sensor's runs (oldest first), drops entries
// expired at now, and restores timestamp order. The sort is stable so
// duplicate timestamps keep the newest write last, which is what the
// query-time dedup prefers.
func mergeParts(parts [][]entry, now int64) []entry {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	merged := make([]entry, 0, total)
	for _, p := range parts {
		for _, e := range p {
			if e.expire != 0 && e.expire <= now {
				continue
			}
			merged = append(merged, e)
		}
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].ts < merged[j].ts }) {
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].ts < merged[j].ts })
	}
	return merged
}

// compactWindow merges one window of shard i's run files copy-aside:
// the inputs are snapshotted under a read lock, merged and written to a
// new run file with no lock held, and swapped in under a brief write
// lock; the old files are deleted afterwards (write-new, rename,
// delete-old). A DeleteBefore racing with the merge bumps the shard's
// delVer and the merge aborts rather than resurrect deleted rows.
// full selects every file (Compact); otherwise pickWindow decides.
// Caller holds sh.disk.cmu.
func (n *Node) compactWindow(i int, full bool) {
	sh := &n.shards[i]
	now := time.Now().UnixNano()

	sh.mu.RLock()
	var lo, hi int
	if full {
		lo, hi = 0, len(sh.disk.files)
	} else {
		lo, hi = pickWindow(sh.disk.files, n.opts.MaxRuns)
	}
	if hi-lo == 0 || (hi-lo < 2 && !full) {
		sh.mu.RUnlock()
		return
	}
	window := append([]runFileMeta(nil), sh.disk.files[lo:hi]...)
	minSeq, maxSeq := window[0].minSeq, window[len(window)-1].maxSeq
	inWindow := func(seq uint64) bool { return seq >= minSeq && seq <= maxSeq }
	// Snapshot the window's per-sensor entry slices. Runs are
	// immutable once flushed, so they are safe to read without the
	// lock; the delVer check below catches the one mutation that
	// re-slices them (DeleteBefore).
	series := make(map[core.SensorID][][]entry)
	for id, rs := range sh.runs {
		for _, r := range rs {
			if inWindow(r.seq) {
				series[id] = append(series[id], r.es)
			}
		}
	}
	// Residual tombstones still apply to files older than the window;
	// a window reaching the oldest file retires them for good.
	var tombs map[core.SensorID]int64
	if lo > 0 {
		for _, m := range window {
			for id, cutoff := range m.tombs {
				if tombs == nil {
					tombs = make(map[core.SensorID]int64)
				}
				if cutoff > tombs[id] {
					tombs[id] = cutoff
				}
			}
		}
	}
	delVer0 := sh.disk.delVer
	sh.mu.RUnlock()

	merged := make(map[core.SensorID][]entry, len(series))
	for id, parts := range series {
		if es := mergeParts(parts, now); len(es) > 0 {
			merged[id] = es
		}
	}

	var newMeta runFileMeta
	wrote := false
	if len(merged) > 0 || len(tombs) > 0 {
		var err error
		newMeta, err = writeRunFile(sh.disk.dir, minSeq, maxSeq, merged, tombs)
		if err != nil {
			return // inputs untouched; retried next tick
		}
		newMeta.tombs = tombs
		wrote = true
	}

	sh.mu.Lock()
	if sh.disk.delVer != delVer0 {
		sh.mu.Unlock()
		if wrote {
			// A single-file window was rewritten in place (same span,
			// same path): the rename already replaced the live input,
			// which must survive. Its content predates the racing
			// delete, but the delete's WAL record (or its tombstone in
			// a later run file) re-applies at recovery, so the stale
			// rows cannot resurrect. Only a distinct merged file is
			// discarded here.
			replaced := false
			for _, m := range window {
				if m.path == newMeta.path {
					replaced = true
					break
				}
			}
			if !replaced {
				os.Remove(newMeta.path)
			}
		}
		return
	}
	adj := 0
	for id := range series {
		old := sh.runs[id]
		kept := make([]run, 0, len(old))
		for _, r := range old {
			if inWindow(r.seq) {
				adj -= len(r.es)
				continue
			}
			kept = append(kept, r)
		}
		if es, ok := merged[id]; ok {
			adj += len(es)
			mr := run{es: es, min: es[0].ts, max: es[len(es)-1].ts, seq: maxSeq}
			pos := sort.Search(len(kept), func(k int) bool { return kept[k].seq > maxSeq })
			kept = append(kept, run{})
			copy(kept[pos+1:], kept[pos:])
			kept[pos] = mr
		}
		if len(kept) == 0 {
			delete(sh.runs, id)
			if s, ok := sh.mem[id]; !ok || len(s.entries) == 0 {
				sh.indexOK = false // sensor fully expired away
			}
		} else {
			sh.runs[id] = kept
		}
	}
	sh.flushedSize += adj
	// The spiller only appends, so the window's position is stable.
	files := make([]runFileMeta, 0, len(sh.disk.files)-len(window)+1)
	files = append(files, sh.disk.files[:lo]...)
	if wrote {
		files = append(files, newMeta)
	}
	files = append(files, sh.disk.files[hi:]...)
	sh.disk.files = files
	sh.mu.Unlock()

	for _, m := range window {
		// A single-file window (full compaction rewriting expired
		// entries away) produces the same span and therefore the same
		// path: the rename already replaced it, so it must survive.
		if wrote && m.path == newMeta.path {
			continue
		}
		os.Remove(m.path)
	}
	syncDir(sh.disk.dir)
}
