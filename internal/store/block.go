package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Block codec of run-file format v2. A block holds up to blockEntries
// consecutive entries of one series, compressed so a cold read pays
// I/O and decode cost proportional to the queried window, not the
// retention:
//
//	byte 0  : flags (bit 0: block carries a non-zero expire section,
//	          bit 1: block carries a non-zero write-version section)
//	ts      : zigzag-varint first timestamp, zigzag-varint first delta,
//	          then zigzag-varint delta-of-deltas (monitoring sensors
//	          sample on a fixed period, so almost every dod is 0 = 1 byte)
//	expires : (only with flag bit 0) zigzag-varint first expire, then
//	          zigzag-varint deltas — omitted entirely for the common
//	          "keep forever" block
//	versions: (only with flag bit 1) uvarint first version, then
//	          zigzag-varint deltas — omitted entirely for unversioned
//	          blocks, so files written before the version bump (and the
//	          all-legacy-write common case) decode as version 0
//	values  : Gorilla-style XOR bit stream, starting byte-aligned after
//	          the version section and padded with zero bits to a byte
//	          boundary at the end
//
// The entry count is not part of the block: it lives in the run file's
// block index next to the block's [minTs,maxTs] bounds and CRC, and the
// decoder takes it as an argument. Corruption is caught by the caller's
// CRC check first; the decoder itself must still survive arbitrary
// bytes (fuzzed) by erroring instead of panicking or over-reading.

// blockEntries is the target entry count per block. 512 entries keep a
// block a few KB — small enough that a point query decodes little,
// large enough that varint/XOR compression amortizes.
const blockEntries = 512

const (
	blockFlagExpire  = 1
	blockFlagVersion = 2
)

// zigzag encodes a signed delta so small magnitudes of either sign
// become small unsigned varints.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// bitWriter packs the XOR value stream MSB-first.
type bitWriter struct {
	buf   []byte
	acc   uint64
	nbits uint
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		take := 8 - w.nbits%8
		if take > n {
			take = n
		}
		w.acc = w.acc<<take | (v>>(n-take))&(1<<take-1)
		w.nbits += take
		n -= take
		if w.nbits%8 == 0 {
			w.buf = append(w.buf, byte(w.acc))
			w.acc = 0
		}
	}
}

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// finish pads the tail with zero bits to a byte boundary.
func (w *bitWriter) finish() []byte {
	if rem := w.nbits % 8; rem != 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-rem)))
		w.acc = 0
	}
	return w.buf
}

// bitReader consumes the XOR value stream. acc holds at most one
// byte's worth of unconsumed bits (its low `have` bits), so a 64-bit
// read from any alignment never overflows the accumulator. Reads past
// the end set err instead of panicking; the decoder checks err once
// per entry.
type bitReader struct {
	buf  []byte
	pos  int  // next byte
	have uint // live bits in acc (the low bits)
	acc  uint64
	err  error
}

func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		if r.have == 0 {
			if r.pos >= len(r.buf) {
				if r.err == nil {
					r.err = fmt.Errorf("store: block value stream truncated")
				}
				return 0
			}
			r.acc = uint64(r.buf[r.pos])
			r.pos++
			r.have = 8
		}
		take := r.have
		if take > n {
			take = n
		}
		v = v<<take | (r.acc>>(r.have-take))&(1<<take-1)
		r.have -= take
		n -= take
	}
	return v
}

func (r *bitReader) readBit() uint64 { return r.readBits(1) }

// encodeBlock appends the encoded form of es (sorted by timestamp, at
// most blockEntries long) to dst and returns it. The caller records
// len(es) and the [minTs,maxTs] bounds in the block index.
func encodeBlock(dst []byte, es []entry) []byte {
	var flags byte
	for _, e := range es {
		if e.expire != 0 {
			flags |= blockFlagExpire
		}
		if e.ver != 0 {
			flags |= blockFlagVersion
		}
		if flags == blockFlagExpire|blockFlagVersion {
			break
		}
	}
	dst = append(dst, flags)

	// Timestamps: first raw, first delta, then delta-of-deltas.
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	prevTS, prevDelta := int64(0), int64(0)
	for i, e := range es {
		switch i {
		case 0:
			put(zigzag(e.ts))
		case 1:
			prevDelta = e.ts - prevTS
			put(zigzag(prevDelta))
		default:
			d := e.ts - prevTS
			put(zigzag(d - prevDelta))
			prevDelta = d
		}
		prevTS = e.ts
	}

	if flags&blockFlagExpire != 0 {
		prev := int64(0)
		for i, e := range es {
			if i == 0 {
				put(zigzag(e.expire))
			} else {
				put(zigzag(e.expire - prev))
			}
			prev = e.expire
		}
	}

	if flags&blockFlagVersion != 0 {
		// Versions within one block are near-monotonic (a run holds a
		// short time window of coordinated writes), so deltas stay small.
		prev := uint64(0)
		for i, e := range es {
			if i == 0 {
				put(e.ver)
			} else {
				put(zigzag(int64(e.ver - prev)))
			}
			prev = e.ver
		}
	}

	// Values: Gorilla XOR. Control bit 0 = same value; 10 = meaningful
	// bits fit the previous window; 11 = new window (5 bits leading
	// zeros, 6 bits significant-bit count minus one).
	bw := bitWriter{buf: dst}
	var prevBits uint64
	prevLead, prevSig := uint(0xff), uint(0)
	for i, e := range es {
		cur := math.Float64bits(e.val)
		if i == 0 {
			bw.writeBits(cur, 64)
			prevBits = cur
			continue
		}
		xor := prevBits ^ cur
		prevBits = cur
		if xor == 0 {
			bw.writeBit(0)
			continue
		}
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31 // 5-bit field; extra leading zeros ride in the payload
		}
		trail := uint(bits.TrailingZeros64(xor))
		sig := 64 - lead - trail
		if prevLead != 0xff && lead >= prevLead && trail >= 64-prevLead-prevSig {
			// Reuse the previous window: cheaper than re-describing it
			// when the meaningful bits still fit inside it.
			bw.writeBits(0b10, 2)
			bw.writeBits(xor>>(64-prevLead-prevSig), prevSig)
			continue
		}
		bw.writeBits(0b11, 2)
		bw.writeBits(uint64(lead), 5)
		bw.writeBits(uint64(sig-1), 6)
		bw.writeBits(xor>>trail, sig)
		prevLead, prevSig = lead, sig
	}
	return bw.finish()
}

// blockScratch pools decode output buffers: every cold block decode
// needs a []entry of up to blockEntries, which would otherwise be a
// fresh allocation per block on the query path.
var blockScratch = sync.Pool{
	New: func() any { s := make([]entry, 0, blockEntries); return &s },
}

func getBlockScratch() *[]entry { return blockScratch.Get().(*[]entry) }

func putBlockScratch(s *[]entry) {
	if cap(*s) <= 4*blockEntries { // don't pool oversized one-offs
		*s = (*s)[:0]
		blockScratch.Put(s)
	}
}

// decodeBlock decodes a block of exactly count entries into dst
// (appending) and returns it. It validates that the encoding is fully
// consumed (only zero-bit padding may remain), that timestamps are
// sorted, and errors — never panics — on any malformed input. The
// caller is expected to have verified the block's CRC first, so an
// error here means either rot the CRC missed or a software bug; both
// must reject the block rather than serve wrong data.
func decodeBlock(dst []byte, count int, out *[]entry) error {
	if count <= 0 {
		return fmt.Errorf("store: block entry count %d invalid", count)
	}
	if len(dst) < 1 {
		return fmt.Errorf("store: block truncated")
	}
	// Every entry costs at least one byte in the timestamp stream, so
	// a count beyond the payload length is forged — reject before the
	// output allocation, not after it.
	if count > len(dst) {
		return fmt.Errorf("store: block entry count %d exceeds %d payload bytes", count, len(dst))
	}
	flags := dst[0]
	if flags&^byte(blockFlagExpire|blockFlagVersion) != 0 {
		return fmt.Errorf("store: block has unknown flags %#x", flags)
	}
	data := dst[1:]
	off := 0
	get := func() (uint64, bool) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}

	base := len(*out)
	*out = append(*out, make([]entry, count)...)
	es := (*out)[base:]

	prevTS, prevDelta := int64(0), int64(0)
	for i := range es {
		u, ok := get()
		if !ok {
			*out = (*out)[:base]
			return fmt.Errorf("store: block timestamp stream truncated")
		}
		switch i {
		case 0:
			prevTS = unzigzag(u)
		case 1:
			prevDelta = unzigzag(u)
			prevTS += prevDelta
		default:
			prevDelta += unzigzag(u)
			prevTS += prevDelta
		}
		es[i].ts = prevTS
		if i > 0 && es[i].ts < es[i-1].ts {
			*out = (*out)[:base]
			return fmt.Errorf("store: block timestamps unsorted")
		}
	}

	if flags&blockFlagExpire != 0 {
		prev := int64(0)
		for i := range es {
			u, ok := get()
			if !ok {
				*out = (*out)[:base]
				return fmt.Errorf("store: block expire stream truncated")
			}
			if i == 0 {
				prev = unzigzag(u)
			} else {
				prev += unzigzag(u)
			}
			es[i].expire = prev
		}
	}

	if flags&blockFlagVersion != 0 {
		prev := uint64(0)
		for i := range es {
			u, ok := get()
			if !ok {
				*out = (*out)[:base]
				return fmt.Errorf("store: block version stream truncated")
			}
			if i == 0 {
				prev = u
			} else {
				prev += uint64(unzigzag(u))
			}
			es[i].ver = prev
		}
	}

	br := bitReader{buf: data[off:]}
	var prevBits uint64
	prevLead, prevSig := uint(0xff), uint(0)
	for i := range es {
		if i == 0 {
			prevBits = br.readBits(64)
		} else if br.readBit() == 1 {
			if br.readBit() == 0 {
				if prevLead == 0xff {
					*out = (*out)[:base]
					return fmt.Errorf("store: block value stream reuses window before defining one")
				}
				prevBits ^= br.readBits(prevSig) << (64 - prevLead - prevSig)
			} else {
				lead := uint(br.readBits(5))
				sig := uint(br.readBits(6)) + 1
				if lead+sig > 64 {
					*out = (*out)[:base]
					return fmt.Errorf("store: block value window overflows 64 bits")
				}
				prevBits ^= br.readBits(sig) << (64 - lead - sig)
				prevLead, prevSig = lead, sig
			}
		}
		if br.err != nil {
			*out = (*out)[:base]
			return br.err
		}
		es[i].val = math.Float64frombits(prevBits)
	}
	// Only zero padding may remain: a partial trailing byte of zeros
	// from finish(), and nothing beyond it.
	if br.pos < len(br.buf) {
		*out = (*out)[:base]
		return fmt.Errorf("store: %d trailing bytes after block values", len(br.buf)-br.pos)
	}
	if br.have > 0 && br.acc&(1<<br.have-1) != 0 {
		*out = (*out)[:base]
		return fmt.Errorf("store: block value padding bits not zero")
	}
	return nil
}
