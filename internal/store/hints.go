package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/backoff"
	"dcdb/internal/core"
	"dcdb/internal/fsutil"
)

// Hinted handoff: when a replica misses a write that the rest of its
// set acknowledged, the coordinator durably queues the mutation under
// <hintDir>/<memberID>/hint-<seq>.log and replays it once the replica
// answers pings again — so a node that was down (or is being replaced
// behind the same address) converges without a full re-replication.
//
// The queue is keyed by member IDENTITY, not ring position: a
// membership change that renumbers or reorders the ring can never
// deliver a hint to the wrong node. Legacy static clusters name their
// members node0..nodeN-1, which keeps the on-disk layout of
// pre-membership coordinators readable unchanged. When the member a
// hint is queued for has LEFT the ring (dead or departed), the replay
// loop forwards the hint instead: the mutation is re-coordinated
// through the sensor's current owners with its original write version,
// so the data the departed node missed reaches whoever owns the range
// now.
//
// Hint files reuse the WAL framing exactly: CRC32-framed records whose
// payloads are the WAL's type-3 versioned insert (expiry already
// resolved to an absolute timestamp at coordination time, every
// reading carrying its coordinator-assigned write version) and type-2
// delete. Replay is at-least-once — a replay interrupted mid-file
// re-applies the whole file on the next attempt; duplicates collapse
// at the replica's query-time dedup.
//
// Version-resolution contract: every coordinated write is stamped with
// one monotonic version (Cluster.nextVersion), the hint records it,
// and replay re-delivers it unchanged via InsertVersioned. Query-time
// dedup resolves duplicate timestamps highest-version-wins, so a
// replayed hint lands exactly where the original write would have: if
// the sensor's value at that timestamp was rewritten (a strictly later
// version) between the hint being queued and replayed, the rewrite
// keeps winning and the replay is a harmless no-op at read time. The
// pre-version resurrection window — replay reinstating an older value
// that read repair then spread — is closed; background anti-entropy
// (antientropy.go) additionally converges replicas that diverged with
// no read traffic at all. Records from before the version bump (type
// 1) still replay, as version 0.

// hintFileMax rotates the per-member append file so one outage does
// not grow a single unbounded segment; replay deletes whole files as
// they are delivered.
const hintFileMax = 4 << 20

// hintApplier is the delivery target of a replay: a recovered
// replica's backend (NodeBackend satisfies this), or the cluster's own
// coordinated write path when the hints' member left the ring and the
// mutations must reach the range's current owners instead.
type hintApplier interface {
	InsertVersioned(id core.SensorID, vrs []VersionedReading) error
	InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error
	DeleteBefore(id core.SensorID, cutoff int64) error
}

// hintQueue is a Cluster's durable per-member hint store.
type hintQueue struct {
	dir      string
	mu       sync.Mutex // guards members (the map, not each entry)
	members  map[string]*nodeHints
	queued   atomic.Int64 // mutations queued (lifetime)
	replayed atomic.Int64 // mutations delivered (lifetime)
}

// nodeHints is the hint state of one member identity. mu serialises
// enqueue against replay; has is a lock-free "anything pending?" check
// so the replay loop's idle tick stays free.
type nodeHints struct {
	mu   sync.Mutex
	dir  string
	seq  uint64
	f    fsutil.File
	size int64
	has  atomic.Bool
}

// escapeHintID maps a member ID to a safe directory name, reversibly:
// bytes outside [A-Za-z0-9._-] (and '%' itself) become %XX. Legacy IDs
// ("node0") pass through unchanged, preserving pre-membership layouts.
func escapeHintID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		ch := id[i]
		if ch != '%' && (ch == '.' || ch == '_' || ch == '-' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')) {
			b.WriteByte(ch)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", ch)
	}
	return b.String()
}

// unescapeHintID reverses escapeHintID; malformed escapes are kept
// literally (the name then simply names itself).
func unescapeHintID(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		if name[i] == '%' && i+2 < len(name) {
			if v, err := strconv.ParseUint(name[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(name[i])
	}
	return b.String()
}

// openHintQueue scans (creating on first use) the hint directory,
// recovering per-member hints a previous coordinator run left behind —
// including hints for members no longer in the cluster, which the
// replay loop will forward to the current owners.
func openHintQueue(dir string) (*hintQueue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	q := &hintQueue{dir: dir, members: make(map[string]*nodeHints)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		id := unescapeHintID(de.Name())
		nh := &nodeHints{dir: filepath.Join(dir, de.Name())}
		segs, err := findHintFiles(nh.dir)
		if err != nil {
			return nil, err
		}
		if len(segs) > 0 {
			nh.seq = segs[len(segs)-1].seq + 1
			nh.has.Store(true)
		}
		q.members[id] = nh
	}
	return q, nil
}

// forID returns (creating when asked) the hint state of one member.
func (q *hintQueue) forID(id string, create bool) (*nodeHints, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if nh, ok := q.members[id]; ok {
		return nh, nil
	}
	if !create {
		return nil, nil
	}
	nh := &nodeHints{dir: filepath.Join(q.dir, escapeHintID(id))}
	if err := os.MkdirAll(nh.dir, 0o755); err != nil {
		return nil, err
	}
	q.members[id] = nh
	return nh, nil
}

// ids snapshots the member identities with hint state.
func (q *hintQueue) ids() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.members))
	for id := range q.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// hintSegSeq parses a hint file name, or false for other files.
func hintSegSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "hint-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "hint-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// findHintFiles lists a member's hint files in sequence order.
func findHintFiles(dir string) ([]walSegRef, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegRef
	for _, de := range des {
		if seq, ok := hintSegSeq(de.Name()); ok {
			segs = append(segs, walSegRef{seq: seq, path: filepath.Join(dir, de.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// enqueue durably appends one framed mutation for a member. The hint
// is fsynced before enqueue returns: a coordinator crash cannot
// silently drop a handoff it decided to make.
func (q *hintQueue) enqueue(id string, payload []byte) error {
	nh, err := q.forID(id, true)
	if err != nil {
		return err
	}
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if nh.f == nil || nh.size >= hintFileMax {
		if nh.f != nil {
			nh.f.Close()
		}
		path := filepath.Join(nh.dir, fmt.Sprintf("hint-%016x.log", nh.seq))
		nh.seq++
		f, err := fsutil.Disk.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			nh.f = nil
			return err
		}
		nh.f = f
		nh.size = 0
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := nh.f.Write(hdr[:]); err != nil {
		nh.f.Close()
		nh.f = nil // a torn frame ends the file; rotate to a fresh one
		return err
	}
	if _, err := nh.f.Write(payload); err != nil {
		nh.f.Close()
		nh.f = nil
		return err
	}
	if err := nh.f.Sync(); err != nil {
		nh.f.Close()
		nh.f = nil
		return err
	}
	nh.size += int64(8 + len(payload))
	nh.has.Store(true)
	q.queued.Add(1)
	return nil
}

// replay delivers every queued hint of one member to the applier,
// deleting hint files as they complete. On failure the current file is
// kept and the next attempt re-applies it from the start
// (at-least-once).
func (q *hintQueue) replay(id string, to hintApplier) error {
	nh, err := q.forID(id, false)
	if err != nil || nh == nil {
		return err
	}
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if nh.f != nil {
		// Freeze the file set: concurrent enqueues open a fresh file.
		nh.f.Close()
		nh.f = nil
	}
	segs, err := findHintFiles(nh.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		// A torn tail is a crash mid-enqueue: the write behind it was
		// never recorded as hinted, so dropping it is correct.
		ops, _ := decodeWALRecords(data)
		for _, op := range ops {
			if op.del {
				if err := to.DeleteBefore(op.id, op.cutoff); err != nil {
					return err
				}
				q.replayed.Add(1)
				continue
			}
			if len(op.entries) == 0 {
				continue
			}
			if op.versioned {
				// Re-deliver the original write versions and absolute
				// expiries, dropping readings that expired while queued.
				now := time.Now().UnixNano()
				vrs := make([]VersionedReading, 0, len(op.entries))
				for _, e := range op.entries {
					if e.expire != 0 && e.expire <= now {
						continue
					}
					vrs = append(vrs, VersionedReading{
						Timestamp: e.ts, Value: e.val, Version: e.ver, Expire: e.expire,
					})
				}
				if len(vrs) == 0 {
					continue // every hinted reading already expired
				}
				if err := to.InsertVersioned(op.id, vrs); err != nil {
					return err
				}
				q.replayed.Add(1)
				continue
			}
			// Legacy unversioned hint (pre-bump file): replay as a plain
			// version-0 write.
			ttl, ok := expireToTTL(op.entries[0].expire)
			if !ok {
				continue // the hinted readings already expired
			}
			rs := make([]core.Reading, len(op.entries))
			for i, e := range op.entries {
				rs[i] = core.Reading{Timestamp: e.ts, Value: e.val}
			}
			if err := to.InsertBatch(op.id, rs, ttl); err != nil {
				return err
			}
			q.replayed.Add(1)
		}
		if err := os.Remove(seg.path); err != nil {
			return err
		}
	}
	nh.has.Store(false)
	return nil
}

// pending reports how many members still have queued hints.
func (q *hintQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, nh := range q.members {
		if nh.has.Load() {
			n++
		}
	}
	return n
}

// has reports whether one member has queued hints.
func (q *hintQueue) has(id string) bool {
	q.mu.Lock()
	nh := q.members[id]
	q.mu.Unlock()
	return nh != nil && nh.has.Load()
}

// close releases the open append files; queued hints stay on disk for
// the next coordinator run.
func (q *hintQueue) close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	var firstErr error
	for _, nh := range q.members {
		nh.mu.Lock()
		if nh.f != nil {
			if err := nh.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			nh.f = nil
		}
		nh.mu.Unlock()
	}
	return firstErr
}

// --- Cluster-side plumbing ---

// hintInsert queues a versioned insert hint, chunked like the WAL so
// replay never sees an oversized record. The readings keep the write
// version the failed fan-out carried, so replay cannot outrank a later
// rewrite.
func (c *Cluster) hintInsert(id string, sid core.SensorID, vrs []VersionedReading) {
	for off := 0; off < len(vrs); off += walBatchChunk {
		chunk := vrs[off:min(off+walBatchChunk, len(vrs))]
		if err := c.hints.enqueue(id, encodeWALInsertV(nil, sid, chunk)); err != nil {
			log.Printf("store: hint for member %s lost: %v", id, err)
			return
		}
	}
}

// hintDelete queues a delete hint.
func (c *Cluster) hintDelete(id string, sid core.SensorID, cutoff int64) {
	if err := c.hints.enqueue(id, encodeWALDelete(nil, sid, cutoff)); err != nil {
		log.Printf("store: hint for member %s lost: %v", id, err)
	}
}

// forwarder re-coordinates a departed member's hints through the
// cluster's CURRENT owners: versioned inserts keep their original
// versions (coordinateVersioned), so a forwarded hint still resolves
// exactly where the original write would have.
type forwarder struct{ c *Cluster }

func (f forwarder) InsertVersioned(id core.SensorID, vrs []VersionedReading) error {
	return f.c.coordinateVersioned(id, vrs)
}

func (f forwarder) InsertBatch(id core.SensorID, rs []core.Reading, ttl time.Duration) error {
	return f.c.InsertBatch(id, rs, ttl)
}

func (f forwarder) DeleteBefore(id core.SensorID, cutoff int64) error {
	return f.c.DeleteBefore(id, cutoff)
}

// deliverHints makes one delivery attempt for one member's queue:
// replay to the member when it is in the topology and answers pings,
// forward through the current owners when it has left the ring.
// Returns (attempted, error).
func (c *Cluster) deliverHints(t *topology, id string) (bool, error) {
	if idx, ok := t.byID[id]; ok {
		b := t.members[idx].backend
		if err := b.Ping(); err != nil {
			return true, err // still down; keep the hints
		}
		return true, c.hints.replay(id, b)
	}
	if t.prevRing != nil {
		// Mid-transition the departed member's ranges are still moving;
		// wait for the cutover so forwards resolve against final owners.
		return false, nil
	}
	return true, c.hints.replay(id, forwarder{c})
}

// hintLoop probes members with queued hints and delivers when they
// answer (or forwards when they left). Each member backs off
// independently (shared jittered policy): a node that stays down is
// probed at a decaying cadence instead of every tick, and a failed
// replay does not delay another member's delivery.
func (c *Cluster) hintLoop(interval time.Duration) {
	defer c.bgWG.Done()
	pol := backoff.Policy{Initial: interval, Max: 16 * interval, Multiplier: 2, Jitter: 0.25}
	fails := make(map[string]int)
	retryAt := make(map[string]time.Time)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopBG:
			return
		case <-t.C:
			now := time.Now()
			top := c.top()
			for _, id := range c.hints.ids() {
				if !c.hints.has(id) || now.Before(retryAt[id]) {
					continue
				}
				attempted, err := c.deliverHints(top, id)
				if !attempted {
					continue
				}
				if err != nil {
					if _, present := top.byID[id]; !present {
						log.Printf("store: forwarding hints of departed member %s: %v", id, err)
					}
					fails[id]++
					retryAt[id] = now.Add(pol.Delay(fails[id]))
					continue
				}
				delete(fails, id)
				delete(retryAt, id)
			}
		}
	}
}

// ReplayHints makes one synchronous delivery attempt for every member
// with queued hints: replicas that answer pings get their replay,
// departed members get their queue forwarded to the current owners.
// The background loop calls it on a timer; tests and operators may
// call it directly.
func (c *Cluster) ReplayHints() error {
	if c.hints == nil {
		return nil
	}
	t := c.top()
	var firstErr error
	for _, id := range c.hints.ids() {
		if !c.hints.has(id) {
			continue
		}
		if idx, ok := t.byID[id]; ok {
			b := t.members[idx].backend
			if err := b.Ping(); err != nil {
				continue // still down; keep the hints
			}
			if err := c.hints.replay(id, b); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if t.prevRing != nil {
			continue // wait for cutover; owners are still moving
		}
		if err := c.hints.replay(id, forwarder{c}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// HintStats reports hinted-handoff counters: mutations queued and
// delivered over the cluster's lifetime, and how many members still
// have hints waiting. Zero values when handoff is disabled.
func (c *Cluster) HintStats() (queued, replayed int64, pendingNodes int) {
	if c.hints == nil {
		return 0, 0, 0
	}
	return c.hints.queued.Load(), c.hints.replayed.Load(), c.hints.pending()
}
