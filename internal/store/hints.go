package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/backoff"
	"dcdb/internal/core"
	"dcdb/internal/fsutil"
)

// Hinted handoff: when a replica misses a write that the rest of its
// set acknowledged, the coordinator durably queues the mutation under
// <hintDir>/node<i>/hint-<seq>.log and replays it once the replica
// answers pings again — so a node that was down (or is being replaced
// behind the same address) converges without a full re-replication.
//
// Hint files reuse the WAL framing exactly: CRC32-framed records whose
// payloads are the WAL's type-3 versioned insert (expiry already
// resolved to an absolute timestamp at coordination time, every
// reading carrying its coordinator-assigned write version) and type-2
// delete. Replay is at-least-once — a replay interrupted mid-file
// re-applies the whole file on the next attempt; duplicates collapse
// at the replica's query-time dedup.
//
// Version-resolution contract: every coordinated write is stamped with
// one monotonic version (Cluster.nextVersion), the hint records it,
// and replay re-delivers it unchanged via InsertVersioned. Query-time
// dedup resolves duplicate timestamps highest-version-wins, so a
// replayed hint lands exactly where the original write would have: if
// the sensor's value at that timestamp was rewritten (a strictly later
// version) between the hint being queued and replayed, the rewrite
// keeps winning and the replay is a harmless no-op at read time. The
// pre-version resurrection window — replay reinstating an older value
// that read repair then spread — is closed; background anti-entropy
// (antientropy.go) additionally converges replicas that diverged with
// no read traffic at all. Records from before the version bump (type
// 1) still replay, as version 0.

// hintFileMax rotates the per-node append file so one outage does not
// grow a single unbounded segment; replay deletes whole files as they
// are delivered.
const hintFileMax = 4 << 20

// hintQueue is a Cluster's durable per-replica hint store.
type hintQueue struct {
	dir      string
	nodes    []*nodeHints
	queued   atomic.Int64 // mutations queued (lifetime)
	replayed atomic.Int64 // mutations delivered (lifetime)
}

// nodeHints is the hint state of one replica index. mu serialises
// enqueue against replay; has is a lock-free "anything pending?" check
// so the replay loop's idle tick stays free.
type nodeHints struct {
	mu   sync.Mutex
	dir  string
	seq  uint64
	f    fsutil.File
	size int64
	has  atomic.Bool
}

// openHintQueue scans (creating on first use) the hint directory for n
// replicas, recovering hints a previous coordinator run left behind.
func openHintQueue(dir string, n int) (*hintQueue, error) {
	q := &hintQueue{dir: dir, nodes: make([]*nodeHints, n)}
	for i := range q.nodes {
		nh := &nodeHints{dir: filepath.Join(dir, fmt.Sprintf("node%d", i))}
		if err := os.MkdirAll(nh.dir, 0o755); err != nil {
			return nil, err
		}
		segs, err := findHintFiles(nh.dir)
		if err != nil {
			return nil, err
		}
		if len(segs) > 0 {
			nh.seq = segs[len(segs)-1].seq + 1
			nh.has.Store(true)
		}
		q.nodes[i] = nh
	}
	return q, nil
}

// hintSegSeq parses a hint file name, or false for other files.
func hintSegSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "hint-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "hint-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// findHintFiles lists a node's hint files in sequence order.
func findHintFiles(dir string) ([]walSegRef, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegRef
	for _, de := range des {
		if seq, ok := hintSegSeq(de.Name()); ok {
			segs = append(segs, walSegRef{seq: seq, path: filepath.Join(dir, de.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// enqueue durably appends one framed mutation for replica node. The
// hint is fsynced before enqueue returns: a coordinator crash cannot
// silently drop a handoff it decided to make.
func (q *hintQueue) enqueue(node int, payload []byte) error {
	nh := q.nodes[node]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if nh.f == nil || nh.size >= hintFileMax {
		if nh.f != nil {
			nh.f.Close()
		}
		path := filepath.Join(nh.dir, fmt.Sprintf("hint-%016x.log", nh.seq))
		nh.seq++
		f, err := fsutil.Disk.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			nh.f = nil
			return err
		}
		nh.f = f
		nh.size = 0
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := nh.f.Write(hdr[:]); err != nil {
		nh.f.Close()
		nh.f = nil // a torn frame ends the file; rotate to a fresh one
		return err
	}
	if _, err := nh.f.Write(payload); err != nil {
		nh.f.Close()
		nh.f = nil
		return err
	}
	if err := nh.f.Sync(); err != nil {
		nh.f.Close()
		nh.f = nil
		return err
	}
	nh.size += int64(8 + len(payload))
	nh.has.Store(true)
	q.queued.Add(1)
	return nil
}

// replay delivers every queued hint of replica node to b, deleting
// hint files as they complete. On failure the current file is kept and
// the next attempt re-applies it from the start (at-least-once).
func (q *hintQueue) replay(node int, b NodeBackend) error {
	nh := q.nodes[node]
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if nh.f != nil {
		// Freeze the file set: concurrent enqueues open a fresh file.
		nh.f.Close()
		nh.f = nil
	}
	segs, err := findHintFiles(nh.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		// A torn tail is a crash mid-enqueue: the write behind it was
		// never recorded as hinted, so dropping it is correct.
		ops, _ := decodeWALRecords(data)
		for _, op := range ops {
			if op.del {
				if err := b.DeleteBefore(op.id, op.cutoff); err != nil {
					return err
				}
				q.replayed.Add(1)
				continue
			}
			if len(op.entries) == 0 {
				continue
			}
			if op.versioned {
				// Re-deliver the original write versions and absolute
				// expiries, dropping readings that expired while queued.
				now := time.Now().UnixNano()
				vrs := make([]VersionedReading, 0, len(op.entries))
				for _, e := range op.entries {
					if e.expire != 0 && e.expire <= now {
						continue
					}
					vrs = append(vrs, VersionedReading{
						Timestamp: e.ts, Value: e.val, Version: e.ver, Expire: e.expire,
					})
				}
				if len(vrs) == 0 {
					continue // every hinted reading already expired
				}
				if err := b.InsertVersioned(op.id, vrs); err != nil {
					return err
				}
				q.replayed.Add(1)
				continue
			}
			// Legacy unversioned hint (pre-bump file): replay as a plain
			// version-0 write.
			ttl, ok := expireToTTL(op.entries[0].expire)
			if !ok {
				continue // the hinted readings already expired
			}
			rs := make([]core.Reading, len(op.entries))
			for i, e := range op.entries {
				rs[i] = core.Reading{Timestamp: e.ts, Value: e.val}
			}
			if err := b.InsertBatch(op.id, rs, ttl); err != nil {
				return err
			}
			q.replayed.Add(1)
		}
		if err := os.Remove(seg.path); err != nil {
			return err
		}
	}
	nh.has.Store(false)
	return nil
}

// pending reports how many replicas still have queued hints.
func (q *hintQueue) pending() int {
	n := 0
	for _, nh := range q.nodes {
		if nh.has.Load() {
			n++
		}
	}
	return n
}

// close releases the open append files; queued hints stay on disk for
// the next coordinator run.
func (q *hintQueue) close() error {
	var firstErr error
	for _, nh := range q.nodes {
		nh.mu.Lock()
		if nh.f != nil {
			if err := nh.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			nh.f = nil
		}
		nh.mu.Unlock()
	}
	return firstErr
}

// --- Cluster-side plumbing ---

// hintInsert queues a versioned insert hint, chunked like the WAL so
// replay never sees an oversized record. The readings keep the write
// version the failed fan-out carried, so replay cannot outrank a later
// rewrite.
func (c *Cluster) hintInsert(node int, id core.SensorID, vrs []VersionedReading) {
	for off := 0; off < len(vrs); off += walBatchChunk {
		chunk := vrs[off:min(off+walBatchChunk, len(vrs))]
		if err := c.hints.enqueue(node, encodeWALInsertV(nil, id, chunk)); err != nil {
			log.Printf("store: hint for node %d lost: %v", node, err)
			return
		}
	}
}

// hintDelete queues a delete hint.
func (c *Cluster) hintDelete(node int, id core.SensorID, cutoff int64) {
	if err := c.hints.enqueue(node, encodeWALDelete(nil, id, cutoff)); err != nil {
		log.Printf("store: hint for node %d lost: %v", node, err)
	}
}

// hintLoop probes down replicas and replays their hints when they
// answer again. Each replica backs off independently (shared jittered
// policy): a node that stays down is probed at a decaying cadence
// instead of every tick, and a failed replay does not delay another
// replica's delivery.
func (c *Cluster) hintLoop(interval time.Duration) {
	defer c.bgWG.Done()
	pol := backoff.Policy{Initial: interval, Max: 16 * interval, Multiplier: 2, Jitter: 0.25}
	fails := make([]int, len(c.backends))
	retryAt := make([]time.Time, len(c.backends))
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopBG:
			return
		case <-t.C:
			now := time.Now()
			for i, b := range c.backends {
				if !c.hints.nodes[i].has.Load() || now.Before(retryAt[i]) {
					continue
				}
				if err := b.Ping(); err != nil {
					fails[i]++
					retryAt[i] = now.Add(pol.Delay(fails[i]))
					continue
				}
				if err := c.hints.replay(i, b); err != nil {
					log.Printf("store: hint replay node %d: %v", i, err)
					fails[i]++
					retryAt[i] = now.Add(pol.Delay(fails[i]))
					continue
				}
				fails[i], retryAt[i] = 0, time.Time{}
			}
		}
	}
}

// ReplayHints makes one synchronous delivery attempt for every replica
// with queued hints that currently answers pings. The background loop
// calls it on a timer; tests and operators may call it directly.
func (c *Cluster) ReplayHints() error {
	if c.hints == nil {
		return nil
	}
	var firstErr error
	for i, b := range c.backends {
		if !c.hints.nodes[i].has.Load() {
			continue
		}
		if err := b.Ping(); err != nil {
			continue // still down; keep the hints
		}
		if err := c.hints.replay(i, b); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// HintStats reports hinted-handoff counters: mutations queued and
// delivered over the cluster's lifetime, and how many replicas still
// have hints waiting. Zero values when handoff is disabled.
func (c *Cluster) HintStats() (queued, replayed int64, pendingNodes int) {
	if c.hints == nil {
		return 0, 0, 0
	}
	return c.hints.queued.Load(), c.hints.replayed.Load(), c.hints.pending()
}
