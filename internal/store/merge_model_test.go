package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"dcdb/internal/core"
)

// Property test for the merge-read path: randomized operation
// sequences — overlapping and monotonic run layouts, duplicate
// timestamps across runs (newest-run-wins), DeleteBefore prefix drops,
// flushes, compactions, and (for durable nodes) crash/reopen cycles —
// are replayed against a naive reference model that sorts everything
// and applies last-write-wins per timestamp. Query over random windows
// must agree exactly.

// refModel is the obviously-correct reference: a map applied in
// operation order.
type refModel map[int64]float64

func (m refModel) insert(ts int64, v float64) { m[ts] = v }
func (m refModel) deleteBefore(cutoff int64) {
	for ts := range m {
		if ts < cutoff {
			delete(m, ts)
		}
	}
}
func (m refModel) query(from, to int64) []core.Reading {
	var out []core.Reading
	for ts, v := range m {
		if ts >= from && ts <= to {
			out = append(out, core.Reading{Timestamp: ts, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return out
}

// mergeModelOps drives one node through a random op sequence, checking
// Query windows against the model after every step. reopen, when
// non-nil, replaces the node with a freshly recovered one at random
// points (durable engines only).
func mergeModelOps(t *testing.T, rng *rand.Rand, n *Node, id core.SensorID, reopen func(*Node) *Node) {
	t.Helper()
	model := refModel{}
	const tsSpace = 240 // small space forces duplicate timestamps across runs
	monotonic := rng.Intn(2) == 0
	nextTS := int64(0)
	check := func(step int) {
		t.Helper()
		// The full range plus a few random windows.
		windows := [][2]int64{{-1 << 62, 1 << 62}}
		for i := 0; i < 3; i++ {
			a, b := rng.Int63n(tsSpace), rng.Int63n(tsSpace)
			if a > b {
				a, b = b, a
			}
			windows = append(windows, [2]int64{a, b})
		}
		for _, w := range windows {
			got, err := n.Query(id, w[0], w[1])
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			want := model.query(w[0], w[1])
			if len(got) != len(want) {
				t.Fatalf("step %d window [%d,%d]: engine %d readings, model %d\nengine: %v\nmodel:  %v",
					step, w[0], w[1], len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d window [%d,%d] position %d: engine %v, model %v",
						step, w[0], w[1], i, got[i], want[i])
				}
			}
		}
	}
	steps := 60 + rng.Intn(60)
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert a batch
			batch := make([]core.Reading, 1+rng.Intn(12))
			for i := range batch {
				var ts int64
				if monotonic {
					ts = nextTS
					nextTS++
				} else {
					ts = rng.Int63n(tsSpace)
				}
				v := float64(rng.Intn(1000))
				batch[i] = core.Reading{Timestamp: ts, Value: v}
				model.insert(ts, v)
			}
			if err := n.InsertBatch(id, batch, 0); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
		case op < 7: // flush creates a new run (and run file)
			if err := n.Flush(); err != nil {
				t.Fatalf("step %d flush: %v", step, err)
			}
		case op == 7:
			cutoff := rng.Int63n(tsSpace)
			if err := n.DeleteBefore(id, cutoff); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			model.deleteBefore(cutoff)
		case op == 8:
			n.Compact()
		default:
			if reopen != nil {
				n = reopen(n)
			}
		}
		check(step)
	}
}

func TestMergeReadMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("memory/seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := NewNode(8 * numShards) // 8 entries per shard: frequent organic flushes too
			mergeModelOps(t, rng, n, sid(11, uint64(seed)), nil)
		})
	}
	for seed := int64(100); seed < 106; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("durable/seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			id := sid(13, uint64(seed))
			var cur *Node
			open := func() *Node {
				n := NewNode(8 * numShards)
				if err := n.OpenOptions(dir, noCompact); err != nil {
					t.Fatal(err)
				}
				cur = n
				return n
			}
			t.Cleanup(func() {
				if cur != nil {
					cur.Close()
				}
			})
			n := open()
			reopen := func(old *Node) *Node {
				// Alternate clean shutdowns and hard crashes; with
				// SyncInterval 0 both must preserve every write.
				if rng.Intn(2) == 0 {
					if err := old.Close(); err != nil {
						t.Fatal(err)
					}
				} else {
					old.crash()
				}
				return open()
			}
			mergeModelOps(t, rng, n, id, reopen)
		})
	}
}

// TestMergeModelBackgroundCompaction runs the same property with the
// background compactor racing the checks: merges must never change
// query results.
func TestMergeModelBackgroundCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	dir := t.TempDir()
	n := NewNode(8 * numShards)
	if err := n.OpenOptions(dir, DiskOptions{SyncInterval: 0, MaxRuns: 2, CompactInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	mergeModelOps(t, rng, n, sid(17, 17), nil)
}
