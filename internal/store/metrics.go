package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcdb/internal/metrics"
)

// Self-monitoring of the storage engine (the paper's own-overhead
// argument, §6): every Node owns a metrics.Registry so multi-node
// processes (an agent embedding N stores) export without name
// collisions — exporters inject a node label per registry.
//
// The hot-path budget is the design constraint here. An insert costs
// ~50ns, so even one extra atomic read-modify-write per call would blow
// the paper's sub-1% footprint. The instrumentation therefore adds only:
//
//   - one uncontended atomic load per insert (the arm flag — a plain
//     MOV on x86, no bus locking), and
//   - two clock reads on 1-in-64 sampled operations, amortising to
//     ~1ns per insert.
//
// The sampling decision itself costs nothing extra: the shard's
// existing insert counter (already bumped under the shard lock) arms a
// padded per-shard flag each time it crosses a 64-record boundary, and
// the next insert to that shard sees the flag before taking the lock
// and times itself, lock wait included.
//
// Queries are µs-scale but still sampled (1-in-8, first query always)
// because a clock read is not free everywhere: hosts without a vDSO
// fast path pay a ~200ns syscall per read, which would be several
// percent of a memtable-resident query. The sampling decision reuses
// the shard query counter the engine already bumps. Everything else —
// gauges, totals — is computed at scrape time from counters the engine
// already maintains, costing the hot path nothing.
// TestInstrumentationOverheadBudget holds this to within 5% of the
// uninstrumented baseline in CI.

// insertSampleEvery is the insert-latency sampling rate: 1 in 64.
const insertSampleEvery = 64

// querySampleEvery is the query-latency sampling rate: 1 in 8.
const querySampleEvery = 8

// instrumentationOff disables all store latency sampling when set. The
// zero value (enabled) is the default; the overhead bench guard flips
// it to measure the uninstrumented baseline in the same binary.
var instrumentationOff atomic.Bool

// SetInstrumentation enables or disables hot-path latency sampling
// process-wide. Counters and scrape-time gauges are unaffected.
func SetInstrumentation(on bool) { instrumentationOff.Store(!on) }

// latTick is a cache-line padded per-shard "sample the next insert"
// flag. Written ~2 times per 64 inserts (armed under the shard lock,
// cleared by the sampled insert); read once per insert.
type latTick struct {
	sample atomic.Bool
	_      [63]byte
}

// walMetrics are the WAL's registry hooks, shared by every segment of
// a node (segments rotate; the counters persist).
type walMetrics struct {
	appends *metrics.Counter
	fsyncs  *metrics.Counter
	batch   *metrics.Histogram // records made durable per fsync
}

// nodeMetrics is the per-Node metric set.
type nodeMetrics struct {
	reg        *metrics.Registry
	insertLat  [numShards]*metrics.Histogram
	queryLat   [numShards]*metrics.Histogram
	wal        walMetrics
	spillDur   *metrics.Histogram
	compactDur *metrics.Histogram

	ticks [numShards]latTick
}

func newNodeMetrics(n *Node) *nodeMetrics {
	reg := metrics.NewRegistry()
	m := &nodeMetrics{reg: reg}
	for i := 0; i < numShards; i++ {
		m.insertLat[i] = reg.LatencyHistogram(
			fmt.Sprintf(`dcdb_store_insert_latency_seconds{shard="%d"}`, i),
			"Insert/InsertBatch call latency per memtable shard.", insertSampleEvery)
		m.queryLat[i] = reg.LatencyHistogram(
			fmt.Sprintf(`dcdb_store_query_latency_seconds{shard="%d"}`, i),
			"Query call latency per memtable shard.", querySampleEvery)
	}
	m.wal.appends = reg.Counter("dcdb_store_wal_appends_total", "WAL records appended.")
	m.wal.fsyncs = reg.Counter("dcdb_store_wal_fsyncs_total", "WAL fsyncs, including group commits.")
	m.wal.batch = reg.Histogram("dcdb_store_wal_group_commit_records", "WAL records made durable per group-commit fsync.")
	m.spillDur = reg.LatencyHistogram("dcdb_store_spill_duration_seconds", "Memtable-flush run-file spill duration.", 1)
	m.compactDur = reg.LatencyHistogram("dcdb_store_compaction_duration_seconds", "Run-file compaction window duration.", 1)
	reg.CounterFunc("dcdb_store_inserts_total", "Readings inserted.", func() float64 {
		ins, _, _ := n.Stats()
		return float64(ins)
	})
	reg.CounterFunc("dcdb_store_queries_total", "Query and prefix-query calls.", func() float64 {
		_, q, _ := n.Stats()
		return float64(q)
	})
	reg.GaugeFunc("dcdb_store_memtable_entries", "Entries buffered in the memtable shards.", func() float64 {
		mem, _ := n.entryCounts()
		return float64(mem)
	})
	reg.GaugeFunc("dcdb_store_memtable_bytes", "Approximate memtable bytes (entries x entry size).", func() float64 {
		mem, _ := n.entryCounts()
		return float64(mem * entrySize)
	})
	reg.GaugeFunc("dcdb_store_flushed_entries", "Entries in flushed runs (resident or cold).", func() float64 {
		_, flushed := n.entryCounts()
		return float64(flushed)
	})
	return m
}

// entryCounts reports memtable and flushed entry totals (scrape-time
// only: takes every shard's read lock).
func (n *Node) entryCounts() (mem, flushed int) {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.RLock()
		mem += sh.memSize
		flushed += sh.flushedSize
		sh.mu.RUnlock()
	}
	return mem, flushed
}

// registerCacheMetrics wires the block cache's existing atomics into
// the registry; called once from OpenOptions when a cache exists.
func (m *nodeMetrics) registerCacheMetrics(c *blockCache) {
	m.reg.CounterFunc("dcdb_store_cache_hits_total", "Block cache hits.", func() float64 {
		return float64(c.hits.Load())
	})
	m.reg.CounterFunc("dcdb_store_cache_misses_total", "Block cache misses.", func() float64 {
		return float64(c.misses.Load())
	})
	m.reg.CounterFunc("dcdb_store_cache_evictions_total", "Block cache evictions.", func() float64 {
		return float64(c.evictions.Load())
	})
	m.reg.GaugeFunc("dcdb_store_cache_used_bytes", "Decoded block bytes resident in the cache.", func() float64 {
		c.mu.Lock()
		used := c.used
		c.mu.Unlock()
		return float64(used)
	})
}

// insertStart begins a (usually sampled-out) insert timing for shard
// i. The zero time means "not sampled"; pass it to insertDone. The
// common path is one relaxed atomic load and no writes; the kill
// switch is consulted at arm time (1-in-64), not here.
func (m *nodeMetrics) insertStart(i int) time.Time {
	if !m.ticks[i].sample.Load() {
		return time.Time{}
	}
	return time.Now()
}

// insertDone finishes a sampled insert timing and disarms the shard's
// flag. Concurrent inserts racing on one armed flag may each record a
// sample — harmless oversampling, never a missed disarm.
func (m *nodeMetrics) insertDone(i int, start time.Time) {
	if !start.IsZero() {
		m.ticks[i].sample.Store(false)
		m.insertLat[i].ObserveSince(start)
	}
}

// armTick arms shard i's sampling flag when its insert counter crossed
// a 64-record boundary; called under the shard lock with the counter's
// before/after values, so batches of any size arm at most once. The
// kill switch is checked here — off the per-insert path — so disabling
// instrumentation stops arming (at most one stale armed sample drains
// after the switch flips).
func (m *nodeMetrics) armTick(i int, before, after int64) {
	if before>>6 != after>>6 && !instrumentationOff.Load() {
		m.ticks[i].sample.Store(true)
	}
}

// queryStart begins a query timing given the shard's post-increment
// query count: every querySampleEvery-th call is timed, anchored so
// the first query is always sampled (tests and cold starts see data
// immediately).
func (m *nodeMetrics) queryStart(count int64) time.Time {
	if count&(querySampleEvery-1) != 1 || instrumentationOff.Load() {
		return time.Time{}
	}
	return time.Now()
}

// queryDone finishes a query timing.
func (m *nodeMetrics) queryDone(i int, start time.Time) {
	if !start.IsZero() {
		m.queryLat[i].ObserveSince(start)
	}
}

// Metrics returns the node's metric registry for exporters.
func (n *Node) Metrics() *metrics.Registry { return n.met.reg }

// MetricsSnapshot implements the MetricsSource interface: a gathered
// sample set of the node's registry. On remote backends (rpc.Client)
// the same method pulls the snapshot over the wire.
func (n *Node) MetricsSnapshot() ([]metrics.Sample, error) {
	return n.met.reg.Gather(), nil
}

// MetricsSource is the optional backend capability of reporting a full
// metrics snapshot. *Node implements it locally; rpc.Client implements
// it over the versioned Stats RPC body; Cluster.ClusterStats fans it
// out.
type MetricsSource interface {
	MetricsSnapshot() ([]metrics.Sample, error)
}

// clusterMetrics is the coordinator-level metric set: consistency
// outcomes, anti-entropy activity and pushdown effectiveness. Replica
// counters live on the member nodes; these count coordinator decisions.
type clusterMetrics struct {
	reg *metrics.Registry

	writesOK     *metrics.Counter
	writesFailed *metrics.Counter
	readsOK      *metrics.Counter
	readsFailed  *metrics.Counter
	readRepairs  *metrics.Counter
	aggConsensus *metrics.Counter
	aggFallback  *metrics.Counter

	aeRounds     *metrics.Counter
	aeChecked    *metrics.Counter
	aeMismatched *metrics.Counter
	aeRepaired   *metrics.Counter

	rebTransitions *metrics.Counter
	rebSensors     *metrics.Counter
	rebReadings    *metrics.Counter
	rebCutovers    *metrics.Counter
}

func newClusterMetrics(c *Cluster) *clusterMetrics {
	reg := metrics.NewRegistry()
	m := &clusterMetrics{
		reg: reg,
		writesOK: reg.Counter(`dcdb_cluster_writes_total{outcome="ok"}`,
			"Writes acknowledged at the configured consistency level."),
		writesFailed: reg.Counter(`dcdb_cluster_writes_total{outcome="failed"}`,
			"Writes that missed the configured consistency level."),
		readsOK: reg.Counter(`dcdb_cluster_reads_total{outcome="ok"}`,
			"Reads satisfied at the configured consistency level."),
		readsFailed: reg.Counter(`dcdb_cluster_reads_total{outcome="failed"}`,
			"Reads that missed the configured consistency level."),
		readRepairs: reg.Counter("dcdb_cluster_read_repairs_total",
			"Background read repairs issued to lagging replicas."),
		aggConsensus: reg.Counter("dcdb_cluster_aggregate_consensus_total",
			"Quorum aggregate pushdowns where replica states agreed (O(1)-byte answer)."),
		aggFallback: reg.Counter("dcdb_cluster_aggregate_fallback_total",
			"Quorum aggregate pushdowns that fell back to an exact merged-stream fold."),
		aeRounds: reg.Counter("dcdb_cluster_antientropy_rounds_total",
			"Anti-entropy repair rounds completed."),
		aeChecked: reg.Counter("dcdb_cluster_antientropy_ranges_checked_total",
			"Sensor ranges whose replica digests were compared."),
		aeMismatched: reg.Counter("dcdb_cluster_antientropy_ranges_mismatched_total",
			"Sensor ranges where replica digests disagreed."),
		aeRepaired: reg.Counter("dcdb_cluster_antientropy_readings_repaired_total",
			"Readings re-inserted into lagging replicas by anti-entropy repair."),
		rebTransitions: reg.Counter("dcdb_cluster_rebalance_transitions_total",
			"Ring transitions started by membership changes."),
		rebSensors: reg.Counter("dcdb_cluster_rebalance_sensors_moved_total",
			"Sensors whose readings were streamed to new owners during rebalance."),
		rebReadings: reg.Counter("dcdb_cluster_rebalance_readings_moved_total",
			"Readings streamed to new owners during rebalance."),
		rebCutovers: reg.Counter("dcdb_cluster_rebalance_cutovers_total",
			"Rebalances completed: the read ring advanced to the target ring."),
	}
	reg.GaugeFunc("dcdb_cluster_rebalance_active",
		"1 while a ring transition is streaming data, 0 at steady state.", func() float64 {
			if c.top().prevRing != nil {
				return 1
			}
			return 0
		})
	reg.CounterFunc("dcdb_cluster_hints_queued_total",
		"Hinted-handoff mutations queued for down replicas.", func() float64 {
			q, _, _ := c.HintStats()
			return float64(q)
		})
	reg.CounterFunc("dcdb_cluster_hints_replayed_total",
		"Hinted-handoff mutations delivered to recovered replicas.", func() float64 {
			_, r, _ := c.HintStats()
			return float64(r)
		})
	reg.GaugeFunc("dcdb_cluster_hints_pending_nodes",
		"Replicas with hints still waiting for delivery.", func() float64 {
			_, _, p := c.HintStats()
			return float64(p)
		})
	return m
}

// Metrics returns the cluster coordinator's metric registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.met.reg }

// NodeStats is one backend's entry in a ClusterStats fan-out.
type NodeStats struct {
	Index   int    // position in snapshot order
	ID      string // stable member identity the ring keys on
	Addr    string // remote address, "" for an in-process node
	Inserts int64
	Queries int64
	Entries int
	// Samples is the backend's full metrics snapshot, nil when the
	// backend predates the capability or could not be reached (Err).
	Samples []metrics.Sample
	Err     error
}

// ClusterStats gathers per-node statistics and metric snapshots from
// every backend concurrently (a dead node costs its dial timeout once,
// not once per position). Backends that implement MetricsSource —
// local *Node and rpc.Client both do — contribute full snapshots;
// anything else reports the legacy counters only.
func (c *Cluster) ClusterStats() []NodeStats {
	t := c.top()
	out := make([]NodeStats, len(t.members))
	var wg sync.WaitGroup
	for i := range t.members {
		wg.Add(1)
		go func(i int, m member) {
			defer wg.Done()
			ns := NodeStats{Index: i, ID: m.id, Addr: m.addr}
			if ns.Addr == "" {
				if a, ok := m.backend.(interface{ Addr() string }); ok {
					ns.Addr = a.Addr()
				}
			}
			ns.Inserts, ns.Queries, ns.Entries = m.backend.Stats()
			if src, ok := m.backend.(MetricsSource); ok {
				ns.Samples, ns.Err = src.MetricsSnapshot()
			}
			out[i] = ns
		}(i, t.members[i])
	}
	wg.Wait()
	return out
}
