package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/fsutil"
)

// On-disk sorted runs: each memtable flush spills one immutable run
// file per shard (`shard-<i>/run-<minSeq>-<maxSeq>.sst`); compaction
// merges a contiguous sequence window of run files into one whose
// header records the merged span, so a crash between writing the
// merged file and deleting its inputs is recovered by dropping any
// file whose span is contained in another's (write-new, rename,
// delete-old — the rename is the commit point).
//
// File layout (integers big-endian, same record shape as the snapshot
// format of persist.go):
//
//	magic "DCDBRUN1"
//	version   u32
//	minSeq    u64 | maxSeq u64     // flush-sequence span of the inputs
//	tombCount u64 | seriesCount u64
//	tombs  : tombCount  × (sidHi u64 | sidLo u64 | cutoff i64)
//	series : seriesCount × header + entries
//	  header : sidHi u64 | sidLo u64 | entryCount u64 | min i64 | max i64
//	  entry  : ts i64 | value f64 | expire i64
//	crc32(IEEE) u32 over everything above
//
// Tombstones persist DeleteBefore cutoffs issued while this file's
// memtable was live; at recovery they are applied to every run file
// with an older span, whose bytes still hold the deleted rows.

var runMagic = []byte("DCDBRUN1")

const runVersion = 1

// runFileMeta describes one durable run file of a shard. tombs mirrors
// the file's tombstone section so a compaction can carry the residual
// cutoffs into its merged output without re-reading the inputs. rf is
// the refcounted cold-read handle (nil when the file's contents are
// fully resident — v1 files, or a node running without a cache); the
// meta holds the owning reference, released when compaction retires
// the file or the node closes.
type runFileMeta struct {
	path           string
	minSeq, maxSeq uint64
	size           int64 // file size in bytes, drives size-tiered compaction
	tombs          map[core.SensorID]int64
	rf             *runFile
}

// runFileName builds the canonical file name for a sequence span.
func runFileName(minSeq, maxSeq uint64) string {
	return fmt.Sprintf("run-%016x-%016x.sst", minSeq, maxSeq)
}

// runFileSpan parses a run file name, or returns false for other files.
func runFileSpan(name string) (minSeq, maxSeq uint64, ok bool) {
	if !strings.HasPrefix(name, "run-") || !strings.HasSuffix(name, ".sst") {
		return 0, 0, false
	}
	span := strings.TrimSuffix(strings.TrimPrefix(name, "run-"), ".sst")
	var a, b uint64
	if _, err := fmt.Sscanf(span, "%016x-%016x", &a, &b); err != nil || a > b {
		return 0, 0, false
	}
	return a, b, true
}

// runContents is a decoded run file.
type runContents struct {
	minSeq, maxSeq uint64
	tombs          map[core.SensorID]int64
	series         map[core.SensorID][]entry
}

// writeRunFile persists series (and the delete cutoffs accumulated
// while its memtable was live) atomically: write to a temp file, fsync,
// rename into place, fsync the directory. The returned meta reflects
// the final file.
func writeRunFile(dir string, minSeq, maxSeq uint64, series map[core.SensorID][]entry, tombs map[core.SensorID]int64) (runFileMeta, error) {
	final := filepath.Join(dir, runFileName(minSeq, maxSeq))
	tmp := final + ".tmp"
	f, err := fsutil.Disk.Create(tmp)
	if err != nil {
		return runFileMeta{}, err
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(crc, f))

	write := func(p []byte) error {
		_, err := bw.Write(p)
		return err
	}
	var scratch [40]byte
	fail := func(err error) (runFileMeta, error) {
		f.Close()
		os.Remove(tmp)
		return runFileMeta{}, err
	}
	if err := write(runMagic); err != nil {
		return fail(err)
	}
	binary.BigEndian.PutUint32(scratch[0:], runVersion)
	if err := write(scratch[:4]); err != nil {
		return fail(err)
	}
	binary.BigEndian.PutUint64(scratch[0:], minSeq)
	binary.BigEndian.PutUint64(scratch[8:], maxSeq)
	binary.BigEndian.PutUint64(scratch[16:], uint64(len(tombs)))
	binary.BigEndian.PutUint64(scratch[24:], uint64(len(series)))
	if err := write(scratch[:32]); err != nil {
		return fail(err)
	}
	// Deterministic order keeps byte-identical files for identical
	// contents (useful for tests and debugging).
	tombIDs := sortedIDs(len(tombs), func(yield func(core.SensorID)) {
		for id := range tombs {
			yield(id)
		}
	})
	for _, id := range tombIDs {
		binary.BigEndian.PutUint64(scratch[0:], id.Hi)
		binary.BigEndian.PutUint64(scratch[8:], id.Lo)
		binary.BigEndian.PutUint64(scratch[16:], uint64(tombs[id]))
		if err := write(scratch[:24]); err != nil {
			return fail(err)
		}
	}
	seriesIDs := sortedIDs(len(series), func(yield func(core.SensorID)) {
		for id := range series {
			yield(id)
		}
	})
	for _, id := range seriesIDs {
		es := series[id]
		binary.BigEndian.PutUint64(scratch[0:], id.Hi)
		binary.BigEndian.PutUint64(scratch[8:], id.Lo)
		binary.BigEndian.PutUint64(scratch[16:], uint64(len(es)))
		binary.BigEndian.PutUint64(scratch[24:], uint64(es[0].ts))
		binary.BigEndian.PutUint64(scratch[32:], uint64(es[len(es)-1].ts))
		if err := write(scratch[:40]); err != nil {
			return fail(err)
		}
		for _, e := range es {
			binary.BigEndian.PutUint64(scratch[0:], uint64(e.ts))
			binary.BigEndian.PutUint64(scratch[8:], math.Float64bits(e.val))
			binary.BigEndian.PutUint64(scratch[16:], uint64(e.expire))
			if err := write(scratch[:24]); err != nil {
				return fail(err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	// The CRC trailer is written directly (not through the hasher).
	binary.BigEndian.PutUint32(scratch[0:], crc.Sum32())
	if _, err := f.Write(scratch[:4]); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return runFileMeta{}, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return runFileMeta{}, err
	}
	syncDir(dir)
	return runFileMeta{path: final, minSeq: minSeq, maxSeq: maxSeq, size: st.Size()}, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) { fsutil.SyncDir(dir) }

func sortedIDs(n int, iter func(func(core.SensorID))) []core.SensorID {
	ids := make([]core.SensorID, 0, n)
	iter(func(id core.SensorID) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	return ids
}

// decodeRunFile parses run-file bytes of either format version: the
// magic string dispatches between the v1 whole-file decoder below and
// the block-indexed v2 decoder (diskv2.go). Counts are validated
// against the remaining length before any allocation, so corrupt
// headers error out instead of panicking or OOMing; a CRC mismatch
// rejects the whole file. Series whose entries arrive unsorted are
// sorted defensively (stable, preserving file order for duplicate
// timestamps) because the merge-read path requires sorted runs.
func decodeRunFile(data []byte) (*runContents, error) {
	if len(data) >= len(runMagic2) && string(data[:len(runMagic2)]) == string(runMagic2) {
		return decodeRunFileV2(data)
	}
	if len(data) < len(runMagic)+4+32+4 {
		return nil, fmt.Errorf("store: run file truncated")
	}
	if string(data[:len(runMagic)]) != string(runMagic) {
		return nil, fmt.Errorf("store: not a DCDB run file")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return nil, fmt.Errorf("store: run file CRC mismatch")
	}
	off := len(runMagic)
	version := binary.BigEndian.Uint32(body[off:])
	if version != runVersion {
		return nil, fmt.Errorf("store: unsupported run file version %d", version)
	}
	off += 4
	rc := &runContents{
		minSeq: binary.BigEndian.Uint64(body[off:]),
		maxSeq: binary.BigEndian.Uint64(body[off+8:]),
	}
	tombCount := binary.BigEndian.Uint64(body[off+16:])
	seriesCount := binary.BigEndian.Uint64(body[off+24:])
	off += 32
	if rc.minSeq > rc.maxSeq {
		return nil, fmt.Errorf("store: run file span inverted")
	}
	rest := uint64(len(body) - off)
	if tombCount > rest/24 {
		return nil, fmt.Errorf("store: run file tombstone count overflows file")
	}
	if tombCount > 0 {
		rc.tombs = make(map[core.SensorID]int64, tombCount)
		for i := uint64(0); i < tombCount; i++ {
			id := core.SensorID{Hi: binary.BigEndian.Uint64(body[off:]), Lo: binary.BigEndian.Uint64(body[off+8:])}
			rc.tombs[id] = int64(binary.BigEndian.Uint64(body[off+16:]))
			off += 24
		}
	}
	if seriesCount > uint64(len(body)-off)/40 {
		return nil, fmt.Errorf("store: run file series count overflows file")
	}
	rc.series = make(map[core.SensorID][]entry, seriesCount)
	for i := uint64(0); i < seriesCount; i++ {
		if len(body)-off < 40 {
			return nil, fmt.Errorf("store: run file truncated in series header")
		}
		id := core.SensorID{Hi: binary.BigEndian.Uint64(body[off:]), Lo: binary.BigEndian.Uint64(body[off+8:])}
		count := binary.BigEndian.Uint64(body[off+16:])
		off += 40 // min/max are recomputed below; the stored copy is advisory
		if count == 0 {
			return nil, fmt.Errorf("store: run file has empty series")
		}
		if count > uint64(len(body)-off)/24 {
			return nil, fmt.Errorf("store: run file entry count overflows file")
		}
		es := make([]entry, count)
		for j := range es {
			es[j] = entry{
				ts:     int64(binary.BigEndian.Uint64(body[off:])),
				val:    math.Float64frombits(binary.BigEndian.Uint64(body[off+8:])),
				expire: int64(binary.BigEndian.Uint64(body[off+16:])),
			}
			off += 24
		}
		if !sort.SliceIsSorted(es, func(a, b int) bool { return es[a].ts < es[b].ts }) {
			sort.SliceStable(es, func(a, b int) bool { return es[a].ts < es[b].ts })
		}
		if _, dup := rc.series[id]; dup {
			return nil, fmt.Errorf("store: run file repeats sensor %v", id)
		}
		rc.series[id] = es
	}
	if off != len(body) {
		return nil, fmt.Errorf("store: run file has %d trailing bytes", len(body)-off)
	}
	return rc, nil
}

// readRunFile loads and decodes one run file.
func readRunFile(path string) (*runContents, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rc, err := decodeRunFile(data)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return rc, nil
}

// scanRunFiles lists a shard directory's run files, deletes leftover
// temp files, and retires any file whose sequence span is contained in
// another's (the crash window between a compaction's rename and its
// input deletion). The survivors have pairwise disjoint spans and are
// returned in span order.
func scanRunFiles(dir string) ([]runFileMeta, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var metas []runFileMeta
	for _, de := range des {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		minSeq, maxSeq, ok := runFileSpan(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			return nil, err
		}
		metas = append(metas, runFileMeta{
			path: filepath.Join(dir, name), minSeq: minSeq, maxSeq: maxSeq, size: info.Size(),
		})
	}
	// Wider spans first so contained files are found after their
	// container.
	sort.Slice(metas, func(i, j int) bool {
		si, sj := metas[i].maxSeq-metas[i].minSeq, metas[j].maxSeq-metas[j].minSeq
		if si != sj {
			return si > sj
		}
		return metas[i].minSeq < metas[j].minSeq
	})
	kept := metas[:0]
	for _, m := range metas {
		covered := false
		for _, k := range kept {
			if k.minSeq <= m.minSeq && m.maxSeq <= k.maxSeq {
				covered = true
				break
			}
		}
		if covered {
			os.Remove(m.path)
			continue
		}
		kept = append(kept, m)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].maxSeq < kept[j].maxSeq })
	return kept, nil
}

// DiskOptions tune a durable node. The zero value is the safest
// configuration: fsync on every write, 8-file compaction trigger,
// 250ms background compaction pace.
type DiskOptions struct {
	// SyncInterval batches WAL fsyncs. 0 syncs before every write is
	// acknowledged (each insert is durable when it returns); > 0 syncs
	// at that cadence, so a crash may lose up to one interval of
	// acknowledged writes; < 0 disables automatic syncing entirely
	// (call Sync explicitly — for tools and tests).
	SyncInterval time.Duration
	// MaxRuns is the per-shard run-file count above which the
	// background compactor schedules a size-tiered merge. <= 0 selects
	// the default (8).
	MaxRuns int
	// CompactInterval is the background compaction scheduling pace.
	// 0 selects the default (250ms); < 0 disables the background
	// compactor (Compact still works when called).
	CompactInterval time.Duration
	// ReadOnly recovers the directory without touching it: no WAL
	// segment is created, torn tails are not truncated, nothing is
	// spilled or compacted, and writes fail with ErrNodeReadOnly.
	// For tools inspecting a (possibly crashed) agent's directory.
	ReadOnly bool
	// CacheBytes > 0 bounds the node's resident run data: spilled and
	// recovered v2 run files keep only their per-series [min,max] span
	// headers and block indexes in memory, and decoded blocks are
	// cached node-wide up to this budget with clock eviction. 0 keeps
	// every run fully resident (the legacy behaviour — memory grows
	// with retention). Legacy v1 files stay resident either way until
	// compaction rewrites them as v2.
	CacheBytes int64
}

const (
	defaultMaxRuns         = 8
	defaultCompactInterval = 250 * time.Millisecond
)

// Open attaches a fresh node to a data directory with default
// DiskOptions: run files are mapped in, WAL segments are replayed, and
// from then on every write is crash-durable. See OpenOptions.
func (n *Node) Open(dir string) error { return n.OpenOptions(dir, DiskOptions{}) }

// OpenOptions attaches a fresh node to a data directory. The layout is
// one subdirectory per shard (`shard-<i>/`) holding immutable sorted
// run files (`run-<minSeq>-<maxSeq>.sst`) and WAL segments
// (`wal-<seq>.log`). Recovery first maps the run files — dropping any
// whose sequence span another file covers (the crash window of a
// compaction) — then replays the surviving WAL segments in order,
// truncating a torn tail, so every write acknowledged before the crash
// is served again and no partial record ever is. On error the node is
// not usable and must be discarded.
func (n *Node) OpenOptions(dir string, o DiskOptions) error {
	if n.durable() {
		return fmt.Errorf("store: node already open at %s", n.dir)
	}
	for i := range n.shards {
		if n.shards[i].memSize != 0 || len(n.shards[i].runs) != 0 {
			return fmt.Errorf("store: Open requires a fresh node")
		}
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = defaultMaxRuns
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = defaultCompactInterval
	}
	n.opts = o
	n.dir = dir
	if o.CacheBytes > 0 {
		n.cache = newBlockCache(o.CacheBytes)
		n.met.registerCacheMetrics(n.cache)
	}
	for i := range n.shards {
		sh := &n.shards[i]
		sh.disk.dir = filepath.Join(dir, fmt.Sprintf("shard-%02d", i))
		if o.ReadOnly {
			// Leave the directory untouched; a missing shard is empty.
			if _, err := os.Stat(sh.disk.dir); os.IsNotExist(err) {
				continue
			}
		} else if err := os.MkdirAll(sh.disk.dir, 0o755); err != nil {
			n.Close() // release the WALs already opened for earlier shards
			return err
		}
		if err := n.recoverShard(i); err != nil {
			n.Close()
			return err
		}
	}
	n.stopBG = make(chan struct{})
	if o.ReadOnly {
		return nil
	}
	n.sp = newSpiller(n)
	if o.CompactInterval > 0 {
		n.bgWG.Add(1)
		go n.compactLoop()
	}
	if o.SyncInterval > 0 {
		n.bgWG.Add(1)
		go n.syncLoop()
	}
	// A replayed WAL can leave a shard over its flush budget; spill it
	// now that the background machinery is running.
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		var err error
		if sh.memSize >= n.flushSize {
			err = n.flushShardLocked(i)
		}
		sh.mu.Unlock()
		if err != nil {
			// Don't leak the just-started goroutines and open WAL
			// files: tear the node down before reporting failure.
			n.Close()
			return err
		}
	}
	return nil
}

// migrateRunFileV1 rewrites a legacy v1 run file in format v2 so the
// directory gets bounded-memory cold reads immediately, instead of
// waiting for compaction to happen to rewrite it. The v2 copy is
// written to a scratch directory next to the original, decoded back
// and compared entry-for-entry against the v1 contents (every byte
// re-read passes the v2 CRCs), and only then renamed over the v1 file
// — a crash at any point leaves either the old file or the new one.
// Reports whether a migration happened; a v2 file is a no-op.
func migrateRunFileV1(m *runFileMeta) (bool, error) {
	f, err := os.Open(m.path)
	if err != nil {
		return false, err
	}
	var magic [8]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	scratch := m.path + ".migrate"
	if rerr == nil && string(magic[:]) == string(runMagic2) {
		// Already v2; clear any scratch a crashed migration left.
		os.RemoveAll(scratch)
		return false, nil
	}
	data, err := os.ReadFile(m.path)
	if err != nil {
		return false, err
	}
	rc, err := decodeRunFile(data)
	if err != nil {
		return false, fmt.Errorf("store: migrating %s: %w", m.path, err)
	}
	os.RemoveAll(scratch)
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		return false, err
	}
	defer os.RemoveAll(scratch)
	meta2, _, err := writeRunFileV2(scratch, rc.minSeq, rc.maxSeq, rc.series, rc.tombs)
	if err != nil {
		return false, err
	}
	// Verify the rewrite before retiring the v1 original.
	rc2, err := readRunFile(meta2.path)
	if err != nil {
		return false, fmt.Errorf("store: verifying migrated %s: %w", m.path, err)
	}
	if err := runContentsEqual(rc, rc2); err != nil {
		return false, fmt.Errorf("store: migrated %s diverges from original: %w", m.path, err)
	}
	if err := os.Rename(meta2.path, m.path); err != nil {
		return false, err
	}
	syncDir(filepath.Dir(m.path))
	m.size = meta2.size
	return true, nil
}

// runContentsEqual compares two decoded run files entry-for-entry.
func runContentsEqual(a, b *runContents) error {
	if a.minSeq != b.minSeq || a.maxSeq != b.maxSeq {
		return fmt.Errorf("span [%d,%d] != [%d,%d]", a.minSeq, a.maxSeq, b.minSeq, b.maxSeq)
	}
	if len(a.tombs) != len(b.tombs) {
		return fmt.Errorf("%d tombstones != %d", len(a.tombs), len(b.tombs))
	}
	for id, cutoff := range a.tombs {
		if b.tombs[id] != cutoff {
			return fmt.Errorf("tombstone %v: %d != %d", id, cutoff, b.tombs[id])
		}
	}
	if len(a.series) != len(b.series) {
		return fmt.Errorf("%d series != %d", len(a.series), len(b.series))
	}
	for id, es := range a.series {
		es2, ok := b.series[id]
		if !ok || len(es) != len(es2) {
			return fmt.Errorf("series %v: %d entries != %d", id, len(es), len(es2))
		}
		for i := range es {
			if es[i] != es2[i] {
				return fmt.Errorf("series %v entry %d: %+v != %+v", id, i, es[i], es2[i])
			}
		}
	}
	return nil
}

// recoverShard rebuilds shard i from its directory: run files first
// (oldest to newest, applying each file's tombstones to the older
// files' rows), then WAL segment replay into the memtable. Legacy v1
// files are migrated to v2 first (verified rewrite; see
// migrateRunFileV1) unless the node is read-only — a migration failure
// is logged and the v1 file served resident, the pre-migration
// behaviour. Single threaded; no locks needed.
func (n *Node) recoverShard(i int) error {
	sh := &n.shards[i]
	metas, err := scanRunFiles(sh.disk.dir)
	if err != nil {
		return err
	}
	for mi := range metas {
		m := &metas[mi]
		if !n.opts.ReadOnly {
			if _, err := migrateRunFileV1(m); err != nil {
				log.Printf("store: run-file migration: %v (serving v1 original)", err)
			}
		}
		if n.cache != nil {
			// Resident-set-bounded recovery: v2 files contribute only
			// their index (per-series bounds + block index); the data
			// section stays on disk until a query pulls blocks through
			// the cache. v1 files fall through to the full load below
			// and stay resident until compaction rewrites them.
			idx, err := readRunIndexFile(m.path)
			if err == nil {
				if idx.minSeq != m.minSeq || idx.maxSeq != m.maxSeq {
					return fmt.Errorf("store: %s: header span [%d,%d] contradicts name", m.path, idx.minSeq, idx.maxSeq)
				}
				rf, err := openRunFileHandle(m.path, idx.dataLen, n.cache)
				if err != nil {
					return err
				}
				for id, cutoff := range idx.tombs {
					sh.cutRunsLocked(id, cutoff, m.minSeq)
				}
				m.tombs = idx.tombs
				m.rf = rf
				for _, se := range idx.series {
					sh.runs[se.id] = append(sh.runs[se.id], run{
						min: se.min, max: se.max, seq: m.maxSeq,
						cold: &coldRun{rf: rf, blocks: se.blocks, count: int(se.count)},
					})
					sh.flushedSize += int(se.count)
				}
				sh.disk.files = append(sh.disk.files, *m)
				if m.maxSeq >= sh.disk.nextSeq {
					sh.disk.nextSeq = m.maxSeq + 1
				}
				continue
			} else if !isNotV2(err) {
				return err
			}
		}
		rc, err := readRunFile(m.path)
		if err != nil {
			return err
		}
		if rc.minSeq != m.minSeq || rc.maxSeq != m.maxSeq {
			return fmt.Errorf("store: %s: header span [%d,%d] contradicts name", m.path, rc.minSeq, rc.maxSeq)
		}
		// Tombstones cover deletes issued while this file's memtable
		// was live; older files still hold the deleted rows.
		for id, cutoff := range rc.tombs {
			sh.cutRunsLocked(id, cutoff, m.minSeq)
		}
		m.tombs = rc.tombs
		for id, es := range rc.series {
			sh.runs[id] = append(sh.runs[id], run{es: es, min: es[0].ts, max: es[len(es)-1].ts, seq: m.maxSeq})
			sh.flushedSize += len(es)
		}
		sh.disk.files = append(sh.disk.files, *m)
		if m.maxSeq >= sh.disk.nextSeq {
			sh.disk.nextSeq = m.maxSeq + 1
		}
	}
	segs, err := findWALSegments(sh.disk.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		ops, err := replaySegment(seg.path, !n.opts.ReadOnly)
		if err != nil {
			return err
		}
		for _, op := range ops {
			if op.del {
				// The delete happened after everything replayed so
				// far and after every run file older than this
				// segment; data in newer run files was either
				// filtered at its flush or legitimately re-inserted
				// afterwards, so it is left alone.
				sh.cutMemLocked(op.id, op.cutoff)
				sh.cutRunsLocked(op.id, op.cutoff, seg.seq)
				if sh.disk.tombs == nil {
					sh.disk.tombs = make(map[core.SensorID]int64)
				}
				if op.cutoff > sh.disk.tombs[op.id] {
					sh.disk.tombs[op.id] = op.cutoff
				}
				continue
			}
			s := sh.seriesFor(op.id)
			for _, e := range op.entries {
				if s.sorted && len(s.entries) > 0 && e.ts < s.entries[len(s.entries)-1].ts {
					s.sorted = false
				}
				s.entries = append(s.entries, e)
			}
			sh.memSize += len(op.entries)
		}
		sh.disk.memSegs = append(sh.disk.memSegs, seg.path)
		if seg.seq >= sh.disk.nextSeq {
			sh.disk.nextSeq = seg.seq + 1
		}
	}
	sh.indexOK = len(sh.mem) == 0 && len(sh.runs) == 0
	if n.opts.ReadOnly {
		return nil
	}
	w, err := createWAL(sh.disk.dir, sh.disk.nextSeq)
	if err != nil {
		return err
	}
	w.met = &n.met.wal
	sh.disk.wal = w
	return nil
}
