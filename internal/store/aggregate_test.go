package store

import (
	"math"
	"math/rand"
	"testing"

	"dcdb/internal/core"
	"dcdb/internal/fold"
)

// foldMaterialized folds a materialized query result in one Add — the
// reference result every pushdown path must match bit-for-bit.
func foldMaterialized(t *testing.T, spec fold.Spec, rs []core.Reading) fold.State {
	t.Helper()
	st, err := fold.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	st.Add(rs)
	return st
}

func sameState(a, b fold.State) bool {
	return string(fold.Append(nil, a)) == string(fold.Append(nil, b))
}

// TestNodeAggregateMatchesMaterialized: the node-side fold over the
// streaming read path (memtable and cold runs) is bit-identical to
// folding the materialized query result.
func TestNodeAggregateMatchesMaterialized(t *testing.T) {
	n := NewNode(0)
	id := core.SensorID{Hi: 7, Lo: 7}
	rng := rand.New(rand.NewSource(11))
	var rs []core.Reading
	ts := int64(0)
	for i := 0; i < 3*StreamChunkReadings+100; i++ {
		ts += int64(rng.Intn(1000)) + 1
		v := rng.NormFloat64()
		if i%97 == 0 {
			v = math.NaN()
		}
		rs = append(rs, core.Reading{Timestamp: ts, Value: v})
	}
	if err := n.InsertBatch(id, rs, 0); err != nil {
		t.Fatal(err)
	}
	// Half hot, half flushed: the fold must traverse the merged read
	// path exactly like QueryStream.
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertBatch(id, []core.Reading{{Timestamp: ts + 5, Value: 1.5}}, 0); err != nil {
		t.Fatal(err)
	}
	want, err := n.Query(id, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fold.Spec{
		{Op: fold.OpSummary, From: 0, To: 1 << 62},
		{Op: fold.OpIntegral, From: 0, To: 1 << 62},
		{Op: fold.OpDownsample, From: 0, To: 1 << 62, Buckets: 50},
	} {
		got, err := n.Aggregate(id, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Op, err)
		}
		if !sameState(got, foldMaterialized(t, spec, want)) {
			t.Fatalf("%s: node aggregate differs from materialized fold", spec.Op)
		}
	}
}

func TestNodeAggregateRejectsBadSpec(t *testing.T) {
	n := NewNode(0)
	if _, err := n.Aggregate(core.SensorID{Hi: 1}, fold.Spec{Op: 99}); err == nil {
		t.Fatal("bad spec accepted")
	}
	c, _ := threeNodeCluster(t, 2, ClusterOptions{})
	if _, err := c.Aggregate(core.SensorID{Hi: 1}, fold.Spec{Op: fold.OpSummary, From: 5, To: 1}); err == nil {
		t.Fatal("inverted range accepted by cluster")
	}
}

// TestClusterAggregateOne: at ONE the first live replica answers; a
// down replica is skipped.
func TestClusterAggregateOne(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{})
	id := core.SensorID{Hi: 3, Lo: 9}
	rs := []core.Reading{{Timestamp: 1, Value: 2}, {Timestamp: 2, Value: 4}, {Timestamp: 3, Value: 6}}
	for _, r := range rs {
		if err := c.Insert(id, r, 0); err != nil {
			t.Fatal(err)
		}
	}
	spec := fold.Spec{Op: fold.OpSummary, From: 0, To: 10}
	reps := replicaSet(c, id, 3, 2)
	nodes[reps[0]].SetDown(true)
	st, err := c.Aggregate(id, spec)
	if err != nil {
		t.Fatalf("aggregate with primary down: %v", err)
	}
	if st.Count() != 3 {
		t.Fatalf("count = %d, want 3", st.Count())
	}
	// All replicas down: the error must say so.
	for _, i := range reps {
		nodes[i].SetDown(true)
	}
	if _, err := c.Aggregate(id, spec); err == nil {
		t.Fatal("aggregate with all replicas down succeeded")
	}
}

// TestClusterAggregateQuorumConverged: converged replicas agree by
// fingerprint and the answer is bit-identical to a single node's fold.
func TestClusterAggregateQuorumConverged(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
	})
	id := core.SensorID{Hi: 5, Lo: 1}
	var rs []core.Reading
	for i := int64(1); i <= 500; i++ {
		rs = append(rs, core.Reading{Timestamp: i * 1000, Value: float64(i)})
	}
	if err := c.InsertBatch(id, rs, 0); err != nil {
		t.Fatal(err)
	}
	spec := fold.Spec{Op: fold.OpIntegral, From: 0, To: 1 << 50}
	st, err := c.Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	reps := replicaSet(c, id, 3, 2)
	direct, err := nodes[reps[0]].Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(st, direct) {
		t.Fatal("quorum aggregate differs from a converged replica's fold")
	}
}

// TestClusterAggregateQuorumDivergence: replicas holding different
// data disagree by fingerprint; the coordinator must fall back to the
// exact quorum-merged fold (which also read-repairs), not trust either
// replica.
func TestClusterAggregateQuorumDivergence(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
	})
	id := core.SensorID{Hi: 6, Lo: 2}
	if err := c.InsertBatch(id, []core.Reading{
		{Timestamp: 1000, Value: 1},
		{Timestamp: 2000, Value: 2},
	}, 0); err != nil {
		t.Fatal(err)
	}
	// One replica gets an extra reading behind the coordinator's back.
	reps := replicaSet(c, id, 3, 2)
	if err := nodes[reps[1]].Insert(id, core.Reading{Timestamp: 3000, Value: 7}, 0); err != nil {
		t.Fatal(err)
	}

	spec := fold.Spec{Op: fold.OpSummary, From: 0, To: 10000}
	st, err := c.Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The exact fallback folds the quorum merge: all three readings.
	if st.Count() != 3 {
		t.Fatalf("divergent quorum aggregate count = %d, want 3 (exact merged fold)", st.Count())
	}
	if s := st.(*fold.Summary); s.Max != 7 || s.Last.Timestamp != 3000 {
		t.Fatalf("divergent quorum aggregate = %+v", s)
	}

	// The fallback's quorum read repaired the stale replica, so the
	// replicas now agree and the cheap consensus path serves the same
	// answer.
	st2, err := c.Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count() != 3 {
		t.Fatalf("post-repair aggregate count = %d, want 3", st2.Count())
	}
	a, err := nodes[reps[0]].Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nodes[reps[1]].Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("replicas still diverge after the fallback's read repair")
	}
}

// TestClusterAggregateQuorumNotMet: with only one replica of two up,
// quorum must fail rather than silently degrade.
func TestClusterAggregateQuorumNotMet(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{ReadConsistency: ConsistencyQuorum})
	id := core.SensorID{Hi: 8, Lo: 8}
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	reps := replicaSet(c, id, 3, 2)
	nodes[reps[0]].SetDown(true)
	if _, err := c.Aggregate(id, fold.Spec{Op: fold.OpSummary, From: 0, To: 10}); err == nil {
		t.Fatal("quorum aggregate with a replica down succeeded")
	}
}
