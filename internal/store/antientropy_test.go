package store

import (
	"testing"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/fold"
)

// aeCluster builds an n-node cluster replicating every row to all n
// members, with hinted handoff disabled so a write a down replica
// misses stays missed until anti-entropy repairs it.
func aeCluster(t *testing.T, n int, readCL Consistency) (*Cluster, []*Node) {
	t.Helper()
	nodes := make([]*Node, n)
	backends := make([]NodeBackend, n)
	for i := range nodes {
		nodes[i] = NewNode(0)
		backends[i] = nodes[i]
	}
	c, err := NewClusterOptions(backends, ClusterOptions{
		Replication:      n,
		WriteConsistency: ConsistencyOne,
		ReadConsistency:  readCL,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, nodes
}

// TestVersionedDedupNewestVersionWins: duplicate timestamps resolve by
// write version at query time, regardless of insertion order — the
// store-level rule that closes the hint-replay resurrection window.
// Version-0 entries (legacy data) keep the old last-insert-wins rule.
func TestVersionedDedupNewestVersionWins(t *testing.T) {
	n := NewNode(0)
	id := sid(80, 1)
	// The newer version arrives FIRST; the stale version second.
	if err := n.InsertVersioned(id, []VersionedReading{{Timestamp: 5, Value: 3, Version: 20}}); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertVersioned(id, []VersionedReading{{Timestamp: 5, Value: 2, Version: 10}}); err != nil {
		t.Fatal(err)
	}
	rs, err := n.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 3 {
		t.Fatalf("later-inserted stale version won: %v (want value 3 from version 20)", rs)
	}
	// Dedup across the memtable/run boundary too.
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertVersioned(id, []VersionedReading{{Timestamp: 5, Value: 1, Version: 15}}); err != nil {
		t.Fatal(err)
	}
	rs, err = n.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 3 {
		t.Fatalf("stale version in a newer run won: %v (want value 3)", rs)
	}
	// Legacy rule preserved: all version-0 writes, last insert wins.
	legacy := sid(80, 2)
	for i, v := range []float64{1, 2, 3} {
		if err := n.Insert(legacy, core.Reading{Timestamp: int64(10 + i%1), Value: v}, 0); err != nil {
			t.Fatal(err)
		}
	}
	rs, err = n.Query(legacy, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 3 {
		t.Fatalf("legacy version-0 dedup changed: %v (want last write, value 3)", rs)
	}
}

// TestHintReplayResurrectionWindowClosed is the bug this change
// exists for. Timeline: a value is written, the replica goes down, a
// rewrite is hinted for it, the replica returns, a NEWER rewrite lands
// on every replica — and only then does the hint replay deliver the
// now-stale middle write. Under the old insertion-order rule the
// replayed value landed newest and resurrected; under write versions
// it resolves below the final rewrite and the replica keeps serving
// the newest value.
func TestHintReplayResurrectionWindowClosed(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0)}
	c, err := NewClusterOptions([]NodeBackend{nodes[0], nodes[1]}, ClusterOptions{
		Replication:        2,
		WriteConsistency:   ConsistencyOne,
		HintDir:            t.TempDir(),
		HintReplayInterval: -1, // replay driven explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := sid(81, 1)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 10}, 0); err != nil {
		t.Fatal(err)
	}
	nodes[1].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 20}, 0); err != nil {
		t.Fatal(err) // hinted for nodes[1]
	}
	nodes[1].SetDown(false)
	// The replica is back; a newer rewrite reaches both replicas BEFORE
	// the queued hint replays.
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 30}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplayHints(); err != nil {
		t.Fatal(err)
	}
	if _, replayed, _ := c.HintStats(); replayed == 0 {
		t.Fatal("hint was not replayed; the scenario did not exercise the window")
	}
	for i, n := range nodes {
		rs, err := n.Query(id, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 1 || rs[0].Value != 30 {
			t.Fatalf("node %d serves %v: the replayed stale hint resurrected over the newest rewrite", i, rs)
		}
	}
}

// TestReadRepairCarriesWriteVersions: a QUORUM read of diverged
// replicas must both answer with the newest version — even when the
// stale replica is the primary — and repair the lagging replica with
// the winning write's original version so it actually converges.
func TestReadRepairCarriesWriteVersions(t *testing.T) {
	c, nodes := aeCluster(t, 2, ConsistencyQuorum)
	id := sid(82, 1)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	// The rewrite misses whichever replica the partitioner calls
	// primary, so the stale copy is the one consulted first.
	primary := c.replicasFor(id)[0]
	nodes[primary].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 2}, 0); err != nil {
		t.Fatal(err)
	}
	nodes[primary].SetDown(false)
	rs, err := c.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("quorum read served %v: the stale primary outranked the newer version", rs)
	}
	c.repairWG.Wait() // read repair is backgrounded
	got, err := nodes[primary].Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("primary still serves %v after read repair (repair write lost the version race)", got)
	}
}

// requireReplicasIdentical asserts every node serves the exact same
// byte sequence for id, and that their digests agree.
func requireReplicasIdentical(t *testing.T, nodes []*Node, id core.SensorID) []core.Reading {
	t.Helper()
	ref, err := nodes[0].Query(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	refFP, refN, err := nodes[0].Digest(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nodes); i++ {
		rs, err := nodes[i].Query(id, -1<<62, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(ref) {
			t.Fatalf("node %d serves %d readings, node 0 serves %d", i, len(rs), len(ref))
		}
		for j := range ref {
			if rs[j] != ref[j] {
				t.Fatalf("node %d position %d: %+v, node 0 has %+v", i, j, rs[j], ref[j])
			}
		}
		fp, n, err := nodes[i].Digest(id, -1<<62, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		if fp != refFP || n != refN {
			t.Fatalf("node %d digest (%x,%d) != node 0 (%x,%d) despite identical reads", i, fp, n, refFP, refN)
		}
	}
	return ref
}

// TestAntiEntropyConvergesDivergedReplicasWithoutReads: a replica that
// missed writes (down, no hints) — including a conflicting rewrite of
// an existing timestamp — converges to the bit-identical newest state
// through RepairRound alone, with no client read traffic, and the
// repair counters account for it.
func TestAntiEntropyConvergesDivergedReplicasWithoutReads(t *testing.T) {
	c, nodes := aeCluster(t, 3, ConsistencyQuorum)
	id := sid(83, 1)
	base := make([]core.Reading, 50)
	for i := range base {
		base[i] = core.Reading{Timestamp: int64(i + 1), Value: float64(i)}
	}
	if err := c.InsertBatch(id, base, 0); err != nil {
		t.Fatal(err)
	}
	nodes[2].SetDown(true)
	// A conflicting rewrite and some fresh timestamps, all missed by
	// the down replica.
	if err := c.InsertBatch(id, []core.Reading{
		{Timestamp: 10, Value: 999},
		{Timestamp: 60, Value: 60},
		{Timestamp: 61, Value: 61},
	}, 0); err != nil {
		t.Fatal(err)
	}
	nodes[2].SetDown(false)
	if fp0, _, _ := nodes[0].Digest(id, -1<<62, 1<<62); true {
		if fp2, _, _ := nodes[2].Digest(id, -1<<62, 1<<62); fp0 == fp2 {
			t.Fatal("replica did not diverge; scenario is vacuous")
		}
	}
	if err := c.RepairRound(); err != nil {
		t.Fatal(err)
	}
	rs := requireReplicasIdentical(t, nodes, id)
	if len(rs) != 52 {
		t.Fatalf("converged series has %d readings, want 52", len(rs))
	}
	if rs[9].Value != 999 {
		t.Fatalf("timestamp 10 converged to %v, want the rewrite 999", rs[9].Value)
	}
	if got := c.met.aeRounds.Load(); got != 1 {
		t.Fatalf("aeRounds %d, want 1", got)
	}
	if got := c.met.aeChecked.Load(); got < 1 {
		t.Fatalf("aeChecked %d, want >= 1", got)
	}
	if got := c.met.aeMismatched.Load(); got < 1 {
		t.Fatalf("aeMismatched %d, want >= 1", got)
	}
	if got := c.met.aeRepaired.Load(); got < 3 {
		t.Fatalf("aeRepaired %d, want >= 3 (one rewrite + two fresh readings)", got)
	}
	// A second round over converged replicas finds nothing to move.
	repaired := c.met.aeRepaired.Load()
	mismatched := c.met.aeMismatched.Load()
	if err := c.RepairRound(); err != nil {
		t.Fatal(err)
	}
	if c.met.aeRepaired.Load() != repaired || c.met.aeMismatched.Load() != mismatched {
		t.Fatal("anti-entropy kept repairing already-converged replicas")
	}
}

// TestAntiEntropyRestoresAggregateConsensus: while replicas diverge,
// every quorum aggregate falls back to the exact merged-stream fold
// (aggFallback grows); one anti-entropy round restores fingerprint
// consensus and the fallback counter stops incrementing.
func TestAntiEntropyRestoresAggregateConsensus(t *testing.T) {
	c, nodes := aeCluster(t, 2, ConsistencyQuorum)
	id := sid(84, 1)
	base := make([]core.Reading, 100)
	for i := range base {
		base[i] = core.Reading{Timestamp: int64(i + 1), Value: 1}
	}
	if err := c.InsertBatch(id, base, 0); err != nil {
		t.Fatal(err)
	}
	nodes[1].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 50, Value: 1000}, 0); err != nil {
		t.Fatal(err)
	}
	nodes[1].SetDown(false)

	spec := fold.Spec{Op: fold.OpSummary, From: 0, To: 1 << 62}
	if _, err := c.Aggregate(id, spec); err != nil {
		t.Fatal(err)
	}
	if got := c.met.aggFallback.Load(); got != 1 {
		t.Fatalf("aggregate over diverged replicas took the consensus path (aggFallback %d, want 1)", got)
	}
	if err := c.RepairRound(); err != nil {
		t.Fatal(err)
	}
	fallbacks := c.met.aggFallback.Load()
	consensus := c.met.aggConsensus.Load()
	st, err := c.Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.met.aggFallback.Load() != fallbacks {
		t.Fatal("aggFallback incremented after anti-entropy repair; replicas still diverge")
	}
	if c.met.aggConsensus.Load() != consensus+1 {
		t.Fatal("post-repair aggregate did not take the consensus path")
	}
	sum, ok := st.(*fold.Summary)
	if !ok {
		t.Fatalf("aggregate state is %T, want *fold.Summary", st)
	}
	if want := float64(99 + 1000); sum.Sum != want {
		t.Fatalf("post-repair aggregate Sum %v, want %v (rewrite must be visible)", sum.Sum, want)
	}
}

// TestAntiEntropyBackgroundLoopConverges: with AntiEntropyInterval
// set, diverged replicas converge with no calls at all — the scheduler
// drives RepairRound.
func TestAntiEntropyBackgroundLoopConverges(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0)}
	c, err := NewClusterOptions([]NodeBackend{nodes[0], nodes[1]}, ClusterOptions{
		Replication:         2,
		WriteConsistency:    ConsistencyOne,
		AntiEntropyInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := sid(85, 1)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	nodes[1].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 2, Value: 2}, 0); err != nil {
		t.Fatal(err)
	}
	nodes[1].SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs, err := nodes[1].Query(id, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica still serves %v after 5s of background anti-entropy", rs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAntiEntropySingleCopyIsNoop: replication 1 has nothing to
// compare; a round completes without touching any counter but rounds.
func TestAntiEntropySingleCopyIsNoop(t *testing.T) {
	n := NewNode(0)
	c, err := NewClusterOptions([]NodeBackend{n}, ClusterOptions{Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert(sid(86, 1), core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RepairRound(); err != nil {
		t.Fatal(err)
	}
	if c.met.aeRounds.Load() != 1 || c.met.aeChecked.Load() != 0 {
		t.Fatalf("single-copy round: rounds=%d checked=%d, want 1/0",
			c.met.aeRounds.Load(), c.met.aeChecked.Load())
	}
}

// TestMergeVersionedReadings covers the union/winner rules the repair
// paths share.
func TestMergeVersionedReadings(t *testing.T) {
	a := []VersionedReading{
		{Timestamp: 1, Value: 1, Version: 5},
		{Timestamp: 3, Value: 3, Version: 5},
		{Timestamp: 5, Value: 5, Version: 9},
	}
	b := []VersionedReading{
		{Timestamp: 2, Value: 2, Version: 6},
		{Timestamp: 3, Value: 30, Version: 7}, // newer version wins
		{Timestamp: 5, Value: 50, Version: 8}, // older version loses
	}
	got := mergeVersionedReadings(a, b)
	want := []VersionedReading{
		{Timestamp: 1, Value: 1, Version: 5},
		{Timestamp: 2, Value: 2, Version: 6},
		{Timestamp: 3, Value: 30, Version: 7},
		{Timestamp: 5, Value: 5, Version: 9},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d readings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Equal versions break ties on value bits, so both merge orders
	// agree — the property that makes repeated repair rounds converge.
	x := []VersionedReading{{Timestamp: 1, Value: 2, Version: 3}}
	y := []VersionedReading{{Timestamp: 1, Value: 7, Version: 3}}
	if mergeVersionedReadings(x, y)[0] != mergeVersionedReadings(y, x)[0] {
		t.Fatal("equal-version merge is order-dependent; repair would oscillate")
	}
	if v := mergeVersionedReadings(x, y)[0].Value; v != 7 {
		t.Fatalf("equal-version tiebreak picked %v, want 7 (higher value bits)", v)
	}
}

// TestVersionedDelta: only readings the replica is missing or holds a
// different value for are re-sent.
func TestVersionedDelta(t *testing.T) {
	merged := []VersionedReading{
		{Timestamp: 1, Value: 1, Version: 5},
		{Timestamp: 2, Value: 2, Version: 6},
		{Timestamp: 3, Value: 30, Version: 7},
	}
	have := []VersionedReading{
		{Timestamp: 1, Value: 1, Version: 5}, // identical: skip
		{Timestamp: 3, Value: 3, Version: 5}, // stale value: resend
	}
	delta := versionedDelta(merged, have)
	if len(delta) != 2 || delta[0].Timestamp != 2 || delta[1].Timestamp != 3 || delta[1].Value != 30 {
		t.Fatalf("delta %+v, want missing ts 2 and rewritten ts 3", delta)
	}
	if d := versionedDelta(merged, merged); len(d) != 0 {
		t.Fatalf("identical replica got a %d-reading delta", len(d))
	}
}
