package store

import (
	"testing"
	"time"

	"dcdb/internal/core"
)

// Coverage for the hint-forwarding machinery around departed members:
// the containment predicate the cutover falls back to, delete and
// legacy-format hints forwarded through current owners, and the three
// deliverHints dispositions.

func TestVersionedMissing(t *testing.T) {
	vr := func(ts int64, ver uint64) VersionedReading {
		return VersionedReading{Timestamp: ts, Value: float64(ts), Version: ver}
	}
	merged := []VersionedReading{vr(1, 5), vr(2, 5), vr(3, 5)}

	// Exact containment: nothing missing.
	if got := versionedMissing(merged, merged); len(got) != 0 {
		t.Fatalf("identical sets reported %d missing", len(got))
	}
	// Newer target versions still satisfy containment (live ingest wrote
	// over the moved range while the transfer streamed).
	newer := []VersionedReading{vr(1, 9), vr(2, 5), vr(3, 7)}
	if got := versionedMissing(merged, newer); len(got) != 0 {
		t.Fatalf("newer versions reported %d missing", len(got))
	}
	// A missing timestamp and a stale version are both gaps.
	have := []VersionedReading{vr(1, 5), vr(3, 4)}
	got := versionedMissing(merged, have)
	if len(got) != 2 || got[0].Timestamp != 2 || got[1].Timestamp != 3 {
		t.Fatalf("versionedMissing = %v, want ts 2 (absent) and ts 3 (stale)", got)
	}
	// Extra target-only readings never create gaps.
	extra := []VersionedReading{vr(0, 1), vr(1, 5), vr(2, 5), vr(3, 5), vr(4, 1)}
	if got := versionedMissing(merged, extra); len(got) != 0 {
		t.Fatalf("superset reported %d missing", len(got))
	}
}

func TestRebalanceWaitBlocksUntilCutover(t *testing.T) {
	c, _ := ringCluster(t, []string{"alpha", "bravo"}, ClusterOptions{
		Replication:      2,
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
		// A real throttle keeps the transition observable long enough for
		// the wait to actually block.
		RebalanceThrottle: 200 * time.Microsecond,
	})
	defer c.Close()
	ids := seedSensors(t, c, 30, 10)

	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"}, {ID: "charlie", Addr: "charlie"},
	}); err != nil {
		t.Fatal(err)
	}
	c.RebalanceWait()
	if _, transition := c.Members(); transition {
		t.Fatal("RebalanceWait returned with a transition still in flight")
	}
	checkSensors(t, c, ids, 10)
}

// TestForwardedDeleteAndLegacyHints drives the two forwarder paths the
// versioned-insert forwarding test does not reach: a delete hint and a
// legacy unversioned insert hint (written by a pre-versioning
// coordinator) queued for a member that then leaves the ring. Both must
// re-coordinate through the current owners.
func TestForwardedDeleteAndLegacyHints(t *testing.T) {
	dir := t.TempDir()
	c, nodes := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:        3,
		WriteConsistency:   ConsistencyQuorum,
		ReadConsistency:    ConsistencyQuorum,
		HintDir:            dir,
		HintReplayInterval: -1, // replay manually
	})
	defer c.Close()

	id := sid(41, 13)
	rs := []core.Reading{
		{Timestamp: 1, Value: 1}, {Timestamp: 2, Value: 2},
		{Timestamp: 3, Value: 3}, {Timestamp: 4, Value: 4},
	}
	if err := c.InsertBatch(id, rs, 0); err != nil {
		t.Fatal(err)
	}

	// One replica goes down; a QUORUM delete still acks and queues a
	// delete hint for it.
	nodes["charlie"].SetDown(true)
	if err := c.DeleteBefore(id, 3); err != nil {
		t.Fatalf("QUORUM delete with one down replica: %v", err)
	}
	if _, _, pending := c.HintStats(); pending == 0 {
		t.Fatal("no delete hint queued for the down replica")
	}
	// A legacy unversioned insert hint in the same queue, as an older
	// coordinator build would have written it.
	legacy := sid(42, 14)
	if err := c.hints.enqueue("charlie", encodeWALInsert(nil,
		legacy, []core.Reading{{Timestamp: 7, Value: 7}}, 0)); err != nil {
		t.Fatal(err)
	}

	// The member leaves instead of recovering; after the cutover both
	// hints forward through the remaining owners.
	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
	}); err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)
	if err := c.ReplayHints(); err != nil {
		t.Fatalf("forwarding hints of the departed member: %v", err)
	}
	if _, _, pending := c.HintStats(); pending != 0 {
		t.Fatalf("%d members still have pending hints after forwarding", pending)
	}

	got, err := c.Query(id, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Timestamp != 3 || got[1].Timestamp != 4 {
		t.Fatalf("after forwarded delete: %v, want ts 3 and 4 only", got)
	}
	lg, err := c.Query(legacy, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg) != 1 || lg[0].Value != 7 {
		t.Fatalf("after forwarded legacy insert: %v", lg)
	}
}

// TestDeliverHintsDispositions pins deliverHints' three outcomes: a
// down in-topology member keeps its hints, a mid-transition departed
// member defers, and a recovered member gets its replay.
func TestDeliverHintsDispositions(t *testing.T) {
	dir := t.TempDir()
	c, nodes := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:        3,
		WriteConsistency:   ConsistencyQuorum,
		ReadConsistency:    ConsistencyQuorum,
		HintDir:            dir,
		HintReplayInterval: -1,
	})
	defer c.Close()

	id := sid(77, 3)
	nodes["charlie"].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if !c.hints.has("charlie") {
		t.Fatal("no hint queued for the down replica")
	}

	// In topology, still down: attempted with an error; hints stay.
	attempted, err := c.deliverHints(c.top(), "charlie")
	if !attempted || err == nil {
		t.Fatalf("down member: attempted=%v err=%v, want attempted with ping failure", attempted, err)
	}
	if !c.hints.has("charlie") {
		t.Fatal("failed delivery dropped the hints")
	}

	// Departed mid-transition: not attempted — forwards must wait for
	// the cutover so they resolve against final owners.
	cur := c.top()
	mid := newTopology(cur.members, cur.ring, cur.ring)
	if attempted, err := c.deliverHints(mid, "no-such-member"); attempted || err != nil {
		t.Fatalf("mid-transition departed member: attempted=%v err=%v, want deferred", attempted, err)
	}

	// Recovered: the replay lands and the queue drains.
	nodes["charlie"].SetDown(false)
	if attempted, err := c.deliverHints(c.top(), "charlie"); !attempted || err != nil {
		t.Fatalf("recovered member: attempted=%v err=%v", attempted, err)
	}
	if c.hints.has("charlie") {
		t.Fatal("hints still queued after a successful replay")
	}
	rs, err := nodes["charlie"].Query(id, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 1 {
		t.Fatalf("replica after replay: %v", rs)
	}
}

// TestRingPartitionerStaticFallback pins RingPartitioner's Partitioner
// face: the modulo fallback used only when a ring cluster is built
// through the static constructor, and the self-describing name.
func TestRingPartitionerStaticFallback(t *testing.T) {
	p := RingPartitioner{}
	if got := p.NodeFor(sid(1, 2), 1); got != 0 {
		t.Fatalf("single node: NodeFor = %d", got)
	}
	counts := make(map[int]int)
	for i := 0; i < 256; i++ {
		n := p.NodeFor(sid(uint64(i), uint64(i*31)), 4)
		if n < 0 || n >= 4 {
			t.Fatalf("NodeFor out of range: %d", n)
		}
		counts[n]++
	}
	if len(counts) != 4 {
		t.Fatalf("modulo fallback only used %d of 4 nodes", len(counts))
	}
	if got := p.Name(); got != "ring(vnodes=64)" {
		t.Fatalf("default Name = %q", got)
	}
	if got := (RingPartitioner{VNodes: 16}).Name(); got != "ring(vnodes=16)" {
		t.Fatalf("tuned Name = %q", got)
	}
}

// TestRingScatterQuorumBound covers checkPrefixQuorum's ring branch: a
// scatter read at QUORUM must fail while any replica window of the read
// ring lacks a quorum of live members, and recover when the member
// answers again.
func TestRingScatterQuorumBound(t *testing.T) {
	c, nodes := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:      2,
		WriteConsistency: ConsistencyOne,
		ReadConsistency:  ConsistencyQuorum,
	})
	defer c.Close()
	ids := seedSensors(t, c, 20, 5)

	nodes["bravo"].SetDown(true)
	if _, err := c.QueryPrefix(core.SensorID{}, 0, 0, 1<<60); err == nil {
		t.Fatal("scatter read at QUORUM succeeded with a down member in every window containing it")
	}
	nodes["bravo"].SetDown(false)
	got, err := c.QueryPrefix(core.SensorID{}, 0, 0, 1<<60)
	if err != nil {
		t.Fatalf("scatter read after recovery: %v", err)
	}
	if len(got) != len(ids) {
		t.Fatalf("scatter read returned %d sensors, want %d", len(got), len(ids))
	}
}

// TestExpireToTTL pins the hint-replay expiry inversion: a zero expiry
// is "no TTL", a future expiry becomes a positive TTL, and an already
// expired entry is reported dead so replay drops it.
func TestExpireToTTL(t *testing.T) {
	if d, ok := expireToTTL(0); !ok || d != 0 {
		t.Fatalf("expireToTTL(0) = (%v, %v)", d, ok)
	}
	if d, ok := expireToTTL(time.Now().Add(time.Hour).UnixNano()); !ok || d <= 0 {
		t.Fatalf("future expiry: (%v, %v)", d, ok)
	}
	if _, ok := expireToTTL(time.Now().Add(-time.Hour).UnixNano()); ok {
		t.Fatal("past expiry reported alive")
	}
}

// TestCacheBudget: a cacheless node reports 0; a disk node opened with
// a cache budget reports the configured capacity.
func TestCacheBudget(t *testing.T) {
	n := NewNode(0)
	defer n.Close()
	if got := n.CacheBudget(); got != 0 {
		t.Fatalf("cacheless node budget = %d", got)
	}
	d := NewNode(0)
	if err := d.OpenOptions(t.TempDir(), DiskOptions{CacheBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.CacheBudget(); got != 1<<20 {
		t.Fatalf("cached node budget = %d, want %d", got, 1<<20)
	}
}

// TestRebalanceRetriesUntilTargetRecovers drives the transfer's failure
// loop deterministically: the joining member is down when the
// transition starts, so rebalance rounds fail and back off; once the
// member answers the transfer completes and cuts over. The joiner also
// holds pre-existing data the merge predates, forcing the digest
// mismatch down the containment fallback instead of exact equality.
func TestRebalanceRetriesUntilTargetRecovers(t *testing.T) {
	c, nodes := ringCluster(t, []string{"alpha", "bravo"}, ClusterOptions{
		Replication:      1,
		WriteConsistency: ConsistencyOne,
		ReadConsistency:  ConsistencyOne,
	})
	defer c.Close()
	ids := seedSensors(t, c, 20, 10)

	// The joiner exists before the transition: it already holds foreign
	// readings for a seeded sensor (so its digest can never match the
	// merged history exactly) and it is down (so the first transfer
	// rounds fail outright).
	joiner := NewNode(0)
	if err := joiner.InsertBatch(ids[0], []core.Reading{
		{Timestamp: 500, Value: 500}, {Timestamp: 501, Value: 501},
	}, 0); err != nil {
		t.Fatal(err)
	}
	joiner.SetDown(true)
	nodes["charlie"] = joiner

	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"}, {ID: "charlie", Addr: "charlie"},
	}); err != nil {
		t.Fatal(err)
	}
	// Let at least one round fail against the down joiner.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, transition := c.Members(); transition {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("transition never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	if _, transition := c.Members(); !transition {
		t.Fatal("transition completed against a down joiner")
	}

	joiner.SetDown(false)
	waitRebalance(t, c)
	checkSensors(t, c, ids, 10)
	if ins, _, _ := joiner.Stats(); ins == 0 {
		t.Fatal("no data moved to the recovered joiner")
	}
}

// TestForwardedVersionedHintRehints covers coordinateVersioned's two
// failure dispositions when a departed member's versioned hints are
// forwarded: below write quorum the forward fails outright and the
// hints stay; at quorum with one current owner down the forward acks
// and re-hints the missed owner.
func TestForwardedVersionedHintRehints(t *testing.T) {
	dir := t.TempDir()
	c, nodes := ringCluster(t, []string{"alpha", "bravo", "charlie", "delta"}, ClusterOptions{
		Replication:        3,
		WriteConsistency:   ConsistencyQuorum,
		ReadConsistency:    ConsistencyQuorum,
		HintDir:            dir,
		HintReplayInterval: -1,
	})
	defer c.Close()

	// Pick a sensor whose rf=3 replica set includes charlie (placement
	// is deterministic, so probe rather than hardcode).
	var id core.SensorID
	found := false
	top := c.top()
	for probe := uint64(1); probe < 256 && !found; probe++ {
		cand := sid(55, probe)
		for _, idx := range c.readReplicas(top, cand) {
			if top.members[idx].id == "charlie" {
				id, found = cand, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no probed sensor places on charlie")
	}
	nodes["charlie"].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if !c.hints.has("charlie") {
		t.Fatal("no hint queued for the down replica")
	}

	// The hinted member leaves; three members remain, so every sensor's
	// replica set at rf=3 is all of them.
	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"}, {ID: "delta", Addr: "delta"},
	}); err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)

	// Two of three owners down: the forward cannot meet QUORUM and must
	// keep the hints for a later attempt.
	nodes["bravo"].SetDown(true)
	nodes["delta"].SetDown(true)
	if err := c.ReplayHints(); err == nil {
		t.Fatal("forwarding below write quorum succeeded")
	}
	if !c.hints.has("charlie") {
		t.Fatal("failed forward dropped the departed member's hints")
	}

	// One owner back: the forward acks at QUORUM and the reading missed
	// by the still-down owner is re-hinted under its own queue.
	nodes["bravo"].SetDown(false)
	if err := c.ReplayHints(); err != nil {
		t.Fatalf("forwarding at quorum: %v", err)
	}
	if c.hints.has("charlie") {
		t.Fatal("departed member's queue survived a successful forward")
	}
	if !c.hints.has("delta") {
		t.Fatal("owner that missed the forward was not re-hinted")
	}
	nodes["delta"].SetDown(false)
	if err := c.ReplayHints(); err != nil {
		t.Fatalf("draining the re-hint: %v", err)
	}
	rs, err := nodes["delta"].Query(id, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != 1 {
		t.Fatalf("re-hinted owner holds %v", rs)
	}
}

// TestSaveFileErrorPaths: snapshot writes are atomic — a failed create
// leaves nothing behind and surfaces the error.
func TestSaveFileErrorPaths(t *testing.T) {
	n := NewNode(0)
	defer n.Close()
	if err := n.SaveFile("/nonexistent-dir/snap"); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
	path := t.TempDir() + "/ok.snap"
	if err := n.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
}
