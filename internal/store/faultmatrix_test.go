package store

import (
	"errors"
	"io"
	"sync"
	"syscall"
	"testing"

	"dcdb/internal/core"
	"dcdb/internal/faults"
	"dcdb/internal/fsutil"
)

// Fault-matrix tests: deterministic, scripted failures at single seams
// (one replica's stream dies mid-merge, one disk fills, one hint replay
// is interrupted), asserting the exact contract the chaos suite then
// probes under randomized schedules.

// flakyStreamBackend wraps a Node so its first QueryStream serves
// failAfter chunks and then dies; subsequent opens either succeed
// (reopenOK) or fail outright (a replica that stayed down).
type flakyStreamBackend struct {
	*Node
	reopenOK  bool
	failAfter int

	mu    sync.Mutex
	opens int
	froms []int64 // the from bound of every open, for resume assertions
}

func (b *flakyStreamBackend) QueryStream(id core.SensorID, from, to int64) (ReadingStream, error) {
	b.mu.Lock()
	b.opens++
	n := b.opens
	b.froms = append(b.froms, from)
	b.mu.Unlock()
	if n > 1 && !b.reopenOK {
		return nil, errors.New("injected: replica unreachable")
	}
	st, err := b.Node.QueryStream(id, from, to)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return &failAfterStream{st: st, left: b.failAfter}, nil
	}
	return st, nil
}

func (b *flakyStreamBackend) stats() (opens int, froms []int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, append([]int64(nil), b.froms...)
}

type failAfterStream struct {
	st   ReadingStream
	left int
}

func (f *failAfterStream) Next() ([]core.Reading, error) {
	if f.left == 0 {
		f.st.Close()
		return nil, errors.New("injected: replica stream lost")
	}
	f.left--
	return f.st.Next()
}

func (f *failAfterStream) Close() error { return f.st.Close() }

// streamCluster builds a 3-node cluster with node `wrap` behind a
// flakyStreamBackend, fully populated with total readings for id.
func streamCluster(t *testing.T, id core.SensorID, total int, wrap int, reopenOK bool) (*Cluster, *flakyStreamBackend, []core.Reading) {
	t.Helper()
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	var flaky *flakyStreamBackend
	for i, n := range nodes {
		if i == wrap {
			flaky = &flakyStreamBackend{Node: n, reopenOK: reopenOK, failAfter: 2}
			backends[i] = flaky
		} else {
			backends[i] = n
		}
	}
	c, err := NewClusterOptions(backends, ClusterOptions{
		Replication:     3,
		ReadConsistency: ConsistencyQuorum,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	batch := make([]core.Reading, 0, 1024)
	for ts := 0; ts < total; ts++ {
		batch = append(batch, core.Reading{Timestamp: int64(ts + 1), Value: float64(ts)})
		if len(batch) == cap(batch) || ts == total-1 {
			// Writes fan out to every replica and wait for all three, so
			// the replicas are byte-identical before any fault fires.
			if err := c.InsertBatch(id, batch, 0); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	want, err := c.Query(id, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != total {
		t.Fatalf("seeded %d of %d readings", len(want), total)
	}
	return c, flaky, want
}

func drainStream(t *testing.T, st ReadingStream) []core.Reading {
	t.Helper()
	var got []core.Reading
	for {
		rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream failed mid-drain: %v", err)
		}
		got = append(got, rs...)
	}
	st.Close()
	return got
}

func requireEqualReadings(t *testing.T, got, want []core.Reading) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("stream returned %d readings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestQuorumStreamResumesAfterMidStreamLoss: a QUORUM stream whose
// replica stream dies mid-merge must re-open it at the merge horizon
// and produce exactly the unfaulted sequence — no loss, no repeats.
func TestQuorumStreamResumesAfterMidStreamLoss(t *testing.T) {
	id := sid(11, 11)
	total := 3*StreamChunkReadings + 700
	c, flaky, want := streamCluster(t, id, total, 1, true)
	st, err := c.QueryStream(id, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualReadings(t, drainStream(t, st), want)
	opens, froms := flaky.stats()
	if opens != 2 {
		t.Fatalf("replica stream opened %d times, want 2 (initial + one resume)", opens)
	}
	if froms[1] <= froms[0] {
		t.Fatalf("resume re-opened from %d (initial %d): restarted instead of resuming", froms[1], froms[0])
	}
}

// TestQuorumStreamSurvivesDeadReplica: when the lost replica never
// comes back, the merge must finish from the surviving quorum with the
// identical sequence, and the re-open budget must stay bounded.
func TestQuorumStreamSurvivesDeadReplica(t *testing.T) {
	id := sid(12, 12)
	total := 3*StreamChunkReadings + 700
	c, flaky, want := streamCluster(t, id, total, 1, false)
	st, err := c.QueryStream(id, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualReadings(t, drainStream(t, st), want)
	opens, _ := flaky.stats()
	if opens > 3 {
		t.Fatalf("dead replica re-opened %d times; budget is one inline + one barrier attempt", opens)
	}
}

// TestOneStreamFailsOverMidStream: a ONE-level stream riding a replica
// that dies mid-stream must fail over to the next replica at the last
// emitted timestamp and finish with the identical sequence.
func TestOneStreamFailsOverMidStream(t *testing.T) {
	id := sid(13, 13)
	// ONE rides the first replica whose stream opens — the primary when
	// everyone is up — so that is the one to sabotage.
	primary := HierarchicalPartitioner{Depth: 4}.NodeFor(id, 3)
	total := 3*StreamChunkReadings + 700
	nodesCluster, flaky, want := func() (*Cluster, *flakyStreamBackend, []core.Reading) {
		c, f, w := streamCluster(t, id, total, primary, false)
		c.readCL = ConsistencyOne
		return c, f, w
	}()
	st, err := nodesCluster.QueryStream(id, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualReadings(t, drainStream(t, st), want)
	opens, _ := flaky.stats()
	if opens != 1 {
		t.Fatalf("failed replica opened %d times; failover must move on, not retry it", opens)
	}
}

// TestWALWriteENOSPCFailsShardClosed: when the disk is full (writes and
// new segment files both fail), the shard must reject writes — fail
// closed — rather than acknowledge data it cannot make durable, stay
// closed until reopen even after space returns, and recover every
// previously acked write.
func TestWALWriteENOSPCFailsShardClosed(t *testing.T) {
	inj := faults.New(1)
	orig := fsutil.Disk
	fsutil.Disk = inj.FS(orig)
	defer func() { fsutil.Disk = orig }()

	dir := t.TempDir()
	n := openedNode(t, dir, 0, DiskOptions{SyncInterval: 0, CompactInterval: -1})
	id := sid(6, 6)
	other := sid(6, 7)
	for shardIndex(other) == shardIndex(id) {
		other.Lo++
	}
	if err := n.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}

	full := inj.AddRule(&faults.Rule{
		Ops: faults.FSWrite | faults.FSOpen, Match: dir, Err: syscall.ENOSPC,
	})
	err := n.Insert(id, core.Reading{Timestamp: 2, Value: 2}, 0)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("insert on a full disk returned %v, want ENOSPC", err)
	}
	// The broken segment's rotation also fails (no space for a new
	// file): the shard latches closed.
	if err := n.Insert(id, core.Reading{Timestamp: 3, Value: 3}, 0); err == nil {
		t.Fatal("insert acked while the WAL could not be replaced")
	}
	full.Disable()
	if err := n.Insert(id, core.Reading{Timestamp: 4, Value: 4}, 0); err == nil {
		t.Fatal("shard accepted writes again without a reopen; fail-closed must latch")
	}
	// Other shards never touched the full region mid-fault and still work.
	if err := n.Insert(other, core.Reading{Timestamp: 1, Value: 9}, 0); err != nil {
		t.Fatalf("unaffected shard rejected a write: %v", err)
	}

	// Reopen: everything acked before the fault is there, everything
	// rejected is not, and the shard serves writes again.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2 := openedNode(t, dir, 0, DiskOptions{SyncInterval: 0, CompactInterval: -1})
	defer n2.Close()
	rs, err := n2.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Timestamp != 1 {
		t.Fatalf("recovered %v; want exactly the one acked reading", rs)
	}
	if err := n2.Insert(id, core.Reading{Timestamp: 5, Value: 5}, 0); err != nil {
		t.Fatalf("shard still closed after reopen: %v", err)
	}
}

// insertFailBackend fails one scripted InsertVersioned call, for
// interrupting a hint replay mid-file. Coordinated writes and hint
// replay both deliver through InsertVersioned.
type insertFailBackend struct {
	*Node
	mu     sync.Mutex
	calls  int
	failAt int
}

func (b *insertFailBackend) InsertVersioned(id core.SensorID, vrs []VersionedReading) error {
	b.mu.Lock()
	b.calls++
	fail := b.calls == b.failAt
	b.mu.Unlock()
	if fail {
		return errors.New("injected: delivery dropped")
	}
	return b.Node.InsertVersioned(id, vrs)
}

// TestHintReplayInterruptedMidFileRedelivers: a replay that dies
// mid-file must keep the file and re-apply it whole on the next
// attempt — at-least-once delivery, with the duplicate collapsing at
// the replica's query-time dedup.
func TestHintReplayInterruptedMidFileRedelivers(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0)}
	wrapped := &insertFailBackend{Node: nodes[1], failAt: 4}
	c, err := NewClusterOptions([]NodeBackend{nodes[0], wrapped}, ClusterOptions{
		Replication:        2,
		WriteConsistency:   ConsistencyOne,
		HintDir:            t.TempDir(),
		HintReplayInterval: -1, // replay driven explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := sid(14, 14)
	nodes[1].SetDown(true)
	// Two cluster writes while the replica is down: calls 1 and 2 on
	// the wrapper (rejected by the down node), two hint records queued.
	for ts := int64(1); ts <= 2; ts++ {
		if err := c.Insert(id, core.Reading{Timestamp: ts, Value: float64(ts)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	nodes[1].SetDown(false)
	// First replay: record 1 delivers (call 3), record 2 is dropped
	// (call 4 = failAt) — the file must survive.
	if err := c.ReplayHints(); err == nil {
		t.Fatal("interrupted replay reported success")
	}
	if err := c.ReplayHints(); err != nil {
		t.Fatalf("second replay: %v", err)
	}
	queued, replayed, pending := c.HintStats()
	if pending != 0 {
		t.Fatalf("hints still pending after successful replay: %d", pending)
	}
	if queued != 2 || replayed <= queued {
		t.Fatalf("queued %d replayed %d; a mid-file interruption must redeliver the whole file (at-least-once)", queued, replayed)
	}
	// The duplicate delivery collapses: the replica serves each
	// timestamp exactly once.
	rs, err := nodes[1].Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Timestamp != 1 || rs[1].Timestamp != 2 {
		t.Fatalf("replica converged to %v", rs)
	}
}
