package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dcdb/internal/core"
)

// Live-membership coordinator tests: ring placement, join/leave
// rebalance with the digest-verified cutover, writes racing the
// transition, and hint forwarding for departed members.

// ringCluster builds a live-membership cluster over in-process nodes
// named by the given IDs. The factory keeps creating nodes on demand,
// so SetMembers can grow the cluster; the node map is returned for
// direct inspection.
func ringCluster(t *testing.T, ids []string, o ClusterOptions) (*Cluster, map[string]*Node) {
	t.Helper()
	var mu sync.Mutex
	nodes := make(map[string]*Node)
	o.BackendFactory = func(id, addr string) NodeBackend {
		mu.Lock()
		defer mu.Unlock()
		n, ok := nodes[id]
		if !ok {
			n = NewNode(0)
			nodes[id] = n
		}
		return n
	}
	if o.RebalanceThrottle == 0 {
		o.RebalanceThrottle = -1 // tests want fast transfers
	}
	ms := make([]MemberInfo, len(ids))
	for i, id := range ids {
		ms[i] = MemberInfo{ID: id, Addr: id}
	}
	c, err := NewClusterMembers(ms, o)
	if err != nil {
		t.Fatal(err)
	}
	return c, nodes
}

// waitRebalance blocks until the transition finishes, failing the test
// if it does not converge.
func waitRebalance(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, transition := c.Members(); !transition {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("rebalance did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// seedSensors inserts nSensors x nReadings and returns the sensor set.
func seedSensors(t *testing.T, c *Cluster, nSensors, nReadings int) []core.SensorID {
	t.Helper()
	ids := make([]core.SensorID, nSensors)
	for s := 0; s < nSensors; s++ {
		ids[s] = sid(uint64(s+1), uint64(s*7+3))
		rs := make([]core.Reading, nReadings)
		for i := range rs {
			rs[i] = core.Reading{Timestamp: int64(i + 1), Value: float64(s*1000 + i)}
		}
		if err := c.InsertBatch(ids[s], rs, 0); err != nil {
			t.Fatalf("seeding sensor %d: %v", s, err)
		}
	}
	return ids
}

// checkSensors asserts every seeded sensor reads back complete.
func checkSensors(t *testing.T, c *Cluster, ids []core.SensorID, nReadings int) {
	t.Helper()
	for s, id := range ids {
		rs, err := c.Query(id, 0, 1<<60)
		if err != nil {
			t.Fatalf("sensor %d: %v", s, err)
		}
		if len(rs) != nReadings {
			t.Fatalf("sensor %d: %d readings, want %d", s, len(rs), nReadings)
		}
		for i, r := range rs {
			if r.Timestamp != int64(i+1) || r.Value != float64(s*1000+i) {
				t.Fatalf("sensor %d reading %d: got (%d, %v)", s, i, r.Timestamp, r.Value)
			}
		}
	}
}

func TestRingClusterReadsOwnWrites(t *testing.T) {
	c, _ := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:      3,
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
	})
	defer c.Close()
	ids := seedSensors(t, c, 40, 20)
	checkSensors(t, c, ids, 20)
	if ms, transition := c.Members(); transition || len(ms) != 3 {
		t.Fatalf("Members() = %d members, transition=%v", len(ms), transition)
	}
}

func TestJoinRebalanceMovesData(t *testing.T) {
	c, nodes := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:      2,
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
	})
	defer c.Close()
	ids := seedSensors(t, c, 60, 25)

	err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
		{ID: "charlie", Addr: "charlie"}, {ID: "delta", Addr: "delta"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)

	checkSensors(t, c, ids, 25)
	// The joiner must actually own data now: with 4 members at 64
	// vnodes it holds ~1/2 of all (sensor, replica) placements at rf=2.
	delta := nodes["delta"]
	if delta == nil {
		t.Fatal("factory never built the joining member")
	}
	if ins, _, _ := delta.Stats(); ins == 0 {
		t.Fatal("no data moved to the joining member")
	}
	// Post-cutover reads resolve against the new ring only: queries for
	// sensors the joiner now serves must not need the old owners.
	moved := 0
	top := c.top()
	for _, id := range ids {
		for _, idx := range c.readReplicas(top, id) {
			if top.members[idx].id == "delta" {
				moved++
				break
			}
		}
	}
	if moved == 0 {
		t.Fatal("new ring assigns the joiner no sensors")
	}
}

func TestLeaveRebalanceKeepsDataReadable(t *testing.T) {
	c, _ := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:      2,
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
	})
	defer c.Close()
	ids := seedSensors(t, c, 60, 25)

	err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)

	ms, _ := c.Members()
	if len(ms) != 2 {
		t.Fatalf("after leave: %d members, want 2", len(ms))
	}
	checkSensors(t, c, ids, 25)
}

func TestWritesDuringRebalanceStayReadable(t *testing.T) {
	c, _ := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:      2,
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
		// A real throttle keeps the transition open long enough for the
		// concurrent writer to land writes mid-transfer.
		RebalanceThrottle: 500 * time.Microsecond,
	})
	defer c.Close()
	ids := seedSensors(t, c, 50, 30)

	err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
		{ID: "charlie", Addr: "charlie"}, {ID: "delta", Addr: "delta"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Race acked writes against the transfer: every InsertBatch that
	// returns nil must be readable at QUORUM after convergence.
	extra := make(map[int]int) // sensor -> acked extra readings
	for i := 0; i < 200; i++ {
		s := i % len(ids)
		ts := int64(1000 + i)
		if err := c.Insert(ids[s], core.Reading{Timestamp: ts, Value: float64(ts)}, 0); err == nil {
			extra[s]++
		}
	}
	waitRebalance(t, c)

	for s, id := range ids {
		rs, err := c.Query(id, 0, 1<<60)
		if err != nil {
			t.Fatalf("sensor %d: %v", s, err)
		}
		if want := 30 + extra[s]; len(rs) != want {
			t.Fatalf("sensor %d: %d readings after rebalance, want %d", s, len(rs), want)
		}
	}
}

func TestSetMembersRetargetConverges(t *testing.T) {
	c, _ := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:       2,
		WriteConsistency:  ConsistencyQuorum,
		ReadConsistency:   ConsistencyQuorum,
		RebalanceThrottle: 200 * time.Microsecond,
	})
	defer c.Close()
	ids := seedSensors(t, c, 40, 20)

	// Two membership changes back to back: the second supersedes the
	// first mid-transfer, and reads keep anchoring to the original ring
	// until the final cutover.
	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
		{ID: "charlie", Addr: "charlie"}, {ID: "delta", Addr: "delta"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
		{ID: "delta", Addr: "delta"}, {ID: "echo", Addr: "echo"},
	}); err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)

	ms, _ := c.Members()
	if len(ms) != 4 {
		t.Fatalf("after retarget: %d members, want 4", len(ms))
	}
	for _, m := range ms {
		if m.ID == "charlie" {
			t.Fatal("departed member still in topology after cutover")
		}
	}
	checkSensors(t, c, ids, 20)
}

func TestSetMembersRejectsStaticCluster(t *testing.T) {
	c, _ := threeNodeCluster(t, 2, ClusterOptions{})
	defer c.Close()
	err := c.SetMembers([]MemberInfo{{ID: "a", Addr: "a"}})
	if err == nil {
		t.Fatal("SetMembers on a static cluster succeeded")
	}
}

func TestHintForwardingForDepartedMember(t *testing.T) {
	dir := t.TempDir()
	c, nodes := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:        3,
		WriteConsistency:   ConsistencyQuorum,
		ReadConsistency:    ConsistencyQuorum,
		HintDir:            dir,
		HintReplayInterval: -1, // replay manually
	})
	defer c.Close()

	id := sid(99, 7)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}

	// Down one replica; a QUORUM write still acks and queues a hint.
	nodes["charlie"].SetDown(true)
	if err := c.Insert(id, core.Reading{Timestamp: 2, Value: 2}, 0); err != nil {
		t.Fatalf("QUORUM write with one down replica: %v", err)
	}
	if _, _, pending := c.HintStats(); pending == 0 {
		t.Fatal("no hint queued for the down replica")
	}

	// The down member leaves the ring instead of recovering. After the
	// cutover its hints are forwarded through the remaining owners.
	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
	}); err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)
	if err := c.ReplayHints(); err != nil {
		t.Fatalf("forwarding hints of the departed member: %v", err)
	}
	if _, _, pending := c.HintStats(); pending != 0 {
		t.Fatalf("%d members still have pending hints after forwarding", pending)
	}
	rs, err := c.Query(id, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1].Value != 2 {
		t.Fatalf("after forwarding: %v", rs)
	}
}

func TestHintIDEscapingRoundTrips(t *testing.T) {
	cases := []string{"node0", "127.0.0.1:4441", "[::1]:80", "a b%c/d", "plain-id_1.x"}
	for _, id := range cases {
		esc := escapeHintID(id)
		for i := 0; i < len(esc); i++ {
			ch := esc[i]
			ok := ch == '.' || ch == '_' || ch == '-' || ch == '%' ||
				(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
			if !ok {
				t.Fatalf("escapeHintID(%q) = %q: unsafe byte %q", id, esc, ch)
			}
		}
		if got := unescapeHintID(esc); got != id {
			t.Fatalf("round trip %q -> %q -> %q", id, esc, got)
		}
	}
	if escapeHintID("node0") != "node0" {
		t.Fatal("legacy IDs must escape to themselves")
	}
}

func TestRebalanceMetricsAdvance(t *testing.T) {
	c, _ := ringCluster(t, []string{"alpha", "bravo"}, ClusterOptions{
		Replication:      2,
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
	})
	defer c.Close()
	seedSensors(t, c, 10, 5)
	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"}, {ID: "charlie", Addr: "charlie"},
	}); err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)
	var transitions, cutovers float64
	for _, s := range c.Metrics().Gather() {
		switch s.Name {
		case "dcdb_cluster_rebalance_transitions_total":
			transitions = s.Value
		case "dcdb_cluster_rebalance_cutovers_total":
			cutovers = s.Value
		}
	}
	if transitions < 1 || cutovers < 1 {
		t.Fatalf("rebalance metrics: transitions=%v cutovers=%v", transitions, cutovers)
	}
}

func TestRingClusterConcurrentReadsDuringCutover(t *testing.T) {
	c, _ := ringCluster(t, []string{"alpha", "bravo", "charlie"}, ClusterOptions{
		Replication:       2,
		WriteConsistency:  ConsistencyQuorum,
		ReadConsistency:   ConsistencyQuorum,
		RebalanceThrottle: 100 * time.Microsecond,
	})
	defer c.Close()
	ids := seedSensors(t, c, 30, 10)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var readErr error
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(w*7+i)%len(ids)]
				rs, err := c.Query(id, 0, 1<<60)
				if err == nil && len(rs) != 10 {
					err = fmt.Errorf("%d readings, want 10", len(rs))
				}
				if err != nil {
					mu.Lock()
					if readErr == nil {
						readErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}

	if err := c.SetMembers([]MemberInfo{
		{ID: "alpha", Addr: "alpha"}, {ID: "bravo", Addr: "bravo"},
		{ID: "charlie", Addr: "charlie"}, {ID: "delta", Addr: "delta"},
	}); err != nil {
		t.Fatal(err)
	}
	waitRebalance(t, c)
	close(stop)
	wg.Wait()
	if readErr != nil {
		t.Fatalf("concurrent read during rebalance: %v", readErr)
	}
}
