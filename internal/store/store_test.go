package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
	"unsafe"

	"dcdb/internal/core"
)

func sid(hi, lo uint64) core.SensorID { return core.SensorID{Hi: hi, Lo: lo} }

func rd(ts int64, v float64) core.Reading { return core.Reading{Timestamp: ts, Value: v} }

func TestNodeInsertQuery(t *testing.T) {
	n := NewNode(0)
	id := sid(1, 2)
	for i := int64(0); i < 100; i++ {
		if err := n.Insert(id, rd(i*10, float64(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := n.Query(id, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 41 {
		t.Fatalf("got %d readings", len(rs))
	}
	if rs[0].Timestamp != 100 || rs[len(rs)-1].Timestamp != 500 {
		t.Fatalf("range bounds: %v … %v", rs[0], rs[len(rs)-1])
	}
	// Unknown sensor yields empty result, no error.
	empty, err := n.Query(sid(9, 9), 0, 1000)
	if err != nil || len(empty) != 0 {
		t.Fatalf("unknown sensor: %v, %v", empty, err)
	}
}

func TestNodeOutOfOrderInserts(t *testing.T) {
	n := NewNode(0)
	id := sid(3, 0)
	order := []int64{50, 10, 30, 20, 40}
	for _, ts := range order {
		n.Insert(id, rd(ts, float64(ts)), 0)
	}
	rs, _ := n.Query(id, 0, 100)
	if len(rs) != 5 {
		t.Fatalf("got %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Timestamp <= rs[i-1].Timestamp {
			t.Fatalf("unsorted output: %v", rs)
		}
	}
}

func TestNodeFlushAndQueryAcrossTables(t *testing.T) {
	n := NewNode(10) // tiny flush threshold
	id := sid(1, 1)
	for i := int64(0); i < 35; i++ {
		n.Insert(id, rd(i, float64(i)), 0)
	}
	rs, _ := n.Query(id, 0, 100)
	if len(rs) != 35 {
		t.Fatalf("got %d readings across tables", len(rs))
	}
	_, _, entries := n.Stats()
	if entries != 35 {
		t.Fatalf("entries = %d", entries)
	}
}

func TestNodeDuplicateTimestampsLastWins(t *testing.T) {
	n := NewNode(0)
	id := sid(1, 1)
	n.Insert(id, rd(100, 1), 0)
	n.Insert(id, rd(100, 2), 0)
	rs, _ := n.Query(id, 0, 200)
	if len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("dedup failed: %v", rs)
	}
}

func TestNodeTTL(t *testing.T) {
	n := NewNode(0)
	id := sid(1, 1)
	n.Insert(id, rd(1, 1), time.Nanosecond) // expires immediately
	n.Insert(id, rd(2, 2), time.Hour)
	time.Sleep(time.Millisecond)
	rs, _ := n.Query(id, 0, 10)
	if len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("TTL not honoured: %v", rs)
	}
	// Compact drops expired entries physically.
	n.Flush()
	n.Compact()
	_, _, entries := n.Stats()
	if entries != 1 {
		t.Fatalf("entries after compact = %d", entries)
	}
}

func TestNodeDeleteBefore(t *testing.T) {
	n := NewNode(5)
	id := sid(1, 1)
	for i := int64(0); i < 20; i++ {
		n.Insert(id, rd(i, float64(i)), 0)
	}
	if err := n.DeleteBefore(id, 10); err != nil {
		t.Fatal(err)
	}
	rs, _ := n.Query(id, 0, 100)
	if len(rs) != 10 || rs[0].Timestamp != 10 {
		t.Fatalf("DeleteBefore: %v", rs)
	}
}

func TestNodeQueryPrefix(t *testing.T) {
	n := NewNode(0)
	m := core.NewTopicMapper()
	a, _ := m.Map("/sys/r1/n1/power")
	b, _ := m.Map("/sys/r1/n2/power")
	c, _ := m.Map("/sys/r2/n1/power")
	for _, id := range []core.SensorID{a, b, c} {
		n.Insert(id, rd(1, 1), 0)
	}
	pre := a.Prefix(2)
	got, err := n.QueryPrefix(pre, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("prefix query got %d sensors", len(got))
	}
	if _, ok := got[c]; ok {
		t.Error("prefix query leaked foreign subtree")
	}
}

func TestNodeDown(t *testing.T) {
	n := NewNode(0)
	n.SetDown(true)
	id := sid(1, 1)
	if err := n.Insert(id, rd(1, 1), 0); err != ErrNodeDown {
		t.Errorf("Insert on down node: %v", err)
	}
	if _, err := n.Query(id, 0, 1); err != ErrNodeDown {
		t.Errorf("Query on down node: %v", err)
	}
	if _, err := n.QueryPrefix(core.SensorID{}, 1, 0, 1); err != ErrNodeDown {
		t.Errorf("QueryPrefix on down node: %v", err)
	}
	if err := n.DeleteBefore(id, 1); err != ErrNodeDown {
		t.Errorf("DeleteBefore on down node: %v", err)
	}
	n.SetDown(false)
	if err := n.Insert(id, rd(1, 1), 0); err != nil {
		t.Errorf("Insert after revive: %v", err)
	}
}

func TestNodeSensorIDs(t *testing.T) {
	n := NewNode(2)
	ids := []core.SensorID{sid(2, 0), sid(1, 0), sid(3, 0)}
	for _, id := range ids {
		n.Insert(id, rd(1, 1), 0)
	}
	got := n.SensorIDs()
	if len(got) != 3 || got[0] != sid(1, 0) || got[2] != sid(3, 0) {
		t.Fatalf("SensorIDs = %v", got)
	}
}

func TestNodeConcurrency(t *testing.T) {
	n := NewNode(100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := sid(uint64(w), 0)
			for i := int64(0); i < 500; i++ {
				n.Insert(id, rd(i, float64(i)), 0)
				if i%50 == 0 {
					n.Query(id, 0, i)
				}
			}
		}(w)
	}
	wg.Wait()
	ins, _, entries := n.Stats()
	if ins != 4000 || entries != 4000 {
		t.Fatalf("inserts=%d entries=%d", ins, entries)
	}
}

func TestNodeMergeAcrossRunsLastWriteWins(t *testing.T) {
	// Duplicate timestamps in different runs: the newer run must win.
	n := NewNode(0)
	id := sid(1, 1)
	n.Insert(id, rd(100, 1), 0)
	n.Flush() // v=1 now in an SSTable
	n.Insert(id, rd(100, 2), 0)
	rs, _ := n.Query(id, 0, 200)
	if len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("memtable should shadow SSTable: %v", rs)
	}
	n.Flush() // v=2 in a second, newer SSTable
	rs, _ = n.Query(id, 0, 200)
	if len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("newer SSTable should win: %v", rs)
	}
}

func TestNodeMergeInterleavedRuns(t *testing.T) {
	// Runs with interleaved timestamp ranges must merge into one
	// sorted sequence.
	n := NewNode(0)
	id := sid(7, 7)
	for _, ts := range []int64{0, 10, 20, 30} {
		n.Insert(id, rd(ts, float64(ts)), 0)
	}
	n.Flush()
	for _, ts := range []int64{5, 15, 25, 35} {
		n.Insert(id, rd(ts, float64(ts)), 0)
	}
	n.Flush()
	for _, ts := range []int64{3, 33} {
		n.Insert(id, rd(ts, float64(ts)), 0)
	}
	rs, _ := n.Query(id, 0, 100)
	want := []int64{0, 3, 5, 10, 15, 20, 25, 30, 33, 35}
	if len(rs) != len(want) {
		t.Fatalf("got %d readings: %v", len(rs), rs)
	}
	for i, ts := range want {
		if rs[i].Timestamp != ts || rs[i].Value != float64(ts) {
			t.Fatalf("position %d: %v, want ts %d", i, rs[i], ts)
		}
	}
}

func TestNodeConcurrentMixedOps(t *testing.T) {
	// Hammer every operation from multiple goroutines so the race
	// detector exercises the striped shards, the lazy prefix index and
	// the atomic counters together.
	n := NewNode(64)
	m := core.NewTopicMapper()
	ids := make([]core.SensorID, 16)
	for i := range ids {
		id, err := m.Map(fmt.Sprintf("/race/r%d/n%d/power", i%4, i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	prefix := ids[0].Prefix(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 300; i++ {
				// Alternate between two sensors so all 16 get data.
				id := ids[(w+8*int(i%2))%len(ids)]
				switch i % 7 {
				case 0, 1, 2:
					n.Insert(id, rd(i, float64(i)), 0)
				case 3:
					n.Query(id, 0, i)
				case 4:
					n.QueryPrefix(prefix, 1, 0, i)
				case 5:
					if w == 0 {
						n.Flush()
					} else {
						n.SensorIDs()
					}
				case 6:
					if w == 1 {
						n.Compact()
					} else {
						n.Stats()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := n.QueryPrefix(prefix, 1, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("prefix query found %d of %d sensors", len(got), len(ids))
	}
}

func TestClusterConcurrentReplicatedOps(t *testing.T) {
	// Fan-out is always goroutine-per-replica for batches at or above
	// parallelBatchMin, so the race detector covers the parallel paths.
	nodes := []*Node{NewNode(128), NewNode(128), NewNode(128)}
	c, err := NewCluster(nodes, HashPartitioner{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	const workers, batches, batchLen = 8, 16, 16 // batchLen >= parallelBatchMin
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := sid(uint64(w+1), uint64(w))
			for b := 0; b < batches; b++ {
				batch := make([]core.Reading, batchLen)
				for i := range batch {
					ts := int64(b*batchLen + i)
					batch[i] = rd(ts, float64(ts))
				}
				if err := c.InsertBatch(id, batch, 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Query(id, 0, 1<<60); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.QueryPrefix(core.SensorID{}, 0, 0, 1<<60); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	const perWorker = batches * batchLen
	if got := c.TotalInserts(); got != workers*perWorker*2 {
		t.Fatalf("TotalInserts = %d, want %d", got, workers*perWorker*2)
	}
	for w := 0; w < workers; w++ {
		id := sid(uint64(w+1), uint64(w))
		rs, err := c.Query(id, 0, 1<<60)
		if err != nil || len(rs) != perWorker {
			t.Fatalf("worker %d: %d readings, %v", w, len(rs), err)
		}
		if err := c.DeleteBefore(id, perWorker/2); err != nil {
			t.Fatal(err)
		}
		rs, err = c.Query(id, 0, 1<<60)
		if err != nil || len(rs) != perWorker/2 {
			t.Fatalf("worker %d after delete: %d readings, %v", w, len(rs), err)
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	n := NewNode(7)
	rng := rand.New(rand.NewSource(42))
	want := make(map[core.SensorID][]core.Reading)
	for s := 0; s < 5; s++ {
		id := sid(uint64(s+1), uint64(s))
		for i := int64(0); i < 50; i++ {
			r := rd(i*100, rng.Float64())
			n.Insert(id, r, 0)
			want[id] = append(want[id], r)
		}
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	n2 := NewNode(0)
	if err := n2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for id, rs := range want {
		got, err := n2.Query(id, 0, 1<<60)
		if err != nil || len(got) != len(rs) {
			t.Fatalf("sensor %v: got %d readings, err %v", id, len(got), err)
		}
		for i := range rs {
			if got[i] != rs[i] {
				t.Fatalf("sensor %v reading %d: %v != %v", id, i, got[i], rs[i])
			}
		}
	}
}

func TestSnapshotInterleavedRunsStaySorted(t *testing.T) {
	// Save concatenates a sensor's runs from several SSTables; the
	// restored single run must be sorted or the merge read path
	// returns out-of-order results.
	n := NewNode(0)
	id := sid(1, 1)
	n.Insert(id, rd(100, 1), 0)
	n.Flush()
	n.Insert(id, rd(50, 2), 0)
	n.Flush()
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	n2 := NewNode(0)
	if err := n2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	rs, err := n2.Query(id, 0, 200)
	if err != nil || len(rs) != 2 || rs[0].Timestamp != 50 || rs[1].Timestamp != 100 {
		t.Fatalf("restored query = %v, %v; want sorted [50 100]", rs, err)
	}
	// Window narrowing relies on sortedness too.
	rs, _ = n2.Query(id, 60, 200)
	if len(rs) != 1 || rs[0].Timestamp != 100 {
		t.Fatalf("restored window query = %v", rs)
	}
}

func TestCompactRetiresDeadSensors(t *testing.T) {
	// A sensor whose data fully expires must vanish from SensorIDs
	// and the prefix index after compaction, even though flush keeps
	// series objects around for buffer reuse.
	n := NewNode(0)
	dead, live := sid(1, 1), sid(2, 2)
	n.Insert(dead, rd(1, 1), time.Nanosecond)
	n.Insert(live, rd(1, 1), time.Hour)
	time.Sleep(time.Millisecond)
	n.Flush()
	n.Compact()
	ids := n.SensorIDs()
	if len(ids) != 1 || ids[0] != live {
		t.Fatalf("SensorIDs after compact = %v, want only %v", ids, live)
	}
	got, err := n.QueryPrefix(core.SensorID{}, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got[dead]; ok {
		t.Error("expired sensor still visible to prefix queries")
	}
	// The retired sensor accepts new data again.
	if err := n.Insert(dead, rd(5, 5), 0); err != nil {
		t.Fatal(err)
	}
	if rs, _ := n.Query(dead, 0, 10); len(rs) != 1 {
		t.Fatalf("revived sensor query = %v", rs)
	}
}

func TestSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.snap")
	n := NewNode(0)
	n.Insert(sid(1, 1), rd(5, 7), 0)
	if err := n.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	n2 := NewNode(0)
	if err := n2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	rs, _ := n2.Query(sid(1, 1), 0, 10)
	if len(rs) != 1 || rs[0].Value != 7 {
		t.Fatalf("file roundtrip: %v", rs)
	}
	if err := n2.LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSnapshotBadData(t *testing.T) {
	n := NewNode(0)
	if err := n.Load(bytes.NewReader([]byte("NOTASNAP"))); err == nil {
		t.Error("bad magic accepted")
	}
	if err := n.Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
	var buf bytes.Buffer
	buf.Write(snapMagic)
	buf.Write([]byte{0, 0, 0, 99}) // bad version
	if err := n.Load(&buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestClusterBasics(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0)}
	c, err := NewCluster(nodes, HierarchicalPartitioner{Depth: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewTopicMapper()
	var ids []core.SensorID
	for _, tp := range []string{"/s/r1/n1/p", "/s/r1/n2/p", "/s/r2/n1/p", "/s/r2/n2/p"} {
		id, _ := m.Map(tp)
		ids = append(ids, id)
	}
	for i, id := range ids {
		for ts := int64(0); ts < 10; ts++ {
			if err := c.Insert(id, rd(ts, float64(i)), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, id := range ids {
		rs, err := c.Query(id, 0, 100)
		if err != nil || len(rs) != 10 || rs[0].Value != float64(i) {
			t.Fatalf("sensor %d: %v, %v", i, rs, err)
		}
	}
	// Replication: total physical inserts = logical * 2.
	if got := c.TotalInserts(); got != 80 {
		t.Fatalf("TotalInserts = %d, want 80", got)
	}
}

func TestClusterFailover(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0)}
	c, _ := NewCluster(nodes, HashPartitioner{}, 2)
	id := sid(42, 7)
	for ts := int64(0); ts < 5; ts++ {
		c.Insert(id, rd(ts, 1), 0)
	}
	primary := c.part.NodeFor(id, 3)
	nodes[primary].SetDown(true)
	rs, err := c.Query(id, 0, 100)
	if err != nil || len(rs) != 5 {
		t.Fatalf("failover query: %v, %v", rs, err)
	}
	// Writes survive with one replica down.
	if err := c.Insert(id, rd(100, 2), 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	// All replicas down -> failure.
	for _, n := range nodes {
		n.SetDown(true)
	}
	if _, err := c.Query(id, 0, 100); err == nil {
		t.Error("query with all nodes down succeeded")
	}
	if err := c.Insert(id, rd(200, 3), 0); err == nil {
		t.Error("insert with all nodes down succeeded")
	}
}

func TestClusterQueryPrefixHierarchicalLocality(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0), NewNode(0)}
	c, _ := NewCluster(nodes, HierarchicalPartitioner{Depth: 3}, 1)
	m := core.NewTopicMapper()
	subtree := []string{"/s/r1/n1/power", "/s/r1/n1/temp", "/s/r1/n1/energy"}
	for _, tp := range subtree {
		id, _ := m.Map(tp)
		c.Insert(id, rd(1, 1), 0)
	}
	// All three sensors share the prefix, so they live on one node.
	id0, _ := m.Lookup(subtree[0])
	holder := c.part.NodeFor(id0, 4)
	ins, _, _ := nodes[holder].Stats()
	if ins != 3 {
		t.Fatalf("expected all 3 rows on node %d, it has %d", holder, ins)
	}
	got, err := c.QueryPrefix(id0.Prefix(3), 3, 0, 10)
	if err != nil || len(got) != 3 {
		t.Fatalf("QueryPrefix = %d sensors, %v", len(got), err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, nil, 1); err == nil {
		t.Error("empty cluster accepted")
	}
	c, err := NewCluster([]*Node{NewNode(0)}, nil, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.replication != 1 {
		t.Errorf("replication not capped: %d", c.replication)
	}
	if c.Partitioner().Name() == "" {
		t.Error("default partitioner has no name")
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}

func TestClusterDeleteBefore(t *testing.T) {
	c, _ := NewCluster([]*Node{NewNode(0), NewNode(0)}, nil, 2)
	id := sid(1, 1)
	for ts := int64(0); ts < 10; ts++ {
		c.Insert(id, rd(ts, 1), 0)
	}
	if err := c.DeleteBefore(id, 5); err != nil {
		t.Fatal(err)
	}
	rs, _ := c.Query(id, 0, 100)
	if len(rs) != 5 {
		t.Fatalf("after delete: %d", len(rs))
	}
}

func TestPartitionerProperties(t *testing.T) {
	// Hierarchical: same prefix -> same node, regardless of leaf.
	m := core.NewTopicMapper()
	a, _ := m.Map("/s/r1/n1/power")
	b, _ := m.Map("/s/r1/n1/temp")
	p := HierarchicalPartitioner{Depth: 3}
	if p.NodeFor(a, 7) != p.NodeFor(b, 7) {
		t.Error("same subtree mapped to different nodes")
	}
	if p.NodeFor(a, 1) != 0 || (HashPartitioner{}).NodeFor(a, 1) != 0 {
		t.Error("single-node cluster must map to 0")
	}
	if (HashPartitioner{}).Name() != "hash" {
		t.Error("hash partitioner name")
	}
	// Quick: node index is always in range.
	f := func(hi, lo uint64, n uint8) bool {
		nodes := int(n%16) + 1
		id := core.SensorID{Hi: hi, Lo: lo}
		h := HashPartitioner{}.NodeFor(id, nodes)
		g := HierarchicalPartitioner{Depth: 4}.NodeFor(id, nodes)
		return h >= 0 && h < nodes && g >= 0 && g < nodes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashPartitionerBalance(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		id := sid(rand.Uint64(), rand.Uint64())
		counts[HashPartitioner{}.NodeFor(id, 4)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("node %d has %d of 4000 sensors (imbalanced)", i, c)
		}
	}
}

// Property: Query returns sorted unique timestamps for any insert order.
func TestQuerySortedQuick(t *testing.T) {
	f := func(stamps []int64) bool {
		n := NewNode(8)
		id := sid(1, 1)
		for _, ts := range stamps {
			ts &= 0xffff
			n.Insert(id, rd(ts, float64(ts)), 0)
		}
		rs, err := n.Query(id, 0, 1<<60)
		if err != nil {
			return false
		}
		if !sort.SliceIsSorted(rs, func(i, j int) bool { return rs[i].Timestamp < rs[j].Timestamp }) {
			return false
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].Timestamp == rs[i-1].Timestamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShardSizeCacheAligned(t *testing.T) {
	// Shards live in a contiguous array; a size that is not a multiple
	// of the cache line puts one shard's hot mutex/counters on the same
	// line as its neighbour's, resurrecting the contention PR 1 removed.
	if sz := unsafe.Sizeof(shard{}); sz%64 != 0 {
		t.Fatalf("sizeof(shard) = %d, not a 64-byte multiple — adjust the pad", sz)
	}
}
