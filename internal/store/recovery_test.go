package store

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcdb/internal/core"
)

// Crash-recovery suite for the durable engine: a node is killed at
// randomized WAL/flush boundaries (hard stop without flushing, torn
// tails truncated at arbitrary bytes, fault-injected WAL writers) and
// reopened; every write acknowledged while the WAL was synced must be
// served again, no torn record may ever be served, and ingest must
// resume.

// crash simulates a hard process kill: background goroutines stop,
// pending spill jobs are dropped (their WAL segments survive on disk),
// and WAL files close without flushing buffered records — exactly what
// power loss leaves behind.
func (n *Node) crash() {
	if !n.durable() || n.closed.Swap(true) {
		return
	}
	close(n.stopBG)
	n.bgWG.Wait()
	n.sp.abort()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		w := sh.disk.wal
		sh.disk.wal = nil
		sh.mu.Unlock()
		if w != nil {
			w.lock()
			w.sink.Close() // no flush: buffered-but-unsynced bytes die here
			w.unlock()
		}
	}
	// A killed process loses its descriptors too; without this, long
	// crash-loop tests would exhaust fds on cold nodes.
	n.releaseRunFiles()
}

// abort stops the spiller without draining pending jobs (crash
// simulation: an un-spilled flush exists only in its WAL segments).
func (s *spiller) abort() {
	s.mu.Lock()
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	for s.active {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// noCompact keeps recovery scenarios deterministic: durability must
// never depend on the background compactor having run.
var noCompact = DiskOptions{SyncInterval: 0, CompactInterval: -1}

func openedNode(t *testing.T, dir string, flushSize int, o DiskOptions) *Node {
	t.Helper()
	n := NewNode(flushSize)
	if err := n.OpenOptions(dir, o); err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return n
}

func TestDurableReopenServesAckedWrites(t *testing.T) {
	dir := t.TempDir()
	// Tiny flush budget (2 entries per shard) forces many
	// flush/spill/WAL-rotate boundaries during ingest.
	n := openedNode(t, dir, 2*numShards, noCompact)
	want := make(map[core.SensorID][]core.Reading)
	for s := 0; s < 8; s++ {
		id := sid(uint64(s+1), uint64(s)*7919)
		for b := 0; b < 6; b++ {
			batch := make([]core.Reading, 5)
			for k := range batch {
				ts := int64(b*5 + k)
				batch[k] = rd(ts, float64(s*1000)+float64(ts))
			}
			if err := n.InsertBatch(id, batch, 0); err != nil {
				t.Fatal(err)
			}
			want[id] = append(want[id], batch...)
		}
	}
	n.crash() // pending spills dropped; WAL was synced on every write

	n2 := openedNode(t, dir, 0, noCompact)
	for id, rs := range want {
		got, err := n2.Query(id, 0, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rs) {
			t.Fatalf("sensor %v: %d of %d acked readings after crash", id, len(got), len(rs))
		}
		for i := range rs {
			if got[i] != rs[i] {
				t.Fatalf("sensor %v reading %d: %v != %v", id, i, got[i], rs[i])
			}
		}
	}
	// Ingest resumes on the recovered directory.
	extra := sid(99, 99)
	if err := n2.Insert(extra, rd(1, 2), 0); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	if err := n2.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}

	// A clean close flushes everything; the third generation sees all
	// data with no WAL left to replay.
	n3 := openedNode(t, dir, 0, noCompact)
	defer n3.Close()
	if rs, _ := n3.Query(extra, 0, 10); len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("after clean close: %v", rs)
	}
	for id, rs := range want {
		if got, _ := n3.Query(id, 0, 1<<60); len(got) != len(rs) {
			t.Fatalf("sensor %v: %d of %d readings after clean close", id, len(got), len(rs))
		}
	}
}

// copyDir clones a data directory so one crash image can be truncated
// at many different byte offsets.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// newestWAL returns the path and size of the highest-sequence WAL
// segment under the shard directory holding id.
func newestWAL(t *testing.T, dir string, id core.SensorID) (string, int64) {
	t.Helper()
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%02d", shardIndex(id)))
	segs, err := findWALSegments(shardDir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s: %v", shardDir, err)
	}
	seg := segs[len(segs)-1]
	st, err := os.Stat(seg.path)
	if err != nil {
		t.Fatal(err)
	}
	return seg.path, st.Size()
}

func TestRecoveryTornWALTruncatedAtArbitraryByte(t *testing.T) {
	const batches, batchLen = 10, 4
	base := t.TempDir()
	id := sid(42, 1)
	n := openedNode(t, base, 0, noCompact) // large flush budget: all data lives in the WAL
	for b := 0; b < batches; b++ {
		batch := make([]core.Reading, batchLen)
		for k := range batch {
			ts := int64(b*batchLen + k)
			batch[k] = rd(ts, float64(ts)*3)
		}
		if err := n.InsertBatch(id, batch, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.crash()

	walPath, walSize := newestWAL(t, base, id)
	recSize := walSize / batches // records are fixed-size: framing + batch payload
	if walSize%batches != 0 {
		t.Fatalf("WAL size %d not a multiple of %d batches", walSize, batches)
	}
	rng := rand.New(rand.NewSource(7))
	cuts := []int64{0, 1, recSize - 1, recSize, walSize - 1, walSize}
	for i := 0; i < 12; i++ {
		cuts = append(cuts, rng.Int63n(walSize+1))
	}
	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, base, dir)
			rel, _ := filepath.Rel(base, walPath)
			if err := os.Truncate(filepath.Join(dir, rel), cut); err != nil {
				t.Fatal(err)
			}
			n2 := openedNode(t, dir, 0, noCompact)
			defer n2.Close()
			got, err := n2.Query(id, 0, 1<<60)
			if err != nil {
				t.Fatal(err)
			}
			// Whole records before the cut survive; the torn one and
			// everything after it are dropped — never served in part.
			wantBatches := int(cut / recSize)
			if len(got) != wantBatches*batchLen {
				t.Fatalf("cut at %d: %d readings, want %d complete batches (%d)",
					cut, len(got), wantBatches, wantBatches*batchLen)
			}
			for i, r := range got {
				if r.Timestamp != int64(i) || r.Value != float64(i)*3 {
					t.Fatalf("reading %d corrupted: %+v", i, r)
				}
			}
			// The torn tail is truncated away and ingest resumes.
			if err := n2.Insert(id, rd(1<<40, 1), 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// failingSink tears the WAL stream after a byte budget: the tail of the
// last write is dropped mid-record, like a full disk or yanked power.
type failingSink struct {
	f      walSink
	budget int
	failed bool
}

func (s *failingSink) Write(p []byte) (int, error) {
	if s.failed {
		return 0, fmt.Errorf("injected WAL failure")
	}
	if len(p) > s.budget {
		nw, _ := s.f.Write(p[:s.budget])
		s.budget = 0
		s.failed = true
		return nw, fmt.Errorf("injected WAL failure")
	}
	s.budget -= len(p)
	return s.f.Write(p)
}

func (s *failingSink) Sync() error {
	if s.failed {
		return fmt.Errorf("injected WAL failure")
	}
	return s.f.Sync()
}

func (s *failingSink) Close() error { return s.f.Close() }

func TestRecoveryInjectedWALWriterFailure(t *testing.T) {
	dir := t.TempDir()
	id := sid(5, 5)
	realOpen := openWALSink
	defer func() { openWALSink = realOpen }()
	budget := 3*(8+21+24) + 10 // three whole single-reading records, then mid-record failure
	openWALSink = func(path string) (walSink, error) {
		f, err := realOpen(path)
		if err != nil {
			return nil, err
		}
		return &failingSink{f: f, budget: budget}, nil
	}
	n := openedNode(t, dir, 0, noCompact)
	acked := 0
	sawError := false
	for i := 0; i < 10; i++ {
		err := n.Insert(id, rd(int64(i), float64(i)), 0)
		if err != nil {
			sawError = true
			break
		}
		acked++
	}
	if !sawError {
		t.Fatal("injected failure never surfaced to the writer")
	}
	if acked != 3 {
		t.Fatalf("acked %d writes, expected 3 before the fault", acked)
	}
	n.crash()

	openWALSink = realOpen
	n2 := openedNode(t, dir, 0, noCompact)
	defer n2.Close()
	got, err := n2.Query(id, 0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != acked {
		t.Fatalf("recovered %d readings, want the %d acked ones", len(got), acked)
	}
	for i, r := range got {
		if r.Timestamp != int64(i) || r.Value != float64(i) {
			t.Fatalf("reading %d: %+v", i, r)
		}
	}
}

func TestRecoveryDeleteBeforeSurvivesCrash(t *testing.T) {
	id := sid(3, 1)
	insert := func(n *Node, from, to int64) {
		for ts := from; ts < to; ts++ {
			if err := n.Insert(id, rd(ts, float64(ts)), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(t *testing.T, n *Node, wantTS []int64) {
		t.Helper()
		got, err := n.Query(id, 0, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantTS) {
			t.Fatalf("got %d readings %v, want %v", len(got), got, wantTS)
		}
		for i, ts := range wantTS {
			if got[i].Timestamp != ts {
				t.Fatalf("reading %d: ts %d, want %d", i, got[i].Timestamp, ts)
			}
		}
	}

	t.Run("wal-logged delete over spilled run", func(t *testing.T) {
		dir := t.TempDir()
		n := openedNode(t, dir, 0, noCompact)
		insert(n, 0, 10)
		if err := n.Flush(); err != nil { // run file holds ts 0..9
			t.Fatal(err)
		}
		n.sp.waitIdle()
		if err := n.DeleteBefore(id, 5); err != nil { // delete exists only in the WAL
			t.Fatal(err)
		}
		n.crash()
		n2 := openedNode(t, dir, 0, noCompact)
		defer n2.Close()
		check(t, n2, []int64{5, 6, 7, 8, 9})
	})

	t.Run("tombstone carried by later run file", func(t *testing.T) {
		dir := t.TempDir()
		n := openedNode(t, dir, 0, noCompact)
		insert(n, 0, 10)
		if err := n.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := n.DeleteBefore(id, 5); err != nil {
			t.Fatal(err)
		}
		insert(n, 10, 15)
		if err := n.Flush(); err != nil { // second run file carries the tombstone
			t.Fatal(err)
		}
		n.sp.waitIdle() // both files durable; delete's WAL segment retired
		n.crash()
		n2 := openedNode(t, dir, 0, noCompact)
		defer n2.Close()
		check(t, n2, []int64{5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	})

	t.Run("re-insert of older timestamps after delete survives", func(t *testing.T) {
		dir := t.TempDir()
		n := openedNode(t, dir, 0, noCompact)
		insert(n, 10, 15)
		if err := n.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := n.DeleteBefore(id, 20); err != nil { // wipe everything
			t.Fatal(err)
		}
		insert(n, 2, 4) // legitimate backfill of old timestamps
		n.crash()
		n2 := openedNode(t, dir, 0, noCompact)
		defer n2.Close()
		check(t, n2, []int64{2, 3})

		// Same holds when the backfill was flushed into its own run
		// file whose tombstone section records the earlier delete.
		if err := n2.Flush(); err != nil {
			t.Fatal(err)
		}
		n2.sp.waitIdle()
		n2.crash()
		n3 := openedNode(t, dir, 0, noCompact)
		defer n3.Close()
		check(t, n3, []int64{2, 3})
	})
}

func TestScanRunFilesDropsCoveredSpans(t *testing.T) {
	dir := t.TempDir()
	mk := func(minSeq, maxSeq uint64, ts int64) {
		series := map[core.SensorID][]entry{sid(1, 1): {{ts: ts, val: 1}}}
		if _, err := writeRunFile(dir, minSeq, maxSeq, series, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The crash window of a compaction: the merged file [1,3] exists
	// alongside its inputs.
	mk(1, 1, 10)
	mk(2, 2, 20)
	mk(3, 3, 30)
	mk(1, 3, 40)
	mk(4, 4, 50) // newer flush outside the merge
	// Leftover temp file from an interrupted write.
	if err := os.WriteFile(filepath.Join(dir, runFileName(9, 9)+".tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	metas, err := scanRunFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].minSeq != 1 || metas[0].maxSeq != 3 || metas[1].maxSeq != 4 {
		t.Fatalf("survivors = %+v", metas)
	}
	des, _ := os.ReadDir(dir)
	if len(des) != 2 {
		names := make([]string, 0, len(des))
		for _, d := range des {
			names = append(names, d.Name())
		}
		t.Fatalf("covered inputs and temp files not deleted: %v", names)
	}
}

func TestBackgroundCompactionBoundsRunFilesUnderIngest(t *testing.T) {
	dir := t.TempDir()
	id := sid(8, 8)
	o := DiskOptions{
		SyncInterval:    -1, // durability is not under test; keep ingest fast
		MaxRuns:         4,
		CompactInterval: 5 * time.Millisecond,
	}
	n := openedNode(t, dir, 4*numShards, o) // 4 entries per shard per flush
	defer n.Close()

	const total = 4000
	done := make(chan struct{})
	queryErr := make(chan error, 1)
	var maxLatency time.Duration
	go func() {
		defer close(done)
		// Concurrent reader: queries must keep completing (and stay
		// correct) while merges run; a compactor holding a shard lock
		// across file I/O would show up as a latency cliff here.
		for {
			select {
			case <-queryErr:
				return
			default:
			}
			start := time.Now()
			rs, err := n.Query(id, 0, 1<<60)
			if lat := time.Since(start); lat > maxLatency {
				maxLatency = lat
			}
			if err != nil {
				queryErr <- err
				return
			}
			for i := 1; i < len(rs); i++ {
				if rs[i].Timestamp <= rs[i-1].Timestamp {
					queryErr <- fmt.Errorf("unsorted result during compaction at %d", i)
					return
				}
			}
			if len(rs) == total {
				return
			}
		}
	}()
	for ts := 0; ts < total; ts++ {
		if err := n.Insert(id, rd(int64(ts), float64(ts)), 0); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	select {
	case err := <-queryErr:
		t.Fatal(err)
	default:
	}
	// Generous bound: the point is that queries never block on a merge
	// (which takes well over a second to show up as a cliff), not
	// micro-latency on a loaded CI box.
	if maxLatency > time.Second {
		t.Fatalf("query latency reached %v while compaction ran", maxLatency)
	}

	// Once ingest stops, the compactor must settle the shard at or
	// below its size-tiered trigger. The node is still live, so the
	// poll must be non-destructive (scanRunFiles would delete the
	// spiller's and compactor's in-flight .tmp files) and tolerate
	// files vanishing between listing and counting.
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	n.sp.waitIdle()
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%02d", shardIndex(id)))
	deadline := time.Now().Add(10 * time.Second)
	for {
		des, err := os.ReadDir(shardDir)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, de := range des {
			if _, _, ok := runFileSpan(de.Name()); ok {
				count++
			}
		}
		if count <= o.MaxRuns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never settled: %d run files (trigger %d)", count, o.MaxRuns)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// And the merged data is intact.
	rs, err := n.Query(id, 0, 1<<60)
	if err != nil || len(rs) != total {
		t.Fatalf("after compaction: %d readings, %v", len(rs), err)
	}
}

func TestDurableOpenValidation(t *testing.T) {
	dir := t.TempDir()
	n := openedNode(t, dir, 0, noCompact)
	defer n.Close()
	if err := n.Open(t.TempDir()); err == nil {
		t.Error("double Open accepted")
	}
	m := NewNode(0)
	m.Insert(sid(1, 1), rd(1, 1), 0)
	if err := m.Open(t.TempDir()); err == nil {
		t.Error("Open on non-empty node accepted")
	}
	if err := n.Load(io.LimitReader(nil, 0)); err == nil {
		t.Error("snapshot Load into durable node accepted")
	}
}

func TestDurableWritesFailAfterClose(t *testing.T) {
	dir := t.TempDir()
	n := openedNode(t, dir, 0, noCompact)
	id := sid(2, 2)
	if err := n.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Insert(id, rd(2, 2), 0); err != ErrNodeClosed {
		t.Fatalf("insert after close: %v", err)
	}
	if err := n.DeleteBefore(id, 1); err != ErrNodeClosed {
		t.Fatalf("delete after close: %v", err)
	}
	// Reads still serve the resident data.
	if rs, err := n.Query(id, 0, 10); err != nil || len(rs) != 1 {
		t.Fatalf("read after close: %v %v", rs, err)
	}
}

func TestDurableFullCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	n := openedNode(t, dir, 0, noCompact)
	id := sid(6, 6)
	for b := 0; b < 5; b++ {
		for ts := 0; ts < 10; ts++ {
			n.Insert(id, rd(int64(b*10+ts), float64(b)), 0)
		}
		if err := n.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	n.sp.waitIdle()
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%02d", shardIndex(id)))
	if metas, _ := scanRunFiles(shardDir); len(metas) != 5 {
		t.Fatalf("expected 5 run files before compaction, got %d", len(metas))
	}
	n.Compact()
	if metas, _ := scanRunFiles(shardDir); len(metas) != 1 {
		t.Fatalf("full compaction left %d run files", len(metas))
	}
	n.crash()
	n2 := openedNode(t, dir, 0, noCompact)
	defer n2.Close()
	rs, err := n2.Query(id, 0, 1<<60)
	if err != nil || len(rs) != 50 {
		t.Fatalf("after compaction+crash: %d readings, %v", len(rs), err)
	}
}

func TestReadOnlyOpenLeavesDirectoryUntouched(t *testing.T) {
	dir := t.TempDir()
	id := sid(21, 21)
	n := openedNode(t, dir, 0, noCompact)
	for ts := int64(0); ts < 8; ts++ {
		n.Insert(id, rd(ts, float64(ts)), 0)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	n.sp.waitIdle()
	for ts := int64(8); ts < 12; ts++ { // tail lives only in the WAL
		n.Insert(id, rd(ts, float64(ts)), 0)
	}
	n.crash()

	fingerprint := func() map[string]int64 {
		out := map[string]int64{}
		filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() {
				out[path] = info.Size()
			}
			return nil
		})
		return out
	}
	before := fingerprint()

	ro := NewNode(0)
	if err := ro.OpenOptions(dir, DiskOptions{ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	rs, err := ro.Query(id, 0, 1<<60)
	if err != nil || len(rs) != 12 {
		t.Fatalf("read-only recovery: %d readings, %v", len(rs), err)
	}
	if err := ro.Insert(id, rd(99, 99), 0); err != ErrNodeReadOnly {
		t.Fatalf("read-only insert: %v", err)
	}
	if err := ro.DeleteBefore(id, 5); err != ErrNodeReadOnly {
		t.Fatalf("read-only delete: %v", err)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	after := fingerprint()
	if len(after) != len(before) {
		t.Fatalf("read-only open changed the file set: %v -> %v", before, after)
	}
	for p, sz := range before {
		if after[p] != sz {
			t.Fatalf("read-only open resized %s: %d -> %d", p, sz, after[p])
		}
	}
	// The directory still recovers writable afterwards.
	n2 := openedNode(t, dir, 0, noCompact)
	defer n2.Close()
	if rs, _ := n2.Query(id, 0, 1<<60); len(rs) != 12 {
		t.Fatalf("writable reopen after read-only: %d readings", len(rs))
	}
}
