package store

import (
	"fmt"
	"io"
	"sync"

	"dcdb/internal/core"
)

// Streaming cluster reads: the coordinator consumes its replicas'
// streams incrementally — chunks are pulled, merged newest-wins and
// handed to the caller without the coordinator ever materializing a
// whole replica response. Read repair is batched: divergent readings
// accumulate per replica and are re-inserted in the background once a
// batch fills (or the stream ends), so repairing a long-diverged
// replica costs bounded coordinator memory too.

// repairBatchReadings is the per-replica read-repair batch size: a
// replica found missing this many readings is repaired in flight, and
// the accumulator reset, so repair memory never grows with the result.
const repairBatchReadings = StreamChunkReadings

// replicaCursor tracks one replica's stream inside a quorum merge.
// A failed cursor is not final: the merge tries to re-open the
// replica's stream at the merge horizon (tries bounds the attempts
// between emissions; dead marks a replica that stayed unreachable).
// The repair batch survives a re-open — divergence already observed is
// real regardless of the transport's fate.
type replicaCursor struct {
	st     ReadingStream
	buf    []core.Reading
	pos    int
	eof    bool
	failed error
	dead   bool
	tries  int // reopen attempts since the merge last advanced

	repair []core.Reading
}

// head returns the cursor's current reading, refilling from the stream
// when the chunk is drained. ok is false at EOF or after a failure.
func (rc *replicaCursor) head() (core.Reading, bool) {
	for {
		if rc.failed != nil || rc.eof {
			return core.Reading{}, false
		}
		if rc.pos < len(rc.buf) {
			return rc.buf[rc.pos], true
		}
		chunk, err := rc.st.Next()
		if err == io.EOF {
			rc.eof = true
			return core.Reading{}, false
		}
		if err != nil {
			rc.failed = err
			return core.Reading{}, false
		}
		rc.buf, rc.pos = chunk, 0
	}
}

// quorumStream merges k replica streams newest-wins. from/to and the
// merge horizon (lastTS, the last emitted timestamp) are kept so a
// replica lost mid-stream can be resumed exactly where the merge
// stands: every timestamp <= lastTS has been emitted, every cursor
// position is >= lastTS, so re-opening the replica's stream at
// lastTS+1 loses nothing and repeats nothing.
type quorumStream struct {
	c        *Cluster
	top      *topology // snapshot the stream was opened against
	id       core.SensorID
	from, to int64
	cursors  []*replicaCursor
	backends []int // member index per cursor, within top
	required int
	buf      []core.Reading
	done     bool
	lastTS   int64
	emitted  bool
}

// QueryStream implements the cluster's streaming read at the configured
// read consistency. At ONE the first replica whose stream opens serves
// the result, and a replica lost mid-stream fails over to the next one
// (resuming past the last emitted timestamp) instead of erroring. At
// QUORUM every replica's stream is merged incrementally (union of
// timestamps, primary-most replica's value on ties), divergent replicas
// are repaired in batches in the background, and a replica lost
// mid-stream is re-opened at the merge horizon — the stream only fails
// if a quorum is genuinely unreachable past the last merged timestamp.
// The stream must be closed.
func (c *Cluster) QueryStream(id core.SensorID, from, to int64) (ReadingStream, error) {
	t := c.top()
	replicas := c.readReplicas(t, id)
	if c.readCL.required(len(replicas)) == 1 {
		var lastErr error
		for i, idx := range replicas {
			st, err := t.members[idx].backend.QueryStream(id, from, to)
			if err == nil {
				return &failoverStream{
					c: c, top: t, id: id, from: from, to: to,
					st: st, rest: replicas[i+1:],
				}, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("store: all replicas failed: %w", lastErr)
	}
	streams := make([]ReadingStream, len(replicas))
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, idx := range replicas {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			streams[i], errs[i] = t.members[idx].backend.QueryStream(id, from, to)
		}(i, idx)
	}
	wg.Wait()
	required := c.readCL.required(len(replicas))
	qs := &quorumStream{c: c, top: t, id: id, from: from, to: to, required: required}
	ok := 0
	var lastErr error
	for i := range streams {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		ok++
		qs.cursors = append(qs.cursors, &replicaCursor{st: streams[i]})
		qs.backends = append(qs.backends, replicas[i])
	}
	if ok < required {
		qs.Close()
		return nil, fmt.Errorf("store: read consistency %s not met (%d/%d replicas): %w",
			c.readCL, ok, required, lastErr)
	}
	return qs, nil
}

// reopen resumes cursor i's replica stream past the merge horizon,
// keeping its accumulated repair batch. Reports whether the replica
// answered.
func (s *quorumStream) reopen(i int) bool {
	rc := s.cursors[i]
	rc.st.Close()
	from := s.from
	if s.emitted {
		from = s.lastTS + 1
	}
	st, err := s.top.members[s.backends[i]].backend.QueryStream(s.id, from, s.to)
	if err != nil {
		return false
	}
	rc.st = st
	rc.failed = nil
	rc.dead = false
	rc.buf, rc.pos, rc.eof = nil, 0, false
	return true
}

// cursorHead is head() plus failure handling: a cursor that fails
// mid-stream gets one immediate re-open at the merge horizon before it
// is declared dead (the barrier in Next grants one more). The budget
// resets whenever the merge advances, so a replica may drop and rejoin
// repeatedly across a long stream — but a replica flapping on the spot
// cannot spin the merge.
func (s *quorumStream) cursorHead(i int) (core.Reading, bool) {
	rc := s.cursors[i]
	for {
		h, ok := rc.head()
		if ok || rc.failed == nil {
			return h, ok
		}
		if rc.dead || rc.tries >= 1 {
			rc.dead = true
			return core.Reading{}, false
		}
		rc.tries++
		if !s.reopen(i) {
			rc.dead = true
			return core.Reading{}, false
		}
	}
}

// Next merges the next chunk. Replicas that miss a timestamp the merge
// emits (or hold a different value for it) accumulate that reading in
// their repair batch.
func (s *quorumStream) Next() ([]core.Reading, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.buf == nil {
		s.buf = make([]core.Reading, 0, StreamChunkReadings)
	}
	s.buf = s.buf[:0]
	for len(s.buf) < StreamChunkReadings {
		// Find the smallest pending timestamp across live cursors; the
		// first (primary-most) cursor holding it supplies the value.
		var out core.Reading
		found := false
		for i := range s.cursors {
			h, ok := s.cursorHead(i)
			if !ok {
				continue
			}
			if !found || h.Timestamp < out.Timestamp {
				out, found = h, true
			}
		}
		if !found {
			// Every cursor is at EOF or dead. Mid-stream loss is only
			// fatal if the replica stays unreachable past the merge
			// horizon: grant each dead cursor one last resume attempt
			// before judging the quorum. (tries >= 2 means both the
			// inline and the barrier attempt failed without progress in
			// between — that replica is spent.)
			revived := false
			for i, rc := range s.cursors {
				if rc.dead && rc.tries < 2 {
					rc.tries++
					if s.reopen(i) {
						revived = true
					}
				}
			}
			if revived {
				continue
			}
			live := 0
			var lastErr error
			for _, rc := range s.cursors {
				if rc.failed != nil {
					lastErr = rc.failed
				} else {
					live++
				}
			}
			if live < s.required {
				s.Close()
				return nil, fmt.Errorf("store: read consistency %s lost mid-stream (%d/%d replicas): %w",
					s.c.readCL, live, s.required, lastErr)
			}
			s.finishRepair()
			s.done = true
			for _, rc := range s.cursors {
				rc.st.Close()
			}
			if len(s.buf) == 0 {
				return nil, io.EOF
			}
			return s.buf, nil
		}
		// The merge advances: record the horizon first, so a cursor
		// failing in the loop below resumes after out, and refresh the
		// reopen budget of every replica still in the game.
		s.lastTS, s.emitted = out.Timestamp, true
		// Advance every cursor holding this timestamp; the rest owe a
		// repair for it.
		for _, rc := range s.cursors {
			if !rc.dead {
				rc.tries = 0
			}
			h, ok := rc.head()
			if !ok {
				if rc.failed == nil {
					s.addRepair(rc, out)
				}
				continue
			}
			if h.Timestamp == out.Timestamp {
				if h.Value != out.Value {
					s.addRepair(rc, out)
				}
				rc.pos++
			} else {
				s.addRepair(rc, out)
			}
		}
		s.buf = append(s.buf, out)
	}
	return s.buf, nil
}

// addRepair accumulates one divergent reading for a replica, flushing
// the batch in the background when it fills.
func (s *quorumStream) addRepair(rc *replicaCursor, r core.Reading) {
	rc.repair = append(rc.repair, r)
	if len(rc.repair) >= repairBatchReadings {
		s.flushRepair(rc)
	}
}

func (s *quorumStream) flushRepair(rc *replicaCursor) {
	if len(rc.repair) == 0 {
		return
	}
	batch := rc.repair
	rc.repair = nil
	idx := 0
	for i, c := range s.cursors {
		if c == rc {
			idx = s.backends[i]
			break
		}
	}
	b := s.top.members[idx].backend
	id := s.id
	s.c.repairWG.Add(1)
	go func() {
		defer s.c.repairWG.Done()
		_ = b.InsertBatch(id, batch, 0) // best effort; the next read retries
	}()
}

func (s *quorumStream) finishRepair() {
	for _, rc := range s.cursors {
		if rc.failed == nil {
			s.flushRepair(rc)
		}
	}
}

// Close implements ReadingStream; closing early cancels every replica
// stream and flushes accumulated repairs — the divergence already
// observed is real regardless of how far the consumer read.
func (s *quorumStream) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	s.finishRepair()
	for _, rc := range s.cursors {
		rc.st.Close()
	}
	return nil
}

// failoverStream serves a ONE-consistency streaming read: it rides a
// single replica's stream and, when that replica fails mid-stream,
// re-opens the tail on the next replica in the set (resuming past the
// last emitted timestamp) instead of surfacing the error — availability
// over completeness, the same trade ONE makes at open time. Readings
// already emitted are never repeated; readings at or before the
// failover point that only the surviving replicas hold are skipped,
// which ONE never promised to return.
type failoverStream struct {
	c        *Cluster
	top      *topology // snapshot the stream was opened against
	id       core.SensorID
	from, to int64
	st       ReadingStream
	rest     []int // replicas not yet tried, in ring order
	lastTS   int64
	emitted  bool
	closed   bool
}

func (f *failoverStream) Next() ([]core.Reading, error) {
	for {
		chunk, err := f.st.Next()
		if err == nil {
			if len(chunk) > 0 {
				f.lastTS = chunk[len(chunk)-1].Timestamp
				f.emitted = true
			}
			return chunk, nil
		}
		if err == io.EOF {
			return nil, io.EOF
		}
		// Mid-stream failure: resume past everything already delivered
		// on the next replica that answers. The replacement stream may
		// itself fail over again while replicas remain.
		f.st.Close()
		from := f.from
		if f.emitted {
			from = f.lastTS + 1
		}
		replaced := false
		for len(f.rest) > 0 {
			idx := f.rest[0]
			f.rest = f.rest[1:]
			st, oerr := f.top.members[idx].backend.QueryStream(f.id, from, f.to)
			if oerr == nil {
				f.st = st
				replaced = true
				break
			}
		}
		if !replaced {
			return nil, err
		}
	}
}

func (f *failoverStream) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	return f.st.Close()
}

// accumulated fully (bounded by one sensor's window, not the prefix
// result) so sensors can be merged across backends in SID order.
type keyedCursor struct {
	st     KeyedReadingStream
	id     core.SensorID
	rs     []core.Reading
	have   bool
	eof    bool
	failed error

	pendID core.SensorID
	pendRS []core.Reading
	pend   bool
}

// advance accumulates the next complete sensor from the stream.
func (kc *keyedCursor) advance() {
	if kc.eof || kc.failed != nil {
		kc.have = false
		return
	}
	kc.id, kc.rs, kc.have = core.SensorID{}, nil, false
	if kc.pend {
		kc.id = kc.pendID
		kc.rs = append(kc.rs, kc.pendRS...)
		kc.pend = false
		kc.have = true
	}
	for {
		id, chunk, err := kc.st.Next()
		if err == io.EOF {
			kc.eof = true
			return
		}
		if err != nil {
			kc.failed = err
			kc.have = false
			return
		}
		if !kc.have {
			kc.id, kc.have = id, true
		} else if id != kc.id {
			// First chunk of the next sensor: hold it back.
			kc.pendID = id
			kc.pendRS = append(kc.pendRS[:0], chunk...)
			kc.pend = true
			return
		}
		kc.rs = append(kc.rs, chunk...)
	}
}

// prefixMergeStream merges per-backend keyed streams in SID order,
// deduplicating replicated sensors newest-wins.
type prefixMergeStream struct {
	c       *Cluster
	cursors []*keyedCursor
	started bool
	done    bool

	// current merged sensor, emitted in chunks
	curID core.SensorID
	curRS []core.Reading
	pos   int
}

// QueryPrefixStream implements the cluster's streaming subtree read.
// Every backend is consulted (the prefix may span partitions); each
// yields its sensors in ascending SID order, so the coordinator merges
// sensor-at-a-time — memory is bounded by one sensor's result per
// backend, never the whole subtree. At QUORUM the stream fails unless
// every possible replica window retains a quorum of live streams, the
// same conservative bound as the materializing QueryPrefix.
func (c *Cluster) QueryPrefixStream(prefix core.SensorID, depth int, from, to int64) (KeyedReadingStream, error) {
	t := c.top()
	streams := make([]KeyedReadingStream, len(t.members))
	errs := make([]error, len(t.members))
	if len(t.members) == 1 {
		streams[0], errs[0] = t.members[0].backend.QueryPrefixStream(prefix, depth, from, to)
	} else {
		var wg sync.WaitGroup
		for i := range t.members {
			wg.Add(1)
			go func(i int, b NodeBackend) {
				defer wg.Done()
				streams[i], errs[i] = b.QueryPrefixStream(prefix, depth, from, to)
			}(i, t.members[i].backend)
		}
		wg.Wait()
	}
	var firstErr error
	failed := 0
	for i := range t.members {
		if errs[i] != nil {
			failed++
			if firstErr == nil {
				firstErr = errs[i]
			}
		}
	}
	closeAll := func() {
		for _, st := range streams {
			if st != nil {
				st.Close()
			}
		}
	}
	if failed == len(t.members) {
		return nil, fmt.Errorf("store: all nodes failed: %w", firstErr)
	}
	if failed > 0 {
		if err := c.checkPrefixQuorum(t, errs, firstErr); err != nil {
			closeAll()
			return nil, err
		}
	}
	ms := &prefixMergeStream{c: c}
	for i := range streams {
		if streams[i] != nil {
			ms.cursors = append(ms.cursors, &keyedCursor{st: streams[i]})
		}
	}
	return ms, nil
}

func (s *prefixMergeStream) Next() (core.SensorID, []core.Reading, error) {
	if s.done {
		return core.SensorID{}, nil, io.EOF
	}
	if !s.started {
		s.started = true
		for _, kc := range s.cursors {
			kc.advance()
			if kc.failed != nil {
				err := kc.failed
				s.Close()
				return core.SensorID{}, nil, fmt.Errorf("store: prefix stream replica failed: %w", err)
			}
		}
	}
	for {
		if s.pos < len(s.curRS) {
			hi := s.pos + StreamChunkReadings
			if hi > len(s.curRS) {
				hi = len(s.curRS)
			}
			chunk := s.curRS[s.pos:hi]
			id := s.curID
			s.pos = hi
			return id, chunk, nil
		}
		// Pick the smallest pending SID across cursors and merge every
		// copy of it newest-wins.
		var minID core.SensorID
		found := false
		for _, kc := range s.cursors {
			if kc.have && (!found || kc.id.Compare(minID) < 0) {
				minID, found = kc.id, true
			}
		}
		if !found {
			s.Close()
			return core.SensorID{}, nil, io.EOF
		}
		var merged []core.Reading
		first := true
		for _, kc := range s.cursors {
			if !kc.have || kc.id != minID {
				continue
			}
			if first {
				merged = kc.rs
				first = false
			} else {
				merged = mergeReplicaReadings(merged, kc.rs)
			}
		}
		for _, kc := range s.cursors {
			if kc.have && kc.id == minID {
				kc.advance()
				if kc.failed != nil {
					err := kc.failed
					s.Close()
					return core.SensorID{}, nil, fmt.Errorf("store: prefix stream replica failed: %w", err)
				}
			}
		}
		if len(merged) == 0 {
			continue
		}
		s.curID, s.curRS, s.pos = minID, merged, 0
	}
}

func (s *prefixMergeStream) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	for _, kc := range s.cursors {
		kc.st.Close()
	}
	return nil
}
