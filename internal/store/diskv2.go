package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"dcdb/internal/core"
	"dcdb/internal/fsutil"
)

// Run-file format v2: the block-indexed, compressed, cold-readable
// successor of v1. Data comes first so the writer can stream blocks as
// a merge produces them; the index lives at the tail, closed by a
// fixed-size footer, so recovery reads O(index) bytes — not the data —
// and a cold query reads only the blocks whose [minTs,maxTs] overlap
// its window:
//
//	magic "DCDBRUN2"
//	data   : concatenated blocks (see block.go), offsets absolute
//	index  : minSeq u64 | maxSeq u64 | tombCount u64 | seriesCount u64
//	         tombs  : tombCount × (sidHi u64 | sidLo u64 | cutoff i64)
//	         series : seriesCount × header + block index, sorted by SID
//	           header : sidHi u64 | sidLo u64 | count u64 | min i64 | max i64 | blockCount u32
//	           block  : off u64 | len u32 | count u32 | min i64 | max i64 | crc u32
//	footer : indexOff u64 | indexLen u32 | crc32(index) u32
//
// Integrity is layered: the footer CRC covers the index, and every
// block carries its own CRC in the index, so a cold read verifies
// exactly what it touches. v1 files (whole-file CRC, uncompressed, no
// blocks) still decode — existing directories open unchanged and tools
// keep reading both.

var runMagic2 = []byte("DCDBRUN2")

// errNotV2 marks a run file carrying the v1 magic; recovery falls back
// to the fully-resident v1 load path.
var errNotV2 = errors.New("not a v2 run file")

func isNotV2(err error) bool { return errors.Is(err, errNotV2) }

const (
	runVersion2      = 2
	v2FooterLen      = 16
	v2BlockMetaLen   = 36
	v2SeriesHdrLen   = 44
	v2IndexFixedLen  = 32
	v2TombLen        = 24
	v2MaxSeriesCount = 1 << 40 // sanity bound long before allocation
)

// blockMeta locates one block inside a run file and carries the
// always-resident rejection data: entry count, [min,max] timestamp
// bounds, and the block's CRC.
type blockMeta struct {
	off      uint64
	length   uint32
	count    uint32
	min, max int64
	crc      uint32
}

// seriesIndex is one series' slice of a run file's index.
type seriesIndex struct {
	id       core.SensorID
	count    uint64
	min, max int64
	blocks   []blockMeta
}

// runIndex is a decoded v2 index: everything recovery keeps resident
// for a cold file.
type runIndex struct {
	minSeq, maxSeq uint64
	tombs          map[core.SensorID]int64
	series         []seriesIndex // sorted by SID
	dataLen        int64         // bytes before the index (block bounds)
}

// runFileWriter streams a v2 run file: blocks are written as the caller
// produces entries, the index accumulates in memory (a few bytes per
// block), and finish seals index + footer and commits with the same
// write-fsync-rename discipline as v1. Series must be added in
// ascending SID order with entries sorted by timestamp.
type runFileWriter struct {
	f          fsutil.File
	bw         *bufio.Writer
	tmp, final string
	dir        string
	off        uint64 // absolute file offset of the next byte

	minSeq, maxSeq uint64
	series         []seriesIndex

	cur      seriesIndex
	open     bool
	buf      []entry // pending entries of the open series (≤ blockEntries)
	blockBuf []byte  // encode scratch, reused across blocks
}

func newRunFileWriter(dir string, minSeq, maxSeq uint64) (*runFileWriter, error) {
	final := filepath.Join(dir, runFileName(minSeq, maxSeq))
	tmp := final + ".tmp"
	f, err := fsutil.Disk.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := &runFileWriter{
		f: f, bw: bufio.NewWriterSize(f, 1<<16), tmp: tmp, final: final, dir: dir,
		minSeq: minSeq, maxSeq: maxSeq,
		buf: make([]entry, 0, blockEntries),
	}
	if _, err := w.bw.Write(runMagic2); err != nil {
		w.abort()
		return nil, err
	}
	w.off = uint64(len(runMagic2))
	return w, nil
}

// abort discards the temp file. Safe after any failure.
func (w *runFileWriter) abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// beginSeries starts a new series. IDs must arrive in ascending order.
func (w *runFileWriter) beginSeries(id core.SensorID) error {
	if w.open {
		return fmt.Errorf("store: beginSeries with a series open")
	}
	if len(w.series) > 0 && w.series[len(w.series)-1].id.Compare(id) >= 0 {
		return fmt.Errorf("store: run file series out of order")
	}
	w.cur = seriesIndex{id: id}
	w.open = true
	return nil
}

// add appends one entry (timestamp order within the series).
func (w *runFileWriter) add(e entry) error {
	w.buf = append(w.buf, e)
	if len(w.buf) >= blockEntries {
		return w.flushBlock()
	}
	return nil
}

func (w *runFileWriter) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	w.blockBuf = encodeBlock(w.blockBuf[:0], w.buf)
	m := blockMeta{
		off:    w.off,
		length: uint32(len(w.blockBuf)),
		count:  uint32(len(w.buf)),
		min:    w.buf[0].ts,
		max:    w.buf[len(w.buf)-1].ts,
		crc:    crc32.ChecksumIEEE(w.blockBuf),
	}
	if _, err := w.bw.Write(w.blockBuf); err != nil {
		return err
	}
	w.off += uint64(len(w.blockBuf))
	if w.cur.count == 0 {
		w.cur.min = m.min
	}
	w.cur.max = m.max
	w.cur.count += uint64(m.count)
	w.cur.blocks = append(w.cur.blocks, m)
	w.buf = w.buf[:0]
	return nil
}

// endSeries seals the open series into the index.
func (w *runFileWriter) endSeries() error {
	if !w.open {
		return fmt.Errorf("store: endSeries without beginSeries")
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	w.open = false
	if w.cur.count == 0 {
		return fmt.Errorf("store: run file series %v has no entries", w.cur.id)
	}
	w.series = append(w.series, w.cur)
	return nil
}

// addSeries writes one whole series from a sorted slice (the spill
// path's convenience over begin/add/end).
func (w *runFileWriter) addSeries(id core.SensorID, es []entry) error {
	if err := w.beginSeries(id); err != nil {
		return err
	}
	for _, e := range es {
		if err := w.add(e); err != nil {
			return err
		}
	}
	return w.endSeries()
}

// finish writes the index and footer, fsyncs, renames into place and
// fsyncs the directory. On success the returned meta and index describe
// the committed file.
func (w *runFileWriter) finish(tombs map[core.SensorID]int64) (runFileMeta, *runIndex, error) {
	if w.open {
		return runFileMeta{}, nil, fmt.Errorf("store: finish with a series open")
	}
	fail := func(err error) (runFileMeta, *runIndex, error) {
		w.abort()
		return runFileMeta{}, nil, err
	}
	idx := &runIndex{minSeq: w.minSeq, maxSeq: w.maxSeq, tombs: tombs, series: w.series, dataLen: int64(w.off)}
	indexBytes := appendRunIndex(nil, idx)
	if _, err := w.bw.Write(indexBytes); err != nil {
		return fail(err)
	}
	var footer [v2FooterLen]byte
	binary.BigEndian.PutUint64(footer[0:], w.off)
	binary.BigEndian.PutUint32(footer[8:], uint32(len(indexBytes)))
	binary.BigEndian.PutUint32(footer[12:], crc32.ChecksumIEEE(indexBytes))
	if _, err := w.bw.Write(footer[:]); err != nil {
		return fail(err)
	}
	if err := w.bw.Flush(); err != nil {
		return fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return fail(err)
	}
	st, err := w.f.Stat()
	if err != nil {
		return fail(err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return runFileMeta{}, nil, err
	}
	if err := os.Rename(w.tmp, w.final); err != nil {
		os.Remove(w.tmp)
		return runFileMeta{}, nil, err
	}
	syncDir(w.dir)
	return runFileMeta{path: w.final, minSeq: w.minSeq, maxSeq: w.maxSeq, size: st.Size(), tombs: tombs}, idx, nil
}

// appendRunIndex serialises a v2 index section.
func appendRunIndex(b []byte, idx *runIndex) []byte {
	var s [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(s[:], v)
		b = append(b, s[:8]...)
	}
	u32 := func(v uint32) {
		binary.BigEndian.PutUint32(s[:4], v)
		b = append(b, s[:4]...)
	}
	u64(idx.minSeq)
	u64(idx.maxSeq)
	u64(uint64(len(idx.tombs)))
	u64(uint64(len(idx.series)))
	tombIDs := sortedIDs(len(idx.tombs), func(yield func(core.SensorID)) {
		for id := range idx.tombs {
			yield(id)
		}
	})
	for _, id := range tombIDs {
		u64(id.Hi)
		u64(id.Lo)
		u64(uint64(idx.tombs[id]))
	}
	for _, se := range idx.series {
		u64(se.id.Hi)
		u64(se.id.Lo)
		u64(se.count)
		u64(uint64(se.min))
		u64(uint64(se.max))
		u32(uint32(len(se.blocks)))
		for _, m := range se.blocks {
			u64(m.off)
			u32(m.length)
			u32(m.count)
			u64(uint64(m.min))
			u64(uint64(m.max))
			u32(m.crc)
		}
	}
	return b
}

// parseRunIndex decodes and validates a v2 index section. dataLen is
// the file offset where the index begins (every block must fit below
// it).
func parseRunIndex(b []byte, dataLen int64) (*runIndex, error) {
	if len(b) < v2IndexFixedLen {
		return nil, fmt.Errorf("store: run index truncated")
	}
	idx := &runIndex{
		minSeq:  binary.BigEndian.Uint64(b[0:]),
		maxSeq:  binary.BigEndian.Uint64(b[8:]),
		dataLen: dataLen,
	}
	if idx.minSeq > idx.maxSeq {
		return nil, fmt.Errorf("store: run index span inverted")
	}
	tombCount := binary.BigEndian.Uint64(b[16:])
	seriesCount := binary.BigEndian.Uint64(b[24:])
	off := v2IndexFixedLen
	rest := uint64(len(b) - off)
	if tombCount > rest/v2TombLen {
		return nil, fmt.Errorf("store: run index tombstone count overflows index")
	}
	if tombCount > 0 {
		idx.tombs = make(map[core.SensorID]int64, tombCount)
		for i := uint64(0); i < tombCount; i++ {
			id := core.SensorID{Hi: binary.BigEndian.Uint64(b[off:]), Lo: binary.BigEndian.Uint64(b[off+8:])}
			idx.tombs[id] = int64(binary.BigEndian.Uint64(b[off+16:]))
			off += v2TombLen
		}
	}
	if seriesCount > uint64(len(b)-off)/v2SeriesHdrLen || seriesCount > v2MaxSeriesCount {
		return nil, fmt.Errorf("store: run index series count overflows index")
	}
	idx.series = make([]seriesIndex, 0, seriesCount)
	var prev core.SensorID
	for i := uint64(0); i < seriesCount; i++ {
		if len(b)-off < v2SeriesHdrLen {
			return nil, fmt.Errorf("store: run index truncated in series header")
		}
		se := seriesIndex{
			id:    core.SensorID{Hi: binary.BigEndian.Uint64(b[off:]), Lo: binary.BigEndian.Uint64(b[off+8:])},
			count: binary.BigEndian.Uint64(b[off+16:]),
			min:   int64(binary.BigEndian.Uint64(b[off+24:])),
			max:   int64(binary.BigEndian.Uint64(b[off+32:])),
		}
		blockCount := binary.BigEndian.Uint32(b[off+40:])
		off += v2SeriesHdrLen
		if i > 0 && prev.Compare(se.id) >= 0 {
			return nil, fmt.Errorf("store: run index series out of order")
		}
		prev = se.id
		if se.count == 0 || blockCount == 0 {
			return nil, fmt.Errorf("store: run index has empty series")
		}
		if uint64(blockCount) > uint64(len(b)-off)/v2BlockMetaLen {
			return nil, fmt.Errorf("store: run index block count overflows index")
		}
		if se.min > se.max {
			return nil, fmt.Errorf("store: run index series bounds inverted")
		}
		se.blocks = make([]blockMeta, blockCount)
		var total uint64
		for j := range se.blocks {
			m := blockMeta{
				off:    binary.BigEndian.Uint64(b[off:]),
				length: binary.BigEndian.Uint32(b[off+8:]),
				count:  binary.BigEndian.Uint32(b[off+12:]),
				min:    int64(binary.BigEndian.Uint64(b[off+16:])),
				max:    int64(binary.BigEndian.Uint64(b[off+24:])),
				crc:    binary.BigEndian.Uint32(b[off+32:]),
			}
			off += v2BlockMetaLen
			if m.count == 0 || m.min > m.max {
				return nil, fmt.Errorf("store: run index block bounds invalid")
			}
			// Subtraction form: the additive check would wrap uint64 for
			// a hostile off near 2^64 and falsely pass.
			if m.off < uint64(len(runMagic2)) || m.off > uint64(dataLen) ||
				uint64(m.length) > uint64(dataLen)-m.off {
				return nil, fmt.Errorf("store: run index block overflows data section")
			}
			// Every entry costs at least one timestamp-varint byte, so a
			// block can never hold more entries than payload bytes —
			// without this, a forged count drives a huge allocation at
			// decode (the v1 decoder's count-vs-length invariant).
			if uint64(m.count) > uint64(m.length) {
				return nil, fmt.Errorf("store: run index block count %d exceeds block length %d", m.count, m.length)
			}
			if j > 0 && m.min < se.blocks[j-1].max {
				return nil, fmt.Errorf("store: run index blocks out of order")
			}
			total += uint64(m.count)
			se.blocks[j] = m
		}
		if total != se.count {
			return nil, fmt.Errorf("store: run index series count %d contradicts blocks (%d)", se.count, total)
		}
		idx.series = append(idx.series, se)
	}
	if off != len(b) {
		return nil, fmt.Errorf("store: run index has %d trailing bytes", len(b)-off)
	}
	return idx, nil
}

// readRunIndexFile reads only a v2 file's footer and index — the cold
// open path. The data section is not touched.
func readRunIndexFile(path string) (*runIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(runMagic2))+v2FooterLen {
		return nil, fmt.Errorf("store: %s: run file truncated", path)
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, err
	}
	if string(magic[:]) != string(runMagic2) {
		return nil, fmt.Errorf("store: %s: %w", path, errNotV2)
	}
	var footer [v2FooterLen]byte
	if _, err := f.ReadAt(footer[:], size-v2FooterLen); err != nil {
		return nil, err
	}
	indexOff := binary.BigEndian.Uint64(footer[0:])
	indexLen := binary.BigEndian.Uint32(footer[8:])
	indexCRC := binary.BigEndian.Uint32(footer[12:])
	// Subtraction form: additive off+len would wrap for hostile
	// offsets and pass, then drive a giant allocation or bad ReadAt.
	if indexOff < uint64(len(runMagic2)) || indexOff > uint64(size-v2FooterLen) ||
		uint64(indexLen) != uint64(size-v2FooterLen)-indexOff {
		return nil, fmt.Errorf("store: %s: run file footer inconsistent", path)
	}
	indexBytes := make([]byte, indexLen)
	if _, err := f.ReadAt(indexBytes, int64(indexOff)); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(indexBytes) != indexCRC {
		return nil, fmt.Errorf("store: %s: run index CRC mismatch", path)
	}
	idx, err := parseRunIndex(indexBytes, int64(indexOff))
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return idx, nil
}

// decodeRunFileV2 decodes a whole v2 file held in memory — the fuzz
// surface and the hot (cache-less) recovery path.
func decodeRunFileV2(data []byte) (*runContents, error) {
	if len(data) < len(runMagic2)+v2FooterLen {
		return nil, fmt.Errorf("store: run file truncated")
	}
	footer := data[len(data)-v2FooterLen:]
	indexOff := binary.BigEndian.Uint64(footer[0:])
	indexLen := binary.BigEndian.Uint32(footer[8:])
	indexCRC := binary.BigEndian.Uint32(footer[12:])
	if indexOff < uint64(len(runMagic2)) || indexOff > uint64(len(data)-v2FooterLen) ||
		uint64(indexLen) != uint64(len(data)-v2FooterLen)-indexOff {
		return nil, fmt.Errorf("store: run file footer inconsistent")
	}
	indexBytes := data[indexOff : indexOff+uint64(indexLen)]
	if crc32.ChecksumIEEE(indexBytes) != indexCRC {
		return nil, fmt.Errorf("store: run index CRC mismatch")
	}
	idx, err := parseRunIndex(indexBytes, int64(indexOff))
	if err != nil {
		return nil, err
	}
	rc := &runContents{
		minSeq: idx.minSeq, maxSeq: idx.maxSeq, tombs: idx.tombs,
		series: make(map[core.SensorID][]entry, len(idx.series)),
	}
	for _, se := range idx.series {
		es := make([]entry, 0, se.count)
		for _, m := range se.blocks {
			raw := data[m.off : m.off+uint64(m.length)]
			if crc32.ChecksumIEEE(raw) != m.crc {
				return nil, fmt.Errorf("store: block at %d CRC mismatch", m.off)
			}
			if err := decodeBlock(raw, int(m.count), &es); err != nil {
				return nil, err
			}
		}
		// The index's per-series bounds are the always-resident
		// rejection data; they must agree with the decoded payload.
		if es[0].ts != se.min || es[len(es)-1].ts != se.max {
			return nil, fmt.Errorf("store: series %v bounds contradict blocks", se.id)
		}
		rc.series[se.id] = es
	}
	return rc, nil
}

// writeRunFileV2 persists a spill's series map as a v2 file, returning
// the committed meta and index (the index lets the caller swap hot runs
// cold without re-reading the file).
func writeRunFileV2(dir string, minSeq, maxSeq uint64, series map[core.SensorID][]entry, tombs map[core.SensorID]int64) (runFileMeta, *runIndex, error) {
	w, err := newRunFileWriter(dir, minSeq, maxSeq)
	if err != nil {
		return runFileMeta{}, nil, err
	}
	ids := sortedIDs(len(series), func(yield func(core.SensorID)) {
		for id := range series {
			yield(id)
		}
	})
	for _, id := range ids {
		if len(series[id]) == 0 {
			continue
		}
		if err := w.addSeries(id, series[id]); err != nil {
			w.abort()
			return runFileMeta{}, nil, err
		}
	}
	return w.finish(tombs)
}
