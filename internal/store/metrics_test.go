package store

import (
	"strings"
	"testing"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/metrics"
)

// findSample returns the gathered sample whose name starts with prefix.
func findSample(t *testing.T, samples []metrics.Sample, prefix string) metrics.Sample {
	t.Helper()
	for _, s := range samples {
		if strings.HasPrefix(s.Name, prefix) {
			return s
		}
	}
	t.Fatalf("no sample with prefix %q in %d samples", prefix, len(samples))
	return metrics.Sample{}
}

// histCount sums histogram observation counts across every series
// whose name starts with prefix (per-shard latency histograms split
// one logical metric over numShards series).
func histCount(t *testing.T, samples []metrics.Sample, prefix string) int64 {
	t.Helper()
	var total int64
	found := false
	for _, s := range samples {
		if strings.HasPrefix(s.Name, prefix) && s.Hist != nil {
			total += s.Hist.Count()
			found = true
		}
	}
	if !found {
		t.Fatalf("no histogram with prefix %q", prefix)
	}
	return total
}

func sampleValue(t *testing.T, samples []metrics.Sample, name string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("no sample named %q", name)
	return 0
}

// TestNodeMetricsExposition drives a durable node through inserts,
// queries, a flush-triggered spill and a block-cache-backed read, then
// checks that the registry's scrape-time mirrors agree with the
// engine's own counters.
func TestNodeMetricsExposition(t *testing.T) {
	n := NewNode(64)
	if err := n.OpenOptions(t.TempDir(), DiskOptions{CacheBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	id := sid(3, 9)
	const inserts = 200
	for i := int64(0); i < inserts; i++ {
		if err := n.Insert(id, rd(i, float64(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if rs, err := n.Query(id, 0, inserts); err != nil || len(rs) != inserts {
		t.Fatalf("query: %d readings, %v", len(rs), err)
	}

	samples, err := n.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := sampleValue(t, samples, "dcdb_store_inserts_total"); got != inserts {
		t.Errorf("inserts_total = %g, want %d", got, inserts)
	}
	if got := sampleValue(t, samples, "dcdb_store_queries_total"); got != 1 {
		t.Errorf("queries_total = %g, want 1", got)
	}
	if got := sampleValue(t, samples, "dcdb_store_wal_appends_total"); got < inserts {
		t.Errorf("wal_appends_total = %g, want >= %d", got, inserts)
	}
	// The scrape-time entry gauges must agree with the engine's count.
	mem, flushed := n.entryCounts()
	if got := sampleValue(t, samples, "dcdb_store_memtable_entries"); got != float64(mem) {
		t.Errorf("memtable_entries = %g, want %d", got, mem)
	}
	if got := sampleValue(t, samples, "dcdb_store_flushed_entries"); got != float64(flushed) {
		t.Errorf("flushed_entries = %g, want %d", got, flushed)
	}
	if mem+flushed != inserts {
		t.Errorf("entryCounts: %d mem + %d flushed != %d inserted", mem, flushed, inserts)
	}
	if got := sampleValue(t, samples, "dcdb_store_memtable_bytes"); got != float64(mem*entrySize) {
		t.Errorf("memtable_bytes = %g, want %d", got, mem*entrySize)
	}
	// The block cache registered its scrape-time counters.
	findSample(t, samples, "dcdb_store_cache_hits_total")
	findSample(t, samples, "dcdb_store_cache_used_bytes")
	// Insert latency sampled (200 inserts to one shard cross several
	// 64-record boundaries); query latency sampled from the first call.
	if histCount(t, samples, "dcdb_store_insert_latency_seconds") == 0 {
		t.Error("insert latency histogram never sampled")
	}
	if histCount(t, samples, "dcdb_store_query_latency_seconds") == 0 {
		t.Error("query latency histogram never sampled")
	}
	if n.Metrics() == nil {
		t.Fatal("Metrics() registry is nil")
	}
}

// TestSetInstrumentationStopsSampling flips the kill switch and checks
// that latency sampling stops (counters keep counting — they are the
// engine's own).
func TestSetInstrumentationStopsSampling(t *testing.T) {
	defer SetInstrumentation(true)
	n := NewNode(0)
	id := sid(5, 5)

	SetInstrumentation(false)
	for i := int64(0); i < 300; i++ {
		if err := n.Insert(id, rd(i, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Query(id, 0, 10); err != nil {
		t.Fatal(err)
	}
	samples, _ := n.MetricsSnapshot()
	if got := histCount(t, samples, "dcdb_store_insert_latency_seconds"); got != 0 {
		t.Errorf("insert latency sampled %d times with instrumentation off", got)
	}
	if got := histCount(t, samples, "dcdb_store_query_latency_seconds"); got != 0 {
		t.Errorf("query latency sampled %d times with instrumentation off", got)
	}
	if got := sampleValue(t, samples, "dcdb_store_inserts_total"); got != 300 {
		t.Errorf("inserts_total = %g with instrumentation off, want 300", got)
	}

	SetInstrumentation(true)
	for i := int64(300); i < 600; i++ {
		if err := n.Insert(id, rd(i, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	samples, _ = n.MetricsSnapshot()
	if histCount(t, samples, "dcdb_store_insert_latency_seconds") == 0 {
		t.Error("insert latency sampling never resumed")
	}
}

// TestClusterMetricsOutcomes checks the coordinator counters across
// consistency successes and failures, and the ClusterStats fan-out.
func TestClusterMetricsOutcomes(t *testing.T) {
	c, nodes := threeNodeCluster(t, 2, ClusterOptions{
		WriteConsistency: ConsistencyQuorum,
		ReadConsistency:  ConsistencyQuorum,
	})
	id := sid(11, 4)
	if err := c.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(id, 0, 10); err != nil {
		t.Fatal(err)
	}

	reps := replicaSet(c, id, 3, 2)
	nodes[reps[1]].SetDown(true)
	if err := c.Insert(id, rd(2, 2), 0); err == nil {
		t.Fatal("QUORUM write with a down replica succeeded")
	}
	if _, err := c.Query(id, 0, 10); err == nil {
		t.Fatal("QUORUM read with a down replica succeeded")
	}
	nodes[reps[1]].SetDown(false)

	samples := c.Metrics().Gather()
	if got := sampleValue(t, samples, `dcdb_cluster_writes_total{outcome="ok"}`); got != 1 {
		t.Errorf(`writes_total{outcome="ok"} = %g, want 1`, got)
	}
	if got := sampleValue(t, samples, `dcdb_cluster_writes_total{outcome="failed"}`); got != 1 {
		t.Errorf(`writes_total{outcome="failed"} = %g, want 1`, got)
	}
	if got := sampleValue(t, samples, `dcdb_cluster_reads_total{outcome="ok"}`); got != 1 {
		t.Errorf(`reads_total{outcome="ok"} = %g, want 1`, got)
	}
	if got := sampleValue(t, samples, `dcdb_cluster_reads_total{outcome="failed"}`); got != 1 {
		t.Errorf(`reads_total{outcome="failed"} = %g, want 1`, got)
	}
	sampleValue(t, samples, "dcdb_cluster_hints_queued_total")
	sampleValue(t, samples, "dcdb_cluster_hints_pending_nodes")

	stats := c.ClusterStats()
	if len(stats) != 3 {
		t.Fatalf("ClusterStats returned %d entries, want 3", len(stats))
	}
	var totalInserts int64
	for _, ns := range stats {
		if ns.Err != nil {
			t.Errorf("node %d: %v", ns.Index, ns.Err)
		}
		if ns.Addr != "" {
			t.Errorf("node %d: in-process backend reports addr %q", ns.Index, ns.Addr)
		}
		if len(ns.Samples) == 0 {
			t.Errorf("node %d: empty metrics snapshot", ns.Index)
		}
		totalInserts += ns.Inserts
	}
	// One QUORUM-acknowledged insert on 2 replicas; the failed write
	// may have landed on the live replica before the quorum miss.
	if totalInserts < 2 {
		t.Errorf("ClusterStats inserts total %d, want >= 2", totalInserts)
	}
}

// TestWALMetricsGroupCommit checks the WAL counters on a durable node
// with batched fsyncs.
func TestWALMetricsGroupCommit(t *testing.T) {
	n := NewNode(0)
	if err := n.OpenOptions(t.TempDir(), DiskOptions{SyncInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	id := sid(8, 8)
	batch := make([]core.Reading, 32)
	for i := range batch {
		batch[i] = rd(int64(i), 1)
	}
	if err := n.InsertBatch(id, batch, 0); err != nil {
		t.Fatal(err)
	}
	// The group-commit fsync runs on the sync interval; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		samples, _ := n.MetricsSnapshot()
		appends := sampleValue(t, samples, "dcdb_store_wal_appends_total")
		fsyncs := sampleValue(t, samples, "dcdb_store_wal_fsyncs_total")
		hist := findSample(t, samples, "dcdb_store_wal_group_commit_records")
		if appends >= 1 && fsyncs >= 1 && hist.Hist != nil && hist.Hist.Count() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("WAL metrics never settled: appends=%g fsyncs=%g", appends, fsyncs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
