package store

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dcdb/internal/core"
)

// Tests for the bounded-memory engine: the v2 block codec, the
// footer-indexed run-file format, the clock block cache, cold (evicted)
// reads, and the streaming query path. The central property: a cold
// read must be byte-identical to the hot read of the same data.

// coldOptions force eviction aggressively: a tiny cache means nearly
// every cold read misses and decodes from disk.
var coldOptions = DiskOptions{SyncInterval: 0, CompactInterval: -1, CacheBytes: 1 << 14}

func randomEntries(rng *rand.Rand, n int) []entry {
	es := make([]entry, n)
	ts := int64(rng.Intn(1000))
	for i := range es {
		es[i].ts = ts
		if rng.Intn(8) != 0 { // occasional duplicate timestamps
			ts += int64(rng.Intn(5000))
		}
		switch rng.Intn(4) {
		case 0:
			es[i].val = float64(rng.Intn(100)) // repeated / integral values
		case 1:
			es[i].val = es[max(0, i-1)].val // runs of identical values
		default:
			es[i].val = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)))
		}
		if rng.Intn(5) == 0 {
			es[i].expire = int64(rng.Intn(1 << 30))
		}
	}
	return es
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBlockCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]entry{
		{{ts: 0, val: 0}},
		{{ts: 5, val: 1.5}, {ts: 5, val: 2.5}, {ts: 5, val: 2.5}},
		{{ts: -100, val: math.Inf(1)}, {ts: 0, val: math.NaN()}, {ts: 100, val: -0.0}},
	}
	for i := 0; i < 50; i++ {
		cases = append(cases, randomEntries(rng, 1+rng.Intn(2*blockEntries)))
	}
	for ci, es := range cases {
		enc := encodeBlock(nil, es)
		var got []entry
		if err := decodeBlock(enc, len(es), &got); err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(got) != len(es) {
			t.Fatalf("case %d: %d entries, want %d", ci, len(got), len(es))
		}
		for j := range es {
			w, g := es[j], got[j]
			if w.ts != g.ts || w.expire != g.expire ||
				math.Float64bits(w.val) != math.Float64bits(g.val) {
				t.Fatalf("case %d entry %d: got %+v want %+v", ci, j, g, w)
			}
		}
		// Wrong counts must error, not mis-decode.
		var junk []entry
		if err := decodeBlock(enc, len(es)+1, &junk); err == nil {
			t.Fatalf("case %d: decode accepted an inflated count", ci)
		}
	}
}

func TestBlockCodecCompresses(t *testing.T) {
	// A fixed-period sensor with slowly drifting values — the paper's
	// workload — must compress far below the 24 B/entry raw encoding.
	es := make([]entry, blockEntries)
	for i := range es {
		es[i] = entry{ts: int64(i) * 1e9, val: 42 + float64(i%7)*0.25}
	}
	enc := encodeBlock(nil, es)
	if got, raw := len(enc), 24*len(es); got*4 > raw {
		t.Fatalf("monitoring-shaped block encoded to %d bytes (raw %d); expected >4x compression", got, raw)
	}
}

func TestRunFileV2RoundTripAndIndex(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	series := map[core.SensorID][]entry{
		sid(1, 2): randomEntries(rng, 3*blockEntries+17),
		sid(1, 3): randomEntries(rng, 1),
		sid(9, 0): randomEntries(rng, blockEntries),
	}
	tombs := map[core.SensorID]int64{sid(1, 2): 7}
	meta, idx, err := writeRunFileV2(dir, 3, 9, series, tombs)
	if err != nil {
		t.Fatal(err)
	}
	if meta.minSeq != 3 || meta.maxSeq != 9 {
		t.Fatalf("meta span [%d,%d]", meta.minSeq, meta.maxSeq)
	}
	// Full decode through the dispatching reader.
	rc, err := readRunFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	if rc.minSeq != 3 || rc.maxSeq != 9 || rc.tombs[sid(1, 2)] != 7 {
		t.Fatalf("decoded header %+v", rc)
	}
	for id, want := range series {
		got := rc.series[id]
		if len(got) != len(want) {
			t.Fatalf("series %v: %d entries, want %d", id, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i].val) != math.Float64bits(want[i].val) ||
				got[i].ts != want[i].ts || got[i].expire != want[i].expire {
				t.Fatalf("series %v entry %d: got %+v want %+v", id, i, got[i], want[i])
			}
		}
	}
	// Index-only read must agree with the full decode.
	idx2, err := readRunIndexFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx2.series) != len(idx.series) || idx2.minSeq != 3 || idx2.tombs[sid(1, 2)] != 7 {
		t.Fatalf("index-only read %+v", idx2)
	}
	for i, se := range idx2.series {
		want := series[se.id]
		if se.count != uint64(len(want)) || se.min != want[0].ts || se.max != want[len(want)-1].ts {
			t.Fatalf("series %d index %+v contradicts data", i, se)
		}
		wantBlocks := (len(want) + blockEntries - 1) / blockEntries
		if len(se.blocks) != wantBlocks {
			t.Fatalf("series %v: %d blocks, want %d", se.id, len(se.blocks), wantBlocks)
		}
	}
	// A v1 file still decodes through the same entry point.
	metaV1, err := writeRunFile(dir+string(os.PathSeparator), 10, 10, map[core.SensorID][]entry{sid(5, 5): {{ts: 1, val: 2}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rc1, err := readRunFile(metaV1.path); err != nil || len(rc1.series) != 1 {
		t.Fatalf("v1 decode: %v %+v", err, rc1)
	}
}

// TestRunFileV2CorruptionRejected flips every byte of a small v2 file
// and requires the (index CRC + per-block CRC) layers to reject the
// damage — never panic, never serve wrong data silently.
func TestRunFileV2CorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	meta, _, err := writeRunFileV2(dir, 1, 1, map[core.SensorID][]entry{
		sid(1, 1): randomEntries(rng, blockEntries+5),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := decodeRunFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(orig); off++ {
		data := append([]byte(nil), orig...)
		data[off] ^= 0x41
		rc, err := decodeRunFile(data)
		if err != nil {
			continue
		}
		// A flip the CRCs missed may only happen in the magic-adjacent
		// bytes that are themselves validated structurally; whatever is
		// accepted must equal the original payload.
		for id, es := range want.series {
			got := rc.series[id]
			if len(got) != len(es) {
				t.Fatalf("offset %d: silent corruption (series length)", off)
			}
			for i := range es {
				if got[i] != es[i] {
					t.Fatalf("offset %d: silent corruption at entry %d", off, i)
				}
			}
		}
	}
}

// TestColdReadsMatchModel reruns the randomized merge-model property —
// inserts, flushes, deletes, compactions, crash/reopen cycles — on a
// node whose cache is tiny, so nearly every read is a cold block
// decode. The engine must agree with the reference model exactly: cold
// reads are byte-identical to what a hot node serves.
func TestColdReadsMatchModel(t *testing.T) {
	for seed := int64(200); seed < 208; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			id := sid(21, uint64(seed))
			var cur *Node
			open := func() *Node {
				n := NewNode(8 * numShards)
				if err := n.OpenOptions(dir, coldOptions); err != nil {
					t.Fatal(err)
				}
				cur = n
				return n
			}
			t.Cleanup(func() {
				if cur != nil {
					cur.Close()
				}
			})
			n := open()
			reopen := func(old *Node) *Node {
				if rng.Intn(2) == 0 {
					if err := old.Close(); err != nil {
						t.Fatal(err)
					}
				} else {
					old.crash()
				}
				return open()
			}
			mergeModelOps(t, rng, n, id, reopen)
			if hits, misses, _ := cur.CacheStats(); hits+misses == 0 {
				t.Fatal("no block-cache traffic: the cold path was never exercised")
			}
		})
	}
}

// TestColdEqualsHotDirect drives an identical op sequence into a hot
// node (no cache: every run resident) and a cold node (tiny cache),
// spanning flushes and a compaction, and requires every query window to
// match bit for bit.
func TestColdEqualsHotDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	hotDir, coldDir := t.TempDir(), t.TempDir()
	hot := openedNode(t, hotDir, 4*numShards, DiskOptions{SyncInterval: 0, CompactInterval: -1})
	cold := openedNode(t, coldDir, 4*numShards, coldOptions)
	defer hot.Close()
	defer cold.Close()

	ids := []core.SensorID{sid(1, 1), sid(1, 2), sid(7, 3)}
	apply := func(f func(*Node) error) {
		if err := f(hot); err != nil {
			t.Fatal(err)
		}
		if err := f(cold); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 200; step++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(10) {
		case 0:
			apply(func(n *Node) error { return n.Flush() })
		case 1:
			cutoff := int64(rng.Intn(5000))
			apply(func(n *Node) error { return n.DeleteBefore(id, cutoff) })
		case 2:
			apply(func(n *Node) error { n.Compact(); return nil })
		default:
			batch := make([]core.Reading, 1+rng.Intn(40))
			base := int64(rng.Intn(5000))
			for i := range batch {
				batch[i] = core.Reading{Timestamp: base + int64(i), Value: rng.NormFloat64()}
			}
			apply(func(n *Node) error { return n.InsertBatch(id, batch, 0) })
		}
	}
	hot.sp.waitIdle()
	cold.sp.waitIdle()
	for _, id := range ids {
		for _, w := range [][2]int64{{-1 << 62, 1 << 62}, {100, 2000}, {4999, 5005}} {
			h, err := hot.Query(id, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			c, err := cold.Query(id, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			if len(h) != len(c) {
				t.Fatalf("sensor %v window %v: hot %d cold %d readings", id, w, len(h), len(c))
			}
			for i := range h {
				if h[i] != c[i] {
					t.Fatalf("sensor %v window %v position %d: hot %v cold %v", id, w, i, h[i], c[i])
				}
			}
		}
	}
	// The cold node must actually have evicted: after waitIdle every
	// spilled run dropped its entries, so cache misses are inevitable
	// on the reads above.
	if _, misses, _ := cold.CacheStats(); misses == 0 {
		t.Fatal("cold node never read a block from disk")
	}
}

// TestV1FilesRecoverUnderCache writes a legacy v1 run file into a shard
// directory and opens the node with a cache: Open migrates the file to
// v2 in place (verified rewrite), and it serves alongside new data.
func TestV1FilesRecoverUnderCache(t *testing.T) {
	dir := t.TempDir()
	id := sid(3, 3)
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%02d", shardIndex(id)))
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	meta, err := writeRunFile(shardDir, 1, 1, map[core.SensorID][]entry{
		id: {{ts: 10, val: 1}, {ts: 20, val: 2}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := openedNode(t, dir, 0, coldOptions)
	defer n.Close()
	if head, err := os.ReadFile(meta.path); err != nil || string(head[:8]) != string(runMagic2) {
		t.Fatalf("v1 file not migrated to v2 at open (err=%v magic=%q)", err, head[:8])
	}
	if err := n.Insert(id, core.Reading{Timestamp: 30, Value: 3}, 0); err != nil {
		t.Fatal(err)
	}
	rs, err := n.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Value != 1 || rs[2].Value != 3 {
		t.Fatalf("v1+v2 merge served %v", rs)
	}
}

func TestBlockCacheEvictionBound(t *testing.T) {
	c := newBlockCache(10 * 1024)
	rf := &runFile{path: "x"}
	for i := 0; i < 100; i++ {
		es := make([]entry, 10)
		c.add(blockKey{rf: rf, off: uint64(i)}, es)
	}
	c.mu.Lock()
	used, entries := c.used, len(c.clock)
	c.mu.Unlock()
	if used > 10*1024 {
		t.Fatalf("cache holds %d bytes, budget 10240", used)
	}
	if entries == 0 || entries == 100 {
		t.Fatalf("expected partial residency, have %d/100", entries)
	}
	// Purging the file empties the cache completely.
	c.purge(rf)
	c.mu.Lock()
	used, entries = c.used, len(c.clock)
	c.mu.Unlock()
	if used != 0 || entries != 0 {
		t.Fatalf("purge left %d bytes in %d entries", used, entries)
	}
}

// TestNodeStreamMatchesQuery drains QueryStream and requires exactly
// Query's result, across chunk boundaries.
func TestNodeStreamMatchesQuery(t *testing.T) {
	dir := t.TempDir()
	n := openedNode(t, dir, 0, coldOptions)
	defer n.Close()
	id := sid(2, 9)
	const total = 3*StreamChunkReadings + 123
	batch := make([]core.Reading, 1000)
	for base := 0; base < total; base += len(batch) {
		for i := range batch {
			batch[i] = core.Reading{Timestamp: int64(base + i), Value: float64(base + i)}
		}
		if err := n.InsertBatch(id, batch, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	n.sp.waitIdle()

	want, err := n.Query(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got []core.Reading
	chunks := 0
	for {
		rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) > StreamChunkReadings {
			t.Fatalf("chunk of %d readings exceeds bound %d", len(rs), StreamChunkReadings)
		}
		got = append(got, rs...)
		chunks++
	}
	if chunks < 3 {
		t.Fatalf("expected multiple chunks, got %d", chunks)
	}
	if len(got) != len(want) {
		t.Fatalf("stream %d readings, query %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: stream %v query %v", i, got[i], want[i])
		}
	}
	// Early close releases resources without errors.
	st2, err := n.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Next(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterQuorumStreamMergesAndRepairs checks the incremental QUORUM
// merge: a replica that missed writes must not hide them from the
// stream, and must be repaired in the background.
func TestClusterQuorumStreamMergesAndRepairs(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	c, err := NewClusterOptions(backends, ClusterOptions{
		Replication:     3,
		ReadConsistency: ConsistencyQuorum,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := sid(4, 4)
	replicas := c.replicasFor(id)
	// Write 1..N to all, then N+1..M only to two replicas (one missed).
	for ts := int64(1); ts <= 10; ts++ {
		if err := c.Insert(id, core.Reading{Timestamp: ts, Value: float64(ts)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for ts := int64(11); ts <= 20; ts++ {
		for _, idx := range replicas[:2] {
			if err := nodes[idx].Insert(id, core.Reading{Timestamp: ts, Value: float64(ts)}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := c.QueryStream(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Reading
	for {
		rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	st.Close()
	if len(got) != 20 {
		t.Fatalf("quorum stream returned %d readings, want 20: %v", len(got), got)
	}
	for i, r := range got {
		if r.Timestamp != int64(i+1) || r.Value != float64(i+1) {
			t.Fatalf("position %d: %v", i, r)
		}
	}
	// Background repair converges the replica that missed 11..20.
	c.repairWG.Wait()
	lag := nodes[replicas[2]]
	rs, err := lag.Query(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 20 {
		t.Fatalf("read repair left the stale replica with %d readings", len(rs))
	}
}

// TestClusterPrefixStreamMatchesQueryPrefix checks the SID-ordered
// keyed merge against the materializing QueryPrefix.
func TestClusterPrefixStreamMatchesQueryPrefix(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	c, err := NewClusterOptions(backends, ClusterOptions{Replication: 2, ReadConsistency: ConsistencyQuorum})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	prefix := core.SensorID{Hi: 0x0001_0002_0003_0004, Lo: 0}
	for s := uint64(0); s < 5; s++ {
		id := prefix
		id.Lo = s << 16
		for ts := int64(0); ts < 100; ts++ {
			if err := c.Insert(id, core.Reading{Timestamp: ts, Value: float64(ts) + float64(s)}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := c.QueryPrefix(prefix, 4, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.QueryPrefixStream(prefix, 4, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := make(map[core.SensorID][]core.Reading)
	var lastID core.SensorID
	first := true
	for {
		id, rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !first && id.Compare(lastID) < 0 {
			t.Fatalf("keyed stream went backwards: %v after %v", id, lastID)
		}
		lastID, first = id, false
		got[id] = append(got[id], rs...)
	}
	if len(got) != len(want) {
		t.Fatalf("stream saw %d sensors, query %d", len(got), len(want))
	}
	for id, w := range want {
		g := got[id]
		if len(g) != len(w) {
			t.Fatalf("sensor %v: stream %d readings, query %d", id, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("sensor %v position %d: stream %v query %v", id, i, g[i], w[i])
			}
		}
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		bad  bool
	}{
		{"0", 0, false}, {"123", 123, false}, {"64K", 64 << 10, false},
		{"256MB", 256 << 20, false}, {"2g", 2 << 30, false}, {"7 kb", 7 << 10, false},
		{"12B", 12, false},
		{"", 0, true}, {"-5", 0, true}, {"MB", 0, true}, {"1.5G", 0, true},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseByteSize(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

// TestClusterStreamConsistencyOneFailover: at ONE, a down primary's
// stream opens on the next replica.
func TestClusterStreamConsistencyOneFailover(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	c, err := NewClusterOptions(backends, ClusterOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := sid(5, 5)
	for ts := int64(0); ts < 10; ts++ {
		if err := c.Insert(id, core.Reading{Timestamp: ts, Value: float64(ts)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	nodes[c.replicasFor(id)[0]].SetDown(true)
	st, err := c.QueryStream(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	count := 0
	for {
		rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count += len(rs)
	}
	if count != 10 {
		t.Fatalf("failover stream returned %d readings", count)
	}
	// With every replica down, the open fails.
	nodes[c.replicasFor(id)[1]].SetDown(true)
	if _, err := c.QueryStream(id, 0, 100); err == nil {
		t.Fatal("stream opened with all replicas down")
	}
}

// TestQuorumStreamEarlyClose: closing a quorum stream mid-merge cancels
// the replica streams without error.
func TestQuorumStreamEarlyClose(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	c, err := NewClusterOptions(backends, ClusterOptions{Replication: 3, ReadConsistency: ConsistencyQuorum})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := sid(7, 7)
	for ts := int64(0); ts < 3*StreamChunkReadings; ts++ {
		if err := c.Insert(id, core.Reading{Timestamp: ts, Value: 1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("Next after Close: %v", err)
	}
}

// TestPrefixStreamQuorumNotMet: a down node must fail the quorum
// prefix stream at open, like the materializing QueryPrefix.
func TestPrefixStreamQuorumNotMet(t *testing.T) {
	nodes := []*Node{NewNode(0), NewNode(0)}
	backends := make([]NodeBackend, len(nodes))
	for i, n := range nodes {
		backends[i] = n
	}
	c, err := NewClusterOptions(backends, ClusterOptions{Replication: 2, ReadConsistency: ConsistencyQuorum})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := sid(1, 1)
	if err := c.Insert(id, core.Reading{Timestamp: 1, Value: 1}, 0); err != nil {
		t.Fatal(err)
	}
	nodes[1].SetDown(true)
	if _, err := c.QueryPrefixStream(id.Prefix(1), 1, 0, 10); err == nil {
		t.Fatal("quorum prefix stream opened with a replica window below quorum")
	}
	nodes[1].SetDown(false)
	st, err := c.QueryPrefixStream(id.Prefix(1), 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Next(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	st.Close()
	if _, _, err := st.Next(); err != io.EOF {
		t.Fatalf("Next after Close: %v", err)
	}
}

// TestBoundedMemoryColdReads is the resident-set-bound proof: with a
// small CacheBytes, on-disk retention grows far past the cache while
// the heap stays flat, and a full cold range read still returns every
// reading. CI runs this as the bounded-memory smoke step.
func TestBoundedMemoryColdReads(t *testing.T) {
	dir := t.TempDir()
	n := NewNode(1 << 15)
	o := DiskOptions{
		SyncInterval:    -1, // durability cadence is not under test
		CompactInterval: 20 * time.Millisecond,
		MaxRuns:         6,
		CacheBytes:      1 << 19, // 512 KB
	}
	if err := n.OpenOptions(dir, o); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	id := sid(6, 6)
	const (
		wave  = 100_000 // readings per wave (~2.4 MB decoded)
		waves = 10      // total decoded data ≈ 46x the cache budget
	)
	batch := make([]core.Reading, 1000)
	ingest := func(waveIdx int) {
		base := int64(waveIdx * wave)
		for off := 0; off < wave; off += len(batch) {
			for i := range batch {
				ts := base + int64(off+i)
				batch[i] = core.Reading{Timestamp: ts, Value: float64(ts % 977)}
			}
			if err := n.InsertBatch(id, batch, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	ingest(0)
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	n.sp.waitIdle()
	h0 := heap()
	for w := 1; w < waves; w++ {
		ingest(w)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	n.sp.waitIdle()
	h1 := heap()

	// Retention grew 10x; the heap must not have. Allow the cache
	// budget plus generous slack for runtime noise — far below the
	// ~22 MB the extra waves would occupy resident.
	slack := uint64(o.CacheBytes) + 8<<20
	if h1 > h0+slack {
		t.Fatalf("heap grew from %d to %d (+%d) while retention grew 10x; bound was +%d",
			h0, h1, h1-h0, slack)
	}

	// A full cold scan must return every reading while the heap stays
	// bounded mid-stream.
	st, err := n.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	count := 0
	var peak uint64
	for {
		rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count += len(rs)
		if count%(20*StreamChunkReadings) < StreamChunkReadings {
			if h := heap(); h > peak {
				peak = h
			}
		}
	}
	if count != wave*waves {
		t.Fatalf("cold scan returned %d readings, want %d", count, wave*waves)
	}
	if peak > h0+slack {
		t.Fatalf("heap peaked at %d during the cold scan (baseline %d, bound +%d)", peak, h0, slack)
	}
	if _, misses, used := n.CacheStats(); misses == 0 || used > o.CacheBytes {
		t.Fatalf("cache stats misses=%d used=%d budget=%d", misses, used, o.CacheBytes)
	}
}
