package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The block cache bounds a durable node's resident set: with
// DiskOptions.CacheBytes > 0, run data lives on disk behind per-series
// block indexes (always resident, a few bytes per 512 entries) and
// decoded blocks are cached node-wide up to the configured budget with
// clock (second-chance) eviction. Memory becomes O(hot working set)
// instead of O(retention) — the ROADMAP's "resident-set bound" item.
//
// runFile is the refcounted read handle of one v2 run file. The shard's
// file list holds the owning reference; queries, streams and compactions
// retain the file while they read it, so a compaction that retires the
// file (release of the owning reference) cannot close it under a
// concurrent cold read — the file descriptor outlives the unlink.
type runFile struct {
	path    string
	f       *os.File
	refs    atomic.Int32
	cache   *blockCache // purged of this file's blocks on final release
	dataLen int64       // bytes before the index section; block bounds check
}

// openRunFileHandle opens path for cold reads with one owning
// reference.
func openRunFileHandle(path string, dataLen int64, cache *blockCache) (*runFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	rf := &runFile{path: path, f: f, cache: cache, dataLen: dataLen}
	rf.refs.Store(1)
	return rf, nil
}

func (rf *runFile) retain() { rf.refs.Add(1) }

// release drops one reference; the last one closes the descriptor and
// evicts the file's cached blocks (they can never be hit again).
func (rf *runFile) release() {
	if rf.refs.Add(-1) != 0 {
		return
	}
	rf.f.Close()
	if rf.cache != nil {
		rf.cache.purge(rf)
	}
}

// readBlock reads and CRC-checks one raw block. buf is reused when
// large enough.
func (rf *runFile) readBlock(m blockMeta, buf []byte) ([]byte, error) {
	if int64(m.off)+int64(m.length) > rf.dataLen {
		return nil, fmt.Errorf("store: %s: block at %d overflows data section", rf.path, m.off)
	}
	if cap(buf) < int(m.length) {
		buf = make([]byte, m.length)
	}
	buf = buf[:m.length]
	if _, err := rf.f.ReadAt(buf, int64(m.off)); err != nil {
		return nil, fmt.Errorf("store: %s: reading block at %d: %w", rf.path, m.off, err)
	}
	if crc32.ChecksumIEEE(buf) != m.crc {
		return nil, fmt.Errorf("store: %s: block at %d CRC mismatch", rf.path, m.off)
	}
	return buf, nil
}

// decodeBlockAt reads, checks and decodes one block of rf, appending
// the entries to out.
func (rf *runFile) decodeBlockAt(m blockMeta, scratch []byte, out *[]entry) ([]byte, error) {
	raw, err := rf.readBlock(m, scratch)
	if err != nil {
		return raw, err
	}
	if err := decodeBlock(raw, int(m.count), out); err != nil {
		return raw, fmt.Errorf("store: %s: block at %d: %w", rf.path, m.off, err)
	}
	return raw, nil
}

// blockKey identifies one cached decoded block. The runFile pointer is
// the file's identity: a rewritten path is a new file object, so stale
// content can never be served for a reused name.
type blockKey struct {
	rf  *runFile
	off uint64
}

// cacheEntry is one decoded block resident in the cache.
type cacheEntry struct {
	key   blockKey
	es    []entry
	bytes int64
	ref   bool // clock reference bit: touched since the hand last passed
}

// entryOverhead approximates the bookkeeping bytes per cached block
// (map entry, struct, slice header) charged on top of the entry data.
const entryOverhead = 128

// blockCache is the node-wide decoded-block cache with clock
// (second-chance) eviction: a hit sets the entry's reference bit; the
// eviction hand clears bits until it finds an unreferenced victim, so
// one scan of cold data cannot flush the hot working set the way pure
// LRU insertion order would.
type blockCache struct {
	mu    sync.Mutex
	cap   int64
	used  int64
	m     map[blockKey]*cacheEntry
	clock []*cacheEntry
	hand  int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{cap: capBytes, m: make(map[blockKey]*cacheEntry)}
}

// get returns the cached decoded entries of a block, if resident. The
// returned slice is immutable and safe to read after the entry is
// evicted (eviction drops the reference; the GC frees it when the last
// reader is done).
func (c *blockCache) get(k blockKey) ([]entry, bool) {
	c.mu.Lock()
	e, ok := c.m[k]
	if ok {
		e.ref = true
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.es, true
	}
	c.misses.Add(1)
	return nil, false
}

// add inserts a decoded block, evicting with the clock hand until the
// budget holds. A block larger than the whole budget is not cached. es
// must not be mutated after add.
func (c *blockCache) add(k blockKey, es []entry) {
	sz := int64(len(es))*int64(entrySize) + entryOverhead
	if sz > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[k]; dup {
		return // raced decode of the same block; first one wins
	}
	for c.used+sz > c.cap && len(c.clock) > 0 {
		c.evictOneLocked()
	}
	e := &cacheEntry{key: k, es: es, bytes: sz, ref: true}
	c.m[k] = e
	c.clock = append(c.clock, e)
	c.used += sz
}

// evictOneLocked advances the clock hand past referenced entries
// (clearing their bits) and removes the first unreferenced one. Bounded:
// after one full revolution every bit is clear.
func (c *blockCache) evictOneLocked() {
	for {
		if c.hand >= len(c.clock) {
			c.hand = 0
		}
		e := c.clock[c.hand]
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		last := len(c.clock) - 1
		c.clock[c.hand] = c.clock[last]
		c.clock[last] = nil
		c.clock = c.clock[:last]
		delete(c.m, e.key)
		c.used -= e.bytes
		c.evictions.Add(1)
		return
	}
}

// purge drops every cached block of one file (called when the file is
// retired by compaction — its blocks can never be requested again).
func (c *blockCache) purge(rf *runFile) {
	c.mu.Lock()
	kept := c.clock[:0]
	for _, e := range c.clock {
		if e.key.rf == rf {
			delete(c.m, e.key)
			c.used -= e.bytes
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(c.clock); i++ {
		c.clock[i] = nil
	}
	c.clock = kept
	c.hand = 0
	c.mu.Unlock()
}

// CacheStats reports the block cache's hit/miss counters and resident
// bytes (zeros when the node runs without a cache).
func (n *Node) CacheStats() (hits, misses, usedBytes int64) {
	if n.cache == nil {
		return 0, 0, 0
	}
	n.cache.mu.Lock()
	usedBytes = n.cache.used
	n.cache.mu.Unlock()
	return n.cache.hits.Load(), n.cache.misses.Load(), usedBytes
}

// CacheBudget reports the node's block-cache capacity in bytes (0 when
// the node runs without a cache).
func (n *Node) CacheBudget() int64 {
	if n.cache == nil {
		return 0
	}
	return n.cache.cap
}

// entrySize is the in-memory footprint of one entry (ts, val, expire,
// ver), used for cache accounting.
const entrySize = 32

// ParseByteSize parses a human-friendly byte count for the cache flags:
// a plain integer is bytes; K/M/G (or KB/MB/GB, case-insensitive)
// suffixes scale by 2^10/2^20/2^30.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1}} {
		if strings.HasSuffix(t, suf.s) {
			t = strings.TrimSuffix(t, suf.s)
			mult = suf.m
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("store: negative byte size %q", s)
	}
	return v * mult, nil
}
