package store

import (
	"fmt"
	"io"
	"sync"

	"dcdb/internal/core"
	"dcdb/internal/fold"
)

// Aggregation pushdown: instead of streaming a long retention's
// readings to the coordinator, an analysis fold (summary, integral,
// downsample — see internal/fold) runs where the data lives and only
// the finished state crosses the wire. On a storage node the fold
// consumes the pull-based stream read path, so cold v2 blocks are
// decoded one at a time and the node's memory per aggregate is one
// chunk plus the fold state, independent of the range length.

// FoldStream folds an entire ReadingStream into st, closing the
// stream. It is the one canonical way a fold consumes a stream —
// node-side pushdown, the cluster's divergence fallback and the
// client-side libdcdb analysis layer all run readings through this
// loop, which is what keeps their results bit-identical.
func FoldStream(st fold.State, rs ReadingStream) error {
	defer rs.Close()
	for {
		chunk, err := rs.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		st.Add(chunk)
	}
}

// Aggregate implements NodeBackend: the fold runs over the node's
// streaming read path (memtable shards merged with cold runs via the
// pull iterator), holding one chunk at a time.
func (n *Node) Aggregate(id core.SensorID, spec fold.Spec) (fold.State, error) {
	st, err := fold.New(spec)
	if err != nil {
		return nil, err
	}
	rs, err := n.QueryStream(id, spec.From, spec.To)
	if err != nil {
		return nil, err
	}
	if err := FoldStream(st, rs); err != nil {
		return nil, err
	}
	return st, nil
}

// Digest implements NodeBackend: the order-sensitive fold fingerprint
// plus reading count of the sensor's deduplicated [from, to] range,
// computed over the same streaming read path a query uses. Replicas
// holding value-identical data produce identical digests regardless of
// the write versions that got them there, so anti-entropy compares one
// (fp, count) pair per replica instead of shipping the range. The
// count includes non-finite readings (the fingerprint covers every
// consumed reading, so the pair changes whenever the data does).
func (n *Node) Digest(id core.SensorID, from, to int64) (fp uint64, count int64, err error) {
	st, err := fold.New(fold.Spec{Op: fold.OpSummary, From: from, To: to})
	if err != nil {
		return 0, 0, err
	}
	rs, err := n.QueryStream(id, from, to)
	if err != nil {
		return 0, 0, err
	}
	if err := FoldStream(st, rs); err != nil {
		return 0, 0, err
	}
	return st.Fingerprint(), st.Count() + st.Skipped(), nil
}

// Aggregate implements NodeBackend for the cluster: the fold is pushed
// down to the sensor's replicas at the configured read consistency.
//
// At ONE the first replica that answers supplies the state — the same
// availability-over-freshness trade the materialized read path makes.
//
// At QUORUM every replica folds its own copy and ships one state; the
// coordinator requires a quorum of answers and compares the states'
// fingerprints. Converged replicas (the steady state) agree and the
// answer ships O(1) bytes per replica. Divergent replicas cannot be
// reconciled from aggregate states alone — a count of a union is not
// the sum of counts — so the coordinator falls back to folding the
// quorum-merged stream: exact (bit-identical to the materialized
// quorum read), still bounded to one chunk of coordinator memory, and
// its read repair converges the replicas so the next pushdown takes
// the cheap path again.
func (c *Cluster) Aggregate(id core.SensorID, spec fold.Spec) (fold.State, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := c.top()
	replicas := c.readReplicas(t, id)
	required := c.readCL.required(len(replicas))
	if required == 1 {
		var lastErr error
		for _, idx := range replicas {
			st, err := t.members[idx].backend.Aggregate(id, spec)
			if err == nil {
				return st, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("store: all replicas failed: %w", lastErr)
	}
	states := make([]fold.State, len(replicas))
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, idx := range replicas {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			states[i], errs[i] = t.members[idx].backend.Aggregate(id, spec)
		}(i, idx)
	}
	wg.Wait()
	ok := 0
	var lastErr error
	var first fold.State
	agree := true
	for i := range states {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		ok++
		if first == nil {
			first = states[i]
		} else if states[i].Fingerprint() != first.Fingerprint() ||
			states[i].Count() != first.Count() {
			agree = false
		}
	}
	if ok < required {
		return nil, fmt.Errorf("store: read consistency %s not met (%d/%d replicas): %w",
			c.readCL, ok, required, lastErr)
	}
	if agree {
		c.met.aggConsensus.Inc()
		return first, nil
	}
	// Divergence fallback: exact fold over the quorum merge (which
	// repairs the replicas as a side effect).
	c.met.aggFallback.Inc()
	st, err := fold.New(spec)
	if err != nil {
		return nil, err
	}
	rs, err := c.QueryStream(id, spec.From, spec.To)
	if err != nil {
		return nil, err
	}
	if err := FoldStream(st, rs); err != nil {
		return nil, err
	}
	return st, nil
}
