package store

import (
	"fmt"
	"sort"

	"dcdb/internal/core"
	"dcdb/internal/ring"
)

// Topology: the cluster's member set is an immutable snapshot swapped
// atomically, so every operation resolves its replicas against one
// consistent view — a membership change mid-query can never mix two
// rings inside one fan-out. Two placement modes exist behind the same
// snapshot:
//
//   - static: the legacy fixed node list. Placement is the
//     partitioner's modulo scheme over construction order; the member
//     set never changes.
//   - ring: members are keyed by stable identity (their advertised
//     address) on a consistent-hash ring with virtual nodes
//     (internal/ring). Any coordinator that learns the same member set
//     — from gossip, from a seed node, from a config file — derives
//     bit-identical placement, and SetMembers can grow or shrink the
//     ring live.
//
// During a ring change the snapshot carries BOTH rings: prevRing (the
// ring reads trust — every acknowledged write is there) and ring (the
// target). Writes fan to the union of both rings' owners with the
// ack requirement anchored to the read ring, reads resolve against
// prevRing only, and the background rebalance (cluster_rebalance.go)
// streams moved ranges to their new owners before the cutover drops
// prevRing. That ordering is the zero-loss invariant: at every instant
// a QUORUM read intersects every acknowledged QUORUM write.

// member is one topology entry: a backend plus the stable identity the
// ring, the hint queue and the membership layer all key on.
type member struct {
	id      string
	addr    string
	backend NodeBackend
	local   bool // backend is an in-process *Node
}

// MemberInfo names one cluster member for SetMembers /
// NewClusterMembers: a stable ID (conventionally the node's advertised
// address) and the address a backend can be built from.
type MemberInfo struct {
	ID   string
	Addr string
}

// topology is one immutable member-set snapshot.
type topology struct {
	members  []member
	byID     map[string]int
	allLocal bool
	// ring is the target placement; nil selects the static modulo
	// scheme over members order.
	ring *ring.Ring
	// prevRing, when non-nil, marks an in-progress rebalance: reads
	// resolve here, writes fan to the union of both rings.
	prevRing *ring.Ring
}

// readRing returns the ring reads (and ack requirements) anchor to.
func (t *topology) readRing() *ring.Ring {
	if t.prevRing != nil {
		return t.prevRing
	}
	return t.ring
}

// newTopology indexes a member list.
func newTopology(members []member, target, prev *ring.Ring) *topology {
	t := &topology{
		members:  members,
		byID:     make(map[string]int, len(members)),
		allLocal: true,
		ring:     target,
		prevRing: prev,
	}
	for i := range members {
		t.byID[members[i].id] = i
		if !members[i].local {
			t.allLocal = false
		}
	}
	return t
}

// top loads the current topology snapshot. Operations load it once at
// entry and resolve everything against that one view.
func (c *Cluster) top() *topology { return c.topo.Load() }

// readReplicas yields the member indices serving reads for a sensor,
// primary first — static modulo order, or the read ring's clockwise
// walk.
func (c *Cluster) readReplicas(t *topology, id core.SensorID) []int {
	r := t.readRing()
	if r == nil {
		n := len(t.members)
		primary := c.part.NodeFor(id, n)
		rf := c.replication
		if rf > n {
			rf = n
		}
		out := make([]int, 0, rf)
		for i := 0; i < rf; i++ {
			out = append(out, (primary+i)%n)
		}
		return out
	}
	ids := r.ReplicasFor(fnvSID(id), c.replication)
	out := make([]int, 0, len(ids))
	for _, mid := range ids {
		if idx, ok := t.byID[mid]; ok {
			out = append(out, idx)
		}
	}
	return out
}

// writeReplicas yields the indices a write fans to, and readN — how
// many of them (a prefix) form the read set the ack requirement is
// computed over. Outside a transition the two sets coincide. During
// one, the new ring's owners are appended after the read set: they
// receive every write (so post-cutover reads find data written during
// the move) but their acks never count toward the consistency level —
// an acked write must be readable NOW, on the read ring.
func (c *Cluster) writeReplicas(t *topology, id core.SensorID) (idxs []int, readN int) {
	read := c.readReplicas(t, id)
	if t.prevRing == nil || t.ring == nil {
		return read, len(read)
	}
	idxs = read
	seen := make(map[int]struct{}, len(read)+c.replication)
	for _, i := range read {
		seen[i] = struct{}{}
	}
	for _, mid := range t.ring.ReplicasFor(fnvSID(id), c.replication) {
		if idx, ok := t.byID[mid]; ok {
			if _, dup := seen[idx]; !dup {
				seen[idx] = struct{}{}
				idxs = append(idxs, idx)
			}
		}
	}
	return idxs, len(read)
}

// replicasFor yields the node indices holding a sensor, primary first,
// resolved against the current snapshot. (Kept as the package-internal
// convenience for tests and single-shot callers; multi-step operations
// load one snapshot and use readReplicas.)
func (c *Cluster) replicasFor(id core.SensorID) []int {
	return c.readReplicas(c.top(), id)
}

// checkPrefixQuorum applies the conservative prefix-read bound to a
// fan-out's per-member error slots: every replica window the placement
// could assign must retain a quorum of live members. Static placement
// enumerates contiguous windows; ring placement enumerates the read
// ring's distinct successor sets.
func (c *Cluster) checkPrefixQuorum(t *topology, errs []error, firstErr error) error {
	required := c.readCL.required(c.replication)
	if required <= 1 {
		return nil
	}
	if r := t.readRing(); r != nil {
		for _, win := range r.Windows(c.replication) {
			ok := 0
			for _, mid := range win {
				if idx, found := t.byID[mid]; found && errs[idx] == nil {
					ok++
				}
			}
			if ok < required {
				return fmt.Errorf("store: read consistency %s not met for replica set %v (%d/%d): %w",
					c.readCL, win, ok, required, firstErr)
			}
		}
		return nil
	}
	n := len(t.members)
	for p := 0; p < n; p++ {
		ok := 0
		for r := 0; r < c.replication && r < n; r++ {
			if errs[(p+r)%n] == nil {
				ok++
			}
		}
		if ok < required {
			return fmt.Errorf("store: read consistency %s not met for replica set at node %d (%d/%d): %w",
				c.readCL, p, ok, required, firstErr)
		}
	}
	return nil
}

// Members returns the current member identities in snapshot order,
// with transition reporting whether a rebalance is in flight.
func (c *Cluster) Members() (ms []MemberInfo, transition bool) {
	t := c.top()
	ms = make([]MemberInfo, len(t.members))
	for i, m := range t.members {
		ms[i] = MemberInfo{ID: m.id, Addr: m.addr}
	}
	return ms, t.prevRing != nil
}

// SetMembers installs a new member set on a ring cluster. Backends for
// IDs already in the topology are reused; new members are built with
// the cluster's BackendFactory. If placement changes, the swap is a
// transition — reads stay on the old ring, writes fan to the union,
// and a background rebalance streams moved ranges before cutting over
// (see cluster_rebalance.go). Members leaving keep serving reads until
// the cutover; their backends are retired afterwards. A SetMembers
// arriving mid-transition re-targets the rebalance: reads keep
// anchoring to the ring they have trusted all along.
func (c *Cluster) SetMembers(ms []MemberInfo) error {
	if len(ms) == 0 {
		return fmt.Errorf("store: SetMembers needs at least one member")
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("store: cluster closed")
	}
	cur := c.top()
	if cur.ring == nil {
		return fmt.Errorf("store: cluster uses static placement; membership changes need the ring partitioner")
	}
	ids := make([]string, 0, len(ms))
	byID := make(map[string]MemberInfo, len(ms))
	for _, m := range ms {
		if m.ID == "" {
			return fmt.Errorf("store: member with empty ID")
		}
		if _, dup := byID[m.ID]; dup {
			continue
		}
		byID[m.ID] = m
		ids = append(ids, m.ID)
	}
	sort.Strings(ids)
	target := ring.New(ids, cur.ring.VNodes())
	if target.Equal(cur.ring) {
		return nil // placement unchanged; any in-flight rebalance stands
	}

	// The read ring never moves during a transition: a re-target keeps
	// anchoring reads (and the rebalance source) to the ring every
	// acknowledged write reached.
	readRing := cur.readRing()

	// Union member list: everyone on the target ring, plus old members
	// the read ring still needs until cutover.
	var members []member
	taken := make(map[string]struct{}, len(ids))
	addByID := func(id string) error {
		if _, dup := taken[id]; dup {
			return nil
		}
		taken[id] = struct{}{}
		if idx, ok := cur.byID[id]; ok {
			members = append(members, cur.members[idx])
			return nil
		}
		info, ok := byID[id]
		if !ok {
			return fmt.Errorf("store: read ring member %s missing from both topologies", id)
		}
		if c.factory == nil {
			return fmt.Errorf("store: no BackendFactory to build a backend for new member %s", id)
		}
		b := c.factory(info.ID, info.Addr)
		if b == nil {
			return fmt.Errorf("store: BackendFactory returned nil for member %s", id)
		}
		_, local := b.(*Node)
		members = append(members, member{id: info.ID, addr: info.Addr, backend: b, local: local})
		return nil
	}
	for _, id := range ids {
		if err := addByID(id); err != nil {
			return err
		}
	}
	for _, id := range readRing.Members() {
		if err := addByID(id); err != nil {
			return err
		}
	}

	next := newTopology(members, target, readRing)
	c.topo.Store(next)
	c.met.rebTransitions.Inc()
	gen := c.rebGen.Add(1)
	c.rebWG.Add(1)
	go c.rebalance(gen)
	return nil
}

// retire queues backends for closing at Cluster.Close. In-flight
// operations may still hold snapshots pointing at a retired backend,
// so retirement defers the actual Close — the cost is one idle client
// per departed member for the coordinator's lifetime.
func (c *Cluster) retire(bs []NodeBackend) {
	c.retiredMu.Lock()
	c.retired = append(c.retired, bs...)
	c.retiredMu.Unlock()
}
