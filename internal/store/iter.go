package store

import (
	"io"
	"sort"
	"sync"
	"time"

	"dcdb/internal/core"
)

// The pull-based read path: queries no longer materialize whole runs.
// Each source of a sensor's entries — the memtable, a hot (resident)
// run, a cold (evicted, file-backed) run — is wrapped in an iterator,
// and a k-way merge pulls from them in timestamp order, so the memory
// a query holds is O(one block per cold source + the memtable window),
// not O(result). Node.Query drains the merge into a slice for the
// legacy API; Node.QueryStream hands it out in bounded chunks, which
// is what the streaming RPC path forwards frame by frame.

// iterator yields one series' entries in timestamp order.
type iterator interface {
	next() (entry, bool)
	// close releases pooled buffers. The iterator must not be used
	// afterwards.
	close()
}

// entryBufPool recycles the memtable-window copies and bypass decode
// buffers of the query path.
var entryBufPool = sync.Pool{
	New: func() any { s := make([]entry, 0, blockEntries); return &s },
}

func getEntryBuf() *[]entry { return entryBufPool.Get().(*[]entry) }

func putEntryBuf(s *[]entry) {
	if cap(*s) <= 1<<16 {
		*s = (*s)[:0]
		entryBufPool.Put(s)
	}
}

// sliceIter walks an immutable, sorted entry slice. pooled, when set,
// is returned to the buffer pool on close (memtable copies).
type sliceIter struct {
	es     []entry
	pos    int
	pooled *[]entry
}

func (it *sliceIter) next() (entry, bool) {
	if it.pos >= len(it.es) {
		return entry{}, false
	}
	e := it.es[it.pos]
	it.pos++
	return e, true
}

func (it *sliceIter) close() {
	if it.pooled != nil {
		putEntryBuf(it.pooled)
		it.pooled = nil
	}
	it.es = nil
}

// coldIter walks the window-overlapping blocks of a cold run, decoding
// one block at a time. With a cache, decoded blocks are shared
// node-wide and charged against CacheBytes; without one (compaction's
// bypass mode) each block is decoded into a pooled scratch buffer so a
// merge never thrashes the query cache. Entries below cut (deleted) or
// outside [from, to] are skipped. The iterator does not own a file
// reference — the caller retains rf across the iterator's lifetime.
type coldIter struct {
	rf     *runFile
	blocks []blockMeta
	cache  *blockCache
	from   int64
	to     int64

	bi      int
	cur     []entry
	pos     int
	scratch *[]entry // bypass decode buffer (pooled)
	raw     []byte   // raw block read buffer (bypass / cache miss)
	err     error
}

// makeColdIter narrows the run's block index to [from, to] (cut
// already folded into from by the caller). Returned by value so
// callers can arena-allocate.
func makeColdIter(c *coldRun, cache *blockCache, from, to int64) coldIter {
	bs := c.blocks
	lo := sort.Search(len(bs), func(i int) bool { return bs[i].max >= from })
	hi := sort.Search(len(bs), func(i int) bool { return bs[i].min > to })
	if lo > hi {
		hi = lo
	}
	return coldIter{rf: c.rf, blocks: bs[lo:hi], cache: cache, from: from, to: to}
}

func (it *coldIter) loadNext() bool {
	for it.bi < len(it.blocks) {
		m := it.blocks[it.bi]
		it.bi++
		var es []entry
		if it.cache != nil {
			k := blockKey{rf: it.rf, off: m.off}
			if cached, ok := it.cache.get(k); ok {
				es = cached
			} else {
				// Decode into a fresh slice: the cache shares it with
				// every later reader, so it cannot come from a pool.
				es = make([]entry, 0, m.count)
				var err error
				it.raw, err = it.rf.decodeBlockAt(m, it.raw, &es)
				if err != nil {
					it.err = err
					return false
				}
				it.cache.add(k, es)
			}
		} else {
			if it.scratch == nil {
				it.scratch = getBlockScratch()
			}
			*it.scratch = (*it.scratch)[:0]
			var err error
			it.raw, err = it.rf.decodeBlockAt(m, it.raw, it.scratch)
			if err != nil {
				it.err = err
				return false
			}
			es = *it.scratch
		}
		// Narrow to the window; the first and last blocks may straddle.
		lo := sort.Search(len(es), func(i int) bool { return es[i].ts >= it.from })
		hi := sort.Search(len(es), func(i int) bool { return es[i].ts > it.to })
		if lo < hi {
			it.cur, it.pos = es, lo
			it.blocksHi(hi)
			return true
		}
	}
	return false
}

// blocksHi clamps the current block's readable range.
func (it *coldIter) blocksHi(hi int) { it.cur = it.cur[:hi] }

func (it *coldIter) next() (entry, bool) {
	for it.pos >= len(it.cur) {
		if !it.loadNext() {
			return entry{}, false
		}
	}
	e := it.cur[it.pos]
	it.pos++
	return e, true
}

func (it *coldIter) close() {
	if it.scratch != nil {
		putBlockScratch(it.scratch)
		it.scratch = nil
	}
	it.cur = nil
	it.raw = nil
}

// iterSource pairs an iterator with the clamped bounds of what it can
// emit, for the sequential-concatenation fast path, and its run order
// (older sources first; the memtable is newest).
type iterSource struct {
	it       iterator
	min, max int64
}

// mergeCursor is one heap slot of the k-way merge.
type mergeCursor struct {
	it  iterator
	e   entry
	idx int // run order; equal timestamps pop oldest first
}

// entryMerge merges k iterators in timestamp order. When the sources'
// clamped bounds do not overlap (the common case: sensors emit
// monotonically increasing timestamps, so consecutive runs abut), it
// concatenates instead of heapifying. Duplicate timestamps are emitted
// in source order (oldest first), so a consumer keeping the last value
// per timestamp implements newest-wins — exactly the dedup the old
// materializing merge performed.
type entryMerge struct {
	sequential bool
	srcs       []iterSource // sequential mode: drained in order
	si         int
	h          []mergeCursor // heap mode

	closers []iterator
}

func newEntryMerge(srcs []iterSource) *entryMerge {
	m := &entryMerge{srcs: srcs, sequential: true}
	m.closers = make([]iterator, len(srcs))
	for i, s := range srcs {
		m.closers[i] = s.it
	}
	for i := 1; i < len(srcs); i++ {
		if srcs[i-1].max > srcs[i].min {
			m.sequential = false
			break
		}
	}
	if !m.sequential {
		m.h = make([]mergeCursor, 0, len(srcs))
		for i, s := range srcs {
			if e, ok := s.it.next(); ok {
				m.push(mergeCursor{it: s.it, e: e, idx: i})
			}
		}
	}
	return m
}

func (m *entryMerge) less(a, b mergeCursor) bool {
	return a.e.ts < b.e.ts || (a.e.ts == b.e.ts && a.idx < b.idx)
}

func (m *entryMerge) push(c mergeCursor) {
	m.h = append(m.h, c)
	for i := len(m.h) - 1; i > 0; {
		p := (i - 1) / 2
		if !m.less(m.h[i], m.h[p]) {
			break
		}
		m.h[i], m.h[p] = m.h[p], m.h[i]
		i = p
	}
}

func (m *entryMerge) siftDown() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(m.h) && m.less(m.h[l], m.h[s]) {
			s = l
		}
		if r < len(m.h) && m.less(m.h[r], m.h[s]) {
			s = r
		}
		if s == i {
			break
		}
		m.h[i], m.h[s] = m.h[s], m.h[i]
		i = s
	}
}

// nextSlice returns the next contiguous batch of merged entries when
// the merge is sequential (non-overlapping sources): whole hot-run
// windows or decoded cold blocks at a time, with no per-entry dynamic
// dispatch. ok is false when exhausted or when the merge needs the
// heap (caller falls back to next()).
func (m *entryMerge) nextSlice() ([]entry, bool) {
	if !m.sequential {
		return nil, false
	}
	for m.si < len(m.srcs) {
		switch it := m.srcs[m.si].it.(type) {
		case *sliceIter:
			if it.pos < len(it.es) {
				es := it.es[it.pos:]
				it.pos = len(it.es)
				return es, true
			}
			m.si++
		case *coldIter:
			if it.pos < len(it.cur) {
				es := it.cur[it.pos:]
				it.pos = len(it.cur)
				return es, true
			}
			if !it.loadNext() {
				m.si++
			}
		default:
			// Unknown iterator kind: hand the rest to the per-entry
			// path (next() resumes from m.si).
			return nil, false
		}
	}
	return nil, false
}

func (m *entryMerge) next() (entry, bool) {
	if m.sequential {
		for m.si < len(m.srcs) {
			if e, ok := m.srcs[m.si].it.next(); ok {
				return e, true
			}
			m.si++
		}
		return entry{}, false
	}
	if len(m.h) == 0 {
		return entry{}, false
	}
	c := m.h[0]
	if e, ok := c.it.next(); ok {
		m.h[0].e = e
		m.siftDown()
	} else {
		m.h[0] = m.h[len(m.h)-1]
		m.h = m.h[:len(m.h)-1]
		m.siftDown()
	}
	return c.e, true
}

// iterErr surfaces a cold iterator's read failure, if any.
func (m *entryMerge) iterErr() error {
	for _, it := range m.closers {
		if ci, ok := it.(*coldIter); ok && ci.err != nil {
			return ci.err
		}
	}
	return nil
}

func (m *entryMerge) close() {
	for _, it := range m.closers {
		it.close()
	}
	m.closers = nil
	m.h = nil
	m.srcs = nil
}

// sensorIters snapshots one sensor's merge inputs under the shard's
// read lock: hot runs are referenced in place (immutable once flushed),
// cold runs get their file retained and their block index narrowed, and
// the memtable window is copied out (memtable arrays are mutated by
// later inserts, sorts and deletes, so they cannot be read unlocked).
// sizeHint upper-bounds the merged entry count (pre-dedup/expiry) so
// callers can size their output once. The caller must invoke the
// returned release exactly once after draining. Caller holds sh.mu at
// least shared.
func (n *Node) sensorItersLocked(sh *shard, id core.SensorID, from, to int64) (srcs []iterSource, retained []*runFile, sizeHint int) {
	rs := sh.runs[id]
	// First pass over the compact header array: how many sources
	// overlap, so the iterator arena and source list allocate exactly
	// once each at the right size.
	nHot, nCold := 0, 0
	for _, r := range rs {
		if r.min > to || r.max < from {
			continue
		}
		if r.cold != nil {
			nCold++
		} else {
			nHot++
		}
	}
	srcs = make([]iterSource, 0, nHot+nCold+1)
	hotArena := make([]sliceIter, 0, nHot+1)
	var coldArena []coldIter
	if nCold > 0 {
		coldArena = make([]coldIter, 0, nCold)
		retained = make([]*runFile, 0, nCold)
	}
	for _, r := range rs {
		if r.min > to || r.max < from {
			continue
		}
		lo2 := from
		if r.cut > lo2 {
			lo2 = r.cut
		}
		if r.cold != nil {
			coldArena = append(coldArena, makeColdIter(r.cold, n.cache, lo2, to))
			it := &coldArena[len(coldArena)-1]
			if len(it.blocks) == 0 {
				coldArena = coldArena[:len(coldArena)-1]
				continue
			}
			r.cold.rf.retain()
			retained = append(retained, r.cold.rf)
			min, max := it.blocks[0].min, it.blocks[len(it.blocks)-1].max
			if min < lo2 {
				min = lo2
			}
			if max > to {
				max = to
			}
			for _, m := range it.blocks {
				sizeHint += int(m.count)
			}
			srcs = append(srcs, iterSource{it: it, min: min, max: max})
			continue
		}
		es := r.es
		lo := sort.Search(len(es), func(i int) bool { return es[i].ts >= lo2 })
		hi := sort.Search(len(es), func(i int) bool { return es[i].ts > to })
		if lo < hi {
			hotArena = append(hotArena, sliceIter{es: es[lo:hi]})
			srcs = append(srcs, iterSource{it: &hotArena[len(hotArena)-1], min: es[lo].ts, max: es[hi-1].ts})
			sizeHint += hi - lo
		}
	}
	if s, ok := sh.mem[id]; ok && len(s.entries) > 0 {
		buf := getEntryBuf()
		if s.sorted {
			es := s.entries
			lo := sort.Search(len(es), func(i int) bool { return es[i].ts >= from })
			hi := sort.Search(len(es), func(i int) bool { return es[i].ts > to })
			*buf = append((*buf)[:0], es[lo:hi]...)
		} else {
			*buf = append((*buf)[:0], s.entries...)
			sort.SliceStable(*buf, func(i, j int) bool { return (*buf)[i].ts < (*buf)[j].ts })
			es := *buf
			lo := sort.Search(len(es), func(i int) bool { return es[i].ts >= from })
			hi := sort.Search(len(es), func(i int) bool { return es[i].ts > to })
			// Compact the window to the buffer's front so the pooled
			// allocation keeps its full capacity for reuse.
			copy(es, es[lo:hi])
			*buf = es[:hi-lo]
		}
		if len(*buf) > 0 {
			es := *buf
			hotArena = append(hotArena, sliceIter{es: es, pooled: buf})
			srcs = append(srcs, iterSource{it: &hotArena[len(hotArena)-1], min: es[0].ts, max: es[len(es)-1].ts})
			sizeHint += len(es)
		} else {
			putEntryBuf(buf)
		}
	}
	return srcs, retained, sizeHint
}

// sensorMerge builds the merged, deduplicating cursor over one sensor.
// The release closure closes iterators and drops file references; it
// must be called exactly once.
func (n *Node) sensorMerge(id core.SensorID, from, to int64) (*entryMerge, func(), int) {
	sh := n.shardOf(id)
	sh.mu.RLock()
	srcs, retained, sizeHint := n.sensorItersLocked(sh, id, from, to)
	sh.mu.RUnlock()
	m := newEntryMerge(srcs)
	release := func() {
		m.close()
		for _, rf := range retained {
			rf.release()
		}
	}
	return m, release, sizeHint
}

// ReadingStream is a pull-based stream of one sensor's query result in
// timestamp order. Next returns the next chunk, or io.EOF when the
// stream is exhausted; the returned slice is only valid until the next
// call. Close releases the stream's resources and may be called at any
// point (cancel-on-close); it is idempotent.
type ReadingStream interface {
	Next() ([]core.Reading, error)
	Close() error
}

// KeyedReadingStream streams a prefix query: chunks of one sensor's
// readings at a time, sensors in ascending SID order. A sensor's
// readings may span several consecutive chunks (same id repeated).
// Next returns io.EOF when done; the slice is valid until the next
// call.
type KeyedReadingStream interface {
	Next() (core.SensorID, []core.Reading, error)
	Close() error
}

// StreamChunkReadings is the number of readings a stream yields per
// Next call (and the server-side RPC chunk size): 4096 readings ≈ 64
// KB on the wire, small enough that neither side ever buffers a
// meaningful fraction of a long-retention result.
const StreamChunkReadings = 4096

// nodeStream adapts an entryMerge to the chunked ReadingStream API,
// applying expiry filtering and highest-version-wins timestamp dedup
// (equal versions: newest source wins, which is the legacy behaviour
// when every entry is unversioned). The held-back pending reading
// guarantees a duplicate timestamp can never straddle a chunk boundary
// half-resolved.
type nodeStream struct {
	m       *entryMerge
	release func()
	now     int64
	buf     []core.Reading
	pending core.Reading
	pendVer uint64
	havePnd bool
	done    bool
}

func newNodeStream(m *entryMerge, release func(), now int64) *nodeStream {
	return &nodeStream{m: m, release: release, now: now}
}

func (s *nodeStream) Next() ([]core.Reading, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.buf == nil {
		s.buf = make([]core.Reading, 0, StreamChunkReadings)
	}
	s.buf = s.buf[:0]
	for len(s.buf) < StreamChunkReadings {
		e, ok := s.m.next()
		if !ok {
			if err := s.m.iterErr(); err != nil {
				s.close()
				return nil, err
			}
			if s.havePnd {
				s.buf = append(s.buf, s.pending)
				s.havePnd = false
			}
			s.close()
			if len(s.buf) == 0 {
				return nil, io.EOF
			}
			return s.buf, nil
		}
		if e.expire != 0 && e.expire <= s.now {
			continue
		}
		if s.havePnd && s.pending.Timestamp == e.ts {
			// Highest version wins; sources emit oldest-first, so >=
			// keeps newest-source-wins among equal versions.
			if e.ver >= s.pendVer {
				s.pending.Value = e.val
				s.pendVer = e.ver
			}
			continue
		}
		if s.havePnd {
			s.buf = append(s.buf, s.pending)
		}
		s.pending = core.Reading{Timestamp: e.ts, Value: e.val}
		s.pendVer = e.ver
		s.havePnd = true
	}
	return s.buf, nil
}

func (s *nodeStream) close() {
	if !s.done {
		s.done = true
		if s.release != nil {
			s.release()
			s.release = nil
		}
	}
}

func (s *nodeStream) Close() error {
	s.close()
	return nil
}

// QueryStream implements NodeBackend: the streaming form of Query.
// Chunks are produced on demand from the pull-based merge, so the
// node's memory per open stream is one chunk plus one decoded block
// per cold source — independent of the result size.
func (n *Node) QueryStream(id core.SensorID, from, to int64) (ReadingStream, error) {
	if n.down.Load() {
		return nil, ErrNodeDown
	}
	n.shardOf(id).queries.Add(1)
	m, release, _ := n.sensorMerge(id, from, to)
	return newNodeStream(m, release, time.Now().UnixNano()), nil
}

// queryAll drains one sensor's merge into a slice (the legacy
// materializing API). The output is sized once from the snapshot's
// entry-count hint, and sequential merges (the monotonic-sensor common
// case) drain whole run windows and decoded blocks at a time instead
// of paying a dynamic dispatch per entry.
func (n *Node) queryAll(id core.SensorID, from, to, now int64) ([]core.Reading, error) {
	m, release, sizeHint := n.sensorMerge(id, from, to)
	defer release()
	if sizeHint == 0 {
		return nil, nil
	}
	out := make([]core.Reading, 0, sizeHint)
	var pending core.Reading
	var pendVer uint64
	have := false
	emit := func(e entry) {
		if e.expire != 0 && e.expire <= now {
			return
		}
		if have && pending.Timestamp == e.ts {
			// Highest version wins; equal versions keep newest-source-
			// wins (sources arrive oldest first).
			if e.ver >= pendVer {
				pending.Value = e.val
				pendVer = e.ver
			}
			return
		}
		if have {
			out = append(out, pending)
		}
		pending = core.Reading{Timestamp: e.ts, Value: e.val}
		pendVer = e.ver
		have = true
	}
	for {
		es, ok := m.nextSlice()
		if !ok {
			break
		}
		for _, e := range es {
			emit(e)
		}
	}
	for {
		e, ok := m.next()
		if !ok {
			break
		}
		emit(e)
	}
	if err := m.iterErr(); err != nil {
		return nil, err
	}
	if have {
		out = append(out, pending)
	}
	return out, nil
}

// QueryVersioned implements NodeBackend: like Query, but each winning
// reading keeps the version and expiry of the write that produced it —
// the transfer format anti-entropy repair re-inserts, so re-delivery
// preserves the original conflict-resolution order.
func (n *Node) QueryVersioned(id core.SensorID, from, to int64) ([]VersionedReading, error) {
	if n.down.Load() {
		return nil, ErrNodeDown
	}
	n.shardOf(id).queries.Add(1)
	now := time.Now().UnixNano()
	m, release, sizeHint := n.sensorMerge(id, from, to)
	defer release()
	if sizeHint == 0 {
		return nil, nil
	}
	out := make([]VersionedReading, 0, sizeHint)
	var pending VersionedReading
	have := false
	emit := func(e entry) {
		if e.expire != 0 && e.expire <= now {
			return
		}
		if have && pending.Timestamp == e.ts {
			if e.ver >= pending.Version {
				pending.Value, pending.Version, pending.Expire = e.val, e.ver, e.expire
			}
			return
		}
		if have {
			out = append(out, pending)
		}
		pending = VersionedReading{Timestamp: e.ts, Value: e.val, Version: e.ver, Expire: e.expire}
		have = true
	}
	for {
		es, ok := m.nextSlice()
		if !ok {
			break
		}
		for _, e := range es {
			emit(e)
		}
	}
	for {
		e, ok := m.next()
		if !ok {
			break
		}
		emit(e)
	}
	if err := m.iterErr(); err != nil {
		return nil, err
	}
	if have {
		out = append(out, pending)
	}
	return out, nil
}

// prefixSIDs lists the node's SIDs inside the prefix subtree, in
// ascending SID order (the order every keyed stream promises).
func (n *Node) prefixSIDs(prefix core.SensorID, depth int) []core.SensorID {
	lo, hi, bounded := prefixRange(prefix, depth)
	var out []core.SensorID
	for i := range n.shards {
		sh := &n.shards[i]
		idx := sh.snapshotIndex()
		start := sort.Search(len(idx), func(i int) bool { return idx[i].Compare(lo) >= 0 })
		end := len(idx)
		if bounded {
			end = sort.Search(len(idx), func(i int) bool { return idx[i].Compare(hi) >= 0 })
		}
		out = append(out, idx[start:end]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// prefixStream walks the subtree's sensors one at a time, streaming
// each sensor's merge in chunks. Only one sensor's merge is open at any
// moment.
type prefixStream struct {
	n        *Node
	ids      []core.SensorID
	from, to int64
	now      int64

	cur  *nodeStream
	curI int
	done bool
}

func (s *prefixStream) Next() (core.SensorID, []core.Reading, error) {
	for {
		if s.done {
			return core.SensorID{}, nil, io.EOF
		}
		if s.cur == nil {
			if s.curI >= len(s.ids) {
				s.done = true
				return core.SensorID{}, nil, io.EOF
			}
			m, release, _ := s.n.sensorMerge(s.ids[s.curI], s.from, s.to)
			s.cur = newNodeStream(m, release, s.now)
		}
		chunk, err := s.cur.Next()
		if err == io.EOF {
			s.cur = nil
			s.curI++
			continue
		}
		if err != nil {
			s.Close()
			return core.SensorID{}, nil, err
		}
		return s.ids[s.curI], chunk, nil
	}
}

func (s *prefixStream) Close() error {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	s.done = true
	return nil
}

// QueryPrefixStream implements NodeBackend: the streaming form of
// QueryPrefix. Sensors arrive in ascending SID order, each sensor's
// readings chunked in timestamp order.
func (n *Node) QueryPrefixStream(prefix core.SensorID, depth int, from, to int64) (KeyedReadingStream, error) {
	if n.down.Load() {
		return nil, ErrNodeDown
	}
	if prefix.Prefix(depth) != prefix {
		return &prefixStream{done: true}, nil
	}
	n.prefixQueries.Add(1)
	return &prefixStream{
		n: n, ids: n.prefixSIDs(prefix, depth), from: from, to: to,
		now: time.Now().UnixNano(),
	}, nil
}
