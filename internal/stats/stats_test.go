package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	if m, err := Median([]float64{3, 1, 2}); err != nil || m != 2 {
		t.Errorf("odd median = %v, %v", m, err)
	}
	if m, err := Median([]float64{4, 1, 2, 3}); err != nil || m != 2.5 {
		t.Errorf("even median = %v, %v", m, err)
	}
	if _, err := Median(nil); err == nil {
		t.Error("empty median accepted")
	}
	// Median is robust to one outlier.
	if m, _ := Median([]float64{1, 1, 1, 1, 1000}); m != 1 {
		t.Errorf("outlier median = %v", m)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("stddev = %v", sd)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single stddev")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 || f.R2 < 0.999999 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.At(10)-21) > 1e-9 {
		t.Errorf("At(10) = %v", f.At(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 5+0.25*x+rng.NormFloat64()*0.5)
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-0.25) > 0.01 || f.R2 < 0.95 {
		t.Fatalf("noisy fit = %+v", f)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestKDEUnimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = 3 + rng.NormFloat64()*0.5
	}
	k, err := NewKDE(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Error("bandwidth not positive")
	}
	// Density peaks near 3.
	if k.Density(3) < k.Density(1) || k.Density(3) < k.Density(5) {
		t.Error("density does not peak at the mean")
	}
	modes := k.Modes(0, 6, 200)
	if len(modes) != 1 || math.Abs(modes[0]-3) > 0.3 {
		t.Errorf("modes = %v", modes)
	}
	// PDF integrates to ~1 over a wide range.
	xs, ys := k.Curve(0, 6, 600)
	var integral float64
	for i := 1; i < len(xs); i++ {
		integral += (ys[i] + ys[i-1]) / 2 * (xs[i] - xs[i-1])
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("PDF integral = %v", integral)
	}
}

func TestKDEBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sample []float64
	for i := 0; i < 1500; i++ {
		if i%2 == 0 {
			sample = append(sample, 1+rng.NormFloat64()*0.2)
		} else {
			sample = append(sample, 3+rng.NormFloat64()*0.2)
		}
	}
	k, _ := NewKDE(sample, 0.15)
	modes := k.Modes(0, 4, 300)
	if len(modes) != 2 {
		t.Fatalf("bimodal sample has %d modes: %v", len(modes), modes)
	}
}

func TestKDEErrors(t *testing.T) {
	if _, err := NewKDE(nil, 0); err == nil {
		t.Error("empty KDE accepted")
	}
	k, err := NewKDE([]float64{5, 5, 5}, 0)
	if err != nil || k.Bandwidth() <= 0 {
		t.Errorf("constant sample: %v, bw %v", err, k.Bandwidth())
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.1, 0.2, 0.9, 1.5, -3, 99}, 0, 1, 2)
	if bins[0] != 3 || bins[1] != 3 {
		t.Errorf("bins = %v", bins)
	}
	if Histogram(nil, 0, 0, 0) != nil {
		t.Error("n=0 should be nil")
	}
	z := Histogram([]float64{1}, 5, 5, 3)
	if z[0] != 0 && z[1] != 0 {
		t.Error("degenerate range should count nothing")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p, _ := Percentile(vals, 50); p != 5 {
		t.Errorf("p50 = %v", p)
	}
	if p, _ := Percentile(vals, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p, _ := Percentile(vals, 100); p != 10 {
		t.Errorf("p100 = %v", p)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile accepted")
	}
}

// Property: the fitted line passes through the centroid.
func TestFitCentroidQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return true
		}
		return math.Abs(fit.At(Mean(xs))-Mean(ys)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
