// Package stats provides the statistical machinery of the evaluation:
// median runtimes over repeated benchmark runs (§6.1), least-squares
// linear regression for the CPU-load scaling model of Figure 7 and
// Equation 1, and Gaussian kernel density estimation for the
// instructions-per-Watt probability density functions of Figure 10.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of the values (the paper uses median
// runtimes to absorb outliers and performance fluctuations, §6.1).
func Median(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("stats: median of empty slice")
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// StdDev returns the sample standard deviation.
func StdDev(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	m := Mean(vals)
	var ss float64
	for _, v := range vals {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(vals)-1))
}

// LinearFit is a least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitLinear fits a least-squares line through (x, y) pairs.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: x/y length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate x values")
	}
	f := LinearFit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	// R².
	my := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := f.Intercept + f.Slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else {
		f.R2 = 1
	}
	return f, nil
}

// At evaluates the fitted line.
func (f LinearFit) At(x float64) float64 { return f.Intercept + f.Slope*x }

// KDE is a Gaussian kernel density estimator over a sample.
type KDE struct {
	sample    []float64
	bandwidth float64
}

// NewKDE builds an estimator. bandwidth <= 0 selects Silverman's rule
// of thumb.
func NewKDE(sample []float64, bandwidth float64) (*KDE, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: KDE of empty sample")
	}
	if bandwidth <= 0 {
		sd := StdDev(sample)
		if sd == 0 {
			sd = 1e-9
		}
		bandwidth = 1.06 * sd * math.Pow(float64(len(sample)), -0.2)
	}
	return &KDE{sample: append([]float64(nil), sample...), bandwidth: bandwidth}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density evaluates the estimated PDF at x.
func (k *KDE) Density(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, s := range k.sample {
		u := (x - s) / k.bandwidth
		sum += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return sum / (float64(len(k.sample)) * k.bandwidth)
}

// Curve samples the PDF at n evenly spaced points over [lo, hi].
func (k *KDE) Curve(lo, hi float64, n int) ([]float64, []float64) {
	if n < 2 {
		n = 2
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ys[i] = k.Density(xs[i])
	}
	return xs, ys
}

// Modes finds local maxima of the estimated PDF sampled at n points,
// used to check the multi-modality of application distributions.
func (k *KDE) Modes(lo, hi float64, n int) []float64 {
	xs, ys := k.Curve(lo, hi, n)
	var modes []float64
	for i := 1; i < len(ys)-1; i++ {
		if ys[i] > ys[i-1] && ys[i] >= ys[i+1] {
			modes = append(modes, xs[i])
		}
	}
	return modes
}

// Histogram counts values into n equal bins over [lo, hi]; values
// outside the range are clamped into the edge bins.
func Histogram(vals []float64, lo, hi float64, n int) []int {
	if n <= 0 {
		return nil
	}
	bins := make([]int, n)
	if hi <= lo {
		return bins
	}
	w := (hi - lo) / float64(n)
	for _, v := range vals {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(vals []float64, p float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0], nil
	}
	if p >= 100 {
		return s[len(s)-1], nil
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank], nil
}
