// Package units provides the unit registry and automatic conversion used
// by virtual sensors. When a virtual-sensor expression combines sensors
// recorded in different units (paper §3.2: "the units of the underlying
// physical sensors are converted automatically"), every operand is
// normalised to the base unit of its dimension before evaluation.
//
// A unit converts to base as base = value*Factor + Offset; the offset is
// only non-zero for temperatures (°C/°F to K).
package units

import (
	"fmt"
	"strings"
)

// Dimension identifies a physical dimension; units convert only within
// their dimension.
type Dimension string

// The dimensions known to DCDB's sensor space.
const (
	Power       Dimension = "power"       // base W
	Energy      Dimension = "energy"      // base J
	Temperature Dimension = "temperature" // base K
	Time        Dimension = "time"        // base s
	Frequency   Dimension = "frequency"   // base Hz
	Data        Dimension = "data"        // base B
	DataRate    Dimension = "datarate"    // base B/s
	FlowRate    Dimension = "flowrate"    // base m3/s
	Fraction    Dimension = "fraction"    // base ratio (1.0 = 100 %)
	Count       Dimension = "count"       // base events
	Voltage     Dimension = "voltage"     // base V
	Current     Dimension = "current"     // base A
	None        Dimension = ""            // dimensionless / unknown
)

// Unit describes one entry of the registry.
type Unit struct {
	Name   string
	Dim    Dimension
	Factor float64
	Offset float64
}

var registry = map[string]Unit{}

func register(name string, dim Dimension, factor, offset float64) {
	registry[name] = Unit{Name: name, Dim: dim, Factor: factor, Offset: offset}
}

func init() {
	// Power.
	register("W", Power, 1, 0)
	register("mW", Power, 1e-3, 0)
	register("uW", Power, 1e-6, 0)
	register("kW", Power, 1e3, 0)
	register("MW", Power, 1e6, 0)
	// Energy.
	register("J", Energy, 1, 0)
	register("mJ", Energy, 1e-3, 0)
	register("uJ", Energy, 1e-6, 0)
	register("kJ", Energy, 1e3, 0)
	register("Wh", Energy, 3600, 0)
	register("kWh", Energy, 3.6e6, 0)
	// Temperature.
	register("K", Temperature, 1, 0)
	register("C", Temperature, 1, 273.15)
	register("degC", Temperature, 1, 273.15)
	register("mC", Temperature, 1e-3, 273.15) // millidegrees C, as in sysfs hwmon
	register("F", Temperature, 5.0/9.0, 255.3722222222222)
	// Time.
	register("s", Time, 1, 0)
	register("ms", Time, 1e-3, 0)
	register("us", Time, 1e-6, 0)
	register("ns", Time, 1e-9, 0)
	register("min", Time, 60, 0)
	register("h", Time, 3600, 0)
	// Frequency.
	register("Hz", Frequency, 1, 0)
	register("kHz", Frequency, 1e3, 0)
	register("MHz", Frequency, 1e6, 0)
	register("GHz", Frequency, 1e9, 0)
	// Data.
	register("B", Data, 1, 0)
	register("kB", Data, 1e3, 0)
	register("MB", Data, 1e6, 0)
	register("GB", Data, 1e9, 0)
	register("KiB", Data, 1024, 0)
	register("MiB", Data, 1024*1024, 0)
	register("GiB", Data, 1024*1024*1024, 0)
	// Data rate.
	register("B/s", DataRate, 1, 0)
	register("kB/s", DataRate, 1e3, 0)
	register("MB/s", DataRate, 1e6, 0)
	register("GB/s", DataRate, 1e9, 0)
	// Flow rate.
	register("m3/s", FlowRate, 1, 0)
	register("m3/h", FlowRate, 1.0/3600, 0)
	register("l/min", FlowRate, 1e-3/60, 0)
	register("l/s", FlowRate, 1e-3, 0)
	// Fraction.
	register("ratio", Fraction, 1, 0)
	register("%", Fraction, 1e-2, 0)
	register("percent", Fraction, 1e-2, 0)
	// Counters.
	register("events", Count, 1, 0)
	register("instructions", Count, 1, 0)
	register("packets", Count, 1, 0)
	// Electrical.
	register("V", Voltage, 1, 0)
	register("mV", Voltage, 1e-3, 0)
	register("A", Current, 1, 0)
	register("mA", Current, 1e-3, 0)
}

// Lookup returns the unit with the given name. Exact (case-sensitive)
// matches win; otherwise a case-insensitive match is accepted when it is
// unambiguous (so "w" finds W, but "mw" stays ambiguous between mW and
// MW and is rejected).
func Lookup(name string) (Unit, bool) {
	if u, ok := registry[name]; ok {
		return u, true
	}
	var found Unit
	n := 0
	for k, u := range registry {
		if strings.EqualFold(k, name) {
			found = u
			n++
		}
	}
	if n == 1 {
		return found, true
	}
	return Unit{}, false
}

// DimensionOf returns the dimension of a unit name; unknown names yield
// None.
func DimensionOf(name string) Dimension {
	if u, ok := Lookup(name); ok {
		return u.Dim
	}
	return None
}

// Compatible reports whether values can be converted between the two
// units. Unknown or empty unit names are compatible with anything (they
// pass through unconverted), matching DCDB's permissive treatment of
// unitless sensors.
func Compatible(from, to string) bool {
	fu, fok := Lookup(from)
	tu, tok := Lookup(to)
	if !fok || !tok {
		return true
	}
	return fu.Dim == tu.Dim
}

// Convert converts a value between units of the same dimension. When
// either unit is unknown or empty the value passes through unchanged.
func Convert(value float64, from, to string) (float64, error) {
	if strings.EqualFold(from, to) {
		return value, nil
	}
	fu, fok := Lookup(from)
	tu, tok := Lookup(to)
	if !fok || !tok {
		return value, nil
	}
	if fu.Dim != tu.Dim {
		return 0, fmt.Errorf("units: cannot convert %s (%s) to %s (%s)", from, fu.Dim, to, tu.Dim)
	}
	base := value*fu.Factor + fu.Offset
	return (base - tu.Offset) / tu.Factor, nil
}

// ToBase converts a value of the named unit into its dimension's base
// unit. Unknown units pass through.
func ToBase(value float64, name string) float64 {
	u, ok := Lookup(name)
	if !ok {
		return value
	}
	return value*u.Factor + u.Offset
}

// BaseName returns the canonical base-unit name of the unit's dimension
// ("" when unknown).
func BaseName(name string) string {
	switch DimensionOf(name) {
	case Power:
		return "W"
	case Energy:
		return "J"
	case Temperature:
		return "K"
	case Time:
		return "s"
	case Frequency:
		return "Hz"
	case Data:
		return "B"
	case DataRate:
		return "B/s"
	case FlowRate:
		return "m3/s"
	case Fraction:
		return "ratio"
	case Count:
		return "events"
	case Voltage:
		return "V"
	case Current:
		return "A"
	}
	return ""
}
