package units

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestConvertPower(t *testing.T) {
	cases := []struct {
		v        float64
		from, to string
		want     float64
	}{
		{1500, "mW", "W", 1.5},
		{1.5, "kW", "W", 1500},
		{2, "MW", "kW", 2000},
		{1, "W", "uW", 1e6},
	}
	for _, c := range cases {
		got, err := Convert(c.v, c.from, c.to)
		if err != nil || !approx(got, c.want) {
			t.Errorf("Convert(%v, %s, %s) = %v, %v; want %v", c.v, c.from, c.to, got, err, c.want)
		}
	}
}

func TestConvertTemperature(t *testing.T) {
	got, err := Convert(25, "C", "K")
	if err != nil || !approx(got, 298.15) {
		t.Errorf("25C = %vK, %v", got, err)
	}
	got, err = Convert(298.15, "K", "C")
	if err != nil || !approx(got, 25) {
		t.Errorf("298.15K = %vC, %v", got, err)
	}
	got, err = Convert(32, "F", "C")
	if err != nil || !approx(got, 0) {
		t.Errorf("32F = %vC, %v", got, err)
	}
	got, err = Convert(45000, "mC", "C")
	if err != nil || !approx(got, 45) {
		t.Errorf("45000mC = %vC, %v", got, err)
	}
}

func TestConvertEnergyAndFlow(t *testing.T) {
	got, _ := Convert(1, "kWh", "J")
	if !approx(got, 3.6e6) {
		t.Errorf("1 kWh = %v J", got)
	}
	got, _ = Convert(3600, "m3/h", "m3/s")
	if !approx(got, 1) {
		t.Errorf("3600 m3/h = %v m3/s", got)
	}
	got, _ = Convert(60, "l/min", "l/s")
	if !approx(got, 1) {
		t.Errorf("60 l/min = %v l/s", got)
	}
}

func TestConvertFraction(t *testing.T) {
	got, _ := Convert(90, "%", "ratio")
	if !approx(got, 0.9) {
		t.Errorf("90%% = %v", got)
	}
}

func TestConvertIncompatible(t *testing.T) {
	if _, err := Convert(1, "W", "K"); err == nil {
		t.Error("W->K accepted")
	}
	if !Compatible("W", "mW") || Compatible("W", "K") {
		t.Error("Compatible wrong")
	}
	// Unknown units pass through.
	got, err := Convert(7, "frobs", "W")
	if err != nil || got != 7 {
		t.Errorf("unknown unit: %v, %v", got, err)
	}
	if !Compatible("frobs", "W") {
		t.Error("unknown should be compatible")
	}
}

func TestConvertIdentityAndCase(t *testing.T) {
	got, err := Convert(5, "W", "w")
	if err != nil || got != 5 {
		t.Errorf("case-insensitive identity: %v, %v", got, err)
	}
	if _, ok := Lookup("KW"); !ok {
		t.Error("case-insensitive lookup failed")
	}
}

func TestToBaseAndBaseName(t *testing.T) {
	if got := ToBase(2, "kW"); !approx(got, 2000) {
		t.Errorf("ToBase(2, kW) = %v", got)
	}
	if got := ToBase(3, "unknown"); got != 3 {
		t.Errorf("ToBase unknown = %v", got)
	}
	pairs := map[string]string{
		"mW": "W", "kWh": "J", "C": "K", "ms": "s", "GHz": "Hz",
		"MiB": "B", "GB/s": "B/s", "l/min": "m3/s", "%": "ratio",
		"instructions": "events", "mV": "V", "mA": "A", "zz": "",
	}
	for in, want := range pairs {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%s) = %q, want %q", in, got, want)
		}
	}
}

func TestDimensionOf(t *testing.T) {
	if DimensionOf("kW") != Power || DimensionOf("xyzzy") != None {
		t.Error("DimensionOf wrong")
	}
}

func TestConvertRoundtripQuick(t *testing.T) {
	pairs := [][2]string{{"mW", "kW"}, {"C", "F"}, {"ms", "h"}, {"KiB", "GB"}, {"l/min", "m3/h"}}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		for _, p := range pairs {
			fwd, err1 := Convert(v, p[0], p[1])
			back, err2 := Convert(fwd, p[1], p[0])
			if err1 != nil || err2 != nil || !approx(back, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
