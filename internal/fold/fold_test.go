package fold

import (
	"math"
	"math/rand"
	"testing"

	"dcdb/internal/core"
)

// genSeries builds a sorted series with duplicate timestamps and
// non-finite values sprinkled in, the adversarial shape for streaming
// folds.
func genSeries(rng *rand.Rand, n int) []core.Reading {
	rs := make([]core.Reading, 0, n)
	ts := int64(1000)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(6) != 0 {
			ts += int64(rng.Intn(5000)) + 1
		} // else: duplicate timestamp
		v := rng.NormFloat64() * 100
		switch rng.Intn(12) {
		case 0:
			v = math.NaN()
		case 1:
			v = math.Inf(1 - 2*rng.Intn(2))
		}
		rs = append(rs, core.Reading{Timestamp: ts, Value: v})
	}
	return rs
}

// chunks splits rs at random boundaries (empty chunks included).
func chunks(rng *rand.Rand, rs []core.Reading) [][]core.Reading {
	var out [][]core.Reading
	for i := 0; i < len(rs); {
		j := i + rng.Intn(len(rs)-i+1)
		out = append(out, rs[i:j])
		i = j
	}
	out = append(out, nil)
	return out
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func specsFor(rs []core.Reading) []Spec {
	from, to := int64(0), int64(1)
	if len(rs) > 0 {
		from, to = rs[0].Timestamp, rs[len(rs)-1].Timestamp
	}
	return []Spec{
		{Op: OpSummary},
		{Op: OpIntegral},
		{Op: OpDownsample, From: from, To: to, Buckets: 7},
		{Op: OpDownsample, From: from, To: to, Buckets: 1000},
	}
}

func foldAll(t *testing.T, spec Spec, cs [][]core.Reading) State {
	t.Helper()
	st, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		st.Add(c)
	}
	return st
}

// statesIdentical compares two states bit-for-bit through their
// encodings (which carry every field, fingerprints included).
func statesIdentical(t *testing.T, a, b State) bool {
	t.Helper()
	return string(Append(nil, a)) == string(Append(nil, b))
}

// TestChunkingInvariance is the core single-pass property: folding a
// series chunk by chunk — whatever the chunk boundaries, including
// boundaries splitting duplicate timestamps — is bit-identical to
// folding it in one call.
func TestChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		rs := genSeries(rng, rng.Intn(300))
		for _, spec := range specsFor(rs) {
			whole := foldAll(t, spec, [][]core.Reading{rs})
			chunked := foldAll(t, spec, chunks(rng, rs))
			if !statesIdentical(t, whole, chunked) {
				t.Fatalf("trial %d %s: chunked fold differs from single-pass", trial, spec.Op)
			}
		}
	}
}

// TestDerivativeChunkingInvariance: the derivative emits the same
// points under any chunking.
func TestDerivativeChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		rs := genSeries(rng, rng.Intn(300))
		var whole Derivative
		want := whole.Add(nil, rs)
		var chunked Derivative
		var got []core.Reading
		for _, c := range chunks(rng, rs) {
			got = chunked.Add(got, c)
		}
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d derivative points", trial, len(want), len(got))
		}
		for i := range want {
			if want[i].Timestamp != got[i].Timestamp || !bitsEqual(want[i].Value, got[i].Value) {
				t.Fatalf("trial %d point %d: %v vs %v", trial, i, want[i], got[i])
			}
		}
		if whole.Count() != chunked.Count() || whole.Skipped() != chunked.Skipped() {
			t.Fatalf("trial %d: counters differ", trial)
		}
	}
}

// TestMergeAdjacent: a fold over [a, m] absorbing a fold over (m, b]
// equals the fold of the whole series — exactly for counts, extrema
// and boundaries; within float tolerance for running sums (merge
// reassociates the additions).
func TestMergeAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		rs := genSeries(rng, rng.Intn(300)+2)
		cut := rng.Intn(len(rs))
		// Respect adjacency: both halves fold disjoint sorted ranges.
		for cut > 0 && cut < len(rs) && rs[cut].Timestamp == rs[cut-1].Timestamp {
			cut++
		}
		for _, spec := range specsFor(rs) {
			whole := foldAll(t, spec, [][]core.Reading{rs})
			left := foldAll(t, spec, [][]core.Reading{rs[:cut]})
			right := foldAll(t, spec, [][]core.Reading{rs[cut:]})
			if err := MergeAdjacent(left, right); err != nil {
				t.Fatalf("trial %d %s: merge: %v", trial, spec.Op, err)
			}
			if left.Count() != whole.Count() || left.Skipped() != whole.Skipped() {
				t.Fatalf("trial %d %s: merged counters %d/%d, want %d/%d",
					trial, spec.Op, left.Count(), left.Skipped(), whole.Count(), whole.Skipped())
			}
			switch w := whole.(type) {
			case *Summary:
				m := left.(*Summary)
				if !bitsEqual(m.Min, w.Min) || !bitsEqual(m.Max, w.Max) ||
					m.First != w.First || m.Last != w.Last {
					t.Fatalf("trial %d summary: merged %+v, want %+v", trial, m, w)
				}
				if !closeEnough(m.Sum, w.Sum) {
					t.Fatalf("trial %d summary: merged sum %g, want %g", trial, m.Sum, w.Sum)
				}
			case *Integral:
				m := left.(*Integral)
				if m.First != w.First || m.Last != w.Last {
					t.Fatalf("trial %d integral: merged boundaries differ", trial)
				}
				if !closeEnough(m.Sum, w.Sum) {
					t.Fatalf("trial %d integral: merged %g, want %g", trial, m.Sum, w.Sum)
				}
			case *Downsample:
				m := left.(*Downsample)
				mr, wr := m.Result(), w.Result()
				if len(mr) != len(wr) {
					t.Fatalf("trial %d downsample: %d vs %d points", trial, len(mr), len(wr))
				}
				for i := range wr {
					if mr[i].Timestamp != wr[i].Timestamp || !closeEnough(mr[i].Value, wr[i].Value) {
						t.Fatalf("trial %d downsample point %d: %v vs %v", trial, i, mr[i], wr[i])
					}
				}
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	if bitsEqual(a, b) {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestMergeGridMismatch: downsample states over different grids must
// refuse to merge (their buckets do not line up).
func TestMergeGridMismatch(t *testing.T) {
	a := NewDownsample(0, 100, 10)
	b := NewDownsample(0, 200, 10)
	if err := MergeAdjacent(a, b); err == nil {
		t.Fatal("merging downsample states with different grids succeeded")
	}
	if err := MergeAdjacent(NewSummary(), NewIntegral()); err == nil {
		t.Fatal("merging a summary with an integral succeeded")
	}
}

// TestCodecRoundtrip: Append/Decode preserve every state bit-for-bit,
// in both identity and bucketed downsample modes.
func TestCodecRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		rs := genSeries(rng, rng.Intn(200)+1)
		for _, spec := range specsFor(rs) {
			st := foldAll(t, spec, chunks(rng, rs))
			enc := Append(nil, st)
			dec, err := Decode(enc)
			if err != nil {
				t.Fatalf("trial %d %s: decode: %v", trial, spec.Op, err)
			}
			if !statesIdentical(t, st, dec) {
				t.Fatalf("trial %d %s: roundtrip changed the state", trial, spec.Op)
			}
			// The decoded state must keep folding like the original.
			more := genSeries(rng, 10)
			for i := range more {
				more[i].Timestamp += rs[len(rs)-1].Timestamp + 1000
			}
			st.Add(more)
			dec.Add(more)
			if !statesIdentical(t, st, dec) {
				t.Fatalf("trial %d %s: decoded state diverged on further input", trial, spec.Op)
			}
		}
	}
}

// TestSpecCodecRoundtrip covers the request side of the wire format.
func TestSpecCodecRoundtrip(t *testing.T) {
	specs := []Spec{
		{Op: OpSummary, From: -5, To: 1 << 60},
		{Op: OpIntegral, From: 0, To: 0},
		{Op: OpDownsample, From: 100, To: 900, Buckets: 33},
	}
	for _, s := range specs {
		got, rest, err := DecodeSpec(AppendSpec(nil, s))
		if err != nil || len(rest) != 0 || got != s {
			t.Fatalf("spec roundtrip: got %+v rest %d err %v, want %+v", got, len(rest), err, s)
		}
	}
	if _, _, err := DecodeSpec(AppendSpec(nil, Spec{Op: OpDownsample, Buckets: 0})); err == nil {
		t.Fatal("decoding a zero-bucket downsample spec succeeded")
	}
	if _, _, err := DecodeSpec([]byte{1, 2, 3}); err == nil {
		t.Fatal("decoding a truncated spec succeeded")
	}
}

// TestDecodeRejectsMalformed: truncation, trailing bytes and hostile
// counts must all fail instead of allocating or panicking.
func TestDecodeRejectsMalformed(t *testing.T) {
	st := NewSummary()
	st.Add([]core.Reading{{Timestamp: 1, Value: 2}})
	enc := Append(nil, st)
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("decoding a truncated state succeeded")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("decoding a state with trailing bytes succeeded")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Fatal("decoding an unknown op succeeded")
	}

	d := NewDownsample(0, 1000, 4)
	d.Add([]core.Reading{{Timestamp: 1, Value: 1}, {Timestamp: 2, Value: 2}})
	encD := Append(nil, d)
	// Corrupt the identity-buffer count to something the payload
	// cannot hold. Layout: op(1) from(8) to(8) nmax(4) n(8) skip(8)
	// fp(8) mode(1) count(4) — the count starts at offset 46.
	bad := append([]byte(nil), encD...)
	if bad[45] != 0 {
		t.Fatalf("expected identity mode byte at offset 45, got %d", bad[45])
	}
	bad[46], bad[47], bad[48], bad[49] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Decode(bad); err == nil {
		t.Fatal("decoding a hostile identity-buffer count succeeded")
	}
}

// TestDownsampleTimestampClamp: regression for bucket midpoints
// stamped past the end of the grid.
func TestDownsampleTimestampClamp(t *testing.T) {
	// 11 readings over [0, 1000], 3 buckets: width 334, last bucket
	// starts at 668 and its midpoint 835... fine; shrink the range so
	// the midpoint of the last bucket falls past To.
	d := NewDownsample(0, 10, 3)
	var rs []core.Reading
	for ts := int64(0); ts <= 10; ts++ {
		rs = append(rs, core.Reading{Timestamp: ts, Value: float64(ts)})
	}
	d.Add(rs)
	for _, r := range d.Result() {
		if r.Timestamp < 0 || r.Timestamp > 10 {
			t.Fatalf("downsample emitted timestamp %d outside [0, 10]", r.Timestamp)
		}
	}
}

// TestDownsampleZeroWidth: a single-timestamp grid averages every
// reading into one point (regression: the materialized op used to
// return just the first reading).
func TestDownsampleZeroWidth(t *testing.T) {
	d := NewDownsample(500, 500, 4)
	d.Add([]core.Reading{
		{Timestamp: 500, Value: 1},
		{Timestamp: 500, Value: 2},
		{Timestamp: 500, Value: 3},
		{Timestamp: 500, Value: 4},
		{Timestamp: 500, Value: 6},
	})
	out := d.Result()
	if len(out) != 1 || out[0].Timestamp != 500 || out[0].Value != 3.2 {
		t.Fatalf("zero-width downsample = %v, want one point (500, 3.2)", out)
	}
}

// TestNaNSkipping: non-finite readings must not poison any fold, and
// must be counted.
func TestNaNSkipping(t *testing.T) {
	rs := []core.Reading{
		{Timestamp: 1, Value: 1},
		{Timestamp: 2, Value: math.NaN()},
		{Timestamp: 3, Value: 3},
		{Timestamp: 4, Value: math.Inf(1)},
		{Timestamp: 5, Value: 5},
	}
	s := NewSummary()
	s.Add(rs)
	if s.N != 3 || s.Skip != 2 || s.Min != 1 || s.Max != 5 || s.Mean() != 3 {
		t.Fatalf("summary over NaN series: %+v", s)
	}
	if s.First.Timestamp != 1 || s.Last.Timestamp != 5 {
		t.Fatalf("summary boundaries: %+v", s)
	}

	g := NewIntegral()
	g.Add(rs)
	if math.IsNaN(g.Value()) || math.IsInf(g.Value(), 0) {
		t.Fatalf("integral over NaN series = %g", g.Value())
	}
	// Trapezoids bridge the gaps between finite neighbours: 2ns over
	// (1+3)/2 plus 2ns over (3+5)/2 = 12e-9 value-seconds.
	if !closeEnough(g.Value(), 12e-9) {
		t.Fatalf("integral = %g, want %g", g.Value(), 12e-9)
	}
	if g.Skipped() != 2 {
		t.Fatalf("integral skipped %d, want 2", g.Skipped())
	}

	var dv Derivative
	out := dv.Add(nil, rs)
	for _, r := range out {
		if !finite(r.Value) {
			t.Fatalf("derivative emitted non-finite point %v", r)
		}
	}
	if len(out) != 2 || dv.Skipped() != 2 {
		t.Fatalf("derivative over NaN series: %v (skipped %d)", out, dv.Skipped())
	}

	d := NewDownsample(1, 5, 2)
	d.Add(rs)
	for _, r := range d.Result() {
		if !finite(r.Value) {
			t.Fatalf("downsample emitted non-finite point %v", r)
		}
	}
	if d.Skipped() != 2 {
		t.Fatalf("downsample skipped %d, want 2", d.Skipped())
	}
}

// TestIntegralNonPositiveDT: duplicate or reordered timestamps
// contribute no area (regression: a duplicate used to add zero-width
// area and a reordered pair negative area).
func TestIntegralNonPositiveDT(t *testing.T) {
	g := NewIntegral()
	g.Add([]core.Reading{
		{Timestamp: 1e9, Value: 10},
		{Timestamp: 1e9, Value: 1e308}, // duplicate ts, huge value: must add nothing
		{Timestamp: 2e9, Value: 10},
	})
	// The duplicate pair itself adds no area; the duplicate still
	// advances Last, so the next trapezoid is (1e308+10)/2 over 1s.
	if v := g.Value(); v != (1e308+10)/2 {
		t.Fatalf("integral = %g", v)
	}

	// All readings at one timestamp: zero area, not NaN.
	g2 := NewIntegral()
	g2.Add([]core.Reading{{Timestamp: 5, Value: 1}, {Timestamp: 5, Value: 2}})
	if g2.Value() != 0 {
		t.Fatalf("zero-width integral = %g, want 0", g2.Value())
	}
}

// TestFingerprintDetectsDivergence: replicas that folded different
// readings (or the same readings in different order) must disagree.
func TestFingerprintDetectsDivergence(t *testing.T) {
	a, b, c := NewSummary(), NewSummary(), NewSummary()
	rs := []core.Reading{{Timestamp: 1, Value: 1}, {Timestamp: 2, Value: 2}}
	a.Add(rs)
	b.Add(rs)
	c.Add([]core.Reading{rs[1], rs[0]})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical folds produced different fingerprints")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("order-swapped fold produced the same fingerprint")
	}
	b.Add(rs[:1])
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("extra reading did not change the fingerprint")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Op: 0},
		{Op: 99},
		{Op: OpSummary, From: 10, To: 5},
		{Op: OpDownsample, From: 0, To: 10, Buckets: 0},
		{Op: OpDownsample, From: 0, To: 10, Buckets: maxBuckets + 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %+v validated", s)
		}
	}
	if err := (Spec{Op: OpDownsample, From: 3, To: 3, Buckets: 1}).Validate(); err != nil {
		t.Fatalf("degenerate single-timestamp downsample spec rejected: %v", err)
	}
}

func TestOpStringAndStateEdges(t *testing.T) {
	for op, want := range map[Op]string{
		OpSummary:    "summary",
		OpIntegral:   "integral",
		OpDownsample: "downsample",
		Op(99):       "op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if m := NewSummary().Mean(); !math.IsNaN(m) {
		t.Errorf("empty summary Mean = %g, want NaN", m)
	}
	rs := []core.Reading{{Timestamp: 1, Value: 2}, {Timestamp: 2, Value: 4}}
	g := NewIntegral()
	g.Add(rs)
	if g.Fingerprint() == 0 {
		t.Error("integral fingerprint is zero after input")
	}
	d := NewDownsample(0, 10, 4)
	d.Add(rs)
	if d.Fingerprint() == 0 {
		t.Error("downsample fingerprint is zero after input")
	}
}

func TestDecodeTruncated(t *testing.T) {
	g := NewIntegral()
	g.Add([]core.Reading{{Timestamp: 1, Value: 2}, {Timestamp: 5, Value: 3}})
	enc := Append(nil, g)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}
