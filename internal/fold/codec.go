// Wire encoding of fold specs and states, used by the RPC aggregation
// pushdown (opAggregate). Append-style big-endian, mirroring the rpc
// package's framing idiom; decoding is bounds-checked and rejects
// counts the payload cannot hold, so a corrupt or hostile peer cannot
// drive a large allocation.

package fold

import (
	"encoding/binary"
	"fmt"
	"math"

	"dcdb/internal/core"
)

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendReading(b []byte, r core.Reading) []byte {
	b = appendI64(b, r.Timestamp)
	return appendF64(b, r.Value)
}

// AppendSpec encodes a spec (op, range, bucket budget).
func AppendSpec(b []byte, s Spec) []byte {
	b = append(b, byte(s.Op))
	b = appendI64(b, s.From)
	b = appendI64(b, s.To)
	return appendU32(b, uint32(s.Buckets))
}

// reader is a bounds-checked sequential decoder.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("fold: truncated or malformed state encoding")
	}
}

func (r *reader) u8() byte {
	if r.err != nil || len(r.b)-r.off < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b)-r.off < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b)-r.off < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) reading() core.Reading {
	return core.Reading{Timestamp: r.i64(), Value: r.f64()}
}

// count decodes a length prefix whose elements occupy elemBytes each,
// rejecting counts the remaining payload cannot hold.
func (r *reader) count(elemBytes int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if uint64(n)*uint64(elemBytes) > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(n)
}

// DecodeSpec decodes a spec and returns the remaining bytes.
func DecodeSpec(b []byte) (Spec, []byte, error) {
	r := &reader{b: b}
	s := Spec{Op: Op(r.u8())}
	s.From = r.i64()
	s.To = r.i64()
	s.Buckets = int(r.u32())
	if r.err != nil {
		return Spec{}, nil, r.err
	}
	if err := s.Validate(); err != nil {
		return Spec{}, nil, err
	}
	return s, b[r.off:], nil
}

// Append encodes a state (op tag + op-specific body).
func Append(b []byte, s State) []byte {
	b = append(b, byte(s.Op()))
	switch v := s.(type) {
	case *Summary:
		b = appendI64(b, v.N)
		b = appendI64(b, v.Skip)
		b = appendF64(b, v.Min)
		b = appendF64(b, v.Max)
		b = appendF64(b, v.Sum)
		b = appendReading(b, v.First)
		b = appendReading(b, v.Last)
		b = appendU64(b, v.fp)
	case *Integral:
		b = appendI64(b, v.N)
		b = appendI64(b, v.Skip)
		b = appendF64(b, v.Sum)
		b = appendReading(b, v.First)
		b = appendReading(b, v.Last)
		b = appendU64(b, v.fp)
	case *Downsample:
		b = appendI64(b, v.FromTS)
		b = appendI64(b, v.ToTS)
		b = appendU32(b, uint32(v.NMax))
		b = appendI64(b, v.n)
		b = appendI64(b, v.Skip)
		b = appendU64(b, v.fp)
		if v.bsum == nil {
			b = append(b, 0) // identity mode
			b = appendU32(b, uint32(len(v.raw)))
			for _, r := range v.raw {
				b = appendReading(b, r)
			}
		} else {
			b = append(b, 1) // bucket mode
			b = appendU32(b, uint32(len(v.bsum)))
			for i := range v.bsum {
				b = appendF64(b, v.bsum[i])
				b = appendI64(b, v.bn[i])
			}
		}
	}
	return b
}

// Decode decodes one state, requiring the buffer to be consumed
// exactly.
func Decode(b []byte) (State, error) {
	r := &reader{b: b}
	var st State
	switch Op(r.u8()) {
	case OpSummary:
		v := NewSummary()
		v.N = r.i64()
		v.Skip = r.i64()
		v.Min = r.f64()
		v.Max = r.f64()
		v.Sum = r.f64()
		v.First = r.reading()
		v.Last = r.reading()
		v.fp = r.u64()
		st = v
	case OpIntegral:
		v := NewIntegral()
		v.N = r.i64()
		v.Skip = r.i64()
		v.Sum = r.f64()
		v.First = r.reading()
		v.Last = r.reading()
		v.fp = r.u64()
		st = v
	case OpDownsample:
		from, to := r.i64(), r.i64()
		nmax := int(r.u32())
		if r.err == nil && (nmax <= 0 || nmax > maxBuckets) {
			return nil, fmt.Errorf("fold: downsample state with invalid bucket budget %d", nmax)
		}
		if r.err == nil && to < from {
			return nil, fmt.Errorf("fold: downsample state with inverted range [%d, %d]", from, to)
		}
		v := NewDownsample(from, to, nmax)
		v.n = r.i64()
		v.Skip = r.i64()
		v.fp = r.u64()
		switch r.u8() {
		case 0:
			n := r.count(16)
			if r.err == nil && n > nmax {
				return nil, fmt.Errorf("fold: downsample identity buffer %d exceeds budget %d", n, nmax)
			}
			if r.err == nil && n > 0 {
				v.raw = make([]core.Reading, n)
				for i := range v.raw {
					v.raw[i] = r.reading()
				}
			}
		case 1:
			n := r.count(16)
			if r.err == nil && n != v.nBuckets() {
				return nil, fmt.Errorf("fold: downsample state has %d buckets, grid needs %d", n, v.nBuckets())
			}
			if r.err == nil {
				v.bsum = make([]float64, n)
				v.bn = make([]int64, n)
				for i := 0; i < n; i++ {
					v.bsum[i] = r.f64()
					v.bn[i] = r.i64()
				}
			}
		default:
			r.fail()
		}
		st = v
	default:
		return nil, fmt.Errorf("fold: unknown state op")
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("fold: %d trailing bytes in state encoding", len(r.b)-r.off)
	}
	return st, nil
}
