// Package fold implements the analysis operations of the query layer
// (paper §5.2 — integrals, derivatives, aggregates, downsampling) as
// incremental single-pass folds. A fold consumes a time-sorted series
// chunk by chunk and holds O(1) state (O(buckets) for downsampling),
// so a month-long summary over a streamed read never materializes the
// series — and the same state can be computed server-side on a storage
// node and shipped to the coordinator as one small message
// (aggregation pushdown).
//
// Fold states are mergeable across adjacent time ranges: a state over
// [a, m] absorbs a state over (m, b] and yields exactly the aggregate
// of the concatenated input (the trapezoid integral carries its
// boundary readings so the bridging area between the two ranges is
// recovered). Every state also carries an order-sensitive fingerprint
// of the readings it consumed, which lets a replicated cluster detect
// whether two replicas folded identical data without shipping the
// data itself.
//
// NaN/Inf handling: non-finite values are skipped by every fold (they
// would otherwise poison sums, means and bucket averages permanently)
// and counted in Skipped. Empty input is not an error at this layer:
// a fold over zero readings reports Count() == 0 and callers decide
// how to surface it.
package fold

import (
	"fmt"
	"math"

	"dcdb/internal/core"
)

// Op identifies a fold operation. The numbering is part of the RPC
// wire format (aggregation pushdown requests and encoded states).
type Op uint8

const (
	// OpSummary computes count/min/max/mean plus the first and last
	// readings of the series.
	OpSummary Op = 1
	// OpIntegral computes the trapezoid-rule time integral in
	// value-units × seconds.
	OpIntegral Op = 2
	// OpDownsample reduces the series to at most Buckets points by
	// averaging equal time buckets over [From, To].
	OpDownsample Op = 3
)

// String names the op the way the CLI flags spell it.
func (o Op) String() string {
	switch o {
	case OpSummary:
		return "summary"
	case OpIntegral:
		return "integral"
	case OpDownsample:
		return "downsample"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Spec fully describes one fold request: the operation, the queried
// time range (which fixes the downsample bucket grid — every replica
// must bucket identically for states to merge), and the downsample
// point budget.
type Spec struct {
	Op       Op
	From, To int64
	// Buckets is the maximum number of output points of OpDownsample;
	// ignored by the other ops.
	Buckets int
}

// maxBuckets bounds a downsample request so a hostile or corrupt spec
// cannot drive a huge allocation server-side.
const maxBuckets = 1 << 20

// Validate checks the spec the way New does, without building a state.
func (s Spec) Validate() error {
	switch s.Op {
	case OpSummary, OpIntegral:
	case OpDownsample:
		if s.Buckets <= 0 {
			return fmt.Errorf("fold: downsample needs a positive bucket count (got %d)", s.Buckets)
		}
		if s.Buckets > maxBuckets {
			return fmt.Errorf("fold: downsample bucket count %d exceeds %d", s.Buckets, maxBuckets)
		}
	default:
		return fmt.Errorf("fold: unknown op %d", uint8(s.Op))
	}
	if s.To < s.From {
		return fmt.Errorf("fold: inverted range [%d, %d]", s.From, s.To)
	}
	return nil
}

// State is one in-progress fold. Add consumes the next chunk of the
// series (chunks must arrive in timestamp order); Count and Skipped
// report accepted and non-finite readings; Fingerprint is the
// order-sensitive hash of every reading consumed so far.
type State interface {
	Op() Op
	Add(rs []core.Reading)
	Count() int64
	Skipped() int64
	Fingerprint() uint64

	// mergeAdjacent seals the interface to this package; encoding
	// lives in the package-level Append/Decode pair (codec.go).
	mergeAdjacent(o State) error
}

// New builds the empty state for a spec.
func New(spec Spec) (State, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Op {
	case OpSummary:
		return NewSummary(), nil
	case OpIntegral:
		return NewIntegral(), nil
	default:
		return NewDownsample(spec.From, spec.To, spec.Buckets), nil
	}
}

// MergeAdjacent absorbs b — the fold of the immediately following time
// range — into a. Both states must come from the same Spec. After the
// merge, a equals the aggregate of the concatenated input except for
// floating-point association in running sums, and a's fingerprint is a
// deterministic combination of the two (not the sequential fingerprint
// of the concatenation).
func MergeAdjacent(a, b State) error {
	if a.Op() != b.Op() {
		return fmt.Errorf("fold: cannot merge %s state into %s state", b.Op(), a.Op())
	}
	return a.mergeAdjacent(b)
}

// fingerprint is FNV-1a over the (timestamp, value-bits) sequence; the
// multiply keeps it order-sensitive, so two replicas agree iff they
// folded the same readings in the same order (whp).
const (
	fpSeed  = 14695981039346656037
	fpPrime = 1099511628211
)

func fpAdd(h uint64, r core.Reading) uint64 {
	h = (h ^ uint64(r.Timestamp)) * fpPrime
	return (h ^ math.Float64bits(r.Value)) * fpPrime
}

// fpCombine folds a later range's fingerprint into an earlier one.
// Deterministic but distinct from the sequential fingerprint —
// comparable only against states merged the same way.
func fpCombine(a, b uint64) uint64 { return (a * fpPrime) ^ b }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// --- Summary ---

// Summary folds count/min/max/sum plus the first and last readings.
// The zero value is not ready; use NewSummary. Non-finite values are
// skipped and counted.
type Summary struct {
	N, Skip  int64
	Min, Max float64
	Sum      float64
	First    core.Reading
	Last     core.Reading
	fp       uint64
}

// NewSummary returns an empty summary fold.
func NewSummary() *Summary { return &Summary{fp: fpSeed} }

// Op implements State.
func (s *Summary) Op() Op { return OpSummary }

// Add implements State.
func (s *Summary) Add(rs []core.Reading) {
	for _, r := range rs {
		s.fp = fpAdd(s.fp, r)
		if !finite(r.Value) {
			s.Skip++
			continue
		}
		if s.N == 0 {
			s.Min, s.Max = r.Value, r.Value
			s.First = r
		} else {
			if r.Value < s.Min {
				s.Min = r.Value
			}
			if r.Value > s.Max {
				s.Max = r.Value
			}
		}
		s.Sum += r.Value
		s.Last = r
		s.N++
	}
}

// Count implements State.
func (s *Summary) Count() int64 { return s.N }

// Skipped implements State.
func (s *Summary) Skipped() int64 { return s.Skip }

// Fingerprint implements State.
func (s *Summary) Fingerprint() uint64 { return s.fp }

// Mean returns Sum/Count, or NaN over an empty fold.
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.N)
}

func (s *Summary) mergeAdjacent(o State) error {
	b := o.(*Summary)
	if b.N > 0 {
		if s.N == 0 {
			s.Min, s.Max, s.First = b.Min, b.Max, b.First
		} else {
			if b.Min < s.Min {
				s.Min = b.Min
			}
			if b.Max > s.Max {
				s.Max = b.Max
			}
		}
		s.Sum += b.Sum
		s.Last = b.Last
		s.N += b.N
	}
	s.Skip += b.Skip
	s.fp = fpCombine(s.fp, b.fp)
	return nil
}

// --- Integral ---

// Integral folds the trapezoid-rule time integral. It carries its
// boundary readings (first and last accepted), which is what makes two
// adjacent ranges mergeable: the bridging trapezoid between one
// range's Last and the next range's First is added on merge. Pairs
// with non-positive dt (duplicate or reordered timestamps) contribute
// no area, mirroring Derivative's guard; non-finite values are skipped
// and counted.
type Integral struct {
	N, Skip int64
	Sum     float64
	First   core.Reading
	Last    core.Reading
	fp      uint64
}

// NewIntegral returns an empty integral fold.
func NewIntegral() *Integral { return &Integral{fp: fpSeed} }

// Op implements State.
func (g *Integral) Op() Op { return OpIntegral }

// trapezoid returns the area between two consecutive readings, zero
// for non-positive dt.
func trapezoid(a, b core.Reading) float64 {
	dt := float64(b.Timestamp-a.Timestamp) / 1e9
	if dt <= 0 {
		return 0
	}
	return dt * (b.Value + a.Value) / 2
}

// Add implements State.
func (g *Integral) Add(rs []core.Reading) {
	for _, r := range rs {
		g.fp = fpAdd(g.fp, r)
		if !finite(r.Value) {
			g.Skip++
			continue
		}
		if g.N == 0 {
			g.First = r
		} else {
			g.Sum += trapezoid(g.Last, r)
		}
		g.Last = r
		g.N++
	}
}

// Count implements State.
func (g *Integral) Count() int64 { return g.N }

// Skipped implements State.
func (g *Integral) Skipped() int64 { return g.Skip }

// Fingerprint implements State.
func (g *Integral) Fingerprint() uint64 { return g.fp }

// Value returns the accumulated integral in value-units × seconds.
func (g *Integral) Value() float64 { return g.Sum }

func (g *Integral) mergeAdjacent(o State) error {
	b := o.(*Integral)
	if b.N > 0 {
		if g.N == 0 {
			g.First = b.First
			g.Sum += b.Sum
		} else {
			g.Sum += trapezoid(g.Last, b.First) + b.Sum
		}
		g.Last = b.Last
		g.N += b.N
	}
	g.Skip += b.Skip
	g.fp = fpCombine(g.fp, b.fp)
	return nil
}

// --- Derivative ---

// Derivative is the streaming discrete time derivative: one output
// reading per consecutive pair of finite inputs, stamped at the later
// point, in value-units per second. Pairs with non-positive dt are
// skipped (the previous point still advances); non-finite values are
// skipped and counted. Unlike the aggregate folds, Derivative emits a
// series rather than a scalar state, so it is a client-side fold only
// — it never crosses the RPC pushdown path. The zero value is ready.
type Derivative struct {
	Skip int64
	prev core.Reading
	have bool
	n    int64
}

// Add folds the next chunk, appending the derivative points it
// completes to dst (append-style: pass dst[:0] to reuse a buffer).
func (d *Derivative) Add(dst, rs []core.Reading) []core.Reading {
	for _, r := range rs {
		if !finite(r.Value) {
			d.Skip++
			continue
		}
		if d.have {
			dt := float64(r.Timestamp-d.prev.Timestamp) / 1e9
			if dt > 0 {
				dst = append(dst, core.Reading{
					Timestamp: r.Timestamp,
					Value:     (r.Value - d.prev.Value) / dt,
				})
			}
		}
		d.prev = r
		d.have = true
		d.n++
	}
	return dst
}

// Count reports the finite readings consumed (not points emitted).
func (d *Derivative) Count() int64 { return d.n }

// Skipped reports the non-finite readings dropped.
func (d *Derivative) Skipped() int64 { return d.Skip }

// --- Downsample ---

// Downsample folds a series into at most nmax points by averaging
// equal time buckets over the fixed grid [from, to] — the grid comes
// from the query range, not the data, so every replica of a pushdown
// buckets identically and states merge bucket-for-bucket. While the
// input holds nmax readings or fewer the fold is the identity (the
// readings pass through untouched, non-finite values included); past
// that it switches to bucket averaging, where non-finite values are
// skipped and counted. Memory is bounded by nmax either way.
type Downsample struct {
	FromTS, ToTS int64
	NMax         int
	Skip         int64

	raw  []core.Reading // identity buffer; nil once bucketed
	bsum []float64
	bn   []int64
	n    int64
	fp   uint64
}

// NewDownsample returns an empty downsample fold over the bucket grid
// [from, to] with at most nmax output points. nmax must be positive
// and to >= from.
func NewDownsample(from, to int64, nmax int) *Downsample {
	return &Downsample{FromTS: from, ToTS: to, NMax: nmax, fp: fpSeed}
}

// Op implements State.
func (d *Downsample) Op() Op { return OpDownsample }

// width returns the bucket width of the grid (0 for a degenerate
// single-timestamp range, which collapses to one bucket).
func (d *Downsample) width() int64 {
	if d.ToTS == d.FromTS {
		return 0
	}
	return (d.ToTS - d.FromTS + int64(d.NMax)) / int64(d.NMax)
}

// nBuckets is the grid size; width >= span/nmax keeps it <= NMax.
func (d *Downsample) nBuckets() int {
	w := d.width()
	if w == 0 {
		return 1
	}
	return int((d.ToTS-d.FromTS)/w) + 1
}

// bucketOf maps a timestamp onto the grid, clamping strays outside
// [from, to] into the boundary buckets.
func (d *Downsample) bucketOf(ts int64) int {
	w := d.width()
	if w == 0 {
		return 0
	}
	if ts < d.FromTS {
		return 0
	}
	i := int((ts - d.FromTS) / w)
	if nb := d.nBuckets(); i >= nb {
		i = nb - 1
	}
	return i
}

// toBuckets switches from the identity buffer to bucket averaging.
func (d *Downsample) toBuckets() {
	nb := d.nBuckets()
	d.bsum = make([]float64, nb)
	d.bn = make([]int64, nb)
	raw := d.raw
	d.raw = nil
	d.addBucketed(raw)
}

func (d *Downsample) addBucketed(rs []core.Reading) {
	for _, r := range rs {
		if !finite(r.Value) {
			d.Skip++
			continue
		}
		i := d.bucketOf(r.Timestamp)
		d.bsum[i] += r.Value
		d.bn[i]++
		d.n++
	}
}

// Add implements State.
func (d *Downsample) Add(rs []core.Reading) {
	for _, r := range rs {
		d.fp = fpAdd(d.fp, r)
	}
	if d.raw != nil || d.bsum == nil {
		d.raw = append(d.raw, rs...)
		d.n += int64(len(rs))
		if len(d.raw) > d.NMax {
			d.n = 0
			d.toBuckets()
		}
		return
	}
	d.addBucketed(rs)
}

// Count implements State: readings accepted (all of them in identity
// mode, finite ones in bucket mode).
func (d *Downsample) Count() int64 { return d.n }

// Skipped implements State.
func (d *Downsample) Skipped() int64 { return d.Skip }

// Fingerprint implements State.
func (d *Downsample) Fingerprint() uint64 { return d.fp }

// Result returns the downsampled series: the untouched input while it
// fits the point budget, else one averaged point per non-empty bucket,
// stamped at the bucket midpoint but never past the grid end (a
// Grafana range request must not receive points outside the range it
// asked for).
func (d *Downsample) Result() []core.Reading {
	if d.bsum == nil {
		return d.raw
	}
	w := d.width()
	out := make([]core.Reading, 0, len(d.bsum))
	for i := range d.bsum {
		if d.bn[i] == 0 {
			continue
		}
		ts := d.FromTS + int64(i)*w + w/2
		if ts > d.ToTS {
			ts = d.ToTS
		}
		out = append(out, core.Reading{Timestamp: ts, Value: d.bsum[i] / float64(d.bn[i])})
	}
	return out
}

func (d *Downsample) mergeAdjacent(o State) error {
	b := o.(*Downsample)
	if b.FromTS != d.FromTS || b.ToTS != d.ToTS || b.NMax != d.NMax {
		return fmt.Errorf("fold: downsample grids differ ([%d,%d]/%d vs [%d,%d]/%d)",
			d.FromTS, d.ToTS, d.NMax, b.FromTS, b.ToTS, b.NMax)
	}
	fp := fpCombine(d.fp, b.fp)
	switch {
	case d.bsum == nil && b.bsum == nil:
		d.Add(b.raw)
	case d.bsum == nil && b.bsum != nil:
		raw := d.raw
		d.raw, d.n = nil, 0
		d.bsum = make([]float64, len(b.bsum))
		d.bn = make([]int64, len(b.bn))
		d.addBucketed(raw)
		for i := range b.bsum {
			d.bsum[i] += b.bsum[i]
			d.bn[i] += b.bn[i]
		}
		d.n += b.n
		d.Skip += b.Skip
	case d.bsum != nil && b.bsum == nil:
		d.addBucketed(b.raw)
	default:
		for i := range b.bsum {
			d.bsum[i] += b.bsum[i]
			d.bn[i] += b.bn[i]
		}
		d.n += b.n
		d.Skip += b.Skip
	}
	d.fp = fp
	return nil
}
