// Package mqtt implements the subset of MQTT 3.1.1 that DCDB uses for
// communication between Pushers and Collect Agents (paper §3.1, §4.2):
// a wire-format codec, a publishing client, and a broker. The broker
// focuses on the publish path — Collect Agents act as MQTT brokers whose
// only mandatory consumer is the Storage Backend — but also supports
// SUBSCRIBE so that additional consumers (on-the-fly analysis, online
// tuning) can attach, as the paper anticipates.
//
// Supported packets: CONNECT, CONNACK, PUBLISH (QoS 0/1), PUBACK,
// SUBSCRIBE, SUBACK, UNSUBSCRIBE, UNSUBACK, PINGREQ, PINGRESP,
// DISCONNECT.
package mqtt

import (
	"bufio"
	"fmt"
	"io"
)

// PacketType identifies an MQTT control packet.
type PacketType byte

// MQTT 3.1.1 control packet types.
const (
	CONNECT     PacketType = 1
	CONNACK     PacketType = 2
	PUBLISH     PacketType = 3
	PUBACK      PacketType = 4
	SUBSCRIBE   PacketType = 8
	SUBACK      PacketType = 9
	UNSUBSCRIBE PacketType = 10
	UNSUBACK    PacketType = 11
	PINGREQ     PacketType = 12
	PINGRESP    PacketType = 13
	DISCONNECT  PacketType = 14
)

// String returns the packet type mnemonic.
func (t PacketType) String() string {
	switch t {
	case CONNECT:
		return "CONNECT"
	case CONNACK:
		return "CONNACK"
	case PUBLISH:
		return "PUBLISH"
	case PUBACK:
		return "PUBACK"
	case SUBSCRIBE:
		return "SUBSCRIBE"
	case SUBACK:
		return "SUBACK"
	case UNSUBSCRIBE:
		return "UNSUBSCRIBE"
	case UNSUBACK:
		return "UNSUBACK"
	case PINGREQ:
		return "PINGREQ"
	case PINGRESP:
		return "PINGRESP"
	case DISCONNECT:
		return "DISCONNECT"
	}
	return fmt.Sprintf("PacketType(%d)", byte(t))
}

// Packet is a decoded MQTT control packet. Fields are used according to
// the packet type.
type Packet struct {
	Type PacketType
	// Flags are the lower four bits of the fixed header. For PUBLISH
	// they encode DUP/QoS/RETAIN.
	Flags byte
	// ID is the packet identifier (PUBLISH QoS>0, PUBACK, SUBSCRIBE…).
	ID uint16
	// Topic is the PUBLISH topic name.
	Topic string
	// Payload is the PUBLISH application payload.
	Payload []byte
	// ClientID is the CONNECT client identifier.
	ClientID string
	// KeepAlive is the CONNECT keep-alive interval in seconds.
	KeepAlive uint16
	// CleanSession is the CONNECT clean-session flag.
	CleanSession bool
	// Topics and QoS carry SUBSCRIBE/UNSUBSCRIBE topic filters and
	// requested QoS levels; for SUBACK, QoS holds the return codes.
	Topics []string
	QoS    []byte
	// ReturnCode is the CONNACK return code.
	ReturnCode byte
	// SessionPresent is the CONNACK session-present flag.
	SessionPresent bool
}

// PublishQoS extracts the QoS level of a PUBLISH packet.
func (p *Packet) PublishQoS() byte { return (p.Flags >> 1) & 0x3 }

// maxRemainingLength is the largest payload MQTT's 4-byte varint allows.
const maxRemainingLength = 268435455

// protocolName and protocolLevel identify MQTT 3.1.1 in CONNECT.
const (
	protocolName  = "MQTT"
	protocolLevel = 4
)

// CONNACK return codes.
const (
	ConnAccepted          = 0
	ConnRefusedProtocol   = 1
	ConnRefusedIdentifier = 2
)

// WritePacket encodes a packet onto w.
func WritePacket(w io.Writer, p *Packet) error {
	var body []byte
	switch p.Type {
	case CONNECT:
		body = appendString(body, protocolName)
		body = append(body, protocolLevel)
		var flags byte
		if p.CleanSession {
			flags |= 0x02
		}
		body = append(body, flags)
		body = appendUint16(body, p.KeepAlive)
		body = appendString(body, p.ClientID)
	case CONNACK:
		var sp byte
		if p.SessionPresent {
			sp = 1
		}
		body = append(body, sp, p.ReturnCode)
	case PUBLISH:
		body = appendString(body, p.Topic)
		if p.PublishQoS() > 0 {
			body = appendUint16(body, p.ID)
		}
		body = append(body, p.Payload...)
	case PUBACK, UNSUBACK:
		body = appendUint16(body, p.ID)
	case SUBSCRIBE:
		p.Flags = 0x2 // mandatory reserved flags
		body = appendUint16(body, p.ID)
		for i, t := range p.Topics {
			body = appendString(body, t)
			var q byte
			if i < len(p.QoS) {
				q = p.QoS[i]
			}
			body = append(body, q)
		}
	case SUBACK:
		body = appendUint16(body, p.ID)
		body = append(body, p.QoS...)
	case UNSUBSCRIBE:
		p.Flags = 0x2
		body = appendUint16(body, p.ID)
		for _, t := range p.Topics {
			body = appendString(body, t)
		}
	case PINGREQ, PINGRESP, DISCONNECT:
		// No variable header or payload.
	default:
		return fmt.Errorf("mqtt: cannot encode packet type %v", p.Type)
	}
	if len(body) > maxRemainingLength {
		return fmt.Errorf("mqtt: packet too large (%d bytes)", len(body))
	}
	header := []byte{byte(p.Type)<<4 | p.Flags&0x0f}
	header = appendVarint(header, len(body))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadPacket decodes the next packet from r.
func ReadPacket(r *bufio.Reader) (*Packet, error) {
	first, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	p := &Packet{Type: PacketType(first >> 4), Flags: first & 0x0f}
	n, err := readVarint(r)
	if err != nil {
		return nil, fmt.Errorf("mqtt: bad remaining length: %w", err)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	d := decoder{buf: body}
	switch p.Type {
	case CONNECT:
		proto, err := d.string()
		if err != nil {
			return nil, err
		}
		level, err := d.byte()
		if err != nil {
			return nil, err
		}
		if proto != protocolName || level != protocolLevel {
			return nil, fmt.Errorf("mqtt: unsupported protocol %q level %d", proto, level)
		}
		flags, err := d.byte()
		if err != nil {
			return nil, err
		}
		p.CleanSession = flags&0x02 != 0
		if flags&0xfc != 0 {
			return nil, fmt.Errorf("mqtt: CONNECT with will/auth flags not supported")
		}
		if p.KeepAlive, err = d.uint16(); err != nil {
			return nil, err
		}
		if p.ClientID, err = d.string(); err != nil {
			return nil, err
		}
	case CONNACK:
		sp, err := d.byte()
		if err != nil {
			return nil, err
		}
		p.SessionPresent = sp&1 != 0
		if p.ReturnCode, err = d.byte(); err != nil {
			return nil, err
		}
	case PUBLISH:
		if p.Topic, err = d.string(); err != nil {
			return nil, err
		}
		if p.PublishQoS() > 0 {
			if p.ID, err = d.uint16(); err != nil {
				return nil, err
			}
		}
		p.Payload = d.rest()
	case PUBACK, UNSUBACK:
		if p.ID, err = d.uint16(); err != nil {
			return nil, err
		}
	case SUBSCRIBE:
		if p.ID, err = d.uint16(); err != nil {
			return nil, err
		}
		for d.remaining() > 0 {
			t, err := d.string()
			if err != nil {
				return nil, err
			}
			q, err := d.byte()
			if err != nil {
				return nil, err
			}
			p.Topics = append(p.Topics, t)
			p.QoS = append(p.QoS, q)
		}
		if len(p.Topics) == 0 {
			return nil, fmt.Errorf("mqtt: SUBSCRIBE without topics")
		}
	case SUBACK:
		if p.ID, err = d.uint16(); err != nil {
			return nil, err
		}
		p.QoS = d.rest()
	case UNSUBSCRIBE:
		if p.ID, err = d.uint16(); err != nil {
			return nil, err
		}
		for d.remaining() > 0 {
			t, err := d.string()
			if err != nil {
				return nil, err
			}
			p.Topics = append(p.Topics, t)
		}
	case PINGREQ, PINGRESP, DISCONNECT:
		// Nothing to decode.
	default:
		return nil, fmt.Errorf("mqtt: unsupported packet type %v", p.Type)
	}
	return p, nil
}

// decoder walks an MQTT variable header/payload.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uint16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, io.ErrUnexpectedEOF
	}
	v := uint16(d.buf[d.off])<<8 | uint16(d.buf[d.off+1])
	d.off += 2
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uint16()
	if err != nil {
		return "", err
	}
	if d.remaining() < int(n) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) rest() []byte {
	r := d.buf[d.off:]
	d.off = len(d.buf)
	return r
}

func appendUint16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendString(b []byte, s string) []byte {
	b = appendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendVarint(b []byte, n int) []byte {
	for {
		d := byte(n % 128)
		n /= 128
		if n > 0 {
			d |= 0x80
		}
		b = append(b, d)
		if n == 0 {
			return b
		}
	}
}

func readVarint(r *bufio.Reader) (int, error) {
	var n, shift int
	for i := 0; i < 4; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		n |= int(b&0x7f) << shift
		if b&0x80 == 0 {
			return n, nil
		}
		shift += 7
	}
	return 0, fmt.Errorf("varint longer than 4 bytes")
}
