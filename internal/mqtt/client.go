package mqtt

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is an MQTT 3.1.1 client tailored to DCDB's Pushers: it
// publishes sensor readings at QoS 0 or 1 and can subscribe to topics
// for the auxiliary consumers the paper mentions. The client is safe for
// concurrent use; QoS-1 publishes block until the matching PUBACK.
type Client struct {
	conn net.Conn
	r    *bufio.Reader

	writeMu sync.Mutex // serialises WritePacket

	mu      sync.Mutex
	nextID  uint16
	acks    map[uint16]chan struct{}
	subs    []subscription
	closed  bool
	done    chan struct{}
	readErr error
}

type subscription struct {
	filter  string
	handler func(topic string, payload []byte)
}

// DialOptions configure Dial.
type DialOptions struct {
	// ClientID identifies the session; a random-ish default is derived
	// from the local address when empty.
	ClientID string
	// KeepAlive is advertised to the broker (seconds granularity);
	// defaults to 60 s. The client sends PINGREQ at half this interval.
	KeepAlive time.Duration
	// Timeout bounds the TCP connect and CONNACK wait; defaults to 10 s.
	Timeout time.Duration
}

// Dial connects and performs the MQTT handshake.
func Dial(addr string, opts DialOptions) (*Client, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.KeepAlive <= 0 {
		opts.KeepAlive = 60 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("mqtt: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:   conn,
		r:      bufio.NewReaderSize(conn, 1<<16),
		acks:   make(map[uint16]chan struct{}),
		nextID: 1,
		done:   make(chan struct{}),
	}
	id := opts.ClientID
	if id == "" {
		id = "dcdb-" + conn.LocalAddr().String()
	}
	connect := &Packet{
		Type:         CONNECT,
		ClientID:     id,
		KeepAlive:    uint16(opts.KeepAlive / time.Second),
		CleanSession: true,
	}
	if err := c.write(connect); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(opts.Timeout))
	ack, err := ReadPacket(c.r)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mqtt: waiting for CONNACK: %w", err)
	}
	if ack.Type != CONNACK || ack.ReturnCode != ConnAccepted {
		conn.Close()
		return nil, fmt.Errorf("mqtt: connection refused (type %v, code %d)", ack.Type, ack.ReturnCode)
	}
	go c.readLoop()
	go c.pingLoop(opts.KeepAlive / 2)
	return c, nil
}

func (c *Client) write(p *Packet) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WritePacket(c.conn, p)
}

// Publish sends a message at the given QoS (0 or 1). QoS 1 blocks until
// the broker acknowledges.
func (c *Client) Publish(topic string, payload []byte, qos byte) error {
	if qos > 1 {
		return fmt.Errorf("mqtt: QoS %d not supported", qos)
	}
	p := &Packet{Type: PUBLISH, Flags: qos << 1, Topic: topic, Payload: payload}
	if qos == 0 {
		return c.write(p)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("mqtt: client closed")
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	ch := make(chan struct{})
	c.acks[id] = ch
	c.mu.Unlock()
	p.ID = id
	if err := c.write(p); err != nil {
		c.mu.Lock()
		delete(c.acks, id)
		c.mu.Unlock()
		return err
	}
	select {
	case <-ch:
		return nil
	case <-c.done:
		return fmt.Errorf("mqtt: connection lost waiting for PUBACK: %v", c.Err())
	case <-time.After(30 * time.Second):
		return fmt.Errorf("mqtt: PUBACK timeout for packet %d", id)
	}
}

// Subscribe registers a handler for messages matching the filter
// (supports '+' and '#' wildcards) and sends SUBSCRIBE to the broker.
func (c *Client) Subscribe(filter string, qos byte, handler func(topic string, payload []byte)) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("mqtt: client closed")
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	ch := make(chan struct{})
	c.acks[id] = ch
	c.subs = append(c.subs, subscription{filter: filter, handler: handler})
	c.mu.Unlock()
	p := &Packet{Type: SUBSCRIBE, ID: id, Topics: []string{filter}, QoS: []byte{qos}}
	if err := c.write(p); err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-c.done:
		return fmt.Errorf("mqtt: connection lost waiting for SUBACK: %v", c.Err())
	case <-time.After(30 * time.Second):
		return fmt.Errorf("mqtt: SUBACK timeout")
	}
}

// Err returns the terminal read error after the connection ends.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close sends DISCONNECT and tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.write(&Packet{Type: DISCONNECT})
	err := c.conn.Close()
	return err
}

// Done is closed when the connection terminates.
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		p, err := ReadPacket(c.r)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			return
		}
		switch p.Type {
		case PUBACK, SUBACK, UNSUBACK:
			c.mu.Lock()
			if ch, ok := c.acks[p.ID]; ok {
				close(ch)
				delete(c.acks, p.ID)
			}
			c.mu.Unlock()
		case PUBLISH:
			if p.PublishQoS() == 1 {
				c.write(&Packet{Type: PUBACK, ID: p.ID})
			}
			c.mu.Lock()
			subs := make([]subscription, len(c.subs))
			copy(subs, c.subs)
			c.mu.Unlock()
			for _, s := range subs {
				if matchFilter(s.filter, p.Topic) {
					s.handler(p.Topic, p.Payload)
				}
			}
		case PINGRESP:
			// Keep-alive satisfied.
		}
	}
}

func (c *Client) pingLoop(interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			if err := c.write(&Packet{Type: PINGREQ}); err != nil {
				return
			}
		}
	}
}
