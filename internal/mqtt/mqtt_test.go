package mqtt

import (
	"bufio"
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func roundtrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePacket(&buf, p); err != nil {
		t.Fatalf("WritePacket(%v): %v", p.Type, err)
	}
	got, err := ReadPacket(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadPacket(%v): %v", p.Type, err)
	}
	return got
}

func TestPacketRoundtrips(t *testing.T) {
	conn := roundtrip(t, &Packet{Type: CONNECT, ClientID: "pusher-01", KeepAlive: 60, CleanSession: true})
	if conn.ClientID != "pusher-01" || conn.KeepAlive != 60 || !conn.CleanSession {
		t.Errorf("CONNECT = %+v", conn)
	}
	ack := roundtrip(t, &Packet{Type: CONNACK, ReturnCode: ConnAccepted, SessionPresent: true})
	if ack.ReturnCode != ConnAccepted || !ack.SessionPresent {
		t.Errorf("CONNACK = %+v", ack)
	}
	pub := roundtrip(t, &Packet{Type: PUBLISH, Topic: "/a/b", Payload: []byte("hi")})
	if pub.Topic != "/a/b" || string(pub.Payload) != "hi" || pub.PublishQoS() != 0 {
		t.Errorf("PUBLISH = %+v", pub)
	}
	pub1 := roundtrip(t, &Packet{Type: PUBLISH, Flags: 1 << 1, ID: 7, Topic: "/q", Payload: []byte{1, 2, 3}})
	if pub1.PublishQoS() != 1 || pub1.ID != 7 {
		t.Errorf("PUBLISH qos1 = %+v", pub1)
	}
	puback := roundtrip(t, &Packet{Type: PUBACK, ID: 9})
	if puback.ID != 9 {
		t.Errorf("PUBACK = %+v", puback)
	}
	sub := roundtrip(t, &Packet{Type: SUBSCRIBE, ID: 3, Topics: []string{"/a/#", "/b/+"}, QoS: []byte{1, 0}})
	if len(sub.Topics) != 2 || sub.Topics[0] != "/a/#" || sub.QoS[1] != 0 || sub.ID != 3 {
		t.Errorf("SUBSCRIBE = %+v", sub)
	}
	suback := roundtrip(t, &Packet{Type: SUBACK, ID: 3, QoS: []byte{1, 0}})
	if suback.ID != 3 || len(suback.QoS) != 2 {
		t.Errorf("SUBACK = %+v", suback)
	}
	unsub := roundtrip(t, &Packet{Type: UNSUBSCRIBE, ID: 4, Topics: []string{"/a/#"}})
	if unsub.ID != 4 || len(unsub.Topics) != 1 {
		t.Errorf("UNSUBSCRIBE = %+v", unsub)
	}
	for _, typ := range []PacketType{PINGREQ, PINGRESP, DISCONNECT, UNSUBACK} {
		p := &Packet{Type: typ, ID: 5}
		got := roundtrip(t, p)
		if got.Type != typ {
			t.Errorf("%v roundtrip = %v", typ, got.Type)
		}
	}
}

func TestPacketTypeString(t *testing.T) {
	names := map[PacketType]string{
		CONNECT: "CONNECT", CONNACK: "CONNACK", PUBLISH: "PUBLISH",
		PUBACK: "PUBACK", SUBSCRIBE: "SUBSCRIBE", SUBACK: "SUBACK",
		UNSUBSCRIBE: "UNSUBSCRIBE", UNSUBACK: "UNSUBACK",
		PINGREQ: "PINGREQ", PINGRESP: "PINGRESP", DISCONNECT: "DISCONNECT",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
	if PacketType(0).String() == "" {
		t.Error("unknown type String empty")
	}
}

func TestVarint(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 16383, 16384, 2097151, 2097152, maxRemainingLength} {
		b := appendVarint(nil, n)
		got, err := readVarint(bufio.NewReader(bytes.NewReader(b)))
		if err != nil || got != n {
			t.Errorf("varint(%d) = %d, %v", n, got, err)
		}
	}
	// 5-byte varint rejected.
	if _, err := readVarint(bufio.NewReader(bytes.NewReader([]byte{0x80, 0x80, 0x80, 0x80, 1}))); err == nil {
		t.Error("oversized varint accepted")
	}
}

func TestPublishPayloadRoundtripQuick(t *testing.T) {
	f := func(topic string, payload []byte) bool {
		if len(topic) > 1000 || len(payload) > 100000 {
			return true
		}
		p := &Packet{Type: PUBLISH, Topic: topic, Payload: payload}
		var buf bytes.Buffer
		if err := WritePacket(&buf, p); err != nil {
			return false
		}
		got, err := ReadPacket(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.Topic == topic && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBrokerPublishToHandler(t *testing.T) {
	var got atomic.Int64
	var mu sync.Mutex
	topics := map[string][]byte{}
	b := NewBroker(func(topic string, payload []byte) {
		mu.Lock()
		topics[topic] = append([]byte(nil), payload...)
		mu.Unlock()
		got.Add(1)
	})
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := Dial(b.Addr(), DialOptions{ClientID: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish("/x/y", []byte("v0"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("/x/z", []byte("v1"), 1); err != nil {
		t.Fatal(err)
	}
	// QoS-1 publish is acknowledged, so the handler must have seen both
	// (handler runs before PUBACK for the second message; wait for the
	// first briefly).
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if string(topics["/x/y"]) != "v0" || string(topics["/x/z"]) != "v1" {
		t.Fatalf("handler saw %v", topics)
	}
	pubs, bytesIn := b.Stats()
	if pubs != 2 || bytesIn != 4 {
		t.Errorf("Stats = %d, %d", pubs, bytesIn)
	}
}

func TestBrokerSubscribeFanout(t *testing.T) {
	b := NewBroker(nil)
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := Dial(b.Addr(), DialOptions{ClientID: "sub"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv := make(chan string, 10)
	if err := sub.Subscribe("/a/#", 0, func(topic string, payload []byte) {
		recv <- topic + "=" + string(payload)
	}); err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(b.Addr(), DialOptions{ClientID: "pub"})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("/a/b", []byte("1"), 1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/other", []byte("2"), 1); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if got != "/a/b=1" {
			t.Fatalf("received %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fanout timed out")
	}
	select {
	case got := <-recv:
		t.Fatalf("unexpected extra message %q", got)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestBrokerUnsubscribe(t *testing.T) {
	b := NewBroker(nil)
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sub, err := Dial(b.Addr(), DialOptions{ClientID: "s"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv := make(chan string, 1)
	if err := sub.Subscribe("/t", 0, func(topic string, _ []byte) { recv <- topic }); err != nil {
		t.Fatal(err)
	}
	// Remove the server-side filter directly via UNSUBSCRIBE.
	if err := sub.write(&Packet{Type: UNSUBSCRIBE, ID: 99, Topics: []string{"/t"}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	pub, err := Dial(b.Addr(), DialOptions{ClientID: "p"})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("/t", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recv:
		t.Fatal("message delivered after unsubscribe")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestClientManyConcurrentPublishes(t *testing.T) {
	var count atomic.Int64
	b := NewBroker(func(string, []byte) { count.Add(1) })
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr(), DialOptions{ClientID: "many"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Publish("/c", []byte("x"), 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if count.Load() != n {
		t.Fatalf("handler saw %d of %d", count.Load(), n)
	}
}

func TestMatchFilter(t *testing.T) {
	cases := []struct {
		f, tp string
		want  bool
	}{
		{"/a/b", "/a/b", true},
		{"/a/+", "/a/b", true},
		{"/a/+", "/a/b/c", false},
		{"/a/#", "/a/b/c", true},
		{"#", "/x", true},
		{"/a", "/b", false},
	}
	for _, c := range cases {
		if matchFilter(c.f, c.tp) != c.want {
			t.Errorf("matchFilter(%q, %q) != %v", c.f, c.tp, c.want)
		}
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", DialOptions{Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestClientPublishInvalidQoS(t *testing.T) {
	b := NewBroker(nil)
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish("/t", nil, 2); err == nil {
		t.Error("QoS 2 accepted")
	}
}

func TestBrokerCloseUnblocksClients(t *testing.T) {
	b := NewBroker(nil)
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(b.Addr(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("client did not observe broker close")
	}
	c.Close()
}

func TestClientErrAfterBrokerClose(t *testing.T) {
	b := NewBroker(nil)
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(b.Addr(), DialOptions{ClientID: "errcheck"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Err() != nil {
		t.Fatalf("Err before close: %v", c.Err())
	}
	b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for c.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Err() == nil {
		t.Fatal("Err still nil after the broker closed the connection")
	}
}
