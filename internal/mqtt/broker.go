package mqtt

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
)

// Handler receives every PUBLISH the broker accepts. Collect Agents
// register one handler that forwards readings to the Storage Backend;
// this mirrors the custom MQTT implementation of the paper (§4.2), which
// avoids general topic-filtering overhead because the Storage Backend
// subscribes to everything.
type Handler func(topic string, payload []byte)

// Broker is a minimal MQTT 3.1.1 broker. All PUBLISH traffic is passed
// to the Handler; clients may additionally SUBSCRIBE and receive
// forwarded messages.
type Broker struct {
	handler Handler

	ln     net.Listener
	mu     sync.Mutex
	conns  map[*brokerConn]struct{}
	closed bool

	// Stats counters (atomic).
	published atomic.Int64
	bytesIn   atomic.Int64
}

// NewBroker creates a broker delivering PUBLISH packets to handler
// (which may be nil).
func NewBroker(handler Handler) *Broker {
	return &Broker{handler: handler, conns: make(map[*brokerConn]struct{})}
}

// Listen binds the broker to addr ("host:port"; port 0 picks a free
// port) and starts accepting connections.
func (b *Broker) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("mqtt: listen %s: %w", addr, err)
	}
	b.ln = ln
	go b.acceptLoop()
	return nil
}

// Addr returns the broker's bound address.
func (b *Broker) Addr() string {
	if b.ln == nil {
		return ""
	}
	return b.ln.Addr().String()
}

// Stats reports the number of PUBLISH packets and payload bytes
// received since start.
func (b *Broker) Stats() (published, payloadBytes int64) {
	return b.published.Load(), b.bytesIn.Load()
}

// Close stops accepting and drops all connections.
func (b *Broker) Close() error {
	b.mu.Lock()
	b.closed = true
	conns := make([]*brokerConn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	var err error
	if b.ln != nil {
		err = b.ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	return err
}

func (b *Broker) acceptLoop() {
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		bc := &brokerConn{broker: b, conn: conn, r: bufio.NewReaderSize(conn, 1<<16)}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[bc] = struct{}{}
		b.mu.Unlock()
		go bc.serve()
	}
}

type brokerConn struct {
	broker  *Broker
	conn    net.Conn
	r       *bufio.Reader
	writeMu sync.Mutex

	mu      sync.Mutex
	filters []string
}

func (c *brokerConn) write(p *Packet) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WritePacket(c.conn, p)
}

func (c *brokerConn) serve() {
	defer func() {
		c.conn.Close()
		c.broker.mu.Lock()
		delete(c.broker.conns, c)
		c.broker.mu.Unlock()
	}()
	// First packet must be CONNECT.
	p, err := ReadPacket(c.r)
	if err != nil || p.Type != CONNECT {
		return
	}
	if err := c.write(&Packet{Type: CONNACK, ReturnCode: ConnAccepted}); err != nil {
		return
	}
	for {
		p, err := ReadPacket(c.r)
		if err != nil {
			return
		}
		switch p.Type {
		case PUBLISH:
			c.broker.published.Add(1)
			c.broker.bytesIn.Add(int64(len(p.Payload)))
			if p.PublishQoS() == 1 {
				if err := c.write(&Packet{Type: PUBACK, ID: p.ID}); err != nil {
					return
				}
			}
			if h := c.broker.handler; h != nil {
				h(p.Topic, p.Payload)
			}
			c.broker.fanout(p)
		case SUBSCRIBE:
			c.mu.Lock()
			c.filters = append(c.filters, p.Topics...)
			c.mu.Unlock()
			codes := make([]byte, len(p.Topics))
			for i, q := range p.QoS {
				if i < len(codes) && q > 1 {
					codes[i] = 1 // grant at most QoS 1
				} else if i < len(codes) {
					codes[i] = q
				}
			}
			if err := c.write(&Packet{Type: SUBACK, ID: p.ID, QoS: codes}); err != nil {
				return
			}
		case UNSUBSCRIBE:
			c.mu.Lock()
			var kept []string
			for _, f := range c.filters {
				drop := false
				for _, t := range p.Topics {
					if t == f {
						drop = true
						break
					}
				}
				if !drop {
					kept = append(kept, f)
				}
			}
			c.filters = kept
			c.mu.Unlock()
			if err := c.write(&Packet{Type: UNSUBACK, ID: p.ID}); err != nil {
				return
			}
		case PINGREQ:
			if err := c.write(&Packet{Type: PINGRESP}); err != nil {
				return
			}
		case DISCONNECT:
			return
		default:
			log.Printf("mqtt broker: dropping unexpected %v from %s", p.Type, c.conn.RemoteAddr())
		}
	}
}

// fanout forwards a PUBLISH to all subscribed connections at QoS 0.
func (b *Broker) fanout(p *Packet) {
	b.mu.Lock()
	var targets []*brokerConn
	for c := range b.conns {
		c.mu.Lock()
		for _, f := range c.filters {
			if matchFilter(f, p.Topic) {
				targets = append(targets, c)
				break
			}
		}
		c.mu.Unlock()
	}
	b.mu.Unlock()
	for _, c := range targets {
		out := &Packet{Type: PUBLISH, Topic: p.Topic, Payload: p.Payload}
		if err := c.write(out); err != nil {
			c.conn.Close()
		}
	}
}

// matchFilter implements MQTT topic-filter matching with '+' and '#'.
func matchFilter(filter, topic string) bool {
	f := strings.Split(strings.TrimPrefix(filter, "/"), "/")
	t := strings.Split(strings.TrimPrefix(topic, "/"), "/")
	for i, fp := range f {
		if fp == "#" {
			return i == len(f)-1
		}
		if i >= len(t) {
			return false
		}
		if fp != "+" && fp != t[i] {
			return false
		}
	}
	return len(f) == len(t)
}
