package vsensor

import (
	"fmt"
	"sort"

	"dcdb/internal/core"
	"dcdb/internal/units"
)

// Source supplies operand time series to the evaluator. libDCDB
// implements it on top of the Storage Backend; tests use in-memory
// fakes. Expand lists the sensors below a hierarchy prefix for
// wildcard references.
type Source interface {
	// Readings returns the series of a sensor in [from, to] together
	// with its unit ("" when unknown).
	Readings(topic string, from, to int64) ([]core.Reading, string, error)
	// Expand lists the full topics of all sensors below prefix.
	Expand(prefix string) ([]string, error)
}

// Evaluate computes the expression over [from, to]. Operand series are
// converted to the base unit of their dimension, aligned on the union
// of their timestamps, and gaps are bridged by linear interpolation —
// the comparability machinery of paper challenge (2). The result
// carries one reading per timestamp in the union.
func Evaluate(e *Expr, src Source, from, to int64) ([]core.Reading, error) {
	type operand struct {
		key    string
		series []core.Reading
	}
	var ops []operand
	for _, ref := range e.Refs() {
		if prefix, ok := cutWildcard(ref); ok {
			topics, err := src.Expand(prefix)
			if err != nil {
				return nil, fmt.Errorf("vsensor: expanding %q: %w", ref, err)
			}
			if len(topics) == 0 {
				return nil, fmt.Errorf("vsensor: wildcard %q matches no sensors", ref)
			}
			sum, err := sumSeries(src, topics, from, to)
			if err != nil {
				return nil, err
			}
			ops = append(ops, operand{key: ref, series: sum})
			continue
		}
		rs, unit, err := src.Readings(ref, from, to)
		if err != nil {
			return nil, fmt.Errorf("vsensor: reading %q: %w", ref, err)
		}
		if len(rs) == 0 {
			return nil, fmt.Errorf("vsensor: sensor %q has no data in the queried period", ref)
		}
		ops = append(ops, operand{key: ref, series: toBase(rs, unit)})
	}
	if len(ops) == 0 {
		// Pure-constant expression: one reading at the period start.
		return []core.Reading{{Timestamp: from, Value: e.root.eval(nil)}}, nil
	}
	// Union timebase.
	stampSet := make(map[int64]struct{})
	for _, op := range ops {
		for _, r := range op.series {
			stampSet[r.Timestamp] = struct{}{}
		}
	}
	stamps := make([]int64, 0, len(stampSet))
	for ts := range stampSet {
		stamps = append(stamps, ts)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })

	out := make([]core.Reading, len(stamps))
	env := make(map[string]float64, len(ops))
	for i, ts := range stamps {
		for _, op := range ops {
			env[op.key] = interpolate(op.series, ts)
		}
		out[i] = core.Reading{Timestamp: ts, Value: e.root.eval(env)}
	}
	return out, nil
}

func cutWildcard(ref string) (string, bool) {
	if len(ref) > 2 && ref[len(ref)-2:] == "/*" {
		return ref[:len(ref)-2], true
	}
	return ref, false
}

// sumSeries evaluates a wildcard reference: the per-timestamp sum of all
// matched sensors, each converted to base units and interpolated onto
// the union of their timestamps.
func sumSeries(src Source, topics []string, from, to int64) ([]core.Reading, error) {
	var series [][]core.Reading
	stampSet := make(map[int64]struct{})
	for _, tp := range topics {
		rs, unit, err := src.Readings(tp, from, to)
		if err != nil {
			return nil, fmt.Errorf("vsensor: reading %q: %w", tp, err)
		}
		if len(rs) == 0 {
			continue
		}
		b := toBase(rs, unit)
		series = append(series, b)
		for _, r := range b {
			stampSet[r.Timestamp] = struct{}{}
		}
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("vsensor: no data below wildcard prefix")
	}
	stamps := make([]int64, 0, len(stampSet))
	for ts := range stampSet {
		stamps = append(stamps, ts)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	out := make([]core.Reading, len(stamps))
	for i, ts := range stamps {
		var sum float64
		for _, s := range series {
			sum += interpolate(s, ts)
		}
		out[i] = core.Reading{Timestamp: ts, Value: sum}
	}
	return out, nil
}

func toBase(rs []core.Reading, unit string) []core.Reading {
	u, ok := units.Lookup(unit)
	if !ok || (u.Factor == 1 && u.Offset == 0) {
		return rs
	}
	out := make([]core.Reading, len(rs))
	for i, r := range rs {
		out[i] = core.Reading{Timestamp: r.Timestamp, Value: r.Value*u.Factor + u.Offset}
	}
	return out
}

// interpolate returns the series value at ts using linear interpolation
// between the neighbouring readings, clamping beyond the ends. The
// series must be sorted by timestamp and non-empty.
func interpolate(rs []core.Reading, ts int64) float64 {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Timestamp >= ts })
	switch {
	case i < len(rs) && rs[i].Timestamp == ts:
		return rs[i].Value
	case i == 0:
		return rs[0].Value
	case i == len(rs):
		return rs[len(rs)-1].Value
	default:
		a, b := rs[i-1], rs[i]
		frac := float64(ts-a.Timestamp) / float64(b.Timestamp-a.Timestamp)
		return a.Value + frac*(b.Value-a.Value)
	}
}
