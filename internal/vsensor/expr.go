// Package vsensor implements DCDB's virtual sensors (paper §3.2):
// derived metrics generated from user-specified arithmetic expressions of
// arbitrary length whose operands are sensors, virtual sensors or
// constants. Virtual sensors are evaluated lazily — only upon a query
// and only for the queried period — with automatic unit conversion of
// the underlying physical sensors and linear interpolation to account
// for different sampling frequencies.
//
// Grammar (sensor references are written in angle brackets because
// topics contain '/', which is also the division operator):
//
//	expr   := term (('+'|'-') term)*
//	term   := factor (('*'|'/') factor)*
//	factor := number | '<' topic '>' | '(' expr ')' | '-' factor
//	        | ident '(' expr (',' expr)* ')'
//
// Functions: min, max, abs. A reference ending in "/*" expands to the
// sum over every sensor below that hierarchy prefix, which is how
// system-wide aggregates such as total power are expressed:
//
//	(<"/cm3/power/*">)        total power of the cm3 subtree
//	<heat> / <power>          heat-removal efficiency (Figure 9)
package vsensor

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Expr is a parsed virtual-sensor expression.
type Expr struct {
	root node
	src  string
}

// String returns the original expression source.
func (e *Expr) String() string { return e.src }

// Refs lists the sensor references in the expression, in first-use
// order (wildcard refs keep their trailing "/*").
func (e *Expr) Refs() []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *refNode:
			name := v.topic
			if v.wildcard {
				name += "/*"
			}
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		case *unaryNode:
			walk(v.operand)
		case *binaryNode:
			walk(v.left)
			walk(v.right)
		case *callNode:
			for _, a := range v.args {
				walk(a)
			}
		}
	}
	walk(e.root)
	return out
}

type node interface {
	eval(env map[string]float64) float64
}

type constNode struct{ v float64 }

func (n *constNode) eval(map[string]float64) float64 { return n.v }

type refNode struct {
	topic    string
	wildcard bool
}

func (n *refNode) eval(env map[string]float64) float64 {
	key := n.topic
	if n.wildcard {
		key += "/*"
	}
	return env[key]
}

type unaryNode struct{ operand node }

func (n *unaryNode) eval(env map[string]float64) float64 { return -n.operand.eval(env) }

type binaryNode struct {
	op          byte
	left, right node
}

func (n *binaryNode) eval(env map[string]float64) float64 {
	l, r := n.left.eval(env), n.right.eval(env)
	switch n.op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '/':
		if r == 0 {
			return math.NaN()
		}
		return l / r
	}
	return math.NaN()
}

type callNode struct {
	fn   string
	args []node
}

func (n *callNode) eval(env map[string]float64) float64 {
	switch n.fn {
	case "abs":
		return math.Abs(n.args[0].eval(env))
	case "min":
		v := n.args[0].eval(env)
		for _, a := range n.args[1:] {
			v = math.Min(v, a.eval(env))
		}
		return v
	case "max":
		v := n.args[0].eval(env)
		for _, a := range n.args[1:] {
			v = math.Max(v, a.eval(env))
		}
		return v
	}
	return math.NaN()
}

// Parse compiles an expression.
func Parse(src string) (*Expr, error) {
	p := &exprParser{src: src}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("vsensor: trailing input at offset %d in %q", p.pos, src)
	}
	return &Expr{root: root, src: src}, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseExpr() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c != '+' && c != '-' {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: c, left: left, right: right}
	}
}

func (p *exprParser) parseTerm() (node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c != '*' && c != '/' {
			return left, nil
		}
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: c, left: left, right: right}
	}
}

func (p *exprParser) parseFactor() (node, error) {
	switch c := p.peek(); {
	case c == 0:
		return nil, fmt.Errorf("vsensor: unexpected end of expression %q", p.src)
	case c == '-':
		p.pos++
		operand, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &unaryNode{operand: operand}, nil
	case c == '(':
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("vsensor: missing ')' in %q", p.src)
		}
		p.pos++
		return inner, nil
	case c == '<':
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return nil, fmt.Errorf("vsensor: unterminated sensor reference in %q", p.src)
		}
		topic := strings.Trim(p.src[p.pos:p.pos+end], `" `)
		p.pos += end + 1
		if topic == "" {
			return nil, fmt.Errorf("vsensor: empty sensor reference in %q", p.src)
		}
		if rest, ok := strings.CutSuffix(topic, "/*"); ok {
			return &refNode{topic: rest, wildcard: true}, nil
		}
		return &refNode{topic: topic}, nil
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.' ||
			p.src[p.pos] == 'e' || p.src[p.pos] == 'E' ||
			((p.src[p.pos] == '+' || p.src[p.pos] == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E'))) {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("vsensor: bad number %q in %q", p.src[start:p.pos], p.src)
		}
		return &constNode{v: v}, nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdent(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if p.peek() != '(' {
			return nil, fmt.Errorf("vsensor: unknown token %q in %q (sensor references need <…>)", name, p.src)
		}
		p.pos++
		var args []node
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("vsensor: missing ')' after %s(...) in %q", name, p.src)
		}
		p.pos++
		switch name {
		case "abs":
			if len(args) != 1 {
				return nil, fmt.Errorf("vsensor: abs takes 1 argument")
			}
		case "min", "max":
			if len(args) < 2 {
				return nil, fmt.Errorf("vsensor: %s takes at least 2 arguments", name)
			}
		default:
			return nil, fmt.Errorf("vsensor: unknown function %q", name)
		}
		return &callNode{fn: name, args: args}, nil
	default:
		return nil, fmt.Errorf("vsensor: unexpected character %q in %q", c, p.src)
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdent(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }
