package vsensor

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dcdb/internal/core"
)

// dualSource serves the same data through both evaluator interfaces —
// materialized Source and streaming StreamSource — with deterministic
// (sorted) wildcard expansion, so the two paths see identical inputs
// in identical order. chunk controls the stream chunk size, letting
// tests sweep chunk boundaries across readings.
type dualSource struct {
	data  map[string][]core.Reading
	units map[string]string
	chunk int
}

func (f *dualSource) window(topic string, from, to int64) ([]core.Reading, error) {
	rs, ok := f.data[topic]
	if !ok {
		return nil, fmt.Errorf("unknown sensor %q", topic)
	}
	var out []core.Reading
	for _, r := range rs {
		if r.Timestamp >= from && r.Timestamp <= to {
			out = append(out, r)
		}
	}
	return out, nil
}

func (f *dualSource) Readings(topic string, from, to int64) ([]core.Reading, string, error) {
	rs, err := f.window(topic, from, to)
	if err != nil {
		return nil, "", err
	}
	return rs, f.units[topic], nil
}

func (f *dualSource) Stream(topic string, from, to int64) (Stream, string, error) {
	rs, err := f.window(topic, from, to)
	if err != nil {
		return nil, "", err
	}
	return &chunkedStream{rs: rs, chunk: f.chunk}, f.units[topic], nil
}

func (f *dualSource) Expand(prefix string) ([]string, error) {
	var out []string
	for t := range f.data {
		if strings.HasPrefix(t, prefix+"/") {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out, nil
}

type chunkedStream struct {
	rs     []core.Reading
	chunk  int
	closed bool
}

func (s *chunkedStream) Next() ([]core.Reading, error) {
	if len(s.rs) == 0 {
		return nil, io.EOF
	}
	n := s.chunk
	if n <= 0 || n > len(s.rs) {
		n = len(s.rs)
	}
	out := s.rs[:n]
	s.rs = s.rs[n:]
	return out, nil
}

func (s *chunkedStream) Close() error { s.closed = true; return nil }

func drain(t *testing.T, st Stream) []core.Reading {
	t.Helper()
	defer st.Close()
	var out []core.Reading
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, chunk...)
	}
}

func sameSeries(a, b []core.Reading) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Timestamp != b[i].Timestamp ||
			math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
			return false
		}
	}
	return true
}

// TestEvaluateStreamMatchesEvaluate: the streaming evaluator must be
// bit-identical to the materialized one — same union timebase, same
// interpolation, same unit conversion, same wildcard sum — across
// misaligned series, duplicate timestamps and every chunking.
func TestEvaluateStreamMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	exprs := []string{
		"</a/one>",
		"</a/one> + </a/two>",
		"2 * </a/one> - </a/two> / 4",
		"</w/*> + 1",
		"</a/one> * </w/*>",
	}
	for trial := 0; trial < 60; trial++ {
		src := &dualSource{
			data: map[string][]core.Reading{
				"/a/one": randSeries(rng, 1+rng.Intn(40)),
				"/a/two": randSeries(rng, 1+rng.Intn(40)),
				"/w/p":   randSeries(rng, 1+rng.Intn(40)),
				"/w/q":   randSeries(rng, 1+rng.Intn(40)),
			},
			units: map[string]string{"/a/two": "mW", "/w/q": "kW"},
		}
		for _, es := range exprs {
			e, err := Parse(es)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Evaluate(e, src, 0, 1<<50)
			if err != nil {
				t.Fatalf("Evaluate(%q): %v", es, err)
			}
			for _, chunk := range []int{1, 3, 4096} {
				src.chunk = chunk
				st, err := EvaluateStream(e, src, 0, 1<<50)
				if err != nil {
					t.Fatalf("EvaluateStream(%q, chunk %d): %v", es, chunk, err)
				}
				got := drain(t, st)
				if !sameSeries(want, got) {
					t.Fatalf("trial %d %q chunk %d: stream diverges from materialized\nwant %v\ngot  %v",
						trial, es, chunk, want, got)
				}
			}
		}
	}
}

func randSeries(rng *rand.Rand, n int) []core.Reading {
	rs := make([]core.Reading, 0, n)
	ts := int64(rng.Intn(1000))
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(8) != 0 {
			ts += int64(rng.Intn(2000)) + 1
		} // else duplicate timestamp
		rs = append(rs, core.Reading{Timestamp: ts, Value: rng.NormFloat64() * 50})
	}
	return rs
}

// TestEvaluateStreamErrorParity: the open-time errors must match the
// materialized evaluator's, string for string.
func TestEvaluateStreamErrorParity(t *testing.T) {
	src := &dualSource{
		data: map[string][]core.Reading{
			"/a/one":   series(1, 2, 3),
			"/a/empty": nil,
			"/w/empty": nil,
		},
		units: map[string]string{},
	}
	cases := []string{
		"</a/empty>",  // referenced sensor with no data
		"</nosuch/*>", // wildcard matching nothing
		"</w/*>",      // wildcard whose matches are all empty
		"</a/one> + </a/empty>",
	}
	for _, es := range cases {
		e, err := Parse(es)
		if err != nil {
			t.Fatal(err)
		}
		_, wantErr := Evaluate(e, src, 0, 1<<50)
		if wantErr == nil {
			t.Fatalf("Evaluate(%q) unexpectedly succeeded", es)
		}
		_, gotErr := EvaluateStream(e, src, 0, 1<<50)
		if gotErr == nil {
			t.Fatalf("EvaluateStream(%q) unexpectedly succeeded", es)
		}
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("error parity for %q:\nmaterialized: %v\nstreamed:     %v", es, wantErr, gotErr)
		}
	}
}

// TestEvaluateStreamConstant: a pure-constant expression emits one
// reading at the period start, as Evaluate does.
func TestEvaluateStreamConstant(t *testing.T) {
	e, err := Parse("2*21")
	if err != nil {
		t.Fatal(err)
	}
	src := &dualSource{data: map[string][]core.Reading{}, units: map[string]string{}}
	st, err := EvaluateStream(e, src, 12345, 99999)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, st)
	if len(got) != 1 || got[0].Timestamp != 12345 || got[0].Value != 42 {
		t.Fatalf("constant stream = %v, want [(12345, 42)]", got)
	}
}

// TestEvaluateStreamClosesOperands: closing the evaluation stream (or
// failing at open) must close every operand stream it opened.
func TestEvaluateStreamClosesOperands(t *testing.T) {
	opened := []*chunkedStream{}
	src := &trackingSource{
		dual: &dualSource{
			data: map[string][]core.Reading{
				"/a/one": series(1, 2),
				"/a/two": series(3, 4),
			},
			units: map[string]string{},
		},
		opened: &opened,
	}
	e, err := Parse("</a/one> + </a/two>")
	if err != nil {
		t.Fatal(err)
	}
	st, err := EvaluateStream(e, src, 0, 1<<50)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for i, cs := range opened {
		if !cs.closed {
			t.Fatalf("operand stream %d left open after Close", i)
		}
	}

	// Open failure path: the second operand is empty, so open errors —
	// the first operand's stream must still be closed.
	opened = opened[:0]
	src.dual.data["/a/two"] = nil
	if _, err := EvaluateStream(e, src, 0, 1<<50); err == nil {
		t.Fatal("expected open error")
	}
	for i, cs := range opened {
		if !cs.closed {
			t.Fatalf("operand stream %d leaked after failed open", i)
		}
	}
}

type trackingSource struct {
	dual   *dualSource
	opened *[]*chunkedStream
}

func (s *trackingSource) Stream(topic string, from, to int64) (Stream, string, error) {
	st, unit, err := s.dual.Stream(topic, from, to)
	if err != nil {
		return nil, "", err
	}
	cs := st.(*chunkedStream)
	*s.opened = append(*s.opened, cs)
	return cs, unit, nil
}

func (s *trackingSource) Expand(prefix string) ([]string, error) { return s.dual.Expand(prefix) }
