package vsensor

import (
	"fmt"
	"io"

	"dcdb/internal/core"
	"dcdb/internal/units"
)

// Streaming evaluation: the same union-timebase / linear-interpolation
// semantics as Evaluate, computed with one reading of lookahead per
// operand instead of materialized operand series. Each operand column
// keeps its previous and next reading; the output advances along the
// merged union of the columns' timestamps, so evaluating a virtual
// sensor over a month holds O(operands) readings plus one input chunk
// per operand, not the operand windows.
//
// Bit-identity with Evaluate is deliberate and load-bearing (the
// analysis folds downstream compare the two paths): unit conversion
// applies the same per-reading affine map, interpolation between the
// tracked neighbours is the same expression interpolate evaluates
// between rs[i-1] and rs[i], clamping beyond the ends picks the same
// endpoint values, and a wildcard is evaluated as a nested inner sum
// stream emitting at the wildcard's own union stamps — mirroring the
// two-stage structure of Evaluate, which interpolates over the
// materialized sumSeries result.

// Stream delivers a time-ordered series in bounded chunks; it is
// structurally identical to store.ReadingStream (Next returns io.EOF
// after the last chunk; Close releases the producer and may be called
// early).
type Stream interface {
	Next() ([]core.Reading, error)
	Close() error
}

// StreamSource supplies operand streams to the streaming evaluator.
type StreamSource interface {
	// Stream opens the series of a sensor in [from, to] together with
	// its unit ("" when unknown).
	Stream(topic string, from, to int64) (Stream, string, error)
	// Expand lists the full topics of all sensors below prefix.
	Expand(prefix string) ([]string, error)
}

// streamChunkReadings bounds one output chunk, matching the store
// layer's stream chunking.
const streamChunkReadings = 4096

// EvaluateStream computes the expression over [from, to] as a stream.
// Operand availability is checked at open (the same errors Evaluate
// reports: a referenced sensor with no data in the period, a wildcard
// matching no sensors, a wildcard whose matches are all empty), so a
// successful return means the stream will deliver the full result.
// The returned stream must be closed.
func EvaluateStream(e *Expr, src StreamSource, from, to int64) (Stream, error) {
	ev := &evalStream{expr: e}
	ok := false
	defer func() {
		if !ok {
			ev.Close()
		}
	}()
	for _, ref := range e.Refs() {
		if prefix, isWild := cutWildcard(ref); isWild {
			topics, err := src.Expand(prefix)
			if err != nil {
				return nil, fmt.Errorf("vsensor: expanding %q: %w", ref, err)
			}
			if len(topics) == 0 {
				return nil, fmt.Errorf("vsensor: wildcard %q matches no sensors", ref)
			}
			sum, err := openSumStream(src, topics, from, to)
			if err != nil {
				return nil, err
			}
			col := newColumn(sum, "")
			if err := col.prime(); err != nil {
				col.close()
				return nil, err
			}
			ev.cols = append(ev.cols, col)
			ev.keys = append(ev.keys, ref)
			continue
		}
		st, unit, err := src.Stream(ref, from, to)
		if err != nil {
			return nil, fmt.Errorf("vsensor: reading %q: %w", ref, err)
		}
		col := newColumn(st, unit)
		if err := col.prime(); err != nil {
			col.close()
			return nil, err
		}
		if col.empty() {
			col.close()
			return nil, fmt.Errorf("vsensor: sensor %q has no data in the queried period", ref)
		}
		ev.cols = append(ev.cols, col)
		ev.keys = append(ev.keys, ref)
	}
	if len(ev.cols) == 0 {
		// Pure-constant expression: one reading at the period start.
		ev.constant = true
		ev.constTS = from
	}
	ev.env = make(map[string]float64, len(ev.cols))
	ok = true
	return ev, nil
}

// column tracks one operand series with a single reading of lookahead:
// prev is the last reading at or before the output cursor, head the
// next one after it. Unit conversion to base units happens as readings
// are pulled, reading by reading, exactly as toBase does.
type column struct {
	st     Stream
	factor float64
	offset float64

	buf []core.Reading
	i   int

	prev   core.Reading
	have   bool // prev is valid (at least one reading consumed)
	head   core.Reading
	headOK bool
}

func newColumn(st Stream, unit string) *column {
	c := &column{st: st, factor: 1}
	if u, ok := units.Lookup(unit); ok {
		c.factor, c.offset = u.Factor, u.Offset
	}
	return c
}

func (c *column) convert(r core.Reading) core.Reading {
	if c.factor == 1 && c.offset == 0 {
		return r
	}
	return core.Reading{Timestamp: r.Timestamp, Value: r.Value*c.factor + c.offset}
}

// prime fetches until the first reading is visible (or the stream ends
// empty), so emptiness is known at open.
func (c *column) prime() error {
	for c.i >= len(c.buf) {
		chunk, err := c.st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.buf, c.i = chunk, 0
	}
	c.head = c.convert(c.buf[c.i])
	c.headOK = true
	return nil
}

func (c *column) empty() bool { return !c.headOK && !c.have }

// advance moves head into prev and pulls the next reading.
func (c *column) advance() error {
	c.prev, c.have = c.head, true
	c.i++
	for c.i >= len(c.buf) {
		chunk, err := c.st.Next()
		if err == io.EOF {
			c.headOK = false
			return nil
		}
		if err != nil {
			return err
		}
		c.buf, c.i = chunk, 0
	}
	c.head = c.convert(c.buf[c.i])
	return nil
}

// at returns the column's value at ts — the value Evaluate's
// interpolate returns over the materialized series: the first reading
// at ts when one exists, endpoint clamping beyond the ends, linear
// interpolation between the neighbours otherwise. Readings at ts are
// consumed (prev ends on the last reading at ts, matching interpolate's
// choice of rs[i-1] for later stamps).
func (c *column) at(ts int64) (float64, error) {
	for c.headOK && c.head.Timestamp < ts {
		if err := c.advance(); err != nil {
			return 0, err
		}
	}
	if c.headOK && c.head.Timestamp == ts {
		v := c.head.Value
		for c.headOK && c.head.Timestamp == ts {
			if err := c.advance(); err != nil {
				return 0, err
			}
		}
		return v, nil
	}
	if !c.have {
		return c.head.Value, nil // before the first reading: clamp
	}
	if !c.headOK {
		return c.prev.Value, nil // after the last reading: clamp
	}
	a, b := c.prev, c.head
	frac := float64(ts-a.Timestamp) / float64(b.Timestamp-a.Timestamp)
	return a.Value + frac*(b.Value-a.Value), nil
}

// peek reports the column's next unconsumed timestamp.
func (c *column) peek() (int64, bool) {
	return c.head.Timestamp, c.headOK
}

func (c *column) close() {
	if c.st != nil {
		c.st.Close()
	}
}

// evalStream merges its operand columns and evaluates the expression
// at each union timestamp.
type evalStream struct {
	expr *Expr
	cols []*column
	keys []string
	env  map[string]float64

	constant bool // pure-constant expression
	constTS  int64
	done     bool
}

func (ev *evalStream) Next() ([]core.Reading, error) {
	if ev.done {
		return nil, io.EOF
	}
	if ev.constant {
		ev.done = true
		return []core.Reading{{Timestamp: ev.constTS, Value: ev.expr.root.eval(nil)}}, nil
	}
	out := make([]core.Reading, 0, streamChunkReadings)
	for len(out) < streamChunkReadings {
		ts, ok := ev.nextStamp()
		if !ok {
			break
		}
		for i, col := range ev.cols {
			v, err := col.at(ts)
			if err != nil {
				ev.Close()
				return nil, err
			}
			ev.env[ev.keys[i]] = v
		}
		out = append(out, core.Reading{Timestamp: ts, Value: ev.expr.root.eval(ev.env)})
	}
	if len(out) == 0 {
		ev.done = true
		return nil, io.EOF
	}
	return out, nil
}

// nextStamp is the smallest unconsumed timestamp across the columns —
// the next element of the union timebase.
func (ev *evalStream) nextStamp() (int64, bool) {
	var min int64
	found := false
	for _, col := range ev.cols {
		if ts, ok := col.peek(); ok && (!found || ts < min) {
			min, found = ts, true
		}
	}
	return min, found
}

func (ev *evalStream) Close() error {
	ev.done = true
	for _, col := range ev.cols {
		col.close()
	}
	return nil
}

// sumStream is the streaming form of sumSeries: the per-timestamp sum
// of the matched sensors, emitted at the union of their timestamps.
// It feeds the outer evaluation through a regular column, preserving
// the two-stage structure of the materialized path.
type sumStream struct {
	cols []*column
	done bool
}

// openSumStream opens one column per matched topic, dropping sensors
// with no data in the period (as sumSeries does) and erroring when
// none remain.
func openSumStream(src StreamSource, topics []string, from, to int64) (Stream, error) {
	ss := &sumStream{}
	ok := false
	defer func() {
		if !ok {
			ss.Close()
		}
	}()
	for _, tp := range topics {
		st, unit, err := src.Stream(tp, from, to)
		if err != nil {
			return nil, fmt.Errorf("vsensor: reading %q: %w", tp, err)
		}
		col := newColumn(st, unit)
		if err := col.prime(); err != nil {
			col.close()
			return nil, err
		}
		if col.empty() {
			col.close()
			continue
		}
		ss.cols = append(ss.cols, col)
	}
	if len(ss.cols) == 0 {
		return nil, fmt.Errorf("vsensor: no data below wildcard prefix")
	}
	ok = true
	return ss, nil
}

func (ss *sumStream) Next() ([]core.Reading, error) {
	if ss.done {
		return nil, io.EOF
	}
	out := make([]core.Reading, 0, streamChunkReadings)
	for len(out) < streamChunkReadings {
		var min int64
		found := false
		for _, col := range ss.cols {
			if ts, ok := col.peek(); ok && (!found || ts < min) {
				min, found = ts, true
			}
		}
		if !found {
			break
		}
		var sum float64
		for _, col := range ss.cols {
			v, err := col.at(min)
			if err != nil {
				ss.Close()
				return nil, err
			}
			sum += v
		}
		out = append(out, core.Reading{Timestamp: min, Value: sum})
	}
	if len(out) == 0 {
		ss.done = true
		return nil, io.EOF
	}
	return out, nil
}

func (ss *sumStream) Close() error {
	ss.done = true
	for _, col := range ss.cols {
		col.close()
	}
	return nil
}
