package vsensor

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dcdb/internal/core"
)

// fakeSource is an in-memory Source for tests.
type fakeSource struct {
	data  map[string][]core.Reading
	units map[string]string
}

func (f *fakeSource) Readings(topic string, from, to int64) ([]core.Reading, string, error) {
	rs, ok := f.data[topic]
	if !ok {
		return nil, "", fmt.Errorf("unknown sensor %q", topic)
	}
	var out []core.Reading
	for _, r := range rs {
		if r.Timestamp >= from && r.Timestamp <= to {
			out = append(out, r)
		}
	}
	return out, f.units[topic], nil
}

func (f *fakeSource) Expand(prefix string) ([]string, error) {
	var out []string
	for t := range f.data {
		if strings.HasPrefix(t, prefix+"/") {
			out = append(out, t)
		}
	}
	return out, nil
}

func series(vals ...float64) []core.Reading {
	rs := make([]core.Reading, len(vals))
	for i, v := range vals {
		rs[i] = core.Reading{Timestamp: int64(i) * 1000, Value: v}
	}
	return rs
}

func TestParseAndEvalConstant(t *testing.T) {
	cases := map[string]float64{
		"1+2":            3,
		"2*3+4":          10,
		"2+3*4":          14,
		"(2+3)*4":        20,
		"10/4":           2.5,
		"-5+8":           3,
		"--4":            4,
		"2*-3":           -6,
		"1e3+0.5":        1000.5,
		"abs(-7)":        7,
		"min(3,1,2)":     1,
		"max(3,1,2)":     3,
		"min(1+1, 2*3)":  2,
		"abs(min(-2,1))": 2,
	}
	for src, want := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		rs, err := Evaluate(e, &fakeSource{}, 0, 0)
		if err != nil || len(rs) != 1 || rs[0].Value != want {
			t.Errorf("Evaluate(%q) = %v, %v; want %v", src, rs, err, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1+", "(1", "<", "<>", "foo", "f(1)", "abs(1,2)", "min(1)",
		"1 2", "1..2", "@", "<a> <b>",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestRefs(t *testing.T) {
	e, err := Parse(`<a/b> + <c> * <a/b> - <d/*>`)
	if err != nil {
		t.Fatal(err)
	}
	refs := e.Refs()
	want := []string{"a/b", "c", "d/*"}
	if len(refs) != len(want) {
		t.Fatalf("Refs = %v", refs)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("Refs = %v, want %v", refs, want)
		}
	}
	if e.String() != `<a/b> + <c> * <a/b> - <d/*>` {
		t.Errorf("String = %q", e.String())
	}
}

func TestEvaluateAlignedSeries(t *testing.T) {
	src := &fakeSource{data: map[string][]core.Reading{
		"/p1": series(100, 200, 300),
		"/p2": series(10, 20, 30),
	}, units: map[string]string{}}
	e, _ := Parse("<" + "/p1" + "> + </p2>")
	rs, err := Evaluate(e, src, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Value != 110 || rs[2].Value != 330 {
		t.Fatalf("sum series = %v", rs)
	}
}

func TestEvaluateInterpolation(t *testing.T) {
	// /a sampled at 0,1000,2000; /b at 500,1500 -> union 5 stamps.
	src := &fakeSource{data: map[string][]core.Reading{
		"/a": {{Timestamp: 0, Value: 0}, {Timestamp: 1000, Value: 10}, {Timestamp: 2000, Value: 20}},
		"/b": {{Timestamp: 500, Value: 100}, {Timestamp: 1500, Value: 200}},
	}, units: map[string]string{}}
	e, _ := Parse("</a> + </b>")
	rs, err := Evaluate(e, src, 0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("union size = %d", len(rs))
	}
	// At ts=500: a interpolates to 5, b is 100.
	if rs[1].Timestamp != 500 || rs[1].Value != 105 {
		t.Fatalf("ts=500: %+v", rs[1])
	}
	// At ts=0: b clamps to 100 -> 100.
	if rs[0].Value != 100 {
		t.Fatalf("ts=0 clamp: %+v", rs[0])
	}
	// At ts=2000: b clamps to 200 -> 220.
	if rs[4].Value != 220 {
		t.Fatalf("ts=2000 clamp: %+v", rs[4])
	}
}

func TestEvaluateUnitConversion(t *testing.T) {
	// Power in mW plus power in kW: both to base W.
	src := &fakeSource{
		data: map[string][]core.Reading{
			"/mw": series(5000), // 5 W
			"/kw": series(2),    // 2000 W
		},
		units: map[string]string{"/mw": "mW", "/kw": "kW"},
	}
	e, _ := Parse("</mw> + </kw>")
	rs, err := Evaluate(e, src, 0, 10)
	if err != nil || len(rs) != 1 || math.Abs(rs[0].Value-2005) > 1e-9 {
		t.Fatalf("unit conversion: %v, %v", rs, err)
	}
}

func TestEvaluateWildcardSum(t *testing.T) {
	src := &fakeSource{data: map[string][]core.Reading{
		"/rack/n1/power": series(100, 110),
		"/rack/n2/power": series(200, 210),
		"/rack/n3/power": series(300, 310),
		"/other/x":       series(999),
	}, units: map[string]string{}}
	e, _ := Parse("</rack/*> / 1000")
	rs, err := Evaluate(e, src, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Value != 0.6 || rs[1].Value != 0.63 {
		t.Fatalf("wildcard sum = %v", rs)
	}
}

func TestEvaluateErrors(t *testing.T) {
	src := &fakeSource{data: map[string][]core.Reading{"/a": series(1)}, units: map[string]string{}}
	e, _ := Parse("</missing>")
	if _, err := Evaluate(e, src, 0, 10); err == nil {
		t.Error("missing sensor accepted")
	}
	e2, _ := Parse("</a>")
	if _, err := Evaluate(e2, src, 5000, 6000); err == nil {
		t.Error("empty period accepted")
	}
	e3, _ := Parse("</nothing/*>")
	if _, err := Evaluate(e3, src, 0, 10); err == nil {
		t.Error("empty wildcard accepted")
	}
}

func TestEvaluateDivisionByZero(t *testing.T) {
	src := &fakeSource{data: map[string][]core.Reading{
		"/a": series(1),
		"/z": series(0),
	}, units: map[string]string{}}
	e, _ := Parse("</a> / </z>")
	rs, err := Evaluate(e, src, 0, 10)
	if err != nil || len(rs) != 1 || !math.IsNaN(rs[0].Value) {
		t.Fatalf("div by zero: %v, %v", rs, err)
	}
}

func TestInterpolate(t *testing.T) {
	rs := []core.Reading{{Timestamp: 0, Value: 0}, {Timestamp: 100, Value: 10}}
	cases := map[int64]float64{-50: 0, 0: 0, 50: 5, 100: 10, 200: 10, 25: 2.5}
	for ts, want := range cases {
		if got := interpolate(rs, ts); got != want {
			t.Errorf("interpolate(%d) = %v, want %v", ts, got, want)
		}
	}
	one := []core.Reading{{Timestamp: 10, Value: 7}}
	if interpolate(one, 0) != 7 || interpolate(one, 20) != 7 || interpolate(one, 10) != 7 {
		t.Error("single-point interpolation")
	}
}

// Property: interpolation at a sample point returns the sample value,
// and between points lies within [min, max] of the neighbours.
func TestInterpolateBoundsQuick(t *testing.T) {
	f := func(vals []float64, off uint16) bool {
		if len(vals) < 2 {
			return true
		}
		for _, v := range vals {
			// Bound magnitudes so b-a cannot overflow to infinity.
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
		}
		rs := series(vals...)
		ts := int64(off) % rs[len(rs)-1].Timestamp
		got := interpolate(rs, ts)
		i := ts / 1000
		lo := math.Min(vals[i], vals[min(int(i)+1, len(vals)-1)])
		hi := math.Max(vals[i], vals[min(int(i)+1, len(vals)-1)])
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: parser round-trips constants.
func TestParseNumberQuick(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		src := fmt.Sprintf("%g", math.Abs(v))
		e, err := Parse(src)
		if err != nil {
			return false
		}
		rs, err := Evaluate(e, &fakeSource{}, 0, 0)
		return err == nil && rs[0].Value == math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
