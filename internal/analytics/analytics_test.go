package analytics

import (
	"testing"
	"time"

	"dcdb/internal/collectagent"
	"dcdb/internal/core"
	"dcdb/internal/mqtt"
	"dcdb/internal/store"
)

func rd(ts int64, v float64) core.Reading { return core.Reading{Timestamp: ts, Value: v} }

func TestMovingAverage(t *testing.T) {
	op := &MovingAverage{Window: 3}
	vals := []float64{1, 2, 3, 4, 5}
	var last Event
	for i, v := range vals {
		ev, ok := op.Process("/a", rd(int64(i), v))
		if !ok {
			t.Fatal("moving average must always emit")
		}
		last = ev
	}
	if last.Value != 4 { // mean of 3,4,5
		t.Fatalf("avg = %v", last.Value)
	}
	// Per-sensor state is independent.
	ev, _ := op.Process("/b", rd(0, 100))
	if ev.Value != 100 {
		t.Fatalf("fresh sensor avg = %v", ev.Value)
	}
	if op.Name() == "" {
		t.Error("name")
	}
}

func TestThreshold(t *testing.T) {
	op := &Threshold{Low: 10, High: 20}
	if _, ok := op.Process("/p", rd(0, 15)); ok {
		t.Error("in-band value emitted")
	}
	ev, ok := op.Process("/p", rd(1, 25))
	if !ok || !ev.Alert || ev.Value != 25 {
		t.Fatalf("above: %+v, %v", ev, ok)
	}
	ev, ok = op.Process("/p", rd(2, 5))
	if !ok || !ev.Alert {
		t.Fatalf("below: %+v, %v", ev, ok)
	}
}

func TestZScore(t *testing.T) {
	op := &ZScore{Sigmas: 3, MinN: 5}
	// Train with a stable signal.
	for i := int64(0); i < 50; i++ {
		v := 100 + float64(i%3) // 100,101,102 repeating
		if ev, ok := op.Process("/z", rd(i, v)); ok {
			t.Fatalf("false positive on stable signal: %+v", ev)
		}
	}
	// A spike trips the detector.
	ev, ok := op.Process("/z", rd(100, 500))
	if !ok || !ev.Alert || ev.Value < 3 {
		t.Fatalf("spike not detected: %+v, %v", ev, ok)
	}
	// Too-few samples never alert.
	op2 := &ZScore{}
	if _, ok := op2.Process("/q", rd(0, 1e9)); ok {
		t.Error("alert before training")
	}
}

func TestRate(t *testing.T) {
	op := &Rate{}
	if _, ok := op.Process("/c", rd(0, 100)); ok {
		t.Error("rate emitted without baseline")
	}
	ev, ok := op.Process("/c", rd(2e9, 300)) // +200 over 2s
	if !ok || ev.Value != 100 {
		t.Fatalf("rate = %+v, %v", ev, ok)
	}
	// Non-advancing timestamps are skipped.
	if _, ok := op.Process("/c", rd(2e9, 400)); ok {
		t.Error("rate with dt=0 emitted")
	}
}

func TestStreamProcessAndOverflow(t *testing.T) {
	s := NewStream(2, &MovingAverage{Window: 2})
	for i := int64(0); i < 5; i++ {
		s.Process("/s", rd(i, float64(i)))
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
	if len(s.Events()) != 2 {
		t.Fatalf("buffered = %d", len(s.Events()))
	}
}

func TestStreamHandlePayload(t *testing.T) {
	s := NewStream(10, &Threshold{Low: 0, High: 10})
	payload := core.EncodeReadings([]core.Reading{rd(1, 5), rd(2, 50)})
	s.HandlePayload("/t", payload)
	select {
	case ev := <-s.Events():
		if ev.Reading.Value != 50 {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("no event emitted")
	}
	// Garbage payloads are ignored.
	s.HandlePayload("/t", []byte{1, 2, 3})
}

func TestStreamLiveSubscription(t *testing.T) {
	// Full loop: pusher-side publish -> collect agent broker ->
	// analytics subscriber raises a power-band alert (§1's use case).
	agent := collectagent.New(store.NewNode(0), nil, collectagent.Options{Quiet: true})
	if err := agent.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	stream := NewStream(16, &Threshold{Low: 0, High: 300})
	sub, err := stream.Subscribe(agent.Addr(), "/power/#")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := mqtt.Dial(agent.Addr(), mqtt.DialOptions{ClientID: "pub"})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("/power/node1", core.EncodeReadings([]core.Reading{rd(1, 250)}), 1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/power/node1", core.EncodeReadings([]core.Reading{rd(2, 450)}), 1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-stream.Events():
		if !ev.Alert || ev.Reading.Value != 450 {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no alert received via live subscription")
	}
	// The storage path was unaffected: agent stored both readings.
	if agent.Stats().Readings != 2 {
		t.Fatalf("agent stored %d readings", agent.Stats().Readings)
	}
}

func TestRateOperatorName(t *testing.T) {
	var ra Rate
	if ra.Name() != "rate" {
		t.Fatalf("Rate.Name() = %q", ra.Name())
	}
	// First reading primes the state without emitting.
	if _, ok := ra.Process("/t", rd(1, 10)); ok {
		t.Fatal("rate emitted on the first sample")
	}
}

func TestNewStreamDefaultBuffer(t *testing.T) {
	s := NewStream(0)
	if cap(s.events) != 1024 {
		t.Fatalf("default buffer = %d, want 1024", cap(s.events))
	}
}

func TestSubscribeDialError(t *testing.T) {
	s := NewStream(1)
	if _, err := s.Subscribe("127.0.0.1:1", "/x/#"); err == nil {
		t.Fatal("Subscribe to a closed port succeeded")
	}
}
