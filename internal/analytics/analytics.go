// Package analytics implements the streaming data-analytics layer the
// paper describes as future work (§9): it fetches live sensor data by
// subscribing to a Collect Agent's MQTT broker — the "additional
// subscribers" the architecture anticipates in §3.1 — and runs online
// operators over the stream, enabling energy-efficiency optimisation
// and anomaly detection without touching the Storage Backend.
//
// Operators are composable per-sensor state machines:
//
//   - MovingAverage smooths a sensor over a sliding window.
//   - Threshold raises events when a sensor leaves a band, the
//     power-band enforcement use case of §1.
//   - ZScore flags readings far from the sensor's running mean, a
//     simple online anomaly detector.
//   - Rate turns monotonic counters into per-second rates.
package analytics

import (
	"fmt"
	"math"
	"sync"

	"dcdb/internal/core"
	"dcdb/internal/mqtt"
)

// Event is an operator's verdict about one reading.
type Event struct {
	Topic    string
	Reading  core.Reading
	Operator string
	// Value is the operator's derived value (average, z-score, rate…).
	Value float64
	// Alert marks events that demand attention (threshold crossings,
	// anomalies).
	Alert bool
	// Detail is a human-readable explanation.
	Detail string
}

// Operator processes one sensor's readings and optionally emits an
// event. Implementations keep per-sensor state and are called from a
// single goroutine per Stream.
type Operator interface {
	Name() string
	Process(topic string, r core.Reading) (Event, bool)
}

// MovingAverage emits the mean of the last Window readings per sensor.
type MovingAverage struct {
	Window int
	state  map[string][]float64
}

// Name implements Operator.
func (m *MovingAverage) Name() string { return fmt.Sprintf("movingavg(%d)", m.Window) }

// Process implements Operator.
func (m *MovingAverage) Process(topic string, r core.Reading) (Event, bool) {
	if m.Window <= 0 {
		m.Window = 10
	}
	if m.state == nil {
		m.state = make(map[string][]float64)
	}
	buf := append(m.state[topic], r.Value)
	if len(buf) > m.Window {
		buf = buf[len(buf)-m.Window:]
	}
	m.state[topic] = buf
	var sum float64
	for _, v := range buf {
		sum += v
	}
	return Event{
		Topic: topic, Reading: r, Operator: m.Name(),
		Value:  sum / float64(len(buf)),
		Detail: fmt.Sprintf("mean of last %d readings", len(buf)),
	}, true
}

// Threshold emits alert events when a sensor leaves [Low, High].
type Threshold struct {
	Low, High float64
}

// Name implements Operator.
func (t *Threshold) Name() string { return fmt.Sprintf("threshold[%g,%g]", t.Low, t.High) }

// Process implements Operator.
func (t *Threshold) Process(topic string, r core.Reading) (Event, bool) {
	if r.Value >= t.Low && r.Value <= t.High {
		return Event{}, false
	}
	side := "above"
	bound := t.High
	if r.Value < t.Low {
		side = "below"
		bound = t.Low
	}
	return Event{
		Topic: topic, Reading: r, Operator: t.Name(), Value: r.Value, Alert: true,
		Detail: fmt.Sprintf("value %g %s bound %g", r.Value, side, bound),
	}, true
}

// ZScore flags readings more than Sigmas standard deviations from the
// sensor's running mean (Welford's online algorithm). The first MinN
// readings only train the estimator.
type ZScore struct {
	Sigmas float64
	MinN   int
	state  map[string]*welford
}

type welford struct {
	n    int
	mean float64
	m2   float64
}

// Name implements Operator.
func (z *ZScore) Name() string { return fmt.Sprintf("zscore(%.1f)", z.Sigmas) }

// Process implements Operator.
func (z *ZScore) Process(topic string, r core.Reading) (Event, bool) {
	if z.Sigmas <= 0 {
		z.Sigmas = 3
	}
	if z.MinN <= 0 {
		z.MinN = 10
	}
	if z.state == nil {
		z.state = make(map[string]*welford)
	}
	w, ok := z.state[topic]
	if !ok {
		w = &welford{}
		z.state[topic] = w
	}
	var score float64
	trained := w.n >= z.MinN
	if trained {
		sd := math.Sqrt(w.m2 / float64(w.n-1))
		if sd > 0 {
			score = (r.Value - w.mean) / sd
		}
	}
	// Update after scoring so the outlier does not mask itself.
	w.n++
	d := r.Value - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (r.Value - w.mean)
	if !trained || math.Abs(score) < z.Sigmas {
		return Event{}, false
	}
	return Event{
		Topic: topic, Reading: r, Operator: z.Name(), Value: score, Alert: true,
		Detail: fmt.Sprintf("reading %g is %.1f sigma from running mean %.4g", r.Value, score, w.mean),
	}, true
}

// Rate converts monotonic counters into per-second rates.
type Rate struct {
	state map[string]core.Reading
}

// Name implements Operator.
func (ra *Rate) Name() string { return "rate" }

// Process implements Operator.
func (ra *Rate) Process(topic string, r core.Reading) (Event, bool) {
	if ra.state == nil {
		ra.state = make(map[string]core.Reading)
	}
	prev, ok := ra.state[topic]
	ra.state[topic] = r
	if !ok || r.Timestamp <= prev.Timestamp {
		return Event{}, false
	}
	dt := float64(r.Timestamp-prev.Timestamp) / 1e9
	return Event{
		Topic: topic, Reading: r, Operator: "rate",
		Value:  (r.Value - prev.Value) / dt,
		Detail: fmt.Sprintf("delta %g over %.3fs", r.Value-prev.Value, dt),
	}, true
}

// Stream attaches operators to a live sensor feed. Feed it directly
// with Process (in-process deployment at the Collect Agent) or let it
// subscribe to a broker with Subscribe (the loosely-coupled MQTT
// deployment).
type Stream struct {
	mu        sync.Mutex
	operators []Operator
	events    chan Event
	dropped   int
}

// NewStream creates a stream buffering up to buffer events; events
// beyond the buffer are dropped (analytics must never stall ingest).
func NewStream(buffer int, ops ...Operator) *Stream {
	if buffer <= 0 {
		buffer = 1024
	}
	return &Stream{operators: ops, events: make(chan Event, buffer)}
}

// Events is the stream's output channel.
func (s *Stream) Events() <-chan Event { return s.events }

// Dropped reports how many events were discarded on overflow.
func (s *Stream) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Process runs one reading through every operator.
func (s *Stream) Process(topic string, r core.Reading) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range s.operators {
		ev, ok := op.Process(topic, r)
		if !ok {
			continue
		}
		select {
		case s.events <- ev:
		default:
			s.dropped++
		}
	}
}

// HandlePayload decodes an MQTT reading payload and processes it; it
// matches the mqtt subscription handler signature.
func (s *Stream) HandlePayload(topic string, payload []byte) {
	rs, err := core.DecodeReadings(payload)
	if err != nil {
		return
	}
	for _, r := range rs {
		s.Process(topic, r)
	}
}

// Subscribe attaches the stream to a broker as a live MQTT subscriber
// for the given topic filter.
func (s *Stream) Subscribe(brokerAddr, filter string) (*mqtt.Client, error) {
	client, err := mqtt.Dial(brokerAddr, mqtt.DialOptions{ClientID: "dcdb-analytics"})
	if err != nil {
		return nil, err
	}
	if err := client.Subscribe(filter, 0, s.HandlePayload); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}
