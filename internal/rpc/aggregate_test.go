package rpc

import (
	"io"
	"testing"

	"dcdb/internal/core"
	"dcdb/internal/fold"
)

// TestRPCAggregateRoundtrip: a pushed-down fold over the wire is
// bit-identical to the node's own fold.
func TestRPCAggregateRoundtrip(t *testing.T) {
	n, _, cl := testPair(t, ClientOptions{})
	id := sid(4, 2)
	var rs []core.Reading
	for i := int64(1); i <= 1000; i++ {
		rs = append(rs, rd(i*1000, float64(i%17)))
	}
	if err := n.InsertBatch(id, rs, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fold.Spec{
		{Op: fold.OpSummary, From: 0, To: 1 << 50},
		{Op: fold.OpIntegral, From: 0, To: 1 << 50},
		{Op: fold.OpDownsample, From: 1000, To: 1000 * 1000, Buckets: 20},
	} {
		remote, err := cl.Aggregate(id, spec)
		if err != nil {
			t.Fatalf("%s over RPC: %v", spec.Op, err)
		}
		direct, err := n.Aggregate(id, spec)
		if err != nil {
			t.Fatal(err)
		}
		if string(fold.Append(nil, remote)) != string(fold.Append(nil, direct)) {
			t.Fatalf("%s: remote aggregate differs from the node's fold", spec.Op)
		}
	}

	// An aggregate over an empty sensor is a Count()==0 state, not an
	// error (empty is a caller-level policy).
	st, err := cl.Aggregate(sid(9, 9), fold.Spec{Op: fold.OpSummary, From: 0, To: 10})
	if err != nil {
		t.Fatalf("empty aggregate: %v", err)
	}
	if st.Count() != 0 {
		t.Fatalf("empty aggregate count = %d", st.Count())
	}

	// Invalid specs fail loudly on the server.
	if _, err := cl.Aggregate(id, fold.Spec{Op: fold.OpDownsample, From: 0, To: 10, Buckets: 0}); err == nil {
		t.Fatal("invalid spec accepted over RPC")
	}
}

// TestSummaryPushdownResponseBytes is the wire-cost contract of the
// pushdown: summarising a cold range over RPC must move O(1) response
// bytes per sensor, where streaming the same range moves O(readings).
func TestSummaryPushdownResponseBytes(t *testing.T) {
	n, _, cl := testPair(t, ClientOptions{})
	id := sid(1, 1)
	const count = 20000
	var rs []core.Reading
	for i := int64(1); i <= count; i++ {
		rs = append(rs, rd(i*1000, float64(i)))
	}
	if err := n.InsertBatch(id, rs, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}

	spec := fold.Spec{Op: fold.OpSummary, From: 0, To: 1 << 50}
	read0, _ := cl.NetBytes()
	st, err := cl.Aggregate(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	read1, _ := cl.NetBytes()
	if st.Count() != count {
		t.Fatalf("aggregate count = %d, want %d", st.Count(), count)
	}
	aggBytes := read1 - read0
	// One summary state is ~100 bytes; leave generous headroom while
	// staying far below the 16 bytes/reading a streamed read costs.
	if aggBytes <= 0 || aggBytes > 1024 {
		t.Fatalf("summary pushdown moved %d response bytes, want (0, 1024]", aggBytes)
	}

	// The streamed read of the same range, for scale: it must dwarf
	// the aggregate response.
	stream, err := cl.QueryStream(id, 0, 1<<50)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		chunk, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(chunk)
	}
	stream.Close()
	read2, _ := cl.NetBytes()
	streamBytes := read2 - read1
	if total != count {
		t.Fatalf("streamed %d readings, want %d", total, count)
	}
	if streamBytes < int64(count)*16 {
		t.Fatalf("streamed read moved %d bytes, expected at least %d", streamBytes, count*16)
	}
	if aggBytes*100 > streamBytes {
		t.Fatalf("pushdown (%d B) is not at least 100x cheaper than streaming (%d B)", aggBytes, streamBytes)
	}
}
