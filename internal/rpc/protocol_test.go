package rpc

import (
	"reflect"
	"testing"
	"time"

	"dcdb/internal/store"
)

func TestSplitAddrList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ,", []string{"a:1", "b:2"}},
		{",,", nil},
		{"", nil},
		{"one:4441", []string{"one:4441"}},
	}
	for _, c := range cases {
		if got := SplitAddrList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("SplitAddrList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestServerSetNow(t *testing.T) {
	n := store.NewNode(0)
	defer n.Close()
	srv := NewServer(n, true)
	skewed := func() time.Time { return time.Now().Add(3 * time.Hour) }
	srv.SetNow(skewed)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(srv.Addr(), ClientOptions{CallTimeout: 2 * time.Second})
	defer cl.Close()
	// Relative timeout budgets make the server's skewed clock harmless.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping against a skewed server: %v", err)
	}
}
