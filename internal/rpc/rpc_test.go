package rpc

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/store"
)

func sid(hi, lo uint64) core.SensorID { return core.SensorID{Hi: hi, Lo: lo} }

func rd(ts int64, v float64) core.Reading { return core.Reading{Timestamp: ts, Value: v} }

// testPair serves a fresh memory node and returns a connected client.
func testPair(t *testing.T, o ClientOptions) (*store.Node, *Server, *Client) {
	t.Helper()
	n := store.NewNode(0)
	srv := NewServer(n, true)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := NewClient(srv.Addr(), o)
	t.Cleanup(func() { cl.Close() })
	return n, srv, cl
}

func TestRPCRoundtripFullNodeAPI(t *testing.T) {
	n, srv, cl := testPair(t, ClientOptions{})
	id := sid(1, 2)

	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := cl.Insert(id, rd(1, 1.5), 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	batch := []core.Reading{rd(2, 2.5), rd(3, 3.5), rd(4, 4.5)}
	if err := cl.InsertBatch(id, batch, 0); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	rs, err := cl.Query(id, 0, 1<<60)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(rs) != 4 || rs[0].Value != 1.5 || rs[3].Timestamp != 4 {
		t.Fatalf("Query returned %v", rs)
	}
	// The remote view must match the node's own.
	direct, _ := n.Query(id, 0, 1<<60)
	if len(direct) != len(rs) {
		t.Fatalf("remote %d vs direct %d readings", len(rs), len(direct))
	}

	m, err := cl.QueryPrefix(core.SensorID{}, 0, 0, 1<<60)
	if err != nil {
		t.Fatalf("QueryPrefix: %v", err)
	}
	if len(m) != 1 || len(m[id]) != 4 {
		t.Fatalf("QueryPrefix returned %v", m)
	}

	ids := cl.SensorIDs()
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("SensorIDs returned %v", ids)
	}

	if err := cl.DeleteBefore(id, 3); err != nil {
		t.Fatalf("DeleteBefore: %v", err)
	}
	rs, _ = cl.Query(id, 0, 1<<60)
	if len(rs) != 2 {
		t.Fatalf("after DeleteBefore: %v", rs)
	}

	if err := cl.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	cl.Compact()

	ins, _, entries := cl.Stats()
	if ins != 4 || entries != 2 {
		t.Fatalf("Stats = %d inserts, %d entries; want 4, 2", ins, entries)
	}
	if srv.Requests() == 0 {
		t.Fatal("server counted no requests")
	}
}

func TestRPCErrorsPropagate(t *testing.T) {
	n, _, cl := testPair(t, ClientOptions{})
	n.SetDown(true)
	if err := cl.Insert(sid(1, 1), rd(1, 1), 0); err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("down-node insert error = %v, want node-down", err)
	}
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping of a down node succeeded")
	}
}

func TestRPCPipelining(t *testing.T) {
	// One TCP connection, many in-flight requests: pipelining must let
	// them interleave without corrupting response matching.
	_, _, cl := testPair(t, ClientOptions{PoolSize: 1})
	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := sid(uint64(w+1), uint64(w))
			for i := 0; i < perWorker; i++ {
				if err := cl.Insert(id, rd(int64(i), float64(w)), 0); err != nil {
					t.Error(err)
					return
				}
			}
			rs, err := cl.Query(id, 0, 1<<60)
			if err != nil || len(rs) != perWorker {
				t.Errorf("worker %d: %d readings, %v", w, len(rs), err)
			}
		}(w)
	}
	wg.Wait()
}

// rawFrame writes one frame with an arbitrary CRC (correct or not).
func rawFrame(c net.Conn, payload []byte, crc uint32) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc)
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.Write(payload)
	return err
}

func buildRequest(id uint64, op byte, timeout int64, body []byte) []byte {
	p := appendU64(nil, id)
	p = append(p, op)
	p = appendI64(p, timeout)
	return append(p, body...)
}

func TestRPCServerRejectsTornFrameByCRC(t *testing.T) {
	_, srv, _ := testPair(t, ClientOptions{})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A valid ping first proves the connection works.
	ping := buildRequest(1, opPing, 0, nil)
	if err := rawFrame(c, ping, crc32.ChecksumIEEE(ping)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(c)
	if _, err := readFrame(br); err != nil {
		t.Fatalf("valid ping got no response: %v", err)
	}

	// A frame whose payload was torn (CRC computed over different
	// bytes) must poison the connection: the server closes it instead
	// of guessing at framing.
	torn := buildRequest(2, opPing, 0, nil)
	if err := rawFrame(c, torn, crc32.ChecksumIEEE(torn)^0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(br); err == nil {
		t.Fatal("server answered a torn frame instead of closing the connection")
	}
}

func TestRPCServerRejectsOversizedFrame(t *testing.T) {
	_, srv, _ := testPair(t, ClientOptions{})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], frameMax+1)
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(c).ReadByte(); err == nil {
		t.Fatal("server kept the connection after an oversized frame header")
	}
}

func TestRPCClientRejectsCorruptResponse(t *testing.T) {
	// A fake node that answers every request with a CRC-corrupt frame:
	// the client must surface an error and tear the connection down
	// rather than deliver garbage.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		if _, err := readFrame(br); err != nil {
			return
		}
		resp := appendU64(nil, 1)
		resp = append(resp, statusOK)
		rawFrame(c, resp, crc32.ChecksumIEEE(resp)^1)
	}()
	cl := NewClient(ln.Addr().String(), ClientOptions{CallTimeout: 5 * time.Second})
	defer cl.Close()
	if err := cl.Ping(); err == nil {
		t.Fatal("client accepted a CRC-corrupt response")
	}
}

func TestRPCDeadlinePropagation(t *testing.T) {
	_, srv, _ := testPair(t, ClientOptions{})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A request whose relative budget is already exhausted (negative:
	// expired by definition, immune to clock skew) must be refused
	// without executing.
	req := buildRequest(7, opPing, -1, nil)
	if err := rawFrame(c, req, crc32.ChecksumIEEE(req)); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(bufio.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) < respHeaderLen || resp[8] != statusErr {
		t.Fatalf("expired-deadline request got status %v", resp)
	}
	if !strings.Contains(string(resp[respHeaderLen:]), "deadline") {
		t.Fatalf("error %q does not mention the deadline", resp[respHeaderLen:])
	}
}

func TestRPCReconnectAfterServerRestart(t *testing.T) {
	n := store.NewNode(0)
	srv := NewServer(n, true)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl := NewClient(addr, ClientOptions{
		PoolSize:         1,
		ReconnectBackoff: 5 * time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
	})
	defer cl.Close()
	id := sid(3, 3)
	if err := cl.Insert(id, rd(1, 1), 0); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The dead node must fail fast, not hang.
	if err := cl.Ping(); err == nil {
		t.Fatal("ping of a closed server succeeded")
	}

	// Restart on the same address (the node keeps its data: same
	// in-process store, as a restarted dcdbnode keeps its directory).
	srv2 := NewServer(n, true)
	if err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := cl.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected to the restarted server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rs, err := cl.Query(id, 0, 1<<60)
	if err != nil || len(rs) != 1 {
		t.Fatalf("after reconnect: %v, %v", rs, err)
	}
}

func TestRPCUnavailableFailsFast(t *testing.T) {
	// No listener at all: after the first dial failure, calls inside
	// the backoff window return ErrUnavailable without a network wait.
	cl := NewClient("127.0.0.1:1", ClientOptions{
		PoolSize:         1,
		DialTimeout:      200 * time.Millisecond,
		ReconnectBackoff: time.Minute,
	})
	defer cl.Close()
	cl.Ping() // absorbs the dial failure
	start := time.Now()
	err := cl.Ping()
	if err == nil {
		t.Fatal("ping of nothing succeeded")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("backoff-window call took %s, want fail-fast", elapsed)
	}
	if !strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("error = %v, want unavailable", err)
	}
}

// TestRPCClusterOverLoopback drives a full consistency/hinted-handoff
// cycle with the coordinator talking to every replica over TCP — the
// in-process miniature of the multi-process deployment.
func TestRPCClusterOverLoopback(t *testing.T) {
	var backends []store.NodeBackend
	var servers []*Server
	var nodes []*store.Node
	for i := 0; i < 3; i++ {
		n := store.NewNode(0)
		srv := NewServer(n, true)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cl := NewClient(srv.Addr(), ClientOptions{
			ReconnectBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		})
		defer cl.Close()
		nodes = append(nodes, n)
		servers = append(servers, srv)
		backends = append(backends, cl)
	}
	c, err := store.NewClusterOptions(backends, store.ClusterOptions{
		Partitioner: store.HashPartitioner{}, Replication: 2,
		ReadConsistency: store.ConsistencyQuorum,
		HintDir:         t.TempDir(), HintReplayInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := sid(21, 9)
	primary := c.Partitioner().NodeFor(id, 3)
	backup := (primary + 1) % 3

	if err := c.InsertBatch(id, []core.Reading{rd(1, 1), rd(2, 2)}, 0); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Query(id, 0, 1<<60)
	if err != nil || len(rs) != 2 {
		t.Fatalf("QUORUM read over RPC: %v, %v", rs, err)
	}

	// Take the backup replica's server down; writes at ONE continue
	// and hint.
	servers[backup].Close()
	if err := c.Insert(id, rd(3, 3), 0); err != nil {
		t.Fatalf("ONE write with a dead RPC replica: %v", err)
	}
	if queued, _, _ := c.HintStats(); queued == 0 {
		t.Fatal("no hint queued for the dead replica")
	}

	// Restart the replica's server on the same address and replay.
	srv2 := NewServer(nodes[backup], true)
	if err := srv2.Listen(servers[backup].Addr()); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.ReplayHints(); err == nil {
			if _, replayed, pending := c.HintStats(); replayed > 0 && pending == 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("hints never replayed to the restarted replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := nodes[backup].Query(id, 0, 1<<60)
	if err != nil || len(got) != 3 {
		t.Fatalf("restarted replica holds %v, %v; want all 3 readings", got, err)
	}
}

func TestRPCServerRejectsMalformedBodies(t *testing.T) {
	_, srv, _ := testPair(t, ClientOptions{})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	send := func(req []byte) []byte {
		t.Helper()
		if err := rawFrame(c, req, crc32.ChecksumIEEE(req)); err != nil {
			t.Fatal(err)
		}
		resp, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Truncated insert body: must fail cleanly, not panic or misread.
	short := buildRequest(1, opInsert, 0, []byte{1, 2, 3})
	if resp := send(short); resp[8] != statusErr {
		t.Fatalf("truncated insert body accepted: %v", resp)
	}
	// Readings count larger than the payload can hold.
	body := appendSID(nil, sid(1, 1))
	body = appendI64(body, 0)
	body = appendU32(body, 1<<30) // claims a billion readings
	huge := buildRequest(2, opInsertBatch, 0, body)
	if resp := send(huge); resp[8] != statusErr {
		t.Fatalf("overflowing readings count accepted: %v", resp)
	}
	// Trailing garbage after a valid body.
	body = appendSID(nil, sid(1, 1))
	body = appendI64(body, 0)
	body = appendI64(body, 1<<60)
	body = append(body, 0xff)
	trailing := buildRequest(3, opQuery, 0, body)
	if resp := send(trailing); resp[8] != statusErr {
		t.Fatalf("trailing bytes accepted: %v", resp)
	}
	// Unknown opcode.
	unknown := buildRequest(4, 200, 0, nil)
	if resp := send(unknown); resp[8] != statusErr {
		t.Fatalf("unknown op accepted: %v", resp)
	}
	// The connection stays healthy through application-level errors.
	ping := buildRequest(5, opPing, 0, nil)
	if resp := send(ping); resp[8] != statusOK {
		t.Fatalf("ping after bad requests failed: %v", resp)
	}
	if cl := NewClient(srv.Addr(), ClientOptions{}); cl.Addr() != srv.Addr() {
		t.Fatal("Addr mismatch")
	}
}

func TestRPCCallTimeout(t *testing.T) {
	// A server that accepts but never answers: the call must return at
	// CallTimeout, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			_, _ = bufio.NewReader(c).ReadByte() // swallow and stall
		}
	}()
	cl := NewClient(ln.Addr().String(), ClientOptions{CallTimeout: 50 * time.Millisecond})
	defer cl.Close()
	start := time.Now()
	err = cl.Ping()
	if err == nil {
		t.Fatal("call to a stalled server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s", elapsed)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error = %v, want timeout", err)
	}
}
