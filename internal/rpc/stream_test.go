package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"dcdb/internal/core"
	"dcdb/internal/store"
)

// Streaming RPC tests: chunked roundtrips, cancel-on-close releasing
// the server's producer goroutine, mid-stream error frames, and the
// client-side framing bounds (oversized frames and sequence gaps must
// poison the connection, not be trusted).

func fillSensor(t *testing.T, n *store.Node, id core.SensorID, total int) {
	t.Helper()
	buf := make([]core.Reading, 1000)
	for base := 0; base < total; base += len(buf) {
		batch := buf
		if rem := total - base; rem < len(batch) {
			batch = batch[:rem]
		}
		for i := range batch {
			batch[i] = core.Reading{Timestamp: int64(base + i), Value: float64(base + i)}
		}
		if err := n.InsertBatch(id, batch, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamQueryRoundtrip(t *testing.T) {
	n, _, cl := testPair(t, ClientOptions{})
	id := sid(1, 2)
	total := 3*store.StreamChunkReadings + 11
	fillSensor(t, n, id, total)

	st, err := cl.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got []core.Reading
	chunks := 0
	for {
		rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
		chunks++
	}
	if chunks < 3 {
		t.Fatalf("expected several chunk frames, got %d", chunks)
	}
	want, err := n.Query(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream %d readings, direct %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: stream %v direct %v", i, got[i], want[i])
		}
	}
	// The connection still serves unary calls after the stream.
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping after stream: %v", err)
	}
}

func TestStreamPrefixRoundtrip(t *testing.T) {
	n, _, cl := testPair(t, ClientOptions{})
	prefix := core.SensorID{Hi: 0x000a_000b_000c_000d}
	for s := uint64(0); s < 4; s++ {
		id := prefix
		id.Lo = s << 16
		fillSensor(t, n, id, store.StreamChunkReadings+100)
	}
	st, err := cl.QueryPrefixStream(prefix, 4, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := make(map[core.SensorID]int)
	var last core.SensorID
	first := true
	for {
		id, rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !first && id.Compare(last) < 0 {
			t.Fatalf("keyed stream went backwards: %v after %v", id, last)
		}
		last, first = id, false
		got[id] += len(rs)
	}
	want, err := n.QueryPrefix(prefix, 4, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream saw %d sensors, direct %d", len(got), len(want))
	}
	for id, rs := range want {
		if got[id] != len(rs) {
			t.Fatalf("sensor %v: stream %d readings, direct %d", id, got[id], len(rs))
		}
	}
}

// TestStreamCancelReleasesServer closes a stream after one chunk; the
// server's producer goroutine must stop promptly (not stream the whole
// retention into the void) and the connection must keep serving.
func TestStreamCancelReleasesServer(t *testing.T) {
	// One pooled connection, so the stream rides the connection the
	// baseline Ping below already established.
	n, srv, cl := testPair(t, ClientOptions{PoolSize: 1})
	id := sid(9, 9)
	fillSensor(t, n, id, 50*store.StreamChunkReadings)

	// Establish the pooled connections first so the baseline includes
	// their long-lived reader/writer goroutines: Ping dials the unary
	// connection, a drained throwaway stream dials the dedicated stream
	// connection.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	warm, err := cl.QueryStream(id, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := warm.Next(); err != nil {
			break
		}
	}
	warm.Close()
	before := runtime.NumGoroutine()
	st, err := cl.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The producer notices the cancel at its next chunk boundary.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 || time.Now().After(deadline) {
			if g > before+2 {
				t.Fatalf("server goroutines not released after cancel: %d now, %d before", g, before)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Stream slots freed: more streams and unary calls work.
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping after cancel: %v", err)
	}
	st2, err := cl.QueryStream(id, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Next(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	st2.Close()
	_ = srv
}

// errAfterOneStream yields one chunk, then a mid-stream failure.
type errAfterOneStream struct{ sent bool }

func (s *errAfterOneStream) Next() ([]core.Reading, error) {
	if s.sent {
		return nil, fmt.Errorf("disk exploded mid-stream")
	}
	s.sent = true
	return []core.Reading{{Timestamp: 1, Value: 2}}, nil
}
func (s *errAfterOneStream) Close() error { return nil }

// errStreamBackend wraps a node, failing QueryStream after one chunk.
type errStreamBackend struct{ store.NodeBackend }

func (b errStreamBackend) QueryStream(core.SensorID, int64, int64) (store.ReadingStream, error) {
	return &errAfterOneStream{}, nil
}

func TestStreamMidStreamErrorFrame(t *testing.T) {
	srv := NewServer(errStreamBackend{store.NewNode(0)}, true)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(srv.Addr(), ClientOptions{})
	defer cl.Close()

	st, err := cl.QueryStream(sid(1, 1), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rs, err := st.Next()
	if err != nil || len(rs) != 1 {
		t.Fatalf("first chunk: %v %v", rs, err)
	}
	if _, err := st.Next(); err == nil || !strings.Contains(err.Error(), "disk exploded") {
		t.Fatalf("mid-stream error not delivered: %v", err)
	}
	// The error is scoped to the stream; the connection survives.
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping after stream error: %v", err)
	}
}

// rawServer accepts one connection and lets the test hand-craft
// response frames.
func rawServer(t *testing.T, respond func(t *testing.T, c net.Conn, br *bufio.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		respond(t, c, bufio.NewReader(c))
	}()
	return ln.Addr().String()
}

// readReqID parses the request id of one inbound frame.
func readReqID(t *testing.T, br *bufio.Reader) uint64 {
	t.Helper()
	payload, err := readFrame(br)
	if err != nil {
		t.Errorf("raw server read: %v", err)
		return 0
	}
	return binary.BigEndian.Uint64(payload)
}

// TestClientRejectsOversizedFrame is the client-side max-frame bound: a
// corrupt or hostile length prefix from the server must fail the call
// with a clear error and poison the connection — not drive a 4 GB
// allocation.
func TestClientRejectsOversizedFrame(t *testing.T) {
	addr := rawServer(t, func(t *testing.T, c net.Conn, br *bufio.Reader) {
		readReqID(t, br)
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:], uint32(frameMax+1))
		binary.BigEndian.PutUint32(hdr[4:], 0xdeadbeef)
		c.Write(hdr[:])
		time.Sleep(200 * time.Millisecond)
	})
	cl := NewClient(addr, ClientOptions{CallTimeout: time.Second})
	defer cl.Close()
	err := cl.Ping()
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if !strings.Contains(err.Error(), "oversized") && !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("error does not name the frame bound: %v", err)
	}
	// The connection is poisoned: the next call fails fast inside the
	// reconnect backoff window rather than trusting the old socket.
	if err := cl.Ping(); err == nil {
		t.Fatal("poisoned connection kept serving")
	}
}

// TestStreamSeqGapPoisonsConnection forges a chunk with the wrong
// sequence number; the client must refuse to reorder and poison the
// connection.
func TestStreamSeqGapPoisonsConnection(t *testing.T) {
	addr := rawServer(t, func(t *testing.T, c net.Conn, br *bufio.Reader) {
		id := readReqID(t, br)
		bw := bufio.NewWriter(c)
		chunk := make([]byte, 0, 32)
		chunk = appendU64(chunk, id)
		chunk = append(chunk, statusChunk)
		chunk = appendU32(chunk, 5) // stream must start at seq 0
		chunk = appendU32(chunk, 0) // zero readings
		writeFrame(bw, chunk)
		bw.Flush()
		time.Sleep(200 * time.Millisecond)
	})
	cl := NewClient(addr, ClientOptions{CallTimeout: time.Second})
	defer cl.Close()
	st, err := cl.QueryStream(sid(1, 1), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err == nil || !strings.Contains(err.Error(), "sequence") {
		t.Fatalf("sequence gap not rejected: %v", err)
	}
}

// TestStreamChunkBoundEnforced forges an in-sequence chunk larger than
// the stream bound; the client must poison the connection rather than
// buffer it.
func TestStreamChunkBoundEnforced(t *testing.T) {
	addr := rawServer(t, func(t *testing.T, c net.Conn, br *bufio.Reader) {
		id := readReqID(t, br)
		huge := make([]byte, streamChunkMaxBytes+1024)
		binary.BigEndian.PutUint64(huge[0:], id)
		huge[8] = statusChunk
		// seq 0, then garbage readings payload
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:], uint32(len(huge)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(huge))
		c.Write(hdr[:])
		c.Write(huge)
		time.Sleep(200 * time.Millisecond)
	})
	cl := NewClient(addr, ClientOptions{CallTimeout: time.Second})
	defer cl.Close()
	st, err := cl.QueryStream(sid(1, 1), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err == nil || !strings.Contains(err.Error(), "chunk") {
		t.Fatalf("oversized chunk not rejected: %v", err)
	}
}

// TestRPCStreamColdNode runs the streaming path against a durable,
// cache-bounded node over loopback — the full tentpole stack in one
// test: cold blocks decode server-side, chunks stream over the wire,
// and the client reassembles the exact result.
func TestRPCStreamColdNode(t *testing.T) {
	dir := t.TempDir()
	n := store.NewNode(0)
	if err := n.OpenOptions(dir, store.DiskOptions{SyncInterval: -1, CompactInterval: -1, CacheBytes: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	id := sid(8, 8)
	fillSensor(t, n, id, 2*store.StreamChunkReadings+7)
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(n, true)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(srv.Addr(), ClientOptions{})
	defer cl.Close()

	st, err := cl.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	count := 0
	for {
		rs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count += len(rs)
	}
	if want := 2*store.StreamChunkReadings + 7; count != want {
		t.Fatalf("cold RPC stream returned %d readings, want %d", count, want)
	}
}

// TestStreamStallDoesNotBlockUnary: a consumer that opens a stream and
// stops pulling stalls its connection's read loop by design (physical
// backpressure). That stall must be contained to the dedicated stream
// connections — concurrent unary calls on the same client must keep
// completing at full speed. Regression test for streams and unary
// calls sharing a connection pool.
func TestStreamStallDoesNotBlockUnary(t *testing.T) {
	n, _, cl := testPair(t, ClientOptions{PoolSize: 1, StreamPoolSize: 1, CallTimeout: 2 * time.Second})
	id := sid(9, 9)
	// Enough chunks that the abandoned stream fills the client-side
	// delivery buffer and wedges its connection's read loop.
	fillSensor(t, n, id, 12*store.StreamChunkReadings)

	st, err := cl.QueryStream(id, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Injected stall: pull one chunk, then abandon the stream with the
	// server mid-production.
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let chunks pile into the stalled conn

	start := time.Now()
	for i := 0; i < 50; i++ {
		if err := cl.Ping(); err != nil {
			t.Fatalf("unary call %d failed behind a stalled stream: %v", i, err)
		}
		if err := cl.Insert(id, rd(int64(1e9+i), 1), 0); err != nil {
			t.Fatalf("unary insert %d failed behind a stalled stream: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("unary calls took %s behind a stalled stream; stream backpressure leaked into the unary pool", elapsed)
	}
}
