// Package rpc carries the full storage-node API over TCP, which is
// what lets storage nodes run as separate processes from the Collect
// Agent (paper §4.3: Pushers forward to Collect Agents, which forward
// to a cluster of database server processes). The protocol is a
// length-prefixed, CRC-framed binary framing with request pipelining:
// any number of requests may be in flight on one connection, each
// carries an id, and responses are matched by id in whatever order the
// server finishes them.
//
// Frame (both directions, integers big-endian):
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// Request payload:
//
//	u64 reqID | u8 op | i64 timeout (nanos of budget left; 0 = none) | body
//
// The timeout is a *relative* budget, not a wall-clock deadline, so it
// survives clock skew between coordinator and storage hosts: the
// server anchors it to the frame's local arrival time and refuses to
// execute an op whose budget was exhausted while it queued.
//
// Response payload:
//
//	u64 reqID | u8 status | body
//	status 0 = ok (body is the op's result encoding)
//	status 1 = application error (body is the error string)
//
// A frame whose CRC does not match its payload — a torn write, a
// corrupted link, a non-DCDB peer — poisons the connection: the reader
// closes it rather than guess at record boundaries, and the client
// re-establishes with backoff.
package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"

	"dcdb/internal/core"
	"dcdb/internal/store"
)

// SplitAddrList parses a comma-separated host:port list the way every
// CLI flag should: entries are trimmed and empties dropped, so
// "a:1, b:2," and "a:1,b:2" name the same ring. Sharing this between
// the agent and the query tools matters — a phantom "" entry would
// silently shift every replica index.
func SplitAddrList(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// Ops of the node API. The numbering is part of the wire format. The
// legacy one-frame opQuery/opQueryPrefix remain served for wire
// compatibility with older clients; new clients stream.
const (
	opPing         = 1
	opInsert       = 2
	opInsertBatch  = 3
	opQuery        = 4
	opQueryPrefix  = 5
	opDeleteBefore = 6
	opFlush        = 7
	opSync         = 8
	opCompact      = 9
	opStats        = 10
	opSensorIDs    = 11
	// opQueryStream / opQueryPrefixStream answer with a sequence of
	// chunk frames sharing the request id (see the status bytes below)
	// instead of one materialized response frame.
	opQueryStream       = 12
	opQueryPrefixStream = 13
	// opCancelStream carries the request id of an in-flight stream the
	// client abandoned; the server stops producing. No response frame.
	opCancelStream = 14
	// opAggregate pushes an analysis fold down to the node: the request
	// body is a fold.Spec (sid | spec), the response body one encoded
	// fold.State. The node folds its streaming read path, so a
	// month-long range answers with O(1) response bytes instead of
	// millions of readings.
	opAggregate = 15
	// opInsertVersioned / opQueryVersioned carry coordinator-assigned
	// write versions (store.VersionedReading, 32 bytes each on the
	// wire): the anti-entropy repair path re-delivers a write with the
	// version it was originally coordinated under, so a repair can never
	// outrank a later rewrite.
	opInsertVersioned = 16
	opQueryVersioned  = 17
	// opDigest answers with one fold fingerprint + reading count for a
	// sensor range — the O(1)-response comparison anti-entropy uses to
	// decide whether replicas have diverged before moving any data.
	opDigest = 18
	// opGossip carries one membership push-pull exchange: the request
	// body is the sender's encoded member state, the response the
	// receiver's (both sides merge — see internal/membership). The rpc
	// layer treats both as opaque bytes; a node without a registered
	// gossip handler answers with an application error.
	opGossip = 19
)

// opName names an op for metric labels and diagnostics. Unknown ops
// (a newer peer) collapse into one label rather than growing the
// metric space unboundedly.
func opName(op byte) string {
	switch op {
	case opPing:
		return "ping"
	case opInsert:
		return "insert"
	case opInsertBatch:
		return "insert_batch"
	case opQuery:
		return "query"
	case opQueryPrefix:
		return "query_prefix"
	case opDeleteBefore:
		return "delete_before"
	case opFlush:
		return "flush"
	case opSync:
		return "sync"
	case opCompact:
		return "compact"
	case opStats:
		return "stats"
	case opSensorIDs:
		return "sensor_ids"
	case opQueryStream:
		return "query_stream"
	case opQueryPrefixStream:
		return "query_prefix_stream"
	case opCancelStream:
		return "cancel_stream"
	case opAggregate:
		return "aggregate"
	case opInsertVersioned:
		return "insert_versioned"
	case opQueryVersioned:
		return "query_versioned"
	case opDigest:
		return "digest"
	case opGossip:
		return "gossip"
	default:
		return "unknown"
	}
}

const (
	statusOK  = 0
	statusErr = 1
	// statusChunk is one continuation frame of a streaming response:
	//   u64 reqID | u8 statusChunk | u32 seq | body
	// seq counts from 0 per stream; a gap means frames were lost or
	// reordered and poisons the connection. For opQueryStream the body
	// is a readings block; for opQueryPrefixStream it is
	// sid | readings (a sensor may repeat across consecutive chunks).
	statusChunk = 2
	// statusStreamEnd terminates a stream successfully:
	//   u64 reqID | u8 statusStreamEnd | u32 seq
	statusStreamEnd = 3
	// A mid-stream failure arrives as a plain statusErr frame for the
	// stream's request id and terminates it.
)

// frameMax bounds a frame's payload so a corrupt or hostile length
// field cannot drive a huge allocation — enforced on BOTH decode
// paths: the server's read loop and the client's (a misbehaving or
// corrupt server must not drive the coordinator into a giant
// allocation either; see readFrame and the client's stream chunk
// bound). Large batches are chunked by the store layer well below
// this.
const frameMax = 1 << 28

// streamChunkMaxBytes bounds one stream chunk frame on the client
// decode path. The server chunks at store.StreamChunkReadings (~64
// KB); anything over this bound means the peer is not honouring the
// protocol and the connection is poisoned rather than trusted with
// large allocations.
const streamChunkMaxBytes = 1 << 20

// reqHeaderLen is the fixed prefix of a request payload.
const reqHeaderLen = 8 + 1 + 8

// respHeaderLen is the fixed prefix of a response payload.
const respHeaderLen = 8 + 1

var errFrameTooLarge = fmt.Errorf("rpc: frame exceeds %d bytes", frameMax)

// errBadCRC poisons a connection: framing can no longer be trusted.
var errBadCRC = fmt.Errorf("rpc: frame CRC mismatch")

// writeFrame frames payload onto w. The caller flushes.
func writeFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > frameMax {
		return errFrameTooLarge
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one CRC-checked payload from r. The returned slice
// is freshly allocated and owned by the caller.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint32(hdr[0:])
	crc := binary.BigEndian.Uint32(hdr[4:])
	if plen > frameMax {
		return nil, errFrameTooLarge
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, errBadCRC
	}
	return payload, nil
}

// --- body encoding helpers (append-style, big-endian) ---

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendSID(b []byte, id core.SensorID) []byte {
	b = appendU64(b, id.Hi)
	return appendU64(b, id.Lo)
}

func appendReadings(b []byte, rs []core.Reading) []byte {
	b = appendU32(b, uint32(len(rs)))
	for _, r := range rs {
		b = appendI64(b, r.Timestamp)
		b = appendU64(b, math.Float64bits(r.Value))
	}
	return b
}

// appendVersionedReadings encodes a count-prefixed run of 32-byte
// versioned readings: ts | value bits | version | absolute expire.
func appendVersionedReadings(b []byte, vrs []store.VersionedReading) []byte {
	b = appendU32(b, uint32(len(vrs)))
	for _, r := range vrs {
		b = appendI64(b, r.Timestamp)
		b = appendU64(b, math.Float64bits(r.Value))
		b = appendU64(b, r.Version)
		b = appendI64(b, r.Expire)
	}
	return b
}

// cursor is a bounds-checked sequential decoder over one payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) u8() byte {
	if c.err != nil || len(c.b)-c.off < 1 {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.b)-c.off < 4 {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.b)-c.off < 8 {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) sid() core.SensorID {
	return core.SensorID{Hi: c.u64(), Lo: c.u64()}
}

func (c *cursor) readings() []core.Reading {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	// Each reading is 16 bytes; reject counts the payload cannot hold
	// before allocating.
	if uint64(n)*16 > uint64(len(c.b)-c.off) {
		c.fail()
		return nil
	}
	rs := make([]core.Reading, n)
	for i := range rs {
		rs[i] = core.Reading{Timestamp: c.i64(), Value: math.Float64frombits(c.u64())}
	}
	return rs
}

func (c *cursor) versionedReadings() []store.VersionedReading {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	// 32 bytes per versioned reading; reject counts the payload cannot
	// hold before allocating.
	if uint64(n)*32 > uint64(len(c.b)-c.off) {
		c.fail()
		return nil
	}
	vrs := make([]store.VersionedReading, n)
	for i := range vrs {
		vrs[i] = store.VersionedReading{
			Timestamp: c.i64(),
			Value:     math.Float64frombits(c.u64()),
			Version:   c.u64(),
			Expire:    c.i64(),
		}
	}
	return vrs
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("rpc: truncated or malformed payload")
	}
}

// done errors unless the payload was consumed exactly.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("rpc: %d trailing bytes in payload", len(c.b)-c.off)
	}
	return nil
}
