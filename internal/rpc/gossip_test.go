package rpc

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dcdb/internal/store"
)

// TestGossipOp covers the opGossip frame end to end at the rpc layer:
// the payload is opaque — the server hands it to the registered handler
// and returns whatever the handler produces, over the same framed
// connections the data path uses.
func TestGossipOp(t *testing.T) {
	srv := NewServer(store.NewNode(0), true)
	var got []byte
	srv.SetGossip(func(peerState []byte) ([]byte, error) {
		got = append([]byte(nil), peerState...)
		return append([]byte("reply:"), peerState...), nil
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(srv.Addr(), ClientOptions{})
	defer cl.Close()

	state := []byte("push-pull-state")
	reply, err := cl.Gossip(state)
	if err != nil {
		t.Fatalf("Gossip: %v", err)
	}
	if !bytes.Equal(got, state) {
		t.Fatalf("handler saw %q, want %q", got, state)
	}
	if want := append([]byte("reply:"), state...); !bytes.Equal(reply, want) {
		t.Fatalf("Gossip reply %q, want %q", reply, want)
	}
}

// TestGossipOpWithoutHandler: a node that does not serve membership
// must reject gossip frames with a telling error, not hang or panic.
func TestGossipOpWithoutHandler(t *testing.T) {
	_, srv, cl := testPair(t, ClientOptions{})
	_ = srv
	_, err := cl.Gossip([]byte("hello"))
	if err == nil {
		t.Fatal("Gossip against a non-gossiping node succeeded")
	}
	if !strings.Contains(err.Error(), "membership gossip") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestFireAndForgetOpsAgainstDeadNode: the advisory calls must degrade
// quietly when the peer is unreachable — Compact just logs, SensorIDs
// returns nil, StatsFull surfaces the unavailability.
func TestFireAndForgetOpsAgainstDeadNode(t *testing.T) {
	cl := NewClient("127.0.0.1:1", ClientOptions{DialTimeout: 50 * time.Millisecond})
	defer cl.Close()
	cl.Compact() // must not panic or block
	if ids := cl.SensorIDs(); ids != nil {
		t.Fatalf("SensorIDs against a dead node = %v", ids)
	}
	if _, _, _, _, err := cl.StatsFull(); err == nil {
		t.Fatal("StatsFull against a dead node succeeded")
	}
}

// TestCompactOverRPC covers the success half of the fire-and-forget op.
func TestCompactOverRPC(t *testing.T) {
	n, _, cl := testPair(t, ClientOptions{})
	if err := cl.Insert(sid(3, 4), rd(1, 1), 0); err != nil {
		t.Fatal(err)
	}
	cl.Compact()
	if err := cl.Ping(); err != nil {
		t.Fatalf("node unhealthy after remote compact: %v", err)
	}
	_ = n
}
